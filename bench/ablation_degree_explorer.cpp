// ABL3: the Section VI open problems, empirically.
//
//  (a) Is the paper's offset interval minimal within the monotone-
//      reconfiguration family? A greedy search tries to drop offsets while
//      preserving exhaustive (k, B_{m,h})-tolerance.
//  (b) Do extra spares (c > k) reduce the achievable degree? The same search
//      runs with more spares than faults.
//
// Expected shape: for base 2 the interval is minimal (no offset droppable) at
// realistic sizes, and extra spares do not reduce the degree — evidence for
// the paper's "best known" claim and a negative data point for its
// extra-spares conjecture.
#include <iostream>
#include <sstream>

#include "analysis/table.hpp"
#include "ft/degree_explorer.hpp"

int main() {
  using namespace ftdb;
  analysis::Table t({"m", "h", "k (faults)", "c (spares)", "paper-interval degree",
                     "minimized degree", "offsets kept", "paper interval minimal"});
  struct Case {
    std::uint64_t m;
    unsigned h;
    unsigned k;
    unsigned c;
  };
  const Case cases[] = {
      {2, 4, 1, 1}, {2, 5, 1, 1}, {2, 4, 2, 2}, {2, 4, 1, 2}, {2, 4, 1, 3},
      {2, 4, 2, 3}, {3, 3, 1, 1}, {3, 3, 1, 2},
  };
  for (const Case& c : cases) {
    const ExplorationResult r = minimize_offsets_greedy(
        {.base = c.m, .digits = c.h, .tolerate = c.k, .spares = c.c});
    std::ostringstream offsets;
    offsets << "{";
    for (std::size_t i = 0; i < r.offsets.size(); ++i) {
      offsets << r.offsets[i] << (i + 1 < r.offsets.size() ? "," : "");
    }
    offsets << "}";
    t.add_row({analysis::fmt_u64(c.m), analysis::fmt_u64(c.h), analysis::fmt_u64(c.k),
               analysis::fmt_u64(c.c), analysis::fmt_u64(r.paper_degree),
               analysis::fmt_u64(r.max_degree), offsets.str(),
               r.paper_interval_minimal ? "yes" : "no"});
  }
  std::cout << "ABL3: minimal offset sets and the extra-spares conjecture (Section VI)\n\n";
  std::cout << t.render();
  std::cout << "\nshape check: rows with c = k keep the full paper interval (it is\n"
               "locally minimal — supporting the paper's 'best known degree' claim);\n"
               "rows with c > k need *wider* offset intervals because the wrap-around\n"
               "term grows from k to c, so within this construction family extra\n"
               "spares increase the degree — a negative empirical data point for the\n"
               "Section VI conjecture.\n";
  return 0;
}
