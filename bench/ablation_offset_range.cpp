// ABL1: offset-range ablation — is the paper's offset interval
// r in [(m-1)(-k), (m-1)(k+1)] actually necessary? We shrink it from either
// end and exhaustively re-check tolerance, and we also report the measured
// degree. Expected shape: the full interval passes; shrinking it breaks
// tolerance at realistic sizes (tiny graphs occasionally survive a shrink
// because wrap-around coverage overlaps).
#include <iostream>

#include "analysis/table.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/tolerance.hpp"
#include "topology/debruijn.hpp"

int main() {
  using namespace ftdb;
  analysis::Table t({"m", "h", "k", "offsets [lo, hi]", "max degree", "tolerant"});

  struct Case {
    std::uint64_t m;
    unsigned h;
    unsigned k;
  };
  for (const Case c : {Case{2, 4, 1}, Case{2, 4, 2}, Case{2, 5, 2}, Case{3, 3, 1},
                       Case{3, 3, 2}}) {
    const Graph target = debruijn_graph({.base = c.m, .digits = c.h});
    const auto full = ft_debruijn_offsets({.base = c.m, .digits = c.h, .spares = c.k});
    struct Variant {
      const char* label;
      OffsetRange range;
    };
    const Variant variants[] = {
        {"paper", full},
        {"lo+1", {full.lo + 1, full.hi}},
        {"hi-1", {full.lo, full.hi - 1}},
        {"both", {full.lo + 1, full.hi - 1}},
    };
    for (const Variant& v : variants) {
      const Graph g = ft_debruijn_graph_custom_offsets(c.m, c.h, c.k, v.range);
      const auto report = check_tolerance_exhaustive(target, g, c.k);
      t.add_row({analysis::fmt_u64(c.m), analysis::fmt_u64(c.h), analysis::fmt_u64(c.k),
                 std::string(v.label) + " [" + std::to_string(v.range.lo) + ", " +
                     std::to_string(v.range.hi) + "]",
                 analysis::fmt_u64(g.max_degree()), report.tolerant ? "yes" : "NO"});
    }
  }
  std::cout << "ABL1: offset-range ablation for B^k_{m,h}\n\n";
  std::cout << t.render();
  std::cout << "\nshape check: every 'paper' row is tolerant; shrunken ranges lose\n"
               "tolerance (the construction's edge set is not padded).\n";
  return 0;
}
