// ABL2: spare provisioning — how many spares does a target machine need for a
// given reliability, and what do the alternatives cost at that budget?
// Survival probability is the binomial tail P[<= k of N+k nodes fail];
// the cost columns compare our N+k construction, the Section V bus variant,
// and the Samatham-Pradhan enlargement at the same tolerance budget.
#include <iostream>

#include "analysis/table.hpp"
#include "ft/samatham_pradhan.hpp"
#include "ft/spares.hpp"
#include "topology/labels.hpp"

int main() {
  using namespace ftdb;

  std::cout << "ABL2a: survival probability of an N-node de Bruijn machine vs spares k\n"
               "(iid node-failure probability p)\n\n";
  {
    analysis::Table t({"N", "p", "k=0", "k=1", "k=2", "k=4", "k=8", "min k for 99.99%"});
    for (const std::uint64_t n : {64ull, 256ull, 1024ull}) {
      for (const long double p : {0.0001L, 0.001L, 0.01L}) {
        std::vector<std::string> row{analysis::fmt_u64(n), analysis::fmt_probability(p, 4)};
        for (unsigned k : {0u, 1u, 2u, 4u, 8u}) {
          row.push_back(analysis::fmt_probability(survival_probability(n, k, p)));
        }
        const unsigned need = min_spares_for_reliability(n, p, 0.9999L, 64);
        row.push_back(need > 64 ? std::string(">64") : analysis::fmt_u64(need));
        t.add_row(std::move(row));
      }
    }
    std::cout << t.render();
  }

  std::cout << "\nABL2b: hardware cost at equal tolerance budget k (N = 2^h)\n\n";
  {
    analysis::Table t({"h", "N", "k", "ours nodes", "ours ports", "bus ports",
                       "S-P nodes", "S-P ports"});
    for (unsigned h : {6u, 8u, 10u}) {
      const std::uint64_t n = labels::ipow_checked(2, h);
      for (unsigned k : {1u, 2u, 4u}) {
        const std::uint64_t sp_n = sp_num_nodes(2, h, k);
        t.add_row({analysis::fmt_u64(h), analysis::fmt_u64(n), analysis::fmt_u64(k),
                   analysis::fmt_u64(n + k), analysis::fmt_u64(ours_port_cost(2, n, k)),
                   analysis::fmt_u64(bus_port_cost(n, k)), analysis::fmt_u64(sp_n),
                   analysis::fmt_u64(sp_n * sp_degree(2, k))});
      }
    }
    std::cout << t.render();
  }
  std::cout << "\nshape check: a handful of spares buys near-certain survival; our port\n"
               "cost grows linearly in k while the S-P node count explodes polynomially\n"
               "in N; buses cut port cost roughly in half (2k+3 vs 4k+4).\n";
  return 0;
}
