// bench_runner — discovers the registered perf_* benchmarks, runs them on a
// thread pool with seeded RNG, and emits machine-readable BENCH_*.json (plus
// an optional human-readable table). The JSON is the repo's perf trajectory:
// commit one per baseline and diff against it in later PRs.
//
//   bench_runner --list
//   bench_runner --json                      # writes BENCH_results.json
//   bench_runner --json --out BENCH_seed.json --threads 4 --seed 7
//   bench_runner --filter perf_routing --text
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/bench_registry.hpp"
#include "analysis/bench_runner.hpp"

namespace {

void usage(const char* argv0) {
  std::cout << "usage: " << argv0 << " [options]\n"
            << "  --list              list registered benchmarks and exit\n"
            << "  --json              write results as JSON (default path BENCH_results.json)\n"
            << "  --out PATH          JSON output path (implies --json)\n"
            << "  --text              print a human-readable summary table\n"
            << "  --filter SUBSTR     only run benchmarks whose name contains SUBSTR\n"
            << "  --threads N         worker threads (default 1 for timing fidelity;\n"
            << "                      0 = hardware concurrency)\n"
            << "  --seed S            root RNG seed (default 2026)\n"
            << "  --repetitions R     repetitions per benchmark (default 1)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftdb::analysis;

  BenchRunOptions options;
  bool want_json = false;
  bool want_text = false;
  bool want_list = false;
  std::string out_path = "BENCH_results.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_u64 = [&](const char* flag) -> std::uint64_t {
      const std::string value = next(flag);
      try {
        // stoull accepts "-1" and wraps it mod 2^64; reject signs explicitly.
        if (value.empty() || value[0] == '-' || value[0] == '+') throw std::invalid_argument(value);
        std::size_t consumed = 0;
        const std::uint64_t parsed = std::stoull(value, &consumed);
        if (consumed != value.size()) throw std::invalid_argument(value);
        return parsed;
      } catch (const std::exception&) {
        std::cerr << flag << " expects a non-negative integer, got \"" << value << "\"\n";
        std::exit(2);
      }
    };
    if (arg == "--list") {
      want_list = true;
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg == "--out") {
      out_path = next("--out");
      want_json = true;
    } else if (arg == "--text") {
      want_text = true;
    } else if (arg == "--filter") {
      options.filter = next("--filter");
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(next_u64("--threads"));
    } else if (arg == "--seed") {
      options.seed = next_u64("--seed");
    } else if (arg == "--repetitions") {
      options.repetitions = static_cast<unsigned>(next_u64("--repetitions"));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  if (want_list) {
    for (const std::string& name : BenchRegistry::instance().names(options.filter)) {
      std::cout << name << "\n";
    }
    return 0;
  }

  const auto results = run_benchmarks(options);
  if (results.empty()) {
    std::cerr << "no benchmarks matched filter \"" << options.filter << "\"\n";
    return 1;
  }

  if (want_text || !want_json) {
    std::cout << bench_results_to_text(results) << "\n";
  }

  if (want_json) {
    const std::string doc = bench_results_to_json(results, options);
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
    out << doc << "\n";
    std::cout << "wrote " << out_path << " (" << results.size() << " benchmarks)\n";
  }

  int failures = 0;
  for (const auto& r : results) {
    if (!r.ok) {
      std::cerr << "BENCH FAILED: " << r.name << ": " << r.error << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
