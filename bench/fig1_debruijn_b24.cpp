// FIG1: regenerates the paper's Figure 1 — the base-2 four-digit de Bruijn
// graph B_{2,4} — as an adjacency listing plus Graphviz DOT.
#include <iostream>

#include "analysis/experiments.hpp"

int main() {
  std::cout << ftdb::analysis::figure1_debruijn_b24();
  return 0;
}
