// FIG2: regenerates the paper's Figure 2 — the fault-tolerant graph B^1_{2,4}
// (17 nodes, degree at most 4k+4 = 8).
#include <iostream>

#include "analysis/experiments.hpp"

int main() {
  std::cout << ftdb::analysis::figure2_ft_debruijn_b124();
  return 0;
}
