// FIG3: regenerates the paper's Figure 3 — the new labels of B^1_{2,4} after
// one fault, with the post-reconfiguration edges marked solid.
//
//   usage: fig3_reconfiguration [faulty_node]
#include <cstdlib>
#include <iostream>

#include "analysis/experiments.hpp"

int main(int argc, char** argv) {
  const std::uint32_t fault = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  std::cout << ftdb::analysis::figure3_reconfiguration(fault);
  return 0;
}
