// FIG4: regenerates the paper's Figure 4 — the bus implementation of
// B^1_{2,3}: one bus per node covering a block of 2k+2 consecutive nodes.
#include <iostream>

#include "analysis/experiments.hpp"

int main() {
  std::cout << ftdb::analysis::figure4_bus_implementation();
  return 0;
}
