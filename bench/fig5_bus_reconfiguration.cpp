// FIG5: regenerates the paper's Figure 5 — reconfiguration after one fault in
// the bus implementation of B^1_{2,3}, listing the bus connection carrying
// each embedded target edge.
//
//   usage: fig5_bus_reconfiguration [faulty_node]
#include <cstdlib>
#include <iostream>

#include "analysis/experiments.hpp"

int main(int argc, char** argv) {
  const std::uint32_t fault = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  std::cout << ftdb::analysis::figure5_bus_reconfiguration(fault);
  return 0;
}
