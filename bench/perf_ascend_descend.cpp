// PERF4: the introduction's Ascend/Descend claim measured. An all-reduce
// (a canonical Ascend computation) runs on the hypercube, the de Bruijn graph
// (dual and single ported) and the shuffle-exchange, and again on the
// reconfigured fault-tolerant machines after k faults.
//
// Expected shape: constant-factor slowdown vs the hypercube (1x for dual-port
// de Bruijn, 2x for SE and single-port de Bruijn), and identical step counts
// before and after reconfiguration.
#include <numeric>

#include "analysis/bench_registry.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "sim/ascend_descend.hpp"
#include "topology/debruijn.hpp"

namespace {

using ftdb::analysis::BenchContext;

void ascend_all_reduce(BenchContext& ctx, unsigned h) {
  using namespace ftdb;
  const auto add = [](std::int64_t a, std::int64_t b) { return a + b; };
  const std::size_t n = std::size_t{1} << h;
  std::vector<std::int64_t> values(n);
  std::iota(values.begin(), values.end(), 1);

  const auto cube = sim::ascend_hypercube(h, values, add);

  // Fault-tolerant machines with 2 faults, reconfigured.
  const Graph ft_db = ft_debruijn_base2(h, 2);
  const FaultSet db_faults(ft_db.num_nodes(), {1, static_cast<NodeId>(n / 2)});
  const sim::Machine db_machine = sim::Machine::reconfigured(ft_db, db_faults, n);

  const auto se_ft = ft_shuffle_exchange_natural(h, 2);
  const FaultSet se_faults(se_ft.ft_graph.num_nodes(), {1, static_cast<NodeId>(n / 2)});
  const sim::Machine se_machine = sim::Machine::reconfigured(se_ft.ft_graph, se_faults, n);

  const auto db_dual = sim::ascend_debruijn(h, values, add, 2);
  const auto db_dual_ft = sim::ascend_debruijn(h, values, add, 2, &db_machine);
  const auto db_single = sim::ascend_debruijn(h, values, add, 1);
  const auto db_single_ft = sim::ascend_debruijn(h, values, add, 1, &db_machine);
  const auto se = sim::ascend_shuffle_exchange(h, values, add);
  const auto se_ft_run = sim::ascend_shuffle_exchange(h, values, add, &se_machine);

  const double cube_steps = static_cast<double>(cube.communication_steps);
  ctx.report("h", h);
  ctx.report("nodes", static_cast<double>(n));
  ctx.report("hypercube_steps", cube_steps);
  ctx.report("debruijn_dual_steps", static_cast<double>(db_dual.communication_steps));
  ctx.report("debruijn_dual_slowdown",
             static_cast<double>(db_dual.communication_steps) / cube_steps);
  ctx.report("debruijn_dual_steps_after_reconfig",
             static_cast<double>(db_dual_ft.communication_steps));
  ctx.report("debruijn_single_steps", static_cast<double>(db_single.communication_steps));
  ctx.report("debruijn_single_slowdown",
             static_cast<double>(db_single.communication_steps) / cube_steps);
  ctx.report("debruijn_single_steps_after_reconfig",
             static_cast<double>(db_single_ft.communication_steps));
  ctx.report("shuffle_exchange_steps", static_cast<double>(se.communication_steps));
  ctx.report("shuffle_exchange_slowdown",
             static_cast<double>(se.communication_steps) / cube_steps);
  ctx.report("shuffle_exchange_steps_after_reconfig",
             static_cast<double>(se_ft_run.communication_steps));
}

FTDB_BENCH(ascend_h6, "perf_ascend_descend/all_reduce_h6") { ascend_all_reduce(ctx, 6); }
FTDB_BENCH(ascend_h8, "perf_ascend_descend/all_reduce_h8") { ascend_all_reduce(ctx, 8); }
FTDB_BENCH(ascend_h10, "perf_ascend_descend/all_reduce_h10") { ascend_all_reduce(ctx, 10); }

}  // namespace
