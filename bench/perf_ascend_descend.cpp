// PERF4: the introduction's Ascend/Descend claim measured. An all-reduce
// (a canonical Ascend computation) runs on the hypercube, the de Bruijn graph
// (dual and single ported) and the shuffle-exchange, and again on the
// reconfigured fault-tolerant machines after k faults.
//
// Expected shape: constant-factor slowdown vs the hypercube (1x for dual-port
// de Bruijn, 2x for SE and single-port de Bruijn), and identical step counts
// before and after reconfiguration.
#include <iostream>
#include <numeric>

#include "analysis/table.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "sim/ascend_descend.hpp"
#include "topology/debruijn.hpp"

int main() {
  using namespace ftdb;
  const auto add = [](std::int64_t a, std::int64_t b) { return a + b; };

  analysis::Table t({"h", "N", "topology", "comm steps", "slowdown vs hypercube",
                     "after k=2 faults + reconfig"});
  for (unsigned h : {4u, 6u, 8u, 10u}) {
    const std::size_t n = std::size_t{1} << h;
    std::vector<std::int64_t> values(n);
    std::iota(values.begin(), values.end(), 1);

    const auto cube = sim::ascend_hypercube(h, values, add);

    // Fault-tolerant machines with 2 faults, reconfigured.
    const Graph ft_db = ft_debruijn_base2(h, 2);
    const FaultSet db_faults(ft_db.num_nodes(), {1, static_cast<NodeId>(n / 2)});
    const sim::Machine db_machine = sim::Machine::reconfigured(ft_db, db_faults, n);

    const auto se_ft = ft_shuffle_exchange_natural(h, 2);
    const FaultSet se_faults(se_ft.ft_graph.num_nodes(), {1, static_cast<NodeId>(n / 2)});
    const sim::Machine se_machine = sim::Machine::reconfigured(se_ft.ft_graph, se_faults, n);

    struct Row {
      const char* name;
      std::uint64_t steps;
      std::uint64_t steps_after;
    };
    const Row rows[] = {
        {"hypercube Q_h", cube.communication_steps, cube.communication_steps},
        {"de Bruijn (dual port)", sim::ascend_debruijn(h, values, add, 2).communication_steps,
         sim::ascend_debruijn(h, values, add, 2, &db_machine).communication_steps},
        {"de Bruijn (single port)", sim::ascend_debruijn(h, values, add, 1).communication_steps,
         sim::ascend_debruijn(h, values, add, 1, &db_machine).communication_steps},
        {"shuffle-exchange", sim::ascend_shuffle_exchange(h, values, add).communication_steps,
         sim::ascend_shuffle_exchange(h, values, add, &se_machine).communication_steps},
    };
    for (const Row& r : rows) {
      t.add_row({analysis::fmt_u64(h), analysis::fmt_u64(n), r.name, analysis::fmt_u64(r.steps),
                 analysis::fmt_ratio(static_cast<double>(r.steps) /
                                     static_cast<double>(cube.communication_steps)),
                 analysis::fmt_u64(r.steps_after)});
    }
  }
  std::cout << "PERF4: Ascend all-reduce, communication steps per topology\n\n";
  std::cout << t.render();
  std::cout << "\nshape check: constant-factor slowdowns (1x, 2x) independent of N, and\n"
               "the step count is unchanged by reconfiguration (the FT machine presents\n"
               "the intact logical topology).\n";
  return 0;
}
