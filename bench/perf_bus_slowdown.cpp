// PERF3: Section V's slowdown claim measured. One full de Bruijn
// communication round (every node sends to both shift successors) is
// scheduled on the point-to-point fabric and on the bus fabric, with
// dual-send and single-send processors.
//
// Expected shape: bus/dual ~ 2x point-to-point/dual; bus/single ~ 1x
// point-to-point/single ("little or no slowdown").
#include <iostream>

#include "analysis/table.hpp"
#include "ft/bus_ft.hpp"
#include "sim/bus_engine.hpp"
#include "topology/debruijn.hpp"

int main() {
  using namespace ftdb;
  analysis::Table t({"h", "N", "fabric", "ports", "round makespan (cycles)", "vs p2p same ports"});
  for (unsigned h : {4u, 6u, 8u, 10u}) {
    const Graph g = debruijn_base2(h);
    const BusGraph fabric = bus_debruijn_base2(h);
    const auto transfers = sim::debruijn_round_transfers(h);
    for (unsigned ports : {2u, 1u}) {
      const auto p2p = sim::schedule_point_to_point(g, transfers, ports);
      const auto bus = sim::schedule_bus(fabric, transfers, ports);
      t.add_row({analysis::fmt_u64(h), analysis::fmt_u64(g.num_nodes()), "point-to-point",
                 analysis::fmt_u64(ports), analysis::fmt_u64(p2p.makespan), "1.00x"});
      t.add_row({analysis::fmt_u64(h), analysis::fmt_u64(g.num_nodes()), "bus",
                 analysis::fmt_u64(ports), analysis::fmt_u64(bus.makespan),
                 analysis::fmt_ratio(static_cast<double>(bus.makespan) /
                                     static_cast<double>(p2p.makespan))});
    }
  }
  std::cout << "PERF3: bus vs point-to-point, one de Bruijn round (every node -> both "
               "shift successors)\n\n";
  std::cout << t.render();
  std::cout << "\nshape check: bus is 2.00x with dual-send processors and 1.00x with\n"
               "single-send processors, exactly as Section V argues.\n";
  return 0;
}
