// PERF3: Section V's slowdown claim measured. One full de Bruijn
// communication round (every node sends to both shift successors) is
// scheduled on the point-to-point fabric and on the bus fabric, with
// dual-send and single-send processors.
//
// Expected shape: bus/dual ~ 2x point-to-point/dual; bus/single ~ 1x
// point-to-point/single ("little or no slowdown").
#include "analysis/bench_registry.hpp"
#include "ft/bus_ft.hpp"
#include "sim/bus_engine.hpp"
#include "topology/debruijn.hpp"

namespace {

using ftdb::analysis::BenchContext;

void bus_round(BenchContext& ctx, unsigned h, unsigned ports) {
  const ftdb::Graph g = ftdb::debruijn_base2(h);
  const ftdb::BusGraph fabric = ftdb::bus_debruijn_base2(h);
  const auto transfers = ftdb::sim::debruijn_round_transfers(h);
  const auto p2p = ftdb::sim::schedule_point_to_point(g, transfers, ports);
  const auto bus = ftdb::sim::schedule_bus(fabric, transfers, ports);
  ctx.report("h", h);
  ctx.report("nodes", static_cast<double>(g.num_nodes()));
  ctx.report("ports", ports);
  ctx.report("p2p_makespan_cycles", static_cast<double>(p2p.makespan));
  ctx.report("bus_makespan_cycles", static_cast<double>(bus.makespan));
  ctx.report("bus_slowdown",
             static_cast<double>(bus.makespan) / static_cast<double>(p2p.makespan));
}

FTDB_BENCH(bus_h8_dual, "perf_bus_slowdown/h8_dual_port") { bus_round(ctx, 8, 2); }
FTDB_BENCH(bus_h8_single, "perf_bus_slowdown/h8_single_port") { bus_round(ctx, 8, 1); }
FTDB_BENCH(bus_h10_dual, "perf_bus_slowdown/h10_dual_port") { bus_round(ctx, 10, 2); }
FTDB_BENCH(bus_h10_single, "perf_bus_slowdown/h10_single_port") { bus_round(ctx, 10, 1); }

}  // namespace
