// PERF6: throughput of the fault-injection campaign engine — trials/second
// for a representative grid cell per fault model, plus one mixed-grid run.
// The campaign runner is the production workload multiplier (every scenario
// re-runs construction, fault drawing, reconfiguration checks and survivor
// metrics thousands of times), so its per-trial cost is the number to watch.
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/bench_registry.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace {

using ftdb::analysis::BenchContext;
using namespace ftdb::campaign;

ScenarioSpec base_spec(std::uint64_t trials) {
  ScenarioSpec spec;
  spec.name = "perf";
  spec.seed = 99;
  spec.trials = trials;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 6}};
  spec.spares = {3};
  spec.metrics.diameter = true;
  spec.metrics.stretch = false;
  spec.metrics.mttf = true;
  return spec;
}

void run_model(BenchContext& ctx, const FaultModelSpec& model, std::uint64_t trials) {
  ScenarioSpec spec = base_spec(trials);
  spec.fault_models = {model};
  // Serial on purpose: wall times must not depend on sibling benchmarks'
  // thread pools (the bench runner may already be running us in parallel).
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  const ScenarioResult& r = result.scenarios.front();
  ctx.report("trials", static_cast<double>(r.trials));
  ctx.report("success_rate", r.success_rate());
  ctx.report("mean_faults", r.fault_count.mean);
}

FTDB_BENCH(campaign_iid, "perf_campaign/iid_debruijn_h6_k3") {
  run_model(ctx, {FaultModelKind::IidBernoulli, 0.02, 1.0, 100.0, 1.0}, 2000);
}

FTDB_BENCH(campaign_clustered, "perf_campaign/clustered_debruijn_h6_k3") {
  run_model(ctx, {FaultModelKind::Clustered, 0.005, 1.0, 100.0, 1.0}, 2000);
}

FTDB_BENCH(campaign_weibull, "perf_campaign/weibull_debruijn_h6_k3") {
  run_model(ctx, {FaultModelKind::Weibull, 0.0, 1.5, 500.0, 30.0}, 2000);
}

FTDB_BENCH(campaign_adversarial, "perf_campaign/adversarial_debruijn_h6_k3") {
  run_model(ctx, {FaultModelKind::Adversarial, 0.02, 1.0, 100.0, 1.0}, 2000);
}

FTDB_BENCH(campaign_grid, "perf_campaign/grid_2topo_x3k_x2models") {
  ScenarioSpec spec = base_spec(250);
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 5},
                     {TopologyFamily::ShuffleExchange, 2, 5}};
  spec.spares = {0, 2, 4};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.03, 1.0, 100.0, 1.0},
                       {FaultModelKind::Adversarial, 0.03, 1.0, 100.0, 1.0}};
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  ctx.report("scenarios", static_cast<double>(result.scenarios.size()));
  double successes = 0;
  for (const ScenarioResult& r : result.scenarios) {
    successes += static_cast<double>(r.reconfig_success);
  }
  ctx.report("total_successes", successes);
}

// --- work-stealing scheduler ------------------------------------------------

/// A 12-cell grid of 1024-trial cells: 48 blocks through the global deques.
/// Serial on purpose, like everything above — this measures the scheduler's
/// per-block overhead (deque traffic, in-order merge bookkeeping), not
/// machine parallelism the bench runner's own pool would fight with.
FTDB_BENCH(campaign_sched, "perf_campaign/steal_12cells_x4blocks_serial") {
  ScenarioSpec spec = base_spec(1024);
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4},
                     {TopologyFamily::ShuffleExchange, 2, 4}};
  spec.spares = {0, 2, 4};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.03, 1.0, 100.0, 1.0},
                       {FaultModelKind::Block, 0.03, 1.0, 100.0, 1.0, 3}};
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  ctx.report("scenarios", static_cast<double>(result.scenarios.size()));
  ctx.report("blocks", static_cast<double>(result.scenarios.size() *
                                           num_trial_blocks(spec.trials)));
}

/// Block-granular checkpoint serialization: snapshot -> JSON -> reparse for a
/// mid-flight campaign shape (every cell a merged prefix + one parked block).
FTDB_BENCH(campaign_ckpt, "perf_campaign/checkpoint_roundtrip_24cells") {
  ScenarioSpec spec = base_spec(256);
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}};
  spec.spares = {2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.03, 1.0, 100.0, 1.0}};
  const ScenarioResult partial = run_campaign(spec, {.threads = 1}).scenarios.front();
  spec.trials = 1024;  // what the block partials above are a slice of
  Checkpoint ckpt;
  for (std::size_t i = 0; i < 24; ++i) {
    CellProgress cell;
    cell.scenario_index = i;
    cell.prefix_blocks = 1;
    cell.prefix = partial;
    cell.extra.emplace_back(2, partial);
    ckpt.cells.push_back(std::move(cell));
  }
  std::string json;
  std::size_t cells = 0;
  for (int rep = 0; rep < 20; ++rep) {
    json = checkpoint_to_json(spec, ckpt);
    cells += parse_checkpoint(json).cells.size();
  }
  ctx.report("roundtrips", 20.0);
  ctx.report("bytes", static_cast<double>(json.size()));
  ctx.report("cells_reparsed", static_cast<double>(cells));
}

/// The distributed path end to end: two shard runs plus the fingerprint- and
/// coverage-checked merge, with the merged report's byte-identity to the
/// single-machine run reported as a metric (1.0 = identical).
FTDB_BENCH(campaign_shard, "perf_campaign/shard2_run_merge") {
  ScenarioSpec spec = base_spec(512);
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4},
                     {TopologyFamily::ShuffleExchange, 2, 4}};
  spec.spares = {0, 3};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.03, 1.0, 100.0, 1.0}};
  const std::string reference = campaign_report_json(run_campaign(spec, {.threads = 1}));

  const std::string dir = std::filesystem::temp_directory_path().string();
  std::vector<Checkpoint> partials;
  for (std::uint32_t s = 0; s < 2; ++s) {
    CampaignOptions options;
    options.threads = 1;
    options.shard = {s, 2};
    options.checkpoint_path = dir + "/ftdb_perf_shard" + std::to_string(s) + ".ckpt";
    run_campaign(spec, options);
    std::ifstream in(options.checkpoint_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    partials.push_back(parse_checkpoint(buf.str()));
  }
  const CampaignResult merged = merge_checkpoints(spec, partials);
  ctx.report("merge_byte_identical",
             campaign_report_json(merged) == reference ? 1.0 : 0.0);
  ctx.report("shards", 2.0);
}

}  // namespace
