// PERF6: throughput of the fault-injection campaign engine — trials/second
// for a representative grid cell per fault model, plus one mixed-grid run.
// The campaign runner is the production workload multiplier (every scenario
// re-runs construction, fault drawing, reconfiguration checks and survivor
// metrics thousands of times), so its per-trial cost is the number to watch.
#include "analysis/bench_registry.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace {

using ftdb::analysis::BenchContext;
using namespace ftdb::campaign;

ScenarioSpec base_spec(std::uint64_t trials) {
  ScenarioSpec spec;
  spec.name = "perf";
  spec.seed = 99;
  spec.trials = trials;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 6}};
  spec.spares = {3};
  spec.metrics.diameter = true;
  spec.metrics.stretch = false;
  spec.metrics.mttf = true;
  return spec;
}

void run_model(BenchContext& ctx, const FaultModelSpec& model, std::uint64_t trials) {
  ScenarioSpec spec = base_spec(trials);
  spec.fault_models = {model};
  // Serial on purpose: wall times must not depend on sibling benchmarks'
  // thread pools (the bench runner may already be running us in parallel).
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  const ScenarioResult& r = result.scenarios.front();
  ctx.report("trials", static_cast<double>(r.trials));
  ctx.report("success_rate", r.success_rate());
  ctx.report("mean_faults", r.fault_count.mean);
}

FTDB_BENCH(campaign_iid, "perf_campaign/iid_debruijn_h6_k3") {
  run_model(ctx, {FaultModelKind::IidBernoulli, 0.02, 1.0, 100.0, 1.0}, 2000);
}

FTDB_BENCH(campaign_clustered, "perf_campaign/clustered_debruijn_h6_k3") {
  run_model(ctx, {FaultModelKind::Clustered, 0.005, 1.0, 100.0, 1.0}, 2000);
}

FTDB_BENCH(campaign_weibull, "perf_campaign/weibull_debruijn_h6_k3") {
  run_model(ctx, {FaultModelKind::Weibull, 0.0, 1.5, 500.0, 30.0}, 2000);
}

FTDB_BENCH(campaign_adversarial, "perf_campaign/adversarial_debruijn_h6_k3") {
  run_model(ctx, {FaultModelKind::Adversarial, 0.02, 1.0, 100.0, 1.0}, 2000);
}

FTDB_BENCH(campaign_grid, "perf_campaign/grid_2topo_x3k_x2models") {
  ScenarioSpec spec = base_spec(250);
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 5},
                     {TopologyFamily::ShuffleExchange, 2, 5}};
  spec.spares = {0, 2, 4};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.03, 1.0, 100.0, 1.0},
                       {FaultModelKind::Adversarial, 0.03, 1.0, 100.0, 1.0}};
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  ctx.report("scenarios", static_cast<double>(result.scenarios.size()));
  double successes = 0;
  for (const ScenarioResult& r : result.scenarios) {
    successes += static_cast<double>(r.reconfig_success);
  }
  ctx.report("total_successes", successes);
}

}  // namespace
