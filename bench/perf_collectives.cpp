// PERF7: the collective-schedule layer — compile cost of the generators,
// functional-executor throughput, and end-to-end packet-engine execution on
// healthy and degraded machines. The campaign's collective metric runs
// execute_schedule once (success) or three times (failure: degraded run +
// matched healthy baseline + schedule rebuild) per trial, so these are the
// inner loops of every collective-slowdown sweep.
#include "analysis/bench_registry.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "sim/schedule.hpp"
#include "topology/debruijn.hpp"

namespace {

using ftdb::Graph;
using ftdb::NodeId;
using ftdb::analysis::BenchContext;
using namespace ftdb::sim;

std::vector<NodeId> identity_ranks(std::size_t n) {
  std::vector<NodeId> ranks(n);
  for (std::size_t v = 0; v < n; ++v) ranks[v] = static_cast<NodeId>(v);
  return ranks;
}

}  // namespace

FTDB_BENCH(collectives_build, "perf_collectives/build_schedules_n256") {
  // Compile every generator at n = 256 (B_{2,8} / B_{4,4} scale), repeatedly:
  // the degraded campaign path rebuilds a schedule per failed trial.
  const int reps = 20;
  std::uint64_t sends = 0;
  std::size_t rounds = 0;
  for (int i = 0; i < reps; ++i) {
    for (const ScheduleKind kind :
         {ScheduleKind::AllToAllBruck, ScheduleKind::AllToAllPairwise,
          ScheduleKind::AllgatherRecursiveDoubling, ScheduleKind::AllgatherBruck,
          ScheduleKind::AllreduceRecursiveHalvingDoubling,
          ScheduleKind::AllreduceReduceScatterAllgather}) {
      const Schedule s = build_schedule(kind, 256);
      sends += s.total_sends();
      rounds += s.rounds();
    }
  }
  ctx.report("iterations", reps);
  ctx.report("total_sends", static_cast<double>(sends / reps));
  ctx.report("total_rounds", static_cast<double>(rounds / static_cast<std::size_t>(reps)));
}

FTDB_BENCH(collectives_functional, "perf_collectives/functional_oracle_n243") {
  // The correctness layer at a non-power-of-two rank count (B_{3,5}): every
  // generator verified against the serial oracle.
  for (const ScheduleKind kind :
       {ScheduleKind::AllToAllBruck, ScheduleKind::AllgatherRecursiveDoubling,
        ScheduleKind::AllgatherBruck, ScheduleKind::AllreduceRecursiveHalvingDoubling,
        ScheduleKind::AllreduceReduceScatterAllgather}) {
    verify_schedule_functional(build_schedule(kind, 243));
  }
  ctx.report("ranks", 243);
}

FTDB_BENCH(collectives_a2a_healthy, "perf_collectives/bruck_a2a_debruijn_h8") {
  // End-to-end Bruck all-to-all on a healthy B_{2,8}: 256 ranks, 8 rounds,
  // 65k logical sends routed hop by hop through the packet engine.
  const Graph target = ftdb::debruijn_base2(8);
  const Machine m = Machine::direct(target);
  const Schedule s = build_schedule(ScheduleKind::AllToAllBruck, 256);
  const ScheduleRunResult r = execute_schedule(m, target, s, identity_ranks(256));
  ctx.report("rounds", static_cast<double>(r.rounds));
  ctx.report("total_cycles", static_cast<double>(r.total_cycles));
  ctx.report("total_hop_cycles", static_cast<double>(r.total_hop_cycles));
  ctx.report("max_link_congestion", static_cast<double>(r.max_link_congestion));
  ctx.report("delivered", static_cast<double>(r.delivered));
}

FTDB_BENCH(collectives_allreduce_healthy, "perf_collectives/allreduce_rhd_debruijn_h8") {
  const Graph target = ftdb::debruijn_base2(8);
  const Machine m = Machine::direct(target);
  const Schedule s = build_schedule(ScheduleKind::AllreduceRecursiveHalvingDoubling, 256);
  const ScheduleRunResult r = execute_schedule(m, target, s, identity_ranks(256));
  ctx.report("rounds", static_cast<double>(r.rounds));
  ctx.report("total_cycles", static_cast<double>(r.total_cycles));
  ctx.report("delivered", static_cast<double>(r.delivered));
}

FTDB_BENCH(collectives_degraded, "perf_collectives/bruck_a2a_degraded_h7") {
  // The failed-trial path: survivors-only schedule on a degraded B_{2,7}
  // (8 dead nodes), including the matched healthy-baseline run the campaign
  // prices slowdown against.
  const Graph target = ftdb::debruijn_base2(7);
  const ftdb::FaultSet faults(target.num_nodes(), {3, 17, 40, 64, 77, 90, 101, 120});
  const Machine degraded = Machine::direct_with_faults(target, faults);
  const Machine healthy = Machine::direct(target);
  const CollectiveRunResult r = execute_collective(degraded, target, ScheduleKind::AllToAllBruck);
  const Schedule sched =
      build_schedule(ScheduleKind::AllToAllBruck,
                     static_cast<std::uint32_t>(r.participants.size()));
  const ScheduleRunResult base = execute_schedule(healthy, target, sched, r.participants);
  ctx.report("participants", static_cast<double>(r.participants.size()));
  ctx.report("degraded_cycles", static_cast<double>(r.run.total_cycles));
  ctx.report("healthy_cycles", static_cast<double>(base.total_cycles));
  ctx.report("undeliverable", static_cast<double>(r.run.undeliverable));
}

FTDB_BENCH(collectives_campaign, "perf_collectives/campaign_collective_h5_k2") {
  // The production shape: a campaign cell with the collective metric on —
  // per-trial schedule execution dominated by the degraded/baseline pair.
  using namespace ftdb::campaign;
  ScenarioSpec spec;
  spec.name = "perf";
  spec.seed = 7;
  spec.trials = 400;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 5}};
  spec.spares = {2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.05, 1.0, 100.0, 1.0}};
  spec.metrics.diameter = false;
  spec.metrics.mttf = false;
  spec.metrics.collective = true;
  spec.metrics.collective_schedule = "all_to_all_bruck";
  // Serial on purpose: wall times must not depend on sibling benchmarks'
  // thread pools (the bench runner may already be running us in parallel).
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  const ScenarioResult& r = result.scenarios.front();
  ctx.report("trials", static_cast<double>(r.trials));
  ctx.report("slowdown_mean", r.collective_slowdown.mean);
  ctx.report("unreachable", static_cast<double>(r.collective_unreachable));
  ctx.report("baseline_cycles", static_cast<double>(r.collective_baseline_cycles));
}
