// PERF1: google-benchmark timings for building the fault-tolerant graphs and
// running the reconfiguration algorithm. Construction is O((N+k) * k) edges;
// reconfiguration is O(N + k) — both trivially fast, which is itself a claim
// worth pinning (reconfiguration is a table scan, not a search).
#include <benchmark/benchmark.h>

#include <random>

#include "ft/ft_debruijn.hpp"
#include "ft/reconfigure.hpp"
#include "ft/tolerance.hpp"
#include "topology/debruijn.hpp"

namespace {

void BM_BuildTargetDeBruijn(benchmark::State& state) {
  const auto h = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftdb::debruijn_base2(h));
  }
  state.SetComplexityN(1 << h);
}
BENCHMARK(BM_BuildTargetDeBruijn)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Complexity();

void BM_BuildFtDeBruijn(benchmark::State& state) {
  const auto h = static_cast<unsigned>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftdb::ft_debruijn_base2(h, k));
  }
}
BENCHMARK(BM_BuildFtDeBruijn)
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Args({10, 2})
    ->Args({10, 8})
    ->Args({12, 4});

void BM_BuildFtDeBruijnBaseM(benchmark::State& state) {
  const auto m = static_cast<std::uint64_t>(state.range(0));
  const auto h = static_cast<unsigned>(state.range(1));
  const auto k = static_cast<unsigned>(state.range(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ftdb::ft_debruijn_graph({.base = m, .digits = h, .spares = k}));
  }
}
BENCHMARK(BM_BuildFtDeBruijnBaseM)->Args({3, 6, 2})->Args({4, 5, 2})->Args({5, 4, 3});

void BM_Reconfiguration(benchmark::State& state) {
  const auto h = static_cast<unsigned>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  const std::size_t universe = (std::size_t{1} << h) + k;
  std::mt19937_64 rng(1);
  const ftdb::FaultSet faults = ftdb::FaultSet::random(universe, k, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftdb::monotone_embedding(faults));
  }
}
BENCHMARK(BM_Reconfiguration)->Args({10, 4})->Args({14, 4})->Args({18, 8})->Args({20, 16});

void BM_VerifyOneFaultSet(benchmark::State& state) {
  const auto h = static_cast<unsigned>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  const ftdb::Graph target = ftdb::debruijn_base2(h);
  const ftdb::Graph ft = ftdb::ft_debruijn_base2(h, k);
  std::mt19937_64 rng(2);
  const ftdb::FaultSet faults = ftdb::FaultSet::random(ft.num_nodes(), k, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftdb::monotone_embedding_survives(target, ft, faults));
  }
}
BENCHMARK(BM_VerifyOneFaultSet)->Args({8, 2})->Args({10, 4})->Args({12, 4});

}  // namespace

BENCHMARK_MAIN();
