// PERF1: timings for building the fault-tolerant graphs and running the
// reconfiguration algorithm. Construction is O((N+k) * k) edges;
// reconfiguration is O(N + k) — both trivially fast, which is itself a claim
// worth pinning (reconfiguration is a table scan, not a search). Each
// benchmark runs a fixed iteration count and reports it, so per-op time is
// wall_seconds / iterations.
#include <random>

#include "analysis/bench_registry.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/reconfigure.hpp"
#include "ft/tolerance.hpp"
#include "topology/debruijn.hpp"

namespace {

using ftdb::analysis::BenchContext;

void build_target_debruijn(BenchContext& ctx, unsigned h, int iterations) {
  std::size_t edges = 0;
  for (int i = 0; i < iterations; ++i) {
    edges = ftdb::debruijn_base2(h).num_edges();
  }
  ctx.report("iterations", iterations);
  ctx.report("h", h);
  ctx.report("edges", static_cast<double>(edges));
}

FTDB_BENCH(build_target_h10, "perf_construction/build_target_b2_h10") {
  build_target_debruijn(ctx, 10, 200);
}

FTDB_BENCH(build_target_h14, "perf_construction/build_target_b2_h14") {
  build_target_debruijn(ctx, 14, 20);
}

void build_ft_debruijn(BenchContext& ctx, unsigned h, unsigned k, int iterations) {
  std::size_t edges = 0;
  for (int i = 0; i < iterations; ++i) {
    edges = ftdb::ft_debruijn_base2(h, k).num_edges();
  }
  ctx.report("iterations", iterations);
  ctx.report("h", h);
  ctx.report("k", k);
  ctx.report("edges", static_cast<double>(edges));
}

FTDB_BENCH(build_ft_h8_k8, "perf_construction/build_ft_b2_h8_k8") {
  build_ft_debruijn(ctx, 8, 8, 100);
}

FTDB_BENCH(build_ft_h10_k8, "perf_construction/build_ft_b2_h10_k8") {
  build_ft_debruijn(ctx, 10, 8, 50);
}

FTDB_BENCH(build_ft_h12_k4, "perf_construction/build_ft_b2_h12_k4") {
  build_ft_debruijn(ctx, 12, 4, 10);
}

FTDB_BENCH(build_ft_basem, "perf_construction/build_ft_basem_m4_h5_k2") {
  constexpr int kIterations = 50;
  std::size_t edges = 0;
  for (int i = 0; i < kIterations; ++i) {
    edges = ftdb::ft_debruijn_graph({.base = 4, .digits = 5, .spares = 2}).num_edges();
  }
  ctx.report("iterations", kIterations);
  ctx.report("edges", static_cast<double>(edges));
}

void reconfiguration(BenchContext& ctx, unsigned h, unsigned k, int iterations) {
  const std::size_t universe = (std::size_t{1} << h) + k;
  const ftdb::FaultSet faults = ftdb::FaultSet::random(universe, k, ctx.rng());
  std::size_t mapped = 0;
  for (int i = 0; i < iterations; ++i) {
    mapped = ftdb::monotone_embedding(faults).size();
  }
  ctx.report("iterations", iterations);
  ctx.report("h", h);
  ctx.report("k", k);
  ctx.report("mapped_nodes", static_cast<double>(mapped));
}

FTDB_BENCH(reconfig_h14_k4, "perf_construction/reconfiguration_h14_k4") {
  reconfiguration(ctx, 14, 4, 500);
}

FTDB_BENCH(reconfig_h20_k16, "perf_construction/reconfiguration_h20_k16") {
  reconfiguration(ctx, 20, 16, 10);
}

FTDB_BENCH(verify_one_fault_set, "perf_construction/verify_one_fault_set_h10_k4") {
  constexpr unsigned h = 10;
  constexpr unsigned k = 4;
  constexpr int kIterations = 50;
  const ftdb::Graph target = ftdb::debruijn_base2(h);
  const ftdb::Graph ft = ftdb::ft_debruijn_base2(h, k);
  const ftdb::FaultSet faults = ftdb::FaultSet::random(ft.num_nodes(), k, ctx.rng());
  bool ok = true;
  for (int i = 0; i < kIterations; ++i) {
    // No short-circuit: every iteration must run the check or the wall-time
    // baseline is corrupted by a single failure.
    ok = ftdb::monotone_embedding_survives(target, ft, faults) && ok;
  }
  ctx.report("iterations", kIterations);
  ctx.report("survives", ok ? 1.0 : 0.0);
}

}  // namespace
