// PERF11: the subgraph-monomorphism search behind
// ft_shuffle_exchange_via_debruijn. The pruned search (static candidate
// filters + one-step lookahead) is what makes SE_h realizable inside B_{2,h}
// at h = 6 without the memoized-embedding cache; the unpruned VF2 reference
// is kept alongside as the oracle, so both engines are tracked here — steps
// are deterministic, wall time is the regression signal.
#include "analysis/bench_registry.hpp"
#include "graph/embedding.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace {

using ftdb::analysis::BenchContext;

void run_search(BenchContext& ctx, unsigned h, bool pruned) {
  const ftdb::Graph se = ftdb::shuffle_exchange_graph(h);
  const ftdb::Graph db = ftdb::debruijn_base2(h);
  ftdb::EmbeddingSearchStats stats;
  const auto phi = pruned
                       ? ftdb::find_subgraph_embedding(se, db, {}, &stats)
                       : ftdb::find_subgraph_embedding_reference(se, db, {}, &stats);
  ctx.report("found", phi.has_value() ? 1.0 : 0.0);
  ctx.report("steps", static_cast<double>(stats.steps));
  ctx.report("valid", phi && ftdb::is_valid_embedding(se, db, *phi) ? 1.0 : 0.0);
}

FTDB_BENCH(embedding_pruned_h5, "perf_embedding/se_in_debruijn_h5_pruned") {
  run_search(ctx, 5, true);
}

FTDB_BENCH(embedding_reference_h5, "perf_embedding/se_in_debruijn_h5_reference") {
  run_search(ctx, 5, false);
}

FTDB_BENCH(embedding_pruned_h6, "perf_embedding/se_in_debruijn_h6_pruned") {
  run_search(ctx, 6, true);
}

FTDB_BENCH(embedding_reference_h6, "perf_embedding/se_in_debruijn_h6_reference") {
  run_search(ctx, 6, false);
}

}  // namespace
