// PERF2: the graph-core hot paths behind every experiment — all-pairs
// structural analysis (one BFS per source), exact diameter, dense routing
// tables, and repeated single-source BFS. These pin the traversal substrate
// the same way perf_construction pins the builders: each benchmark runs a
// fixed iteration count and reports it, so per-op time is
// wall_seconds / iterations.
#include "analysis/bench_registry.hpp"
#include "analysis/structural.hpp"
#include "graph/algorithms.hpp"
#include "ft/ft_debruijn.hpp"
#include "sim/routing.hpp"
#include "topology/debruijn.hpp"

namespace {

using ftdb::analysis::BenchContext;

void all_pairs_debruijn(BenchContext& ctx, unsigned h, int iterations) {
  const ftdb::Graph g = ftdb::debruijn_base2(h);
  ftdb::analysis::StructuralSummary s;
  for (int i = 0; i < iterations; ++i) {
    s = ftdb::analysis::summarize_graph(g);
  }
  ctx.report("iterations", iterations);
  ctx.report("h", h);
  ctx.report("nodes", static_cast<double>(s.nodes));
  ctx.report("diameter", s.diameter);
  ctx.report("average_distance", s.average_distance);
}

FTDB_BENCH(all_pairs_h10, "perf_graph_core/all_pairs_b2_h10") {
  all_pairs_debruijn(ctx, 10, 5);
}

FTDB_BENCH(all_pairs_h12, "perf_graph_core/all_pairs_b2_h12") {
  all_pairs_debruijn(ctx, 12, 1);
}

FTDB_BENCH(all_pairs_ft_h10_k8, "perf_graph_core/all_pairs_ft_b2_h10_k8") {
  constexpr int kIterations = 2;
  const ftdb::Graph g = ftdb::ft_debruijn_base2(10, 8);
  ftdb::analysis::StructuralSummary s;
  for (int i = 0; i < kIterations; ++i) {
    s = ftdb::analysis::summarize_graph(g);
  }
  ctx.report("iterations", kIterations);
  ctx.report("nodes", static_cast<double>(s.nodes));
  ctx.report("diameter", s.diameter);
  ctx.report("average_distance", s.average_distance);
}

FTDB_BENCH(diameter_h11, "perf_graph_core/diameter_b2_h11") {
  constexpr int kIterations = 2;
  const ftdb::Graph g = ftdb::debruijn_base2(11);
  std::uint32_t d = 0;
  for (int i = 0; i < kIterations; ++i) {
    d = ftdb::diameter(g);
  }
  ctx.report("iterations", kIterations);
  ctx.report("diameter", d);
}

FTDB_BENCH(routing_table_h9, "perf_graph_core/routing_table_b2_h9") {
  constexpr int kIterations = 10;
  const ftdb::Graph g = ftdb::debruijn_base2(9);
  std::size_t reachable = 0;
  for (int i = 0; i < kIterations; ++i) {
    const ftdb::sim::RoutingTable table(g);
    reachable = table.reachable(0, static_cast<ftdb::NodeId>(g.num_nodes() - 1)) ? 1 : 0;
  }
  ctx.report("iterations", kIterations);
  ctx.report("reachable", static_cast<double>(reachable));
}

FTDB_BENCH(bfs_sources_h14, "perf_graph_core/bfs_64_sources_b2_h14") {
  constexpr int kIterations = 3;
  constexpr unsigned kSources = 64;
  const ftdb::Graph g = ftdb::debruijn_base2(14);
  std::uint64_t checksum = 0;
  for (int i = 0; i < kIterations; ++i) {
    for (unsigned s = 0; s < kSources; ++s) {
      const auto dist = ftdb::bfs_distances(g, static_cast<ftdb::NodeId>(s * 11));
      checksum += dist[dist.size() - 1];
    }
  }
  ctx.report("iterations", kIterations);
  ctx.report("sources", kSources);
  ctx.report("checksum", static_cast<double>(checksum));
}

FTDB_BENCH(components_h13, "perf_graph_core/connected_components_b2_h13") {
  constexpr int kIterations = 20;
  const ftdb::Graph g = ftdb::debruijn_base2(13);
  std::size_t components = 0;
  for (int i = 0; i < kIterations; ++i) {
    components = ftdb::num_connected_components(g);
  }
  ctx.report("iterations", kIterations);
  ctx.report("components", static_cast<double>(components));
}

}  // namespace
