// PERF5: machine lifetime (MTTF) with and without spares — what the paper's
// k spares buy operationally. Empirical Monte Carlo vs the analytic model.
//
// Expected shape: MTTF scales roughly linearly with k+1 (each spare adds one
// more expected failure-wait), and the simulation matches the analytic model
// within Monte Carlo noise.
#include <iostream>

#include "analysis/table.hpp"
#include "sim/lifetime.hpp"

int main() {
  using namespace ftdb;
  analysis::Table t({"N", "p (per step)", "k", "analytic MTTF", "empirical MTTF",
                     "rel. error", "lifetime multiplier vs k=0"});
  for (const std::uint64_t n : {64ull, 256ull}) {
    for (const double p : {0.001, 0.0001}) {
      for (const unsigned k : {0u, 1u, 2u, 4u, 8u}) {
        const sim::LifetimeParams params{.target_nodes = n, .spares = k, .failure_prob = p};
        const sim::LifetimeResult r = sim::simulate_lifetime(params, 3000, 99);
        t.add_row({analysis::fmt_u64(n), analysis::fmt_double(p, 4), analysis::fmt_u64(k),
                   analysis::fmt_double(r.analytic_mttf, 1),
                   analysis::fmt_double(r.empirical_mttf, 1),
                   analysis::fmt_double(
                       100.0 * (r.empirical_mttf - r.analytic_mttf) / r.analytic_mttf, 2) + "%",
                   analysis::fmt_ratio(sim::lifetime_multiplier(n, k, p))});
      }
    }
  }
  std::cout << "PERF5: machine lifetime vs spares (failure race until spares exhausted)\n\n";
  std::cout << t.render();
  std::cout << "\nshape check: MTTF multiplier ~ k+1; empirical matches analytic within\n"
               "Monte Carlo noise (a few percent at 3000 trials).\n";
  return 0;
}
