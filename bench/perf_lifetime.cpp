// PERF5: machine lifetime (MTTF) with and without spares — what the paper's
// k spares buy operationally. Empirical Monte Carlo vs the analytic model.
//
// Expected shape: MTTF scales roughly linearly with k+1 (each spare adds one
// more expected failure-wait), and the simulation matches the analytic model
// within Monte Carlo noise.
#include "analysis/bench_registry.hpp"
#include "sim/lifetime.hpp"

namespace {

using ftdb::analysis::BenchContext;

void lifetime(BenchContext& ctx, std::uint64_t n, double p, unsigned k) {
  const ftdb::sim::LifetimeParams params{.target_nodes = n, .spares = k, .failure_prob = p};
  const ftdb::sim::LifetimeResult r = ftdb::sim::simulate_lifetime(params, 3000, 99);
  ctx.report("nodes", static_cast<double>(n));
  ctx.report("failure_prob", p);
  ctx.report("spares", k);
  ctx.report("analytic_mttf", r.analytic_mttf);
  ctx.report("empirical_mttf", r.empirical_mttf);
  ctx.report("rel_error",
             (r.empirical_mttf - r.analytic_mttf) / r.analytic_mttf);
  ctx.report("lifetime_multiplier", ftdb::sim::lifetime_multiplier(n, k, p));
}

FTDB_BENCH(lifetime_n64_k0, "perf_lifetime/n64_p001_k0") { lifetime(ctx, 64, 0.001, 0); }
FTDB_BENCH(lifetime_n64_k4, "perf_lifetime/n64_p001_k4") { lifetime(ctx, 64, 0.001, 4); }
FTDB_BENCH(lifetime_n64_k8, "perf_lifetime/n64_p001_k8") { lifetime(ctx, 64, 0.001, 8); }
FTDB_BENCH(lifetime_n256_k0, "perf_lifetime/n256_p0001_k0") { lifetime(ctx, 256, 0.0001, 0); }
FTDB_BENCH(lifetime_n256_k8, "perf_lifetime/n256_p0001_k8") { lifetime(ctx, 256, 0.0001, 8); }

}  // namespace
