// perf_routing: the Router backends head-to-head — build time, next-hop
// latency, and the memory story that motivates the whole abstraction.
//
// The build_* entries construct each backend on B_{2,10} (1024 nodes; the
// table slab is ~6 MB there, the compressed runs ~100 KB, the implicit
// router 0 bytes). The next_hop_* entries walk full canonical routes for a
// fixed random pair sample, so wall_seconds / hops is the per-hop latency of
// the backend — the latency the engine's forwarding loop pays.
//
// implicit_b2_h18 is the scale demonstration: a healthy de Bruijn machine at
// N = 2^18 routes through the auto-selected implicit backend with zero
// router-owned memory, where the table backend's slab would be
// N^2 * 6 bytes ≈ 412 GB (reported as table_equivalent_bytes). No N^2
// allocation happens anywhere in the entry.
#include <chrono>
#include <span>
#include <vector>

#include "analysis/bench_registry.hpp"
#include "sim/router.hpp"
#include "topology/debruijn.hpp"

namespace {

using ftdb::analysis::BenchContext;
using ftdb::sim::Router;
using ftdb::sim::RouterBackend;
using ftdb::sim::RouterOptions;

constexpr unsigned kSmallH = 10;

RouterOptions forced(RouterOptions::Backend backend) {
  RouterOptions options;
  options.backend = backend;
  return options;
}

void build_bench(BenchContext& ctx, RouterOptions::Backend backend, int iterations) {
  const ftdb::Graph g = ftdb::debruijn_base2(kSmallH);
  std::size_t memory = 0;
  std::size_t selected_implicit = 0;
  for (int i = 0; i < iterations; ++i) {
    const auto router = ftdb::sim::make_router(g, forced(backend));
    memory = router->memory_bytes();
    selected_implicit = router->backend() == RouterBackend::Implicit ? 1 : 0;
  }
  ctx.report("iterations", iterations);
  ctx.report("nodes", static_cast<double>(g.num_nodes()));
  ctx.report("router_memory_bytes", static_cast<double>(memory));
  ctx.report("implicit_selected", static_cast<double>(selected_implicit));
}

FTDB_BENCH(build_table, "perf_routing/build_table_b2_h10") {
  build_bench(ctx, RouterOptions::Backend::Table, 5);
}

FTDB_BENCH(build_compressed, "perf_routing/build_compressed_b2_h10") {
  build_bench(ctx, RouterOptions::Backend::Compressed, 5);
}

FTDB_BENCH(build_implicit, "perf_routing/build_implicit_b2_h10") {
  // Auto selection: the cost here is the shape detection plus an O(1) object.
  build_bench(ctx, RouterOptions::Backend::Auto, 5);
}

/// Destination-sharded build: same bit-identical table, build_threads-way
/// parallel per-destination BFS. On a single-core runner this measures the
/// sharding overhead (thread spawn + join); on real hardware the speedup.
void build_sharded_bench(BenchContext& ctx, RouterOptions::Backend backend, unsigned threads,
                         int iterations) {
  const ftdb::Graph g = ftdb::debruijn_base2(kSmallH);
  RouterOptions options = forced(backend);
  options.build_threads = threads;
  std::size_t memory = 0;
  for (int i = 0; i < iterations; ++i) {
    const auto router = ftdb::sim::make_router(g, options);
    memory = router->memory_bytes();
  }
  ctx.report("iterations", iterations);
  ctx.report("nodes", static_cast<double>(g.num_nodes()));
  ctx.report("build_threads", static_cast<double>(threads));
  ctx.report("router_memory_bytes", static_cast<double>(memory));
}

FTDB_BENCH(build_table_sharded, "perf_routing/build_table_b2_h10_threads0") {
  build_sharded_bench(ctx, RouterOptions::Backend::Table, 0, 5);
}

FTDB_BENCH(build_compressed_sharded, "perf_routing/build_compressed_b2_h10_threads0") {
  build_sharded_bench(ctx, RouterOptions::Backend::Compressed, 0, 5);
}

/// Routes `pairs` random (src, dst) pairs hop by hop through next_hop() —
/// the forwarding loop's access pattern — and reports per-hop latency.
void next_hop_bench(BenchContext& ctx, const ftdb::Graph& g, const Router& router,
                    std::size_t pairs) {
  const std::size_t n = g.num_nodes();
  std::uint64_t hops = 0;
  std::uint64_t checksum = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto src = static_cast<ftdb::NodeId>(ctx.rng()() % n);
    const auto dst = static_cast<ftdb::NodeId>(ctx.rng()() % n);
    ftdb::NodeId cur = src;
    while (cur != dst) {
      cur = router.next_hop(dst, cur);
      ++hops;
      checksum += cur;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  ctx.report("pairs", static_cast<double>(pairs));
  ctx.report("hops", static_cast<double>(hops));
  ctx.report("ns_per_hop", hops == 0 ? 0.0 : ns / static_cast<double>(hops));
  ctx.report("checksum", static_cast<double>(checksum));
  ctx.report("router_memory_bytes", static_cast<double>(router.memory_bytes()));
}

void next_hop_small(BenchContext& ctx, RouterOptions::Backend backend) {
  const ftdb::Graph g = ftdb::debruijn_base2(kSmallH);
  const auto router = ftdb::sim::make_router(g, forced(backend));
  next_hop_bench(ctx, g, *router, 20000);
}

FTDB_BENCH(next_hop_table, "perf_routing/next_hop_table_b2_h10") {
  next_hop_small(ctx, RouterOptions::Backend::Table);
}

FTDB_BENCH(next_hop_compressed, "perf_routing/next_hop_compressed_b2_h10") {
  next_hop_small(ctx, RouterOptions::Backend::Compressed);
}

FTDB_BENCH(next_hop_implicit, "perf_routing/next_hop_implicit_b2_h10") {
  next_hop_small(ctx, RouterOptions::Backend::Implicit);
}

FTDB_BENCH(implicit_h18, "perf_routing/implicit_b2_h18") {
  const ftdb::Graph g = ftdb::debruijn_base2(18);  // N = 262144
  const auto router = ftdb::sim::make_router(g);   // auto: must go implicit
  ctx.report("implicit_selected",
             router->backend() == RouterBackend::Implicit ? 1.0 : 0.0);
  const double n = static_cast<double>(g.num_nodes());
  ctx.report("nodes", n);
  ctx.report("table_equivalent_bytes", n * n * 6.0);
  next_hop_bench(ctx, g, *router, 2000);
}

FTDB_BENCH(route_many_h18, "perf_routing/route_many_implicit_b2_h18") {
  // The batched forwarding hot path at N = 2^18: a cohort of in-flight
  // walks advances one wave per route_many call, each walk carrying its
  // RouteHint across hops exactly like the packet engine's per-cycle waves.
  // This is the path the scalar implicit_b2_h18 entry is the baseline for —
  // identical canonical routes (same checksum discipline), batched latency.
  const ftdb::Graph g = ftdb::debruijn_base2(18);  // N = 262144
  const auto router = ftdb::sim::make_router(g);   // auto: must go implicit
  ctx.report("implicit_selected",
             router->backend() == RouterBackend::Implicit ? 1.0 : 0.0);
  const std::size_t n = g.num_nodes();
  ctx.report("nodes", static_cast<double>(n));

  const std::size_t pairs = 2000;
  std::vector<ftdb::NodeId> dests(pairs), cur(pairs), hops(pairs);
  std::vector<ftdb::sim::RouteHint> hints(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    do {
      cur[i] = static_cast<ftdb::NodeId>(ctx.rng()() % n);
      dests[i] = static_cast<ftdb::NodeId>(ctx.rng()() % n);
    } while (cur[i] == dests[i]);
  }

  std::uint64_t hop_count = 0;
  std::uint64_t checksum = 0;
  std::size_t live = pairs;
  const auto start = std::chrono::steady_clock::now();
  while (live > 0) {
    router->route_many(std::span(dests).first(live), std::span(cur).first(live),
                       std::span(hops).first(live), std::span(hints).first(live));
    std::size_t w = 0;
    for (std::size_t i = 0; i < live; ++i) {
      const ftdb::NodeId hop = hops[i];
      ++hop_count;
      checksum += hop;
      if (hop == dests[i]) continue;  // delivered: drop from the cohort
      dests[w] = dests[i];
      cur[w] = hop;
      hints[w] = hints[i];
      ++w;
    }
    live = w;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  ctx.report("pairs", static_cast<double>(pairs));
  ctx.report("hops", static_cast<double>(hop_count));
  ctx.report("ns_per_hop", hop_count == 0 ? 0.0 : ns / static_cast<double>(hop_count));
  ctx.report("checksum", static_cast<double>(checksum));
  ctx.report("router_memory_bytes", static_cast<double>(router->memory_bytes()));
}

FTDB_BENCH(step_kernel_h18, "perf_routing/step_kernel_b2_h18") {
  // The distance stepper's O(h) incremental step() against its full-rescan
  // reset(), measured bare (no router, no memo cache): a long random walk
  // over algebraic neighbors for the step cost, and a random node sample for
  // the rescan cost. The ratio is the win the batched router banks per hop.
  const ftdb::DeBruijnParams params{.base = 2, .digits = 18};
  const std::uint64_t n = 1ull << 18;
  ftdb::DebruijnDistanceStepper st(params, static_cast<ftdb::NodeId>(ctx.rng()() % n));

  const std::size_t steps = 200000;
  std::uint64_t checksum = st.reset(static_cast<ftdb::NodeId>(ctx.rng()() % n));
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < steps; ++i) {
    const std::uint64_t v = st.node();
    const std::uint64_t r = ctx.rng()();
    ftdb::NodeId next;  // one of the four algebraic de Bruijn neighbors
    switch (r & 3) {
      case 0: next = static_cast<ftdb::NodeId>((v << 1) & (n - 1)); break;
      case 1: next = static_cast<ftdb::NodeId>(((v << 1) | 1) & (n - 1)); break;
      case 2: next = static_cast<ftdb::NodeId>(v >> 1); break;
      default: next = static_cast<ftdb::NodeId>((v >> 1) | (n >> 1)); break;
    }
    checksum += st.step(next);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  const double step_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());

  const std::size_t resets = 20000;
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < resets; ++i) {
    checksum += st.reset(static_cast<ftdb::NodeId>(ctx.rng()() % n));
  }
  elapsed = std::chrono::steady_clock::now() - start;
  const double reset_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());

  ctx.report("steps", static_cast<double>(steps));
  ctx.report("ns_per_step", step_ns / static_cast<double>(steps));
  ctx.report("resets", static_cast<double>(resets));
  ctx.report("ns_per_reset", reset_ns / static_cast<double>(resets));
  ctx.report("checksum", static_cast<double>(checksum));
}

}  // namespace
