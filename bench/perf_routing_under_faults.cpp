// PERF2: the introduction's motivation measured — "a single processor or link
// failure can severely degrade the performance of the parallel machine."
//
// Identical uniform traffic is run on:
//   (a) the healthy bare target B_{2,h},
//   (b) the bare target with f faults (degraded: dropped packets, detours),
//   (c) the fault-tolerant machine B^k_{2,h} with the same f faults,
//       reconfigured (full service, latency identical to (a)).
//
// Expected shape: (b) loses traffic and slows down as f grows; (c) matches
// (a) exactly for every f <= k.
#include <iostream>
#include <random>

#include "analysis/table.hpp"
#include "ft/ft_debruijn.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"
#include "topology/debruijn.hpp"

int main() {
  using namespace ftdb;
  const unsigned h = 7;           // 128-node machine
  const unsigned k = 8;
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);
  const auto packets = sim::uniform_traffic(target.num_nodes(), 4000, 8, 2026);

  const sim::Machine healthy = sim::Machine::direct(target);
  const sim::SimStats base = sim::run_packets(healthy, target, packets);

  analysis::Table t({"faults f", "machine", "delivered %", "avg latency", "max latency",
                     "throughput (pkt/cyc)"});
  auto add_row = [&](unsigned f, const std::string& name, const sim::SimStats& s) {
    t.add_row({analysis::fmt_u64(f), name,
               analysis::fmt_double(100.0 * s.delivered_fraction(), 1),
               analysis::fmt_double(s.average_latency(), 2),
               analysis::fmt_u64(s.max_latency),
               analysis::fmt_double(s.throughput(), 2)});
  };
  add_row(0, "bare target (healthy)", base);

  std::mt19937_64 rng(7);
  for (unsigned f : {1u, 2u, 4u, 8u}) {
    const FaultSet bare_faults = FaultSet::random(target.num_nodes(), f, rng);
    const sim::Machine degraded = sim::Machine::direct_with_faults(target, bare_faults);
    add_row(f, "bare target (degraded)", sim::run_packets(degraded, target, packets));

    const FaultSet ft_faults = FaultSet::random(ft.num_nodes(), f, rng);
    const sim::Machine reconf = sim::Machine::reconfigured(ft, ft_faults, target.num_nodes());
    add_row(f, "B^k_{2,h} reconfigured", sim::run_packets(reconf, target, packets));
  }

  std::cout << "PERF2: routing under faults, B_{2," << h << "} (" << target.num_nodes()
            << " nodes), k = " << k << ", 4000 uniform packets\n\n";
  std::cout << t.render();
  std::cout << "\nshape check: every reconfigured row must match the healthy row; the\n"
               "degraded rows lose traffic because faulty sources/destinations drop out\n"
               "and surviving routes detour around dead nodes.\n";
  return 0;
}
