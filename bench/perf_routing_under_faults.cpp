// PERF2: the introduction's motivation measured — "a single processor or link
// failure can severely degrade the performance of the parallel machine."
//
// Identical uniform traffic is run on:
//   (a) the healthy bare target B_{2,h},
//   (b) the bare target with f faults (degraded: dropped packets, detours),
//   (c) the fault-tolerant machine B^k_{2,h} with the same f faults,
//       reconfigured (full service, latency identical to (a)).
//
// Expected shape: (b) loses traffic and slows down as f grows; (c) matches
// (a) exactly for every f <= k. Each fault count is its own registry entry so
// bench_runner can parallelize and the JSON keeps per-f latency stats.
#include "analysis/bench_registry.hpp"
#include "ft/ft_debruijn.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"
#include "topology/debruijn.hpp"

namespace {

using ftdb::analysis::BenchContext;

constexpr unsigned kH = 7;  // 128-node machine
constexpr unsigned kK = 8;
constexpr std::size_t kPackets = 4000;

std::vector<ftdb::sim::Packet> traffic(const ftdb::Graph& target) {
  return ftdb::sim::uniform_traffic(target.num_nodes(), kPackets, 8, 2026);
}

FTDB_BENCH(routing_healthy, "perf_routing_under_faults/healthy_bare_target") {
  const ftdb::Graph target = ftdb::debruijn_base2(kH);
  const ftdb::sim::Machine healthy = ftdb::sim::Machine::direct(target);
  const auto stats = ftdb::sim::run_packets(healthy, target, traffic(target));
  ctx.report_stats("sim", stats);
}

void degraded(BenchContext& ctx, unsigned f) {
  const ftdb::Graph target = ftdb::debruijn_base2(kH);
  const ftdb::FaultSet faults = ftdb::FaultSet::random(target.num_nodes(), f, ctx.rng());
  const ftdb::sim::Machine machine = ftdb::sim::Machine::direct_with_faults(target, faults);
  const auto stats = ftdb::sim::run_packets(machine, target, traffic(target));
  ctx.report("faults", f);
  ctx.report_stats("sim", stats);
}

void reconfigured(BenchContext& ctx, unsigned f) {
  const ftdb::Graph target = ftdb::debruijn_base2(kH);
  const ftdb::Graph ft = ftdb::ft_debruijn_base2(kH, kK);
  const ftdb::FaultSet faults = ftdb::FaultSet::random(ft.num_nodes(), f, ctx.rng());
  const ftdb::sim::Machine machine =
      ftdb::sim::Machine::reconfigured(ft, faults, target.num_nodes());
  const auto stats = ftdb::sim::run_packets(machine, target, traffic(target));
  ctx.report("faults", f);
  ctx.report_stats("sim", stats);
}

FTDB_BENCH(routing_degraded_f1, "perf_routing_under_faults/degraded_f1") { degraded(ctx, 1); }
FTDB_BENCH(routing_degraded_f4, "perf_routing_under_faults/degraded_f4") { degraded(ctx, 4); }
FTDB_BENCH(routing_degraded_f8, "perf_routing_under_faults/degraded_f8") { degraded(ctx, 8); }
FTDB_BENCH(routing_reconf_f1, "perf_routing_under_faults/reconfigured_f1") { reconfigured(ctx, 1); }
FTDB_BENCH(routing_reconf_f4, "perf_routing_under_faults/reconfigured_f4") { reconfigured(ctx, 4); }
FTDB_BENCH(routing_reconf_f8, "perf_routing_under_faults/reconfigured_f8") { reconfigured(ctx, 8); }

}  // namespace
