// Serving-layer benchmarks: the cost model behind the always-on service.
//
//  * incremental_vs_rebuild — the headline claim: patching the shape-delta
//    CompressedRouter for one fault (apply_fault + retract_fault) versus the
//    2-BFS-per-destination from-scratch rebuild, on B_{2,12} (N = 4096). The
//    `speedup` metric is asserted >= 10x in CI.
//  * fault_event_latency — end-to-end mutation latency through the service
//    (journal append + reconfigure + router patch + epoch publish).
//  * query_throughput — FT-surface and bare-surface reads through a pinned
//    Reader while faults are outstanding.
//  * journal_replay — cold-start recovery of a journaled event stream.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "analysis/bench_registry.hpp"
#include "serve/service.hpp"
#include "sim/router.hpp"
#include "topology/debruijn.hpp"

namespace {

using ftdb::FaultEvent;
using ftdb::FaultKind;
using ftdb::Graph;
using ftdb::GraphBuilder;
using ftdb::NodeId;
using ftdb::analysis::BenchContext;

constexpr unsigned kH = 12;  // N = 4096: the scale where rebuilds visibly hurt

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

Graph one_fault_degraded(const Graph& target, NodeId v) {
  GraphBuilder b(target.num_nodes());
  for (NodeId u = 0; u < target.num_nodes(); ++u) {
    if (u == v) continue;
    for (const NodeId w : target.neighbors(u)) {
      if (u < w && w != v) b.add_edge(u, w);
    }
  }
  return b.build();
}

FTDB_BENCH(serve_incremental_vs_rebuild, "perf_serve/incremental_vs_rebuild_b2h12") {
  const Graph target = ftdb::debruijn_base2(kH);
  const auto n = static_cast<NodeId>(target.num_nodes());

  constexpr int kRebuilds = 3;
  auto start = std::chrono::steady_clock::now();
  std::size_t exceptions = 0;
  for (int i = 0; i < kRebuilds; ++i) {
    const ftdb::sim::CompressedRouter scratch(
        one_fault_degraded(target, static_cast<NodeId>((i * 977 + 1) % n)));
    exceptions += scratch.num_exceptions();
  }
  const double rebuild_s = seconds_since(start) / kRebuilds;

  constexpr int kPatches = 24;
  ftdb::sim::CompressedRouter incremental(target);
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPatches; ++i) {
    const auto v = static_cast<NodeId>((i * 977 + 1) % n);
    incremental.apply_fault(v);
    incremental.retract_fault(v);
  }
  // One patch cycle = apply + retract, i.e. two single-fault transitions.
  const double patch_s = seconds_since(start) / (2 * kPatches);

  ctx.report("nodes", n);
  ctx.report("rebuild_seconds", rebuild_s);
  ctx.report("incremental_seconds", patch_s);
  ctx.report("speedup", rebuild_s / patch_s);
  ctx.report("rebuild_exceptions", static_cast<double>(exceptions) / kRebuilds);
}

FTDB_BENCH(serve_fault_event_latency, "perf_serve/fault_event_latency_b2h12") {
  const std::string journal =
      "/tmp/ftdb_perf_serve_" + std::to_string(static_cast<unsigned>(::getpid())) + ".jrn";
  std::remove(journal.c_str());
  ftdb::serve::ServeConfig config;
  config.digits = kH;
  config.spares = 8;
  config.journal_path = journal;
  config.fsync_journal = false;  // measure compute, not disk sync
  ftdb::serve::ReconfigurationService service(config);

  constexpr int kCycles = 12;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kCycles; ++i) {
    const auto v = static_cast<NodeId>((i * 1291 + 7) % service.num_logical_nodes());
    service.fault({FaultKind::kNode, v, 0});
    service.repair(v);
  }
  ctx.report("seconds_per_mutation", seconds_since(start) / (2 * kCycles));
  ctx.report("events", 2 * kCycles);
  std::remove(journal.c_str());
}

FTDB_BENCH(serve_query_throughput, "perf_serve/query_throughput_b2h12") {
  ftdb::serve::ServeConfig config;
  config.digits = kH;
  config.spares = 4;
  ftdb::serve::ReconfigurationService service(config);
  for (NodeId v : {NodeId{17}, NodeId{900}}) service.fault({FaultKind::kNode, v, 0});
  auto reader = service.reader();
  const auto n = static_cast<NodeId>(service.num_logical_nodes());

  constexpr int kQueries = 200000;
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < kQueries; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift: cheap vs the query
    const auto from = static_cast<NodeId>(x % n);
    const auto dest = static_cast<NodeId>((x >> 32) % n);
    sink += reader.next_hop(dest, from);
    sink += reader.bare_next_hop(dest, from);
  }
  const double elapsed = seconds_since(start);
  ctx.report("queries", 2 * kQueries);
  ctx.report("queries_per_second", 2 * kQueries / elapsed);
  ctx.report("sink", static_cast<double>(sink & 0xFFFF));
}

FTDB_BENCH(serve_journal_replay, "perf_serve/journal_replay_b2h10") {
  const std::string journal =
      "/tmp/ftdb_perf_replay_" + std::to_string(static_cast<unsigned>(::getpid())) + ".jrn";
  std::remove(journal.c_str());
  ftdb::serve::ServeConfig config;
  config.digits = 10;
  config.spares = 6;
  config.journal_path = journal;
  config.fsync_journal = false;
  std::uint64_t hash = 0;
  {
    ftdb::serve::ReconfigurationService service(config);
    for (int i = 0; i < 40; ++i) {
      const auto v = static_cast<NodeId>((i * 353 + 11) % service.num_logical_nodes());
      service.fault({FaultKind::kNode, v, 0});
      if (i % 2 == 1) service.repair(v);
    }
    hash = service.state_hash();
  }
  const auto start = std::chrono::steady_clock::now();
  ftdb::serve::ReconfigurationService recovered(config);
  const double elapsed = seconds_since(start);
  ctx.report("replay_seconds", elapsed);
  ctx.report("replayed_events", static_cast<double>(recovered.replayed_events()));
  ctx.report("hash_match", recovered.state_hash() == hash ? 1 : 0);
  std::remove(journal.c_str());
}

}  // namespace
