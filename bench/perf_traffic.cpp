// PERF12: the skewed-traffic generators and their end-to-end cost through
// the packet engine. The campaign's traffic metric regenerates a workload
// every trial, so generator throughput multiplies directly into campaign
// wall time; the engine runs put a number on how much a skewed destination
// law costs in delivered cycles compared to uniform load.
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/bench_registry.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "topology/debruijn.hpp"

namespace {

using ftdb::analysis::BenchContext;

constexpr std::size_t kNodes = 64;       // B_{2,6}
constexpr std::size_t kGenPackets = 200'000;

FTDB_BENCH(traffic_gen_zipf, "perf_traffic/generate_zipf_200k") {
  const auto packets = ftdb::sim::zipf_traffic(kNodes, kGenPackets, 1.2, 7);
  ctx.report("packets", static_cast<double>(packets.size()));
  ctx.report("head_share",
             static_cast<double>(std::count_if(packets.begin(), packets.end(),
                                               [](const ftdb::sim::Packet& p) {
                                                 return p.dst == 0;
                                               })) /
                 static_cast<double>(packets.size()));
}

FTDB_BENCH(traffic_gen_burst, "perf_traffic/generate_hotspot_burst_200k") {
  const std::vector<ftdb::NodeId> hot = {3, 17, 42};
  const auto packets =
      ftdb::sim::hotspot_burst_traffic(kNodes, kGenPackets, hot, 0.5, 8, 7);
  ctx.report("packets", static_cast<double>(packets.size()));
}

FTDB_BENCH(traffic_gen_trace_roundtrip, "perf_traffic/trace_format_parse_50k") {
  const auto packets = ftdb::sim::uniform_traffic(kNodes, 50'000, 4, 7);
  const std::string text = ftdb::sim::format_trace(packets);
  const auto replayed = ftdb::sim::trace_traffic(text, kNodes);
  ctx.report("packets", static_cast<double>(replayed.size()));
  ctx.report("bytes", static_cast<double>(text.size()));
}

void run_engine(BenchContext& ctx, std::vector<ftdb::sim::Packet> packets) {
  const ftdb::Graph target = ftdb::debruijn_base2(6);
  const ftdb::sim::Machine machine = ftdb::sim::Machine::direct(target);
  const auto stats = ftdb::sim::run_packets(machine, target, packets);
  ctx.report("delivered_fraction", stats.delivered_fraction());
  ctx.report("cycles", static_cast<double>(stats.cycles));
  ctx.report("max_queue_depth", static_cast<double>(stats.max_queue_depth));
}

FTDB_BENCH(traffic_engine_uniform, "perf_traffic/engine_b26_uniform_8k") {
  run_engine(ctx, ftdb::sim::uniform_traffic(kNodes, 8192, 16, 7));
}

FTDB_BENCH(traffic_engine_zipf, "perf_traffic/engine_b26_zipf_8k") {
  run_engine(ctx, ftdb::sim::zipf_traffic(kNodes, 8192, 1.2, 7, 16));
}

FTDB_BENCH(traffic_engine_burst, "perf_traffic/engine_b26_burst_8k") {
  const std::vector<ftdb::NodeId> hot = {3, 17, 42};
  run_engine(ctx, ftdb::sim::hotspot_burst_traffic(kNodes, 8192, hot, 0.5, 8, 7, 16));
}

}  // namespace
