// STRUCT: structural comparison of the target and fault-tolerant graphs —
// node/edge counts, degree spread, diameter and average distance — plus the
// reconfigured-diameter check (the dilation-1 embedding preserves every
// logical distance exactly).
#include <iostream>

#include "analysis/structural.hpp"

int main() {
  using namespace ftdb::analysis;
  std::cout << "Structural properties of target vs fault-tolerant graphs\n\n";
  std::cout << structural_comparison_table(4, 6, 3).render();
  std::cout << "\n";
  std::cout << reconfigured_diameter_report(6, 2, 50, 11);
  std::cout << reconfigured_diameter_report(7, 4, 25, 12);
  std::cout << "\nshape check: the FT graphs keep the target's diameter or shrink it\n"
               "(the offset blocks only add shortcuts), and every reconfiguration\n"
               "preserves the logical diameter exactly.\n";
  return 0;
}
