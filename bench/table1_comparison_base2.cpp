// TAB1: the Section I comparison for base-2 targets — our construction
// (N+k nodes, degree 4k+4) versus Samatham–Pradhan (N^{log2(2k+1)} nodes,
// degree 4k+2). Expected shape: the S-P node count explodes polynomially in N
// while ours stays N+k; our degree exceeds theirs by exactly 2.
#include <iostream>

#include "analysis/experiments.hpp"

int main() {
  std::cout << "Table 1: fault-tolerant base-2 de Bruijn graphs, ours vs Samatham-Pradhan\n\n";
  std::cout << ftdb::analysis::table1_comparison_base2(3, 10, 4).render();
  return 0;
}
