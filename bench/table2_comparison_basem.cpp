// TAB2: the Section I comparison for base-m targets — ours (m^h + k nodes,
// degree 4(m-1)k + 2m) versus Samatham–Pradhan (N^{log_m(mk+1)} nodes,
// degree 2mk + 2).
#include <iostream>

#include "analysis/experiments.hpp"

int main() {
  std::cout << "Table 2: fault-tolerant base-m de Bruijn graphs, ours vs Samatham-Pradhan\n\n";
  std::cout << ftdb::analysis::table2_comparison_basem(4, 4).render();
  return 0;
}
