// TAB3: measured maximum degree of every construction versus the stated
// bounds (Corollaries 1-4 for the de Bruijn families, Section V's 2k+3 for
// buses, and the natural-labeling shuffle-exchange figures). Every row must
// report "yes".
#include <iostream>

#include "analysis/experiments.hpp"

int main() {
  std::cout << "Table 3: measured max degree vs stated bounds\n\n";
  std::cout << ftdb::analysis::table3_degree_bounds(5, 5).render();
  return 0;
}
