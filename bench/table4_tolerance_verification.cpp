// TAB4: tolerance verification for Theorems 1-2 and the shuffle-exchange
// construction — exhaustive over all C(N+k, k) fault sets where feasible,
// seeded Monte Carlo otherwise. Every row must report "yes".
#include <iostream>

#include "analysis/experiments.hpp"

int main() {
  std::cout << "Table 4: (k,G)-tolerance verification\n\n";
  std::cout << ftdb::analysis::table4_tolerance_verification(2000, 42).render();
  return 0;
}
