// Ascend/Descend demo: run a normal algorithm (all-reduce) on the hypercube,
// the de Bruijn graph and the shuffle-exchange, then kill nodes on the
// fault-tolerant machines, reconfigure, and run again — the answer and the
// step counts are unchanged.
//
//   $ ./ascend_descend_demo [h] [k]
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "sim/ascend_descend.hpp"
#include "topology/debruijn.hpp"

int main(int argc, char** argv) {
  const unsigned h = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const unsigned k = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;

  using namespace ftdb;
  const std::size_t n = std::size_t{1} << h;
  std::vector<std::int64_t> values(n);
  std::iota(values.begin(), values.end(), 1);
  const std::int64_t expected = std::accumulate(values.begin(), values.end(), std::int64_t{0});
  const auto add = [](std::int64_t a, std::int64_t b) { return a + b; };

  std::cout << "all-reduce of 1.." << n << " (expected sum " << expected << ")\n\n";

  const auto cube = sim::ascend_hypercube(h, values, add);
  std::cout << "hypercube Q_" << h << ":            " << cube.communication_steps
            << " steps, result " << cube.values[0] << "\n";

  const auto db = sim::ascend_debruijn(h, values, add, 2);
  std::cout << "de Bruijn B_{2," << h << "} (dual): " << db.communication_steps
            << " steps, result " << db.values[0] << "\n";

  const auto se = sim::ascend_shuffle_exchange(h, values, add);
  std::cout << "shuffle-exchange SE_" << h << ":    " << se.communication_steps
            << " steps, result " << se.values[0] << "\n";

  // Now on faulted, reconfigured machines.
  std::cout << "\nafter " << k << " faults + reconfiguration:\n";
  const Graph ft_db = ft_debruijn_base2(h, k);
  std::vector<NodeId> faults;
  for (unsigned i = 0; i < k; ++i) faults.push_back(static_cast<NodeId>(3 * i + 1));
  const FaultSet db_faults(ft_db.num_nodes(), faults);
  const sim::Machine db_machine = sim::Machine::reconfigured(ft_db, db_faults, n);
  const auto db_after = sim::ascend_debruijn(h, values, add, 2, &db_machine);
  std::cout << "de Bruijn on B^" << k << "_{2," << h << "}:     " << db_after.communication_steps
            << " steps, result " << db_after.values[0] << " (links verified: "
            << (db_after.links_verified ? "yes" : "no") << ")\n";

  const auto se_ft = ft_shuffle_exchange_natural(h, k);
  const FaultSet se_faults(se_ft.ft_graph.num_nodes(), faults);
  const sim::Machine se_machine = sim::Machine::reconfigured(se_ft.ft_graph, se_faults, n);
  const auto se_after = sim::ascend_shuffle_exchange(h, values, add, &se_machine);
  std::cout << "shuffle-exchange (natural FT): " << se_after.communication_steps
            << " steps, result " << se_after.values[0] << " (links verified: "
            << (se_after.links_verified ? "yes" : "no") << ")\n";

  const bool ok = db_after.values[0] == expected && se_after.values[0] == expected &&
                  db_after.communication_steps == db.communication_steps &&
                  se_after.communication_steps == se.communication_steps;
  std::cout << "\nidentical step counts and correct results after faults: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
