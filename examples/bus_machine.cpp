// Bus machine demo (Section V): build the bus implementation of B^k_{2,h},
// fault a bus AND a node, convert the bus fault to its driver, reconfigure,
// and schedule a full communication round on the surviving buses.
//
//   $ ./bus_machine [h] [k]
#include <cstdlib>
#include <iostream>

#include "ft/bus_ft.hpp"
#include "ft/reconfigure.hpp"
#include "sim/bus_engine.hpp"
#include "topology/debruijn.hpp"

int main(int argc, char** argv) {
  const unsigned h = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 5;
  const unsigned k = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;

  using namespace ftdb;
  const Graph target = debruijn_base2(h);
  const BusGraph fabric = bus_ft_debruijn_base2(h, k);

  std::cout << "bus implementation of B^" << k << "_{2," << h << "}: " << fabric.num_nodes()
            << " nodes, " << fabric.num_buses() << " buses, bus degree "
            << fabric.max_bus_degree() << " (bound 2k+3 = " << bus_ft_degree_bound(k) << ")\n";
  std::cout << "point-to-point degree would be " << 4 * k + 4 << " — buses cut it almost in half\n\n";

  // One node fault + one bus fault (converted to its driver).
  const NodeId bad_node = 3;
  const std::uint32_t bad_bus = static_cast<std::uint32_t>(fabric.num_buses() - 2);
  std::cout << "faulting node " << bad_node << " and bus " << bad_bus << " (driver "
            << fabric.bus(bad_bus).driver << ")\n";
  const auto faults = resolve_bus_faults(fabric, k, {bad_node}, {bad_bus});
  if (!faults.has_value()) {
    std::cout << "fault budget exceeded\n";
    return 1;
  }

  const bool survives = bus_monotone_embedding_survives(target, fabric, *faults);
  std::cout << "reconfigured target survives on the bus fabric: " << (survives ? "yes" : "NO")
            << "\n";

  // Schedule one full de Bruijn round through the surviving embedding.
  const auto phi = monotone_embedding(*faults);
  std::vector<sim::Transfer> transfers;
  for (const sim::Transfer& t : sim::debruijn_round_transfers(h)) {
    transfers.push_back(sim::Transfer{phi[t.src], phi[t.dst]});
  }
  const auto schedule = sim::schedule_bus(fabric, transfers, 1);
  std::cout << "one communication round: " << schedule.transfers << " transfers in "
            << schedule.makespan << " cycles (feasible: " << (schedule.feasible ? "yes" : "NO")
            << ")\n";
  return survives && schedule.feasible ? 0 : 1;
}
