// Online operations demo: a machine operator's view. Faults (node, link,
// bus) arrive over time; the OnlineReconfigurator absorbs each one, repairs
// return nodes to service, and the Theorem 1 invariant is checked after
// every event.
//
//   $ ./online_operations [h] [k]
#include <cstdlib>
#include <iostream>

#include "ft/ft_debruijn.hpp"
#include "ft/online.hpp"
#include "topology/debruijn.hpp"

int main(int argc, char** argv) {
  const unsigned h = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 5;
  const unsigned k = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;

  using namespace ftdb;
  OnlineReconfigurator mgr(ft_debruijn_base2(h, k), debruijn_base2(h));
  std::cout << "bring-up:  " << mgr.status_line() << "\n\n";

  struct Step {
    const char* what;
    FaultEvent event;
  };
  const Step timeline[] = {
      {"processor 7 fails", {FaultKind::kNode, 7, 0}},
      {"link (3, 6) fails", {FaultKind::kLink, 3, 6}},
      {"bus driven by node 12 fails", {FaultKind::kBus, 12, 0}},
      {"processor 7 fails again (stale alert)", {FaultKind::kNode, 7, 0}},
      {"processor 20 fails", {FaultKind::kNode, 20, 0}},
  };
  for (const Step& step : timeline) {
    const EventStatus status = mgr.apply(step.event);
    const char* verdict = status == EventStatus::kAccepted       ? "accepted, reconfigured"
                          : status == EventStatus::kRedundant    ? "redundant, ignored"
                                                                 : "REJECTED: budget exhausted";
    std::cout << "event:     " << step.what << " -> " << verdict << "\n";
    std::cout << "           " << mgr.status_line() << "\n";
    if (!mgr.invariant_holds()) {
      std::cout << "INVARIANT VIOLATED\n";
      return 1;
    }
  }

  std::cout << "\nfield service replaces processor 7:\n";
  mgr.repair(7);
  std::cout << "           " << mgr.status_line() << "\n";

  std::cout << "\nnow the deferred fault can be absorbed:\n";
  const EventStatus retry = mgr.apply({FaultKind::kNode, 20, 0});
  std::cout << "event:     processor 20 fails -> "
            << (retry == EventStatus::kAccepted ? "accepted, reconfigured" : "still rejected")
            << "\n";
  std::cout << "           " << mgr.status_line() << "\n";
  return mgr.invariant_holds() ? 0 : 1;
}
