// Quickstart: build a fault-tolerant de Bruijn machine, kill k nodes,
// reconfigure, and verify the intact target network is still there.
//
//   $ ./quickstart [h] [k]
#include <cstdlib>
#include <iostream>
#include <random>

#include "ft/ft_debruijn.hpp"
#include "ft/reconfigure.hpp"
#include "ft/tolerance.hpp"
#include "topology/debruijn.hpp"

int main(int argc, char** argv) {
  const unsigned h = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const unsigned k = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;

  using namespace ftdb;

  // 1. The target topology the parallel machine should always present.
  const Graph target = debruijn_base2(h);
  std::cout << "target B_{2," << h << "}: " << target.num_nodes() << " nodes, "
            << target.num_edges() << " edges, degree " << target.max_degree() << "\n";

  // 2. The fault-tolerant interconnect: N + k nodes, degree <= 4k + 4.
  const Graph ft = ft_debruijn_base2(h, k);
  std::cout << "fault-tolerant B^" << k << "_{2," << h << "}: " << ft.num_nodes()
            << " nodes, degree " << ft.max_degree() << " (bound " << 4 * k + 4 << ")\n";

  // 3. Fault k random nodes and run the paper's reconfiguration algorithm.
  std::mt19937_64 rng(2026);
  const FaultSet faults = FaultSet::random(ft.num_nodes(), k, rng);
  std::cout << "faulting nodes:";
  for (NodeId f : faults.nodes()) std::cout << ' ' << f;
  std::cout << "\n";

  const auto phi = monotone_embedding(faults);
  std::cout << "reconfigured: logical node x now lives at the (x+1)-st surviving node\n";

  // 4. Verify every target edge is alive (Theorem 1, on this fault set).
  Edge violated{};
  const bool ok = monotone_embedding_survives(target, ft, faults, &violated);
  if (!ok) {
    std::cout << "FAILED: target edge (" << violated.u << "," << violated.v
              << ") has no surviving physical link\n";
    return 1;
  }
  std::cout << "verified: all " << target.num_edges()
            << " target edges survive on healthy physical links\n";

  // 5. Statistically confirm over many random fault sets.
  const auto report = check_tolerance_monte_carlo(target, ft, k, 500, /*seed=*/7);
  std::cout << "monte-carlo: " << report.fault_sets_checked << " random fault sets of size "
            << k << " -> " << (report.tolerant ? "all tolerated" : "VIOLATION") << "\n";
  return report.tolerant ? 0 : 1;
}
