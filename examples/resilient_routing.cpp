// Resilient routing demo: the same traffic on a degraded bare de Bruijn
// machine vs a reconfigured fault-tolerant machine.
//
//   $ ./resilient_routing [h] [k] [packets]
//
// Walks through the full operational story of the paper: faults on a bare
// constant-degree network break traffic (the introduction's motivation),
// while the B^k_{2,h} machine reconfigures and serves every packet at
// unchanged latency.
#include <cstdlib>
#include <iostream>
#include <random>

#include "ft/ft_debruijn.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"
#include "topology/debruijn.hpp"

int main(int argc, char** argv) {
  const unsigned h = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const unsigned k = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  const std::size_t count = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 2000;

  using namespace ftdb;
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);
  const auto packets = sim::uniform_traffic(target.num_nodes(), count, 8, 1);

  auto print = [](const char* name, const sim::SimStats& s) {
    std::cout << name << ": delivered " << s.delivered << "/" << s.injected << " ("
              << 100.0 * s.delivered_fraction() << "%), avg latency " << s.average_latency()
              << ", max latency " << s.max_latency << ", " << s.cycles << " cycles\n";
  };

  std::cout << "=== healthy bare target B_{2," << h << "} ===\n";
  const sim::Machine healthy = sim::Machine::direct(target);
  const auto base = sim::run_packets(healthy, target, packets);
  print("healthy", base);

  std::mt19937_64 rng(33);
  const FaultSet bare_faults = FaultSet::random(target.num_nodes(), k, rng);
  std::cout << "\n=== bare target, " << k << " faults (no spares) ===\nfaulty:";
  for (NodeId f : bare_faults.nodes()) std::cout << ' ' << f;
  std::cout << "\n";
  const sim::Machine degraded = sim::Machine::direct_with_faults(target, bare_faults);
  print("degraded", sim::run_packets(degraded, target, packets));

  const FaultSet ft_faults = FaultSet::random(ft.num_nodes(), k, rng);
  std::cout << "\n=== fault-tolerant B^" << k << "_{2," << h << "}, same fault count ===\nfaulty:";
  for (NodeId f : ft_faults.nodes()) std::cout << ' ' << f;
  std::cout << "\n";
  const sim::Machine reconf = sim::Machine::reconfigured(ft, ft_faults, target.num_nodes());
  const auto after = sim::run_packets(reconf, target, packets);
  print("reconfigured", after);

  const bool identical = after.delivered == base.delivered &&
                         after.total_latency == base.total_latency &&
                         after.cycles == base.cycles;
  std::cout << "\nreconfigured machine matches the healthy machine exactly: "
            << (identical ? "yes" : "NO") << "\n";
  return identical ? 0 : 1;
}
