// Spare-provisioning design study: pick the number of spares k for a target
// machine reliability, then compare the hardware cost of the paper's
// construction against the bus variant and the Samatham-Pradhan baseline.
//
//   $ ./spare_provisioning [h] [failure_prob] [target_reliability]
#include <cstdlib>
#include <iostream>

#include "ft/ft_debruijn.hpp"
#include "ft/samatham_pradhan.hpp"
#include "ft/spares.hpp"
#include "topology/labels.hpp"

int main(int argc, char** argv) {
  const unsigned h = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  const long double p = argc > 2 ? std::strtold(argv[2], nullptr) : 0.001L;
  const long double target = argc > 3 ? std::strtold(argv[3], nullptr) : 0.99999L;

  using namespace ftdb;
  const std::uint64_t n = labels::ipow_checked(2, h);

  std::cout << "machine: B_{2," << h << "} with N = " << n << " processors\n";
  std::cout << "per-node failure probability p = " << static_cast<double>(p) << "\n";
  std::cout << "reliability target = " << static_cast<double>(target) << "\n\n";

  const unsigned k = min_spares_for_reliability(n, p, target, 256);
  if (k > 256) {
    std::cout << "target unreachable within 256 spares\n";
    return 1;
  }
  std::cout << "minimum spares: k = " << k << "  (survival probability "
            << static_cast<double>(survival_probability(n, k, p)) << ")\n\n";

  std::cout << "cost at that budget:\n";
  std::cout << "  ours (point-to-point): " << n + k << " nodes, degree " << 4 * k + 4
            << ", total ports " << ours_port_cost(2, n, k) << "\n";
  std::cout << "  ours (bus, Section V): " << n + k << " nodes, bus degree " << 2 * k + 3
            << ", total incidences " << bus_port_cost(n, k) << "\n";
  std::cout << "  Samatham-Pradhan:      " << sp_num_nodes(2, h, k) << " nodes, degree "
            << sp_degree(2, k) << ", total ports " << sp_num_nodes(2, h, k) * sp_degree(2, k)
            << "\n\n";

  std::cout << "survival probability vs spares:\n";
  for (unsigned kk = 0; kk <= k + 2; ++kk) {
    std::cout << "  k = " << kk << ": " << static_cast<double>(survival_probability(n, kk, p))
              << (kk == k ? "   <- chosen" : "") << "\n";
  }
  return 0;
}
