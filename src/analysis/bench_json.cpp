#include "analysis/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ftdb::analysis {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prepare_for_value() {
  if (stack_.empty()) {
    if (root_written_) throw std::logic_error("JsonWriter: multiple root values");
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.kind == 'o') {
    if (!top.key_pending) throw std::logic_error("JsonWriter: value in object without key");
    top.key_pending = false;
  } else {
    if (top.has_entries) out_ += ',';
    top.has_entries = true;
  }
}

void JsonWriter::raw(const std::string& text) { out_ += text; }

void JsonWriter::begin_object() {
  prepare_for_value();
  stack_.push_back({'o'});
  out_ += '{';
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().kind != 'o' || stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  prepare_for_value();
  stack_.push_back({'a'});
  out_ += '[';
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().kind != 'a') {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& k) {
  if (stack_.empty() || stack_.back().kind != 'o' || stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  Frame& top = stack_.back();
  if (top.has_entries) out_ += ',';
  top.has_entries = true;
  top.key_pending = true;
  raw('"' + json_escape(k) + "\":");
}

void JsonWriter::value(const std::string& v) {
  prepare_for_value();
  raw('"' + json_escape(v) + '"');
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  prepare_for_value();
  if (!std::isfinite(v)) {
    raw("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  raw(buf);
}

void JsonWriter::value(std::uint64_t v) {
  prepare_for_value();
  raw(std::to_string(v));
}

void JsonWriter::value(bool v) {
  prepare_for_value();
  raw(v ? "true" : "false");
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) throw std::logic_error("JsonWriter: unclosed containers");
  if (!root_written_) throw std::logic_error("JsonWriter: empty document");
  return out_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::runtime_error("JsonValue: missing key \"" + key + "\"");
  return *v;
}

namespace {

/// Recursive-descent parser over the raw text; tracks the offset for errors.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json_parse: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': {
        v.kind = JsonValue::Kind::Object;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          skip_ws();
          std::string key = parse_string_token();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.kind = JsonValue::Kind::Array;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.array.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind = JsonValue::Kind::String;
        v.string = parse_string_token();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default:
        return parse_number();
    }
  }

  std::string parse_string_token() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      std::size_t consumed = 0;
      v.number = std::stod(text_.substr(start, pos_ - start), &consumed);
      if (consumed != pos_ - start) throw std::invalid_argument("partial");
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) { return JsonParser(text).parse_document(); }

}  // namespace ftdb::analysis
