#include "analysis/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ftdb::analysis {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::prepare_for_value() {
  if (stack_.empty()) {
    if (root_written_) throw std::logic_error("JsonWriter: multiple root values");
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.kind == 'o') {
    if (!top.key_pending) throw std::logic_error("JsonWriter: value in object without key");
    top.key_pending = false;
  } else {
    if (top.has_entries) out_ += ',';
    top.has_entries = true;
  }
}

void JsonWriter::raw(const std::string& text) { out_ += text; }

void JsonWriter::begin_object() {
  prepare_for_value();
  stack_.push_back({'o'});
  out_ += '{';
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().kind != 'o' || stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  prepare_for_value();
  stack_.push_back({'a'});
  out_ += '[';
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().kind != 'a') {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& k) {
  if (stack_.empty() || stack_.back().kind != 'o' || stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  Frame& top = stack_.back();
  if (top.has_entries) out_ += ',';
  top.has_entries = true;
  top.key_pending = true;
  raw('"' + json_escape(k) + "\":");
}

void JsonWriter::value(const std::string& v) {
  prepare_for_value();
  raw('"' + json_escape(v) + '"');
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  prepare_for_value();
  if (!std::isfinite(v)) {
    raw("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  raw(buf);
}

void JsonWriter::value(std::uint64_t v) {
  prepare_for_value();
  raw(std::to_string(v));
}

void JsonWriter::value(bool v) {
  prepare_for_value();
  raw(v ? "true" : "false");
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) throw std::logic_error("JsonWriter: unclosed containers");
  if (!root_written_) throw std::logic_error("JsonWriter: empty document");
  return out_;
}

}  // namespace ftdb::analysis
