// A deliberately tiny JSON writer and parser — enough for BENCH_*.json, with
// correct string escaping and non-finite-double handling, and no third-party
// dependency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ftdb::analysis {

std::string json_escape(const std::string& s);

/// Streaming writer with comma/indent bookkeeping. Keys apply to the next
/// value; values outside an object/array form the document root.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& k);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);       // NaN/Inf are emitted as null (JSON has neither)
  void value(std::uint64_t v);
  void value(bool v);

  /// The finished document. Throws std::logic_error on unbalanced nesting.
  std::string str() const;

 private:
  void prepare_for_value();
  void raw(const std::string& text);

  std::string out_;
  // One frame per open container: 'o' / 'a', plus whether it has entries and
  // (for objects) whether a key is pending.
  struct Frame {
    char kind;
    bool has_entries = false;
    bool key_pending = false;
  };
  std::vector<Frame> stack_;
  bool root_written_ = false;
};

/// Parsed JSON document node. Objects preserve insertion order (BENCH files
/// are written deterministically, so diffs stay stable).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::Null; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Member access that throws std::runtime_error when absent — for schema
  /// fields a well-formed BENCH file always has.
  const JsonValue& at(const std::string& key) const;
};

/// Strict parser for the JSON subset the bench tooling emits (no comments,
/// no trailing commas; \uXXXX escapes are passed through for ASCII and
/// rejected beyond it). Throws std::runtime_error with an offset on errors.
JsonValue json_parse(const std::string& text);

}  // namespace ftdb::analysis
