// A deliberately tiny JSON writer — enough for BENCH_*.json, with correct
// string escaping and non-finite-double handling, and no third-party
// dependency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftdb::analysis {

std::string json_escape(const std::string& s);

/// Streaming writer with comma/indent bookkeeping. Keys apply to the next
/// value; values outside an object/array form the document root.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& k);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);       // NaN/Inf are emitted as null (JSON has neither)
  void value(std::uint64_t v);
  void value(bool v);

  /// The finished document. Throws std::logic_error on unbalanced nesting.
  std::string str() const;

 private:
  void prepare_for_value();
  void raw(const std::string& text);

  std::string out_;
  // One frame per open container: 'o' / 'a', plus whether it has entries and
  // (for objects) whether a key is pending.
  struct Frame {
    char kind;
    bool has_entries = false;
    bool key_pending = false;
  };
  std::vector<Frame> stack_;
  bool root_written_ = false;
};

}  // namespace ftdb::analysis
