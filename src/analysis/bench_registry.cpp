#include "analysis/bench_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftdb::analysis {

void BenchContext::report(const std::string& key, double value) {
  for (auto& [k, v] : metrics_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(key, value);
}

void BenchContext::report_stats(const std::string& prefix, const sim::SimStats& stats) {
  report(prefix + ".cycles", static_cast<double>(stats.cycles));
  report(prefix + ".injected", static_cast<double>(stats.injected));
  report(prefix + ".delivered", static_cast<double>(stats.delivered));
  report(prefix + ".undeliverable", static_cast<double>(stats.undeliverable));
  report(prefix + ".delivered_fraction", stats.delivered_fraction());
  report(prefix + ".avg_latency", stats.average_latency());
  report(prefix + ".max_latency", static_cast<double>(stats.max_latency));
  report(prefix + ".avg_hops", stats.average_hops());
  report(prefix + ".throughput", stats.throughput());
  report(prefix + ".max_queue_depth", static_cast<double>(stats.max_queue_depth));
}

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry registry;
  return registry;
}

void BenchRegistry::add(std::string name, BenchFn fn) {
  if (find(name) != nullptr) {
    throw std::logic_error("duplicate benchmark name: " + name);
  }
  entries_.emplace_back(std::move(name), std::move(fn));
}

std::vector<std::string> BenchRegistry::names(const std::string& filter) const {
  std::vector<std::string> out;
  for (const auto& [name, fn] : entries_) {
    if (filter.empty() || name.find(filter) != std::string::npos) {
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

const BenchFn* BenchRegistry::find(const std::string& name) const {
  for (const auto& [n, fn] : entries_) {
    if (n == name) return &fn;
  }
  return nullptr;
}

BenchRegistrar::BenchRegistrar(const char* name, BenchFn fn) {
  BenchRegistry::instance().add(name, std::move(fn));
}

}  // namespace ftdb::analysis
