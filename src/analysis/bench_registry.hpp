// Registry of named benchmarks for bench_runner. A benchmark is a function
// taking a BenchContext; it does its work (using the context's seeded RNG for
// any randomness) and reports named scalar metrics. The runner measures wall
// time around the whole body, so iteration-style microbenchmarks should run a
// fixed iteration count and report it as a metric.
//
// Registration happens via static initializers, so benchmark translation
// units must be linked directly into the runner executable (not buried in a
// static library where the linker may drop them).
//
//   FTDB_BENCH(build_target, "perf_construction/build_target_b2") {
//     for (int i = 0; i < 100; ++i) use(debruijn_base2(10));
//     ctx.report("iterations", 100);
//   }
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <random>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace ftdb::analysis {

class BenchContext {
 public:
  explicit BenchContext(std::uint64_t seed) : rng_(seed) {}

  /// Deterministic per-benchmark RNG: seeded from the runner seed and the
  /// benchmark name, independent of which worker thread runs the benchmark.
  std::mt19937_64& rng() { return rng_; }

  /// Records a named scalar result (cycle counts, latencies, iteration
  /// counts...). Later reports with the same key overwrite earlier ones.
  void report(const std::string& key, double value);

  /// Records the interesting fields of a simulation run under `prefix.`.
  void report_stats(const std::string& prefix, const sim::SimStats& stats);

  const std::vector<std::pair<std::string, double>>& metrics() const { return metrics_; }

 private:
  std::mt19937_64 rng_;
  std::vector<std::pair<std::string, double>> metrics_;
};

using BenchFn = std::function<void(BenchContext&)>;

class BenchRegistry {
 public:
  static BenchRegistry& instance();

  void add(std::string name, BenchFn fn);

  /// All registered names, sorted, optionally restricted to names containing
  /// `filter` as a substring.
  std::vector<std::string> names(const std::string& filter = "") const;

  /// Null when no benchmark of that name exists.
  const BenchFn* find(const std::string& name) const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, BenchFn>> entries_;
};

struct BenchRegistrar {
  BenchRegistrar(const char* name, BenchFn fn);
};

}  // namespace ftdb::analysis

#define FTDB_BENCH(ident, name)                                               \
  static void ftdb_bench_##ident(::ftdb::analysis::BenchContext& ctx);        \
  static const ::ftdb::analysis::BenchRegistrar ftdb_bench_registrar_##ident( \
      name, &ftdb_bench_##ident);                                             \
  static void ftdb_bench_##ident([[maybe_unused]] ::ftdb::analysis::BenchContext& ctx)
