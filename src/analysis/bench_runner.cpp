#include "analysis/bench_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "analysis/bench_json.hpp"
#include "analysis/bench_registry.hpp"
#include "analysis/table.hpp"

namespace ftdb::analysis {
namespace {

/// FNV-1a; mixes the benchmark name into the root seed so every benchmark
/// gets an independent, scheduling-invariant stream.
std::uint64_t mix_seed(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = 1469598103934665603ull ^ seed;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

BenchResult run_one(const std::string& name, const BenchFn& fn, const BenchRunOptions& options) {
  BenchResult result;
  result.name = name;
  try {
    for (unsigned rep = 0; rep < std::max(1u, options.repetitions); ++rep) {
      BenchContext ctx(mix_seed(options.seed, name) + rep);
      const auto start = std::chrono::steady_clock::now();
      fn(ctx);
      const auto stop = std::chrono::steady_clock::now();
      result.wall_seconds.push_back(std::chrono::duration<double>(stop - start).count());
      result.metrics = ctx.metrics();
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  } catch (...) {
    result.ok = false;
    result.error = "unknown exception";
  }
  return result;
}

}  // namespace

double BenchResult::wall_min() const {
  return wall_seconds.empty() ? 0.0 : *std::min_element(wall_seconds.begin(), wall_seconds.end());
}

double BenchResult::wall_max() const {
  return wall_seconds.empty() ? 0.0 : *std::max_element(wall_seconds.begin(), wall_seconds.end());
}

double BenchResult::wall_mean() const {
  if (wall_seconds.empty()) return 0.0;
  double sum = 0.0;
  for (const double w : wall_seconds) sum += w;
  return sum / static_cast<double>(wall_seconds.size());
}

unsigned resolved_thread_count(const BenchRunOptions& options, std::size_t job_count) {
  unsigned threads = options.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(job_count, 1)));
}

std::vector<BenchResult> run_benchmarks(const BenchRunOptions& options) {
  const std::vector<std::string> names = BenchRegistry::instance().names(options.filter);
  std::vector<BenchResult> results(names.size());

  const unsigned threads = resolved_thread_count(options, names.size());

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= names.size()) return;
      const BenchFn* fn = BenchRegistry::instance().find(names[i]);
      results[i] = run_one(names[i], *fn, options);
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return results;  // names() is sorted, so results are too
}

std::string bench_results_to_json(const std::vector<BenchResult>& results,
                                  const BenchRunOptions& options) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ftdb-bench-v1");
  w.key("seed");
  w.value(static_cast<std::uint64_t>(options.seed));
  w.key("threads");
  w.value(static_cast<std::uint64_t>(resolved_thread_count(options, results.size())));
  w.key("repetitions");
  w.value(static_cast<std::uint64_t>(std::max(1u, options.repetitions)));
  w.key("filter");
  w.value(options.filter);
  w.key("benchmarks");
  w.begin_array();
  for (const BenchResult& r : results) {
    w.begin_object();
    w.key("name");
    w.value(r.name);
    w.key("ok");
    w.value(r.ok);
    if (!r.ok) {
      w.key("error");
      w.value(r.error);
    }
    w.key("wall_seconds");
    w.begin_object();
    w.key("min");
    w.value(r.wall_min());
    w.key("mean");
    w.value(r.wall_mean());
    w.key("max");
    w.value(r.wall_max());
    w.key("samples");
    w.begin_array();
    for (const double s : r.wall_seconds) w.value(s);
    w.end_array();
    w.end_object();
    w.key("metrics");
    w.begin_object();
    for (const auto& [k, v] : r.metrics) {
      w.key(k);
      w.value(v);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string bench_results_to_text(const std::vector<BenchResult>& results) {
  Table t({"benchmark", "status", "wall mean (ms)", "wall min (ms)", "metrics"});
  for (const BenchResult& r : results) {
    t.add_row({r.name, r.ok ? "ok" : ("FAILED: " + r.error),
               fmt_double(1e3 * r.wall_mean(), 3), fmt_double(1e3 * r.wall_min(), 3),
               fmt_u64(r.metrics.size())});
  }
  return t.render();
}

}  // namespace ftdb::analysis
