// Parallel benchmark driver: discovers benchmarks in the BenchRegistry, runs
// them across a worker pool, and serializes results (wall time per repetition
// plus whatever metrics each benchmark reported) to BENCH_*.json so the perf
// trajectory of the repo is machine-readable PR over PR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftdb::analysis {

struct BenchRunOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
  /// The default is 1 so wall times are not contaminated by sibling
  /// benchmarks competing for cores/caches — baselines should be serial;
  /// opt into the pool when throughput matters more than timing fidelity.
  unsigned threads = 1;
  /// Root seed; each benchmark's RNG is seeded from (seed, name) so results
  /// do not depend on thread scheduling.
  std::uint64_t seed = 2026;
  /// How many times each benchmark body runs; wall time is recorded per
  /// repetition, metrics are kept from the last repetition.
  unsigned repetitions = 1;
  /// Substring filter over benchmark names (empty = all).
  std::string filter;
};

struct BenchResult {
  std::string name;
  bool ok = false;
  std::string error;  // exception text when !ok
  std::vector<double> wall_seconds;  // one entry per completed repetition
  std::vector<std::pair<std::string, double>> metrics;

  double wall_min() const;
  double wall_mean() const;
  double wall_max() const;
};

/// Runs every registered benchmark matching options.filter. Results come back
/// sorted by name. Benchmarks that throw are reported with ok=false rather
/// than aborting the run.
std::vector<BenchResult> run_benchmarks(const BenchRunOptions& options);

/// The worker count run_benchmarks actually uses for `job_count` jobs:
/// options.threads with 0 resolved to hardware concurrency, capped at the
/// job count. This is what the JSON reports, not the raw option.
unsigned resolved_thread_count(const BenchRunOptions& options, std::size_t job_count);

/// The BENCH_*.json document (schema "ftdb-bench-v1").
std::string bench_results_to_json(const std::vector<BenchResult>& results,
                                  const BenchRunOptions& options);

/// Renders a human-readable summary table of the results.
std::string bench_results_to_text(const std::vector<BenchResult>& results);

}  // namespace ftdb::analysis
