#include "analysis/experiments.hpp"

#include <cmath>
#include <sstream>

#include "ft/bus_ft.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "ft/reconfigure.hpp"
#include "ft/samatham_pradhan.hpp"
#include "ft/tolerance.hpp"
#include "graph/io.hpp"
#include "topology/debruijn.hpp"
#include "topology/labels.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::analysis {

namespace {

std::vector<std::string> binary_labels(std::uint64_t n, unsigned h) {
  std::vector<std::string> out(n);
  for (std::uint64_t x = 0; x < n; ++x) {
    std::string bits(h, '0');
    for (unsigned i = 0; i < h; ++i) {
      if ((x >> (h - 1 - i)) & 1u) bits[i] = '1';
    }
    out[x] = bits;
  }
  return out;
}

}  // namespace

std::string figure1_debruijn_b24() {
  const Graph g = debruijn_base2(4);
  std::ostringstream out;
  out << "Figure 1: the base-2 four-digit de Bruijn graph B_{2,4}\n";
  out << "nodes=" << g.num_nodes() << " edges=" << g.num_edges()
      << " max_degree=" << g.max_degree() << "\n\n";
  out << "Adjacency (node: neighbors):\n" << format_adjacency(g) << '\n';
  DotOptions opts;
  opts.graph_name = "B_2_4";
  opts.node_labels = binary_labels(g.num_nodes(), 4);
  out << to_dot(g, opts);
  return out.str();
}

std::string figure2_ft_debruijn_b124() {
  const Graph g = ft_debruijn_base2(4, 1);
  std::ostringstream out;
  out << "Figure 2: the fault-tolerant graph B^1_{2,4} (17 nodes, degree <= 8)\n";
  out << "nodes=" << g.num_nodes() << " edges=" << g.num_edges()
      << " max_degree=" << g.max_degree() << " (bound 4k+4 = 8)\n\n";
  out << "Adjacency (node: neighbors):\n" << format_adjacency(g) << '\n';
  DotOptions opts;
  opts.graph_name = "B1_2_4";
  out << to_dot(g, opts);
  return out.str();
}

std::string figure3_reconfiguration(std::uint32_t faulty_node) {
  const unsigned h = 4;
  const unsigned k = 1;
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);
  const FaultSet faults(ft.num_nodes(), {faulty_node});
  const auto phi = monotone_embedding(faults);

  std::ostringstream out;
  out << "Figure 3: new labels of B^1_{2,4} after the fault at node " << faulty_node << "\n\n";
  out << "physical -> new logical label (monotone rank embedding):\n";
  const auto inverse = inverse_embedding(phi, ft.num_nodes());
  for (std::size_t p = 0; p < ft.num_nodes(); ++p) {
    out << "  node " << p << ": ";
    if (faults.is_faulty(static_cast<NodeId>(p))) {
      out << "FAULTY\n";
    } else {
      out << "logical " << inverse[p] << " = "
          << labels::to_digit_string(inverse[p], 2, h) << "_2\n";
    }
  }
  // Edges used after reconfiguration: the images of the target's edges.
  std::vector<Edge> used;
  for (const Edge& e : target.edges()) used.push_back(Edge{phi[e.u], phi[e.v]});
  out << "\nedges used after reconfiguration (solid in the paper's figure): " << used.size()
      << " of " << ft.num_edges() << "\n";
  DotOptions opts;
  opts.graph_name = "B1_2_4_reconfigured";
  opts.highlighted_nodes = {faulty_node};
  opts.solid_edges = used;
  out << to_dot(ft, opts);
  return out.str();
}

std::string figure4_bus_implementation() {
  const unsigned h = 3;
  const unsigned k = 1;
  const BusGraph fabric = bus_ft_debruijn_base2(h, k);
  std::ostringstream out;
  out << "Figure 4: bus implementation of B^1_{2,3} (one bus per node, "
      << "block of 2k+2 = 4 consecutive nodes from (2i-k) mod 9)\n";
  out << "nodes=" << fabric.num_nodes() << " buses=" << fabric.num_buses()
      << " max_bus_degree=" << fabric.max_bus_degree() << " (bound 2k+3 = "
      << bus_ft_degree_bound(k) << ")\n\n";
  for (std::size_t i = 0; i < fabric.num_buses(); ++i) {
    const Bus& b = fabric.bus(i);
    out << "bus " << i << ": driver " << b.driver << " -> members {";
    for (std::size_t j = 0; j < b.members.size(); ++j) {
      out << b.members[j] << (j + 1 < b.members.size() ? ", " : "");
    }
    out << "}\n";
  }
  return out.str();
}

std::string figure5_bus_reconfiguration(std::uint32_t faulty_node) {
  const unsigned h = 3;
  const unsigned k = 1;
  const Graph target = debruijn_base2(h);
  const BusGraph fabric = bus_ft_debruijn_base2(h, k);
  const FaultSet faults(fabric.num_nodes(), {faulty_node});
  const auto phi = monotone_embedding(faults);

  std::ostringstream out;
  out << "Figure 5: reconfiguration after the fault at node " << faulty_node
      << " in the bus implementation of B^1_{2,3}\n\n";
  const auto inverse = inverse_embedding(phi, fabric.num_nodes());
  for (std::size_t p = 0; p < fabric.num_nodes(); ++p) {
    out << "  node " << p << ": ";
    if (faults.is_faulty(static_cast<NodeId>(p))) {
      out << "FAULTY\n";
    } else {
      out << "logical " << inverse[p] << " = "
          << labels::to_digit_string(inverse[p], 2, h) << "_2\n";
    }
  }
  out << "\nbus connections used by the embedded B_{2,3} edges:\n";
  for (const Edge& e : target.edges()) {
    out << "  logical (" << e.u << "," << e.v << ") -> physical (" << phi[e.u] << ","
        << phi[e.v] << ") : "
        << (fabric.can_communicate(phi[e.u], phi[e.v]) ? "OK" : "MISSING") << "\n";
  }
  out << "\nsurvives = " << (bus_monotone_embedding_survives(target, fabric, faults) ? "yes" : "NO")
      << "\n";
  return out.str();
}

Table table1_comparison_base2(unsigned h_min, unsigned h_max, unsigned k_max) {
  Table t({"h", "N=2^h", "k", "ours nodes (N+k)", "ours degree (4k+4)",
           "S-P nodes (N^log2(2k+1))", "S-P degree (4k+2)", "node ratio (S-P/ours)"});
  for (unsigned h = h_min; h <= h_max; ++h) {
    const std::uint64_t n = labels::ipow_checked(2, h);
    for (unsigned k = 1; k <= k_max; ++k) {
      const std::uint64_t ours_nodes = n + k;
      const std::uint64_t ours_deg = 4ull * k + 4;
      // N^{log2(2k+1)} = (2k+1)^h.
      const std::uint64_t sp_nodes = labels::ipow_checked(2 * k + 1, h);
      const std::uint64_t sp_deg = sp_degree(2, k);
      t.add_row({fmt_u64(h), fmt_u64(n), fmt_u64(k), fmt_u64(ours_nodes), fmt_u64(ours_deg),
                 fmt_u64(sp_nodes), fmt_u64(sp_deg),
                 fmt_ratio(static_cast<double>(sp_nodes) / static_cast<double>(ours_nodes))});
    }
  }
  return t;
}

Table table2_comparison_basem(unsigned h, unsigned k_max) {
  Table t({"m", "h", "N=m^h", "k", "ours nodes", "ours degree (4(m-1)k+2m)", "S-P nodes",
           "S-P degree (2mk+2)"});
  for (std::uint64_t m = 2; m <= 5; ++m) {
    const std::uint64_t n = labels::ipow_checked(m, h);
    for (unsigned k = 1; k <= k_max; ++k) {
      t.add_row({fmt_u64(m), fmt_u64(h), fmt_u64(n), fmt_u64(k), fmt_u64(n + k),
                 fmt_u64(ft_debruijn_degree_bound({.base = m, .digits = h, .spares = k})),
                 fmt_u64(sp_num_nodes(m, h, k)), fmt_u64(sp_degree(m, k))});
    }
  }
  return t;
}

Table table3_degree_bounds(unsigned h, unsigned k_max) {
  Table t({"construction", "h", "m", "k", "nodes", "measured max degree", "stated bound",
           "within bound"});
  for (unsigned k = 0; k <= k_max; ++k) {
    {
      const Graph g = ft_debruijn_base2(h, k);
      const std::uint64_t bound = 4ull * k + 4;
      t.add_row({"B^k_{2,h}", fmt_u64(h), "2", fmt_u64(k), fmt_u64(g.num_nodes()),
                 fmt_u64(g.max_degree()), fmt_u64(bound),
                 g.max_degree() <= bound ? "yes" : "NO"});
    }
    for (std::uint64_t m = 3; m <= 4; ++m) {
      const FtDeBruijnParams params{.base = m, .digits = 3, .spares = k};
      const Graph g = ft_debruijn_graph(params);
      const std::uint64_t bound = ft_debruijn_degree_bound(params);
      t.add_row({"B^k_{m,h}", "3", fmt_u64(m), fmt_u64(k), fmt_u64(g.num_nodes()),
                 fmt_u64(g.max_degree()), fmt_u64(bound),
                 g.max_degree() <= bound ? "yes" : "NO"});
    }
    {
      const BusGraph fabric = bus_ft_debruijn_base2(h, k);
      const std::uint64_t bound = bus_ft_degree_bound(k);
      t.add_row({"bus B^k_{2,h}", fmt_u64(h), "2", fmt_u64(k), fmt_u64(fabric.num_nodes()),
                 fmt_u64(fabric.max_bus_degree()), fmt_u64(bound),
                 fabric.max_bus_degree() <= bound ? "yes" : "NO"});
    }
    {
      const auto machine = ft_shuffle_exchange_natural(h, k);
      const std::uint64_t paper = ft_se_natural_degree_bound_paper(k);
      const std::uint64_t ours = ft_se_natural_degree_bound_ours(k);
      t.add_row({"SE natural", fmt_u64(h), "2", fmt_u64(k),
                 fmt_u64(machine.ft_graph.num_nodes()), fmt_u64(machine.ft_graph.max_degree()),
                 fmt_u64(paper) + " (paper) / " + fmt_u64(ours) + " (ours)",
                 machine.ft_graph.max_degree() <= ours ? "yes" : "NO"});
    }
  }
  return t;
}

Table table4_tolerance_verification(std::uint64_t mc_trials, std::uint64_t seed) {
  Table t({"construction", "m", "h", "k", "method", "fault sets checked", "tolerant"});
  auto add = [&](const std::string& name, std::uint64_t m, unsigned h, unsigned k,
                 const Graph& target, const Graph& ft) {
    const std::uint64_t space = binomial(ft.num_nodes(), k);
    if (space <= 20000) {
      auto report = check_tolerance_exhaustive(target, ft, k);
      t.add_row({name, fmt_u64(m), fmt_u64(h), fmt_u64(k), "exhaustive",
                 fmt_u64(report.fault_sets_checked), report.tolerant ? "yes" : "NO"});
    } else {
      auto report = check_tolerance_monte_carlo(target, ft, k, mc_trials, seed);
      t.add_row({name, fmt_u64(m), fmt_u64(h), fmt_u64(k), "monte-carlo",
                 fmt_u64(report.fault_sets_checked), report.tolerant ? "yes" : "NO"});
    }
  };
  for (unsigned k = 1; k <= 3; ++k) {
    add("B^k_{2,h}", 2, 4, k, debruijn_base2(4), ft_debruijn_base2(4, k));
    add("B^k_{2,h}", 2, 7, k, debruijn_base2(7), ft_debruijn_base2(7, k));
    add("B^k_{3,h}", 3, 3, k, debruijn_graph({.base = 3, .digits = 3}),
        ft_debruijn_graph({.base = 3, .digits = 3, .spares = k}));
    const auto se = ft_shuffle_exchange_natural(4, k);
    add("SE natural", 2, 4, k, shuffle_exchange_graph(4), se.ft_graph);
  }
  return t;
}

}  // namespace ftdb::analysis
