// Generators for the paper's figures and tables (the experiment index in
// DESIGN.md). Each returns the finished artifact as text so the bench
// binaries stay trivial and the integration tests can assert on content.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/table.hpp"

namespace ftdb::analysis {

// --- Figures (Section III/V examples) --------------------------------------

/// FIG1: adjacency + DOT of B_{2,4} (paper Fig. 1).
std::string figure1_debruijn_b24();

/// FIG2: adjacency + DOT of B^1_{2,4} (paper Fig. 2).
std::string figure2_ft_debruijn_b124();

/// FIG3: relabeling of B^1_{2,4} after the fault at `faulty_node`, listing
/// the new labels and the edges used post-reconfiguration (paper Fig. 3).
std::string figure3_reconfiguration(std::uint32_t faulty_node = 8);

/// FIG4: the bus implementation of B^1_{2,3} — every bus with its driver and
/// member block (paper Fig. 4).
std::string figure4_bus_implementation();

/// FIG5: bus reconfiguration after one fault in B^1_{2,3} (paper Fig. 5).
std::string figure5_bus_reconfiguration(std::uint32_t faulty_node = 4);

// --- Tables (Section I comparison and the corollaries) ---------------------

/// TAB1: base-2 comparison, ours (N+k nodes, degree 4k+4) vs
/// Samatham–Pradhan (N^{log2(2k+1)} nodes, degree 4k+2).
Table table1_comparison_base2(unsigned h_min = 3, unsigned h_max = 10, unsigned k_max = 4);

/// TAB2: base-m comparison for m in {2,3,4,5}.
Table table2_comparison_basem(unsigned h = 4, unsigned k_max = 4);

/// TAB3: measured max degree vs the corollary bounds across constructions.
Table table3_degree_bounds(unsigned h = 5, unsigned k_max = 5);

/// TAB4: tolerance verification summary (exhaustive for small, Monte Carlo
/// for large instances). `mc_trials` random fault sets per large instance.
Table table4_tolerance_verification(std::uint64_t mc_trials = 2000, std::uint64_t seed = 42);

}  // namespace ftdb::analysis
