#include "analysis/parallel_all_pairs.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "graph/bfs_workspace.hpp"
#include "graph/multi_source_bfs.hpp"

namespace ftdb::analysis {

AllPairsSummary all_pairs_summary(const Graph& g, const AllPairsOptions& options) {
  const std::size_t n = g.num_nodes();
  AllPairsSummary summary;
  summary.sources = n;
  if (n <= 1) {
    summary.connected = true;
    return summary;
  }

  constexpr std::size_t kWidth = MultiSourceBfs::kBatchWidth;
  const std::size_t num_batches = (n + kWidth - 1) / kWidth;
  std::vector<MultiSourceBfs::BatchStats> partials(num_batches);

  unsigned threads = options.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, num_batches));
  // Below a few batches of work the pool setup dwarfs the BFS itself (the
  // reconfigured-diameter report calls this per trial on small live graphs),
  // and nested pools under the bench runner would oversubscribe the cores.
  if (num_batches < 4 || n < 2048) threads = 1;

  std::atomic<std::size_t> next_batch{0};
  auto worker = [&] {
    MultiSourceBfs scan(n);
    for (;;) {
      const std::size_t b = next_batch.fetch_add(1);
      if (b >= num_batches) return;
      partials[b] = scan.run(g, static_cast<NodeId>(b * kWidth));
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Reduce in batch order: integer sums/maxes are order-independent, but the
  // fixed order keeps the door open for non-commutative aggregates.
  summary.connected = true;
  for (const MultiSourceBfs::BatchStats& p : partials) {
    summary.reachable_pairs += p.reachable_pairs;
    summary.total_distance += p.total_distance;
    summary.max_finite_distance = std::max(summary.max_finite_distance, p.max_finite_distance);
    summary.connected = summary.connected && p.all_reach_all;
  }
  return summary;
}

std::uint32_t parallel_diameter(const Graph& g, const AllPairsOptions& options) {
  if (g.num_nodes() == 0) return 0;
  const AllPairsSummary s = all_pairs_summary(g, options);
  return s.connected ? s.max_finite_distance : kUnreachable;
}

}  // namespace ftdb::analysis
