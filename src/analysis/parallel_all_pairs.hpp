// Parallel all-pairs structural analysis engine.
//
// All-pairs BFS is the inner loop of every structural report (diameter,
// average distance, reconfigured-diameter verification). This engine makes it
// production-scale along two independent axes:
//
//  * Bit-parallelism: sources are processed in batches of 64, one bit per
//    source. A level-synchronous BFS propagates 64 frontiers at once with
//    word-wide ORs over the CSR, so the edge-relaxation cost is paid once per
//    batch per level instead of once per source — a large constant-factor win
//    on the small-diameter expander-like graphs of the paper.
//  * Thread-parallelism: batches are independent, so they are sharded across
//    a worker pool (the same plain std::thread pool discipline bench_runner
//    uses). Per-batch partial results are stored by batch index and reduced
//    in batch order, making the result bit-for-bit deterministic regardless
//    of scheduling.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace ftdb::analysis {

struct AllPairsOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
  unsigned threads = 0;
};

/// Aggregates over all ordered source/target pairs (s != t).
struct AllPairsSummary {
  std::uint64_t sources = 0;              ///< number of BFS sources (= nodes)
  std::uint64_t reachable_pairs = 0;      ///< ordered pairs with finite distance
  std::uint64_t total_distance = 0;       ///< sum of finite pairwise distances
  std::uint32_t max_finite_distance = 0;  ///< max finite distance (diameter when connected)
  bool connected = false;                 ///< every source reaches every node (true for n <= 1)
};

AllPairsSummary all_pairs_summary(const Graph& g, const AllPairsOptions& options = {});

/// Exact diameter via the engine; kUnreachable when disconnected, 0 when empty.
std::uint32_t parallel_diameter(const Graph& g, const AllPairsOptions& options = {});

}  // namespace ftdb::analysis
