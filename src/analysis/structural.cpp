#include "analysis/structural.hpp"

#include <random>
#include <sstream>

#include "analysis/parallel_all_pairs.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "ft/reconfigure.hpp"
#include "graph/algorithms.hpp"
#include "sim/network.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::analysis {

StructuralSummary summarize_graph(const Graph& g) {
  StructuralSummary s;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  s.min_degree = g.min_degree();
  s.max_degree = g.max_degree();
  s.average_degree = g.average_degree();
  const AllPairsSummary ap = all_pairs_summary(g);
  s.connected = ap.connected;
  s.diameter = ap.connected ? ap.max_finite_distance : kUnreachable;
  s.average_distance = ap.reachable_pairs == 0
                           ? 0.0
                           : static_cast<double>(ap.total_distance) /
                                 static_cast<double>(ap.reachable_pairs);
  return s;
}

Table structural_comparison_table(unsigned h_min, unsigned h_max, unsigned k_max) {
  Table t({"graph", "h", "k", "nodes", "edges", "degree (min/avg/max)", "diameter",
           "avg distance"});
  auto add = [&](const std::string& name, unsigned h, unsigned k, const Graph& g) {
    const StructuralSummary s = summarize_graph(g);
    std::ostringstream deg;
    deg << s.min_degree << "/" << fmt_double(s.average_degree, 2) << "/" << s.max_degree;
    t.add_row({name, fmt_u64(h), fmt_u64(k), fmt_u64(s.nodes), fmt_u64(s.edges), deg.str(),
               fmt_u64(s.diameter), fmt_double(s.average_distance, 2)});
  };
  for (unsigned h = h_min; h <= h_max; ++h) {
    add("B_{2,h}", h, 0, debruijn_base2(h));
    for (unsigned k = 1; k <= k_max; ++k) {
      add("B^k_{2,h}", h, k, ft_debruijn_base2(h, k));
    }
    add("SE_h", h, 0, shuffle_exchange_graph(h));
    add("SE natural FT", h, k_max, ft_shuffle_exchange_natural(h, k_max).ft_graph);
  }
  return t;
}

std::string reconfigured_diameter_report(unsigned h, unsigned k, unsigned trials,
                                         std::uint64_t seed) {
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);
  const std::uint32_t target_diameter = parallel_diameter(target);
  std::mt19937_64 rng(seed);
  unsigned matches = 0;
  for (unsigned t = 0; t < trials; ++t) {
    const FaultSet faults = FaultSet::random(ft.num_nodes(), k, rng);
    const sim::Machine machine = sim::Machine::reconfigured(ft, faults, target.num_nodes());
    const Graph live = machine.live_logical_graph(target);
    if (parallel_diameter(live) == target_diameter) ++matches;
  }
  std::ostringstream out;
  out << "reconfigured-diameter check for B^" << k << "_{2," << h << "}: " << matches << "/"
      << trials << " random fault sets preserve the target diameter " << target_diameter
      << " exactly (dilation-1 embedding)\n";
  return out.str();
}

}  // namespace ftdb::analysis
