// Structural property reports: how the fault-tolerant graphs compare to their
// targets in diameter, average distance and degree distribution, and how the
// survivor graphs look after worst-case fault sets. Used by the
// structural_properties bench and cross-checked in tests.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/table.hpp"
#include "graph/graph.hpp"

namespace ftdb::analysis {

struct StructuralSummary {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double average_degree = 0.0;
  std::uint32_t diameter = 0;
  double average_distance = 0.0;  // over connected ordered pairs
  bool connected = false;
};

/// Exact all-pairs summary via repeated BFS (intended for N up to ~10^4).
StructuralSummary summarize_graph(const Graph& g);

/// One row per (construction, h, k): target vs FT graph structural summary.
/// Shows that the FT graphs' diameters do not exceed the targets' (the extra
/// block edges only shorten paths).
Table structural_comparison_table(unsigned h_min, unsigned h_max, unsigned k_max);

/// Diameter of the reconfigured logical network equals the target's diameter
/// for every fault set (dilation-1 embedding) — spot-verified over seeded
/// random fault sets; returns a rendered report.
std::string reconfigured_diameter_report(unsigned h, unsigned k, unsigned trials,
                                         std::uint64_t seed);

}  // namespace ftdb::analysis
