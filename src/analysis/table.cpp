#include "analysis/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ftdb::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count does not match headers");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << std::setw(static_cast<int>(width[c])) << std::left << row[c] << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

std::string fmt_double(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string fmt_ratio(double v, int precision) { return fmt_double(v, precision) + "x"; }

std::string fmt_probability(long double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << static_cast<double>(v);
  return out.str();
}

}  // namespace ftdb::analysis
