// Plain-text table rendering for the experiment binaries: aligned columns,
// markdown-ish separators, deterministic formatting. Keeps the bench output
// directly comparable to the tables in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftdb::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  std::string render() const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_u64(std::uint64_t v);
std::string fmt_double(double v, int precision = 2);
std::string fmt_ratio(double v, int precision = 2);
std::string fmt_probability(long double v, int precision = 6);

}  // namespace ftdb::analysis
