#include "campaign/elastic/blocklog.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "analysis/bench_json.hpp"
#include "serve/journal.hpp"  // ftdb::serve::crc32 — one CRC for every log format

namespace ftdb::campaign::elastic {
namespace {

using analysis::JsonValue;
using analysis::JsonWriter;
using serve::crc32;

constexpr char kMagic[8] = {'F', 'T', 'D', 'B', 'B', 'L', 'K', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kFrameOverhead = 1 + 4 + 4;  // type + payload_len + crc
constexpr std::uint8_t kRecordBlock = 1;

void put_u32(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

std::uint32_t get_u32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) | (static_cast<std::uint32_t>(in[3]) << 24);
}

void encode_header(unsigned char* out, std::uint64_t fingerprint) {
  std::memcpy(out, kMagic, 8);
  put_u32(out + 8, kVersion);
  put_u32(out + 12, static_cast<std::uint32_t>(fingerprint));
  put_u32(out + 16, static_cast<std::uint32_t>(fingerprint >> 32));
  put_u32(out + 20, crc32(out, 20));
}

std::string encode_payload(const BlockRecord& r) {
  JsonWriter w;
  w.begin_object();
  w.key("cell");
  w.value(r.cell);
  w.key("block");
  w.value(r.block);
  w.key("partial");
  write_scenario_result(w, r.partial);
  w.end_object();
  return w.str();
}

BlockRecord decode_payload(const std::string& text) {
  const JsonValue doc = analysis::json_parse(text);
  BlockRecord r;
  r.cell = static_cast<std::uint64_t>(doc.at("cell").number);
  r.block = static_cast<std::uint64_t>(doc.at("block").number);
  r.partial = parse_scenario_result(doc.at("partial"));
  return r;
}

std::vector<unsigned char> encode_frame(const BlockRecord& r) {
  const std::string payload = encode_payload(r);
  std::vector<unsigned char> frame(kFrameOverhead + payload.size());
  frame[0] = kRecordBlock;
  put_u32(frame.data() + 1, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(frame.data() + 5, payload.data(), payload.size());
  put_u32(frame.data() + 5 + payload.size(), crc32(frame.data(), 5 + payload.size()));
  return frame;
}

void write_all(int fd, const unsigned char* data, std::size_t len, const std::string& path) {
  while (len > 0) {
    const ssize_t w = ::write(fd, data, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("BlockLog: write failed for " + path + ": " +
                               std::strerror(errno));
    }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
}

std::vector<unsigned char> read_whole_file(int fd, const std::string& path) {
  std::vector<unsigned char> bytes;
  unsigned char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("BlockLog: read failed for " + path + ": " +
                               std::strerror(errno));
    }
    if (r == 0) return bytes;
    bytes.insert(bytes.end(), buf, buf + r);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    throw std::runtime_error("BlockLog: fsync failed for " + path + ": " +
                             std::strerror(errno));
  }
}

void check_header(const std::vector<unsigned char>& bytes, std::uint64_t fingerprint,
                  const std::string& path) {
  if (bytes.size() < kHeaderBytes || std::memcmp(bytes.data(), kMagic, 8) != 0 ||
      get_u32(bytes.data() + 20) != crc32(bytes.data(), 20)) {
    throw std::runtime_error("BlockLog: corrupt header in " + path);
  }
  if (get_u32(bytes.data() + 8) != kVersion) {
    throw std::runtime_error("BlockLog: unsupported version in " + path);
  }
  const std::uint64_t file_fp = static_cast<std::uint64_t>(get_u32(bytes.data() + 12)) |
                                (static_cast<std::uint64_t>(get_u32(bytes.data() + 16)) << 32);
  if (file_fp != fingerprint) {
    throw std::runtime_error("BlockLog: spec fingerprint mismatch in " + path +
                             " (log belongs to a different campaign)");
  }
}

/// Decodes intact frames starting at the header's end; returns the offset of
/// the first byte past the last intact frame (everything after is torn).
std::size_t decode_frames(const std::vector<unsigned char>& bytes, const std::string& path,
                          std::vector<BlockRecord>& out) {
  std::size_t off = kHeaderBytes;
  while (bytes.size() - off >= kFrameOverhead) {
    const unsigned char* f = bytes.data() + off;
    const std::size_t payload_len = get_u32(f + 1);
    if (f[0] != kRecordBlock) break;
    if (bytes.size() - off < kFrameOverhead + payload_len) break;
    if (get_u32(f + 5 + payload_len) != crc32(f, 5 + payload_len)) break;
    const std::string payload(reinterpret_cast<const char*>(f + 5), payload_len);
    try {
      out.push_back(decode_payload(payload));
    } catch (const std::exception& e) {
      // A CRC-clean frame whose JSON does not parse is corruption, not a
      // torn append — refuse the log rather than silently dropping data.
      throw std::runtime_error("BlockLog: undecodable record in " + path + ": " + e.what());
    }
    off += kFrameOverhead + payload_len;
  }
  return off;
}

}  // namespace

BlockLog::BlockLog(std::string path, std::uint64_t fingerprint, bool fsync_writes)
    : path_(std::move(path)), fingerprint_(fingerprint), fsync_(fsync_writes) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("BlockLog: cannot open " + path_ + ": " + std::strerror(errno));
  }
  try {
    const std::vector<unsigned char> bytes = read_whole_file(fd_, path_);
    if (bytes.empty()) {
      unsigned char header[kHeaderBytes];
      encode_header(header, fingerprint_);
      write_all(fd_, header, sizeof header, path_);
      if (fsync_) fsync_or_throw(fd_, path_);
      size_bytes_ = kHeaderBytes;
      return;
    }
    check_header(bytes, fingerprint_, path_);
    const std::size_t off = decode_frames(bytes, path_, recovered_);
    truncated_ = bytes.size() - off;
    num_records_ = recovered_.size();
    size_bytes_ = off;
    if (truncated_ > 0 && ::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
      throw std::runtime_error("BlockLog: cannot truncate torn tail of " + path_);
    }
    if (::lseek(fd_, static_cast<off_t>(off), SEEK_SET) < 0) {
      throw std::runtime_error("BlockLog: seek failed for " + path_);
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

BlockLog::~BlockLog() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockLog::append(const BlockRecord& record) {
  if (fd_ < 0) {
    throw std::runtime_error("BlockLog: " + path_ +
                             " is poisoned by an earlier failed append; reopen to recover");
  }
  const std::vector<unsigned char> frame = encode_frame(record);
  const off_t before = static_cast<off_t>(size_bytes_);
  try {
    write_all(fd_, frame.data(), frame.size(), path_);
    if (fsync_) fsync_or_throw(fd_, path_);
  } catch (...) {
    // Roll the file back to its pre-append length; if that fails, poison the
    // handle so later appends cannot silently diverge from the file.
    if (::ftruncate(fd_, before) != 0 || ::lseek(fd_, before, SEEK_SET) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
    throw;
  }
  size_bytes_ += frame.size();
  ++num_records_;
}

void BlockLog::truncate_all() {
  if (fd_ < 0) {
    throw std::runtime_error("BlockLog: " + path_ + " is poisoned; reopen to recover");
  }
  if (::ftruncate(fd_, static_cast<off_t>(kHeaderBytes)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(kHeaderBytes), SEEK_SET) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("BlockLog: cannot truncate " + path_);
  }
  if (fsync_) fsync_or_throw(fd_, path_);
  recovered_.clear();
  num_records_ = 0;
  size_bytes_ = kHeaderBytes;
}

std::vector<BlockRecord> BlockLog::read(const std::string& path, std::uint64_t fingerprint) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("BlockLog: cannot open " + path + ": " + std::strerror(errno));
  }
  std::vector<BlockRecord> records;
  try {
    const std::vector<unsigned char> bytes = read_whole_file(fd, path);
    check_header(bytes, fingerprint, path);
    decode_frames(bytes, path, records);  // torn tail silently ignored, never truncated
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return records;
}

}  // namespace ftdb::campaign::elastic
