// Append-only block-log checkpoints for the elastic campaign service.
//
// Each elastic worker owns one log file and appends one record per trial
// block it completes, fsync'd before the block is announced anywhere — so a
// worker that dies loses at most the block it was computing, and crash
// replay is bounded by the blocks appended since the last compaction.
//
// On-disk format "ftdb-campaign-blocklog-v1" (all integers little-endian),
// the same framing discipline as the serve journal (serve/journal.cpp):
//
//   header (24 bytes):
//     magic        8 bytes  "FTDBBLK1"
//     version      u32      1
//     fingerprint  u64      spec_fingerprint of the campaign — a log replayed
//                           against a different spec would silently diverge,
//                           so mismatches are refused
//     crc          u32      CRC-32 of the preceding 20 bytes
//
//   record (variable length):
//     type         u8       1 (completed trial block)
//     payload_len  u32      byte length of the JSON payload
//     payload      bytes    {"cell": c, "block": b, "partial": {...}} where
//                           "partial" is the block's ScenarioResult in the
//                           checkpoint serialization (write_scenario_result;
//                           %.17g doubles round-trip bit-exactly)
//     crc          u32      CRC-32 of type + payload_len + payload
//
// A crash can only tear the final record (appends are sequential). The
// *owning* open truncates a torn tail; the read-only scan used on other
// workers' logs never truncates — a torn tail there is usually an append in
// flight on a live worker. Appends roll back on failure and poison the
// handle (journal discipline), so the file length is always frame-aligned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/runner.hpp"

namespace ftdb::campaign::elastic {

/// One completed trial block of one grid cell.
struct BlockRecord {
  std::uint64_t cell = 0;
  std::uint64_t block = 0;
  ScenarioResult partial;
};

class BlockLog {
 public:
  /// Opens (creating if absent) the log at `path` for appending. An existing
  /// file must carry a valid header with this `fingerprint`; a torn tail is
  /// truncated away. Throws std::runtime_error on I/O failure, corruption,
  /// or fingerprint mismatch.
  BlockLog(std::string path, std::uint64_t fingerprint, bool fsync_writes);
  ~BlockLog();

  BlockLog(const BlockLog&) = delete;
  BlockLog& operator=(const BlockLog&) = delete;

  /// Records recovered from the existing file at open time.
  const std::vector<BlockRecord>& recovered() const { return recovered_; }

  /// Bytes dropped from a torn tail at open time (0 for a clean log).
  std::size_t truncated_bytes() const { return truncated_; }

  /// Appends one record (and fsyncs, when enabled). Durable when it returns.
  void append(const BlockRecord& record);

  /// Drops every record but keeps the header — what compaction does to its
  /// own log once the records are folded into the compacted checkpoint.
  void truncate_all();

  std::size_t num_records() const { return num_records_; }
  std::size_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

  /// Read-only scan of a (possibly live) log: validates the header, returns
  /// every intact record, and NEVER truncates the file. Throws on a missing
  /// or corrupt header or a fingerprint mismatch.
  static std::vector<BlockRecord> read(const std::string& path, std::uint64_t fingerprint);

 private:
  std::string path_;
  std::uint64_t fingerprint_ = 0;
  bool fsync_ = true;
  int fd_ = -1;
  std::vector<BlockRecord> recovered_;
  std::size_t truncated_ = 0;
  std::size_t num_records_ = 0;
  std::size_t size_bytes_ = 0;
};

}  // namespace ftdb::campaign::elastic
