#include "campaign/elastic/elastic.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "campaign/elastic/lease.hpp"

namespace ftdb::campaign::elastic {
namespace {

namespace fs = std::filesystem;

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("elastic: cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// tmp + write + fsync + rename: the file at `path` is either the old
/// version or the complete new one, never a torn mix.
void write_file_durably(const std::string& path, const std::string& text, bool fsync) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("elastic: cannot open " + tmp + ": " + std::strerror(errno));
  }
  const char* data = text.data();
  std::size_t len = text.size();
  while (len > 0) {
    const ssize_t w = ::write(fd, data, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("elastic: write failed for " + tmp + ": " + std::strerror(errno));
    }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
  if (fsync && ::fsync(fd) != 0) {
    ::close(fd);
    throw std::runtime_error("elastic: fsync failed for " + tmp + ": " + std::strerror(errno));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("elastic: rename " + tmp + " -> " + path + " failed: " +
                             std::strerror(errno));
  }
  if (fsync) {
    const auto slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }
}

std::string spec_path(const std::string& dir) { return dir + "/spec.json"; }
std::string ckpt_path(const std::string& dir) { return dir + "/compacted.ckpt"; }
std::string cell_lease_path(const std::string& dir, std::size_t cell) {
  return dir + "/leases/cell-" + std::to_string(cell) + ".lease";
}
std::string compact_lease_path(const std::string& dir) { return dir + "/leases/compact.lease"; }
std::string own_log_path(const std::string& dir, const std::string& worker_id) {
  return dir + "/logs/" + worker_id + ".blk";
}

std::string default_worker_id() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) != 0) std::strcpy(buf, "worker");
  return std::string(buf) + "-" + std::to_string(::getpid());
}

void validate_spec(const ScenarioSpec& spec, const std::vector<ScenarioCase>& cells) {
  if (cells.empty()) throw std::runtime_error("elastic: spec expands to zero cells");
  if (spec.trials == 0) throw std::runtime_error("elastic: spec asks for zero trials");
}

/// Cell indices, most expensive predicted cell first (ties by index), so the
/// campaign's long poles start earliest and the tail stays short.
std::vector<std::size_t> cost_order(const ScenarioSpec& spec,
                                    const std::vector<ScenarioCase>& cells) {
  std::vector<std::pair<double, std::size_t>> keyed;
  keyed.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    keyed.emplace_back(-predicted_cell_cost(spec, cells[i]), i);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::size_t> order;
  order.reserve(keyed.size());
  for (const auto& [cost, i] : keyed) order.push_back(i);
  return order;
}

}  // namespace

void ensure_elastic_dir(const ScenarioSpec& spec, const std::string& dir) {
  fs::create_directories(dir + "/leases");
  fs::create_directories(dir + "/logs");
  const std::string canonical = scenario_spec_to_json(spec);
  std::error_code ec;
  if (fs::exists(spec_path(dir), ec)) {
    const ScenarioSpec existing = parse_scenario_spec(read_text_file(spec_path(dir)));
    if (spec_fingerprint(existing) != spec_fingerprint(spec)) {
      throw std::runtime_error("elastic: " + dir +
                               " already hosts a different campaign (spec fingerprint mismatch)");
    }
    return;
  }
  // Two workers racing here both write the canonical serialization of the
  // same spec, so last-rename-wins is byte-identical either way.
  write_file_durably(spec_path(dir), canonical, true);
}

ScenarioSpec load_elastic_spec(const std::string& dir) {
  return parse_scenario_spec(read_text_file(spec_path(dir)));
}

ElasticProgress load_elastic_progress(const ScenarioSpec& spec, const std::string& dir) {
  const std::vector<ScenarioCase> cells = expand_grid(spec);
  validate_spec(spec, cells);
  const std::uint64_t spec_fp = spec_fingerprint(spec);
  const std::uint64_t total_blocks = num_trial_blocks(spec.trials);

  ElasticProgress progress;
  progress.cells.resize(cells.size());
  progress.finalized.assign(cells.size(), 0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    progress.cells[i].scenario_index = i;
    progress.cells[i].prefix.scenario_index = i;
  }
  // Blocks durable past each cell's prefix, deduped by block index. Lease
  // races can make two logs carry the same (cell, block); the copies are
  // byte-identical (counter-based trials), so first-wins is exact.
  std::vector<std::map<std::uint64_t, ScenarioResult>> extras(cells.size());

  std::error_code ec;
  if (fs::exists(ckpt_path(dir), ec)) {
    const Checkpoint ckpt = parse_checkpoint(read_text_file(ckpt_path(dir)));
    if (ckpt.fingerprint != spec_fp) {
      throw std::runtime_error("elastic: " + ckpt_path(dir) +
                               " belongs to a different spec (fingerprint mismatch)");
    }
    if (!ckpt.shard.whole_campaign()) {
      throw std::runtime_error("elastic: " + ckpt_path(dir) +
                               " is a shard checkpoint, not an elastic compaction");
    }
    for (const CellProgress& cp : ckpt.cells) {
      if (cp.scenario_index >= cells.size()) {
        throw std::runtime_error("elastic: checkpoint cell " +
                                 std::to_string(cp.scenario_index) + " is outside the grid");
      }
      if (cp.prefix_blocks > total_blocks) {
        throw std::runtime_error("elastic: checkpoint cell " +
                                 std::to_string(cp.scenario_index) + " claims " +
                                 std::to_string(cp.prefix_blocks) + " of " +
                                 std::to_string(total_blocks) + " blocks");
      }
      if (cp.prefix.trials != trials_in_prefix(spec.trials, cp.prefix_blocks)) {
        throw std::runtime_error("elastic: checkpoint cell " +
                                 std::to_string(cp.scenario_index) +
                                 " carries a trial count inconsistent with its block count");
      }
      progress.cells[cp.scenario_index] = cp;
      progress.finalized[cp.scenario_index] = cp.prefix_blocks == total_blocks ? 1 : 0;
      for (const auto& [block, partial] : cp.extra) {
        if (block < cp.prefix_blocks || block >= total_blocks) {
          throw std::runtime_error("elastic: checkpoint cell " +
                                   std::to_string(cp.scenario_index) +
                                   " has an out-of-range extra block");
        }
        extras[cp.scenario_index].emplace(block, partial);
      }
      progress.cells[cp.scenario_index].extra.clear();  // re-drained below
    }
  }

  // Every worker's log, in sorted filename order (determinism of the scan;
  // the records themselves are order-independent thanks to dedup-by-block).
  std::vector<std::string> log_paths;
  if (fs::exists(dir + "/logs", ec)) {
    for (const auto& entry : fs::directory_iterator(dir + "/logs")) {
      if (entry.path().extension() == ".blk") log_paths.push_back(entry.path().string());
    }
  }
  std::sort(log_paths.begin(), log_paths.end());
  for (const std::string& path : log_paths) {
    for (BlockRecord& rec : BlockLog::read(path, spec_fp)) {
      if (rec.cell >= cells.size()) {
        throw std::runtime_error("elastic: " + path + " records a cell outside the grid");
      }
      if (rec.block >= total_blocks) {
        throw std::runtime_error("elastic: " + path + " records a block outside the campaign");
      }
      if (rec.partial.trials != trials_in_block(spec.trials, rec.block) ||
          rec.partial.scenario_index != rec.cell) {
        throw std::runtime_error("elastic: " + path + " records a malformed block partial");
      }
      if (rec.block < progress.cells[rec.cell].prefix_blocks) continue;  // compacted already
      extras[rec.cell].emplace(rec.block, std::move(rec.partial));       // first copy wins
    }
  }

  // Drain contiguous runs into each prefix; what remains stays as extras.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    CellProgress& cp = progress.cells[i];
    auto& pool = extras[i];
    while (!pool.empty() && pool.begin()->first == cp.prefix_blocks) {
      cp.prefix.merge(pool.begin()->second);
      ++cp.prefix_blocks;
      pool.erase(pool.begin());
    }
    for (auto& [block, partial] : pool) cp.extra.emplace_back(block, std::move(partial));
    progress.durable_blocks += cp.prefix_blocks + cp.extra.size();
  }
  return progress;
}

bool compact_elastic_dir(const ScenarioSpec& spec, const std::string& dir,
                         const std::string& worker_id, BlockLog* own_log,
                         std::uint64_t lease_ttl_seconds, bool fsync) {
  Lease lock = Lease::try_acquire(compact_lease_path(dir), worker_id, lease_ttl_seconds);
  if (!lock.held()) return false;  // someone else is compacting; theirs covers our records

  const std::vector<ScenarioCase> cells = expand_grid(spec);
  const std::uint64_t total_blocks = num_trial_blocks(spec.trials);
  ElasticProgress progress = load_elastic_progress(spec, dir);

  Checkpoint ckpt;  // whole-campaign shard; stamps derived by the serializer
  for (std::size_t i = 0; i < cells.size(); ++i) {
    CellProgress& cp = progress.cells[i];
    if (cp.prefix_blocks == 0 && cp.extra.empty()) continue;
    if (cp.prefix_blocks == total_blocks && progress.finalized[i] == 0) {
      // A checkpointed complete prefix is finalized by convention; cells
      // completed by log records still carry raw accumulators.
      CellRunner(spec, cells[i]).finalize(cp.prefix);
    }
    ckpt.cells.push_back(std::move(cp));
  }
  // Write the new snapshot BEFORE truncating any log: a crash between the
  // two leaves duplicate records, which dedup makes harmless; the reverse
  // order could lose blocks.
  write_file_durably(ckpt_path(dir), checkpoint_to_json(spec, ckpt), fsync);
  if (own_log != nullptr) own_log->truncate_all();
  lock.release();
  return true;
}

ElasticResult run_elastic_worker(const ScenarioSpec& spec, const ElasticOptions& options) {
  if (options.dir.empty()) throw std::runtime_error("elastic: no directory given");
  const std::vector<ScenarioCase> cells = expand_grid(spec);
  validate_spec(spec, cells);
  const std::uint64_t spec_fp = spec_fingerprint(spec);
  const std::uint64_t total_blocks = num_trial_blocks(spec.trials);
  const std::string worker_id =
      options.worker_id.empty() ? default_worker_id() : options.worker_id;
  const std::uint64_t ttl = std::max<std::uint64_t>(1, options.lease_ttl_seconds);

  ensure_elastic_dir(spec, options.dir);
  BlockLog log(own_log_path(options.dir, worker_id), spec_fp, options.fsync);
  // A restarted worker's own log may hold a dead predecessor's blocks; fold
  // them (and anyone else's) forward before claiming anything.
  compact_elastic_dir(spec, options.dir, worker_id, &log, ttl, options.fsync);

  const std::vector<std::size_t> order = cost_order(spec, cells);
  unsigned threads = options.threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : options.threads;

  ElasticResult res;
  for (;;) {
    ElasticProgress progress = load_elastic_progress(spec, options.dir);
    bool all_complete = true;
    for (const CellProgress& cp : progress.cells) {
      all_complete = all_complete && cp.prefix_blocks == total_blocks;
    }
    if (all_complete) {
      // Final fold: finalizes every completed-by-log cell and leaves one
      // checkpoint that IS the campaign (merge reads it straight off).
      compact_elastic_dir(spec, options.dir, worker_id, &log, ttl, options.fsync);
      res.campaign_complete = true;
      return res;
    }

    bool worked = false;
    for (const std::size_t idx : order) {
      if (progress.cells[idx].prefix_blocks == total_blocks) continue;
      bool reclaimed = false;
      Lease lease =
          Lease::try_acquire(cell_lease_path(options.dir, idx), worker_id, ttl, &reclaimed);
      if (reclaimed) ++res.leases_reclaimed;
      if (!lease.held()) continue;
      ++res.cells_leased;
      worked = true;

      // Re-read progress now that the cell is ours: a previous (possibly
      // dead) holder may have made more blocks durable than our last scan saw.
      progress = load_elastic_progress(spec, options.dir);
      const CellProgress& cp = progress.cells[idx];
      std::vector<std::uint64_t> remaining;
      {
        std::size_t extra_at = 0;
        for (std::uint64_t b = cp.prefix_blocks; b < total_blocks; ++b) {
          while (extra_at < cp.extra.size() && cp.extra[extra_at].first < b) ++extra_at;
          if (extra_at < cp.extra.size() && cp.extra[extra_at].first == b) continue;
          remaining.push_back(b);
        }
      }
      res.blocks_skipped += total_blocks - remaining.size();

      // Heartbeat from a dedicated thread at ttl/3, so long blocks cannot
      // starve the lease into looking dead.
      std::mutex hb_mu;
      std::condition_variable hb_cv;
      bool hb_stop = false;
      std::atomic<bool> lost{false};
      std::thread heartbeat([&] {
        const auto interval = std::chrono::milliseconds(std::max<std::uint64_t>(ttl * 1000 / 3, 100));
        std::unique_lock<std::mutex> lk(hb_mu);
        while (!hb_cv.wait_for(lk, interval, [&] { return hb_stop; })) {
          lk.unlock();
          try {
            lease.heartbeat();
          } catch (...) {
            // LeaseLost or I/O trouble: stop running this cell. Everything
            // already appended is durable; duplicates by the reclaimer merge
            // away.
            lost.store(true);
          }
          lk.lock();
          if (lost.load()) return;
        }
      });

      CellRunner runner(spec, cells[idx]);
      std::atomic<std::size_t> next{0};
      std::atomic<bool> abort_all{false};
      std::uint64_t cell_blocks_run = 0;
      std::mutex log_mu;
      std::mutex fail_mu;
      std::exception_ptr block_failure;
      auto block_worker = [&] {
        try {
          for (;;) {
            if (lost.load() || abort_all.load()) return;
            const std::size_t i = next.fetch_add(1);
            if (i >= remaining.size()) return;
            const ScenarioResult partial = runner.run_block(remaining[i]);
            const std::lock_guard<std::mutex> lk(log_mu);
            if (abort_all.load()) return;  // the crash hook fired mid-compute
            log.append({idx, remaining[i], partial});
            ++cell_blocks_run;
            if (options.stop_after_blocks != 0 &&
                res.blocks_run + cell_blocks_run >= options.stop_after_blocks) {
              abort_all.store(true);
            }
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lk(fail_mu);
          if (!block_failure) block_failure = std::current_exception();
          abort_all.store(true);
        }
      };
      {
        const unsigned pool_size = static_cast<unsigned>(
            std::min<std::size_t>(threads, std::max<std::size_t>(remaining.size(), 1)));
        std::vector<std::thread> pool;
        pool.reserve(pool_size);
        for (unsigned t = 0; t < pool_size; ++t) pool.emplace_back(block_worker);
        for (std::thread& t : pool) t.join();
      }
      {
        const std::lock_guard<std::mutex> lk(hb_mu);
        hb_stop = true;
      }
      hb_cv.notify_all();
      heartbeat.join();
      res.blocks_run += cell_blocks_run;

      if (block_failure) {
        lease.release();  // let someone else take over; our blocks are durable
        std::rethrow_exception(block_failure);
      }
      if (options.stop_after_blocks != 0 && res.blocks_run >= options.stop_after_blocks) {
        lease.abandon();  // simulated hard crash: the lease file stays behind
        throw ElasticAborted(res.blocks_run);
      }
      if (lost.load()) {
        lease.abandon();  // not ours anymore; rescan and move on
        break;
      }

      lease.release();
      compact_elastic_dir(spec, options.dir, worker_id, &log, ttl, options.fsync);
      if (options.progress != nullptr) {
        *options.progress << "[" << worker_id << "] " << cells[idx].label() << ": ran "
                          << cell_blocks_run << "/" << total_blocks << " blocks\n";
      }
      break;  // rescan from a fresh progress snapshot
    }

    if (!worked) {
      // Every incomplete cell is leased by a live worker: poll until they
      // finish (or die and their leases age out).
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<std::int64_t>(options.poll_seconds * 1000)));
    }
  }
}

}  // namespace ftdb::campaign::elastic
