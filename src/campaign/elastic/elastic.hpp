// Elastic campaign service: workers join and leave a running campaign at
// will, coordinating only through a shared checkpoint directory.
//
// Directory layout (everything under one `--elastic DIR`):
//
//   spec.json            canonical spec echo, written atomically by the first
//                        worker; joiners verify its fingerprint against their
//                        own spec before touching anything else
//   leases/cell-<i>.lease   one lease per grid cell (campaign/elastic/lease.hpp)
//   leases/compact.lease    serializes checkpoint compaction
//   logs/<worker>.blk    per-worker append-only block log
//                        (campaign/elastic/blocklog.hpp)
//   compacted.ckpt       "ftdb-campaign-checkpoint-v2" snapshot the logs fold
//                        into; crash replay is bounded by the blocks appended
//                        since the last compaction
//
// Workers lease whole cells — expensive cells first, by predicted_cell_cost,
// so the campaign's tail stays short — run the cell's not-yet-durable trial
// blocks, and append each block to their own log before anything references
// it. A worker that dies mid-cell leaves its lease behind; the next claimant
// reclaims it after the TTL and re-runs only the blocks the dead worker
// never made durable. Because every trial's randomness is counter-based,
// any block double-computed in a lease race is byte-identical, and merges
// dedupe on (cell, block) — so the final report of any elastic history is
// byte-identical to a serial run of the same spec.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/elastic/blocklog.hpp"
#include "campaign/runner.hpp"

namespace ftdb::campaign::elastic {

struct ElasticOptions {
  std::string dir;        ///< shared checkpoint directory (required)
  std::string worker_id;  ///< unique per worker; empty = "<host>-<pid>"
  /// Threads running trial blocks inside a leased cell; 0 = hardware.
  unsigned threads = 0;
  /// Lease staleness horizon. A worker heartbeats at ttl/3; a lease whose
  /// heartbeat is older than its TTL is reclaimed by the next claimant.
  std::uint64_t lease_ttl_seconds = 30;
  /// Sleep between claim sweeps when every incomplete cell is leased out.
  double poll_seconds = 0.5;
  /// Crash-simulation hook: once this many blocks have been appended, stop
  /// WITHOUT releasing the held lease (the on-disk state a hard-killed
  /// worker leaves) and throw ElasticAborted. 0 disables.
  std::uint64_t stop_after_blocks = 0;
  bool fsync = true;  ///< fsync block-log appends (tests may disable)
  std::ostream* progress = nullptr;  ///< optional one-line-per-cell sink
};

struct ElasticResult {
  std::uint64_t blocks_run = 0;        ///< blocks this worker computed and appended
  std::uint64_t blocks_skipped = 0;    ///< blocks of leased cells already durable
  std::uint64_t cells_leased = 0;
  std::uint64_t leases_reclaimed = 0;  ///< stale leases swept while claiming
  bool campaign_complete = false;      ///< every cell durable when we left
};

/// Thrown by run_elastic_worker when options.stop_after_blocks fired. The
/// held lease is deliberately NOT released — this simulates a hard crash.
struct ElasticAborted : std::runtime_error {
  explicit ElasticAborted(std::uint64_t blocks)
      : std::runtime_error("elastic: stopped after " + std::to_string(blocks) +
                           " blocks (stop_after_blocks hook)"),
        blocks_completed(blocks) {}
  std::uint64_t blocks_completed = 0;
};

/// Creates the directory layout and the canonical spec.json, or verifies an
/// existing spec.json's fingerprint. Throws std::runtime_error when the
/// directory already hosts a different campaign.
void ensure_elastic_dir(const ScenarioSpec& spec, const std::string& dir);

/// Reads the spec.json of an existing elastic directory.
ScenarioSpec load_elastic_spec(const std::string& dir);

/// Durable progress of the whole campaign: compacted checkpoint + every
/// worker log, deduped by (cell, block) and drained into per-cell prefixes.
struct ElasticProgress {
  /// Index-aligned with expand_grid(spec). prefix_blocks == num_blocks means
  /// the cell's trials are all durable.
  std::vector<CellProgress> cells;
  /// Whether the cell's prefix carries finalized metadata (labels, analytic
  /// columns) — true only for complete cells folded by compaction.
  std::vector<char> finalized;
  std::uint64_t durable_blocks = 0;  ///< distinct durable blocks, all cells
};

/// Loads and validates the directory's durable progress. Tolerates torn log
/// tails (live appends elsewhere); throws on structural corruption or a
/// fingerprint mismatch.
ElasticProgress load_elastic_progress(const ScenarioSpec& spec, const std::string& dir);

/// Folds every log into compacted.ckpt (finalizing cells that completed),
/// then empties `own_log` (whose records are now in the checkpoint). Other
/// workers' logs are never truncated — they compact their own. Serialized by
/// leases/compact.lease; returns false (doing nothing) when another worker
/// holds it. `own_log` may be null (merge-time compaction).
bool compact_elastic_dir(const ScenarioSpec& spec, const std::string& dir,
                         const std::string& worker_id, BlockLog* own_log,
                         std::uint64_t lease_ttl_seconds, bool fsync);

/// Joins the elastic campaign at `options.dir` and works until every cell is
/// durable (or until nothing is claimable and someone else holds the rest —
/// then keeps polling until the campaign completes). Throws ElasticAborted
/// when the crash hook fires, std::runtime_error on unusable specs or a
/// directory belonging to a different campaign.
ElasticResult run_elastic_worker(const ScenarioSpec& spec, const ElasticOptions& options);

}  // namespace ftdb::campaign::elastic
