#include "campaign/elastic/lease.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "analysis/bench_json.hpp"

namespace ftdb::campaign::elastic {
namespace {

using analysis::JsonValue;
using analysis::JsonWriter;

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("lease: " + what + " failed for " + path + ": " +
                           std::strerror(errno));
}

std::string host_name() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) != 0) return "unknown-host";
  return buf;
}

/// Writes `text` to `path` (O_TRUNC), fsyncs it, and reports the resulting
/// inode — the identity witness the holder checks on every heartbeat.
void write_stamp_file(const std::string& path, const std::string& text, std::uint64_t& dev,
                      std::uint64_t& ino) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_fail("open", path);
  const char* data = text.data();
  std::size_t len = text.size();
  while (len > 0) {
    const ssize_t w = ::write(fd, data, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_fail("write", path);
    }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
  struct stat st {};
  if (::fsync(fd) != 0 || ::fstat(fd, &st) != 0) {
    ::close(fd);
    io_fail("fsync", path);
  }
  ::close(fd);
  dev = static_cast<std::uint64_t>(st.st_dev);
  ino = static_cast<std::uint64_t>(st.st_ino);
}

/// True when the file at `path` exists, is the inode we recorded, AND still
/// carries the exact stamp bytes we last wrote. The content check matters:
/// after a reclaim the filesystem is free to hand the thief's fresh lease
/// file our just-released inode number, so (dev, ino) alone can lie.
bool still_ours(const std::string& path, std::uint64_t dev, std::uint64_t ino,
                const std::string& stamp_text) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return false;
  if (static_cast<std::uint64_t>(st.st_dev) != dev ||
      static_cast<std::uint64_t>(st.st_ino) != ino) {
    return false;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str() == stamp_text;
}

}  // namespace

std::uint64_t lease_now_secs() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::seconds>(now).count());
}

std::string lease_stamp_json(const LeaseStamp& stamp) {
  JsonWriter w;
  w.begin_object();
  w.key("worker");
  w.value(stamp.worker);
  w.key("pid");
  w.value(static_cast<std::uint64_t>(stamp.pid < 0 ? 0 : stamp.pid));
  w.key("host");
  w.value(stamp.host);
  w.key("heartbeat_secs");
  w.value(stamp.heartbeat_secs);
  w.key("ttl_secs");
  w.value(stamp.ttl_secs);
  w.end_object();
  return w.str();
}

std::optional<LeaseStamp> read_lease(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const JsonValue doc = analysis::json_parse(text.str());
    LeaseStamp stamp;
    stamp.worker = doc.at("worker").string;
    stamp.pid = static_cast<std::int64_t>(doc.at("pid").number);
    stamp.host = doc.at("host").string;
    stamp.heartbeat_secs = static_cast<std::uint64_t>(doc.at("heartbeat_secs").number);
    stamp.ttl_secs = static_cast<std::uint64_t>(doc.at("ttl_secs").number);
    return stamp;
  } catch (const std::exception&) {
    return std::nullopt;  // garbled stamp: treated like a stale lease by claimants
  }
}

Lease::~Lease() {
  if (!held_) return;
  try {
    release();
  } catch (...) {
    // Destructor cleanup is best-effort; an unreleased lease just ages out.
  }
}

Lease::Lease(Lease&& other) noexcept
    : path_(std::move(other.path_)),
      worker_(std::move(other.worker_)),
      ttl_secs_(other.ttl_secs_),
      held_(other.held_),
      dev_(other.dev_),
      ino_(other.ino_),
      stamp_text_(std::move(other.stamp_text_)) {
  other.held_ = false;
}

Lease& Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (held_) {
      try {
        release();
      } catch (...) {
      }
    }
    path_ = std::move(other.path_);
    worker_ = std::move(other.worker_);
    ttl_secs_ = other.ttl_secs_;
    held_ = other.held_;
    dev_ = other.dev_;
    ino_ = other.ino_;
    stamp_text_ = std::move(other.stamp_text_);
    other.held_ = false;
  }
  return *this;
}

void Lease::heartbeat() {
  if (!held_) return;
  LeaseStamp stamp;
  stamp.worker = worker_;
  stamp.pid = static_cast<std::int64_t>(::getpid());
  stamp.host = host_name();
  stamp.heartbeat_secs = lease_now_secs();
  stamp.ttl_secs = ttl_secs_;

  const std::string tmp = path_ + "." + worker_ + ".hb";
  const std::string text = lease_stamp_json(stamp);
  std::uint64_t dev = 0;
  std::uint64_t ino = 0;
  write_stamp_file(tmp, text, dev, ino);
  if (!still_ours(path_, dev_, ino_, stamp_text_)) {
    ::unlink(tmp.c_str());
    held_ = false;
    throw LeaseLost(path_);
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    io_fail("rename", path_);
  }
  dev_ = dev;
  ino_ = ino;
  stamp_text_ = text;
}

void Lease::release() {
  if (!held_) return;
  held_ = false;
  if (still_ours(path_, dev_, ino_, stamp_text_)) ::unlink(path_.c_str());
}

Lease Lease::try_acquire(const std::string& path, const std::string& worker_id,
                         std::uint64_t ttl_secs, bool* reclaimed) {
  if (reclaimed != nullptr) *reclaimed = false;

  // Two rounds: a first claim attempt, then (after at most one reclaim of a
  // stale holder) a second. Losing both means live contention — report
  // not-held and let the caller move on to another cell.
  for (int round = 0; round < 2; ++round) {
    LeaseStamp stamp;
    stamp.worker = worker_id;
    stamp.pid = static_cast<std::int64_t>(::getpid());
    stamp.host = host_name();
    stamp.heartbeat_secs = lease_now_secs();
    stamp.ttl_secs = ttl_secs;

    const std::string tmp = path + "." + worker_id + ".tmp";
    const std::string text = lease_stamp_json(stamp);
    std::uint64_t dev = 0;
    std::uint64_t ino = 0;
    write_stamp_file(tmp, text, dev, ino);

    if (::link(tmp.c_str(), path.c_str()) == 0) {
      ::unlink(tmp.c_str());
      Lease lease;
      lease.path_ = path;
      lease.worker_ = worker_id;
      lease.ttl_secs_ = ttl_secs;
      lease.held_ = true;
      lease.dev_ = dev;
      lease.ino_ = ino;
      lease.stamp_text_ = text;
      return lease;
    }
    const int link_errno = errno;
    ::unlink(tmp.c_str());
    if (link_errno != EEXIST) {
      errno = link_errno;
      io_fail("link", path);
    }

    // Held. Stale or garbled stamps are reclaimable; fresh ones are not.
    const std::optional<LeaseStamp> holder = read_lease(path);
    if (holder.has_value() &&
        lease_now_secs() < holder->heartbeat_secs + holder->ttl_secs) {
      return {};  // live holder
    }
    // ENOENT from read_lease: the holder released between our link and the
    // read — just retry the claim (no reclaim happened).
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0) continue;

    // Atomic takeover: exactly one reclaimer wins the rename.
    const std::string relic = path + "." + worker_id + ".reclaim";
    if (::rename(path.c_str(), relic.c_str()) == 0) {
      ::unlink(relic.c_str());
      if (reclaimed != nullptr) *reclaimed = true;
    }
    // Lost the takeover race (ENOENT) or won it: either way the path may now
    // be free — loop for one more claim attempt.
  }
  return {};
}

}  // namespace ftdb::campaign::elastic
