// Shard leasing for the elastic campaign service.
//
// A lease is one file in the shared checkpoint directory whose *existence*
// means "some worker is running this cell" and whose JSON stamp says who and
// how recently. Coordination uses only POSIX primitives that are atomic on
// a shared filesystem:
//
//   claim      write the stamp to a private temp file, then link(2) it at the
//              lease path — link fails with EEXIST when the lease is held, so
//              exactly one claimant wins.
//   heartbeat  write a refreshed stamp to a temp file and rename(2) it over
//              the lease. Before renaming, the holder stats the lease and
//              compares the inode it recorded at claim time *and* the stamp
//              bytes it last wrote (inodes get recycled): any mismatch (or
//              ENOENT) means another worker reclaimed us.
//   reclaim    a claimant that finds a stamp whose heartbeat is older than
//              its TTL rename(2)s the lease aside to a takeover relic —
//              rename is atomic, so exactly one reclaimer wins (the losers
//              see ENOENT) — unlinks the relic, and claims normally.
//
// The protocol has benign TOCTOU windows (e.g. a holder heartbeats in the
// instant between a reclaimer's staleness check and its rename). They are
// accepted by design: the worst case is two workers computing the same
// trial block, and campaign blocks are counter-based deterministic, so the
// duplicates are byte-identical and deduped at merge time. Leases are a
// performance mechanism; correctness never depends on mutual exclusion.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace ftdb::campaign::elastic {

/// The JSON stamp inside a lease file.
struct LeaseStamp {
  std::string worker;
  std::int64_t pid = 0;
  std::string host;
  std::uint64_t heartbeat_secs = 0;  ///< unix seconds of the last heartbeat
  std::uint64_t ttl_secs = 0;        ///< staleness horizon the holder asked for
};

std::string lease_stamp_json(const LeaseStamp& stamp);

/// Reads and parses a lease file. nullopt when the file does not exist *or*
/// does not parse as a stamp — a garbled lease can never heartbeat, so
/// claimants treat it exactly like a stale one.
std::optional<LeaseStamp> read_lease(const std::string& path);

/// Unix seconds of the wall clock (the time base of every heartbeat).
std::uint64_t lease_now_secs();

/// Thrown by Lease::heartbeat when the lease file is no longer the one this
/// holder created — another worker reclaimed it after a TTL expiry.
struct LeaseLost : std::runtime_error {
  explicit LeaseLost(const std::string& path)
      : std::runtime_error("lease lost: " + path + " was reclaimed by another worker") {}
};

/// RAII handle on one lease file. Default-constructed (or move-from) handles
/// hold nothing; the destructor releases a held lease best-effort.
class Lease {
 public:
  Lease() = default;
  ~Lease();

  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  Lease(Lease&& other) noexcept;
  Lease& operator=(Lease&& other) noexcept;

  bool held() const { return held_; }
  const std::string& path() const { return path_; }

  /// Re-stamps the lease with a fresh heartbeat. Throws LeaseLost when the
  /// file at the lease path is no longer ours; throws std::runtime_error on
  /// I/O failure.
  void heartbeat();

  /// Removes the lease file if it is still ours (a reclaimed lease is simply
  /// dropped — it now belongs to someone else). Idempotent.
  void release();

  /// Drops ownership WITHOUT unlinking the file — what a crashed worker
  /// leaves behind. Used by the crash-simulation hook and by heartbeat-lost
  /// paths; the abandoned file is reclaimed by the next claimant after TTL.
  void abandon() { held_ = false; }

  /// Attempts to claim `path` for `worker_id`. Returns a non-held Lease when
  /// a live worker holds it; reclaims first (and sets *reclaimed) when the
  /// current stamp is stale or garbled. Throws std::runtime_error on I/O
  /// failure.
  static Lease try_acquire(const std::string& path, const std::string& worker_id,
                           std::uint64_t ttl_secs, bool* reclaimed = nullptr);

 private:
  std::string path_;
  std::string worker_;
  std::uint64_t ttl_secs_ = 0;
  bool held_ = false;
  std::uint64_t dev_ = 0;  ///< st_dev of the stamp we linked/renamed into place
  std::uint64_t ino_ = 0;  ///< st_ino of same — the "is it still ours" witness
  /// The exact stamp bytes we last wrote. The inode pair alone is not a safe
  /// identity witness: the filesystem can recycle a freed inode for the
  /// reclaimer's new lease file, so ownership checks also compare content.
  std::string stamp_text_;
};

}  // namespace ftdb::campaign::elastic
