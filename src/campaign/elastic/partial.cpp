#include "campaign/elastic/partial.hpp"

#include <stdexcept>

#include "analysis/bench_json.hpp"

namespace ftdb::campaign::elastic {

using analysis::JsonWriter;

CampaignResult merge_elastic(const ScenarioSpec& spec, const std::string& dir) {
  const std::vector<ScenarioCase> cells = expand_grid(spec);
  const std::uint64_t total_blocks = num_trial_blocks(spec.trials);
  ElasticProgress progress = load_elastic_progress(spec, dir);

  CampaignResult result;
  result.spec = spec;
  result.scenarios.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    CellProgress& cp = progress.cells[i];
    if (cp.prefix_blocks != total_blocks) {
      throw std::runtime_error("elastic merge: cell " + std::to_string(i) + " (" +
                               cells[i].label() + ") is incomplete (" +
                               std::to_string(cp.prefix_blocks) + "/" +
                               std::to_string(total_blocks) +
                               " blocks durable) — use merge --partial for a live snapshot");
    }
    if (cp.prefix.trials != spec.trials) {
      throw std::runtime_error("elastic merge: cell " + std::to_string(i) + " carries " +
                               std::to_string(cp.prefix.trials) + " trials, expected " +
                               std::to_string(spec.trials));
    }
    // Cells whose last blocks arrived after the final compaction (or when no
    // compaction ran at all) still carry raw accumulators.
    if (progress.finalized[i] == 0) CellRunner(spec, cells[i]).finalize(cp.prefix);
    result.scenarios[i] = std::move(cp.prefix);
  }
  return result;
}

std::string partial_elastic_report_json(const ScenarioSpec& spec, const std::string& dir) {
  const std::vector<ScenarioCase> cells = expand_grid(spec);
  const std::uint64_t total_blocks = num_trial_blocks(spec.trials);
  ElasticProgress progress = load_elastic_progress(spec, dir);

  std::uint64_t completed_trials = 0;
  std::uint64_t cells_complete = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    CellProgress& cp = progress.cells[i];
    completed_trials += cp.prefix.trials;
    for (const auto& [block, partial] : cp.extra) completed_trials += partial.trials;
    if (cp.prefix_blocks == total_blocks) {
      ++cells_complete;
      // Emit completed cells exactly as the final report will: finalized.
      if (progress.finalized[i] == 0) CellRunner(spec, cells[i]).finalize(cp.prefix);
    } else {
      // Incomplete cells: raw accumulators over the completed prefix, plus
      // the cheap identity fields (no graphs get built for a live snapshot).
      cp.prefix.scenario_index = i;
      cp.prefix.label = cells[i].label();
      cp.prefix.target_nodes = cells[i].topology.target_nodes();
    }
  }
  const std::uint64_t total_trials = spec.trials * static_cast<std::uint64_t>(cells.size());

  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ftdb-campaign-v1");
  w.key("partial");
  w.value(true);
  w.key("coverage");
  w.begin_object();
  w.key("completed_trials");
  w.value(completed_trials);
  w.key("total_trials");
  w.value(total_trials);
  w.key("fraction");
  w.value(total_trials == 0 ? 0.0
                            : static_cast<double>(completed_trials) /
                                  static_cast<double>(total_trials));
  w.key("cells_complete");
  w.value(cells_complete);
  w.key("cells_total");
  w.value(static_cast<std::uint64_t>(cells.size()));
  w.key("cells");
  w.begin_array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellProgress& cp = progress.cells[i];
    std::uint64_t cell_trials = cp.prefix.trials;
    for (const auto& [block, partial] : cp.extra) cell_trials += partial.trials;
    w.begin_object();
    w.key("scenario_index");
    w.value(static_cast<std::uint64_t>(i));
    w.key("completed_trials");
    w.value(cell_trials);
    w.key("total_trials");
    w.value(spec.trials);
    w.key("completed_blocks");
    w.value(cp.prefix_blocks + static_cast<std::uint64_t>(cp.extra.size()));
    w.key("total_blocks");
    w.value(total_blocks);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("spec");
  write_scenario_spec(w, spec);
  // "scenarios" stays exactly v1-shaped: every grid cell present, in grid
  // order, serialized by the same writer the final report uses — so a
  // completed cell's object here is a byte-identical substring of the final
  // report. Only the merged prefix is reported; out-of-order extra blocks
  // count toward coverage but stay out of the accumulators (they would make
  // the "which trials" story ambiguous).
  w.key("scenarios");
  w.begin_array();
  for (const CellProgress& cp : progress.cells) write_scenario_result(w, cp.prefix);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace ftdb::campaign::elastic
