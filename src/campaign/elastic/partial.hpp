// Live partial results and the final merge for elastic campaigns.
//
// `merge_elastic` is the end-of-campaign read: it requires every cell's
// blocks to be durable and produces the CampaignResult a serial
// run_campaign of the same spec would — byte-identical reports, including
// across lease reclaims and crashed workers, because blocks are
// counter-based deterministic and merges fold them in block order.
//
// `partial_elastic_report_json` can be taken at ANY moment of a live
// campaign: it emits a valid "ftdb-campaign-v1" document over whatever
// blocks are durable right now, stamped "partial": true plus a coverage
// block (overall and per-cell completed/total trials). Scenario objects for
// completed cells are byte-identical to the ones the final report will
// carry; incomplete cells carry their raw accumulators over the completed
// prefix (Wilson intervals and rates therefore cover completed trials);
// untouched cells appear with zero trials.
#pragma once

#include <string>

#include "campaign/elastic/elastic.hpp"
#include "campaign/runner.hpp"

namespace ftdb::campaign::elastic {

/// Merges a *complete* elastic directory into the campaign result. Throws
/// std::runtime_error naming the first incomplete cell otherwise.
CampaignResult merge_elastic(const ScenarioSpec& spec, const std::string& dir);

/// Point-in-time partial report over the durable blocks of a (possibly
/// still running) elastic campaign. Always valid; never throws merely
/// because the campaign is incomplete.
std::string partial_elastic_report_json(const ScenarioSpec& spec, const std::string& dir);

}  // namespace ftdb::campaign::elastic
