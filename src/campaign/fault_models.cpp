#include "campaign/fault_models.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ftdb::campaign {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/// Time of the (k+1)-st failure given every node's failure time; +inf when
/// fewer than k+1 entries are finite.
double exhaustion_time(std::vector<double>& times, unsigned spares) {
  const std::size_t rank = spares;  // 0-based index of the (k+1)-st smallest
  if (rank >= times.size()) return kNever;
  std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(rank),
                   times.end());
  return times[rank];
}

/// Geometric first-failure step from one uniform draw: P[T <= t] = 1-(1-p)^t,
/// T >= 1. The same draw decides the step-1 fault set ({U < p} iff T == 1),
/// which keeps the snapshot and the clock of the iid model consistent.
double geometric_step(double u, double p) {
  return std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
}

class IidBernoulliModel final : public FaultModel {
 public:
  explicit IidBernoulliModel(double p) : p_(p) {}

  std::string name() const override { return "iid"; }

  FaultDraw draw(const Graph& fabric, unsigned spares, TrialRng& rng) const override {
    const std::size_t n = fabric.num_nodes();
    std::vector<NodeId> faulty;
    std::vector<double> times(n);
    for (std::size_t v = 0; v < n; ++v) {
      const double u = rng.next_unit();
      if (u < p_) faulty.push_back(static_cast<NodeId>(v));
      times[v] = geometric_step(u, p_);
    }
    FaultDraw out;
    out.faults = FaultSet(n, std::move(faulty));
    out.spare_exhaustion_time = exhaustion_time(times, spares);
    return out;
  }

 private:
  double p_;
};

class ClusteredModel final : public FaultModel {
 public:
  explicit ClusteredModel(double p) : p_(p) {}

  std::string name() const override { return "clustered"; }

  FaultDraw draw(const Graph& fabric, unsigned spares, TrialRng& rng) const override {
    const std::size_t n = fabric.num_nodes();
    // Seed clock per node; a seed firing at time t takes its neighborhood
    // down at t+1, so a node dies at min(own seed, earliest neighbor seed+1).
    std::vector<double> seed_time(n);
    for (std::size_t v = 0; v < n; ++v) seed_time[v] = geometric_step(rng.next_unit(), p_);
    std::vector<double> times(n);
    std::vector<NodeId> faulty;
    for (std::size_t v = 0; v < n; ++v) {
      double t = seed_time[v];
      bool neighbor_seed_now = false;
      for (const NodeId u : fabric.neighbors(static_cast<NodeId>(v))) {
        t = std::min(t, seed_time[u] + 1.0);
        neighbor_seed_now = neighbor_seed_now || seed_time[u] == 1.0;
      }
      times[v] = t;
      // Snapshot fault set: step-1 seeds plus their whole neighborhoods.
      if (seed_time[v] == 1.0 || neighbor_seed_now) faulty.push_back(static_cast<NodeId>(v));
    }
    FaultDraw out;
    out.faults = FaultSet(n, std::move(faulty));
    out.spare_exhaustion_time = exhaustion_time(times, spares);
    return out;
  }

 private:
  double p_;
};

class WeibullModel final : public FaultModel {
 public:
  WeibullModel(double shape, double scale, double horizon)
      : shape_(shape), scale_(scale), horizon_(horizon) {}

  std::string name() const override { return "weibull"; }

  FaultDraw draw(const Graph& fabric, unsigned spares, TrialRng& rng) const override {
    const std::size_t n = fabric.num_nodes();
    std::vector<double> times(n);
    std::vector<NodeId> faulty;
    for (std::size_t v = 0; v < n; ++v) {
      // Inverse-CDF sample of Weibull(shape, scale).
      const double t = scale_ * std::pow(-std::log1p(-rng.next_unit()), 1.0 / shape_);
      times[v] = t;
      if (t <= horizon_) faulty.push_back(static_cast<NodeId>(v));
    }
    FaultDraw out;
    out.faults = FaultSet(n, std::move(faulty));
    out.spare_exhaustion_time = exhaustion_time(times, spares);
    return out;
  }

 private:
  double shape_;
  double scale_;
  double horizon_;
};

class AdversarialModel final : public FaultModel {
 public:
  explicit AdversarialModel(double p) : p_(p) {}

  std::string name() const override { return "adversarial"; }

  void prepare(const Graph& fabric, unsigned /*spares*/) override {
    // Attack order: highest degree first, ties broken towards lower ids.
    // Computed once per scenario; draw() runs concurrently and only reads.
    const std::size_t n = fabric.num_nodes();
    order_.resize(n);
    for (std::size_t v = 0; v < n; ++v) order_[v] = static_cast<NodeId>(v);
    std::stable_sort(order_.begin(), order_.end(), [&](NodeId a, NodeId b) {
      return fabric.degree(a) > fabric.degree(b);
    });
  }

  FaultDraw draw(const Graph& fabric, unsigned spares, TrialRng& rng) const override {
    const std::size_t n = fabric.num_nodes();
    if (order_.size() != n) {
      throw std::logic_error("AdversarialModel: draw() before prepare()");
    }
    // The attack budget is Binomial(n, p): the adversary converts the same
    // expected failure mass as the iid model into worst-case placements.
    std::size_t budget = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (rng.next_unit() < p_) ++budget;
    }
    std::vector<NodeId> faulty(order_.begin(),
                               order_.begin() + static_cast<std::ptrdiff_t>(budget));
    FaultDraw out;
    out.faults = FaultSet(n, std::move(faulty));
    // The i-th targeted node dies at step i, so spares run out at step k+1
    // iff the budget covers it.
    out.spare_exhaustion_time =
        budget >= static_cast<std::size_t>(spares) + 1 ? static_cast<double>(spares) + 1.0
                                                       : kNever;
    return out;
  }

 private:
  double p_;
  std::vector<NodeId> order_;
};

class BlockModel final : public FaultModel {
 public:
  BlockModel(double p, std::uint64_t max_width) : p_(p), max_width_(max_width) {}

  std::string name() const override { return "block"; }

  FaultDraw draw(const Graph& fabric, unsigned spares, TrialRng& rng) const override {
    const std::size_t n = fabric.num_nodes();
    FaultDraw out;
    if (n == 0) {
      out.spare_exhaustion_time = kNever;
      return out;
    }
    // Fixed draw order (onset, width, offset) keeps the trial stream stable
    // no matter what the draws turn out to be.
    const double onset = geometric_step(rng.next_unit(), p_);
    const std::uint64_t width = 1 + rng.next_u64() % std::min<std::uint64_t>(max_width_, n);
    const std::uint64_t offset = rng.next_u64() % n;
    std::vector<NodeId> faulty;
    faulty.reserve(width);
    for (std::uint64_t i = 0; i < width; ++i) {
      faulty.push_back(static_cast<NodeId>((offset + i) % n));
    }
    out.faults = FaultSet(n, std::move(faulty));
    // The whole block dies at once, so spares are exhausted at the onset iff
    // the block outweighs them; otherwise never.
    out.spare_exhaustion_time = width >= static_cast<std::uint64_t>(spares) + 1 ? onset : kNever;
    return out;
  }

 private:
  double p_;
  std::uint64_t max_width_;
};

// In both the bus machine (node i drives bus i) and the point-to-point
// degeneration, bus ids coincide with driver node ids, so a set of failed
// buses *is* a set of silenced drivers.
class BusIidModel final : public FaultModel {
 public:
  explicit BusIidModel(double p) : p_(p) {}

  std::string name() const override { return "bus_iid"; }

  FaultDraw draw(const Graph& fabric, unsigned spares, TrialRng& rng) const override {
    const std::size_t n = fabric.num_nodes();  // one bus per driver node
    FaultDraw out;
    std::vector<NodeId> faulty;
    std::vector<double> times(n);
    for (std::size_t b = 0; b < n; ++b) {
      const double u = rng.next_unit();
      if (u < p_) {
        out.bus_faults.push_back(static_cast<std::uint32_t>(b));
        faulty.push_back(static_cast<NodeId>(b));
      }
      times[b] = geometric_step(u, p_);
    }
    out.faults = FaultSet(n, std::move(faulty));
    out.spare_exhaustion_time = exhaustion_time(times, spares);
    return out;
  }

 private:
  double p_;
};

class BusClusteredModel final : public FaultModel {
 public:
  explicit BusClusteredModel(double p) : p_(p) {}

  std::string name() const override { return "bus_clustered"; }

  void prepare(const Graph& fabric, unsigned /*spares*/) override {
    // Point-to-point degeneration: the bus of node v spans v's adjacency, so
    // bus b is carried by (fails one step after) the buses of b's neighbors.
    const std::size_t n = fabric.num_nodes();
    carriers_.assign(n, {});
    for (std::size_t b = 0; b < n; ++b) {
      const auto nb = fabric.neighbors(static_cast<NodeId>(b));
      carriers_[b].assign(nb.begin(), nb.end());
    }
  }

  void prepare_bus(const BusGraph& bus, unsigned /*spares*/) override {
    // True bus structure: bus a's members are the nodes listening on it, and
    // each member m drives bus m — so a seed failure of a cascades to every
    // bus driven by a member. carriers_[b] = buses whose member set holds b.
    carriers_.assign(bus.num_buses(), {});
    for (std::size_t a = 0; a < bus.num_buses(); ++a) {
      for (NodeId m : bus.bus(a).members) {
        if (m != bus.bus(a).driver) carriers_[m].push_back(static_cast<NodeId>(a));
      }
    }
  }

  FaultDraw draw(const Graph& fabric, unsigned spares, TrialRng& rng) const override {
    const std::size_t n = fabric.num_nodes();
    if (carriers_.size() != n) {
      throw std::logic_error("BusClusteredModel: draw() before prepare()");
    }
    // Seed clock per bus; a seed firing at time t takes the buses it carries
    // down at t + 1 (mirrors ClusteredModel on nodes).
    std::vector<double> seed_time(n);
    for (std::size_t b = 0; b < n; ++b) seed_time[b] = geometric_step(rng.next_unit(), p_);
    std::vector<double> times(n);
    FaultDraw out;
    std::vector<NodeId> faulty;
    for (std::size_t b = 0; b < n; ++b) {
      double t = seed_time[b];
      bool carrier_seed_now = false;
      for (const NodeId a : carriers_[b]) {
        t = std::min(t, seed_time[a] + 1.0);
        carrier_seed_now = carrier_seed_now || seed_time[a] == 1.0;
      }
      times[b] = t;
      if (seed_time[b] == 1.0 || carrier_seed_now) {
        out.bus_faults.push_back(static_cast<std::uint32_t>(b));
        faulty.push_back(static_cast<NodeId>(b));
      }
    }
    out.faults = FaultSet(n, std::move(faulty));
    out.spare_exhaustion_time = exhaustion_time(times, spares);
    return out;
  }

 private:
  double p_;
  std::vector<std::vector<NodeId>> carriers_;  // carriers_[b]: buses that take b down
};

}  // namespace

std::unique_ptr<FaultModel> make_fault_model(const FaultModelSpec& spec) {
  switch (spec.kind) {
    case FaultModelKind::IidBernoulli:
      return std::make_unique<IidBernoulliModel>(spec.p);
    case FaultModelKind::Clustered:
      return std::make_unique<ClusteredModel>(spec.p);
    case FaultModelKind::Weibull:
      return std::make_unique<WeibullModel>(spec.shape, spec.scale, spec.horizon);
    case FaultModelKind::Adversarial:
      return std::make_unique<AdversarialModel>(spec.p);
    case FaultModelKind::Block:
      return std::make_unique<BlockModel>(spec.p, spec.width);
    case FaultModelKind::BusIid:
      return std::make_unique<BusIidModel>(spec.p);
    case FaultModelKind::BusClustered:
      return std::make_unique<BusClusteredModel>(spec.p);
  }
  throw std::runtime_error("make_fault_model: unknown kind");
}

}  // namespace ftdb::campaign
