// Pluggable fault processes for campaign trials.
//
// Every model is a deterministic function of (fault-tolerant graph, spare
// budget, per-trial RNG): it produces the set of faulty nodes for the trial
// plus the time at which the (k+1)-st failure occurs under the model's clock
// (the moment spares are exhausted and the machine dies — the per-trial
// sample behind the empirical-MTTF column). Four processes are provided:
//
//  * iid        — every node fails independently with probability p (the
//                 paper's analytic model; empirical survival must match the
//                 binomial tail of ft/spares.hpp).
//  * clustered  — "seed" nodes drawn with probability p take their whole
//                 neighborhood down with them: faults = S u N(S). Spatially
//                 correlated failures, the classic violation of the iid
//                 assumption.
//  * weibull    — wear-out: node lifetimes are Weibull(shape, scale) and the
//                 fault set is everything dead by `horizon` time steps.
//                 shape > 1 models aging (failure rate grows over time).
//  * adversarial— targeted attack: an adversary with a Binomial(n, p) budget
//                 removes the highest-degree nodes first (ties by lower id).
//  * block      — correlated rack/pod failure: one contiguous (cyclic) block
//                 of node labels, with uniform random offset and uniform
//                 width in [1, max_width], dies together at a geometric onset
//                 time with per-step probability p. The fault set is the
//                 block itself (the trial asks whether the machine absorbs
//                 losing the rack); the clock says when the rack dies.
//                 Interesting because the monotone embedding absorbs exactly
//                 offset-bounded label shifts — a contiguous block is the
//                 most benign placement of its mass, the antithesis of the
//                 adversarial model.
//
// Two further models fail *buses* rather than nodes (Section V of the paper:
// in the bus realization node i drives bus i, so a failed bus silences its
// driver). On bus-family cells they act on the realized BusGraph and the
// runner routes the draw through ft::resolve_bus_faults; on point-to-point
// cells the "bus of node v" degenerates to v's adjacency, so bus_iid is
// statistically the iid node model and bus_clustered cascades along fabric
// edges:
//
//  * bus_iid       — every bus fails independently with probability p; the
//                    fault set is the failed buses' drivers, and the clock is
//                    the (k+1)-st driver failure (same binomial tail as iid).
//  * bus_clustered — seed buses drawn with probability p; a seed bus failing
//                    at time t takes down the buses driven by its member
//                    nodes at t + 1 (a shorted bus stresses every transceiver
//                    hanging on it). The snapshot is the step-1 seeds plus
//                    their member-driven buses.
#pragma once

#include <memory>
#include <string>

#include "campaign/rng.hpp"
#include "campaign/scenario.hpp"
#include "ft/reconfigure.hpp"
#include "graph/bus_graph.hpp"
#include "graph/graph.hpp"

namespace ftdb::campaign {

/// One trial's worth of randomness turned into failures.
struct FaultDraw {
  FaultSet faults;  ///< faulty nodes within the fault-tolerant fabric
  /// Time of the (k+1)-st node failure under the model's clock — when the
  /// spare budget is exhausted. +inf when fewer than k+1 nodes ever fail
  /// (possible under the adversarial model); such trials are reported as
  /// censored rather than averaged.
  double spare_exhaustion_time = 0.0;
  /// Failed bus ids, sorted ascending; empty for node-fault models. On
  /// bus-family cells the runner feeds these through ft::resolve_bus_faults
  /// so the drawn buses are merged with node faults on the realized graph.
  std::vector<std::uint32_t> bus_faults;
};

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  virtual std::string name() const = 0;

  /// Called once per scenario, single-threaded, before any draw(); models
  /// precompute per-fabric state here (e.g. the adversarial attack order).
  /// draw() may afterwards run concurrently from many threads.
  virtual void prepare(const Graph& fabric, unsigned spares) {
    (void)fabric;
    (void)spares;
  }

  /// Called after prepare() on bus-family cells, single-threaded, with the
  /// realized bus machine. Bus-fault models refine their member structure
  /// from the true buses here; node-fault models ignore it.
  virtual void prepare_bus(const BusGraph& bus, unsigned spares) {
    (void)bus;
    (void)spares;
  }

  /// Draws one trial. `fabric` is the fault-tolerant interconnect the faults
  /// land on (the bus machine passes its realized point-to-point graph);
  /// `spares` is the budget k the exhaustion clock counts against. Must be
  /// a pure function of its arguments and the rng stream.
  virtual FaultDraw draw(const Graph& fabric, unsigned spares, TrialRng& rng) const = 0;
};

/// Factory from the declarative spec. Throws std::runtime_error on
/// parameters the parser's validation should have rejected.
std::unique_ptr<FaultModel> make_fault_model(const FaultModelSpec& spec);

}  // namespace ftdb::campaign
