#include "campaign/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "analysis/bench_json.hpp"
#include "analysis/table.hpp"

namespace ftdb::campaign {

using analysis::JsonValue;
using analysis::JsonWriter;

namespace {

std::string fmt(double v, int precision = 4) {
  if (!std::isfinite(v)) return "-";
  return analysis::fmt_double(v, precision);
}

/// Mean of a streaming accumulator, or "-" when it saw no samples.
std::string fmt_mean(const StreamingStats& s, int precision = 2) {
  return s.count == 0 ? "-" : analysis::fmt_double(s.mean, precision);
}

/// RFC-4180 quoting: wrap when the cell holds a comma/quote/newline.
std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_num(double v) {
  if (!std::isfinite(v)) return "";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

CampaignResult merge_checkpoints(const ScenarioSpec& spec,
                                 const std::vector<Checkpoint>& partials) {
  if (partials.empty()) throw std::runtime_error("campaign merge: no partials given");
  const std::vector<ScenarioCase> cells = expand_grid(spec);
  const std::uint64_t spec_fp = spec_fingerprint(spec);
  const std::uint64_t total_blocks = num_trial_blocks(spec.trials);

  CampaignResult result;
  result.spec = spec;
  result.scenarios.resize(cells.size());
  std::vector<bool> seen(cells.size(), false);

  for (std::size_t p = 0; p < partials.size(); ++p) {
    const Checkpoint& ckpt = partials[p];
    const std::string who = "partial " + std::to_string(p) + " (shard " + ckpt.shard.label() + ")";
    if (ckpt.fingerprint != spec_fp) {
      throw std::runtime_error("campaign merge: " + who +
                               " was produced by a different spec (fingerprint mismatch)");
    }
    if (ckpt.shard_stamp != shard_fingerprint(spec, ckpt.shard)) {
      throw std::runtime_error("campaign merge: " + who +
                               " carries a shard stamp that does not match its coordinates");
    }
    for (const CellProgress& cp : ckpt.cells) {
      if (cp.scenario_index >= cells.size()) {
        throw std::runtime_error("campaign merge: " + who + " has scenario index " +
                                 std::to_string(cp.scenario_index) + " outside the grid");
      }
      if (!ckpt.shard.owns(cp.scenario_index)) {
        throw std::runtime_error("campaign merge: " + who + " contains cell " +
                                 std::to_string(cp.scenario_index) + " it does not own");
      }
      if (seen[cp.scenario_index]) {
        throw std::runtime_error("campaign merge: overlapping shards — cell " +
                                 std::to_string(cp.scenario_index) +
                                 " appears in more than one partial");
      }
      if (cp.prefix_blocks != total_blocks) {
        throw std::runtime_error("campaign merge: " + who + " cell " +
                                 std::to_string(cp.scenario_index) + " is incomplete (" +
                                 std::to_string(cp.prefix_blocks) + "/" +
                                 std::to_string(total_blocks) + " blocks)");
      }
      if (cp.prefix.trials != spec.trials) {
        // A cell can claim all its blocks yet carry a truncated accumulator
        // (torn write, hand-mangled file); the same invariant resume checks.
        throw std::runtime_error("campaign merge: " + who + " cell " +
                                 std::to_string(cp.scenario_index) + " carries " +
                                 std::to_string(cp.prefix.trials) + " trials, expected " +
                                 std::to_string(spec.trials));
      }
      seen[cp.scenario_index] = true;
      result.scenarios[cp.scenario_index] = cp.prefix;
    }
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!seen[i]) {
      throw std::runtime_error("campaign merge: cell " + std::to_string(i) + " (" +
                               cells[i].label() + ") is covered by no partial");
    }
  }
  return result;
}

std::string campaign_report_json(const CampaignResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ftdb-campaign-v1");
  w.key("spec");
  write_scenario_spec(w, result.spec);
  // Run telemetry (thread count, resumed-scenario count) stays out of the
  // document on purpose: the report must be byte-identical across thread
  // counts and checkpoint/resume boundaries.
  w.key("scenarios");
  w.begin_array();
  for (const ScenarioResult& r : result.scenarios) write_scenario_result(w, r);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string campaign_report_csv(const CampaignResult& result) {
  std::ostringstream out;
  out << "scenario_index,label,target_nodes,fabric_nodes,target_diameter,trials,"
         "reconfig_success,success_rate,wilson95_lo,wilson95_hi,analytic_survival,"
         "over_budget,mean_faults,reconfigured_diameter_mean,degraded_diameter_mean,"
         "degraded_disconnected,route_stretch_max,mttf_mean,analytic_mttf,mttf_censored,"
         "collective_rounds,collective_baseline_cycles,collective_slowdown_mean,"
         "collective_unreachable,collective_hop_cycles_mean,collective_congestion_max,"
         "bus_fault_mean,traffic_delivered_mean,traffic_latency_mean,"
         "traffic_congestion_max,traffic_timed_out,slowdown_by_faults\n";
  for (const ScenarioResult& r : result.scenarios) {
    const WilsonInterval ci = r.success_ci();
    // The slowdown-vs-fault-count curve as one cell: "f:mean" pairs joined
    // with ';' ("f:-" when every run at that fault count was unreachable).
    std::string curve;
    for (const SlowdownPoint& p : r.slowdown_curve) {
      if (!curve.empty()) curve += ';';
      curve += std::to_string(p.faults) + ':';
      curve += p.trials > p.unreachable ? csv_num(p.mean_slowdown()) : "-";
    }
    out << r.scenario_index << ',' << csv_quote(r.label) << ',' << r.target_nodes << ','
        << r.fabric_nodes << ',' << r.target_diameter << ',' << r.trials << ','
        << r.reconfig_success << ',' << csv_num(r.success_rate()) << ',' << csv_num(ci.lo)
        << ',' << csv_num(ci.hi) << ',' << csv_num(r.analytic_survival) << ','
        << r.over_budget << ',' << csv_num(r.fault_count.mean) << ','
        << (r.reconfigured_diameter.count ? csv_num(r.reconfigured_diameter.mean) : "") << ','
        << (r.degraded_diameter.count ? csv_num(r.degraded_diameter.mean) : "") << ','
        << r.degraded_disconnected << ','
        << (r.route_stretch.count ? csv_num(r.route_stretch.max) : "") << ','
        << (r.mttf.count ? csv_num(r.mttf.mean) : "") << ',' << csv_num(r.analytic_mttf)
        << ',' << r.mttf_censored << ',' << r.collective_rounds << ','
        << r.collective_baseline_cycles << ','
        << (r.collective_slowdown.count ? csv_num(r.collective_slowdown.mean) : "") << ','
        << r.collective_unreachable << ','
        << (r.collective_hop_cycles.count ? csv_num(r.collective_hop_cycles.mean) : "") << ','
        << (r.collective_congestion.count ? csv_num(r.collective_congestion.max) : "") << ','
        << (r.bus_fault_count.count ? csv_num(r.bus_fault_count.mean) : "") << ','
        << (r.traffic_delivered.count ? csv_num(r.traffic_delivered.mean) : "") << ','
        << (r.traffic_latency.count ? csv_num(r.traffic_latency.mean) : "") << ','
        << (r.traffic_congestion.count ? csv_num(r.traffic_congestion.max) : "") << ','
        << r.traffic_timed_out << ',' << csv_quote(curve) << '\n';
  }
  return out.str();
}

std::string campaign_report_markdown(const CampaignResult& result) {
  std::ostringstream out;
  out << "# Campaign: " << result.spec.name << "\n\n"
      << "seed " << result.spec.seed << ", " << result.spec.trials
      << " trials per scenario, " << result.scenarios.size() << " scenarios\n\n";
  analysis::Table t({"scenario", "trials", "ok", "rate", "wilson 95%", "analytic",
                     "E[faults]", "diam", "mttf", "analytic mttf", "slowdown", "delivered"});
  for (const ScenarioResult& r : result.scenarios) {
    const WilsonInterval ci = r.success_ci();
    t.add_row({r.label, analysis::fmt_u64(r.trials), analysis::fmt_u64(r.reconfig_success),
               fmt(r.success_rate()),
               "[" + fmt(ci.lo) + ", " + fmt(ci.hi) + "]",
               fmt(r.analytic_survival), fmt_mean(r.fault_count),
               fmt_mean(r.reconfigured_diameter), fmt_mean(r.mttf, 1),
               fmt(r.analytic_mttf, 1), fmt_mean(r.collective_slowdown, 4),
               fmt_mean(r.traffic_delivered, 4)});
  }
  out << t.render();
  // Survival curves: only scenarios where the curve has more than one point
  // say anything beyond the headline rate.
  out << "\n## Survival by drawn fault count\n\n";
  for (const ScenarioResult& r : result.scenarios) {
    if (r.survival_curve.size() < 2) continue;
    out << "- " << r.label << ":";
    for (const SurvivalPoint& p : r.survival_curve) {
      out << " " << p.faults << ":" << p.survived << "/" << p.trials;
    }
    out << "\n";
  }
  // Collective slowdown curves: the completion-time cost of the drawn fault
  // count, relative to the healthy baseline (1.0 = the dilation-1 claim).
  bool any_slowdown = false;
  for (const ScenarioResult& r : result.scenarios) any_slowdown |= !r.slowdown_curve.empty();
  if (any_slowdown) {
    out << "\n## Collective slowdown by drawn fault count\n\n";
    for (const ScenarioResult& r : result.scenarios) {
      if (r.slowdown_curve.empty()) continue;
      out << "- " << r.label << " (" << r.collective_rounds << " rounds, baseline "
          << r.collective_baseline_cycles << " cycles):";
      for (const SlowdownPoint& p : r.slowdown_curve) {
        out << " " << p.faults << ":";
        if (p.trials > p.unreachable) {
          out << fmt(p.mean_slowdown(), 3);
        } else {
          out << "-";
        }
        if (p.unreachable > 0) out << "(" << p.unreachable << " unreachable)";
      }
      out << "\n";
    }
  }
  return out.str();
}

std::size_t validate_campaign_report(const std::string& json_text) {
  const JsonValue doc = analysis::json_parse(json_text);
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "ftdb-campaign-v1") {
    throw std::runtime_error("not an ftdb-campaign-v1 document");
  }
  const JsonValue& spec = doc.at("spec");
  if (spec.kind != JsonValue::Kind::Object) throw std::runtime_error("spec must be an object");
  const JsonValue& scenarios = doc.at("scenarios");
  if (scenarios.kind != JsonValue::Kind::Array || scenarios.array.empty()) {
    throw std::runtime_error("scenarios must be a non-empty array");
  }
  // Partial documents (elastic `merge --partial`) legitimately carry cells no
  // worker has touched yet; everything else about them must still validate.
  const JsonValue* partial = doc.find("partial");
  const bool is_partial = partial != nullptr && partial->kind == JsonValue::Kind::Bool &&
                          partial->boolean;
  for (const JsonValue& s : scenarios.array) {
    // parse_scenario_result throws on any missing/mistyped field.
    const ScenarioResult r = parse_scenario_result(s);
    if (r.trials == 0 && !is_partial) throw std::runtime_error("scenario with zero trials");
    if (r.reconfig_success > r.trials) {
      throw std::runtime_error("scenario with more successes than trials");
    }
    std::uint64_t curve_trials = 0;
    for (const SurvivalPoint& p : r.survival_curve) curve_trials += p.trials;
    if (curve_trials != r.trials) {
      throw std::runtime_error("survival curve does not partition the trials");
    }
    std::uint64_t coll_trials = 0;
    std::uint64_t coll_unreachable = 0;
    for (const SlowdownPoint& p : r.slowdown_curve) {
      if (p.unreachable > p.trials) {
        throw std::runtime_error("slowdown curve point with more unreachable runs than trials");
      }
      coll_trials += p.trials;
      coll_unreachable += p.unreachable;
    }
    if (coll_trials > r.trials) {
      throw std::runtime_error("slowdown curve covers more trials than the scenario ran");
    }
    if (coll_unreachable != r.collective_unreachable) {
      throw std::runtime_error("slowdown curve unreachable count does not match the total");
    }
    if (r.bus_fault_count.count > r.trials) {
      throw std::runtime_error("bus fault stats cover more trials than the scenario ran");
    }
    if (r.traffic_delivered.count > r.trials) {
      throw std::runtime_error("traffic stats cover more trials than the scenario ran");
    }
    if (r.traffic_latency.count > r.traffic_delivered.count) {
      throw std::runtime_error("traffic latency samples exceed the trials that ran traffic");
    }
  }
  return scenarios.array.size();
}

}  // namespace ftdb::campaign
