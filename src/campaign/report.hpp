// Campaign report emission: one campaign, three renderings.
//
//  * JSON ("ftdb-campaign-v1") — the machine-readable artifact: the spec
//    echoed back, every scenario's raw accumulators plus derived rates and
//    Wilson intervals, and the per-fault-count survival curves. Validated by
//    the CI smoke job with the in-tree json_parse.
//  * CSV — one row per scenario for spreadsheet/pandas consumption.
//  * Markdown — an analysis::Table with the headline columns, including the
//    analytic-vs-empirical survival comparison from ft/spares.hpp.
//
// All three are pure functions of CampaignResult, which the runner produces
// deterministically — so reports are byte-identical across thread counts and
// across checkpoint/resume boundaries.
#pragma once

#include <string>
#include <vector>

#include "campaign/runner.hpp"

namespace ftdb::campaign {

std::string campaign_report_json(const CampaignResult& result);

/// Fuses the partial checkpoints of a sharded campaign into the full result.
/// Every partial must carry the spec's fingerprint (fingerprint-checked), no
/// two partials may contribute the same grid cell (overlap-rejected), every
/// cell of the expanded grid must be present and complete, and each partial's
/// shard stamp must match its declared coordinates. The scenarios reassemble
/// in grid order from the checkpoints' finalized accumulators — which
/// round-trip bit-exactly through JSON — so the merged report is
/// byte-identical to the report of a single-machine run of the same spec.
/// Throws std::runtime_error describing the first violation.
CampaignResult merge_checkpoints(const ScenarioSpec& spec,
                                 const std::vector<Checkpoint>& partials);

std::string campaign_report_csv(const CampaignResult& result);

std::string campaign_report_markdown(const CampaignResult& result);

/// Validates a report document: parses it with json_parse and checks the
/// schema stamp and per-scenario shape. Throws std::runtime_error with a
/// description when invalid; returns the number of scenarios otherwise.
std::size_t validate_campaign_report(const std::string& json_text);

}  // namespace ftdb::campaign
