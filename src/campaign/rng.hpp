// Counter-based per-trial randomness for campaign runs.
//
// Every trial's generator is derived purely from (campaign seed, scenario
// index, trial index) through splitmix64 finalizer mixing, so a trial's
// random stream is identical no matter which worker thread runs it, in what
// order, or how the trial blocks are sharded. This is what makes campaign
// reports byte-identical across thread counts and what lets a resumed
// campaign reproduce the exact trials a crashed run would have executed.
#pragma once

#include <cstdint>

namespace ftdb::campaign {

/// splitmix64 output/finalizer function (Steele, Lea, Flood 2014). Bijective
/// on 64 bits with full avalanche; also usable as a standalone hash.
inline constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Tiny splitmix64 generator. Not cryptographic; statistically solid for the
/// Monte Carlo workloads here and 3 instructions per draw.
class TrialRng {
 public:
  explicit TrialRng(std::uint64_t state) : state_(state) {}

  /// The canonical campaign derivation: mix the seed and the two counters in
  /// stages so that neighboring (scenario, trial) pairs get uncorrelated
  /// streams.
  static TrialRng for_trial(std::uint64_t campaign_seed, std::uint64_t scenario_idx,
                            std::uint64_t trial_idx) {
    std::uint64_t s = splitmix64_mix(campaign_seed + 0x9e3779b97f4a7c15ull);
    s = splitmix64_mix(s ^ (scenario_idx + 0x9e3779b97f4a7c15ull));
    s = splitmix64_mix(s ^ (trial_idx + 0x9e3779b97f4a7c15ull));
    return TrialRng(s);
  }

  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ull;
    return splitmix64_mix(state_);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace ftdb::campaign
