#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/bench_json.hpp"
#include "campaign/fault_models.hpp"
#include "campaign/rng.hpp"
#include "ft/bus_ft.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "ft/spares.hpp"
#include "ft/tolerance.hpp"
#include "graph/algorithms.hpp"
#include "graph/bus_graph.hpp"
#include "graph/subgraph.hpp"
#include "sim/network.hpp"
#include "sim/reconfigured_routing.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::campaign {

using analysis::JsonValue;
using analysis::JsonWriter;

namespace {

/// Trials per work unit. Fixed — the block partition is part of the
/// deterministic reduction order, so it must not depend on the thread count.
constexpr std::uint64_t kTrialBlock = 256;

}  // namespace

// --- streaming statistics ---------------------------------------------------

void StreamingStats::add(double x) {
  ++count;
  const double delta = x - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (x - mean);
  min = std::min(min, x);
  max = std::max(max, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  // Chan's pairwise update; merge order is fixed by the runner.
  const double total = static_cast<double>(count) + static_cast<double>(other.count);
  const double delta = other.mean - mean;
  mean += delta * (static_cast<double>(other.count) / total);
  m2 += other.m2 +
        delta * delta * (static_cast<double>(count) * static_cast<double>(other.count) / total);
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

double StreamingStats::variance() const {
  return count < 2 ? 0.0 : m2 / static_cast<double>(count - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double half = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, (center - half) / denom), std::min(1.0, (center + half) / denom)};
}

double ScenarioResult::success_rate() const {
  return trials == 0 ? 0.0
                     : static_cast<double>(reconfig_success) / static_cast<double>(trials);
}

WilsonInterval ScenarioResult::success_ci(double z) const {
  return wilson_interval(reconfig_success, trials, z);
}

void ScenarioResult::merge(const ScenarioResult& other) {
  trials += other.trials;
  reconfig_success += other.reconfig_success;
  over_budget += other.over_budget;
  fault_count.merge(other.fault_count);
  reconfigured_diameter.merge(other.reconfigured_diameter);
  degraded_diameter.merge(other.degraded_diameter);
  degraded_disconnected += other.degraded_disconnected;
  route_stretch.merge(other.route_stretch);
  mttf.merge(other.mttf);
  mttf_censored += other.mttf_censored;
  // Merge the sorted sparse survival curves.
  std::vector<SurvivalPoint> merged;
  merged.reserve(survival_curve.size() + other.survival_curve.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < survival_curve.size() || j < other.survival_curve.size()) {
    if (j == other.survival_curve.size() ||
        (i < survival_curve.size() && survival_curve[i].faults < other.survival_curve[j].faults)) {
      merged.push_back(survival_curve[i++]);
    } else if (i == survival_curve.size() ||
               other.survival_curve[j].faults < survival_curve[i].faults) {
      merged.push_back(other.survival_curve[j++]);
    } else {
      SurvivalPoint p = survival_curve[i++];
      p.trials += other.survival_curve[j].trials;
      p.survived += other.survival_curve[j].survived;
      ++j;
      merged.push_back(p);
    }
  }
  survival_curve = std::move(merged);
}

// --- scenario execution ------------------------------------------------------

namespace {

/// Immutable per-scenario state shared (read-only) by all worker threads.
struct ScenarioContext {
  ScenarioCase cell;
  Graph target;
  Graph fabric;                     // point-to-point FT graph / realized bus graph
  std::optional<BusGraph> bus;      // set for the bus family
  std::unique_ptr<FaultModel> model;
  std::uint32_t target_diameter = 0;
  std::uint64_t seed = 0;
  MetricSet metrics;
};

ScenarioContext build_context(const ScenarioSpec& spec, const ScenarioCase& cell) {
  ScenarioContext ctx;
  ctx.cell = cell;
  ctx.seed = spec.seed;
  ctx.metrics = spec.metrics;
  const unsigned h = cell.topology.digits;
  const unsigned k = cell.spares;
  switch (cell.topology.family) {
    case TopologyFamily::DeBruijn:
      ctx.target = debruijn_graph({.base = cell.topology.base, .digits = h});
      ctx.fabric = ft_debruijn_graph({.base = cell.topology.base, .digits = h, .spares = k});
      break;
    case TopologyFamily::ShuffleExchange: {
      // Route 2 (natural labeling): self-contained, no VF2 search needed.
      ctx.target = shuffle_exchange_graph(h);
      ctx.fabric = ft_shuffle_exchange_natural(h, k).ft_graph;
      break;
    }
    case TopologyFamily::Bus: {
      ctx.bus = bus_ft_debruijn_base2(h, k);
      ctx.target = debruijn_base2(h);
      // Fault models and graph metrics act on the point-to-point connectivity
      // the restricted driver<->member discipline realizes.
      ctx.fabric = ctx.bus->realized_graph();
      break;
    }
  }
  ctx.model = make_fault_model(cell.fault_model);
  ctx.model->prepare(ctx.fabric, k);
  ctx.target_diameter = diameter(ctx.target);
  return ctx;
}

/// Runs one trial and folds it straight into `acc`.
void run_trial(const ScenarioContext& ctx, std::uint64_t trial_idx, ScenarioResult& acc,
               std::vector<std::uint64_t>& dense_hist,
               std::vector<std::uint64_t>& dense_survived) {
  TrialRng rng = TrialRng::for_trial(ctx.seed, ctx.cell.index, trial_idx);
  const FaultDraw draw = ctx.model->draw(ctx.fabric, ctx.cell.spares, rng);
  const std::uint64_t faults = draw.faults.count();

  const bool within_budget = faults <= ctx.cell.spares;
  const bool success =
      within_budget &&
      (ctx.bus ? bus_monotone_embedding_survives(ctx.target, *ctx.bus, draw.faults)
               : monotone_embedding_survives(ctx.target, ctx.fabric, draw.faults));

  ++acc.trials;
  acc.fault_count.add(static_cast<double>(faults));
  if (!within_budget) ++acc.over_budget;
  if (success) ++acc.reconfig_success;

  if (dense_hist.size() <= faults) {
    dense_hist.resize(faults + 1, 0);
    dense_survived.resize(faults + 1, 0);
  }
  ++dense_hist[faults];
  if (success) ++dense_survived[faults];

  const bool want_stretch =
      ctx.metrics.stretch && success && ctx.cell.topology.family == TopologyFamily::DeBruijn;
  if ((ctx.metrics.diameter && success) || want_stretch) {
    // One reconfigured machine serves both post-fault metrics (Machine copies
    // the fabric CSR, so building it twice per trial would double the cost
    // of the hot loop).
    const sim::Machine machine =
        sim::Machine::reconfigured(ctx.fabric, draw.faults, ctx.target.num_nodes());
    if (ctx.metrics.diameter) {
      // Measure (not assume) the paper's claim: the reconfigured machine
      // presents the intact target, so its logical diameter must equal the
      // target's.
      const std::uint32_t d = diameter(machine.live_logical_graph(ctx.target));
      if (d != kUnreachable) acc.reconfigured_diameter.add(static_cast<double>(d));
    }
    if (want_stretch) {
      if (ctx.metrics.stretch_sample_pairs == 0) {
        acc.route_stretch.add(
            sim::max_route_stretch(machine, ctx.cell.topology.base, ctx.cell.topology.digits));
      } else {
        // Counter-based pair sample: drawn from the trial's own RNG stream
        // (after the fault draw), so the report stays byte-identical across
        // thread counts and checkpoint/resume. Self-pairs are dropped rather
        // than redrawn to keep the stream consumption fixed.
        const std::uint64_t n_nodes = ctx.target.num_nodes();
        std::vector<std::pair<NodeId, NodeId>> pairs;
        pairs.reserve(ctx.metrics.stretch_sample_pairs);
        for (std::uint64_t i = 0; i < ctx.metrics.stretch_sample_pairs; ++i) {
          const NodeId s = static_cast<NodeId>(rng.next_u64() % n_nodes);
          const NodeId d = static_cast<NodeId>(rng.next_u64() % n_nodes);
          if (s != d) pairs.emplace_back(s, d);
        }
        acc.route_stretch.add(sim::max_route_stretch_sampled(
            machine, ctx.cell.topology.base, ctx.cell.topology.digits, pairs));
      }
    }
  } else if (ctx.metrics.diameter) {
    // Degraded machine: whatever the survivors still form.
    const InducedSubgraph survivors =
        induced_subgraph_excluding(ctx.fabric, draw.faults.nodes());
    const std::uint32_t d =
        survivors.graph.num_nodes() == 0 ? kUnreachable : diameter(survivors.graph);
    if (d == kUnreachable) {
      ++acc.degraded_disconnected;
    } else {
      acc.degraded_diameter.add(static_cast<double>(d));
    }
  }

  if (ctx.metrics.mttf) {
    if (std::isfinite(draw.spare_exhaustion_time)) {
      acc.mttf.add(draw.spare_exhaustion_time);
    } else {
      ++acc.mttf_censored;
    }
  }
}

/// Sparse survival curve from the dense per-block counters.
void fold_histogram(ScenarioResult& acc, const std::vector<std::uint64_t>& dense_hist,
                    const std::vector<std::uint64_t>& dense_survived) {
  for (std::size_t f = 0; f < dense_hist.size(); ++f) {
    if (dense_hist[f] == 0) continue;
    acc.survival_curve.push_back({f, dense_hist[f], dense_survived[f]});
  }
}

/// Exact E[time of the (k+1)-st failure] when all n fabric nodes fail
/// independently with probability p per step: summing the survival function,
/// E = sum_{t >= 0} P[at most k of n failed by step t], with per-node
/// failure probability 1 - (1-p)^t by step t. This is the true expectation
/// of the empirical draw (simultaneous failures allowed) — deliberately not
/// sim::analytic_mttf, which models failures one at a time and overshoots
/// once n*p stops being small.
///
/// The sum needs on the order of the MTTF itself in iterations, so a cap
/// bounds the work; past it we return NaN (report renders "-") rather than a
/// silently truncated number next to the empirical column it validates.
double exact_iid_mttf(std::uint64_t n, unsigned spares, double p) {
  long double expectation = 0.0L;
  long double log_alive = 0.0L;  // log of per-node survival prob (1-p)^t
  const long double log_1mp = std::log1p(static_cast<long double>(-p));
  for (std::uint64_t t = 0; t < 2000000; ++t) {
    const long double q_fail = -std::expm1(log_alive);
    const long double alive = binomial_cdf(n, spares, q_fail);
    expectation += alive;
    if (alive < 1e-13L && t > 0) return static_cast<double>(expectation);
    log_alive += log_1mp;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

ScenarioResult run_scenario(const ScenarioSpec& spec, const ScenarioCase& cell,
                            unsigned threads) {
  const ScenarioContext ctx = build_context(spec, cell);

  const std::uint64_t num_blocks = (spec.trials + kTrialBlock - 1) / kTrialBlock;
  std::vector<ScenarioResult> partials(num_blocks);

  unsigned workers = threads == 0 ? std::max(1u, std::thread::hardware_concurrency()) : threads;
  workers = static_cast<unsigned>(std::min<std::uint64_t>(workers, num_blocks));

  std::atomic<std::uint64_t> next_block{0};
  std::exception_ptr failure;
  std::mutex failure_mutex;
  auto worker = [&] {
    try {
      std::vector<std::uint64_t> dense_hist;
      std::vector<std::uint64_t> dense_survived;
      for (;;) {
        const std::uint64_t b = next_block.fetch_add(1);
        if (b >= num_blocks) return;
        dense_hist.clear();
        dense_survived.clear();
        const std::uint64_t lo = b * kTrialBlock;
        const std::uint64_t hi = std::min(spec.trials, lo + kTrialBlock);
        for (std::uint64_t t = lo; t < hi; ++t) {
          run_trial(ctx, t, partials[b], dense_hist, dense_survived);
        }
        fold_histogram(partials[b], dense_hist, dense_survived);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      if (!failure) failure = std::current_exception();
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (failure) std::rethrow_exception(failure);

  ScenarioResult result;
  result.scenario_index = cell.index;
  result.label = cell.label();
  result.target_nodes = ctx.target.num_nodes();
  result.fabric_nodes = ctx.fabric.num_nodes();
  result.target_diameter = ctx.target_diameter;
  for (const ScenarioResult& p : partials) result.merge(p);  // fixed block order

  if (cell.fault_model.kind == FaultModelKind::IidBernoulli) {
    result.analytic_survival = static_cast<double>(
        survival_probability(result.target_nodes, cell.spares,
                             static_cast<long double>(cell.fault_model.p)));
    result.analytic_mttf =
        exact_iid_mttf(result.fabric_nodes, cell.spares, cell.fault_model.p);
  } else if (cell.fault_model.kind == FaultModelKind::Weibull) {
    // The model draws full Weibull lifetimes, so the empirical MTTF column is
    // exactly the (k+1)-st order statistic this closed form computes.
    result.analytic_mttf = weibull_mttf(result.fabric_nodes, cell.spares,
                                        cell.fault_model.shape, cell.fault_model.scale);
  }
  return result;
}

void write_file_atomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("campaign: cannot write " + tmp);
    out << content;
    if (!out.flush()) throw std::runtime_error("campaign: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("campaign: cannot rename " + tmp + " to " + path);
  }
}

// --- result (de)serialization ------------------------------------------------

void write_stats(JsonWriter& w, const StreamingStats& s) {
  w.begin_object();
  w.key("count");
  w.value(s.count);
  w.key("mean");
  w.value(s.mean);
  w.key("m2");
  w.value(s.m2);
  if (s.count > 0) {
    w.key("min");
    w.value(s.min);
    w.key("max");
    w.value(s.max);
  }
  w.end_object();
}

double number_or_nan(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->is_null()) return std::numeric_limits<double>::quiet_NaN();
  return v->number;
}

std::uint64_t uint_of(const JsonValue& obj, const std::string& key) {
  return static_cast<std::uint64_t>(obj.at(key).number);
}

StreamingStats parse_stats(const JsonValue& obj) {
  StreamingStats s;
  s.count = uint_of(obj, "count");
  s.mean = obj.at("mean").number;
  s.m2 = obj.at("m2").number;
  if (s.count > 0) {
    s.min = obj.at("min").number;
    s.max = obj.at("max").number;
  }
  return s;
}

}  // namespace

// Exposed through runner.hpp for report.cpp's use as well.
void write_scenario_result(JsonWriter& w, const ScenarioResult& r) {
  w.begin_object();
  w.key("scenario_index");
  w.value(static_cast<std::uint64_t>(r.scenario_index));
  w.key("label");
  w.value(r.label);
  w.key("target_nodes");
  w.value(r.target_nodes);
  w.key("fabric_nodes");
  w.value(r.fabric_nodes);
  w.key("target_diameter");
  w.value(static_cast<std::uint64_t>(r.target_diameter));
  w.key("trials");
  w.value(r.trials);
  w.key("reconfig_success");
  w.value(r.reconfig_success);
  w.key("over_budget");
  w.value(r.over_budget);
  w.key("fault_count");
  write_stats(w, r.fault_count);
  w.key("reconfigured_diameter");
  write_stats(w, r.reconfigured_diameter);
  w.key("degraded_diameter");
  write_stats(w, r.degraded_diameter);
  w.key("degraded_disconnected");
  w.value(r.degraded_disconnected);
  w.key("route_stretch");
  write_stats(w, r.route_stretch);
  w.key("mttf");
  write_stats(w, r.mttf);
  w.key("mttf_censored");
  w.value(r.mttf_censored);
  w.key("survival_curve");
  w.begin_array();
  for (const SurvivalPoint& p : r.survival_curve) {
    w.begin_object();
    w.key("faults");
    w.value(p.faults);
    w.key("trials");
    w.value(p.trials);
    w.key("survived");
    w.value(p.survived);
    w.end_object();
  }
  w.end_array();
  w.key("analytic_survival");
  w.value(r.analytic_survival);  // NaN -> null
  w.key("analytic_mttf");
  w.value(r.analytic_mttf);
  // Derived convenience fields (ignored by parse_scenario_result).
  const WilsonInterval ci = r.success_ci();
  w.key("success_rate");
  w.value(r.success_rate());
  w.key("success_ci95_lo");
  w.value(ci.lo);
  w.key("success_ci95_hi");
  w.value(ci.hi);
  w.end_object();
}

ScenarioResult parse_scenario_result(const JsonValue& obj) {
  ScenarioResult r;
  r.scenario_index = uint_of(obj, "scenario_index");
  r.label = obj.at("label").string;
  r.target_nodes = uint_of(obj, "target_nodes");
  r.fabric_nodes = uint_of(obj, "fabric_nodes");
  r.target_diameter = static_cast<std::uint32_t>(uint_of(obj, "target_diameter"));
  r.trials = uint_of(obj, "trials");
  r.reconfig_success = uint_of(obj, "reconfig_success");
  r.over_budget = uint_of(obj, "over_budget");
  r.fault_count = parse_stats(obj.at("fault_count"));
  r.reconfigured_diameter = parse_stats(obj.at("reconfigured_diameter"));
  r.degraded_diameter = parse_stats(obj.at("degraded_diameter"));
  r.degraded_disconnected = uint_of(obj, "degraded_disconnected");
  r.route_stretch = parse_stats(obj.at("route_stretch"));
  r.mttf = parse_stats(obj.at("mttf"));
  r.mttf_censored = uint_of(obj, "mttf_censored");
  for (const JsonValue& p : obj.at("survival_curve").array) {
    r.survival_curve.push_back({uint_of(p, "faults"), uint_of(p, "trials"),
                                uint_of(p, "survived")});
  }
  r.analytic_survival = number_or_nan(obj, "analytic_survival");
  r.analytic_mttf = number_or_nan(obj, "analytic_mttf");
  return r;
}

std::string checkpoint_to_json(const ScenarioSpec& spec,
                               const std::vector<ScenarioResult>& completed) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ftdb-campaign-checkpoint-v1");
  // Hex string, not a JSON number: 64-bit fingerprints do not survive the
  // parser's double representation.
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(spec_fingerprint(spec)));
  w.key("fingerprint");
  w.value(fp);
  w.key("completed");
  w.begin_array();
  for (const ScenarioResult& r : completed) write_scenario_result(w, r);
  w.end_array();
  w.end_object();
  return w.str();
}

Checkpoint parse_checkpoint(const std::string& json_text) {
  const JsonValue doc = analysis::json_parse(json_text);
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "ftdb-campaign-checkpoint-v1") {
    throw std::runtime_error("campaign: not an ftdb-campaign-checkpoint-v1 document");
  }
  Checkpoint ckpt;
  ckpt.fingerprint = std::strtoull(doc.at("fingerprint").string.c_str(), nullptr, 16);
  for (const JsonValue& r : doc.at("completed").array) {
    ckpt.completed.push_back(parse_scenario_result(r));
  }
  return ckpt;
}

// --- the campaign loop -------------------------------------------------------

CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options) {
  if (spec.trials == 0) throw std::runtime_error("campaign: trials must be positive");
  const std::vector<ScenarioCase> cells = expand_grid(spec);
  if (cells.empty()) throw std::runtime_error("campaign: empty scenario grid");

  CampaignResult result;
  result.spec = spec;
  result.scenarios.resize(cells.size());
  std::vector<bool> done(cells.size(), false);

  if (options.resume && !options.checkpoint_path.empty()) {
    std::ifstream in(options.checkpoint_path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      const Checkpoint ckpt = parse_checkpoint(buf.str());
      if (ckpt.fingerprint != spec_fingerprint(spec)) {
        throw std::runtime_error(
            "campaign: checkpoint was produced by a different spec (fingerprint mismatch)");
      }
      for (const ScenarioResult& r : ckpt.completed) {
        if (r.scenario_index >= cells.size()) {
          throw std::runtime_error("campaign: checkpoint scenario index out of range");
        }
        result.scenarios[r.scenario_index] = r;
        done[r.scenario_index] = true;
        ++result.resumed_scenarios;
      }
    }
  }

  auto completed_so_far = [&] {
    std::vector<ScenarioResult> completed;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (done[i]) completed.push_back(result.scenarios[i]);
    }
    return completed;
  };

  auto last_checkpoint = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (done[i]) continue;
    result.scenarios[i] = run_scenario(spec, cells[i], options.threads);
    done[i] = true;
    if (options.progress != nullptr) {
      const ScenarioResult& r = result.scenarios[i];
      (*options.progress) << "[" << (i + 1) << "/" << cells.size() << "] " << r.label
                          << ": success " << r.reconfig_success << "/" << r.trials << "\n";
    }
    if (!options.checkpoint_path.empty()) {
      const auto now = std::chrono::steady_clock::now();
      const double elapsed = std::chrono::duration<double>(now - last_checkpoint).count();
      if (elapsed >= options.checkpoint_every_seconds || i + 1 == cells.size()) {
        write_file_atomically(options.checkpoint_path,
                              checkpoint_to_json(spec, completed_so_far()));
        last_checkpoint = now;
      }
    }
  }
  return result;
}

}  // namespace ftdb::campaign
