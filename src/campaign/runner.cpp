#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/bench_json.hpp"
#include "campaign/fault_models.hpp"
#include "campaign/rng.hpp"
#include "ft/bus_ft.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "ft/spares.hpp"
#include "ft/tolerance.hpp"
#include "graph/algorithms.hpp"
#include "graph/bus_graph.hpp"
#include "graph/subgraph.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/reconfigured_routing.hpp"
#include "sim/schedule.hpp"
#include "sim/traffic.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::campaign {

using analysis::JsonValue;
using analysis::JsonWriter;

// --- streaming statistics ---------------------------------------------------

void StreamingStats::add(double x) {
  ++count;
  const double delta = x - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (x - mean);
  min = std::min(min, x);
  max = std::max(max, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  // Chan's pairwise update; merge order is fixed by the runner.
  const double total = static_cast<double>(count) + static_cast<double>(other.count);
  const double delta = other.mean - mean;
  mean += delta * (static_cast<double>(other.count) / total);
  m2 += other.m2 +
        delta * delta * (static_cast<double>(count) * static_cast<double>(other.count) / total);
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

double StreamingStats::variance() const {
  return count < 2 ? 0.0 : m2 / static_cast<double>(count - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double half = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, (center - half) / denom), std::min(1.0, (center + half) / denom)};
}

double ScenarioResult::success_rate() const {
  return trials == 0 ? 0.0
                     : static_cast<double>(reconfig_success) / static_cast<double>(trials);
}

WilsonInterval ScenarioResult::success_ci(double z) const {
  return wilson_interval(reconfig_success, trials, z);
}

void ScenarioResult::merge(const ScenarioResult& other) {
  trials += other.trials;
  reconfig_success += other.reconfig_success;
  over_budget += other.over_budget;
  fault_count.merge(other.fault_count);
  reconfigured_diameter.merge(other.reconfigured_diameter);
  degraded_diameter.merge(other.degraded_diameter);
  degraded_disconnected += other.degraded_disconnected;
  route_stretch.merge(other.route_stretch);
  mttf.merge(other.mttf);
  mttf_censored += other.mttf_censored;
  collective_slowdown.merge(other.collective_slowdown);
  collective_hop_cycles.merge(other.collective_hop_cycles);
  collective_congestion.merge(other.collective_congestion);
  collective_unreachable += other.collective_unreachable;
  bus_fault_count.merge(other.bus_fault_count);
  traffic_delivered.merge(other.traffic_delivered);
  traffic_latency.merge(other.traffic_latency);
  traffic_congestion.merge(other.traffic_congestion);
  traffic_timed_out += other.traffic_timed_out;
  // Merge the sorted sparse slowdown curves (the runner merges blocks in
  // order, so the slowdown_sum additions happen in a fixed order and the
  // doubles come out bit-identical for any thread count or shard split).
  std::vector<SlowdownPoint> merged_slowdown;
  merged_slowdown.reserve(slowdown_curve.size() + other.slowdown_curve.size());
  {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < slowdown_curve.size() || j < other.slowdown_curve.size()) {
      if (j == other.slowdown_curve.size() ||
          (i < slowdown_curve.size() &&
           slowdown_curve[i].faults < other.slowdown_curve[j].faults)) {
        merged_slowdown.push_back(slowdown_curve[i++]);
      } else if (i == slowdown_curve.size() ||
                 other.slowdown_curve[j].faults < slowdown_curve[i].faults) {
        merged_slowdown.push_back(other.slowdown_curve[j++]);
      } else {
        SlowdownPoint p = slowdown_curve[i++];
        p.trials += other.slowdown_curve[j].trials;
        p.unreachable += other.slowdown_curve[j].unreachable;
        p.slowdown_sum += other.slowdown_curve[j].slowdown_sum;
        ++j;
        merged_slowdown.push_back(p);
      }
    }
  }
  slowdown_curve = std::move(merged_slowdown);
  // Merge the sorted sparse survival curves.
  std::vector<SurvivalPoint> merged;
  merged.reserve(survival_curve.size() + other.survival_curve.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < survival_curve.size() || j < other.survival_curve.size()) {
    if (j == other.survival_curve.size() ||
        (i < survival_curve.size() && survival_curve[i].faults < other.survival_curve[j].faults)) {
      merged.push_back(survival_curve[i++]);
    } else if (i == survival_curve.size() ||
               other.survival_curve[j].faults < survival_curve[i].faults) {
      merged.push_back(other.survival_curve[j++]);
    } else {
      SurvivalPoint p = survival_curve[i++];
      p.trials += other.survival_curve[j].trials;
      p.survived += other.survival_curve[j].survived;
      ++j;
      merged.push_back(p);
    }
  }
  survival_curve = std::move(merged);
}

// --- scenario execution ------------------------------------------------------

namespace {

/// Immutable per-scenario state shared (read-only) by all worker threads.
struct ScenarioContext {
  ScenarioCase cell;
  Graph target;
  Graph fabric;                     // point-to-point FT graph / realized bus graph
  std::optional<BusGraph> bus;      // set for the bus family
  std::unique_ptr<FaultModel> model;
  std::uint32_t target_diameter = 0;
  std::uint64_t seed = 0;
  MetricSet metrics;

  // collective metric: the full-N schedule, its identity rank map, the
  // healthy-machine baseline it is compared against, and the healthy machine
  // itself (reused per failed trial to price the survivors' own baseline) —
  // point-to-point families only.
  std::optional<sim::Schedule> schedule;
  std::vector<NodeId> identity_ranks;
  std::uint64_t collective_baseline_cycles = 0;
  std::optional<sim::Machine> healthy_machine;

  // bus-fault models: the cell draws bus faults that must be resolved onto
  // the realized graph (bus-family cells) before the survival check.
  bool bus_model = false;

  // traffic metric (point-to-point families only): the trace is parsed once
  // per cell, the per-trial packet count is fixed by the spec, and the cycle
  // cap is a deterministic function of the workload (so a saturated hotspot
  // counts as timed_out instead of stalling the trial loop).
  bool traffic = false;
  std::vector<sim::Packet> trace_packets;
  std::uint64_t traffic_packets = 0;
  std::uint64_t traffic_max_cycles = 0;
};

ScenarioContext build_context(const ScenarioSpec& spec, const ScenarioCase& cell) {
  ScenarioContext ctx;
  ctx.cell = cell;
  ctx.seed = spec.seed;
  ctx.metrics = spec.metrics;
  const unsigned h = cell.topology.digits;
  const unsigned k = cell.spares;
  switch (cell.topology.family) {
    case TopologyFamily::DeBruijn:
      ctx.target = debruijn_graph({.base = cell.topology.base, .digits = h});
      ctx.fabric = ft_debruijn_graph({.base = cell.topology.base, .digits = h, .spares = k});
      break;
    case TopologyFamily::ShuffleExchange: {
      // Route 2 (natural labeling): self-contained, no VF2 search needed.
      ctx.target = shuffle_exchange_graph(h);
      ctx.fabric = ft_shuffle_exchange_natural(h, k).ft_graph;
      break;
    }
    case TopologyFamily::Bus: {
      ctx.bus = bus_ft_debruijn_base2(h, k);
      ctx.target = debruijn_base2(h);
      // Fault models and graph metrics act on the point-to-point connectivity
      // the restricted driver<->member discipline realizes.
      ctx.fabric = ctx.bus->realized_graph();
      break;
    }
  }
  ctx.model = make_fault_model(cell.fault_model);
  ctx.model->prepare(ctx.fabric, k);
  // Bus-family cells additionally expose the bus structure: clustered bus
  // correlation follows shared-membership, not just realized adjacency.
  if (ctx.bus) ctx.model->prepare_bus(*ctx.bus, k);
  ctx.bus_model = cell.fault_model.kind == FaultModelKind::BusIid ||
                  cell.fault_model.kind == FaultModelKind::BusClustered;
  ctx.target_diameter = diameter(ctx.target);
  if (spec.metrics.collective && cell.topology.family != TopologyFamily::Bus) {
    // Compile the schedule once per cell and price the healthy machine — the
    // denominator of every trial's slowdown. A reconfigured dilation-1
    // machine re-runs the *same* schedule object.
    ctx.schedule = sim::build_schedule(
        sim::schedule_kind_from_name(spec.metrics.collective_schedule),
        static_cast<std::uint32_t>(ctx.target.num_nodes()));
    ctx.identity_ranks.resize(ctx.target.num_nodes());
    for (NodeId v = 0; v < ctx.target.num_nodes(); ++v) ctx.identity_ranks[v] = v;
    ctx.healthy_machine.emplace(sim::Machine::direct(ctx.target));
    const sim::ScheduleRunResult healthy = sim::execute_schedule(
        *ctx.healthy_machine, ctx.target, *ctx.schedule, ctx.identity_ranks);
    ctx.collective_baseline_cycles = healthy.total_cycles;
  }
  if (spec.metrics.traffic && cell.topology.family != TopologyFamily::Bus) {
    ctx.traffic = true;
    const TrafficSpec& ts = spec.metrics.traffic_spec;
    std::uint64_t horizon = 0;
    if (ts.pattern == "trace") {
      // Parsed once per cell; endpoints are range-checked against this cell's
      // target (the spec parser only checked the grid's largest family).
      ctx.trace_packets = sim::trace_traffic(ts.trace, ctx.target.num_nodes());
      ctx.traffic_packets = ctx.trace_packets.size();
      for (const sim::Packet& p : ctx.trace_packets) {
        horizon = std::max(horizon, p.inject_cycle);
      }
    } else {
      ctx.traffic_packets = ts.packets_per_node * ctx.target.num_nodes();
    }
    // Generous but bounded: even a single-sink hotspot drains at >= 1
    // packet/cycle once the queues form, so 4x the packet count past the
    // injection horizon only triggers on genuinely wedged (disconnected)
    // flows, which run_packets already classifies as undeliverable.
    ctx.traffic_max_cycles = horizon + 4 * ctx.traffic_packets + 1024;
  }
  return ctx;
}

/// Dense per-block accumulators, folded into the sparse curves once the
/// block completes (fold_histogram). Keeping them dense makes the per-trial
/// hot path an array index, and folding in block order keeps the report
/// deterministic.
struct BlockScratch {
  std::vector<std::uint64_t> hist;            // trials by drawn fault count
  std::vector<std::uint64_t> survived;        // successes by drawn fault count
  std::vector<std::uint64_t> coll_trials;     // collective runs by fault count
  std::vector<std::uint64_t> coll_unreachable;
  std::vector<double> coll_slowdown_sum;
};

/// Runs one trial and folds it straight into `acc`.
void run_trial(const ScenarioContext& ctx, std::uint64_t trial_idx, ScenarioResult& acc,
               BlockScratch& scratch) {
  std::vector<std::uint64_t>& dense_hist = scratch.hist;
  std::vector<std::uint64_t>& dense_survived = scratch.survived;
  TrialRng rng = TrialRng::for_trial(ctx.seed, ctx.cell.index, trial_idx);
  const FaultDraw draw = ctx.model->draw(ctx.fabric, ctx.cell.spares, rng);
  const std::uint64_t faults = draw.faults.count();

  const bool within_budget = faults <= ctx.cell.spares;
  bool success = false;
  if (within_budget) {
    if (ctx.bus && !draw.bus_faults.empty()) {
      // Section V discipline: bus faults resolve to driver-node faults on the
      // realized graph, and the merged set must still fit the spare budget.
      const std::optional<FaultSet> resolved = resolve_bus_faults(
          *ctx.bus, ctx.cell.spares, draw.faults.nodes(), draw.bus_faults);
      success = resolved.has_value() &&
                bus_monotone_embedding_survives(ctx.target, *ctx.bus, *resolved);
    } else if (ctx.bus) {
      success = bus_monotone_embedding_survives(ctx.target, *ctx.bus, draw.faults);
    } else {
      success = monotone_embedding_survives(ctx.target, ctx.fabric, draw.faults);
    }
  }

  ++acc.trials;
  acc.fault_count.add(static_cast<double>(faults));
  if (ctx.bus_model) acc.bus_fault_count.add(static_cast<double>(draw.bus_faults.size()));
  if (!within_budget) ++acc.over_budget;
  if (success) ++acc.reconfig_success;

  if (dense_hist.size() <= faults) {
    dense_hist.resize(faults + 1, 0);
    dense_survived.resize(faults + 1, 0);
  }
  ++dense_hist[faults];
  if (success) ++dense_survived[faults];

  // Stretch runs on both point-to-point families: de Bruijn via the shift
  // algebra, shuffle-exchange via the exact SE distance (the bus machine has
  // no logical routing engine to audit).
  const bool se_family = ctx.cell.topology.family == TopologyFamily::ShuffleExchange;
  const bool want_stretch =
      ctx.metrics.stretch && success &&
      (ctx.cell.topology.family == TopologyFamily::DeBruijn || se_family);
  const bool want_collective = ctx.schedule.has_value();
  std::optional<sim::Machine> reconfigured;
  if (success && ((ctx.metrics.diameter) || want_stretch || want_collective || ctx.traffic)) {
    // One reconfigured machine serves all post-fault metrics (Machine copies
    // the fabric CSR, so building it repeatedly per trial would multiply the
    // cost of the hot loop).
    reconfigured.emplace(
        sim::Machine::reconfigured(ctx.fabric, draw.faults, ctx.target.num_nodes()));
  }
  if (success && (ctx.metrics.diameter || want_stretch)) {
    const sim::Machine& machine = *reconfigured;
    if (ctx.metrics.diameter) {
      // Measure (not assume) the paper's claim: the reconfigured machine
      // presents the intact target, so its logical diameter must equal the
      // target's.
      const std::uint32_t d = diameter(machine.live_logical_graph(ctx.target));
      if (d != kUnreachable) acc.reconfigured_diameter.add(static_cast<double>(d));
    }
    if (want_stretch) {
      if (ctx.metrics.stretch_sample_pairs == 0) {
        acc.route_stretch.add(
            se_family
                ? sim::max_route_stretch_se(machine, ctx.cell.topology.digits)
                : sim::max_route_stretch(machine, ctx.cell.topology.base,
                                         ctx.cell.topology.digits));
      } else {
        // Counter-based pair sample: drawn from the trial's own RNG stream
        // (after the fault draw), so the report stays byte-identical across
        // thread counts and checkpoint/resume. Self-pairs are dropped rather
        // than redrawn to keep the stream consumption fixed.
        const std::uint64_t n_nodes = ctx.target.num_nodes();
        std::vector<std::pair<NodeId, NodeId>> pairs;
        pairs.reserve(ctx.metrics.stretch_sample_pairs);
        for (std::uint64_t i = 0; i < ctx.metrics.stretch_sample_pairs; ++i) {
          const NodeId s = static_cast<NodeId>(rng.next_u64() % n_nodes);
          const NodeId d = static_cast<NodeId>(rng.next_u64() % n_nodes);
          if (s != d) pairs.emplace_back(s, d);
        }
        acc.route_stretch.add(
            se_family
                ? sim::max_route_stretch_se_sampled(machine, ctx.cell.topology.digits, pairs)
                : sim::max_route_stretch_sampled(machine, ctx.cell.topology.base,
                                                 ctx.cell.topology.digits, pairs));
      }
    }
  } else if (!success && ctx.metrics.diameter) {
    // Degraded machine: whatever the survivors still form.
    const InducedSubgraph survivors =
        induced_subgraph_excluding(ctx.fabric, draw.faults.nodes());
    const std::uint32_t d =
        survivors.graph.num_nodes() == 0 ? kUnreachable : diameter(survivors.graph);
    if (d == kUnreachable) {
      ++acc.degraded_disconnected;
    } else {
      acc.degraded_diameter.add(static_cast<double>(d));
    }
  }

  if (want_collective) {
    // Run the collective through the packet engine: the reconfigured machine
    // re-runs the full-N schedule against the cell's healthy baseline (the
    // operational dilation-1 claim — the slowdown is exactly 1.0); a degraded
    // bare target runs a schedule compiled over its survivors, priced against
    // the *same survivors' schedule on the healthy target* so the slowdown
    // isolates the rerouting cost instead of crediting the smaller job.
    sim::ScheduleRunResult run;
    std::uint64_t baseline_cycles = ctx.collective_baseline_cycles;
    bool ran = false;
    if (success) {
      run = sim::execute_schedule(*reconfigured, ctx.target, *ctx.schedule, ctx.identity_ranks);
      ran = true;
    } else {
      std::vector<NodeId> survivors;
      for (NodeId v = 0; v < ctx.target.num_nodes(); ++v) {
        if (!draw.faults.is_faulty(v)) survivors.push_back(v);
      }
      if (!survivors.empty()) {
        std::vector<NodeId> hit;
        for (const NodeId f : draw.faults.nodes()) {
          if (f < ctx.target.num_nodes()) hit.push_back(f);
        }
        const sim::Machine degraded = sim::Machine::direct_with_faults(
            ctx.target, FaultSet(ctx.target.num_nodes(), std::move(hit)));
        const sim::Schedule sched = sim::build_schedule(
            ctx.schedule->kind, static_cast<std::uint32_t>(survivors.size()));
        run = sim::execute_schedule(degraded, ctx.target, sched, survivors);
        baseline_cycles =
            sim::execute_schedule(*ctx.healthy_machine, ctx.target, sched, survivors)
                .total_cycles;
        ran = true;
      }
      // else: every target node dead — counted unreachable below.
    }
    if (scratch.coll_trials.size() <= faults) {
      scratch.coll_trials.resize(faults + 1, 0);
      scratch.coll_unreachable.resize(faults + 1, 0);
      scratch.coll_slowdown_sum.resize(faults + 1, 0.0);
    }
    ++scratch.coll_trials[faults];
    if (ran && run.completed()) {
      const double slowdown =
          baseline_cycles == 0
              ? 1.0
              : static_cast<double>(run.total_cycles) / static_cast<double>(baseline_cycles);
      acc.collective_slowdown.add(slowdown);
      acc.collective_hop_cycles.add(static_cast<double>(run.total_hop_cycles));
      acc.collective_congestion.add(static_cast<double>(run.max_link_congestion));
      scratch.coll_slowdown_sum[faults] += slowdown;
    } else {
      ++acc.collective_unreachable;
      ++scratch.coll_unreachable[faults];
    }
  }

  if (ctx.traffic) {
    // The workload seed is drawn unconditionally (traces ignore it), so the
    // per-trial stream layout does not depend on the pattern and stays a
    // fixed function of the spec — the byte-identity invariant.
    const std::uint64_t traffic_seed = rng.next_u64();
    const TrafficSpec& ts = ctx.metrics.traffic_spec;
    const std::uint64_t n_nodes = ctx.target.num_nodes();
    std::vector<sim::Packet> packets;
    if (ts.pattern == "trace") {
      packets = ctx.trace_packets;
    } else if (ts.pattern == "zipf") {
      packets = sim::zipf_traffic(n_nodes, ctx.traffic_packets, ts.theta, traffic_seed);
    } else if (ts.pattern == "hotspot_burst") {
      // Hot nodes are re-drawn each trial (with replacement) from the trial's
      // own stream — exactly `hotspots` draws, keeping consumption constant.
      std::vector<NodeId> hot;
      hot.reserve(ts.hotspots);
      for (std::uint64_t i = 0; i < ts.hotspots; ++i) {
        hot.push_back(static_cast<NodeId>(rng.next_u64() % n_nodes));
      }
      packets = sim::hotspot_burst_traffic(n_nodes, ctx.traffic_packets, hot, ts.fraction_hot,
                                           ts.burst_cycles, traffic_seed);
    } else {
      packets = sim::uniform_traffic(n_nodes, ctx.traffic_packets, 0, traffic_seed);
    }
    std::optional<sim::SimStats> stats;
    if (success) {
      stats = sim::run_packets(*reconfigured, ctx.target, packets,
                               {.max_cycles = ctx.traffic_max_cycles});
    } else {
      std::vector<NodeId> hit;
      for (const NodeId f : draw.faults.nodes()) {
        if (f < n_nodes) hit.push_back(f);
      }
      if (hit.size() < n_nodes) {
        const sim::Machine degraded = sim::Machine::direct_with_faults(
            ctx.target, FaultSet(n_nodes, std::move(hit)));
        stats = sim::run_packets(degraded, ctx.target, packets,
                                 {.max_cycles = ctx.traffic_max_cycles});
      }
      // else: every target node dead — nothing can inject; scored below.
    }
    if (stats) {
      acc.traffic_delivered.add(stats->delivered_fraction());
      if (stats->delivered > 0) acc.traffic_latency.add(stats->average_latency());
      acc.traffic_congestion.add(static_cast<double>(stats->max_queue_depth));
      acc.traffic_timed_out += stats->timed_out;
    } else {
      acc.traffic_delivered.add(0.0);
    }
  }

  if (ctx.metrics.mttf) {
    if (std::isfinite(draw.spare_exhaustion_time)) {
      acc.mttf.add(draw.spare_exhaustion_time);
    } else {
      ++acc.mttf_censored;
    }
  }
}

/// Sparse survival and slowdown curves from the dense per-block counters.
void fold_histogram(ScenarioResult& acc, const BlockScratch& scratch) {
  for (std::size_t f = 0; f < scratch.hist.size(); ++f) {
    if (scratch.hist[f] == 0) continue;
    acc.survival_curve.push_back({f, scratch.hist[f], scratch.survived[f]});
  }
  for (std::size_t f = 0; f < scratch.coll_trials.size(); ++f) {
    if (scratch.coll_trials[f] == 0) continue;
    acc.slowdown_curve.push_back(
        {f, scratch.coll_trials[f], scratch.coll_unreachable[f], scratch.coll_slowdown_sum[f]});
  }
}

/// Runs one complete trial block of a cell and returns its partial
/// accumulator — the unit both the work-stealing scheduler and the elastic
/// CellRunner execute. Reads the context only, so any number of threads can
/// run different blocks of the same cell concurrently.
ScenarioResult run_one_block(const ScenarioContext& ctx, std::uint64_t total_trials,
                             std::uint64_t block) {
  ScenarioResult partial;
  partial.scenario_index = ctx.cell.index;
  BlockScratch scratch;
  const std::uint64_t lo = block * kTrialBlock;
  const std::uint64_t hi = std::min(total_trials, lo + kTrialBlock);
  for (std::uint64_t t = lo; t < hi; ++t) {
    run_trial(ctx, t, partial, scratch);
  }
  fold_histogram(partial, scratch);
  return partial;
}

/// Exact E[time of the (k+1)-st failure] when all n fabric nodes fail
/// independently with probability p per step: summing the survival function,
/// E = sum_{t >= 0} P[at most k of n failed by step t], with per-node
/// failure probability 1 - (1-p)^t by step t. This is the true expectation
/// of the empirical draw (simultaneous failures allowed) — deliberately not
/// sim::analytic_mttf, which models failures one at a time and overshoots
/// once n*p stops being small.
///
/// The sum needs on the order of the MTTF itself in iterations, so a cap
/// bounds the work; past it we return NaN (report renders "-") rather than a
/// silently truncated number next to the empirical column it validates.
double exact_iid_mttf(std::uint64_t n, unsigned spares, double p) {
  long double expectation = 0.0L;
  long double log_alive = 0.0L;  // log of per-node survival prob (1-p)^t
  const long double log_1mp = std::log1p(static_cast<long double>(-p));
  for (std::uint64_t t = 0; t < 2000000; ++t) {
    const long double q_fail = -std::expm1(log_alive);
    const long double alive = binomial_cdf(n, spares, q_fail);
    expectation += alive;
    if (alive < 1e-13L && t > 0) return static_cast<double>(expectation);
    log_alive += log_1mp;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

/// Fills the cell-level metadata and analytic companions on a fully-merged
/// accumulator — shared by the scheduler's cell finalization and the elastic
/// runner/merge paths (which must produce byte-identical reports).
void finalize_result(const ScenarioContext& ctx, const ScenarioCase& cell, ScenarioResult& r) {
  r.scenario_index = cell.index;
  r.label = cell.label();
  r.target_nodes = ctx.target.num_nodes();
  r.fabric_nodes = ctx.fabric.num_nodes();
  r.target_diameter = ctx.target_diameter;
  if (ctx.schedule) {
    r.collective_rounds = ctx.schedule->rounds();
    r.collective_baseline_cycles = ctx.collective_baseline_cycles;
  }
  const FaultModelSpec& model = cell.fault_model;
  if (model.kind == FaultModelKind::IidBernoulli) {
    r.analytic_survival = static_cast<double>(survival_probability(
        r.target_nodes, cell.spares, static_cast<long double>(model.p)));
    r.analytic_mttf = exact_iid_mttf(r.fabric_nodes, cell.spares, model.p);
  } else if (model.kind == FaultModelKind::BusIid) {
    // One bus per fabric node, each driver's clock an iid geometric(p) — the
    // node-model closed forms apply verbatim (Section V: a bus fault is its
    // driver's fault).
    r.analytic_survival = static_cast<double>(survival_probability(
        r.target_nodes, cell.spares, static_cast<long double>(model.p)));
    r.analytic_mttf = exact_iid_mttf(r.fabric_nodes, cell.spares, model.p);
  } else if (model.kind == FaultModelKind::Weibull) {
    // The model draws full lifetimes, so the empirical MTTF column is exactly
    // the (k+1)-st order statistic this closed form computes.
    r.analytic_mttf = weibull_mttf(r.fabric_nodes, cell.spares, model.shape, model.scale);
  }
}

void write_file_atomically(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("campaign: cannot write " + tmp);
    out << content;
    if (!out.flush()) throw std::runtime_error("campaign: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("campaign: cannot rename " + tmp + " to " + path);
  }
}

// --- result (de)serialization ------------------------------------------------

void write_stats(JsonWriter& w, const StreamingStats& s) {
  w.begin_object();
  w.key("count");
  w.value(s.count);
  w.key("mean");
  w.value(s.mean);
  w.key("m2");
  w.value(s.m2);
  if (s.count > 0) {
    w.key("min");
    w.value(s.min);
    w.key("max");
    w.value(s.max);
  }
  w.end_object();
}

double number_or_nan(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->is_null()) return std::numeric_limits<double>::quiet_NaN();
  return v->number;
}

std::uint64_t uint_of(const JsonValue& obj, const std::string& key) {
  return static_cast<std::uint64_t>(obj.at(key).number);
}

StreamingStats parse_stats(const JsonValue& obj) {
  StreamingStats s;
  s.count = uint_of(obj, "count");
  s.mean = obj.at("mean").number;
  s.m2 = obj.at("m2").number;
  if (s.count > 0) {
    s.min = obj.at("min").number;
    s.max = obj.at("max").number;
  }
  return s;
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

// Exposed through runner.hpp for report.cpp's use as well.
void write_scenario_result(JsonWriter& w, const ScenarioResult& r) {
  w.begin_object();
  w.key("scenario_index");
  w.value(static_cast<std::uint64_t>(r.scenario_index));
  w.key("label");
  w.value(r.label);
  w.key("target_nodes");
  w.value(r.target_nodes);
  w.key("fabric_nodes");
  w.value(r.fabric_nodes);
  w.key("target_diameter");
  w.value(static_cast<std::uint64_t>(r.target_diameter));
  w.key("trials");
  w.value(r.trials);
  w.key("reconfig_success");
  w.value(r.reconfig_success);
  w.key("over_budget");
  w.value(r.over_budget);
  w.key("fault_count");
  write_stats(w, r.fault_count);
  w.key("reconfigured_diameter");
  write_stats(w, r.reconfigured_diameter);
  w.key("degraded_diameter");
  write_stats(w, r.degraded_diameter);
  w.key("degraded_disconnected");
  w.value(r.degraded_disconnected);
  w.key("route_stretch");
  write_stats(w, r.route_stretch);
  w.key("mttf");
  write_stats(w, r.mttf);
  w.key("mttf_censored");
  w.value(r.mttf_censored);
  w.key("collective_rounds");
  w.value(r.collective_rounds);
  w.key("collective_baseline_cycles");
  w.value(r.collective_baseline_cycles);
  w.key("collective_slowdown");
  write_stats(w, r.collective_slowdown);
  w.key("collective_hop_cycles");
  write_stats(w, r.collective_hop_cycles);
  w.key("collective_congestion");
  write_stats(w, r.collective_congestion);
  w.key("collective_unreachable");
  w.value(r.collective_unreachable);
  w.key("bus_fault_count");
  write_stats(w, r.bus_fault_count);
  w.key("traffic_delivered");
  write_stats(w, r.traffic_delivered);
  w.key("traffic_latency");
  write_stats(w, r.traffic_latency);
  w.key("traffic_congestion");
  write_stats(w, r.traffic_congestion);
  w.key("traffic_timed_out");
  w.value(r.traffic_timed_out);
  w.key("survival_curve");
  w.begin_array();
  for (const SurvivalPoint& p : r.survival_curve) {
    w.begin_object();
    w.key("faults");
    w.value(p.faults);
    w.key("trials");
    w.value(p.trials);
    w.key("survived");
    w.value(p.survived);
    w.end_object();
  }
  w.end_array();
  w.key("slowdown_curve");
  w.begin_array();
  for (const SlowdownPoint& p : r.slowdown_curve) {
    w.begin_object();
    w.key("faults");
    w.value(p.faults);
    w.key("trials");
    w.value(p.trials);
    w.key("unreachable");
    w.value(p.unreachable);
    w.key("slowdown_sum");
    w.value(p.slowdown_sum);
    w.end_object();
  }
  w.end_array();
  w.key("analytic_survival");
  w.value(r.analytic_survival);  // NaN -> null
  w.key("analytic_mttf");
  w.value(r.analytic_mttf);
  // Derived convenience fields (ignored by parse_scenario_result).
  const WilsonInterval ci = r.success_ci();
  w.key("success_rate");
  w.value(r.success_rate());
  w.key("success_ci95_lo");
  w.value(ci.lo);
  w.key("success_ci95_hi");
  w.value(ci.hi);
  w.end_object();
}

ScenarioResult parse_scenario_result(const JsonValue& obj) {
  ScenarioResult r;
  r.scenario_index = uint_of(obj, "scenario_index");
  r.label = obj.at("label").string;
  r.target_nodes = uint_of(obj, "target_nodes");
  r.fabric_nodes = uint_of(obj, "fabric_nodes");
  r.target_diameter = static_cast<std::uint32_t>(uint_of(obj, "target_diameter"));
  r.trials = uint_of(obj, "trials");
  r.reconfig_success = uint_of(obj, "reconfig_success");
  r.over_budget = uint_of(obj, "over_budget");
  r.fault_count = parse_stats(obj.at("fault_count"));
  r.reconfigured_diameter = parse_stats(obj.at("reconfigured_diameter"));
  r.degraded_diameter = parse_stats(obj.at("degraded_diameter"));
  r.degraded_disconnected = uint_of(obj, "degraded_disconnected");
  r.route_stretch = parse_stats(obj.at("route_stretch"));
  r.mttf = parse_stats(obj.at("mttf"));
  r.mttf_censored = uint_of(obj, "mttf_censored");
  // Collective fields parse leniently: pre-collective documents (earlier
  // checkpoints/reports) simply leave the defaults in place.
  if (const JsonValue* v = obj.find("collective_rounds")) {
    r.collective_rounds = static_cast<std::uint64_t>(v->number);
  }
  if (const JsonValue* v = obj.find("collective_baseline_cycles")) {
    r.collective_baseline_cycles = static_cast<std::uint64_t>(v->number);
  }
  if (const JsonValue* v = obj.find("collective_slowdown")) {
    r.collective_slowdown = parse_stats(*v);
  }
  if (const JsonValue* v = obj.find("collective_hop_cycles")) {
    r.collective_hop_cycles = parse_stats(*v);
  }
  if (const JsonValue* v = obj.find("collective_congestion")) {
    r.collective_congestion = parse_stats(*v);
  }
  if (const JsonValue* v = obj.find("collective_unreachable")) {
    r.collective_unreachable = static_cast<std::uint64_t>(v->number);
  }
  // Likewise lenient: pre-PR-10 documents carry neither bus nor traffic stats.
  if (const JsonValue* v = obj.find("bus_fault_count")) r.bus_fault_count = parse_stats(*v);
  if (const JsonValue* v = obj.find("traffic_delivered")) r.traffic_delivered = parse_stats(*v);
  if (const JsonValue* v = obj.find("traffic_latency")) r.traffic_latency = parse_stats(*v);
  if (const JsonValue* v = obj.find("traffic_congestion")) {
    r.traffic_congestion = parse_stats(*v);
  }
  if (const JsonValue* v = obj.find("traffic_timed_out")) {
    r.traffic_timed_out = static_cast<std::uint64_t>(v->number);
  }
  for (const JsonValue& p : obj.at("survival_curve").array) {
    r.survival_curve.push_back({uint_of(p, "faults"), uint_of(p, "trials"),
                                uint_of(p, "survived")});
  }
  if (const JsonValue* curve = obj.find("slowdown_curve")) {
    for (const JsonValue& p : curve->array) {
      r.slowdown_curve.push_back({uint_of(p, "faults"), uint_of(p, "trials"),
                                  uint_of(p, "unreachable"), p.at("slowdown_sum").number});
    }
  }
  r.analytic_survival = number_or_nan(obj, "analytic_survival");
  r.analytic_mttf = number_or_nan(obj, "analytic_mttf");
  return r;
}

// --- checkpoint (de)serialization -------------------------------------------

std::string checkpoint_to_json(const ScenarioSpec& spec, const Checkpoint& ckpt) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ftdb-campaign-checkpoint-v2");
  // Hex strings, not JSON numbers: 64-bit fingerprints do not survive the
  // parser's double representation.
  w.key("fingerprint");
  w.value(fingerprint_hex(spec_fingerprint(spec)));
  w.key("shard");
  w.begin_object();
  w.key("index");
  w.value(static_cast<std::uint64_t>(ckpt.shard.index));
  w.key("count");
  w.value(static_cast<std::uint64_t>(ckpt.shard.count));
  w.key("fingerprint");
  w.value(fingerprint_hex(shard_fingerprint(spec, ckpt.shard)));
  w.end_object();
  // The block size the partials were cut with: partials from a different
  // partition cannot be merged in order, so parse rejects a mismatch.
  w.key("trial_block");
  w.value(kTrialBlock);
  w.key("cells");
  w.begin_array();
  for (const CellProgress& c : ckpt.cells) {
    w.begin_object();
    w.key("scenario_index");
    w.value(static_cast<std::uint64_t>(c.scenario_index));
    w.key("prefix_blocks");
    w.value(c.prefix_blocks);
    if (c.prefix_blocks > 0) {
      w.key("prefix");
      write_scenario_result(w, c.prefix);
    }
    if (!c.extra.empty()) {
      w.key("extra");
      w.begin_array();
      for (const auto& [block, partial] : c.extra) {
        w.begin_object();
        w.key("block");
        w.value(block);
        w.key("partial");
        write_scenario_result(w, partial);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string checkpoint_to_json(const ScenarioSpec& spec,
                               const std::vector<ScenarioResult>& completed) {
  // fingerprint/shard_stamp stay default: the serializer derives both stamps
  // from the spec itself, never from the struct (no forgeable fields).
  Checkpoint ckpt;
  for (const ScenarioResult& r : completed) {
    CellProgress cell;
    cell.scenario_index = r.scenario_index;
    cell.prefix_blocks = num_trial_blocks(spec.trials);
    cell.prefix = r;
    ckpt.cells.push_back(std::move(cell));
  }
  std::sort(ckpt.cells.begin(), ckpt.cells.end(),
            [](const CellProgress& a, const CellProgress& b) {
              return a.scenario_index < b.scenario_index;
            });
  return checkpoint_to_json(spec, ckpt);
}

Checkpoint parse_checkpoint(const std::string& json_text) {
  const JsonValue doc = analysis::json_parse(json_text);
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "ftdb-campaign-checkpoint-v2") {
    throw std::runtime_error(
        "campaign: not an ftdb-campaign-checkpoint-v2 document (v1 checkpoints are "
        "scenario-granular; rerun the campaign to produce a v2 checkpoint)");
  }
  if (uint_of(doc, "trial_block") != kTrialBlock) {
    throw std::runtime_error("campaign: checkpoint was cut with a different trial block size");
  }
  Checkpoint ckpt;
  ckpt.fingerprint = std::strtoull(doc.at("fingerprint").string.c_str(), nullptr, 16);
  const JsonValue& shard = doc.at("shard");
  ckpt.shard.index = static_cast<std::uint32_t>(uint_of(shard, "index"));
  ckpt.shard.count = static_cast<std::uint32_t>(uint_of(shard, "count"));
  ckpt.shard_stamp = std::strtoull(shard.at("fingerprint").string.c_str(), nullptr, 16);
  std::size_t last_index = 0;
  bool first = true;
  for (const JsonValue& c : doc.at("cells").array) {
    CellProgress cell;
    cell.scenario_index = uint_of(c, "scenario_index");
    if (!first && cell.scenario_index <= last_index) {
      throw std::runtime_error("campaign: checkpoint cells out of order or duplicated");
    }
    first = false;
    last_index = cell.scenario_index;
    cell.prefix_blocks = uint_of(c, "prefix_blocks");
    if (cell.prefix_blocks > 0) cell.prefix = parse_scenario_result(c.at("prefix"));
    if (const JsonValue* extra = c.find("extra")) {
      std::uint64_t last_block = 0;
      for (const JsonValue& e : extra->array) {
        const std::uint64_t block = uint_of(e, "block");
        if (block < cell.prefix_blocks ||
            (!cell.extra.empty() && block <= last_block)) {
          throw std::runtime_error("campaign: checkpoint extra blocks out of order");
        }
        last_block = block;
        cell.extra.emplace_back(block, parse_scenario_result(e.at("partial")));
      }
    }
    ckpt.cells.push_back(std::move(cell));
  }
  return ckpt;
}

// --- the work-stealing campaign scheduler ------------------------------------

namespace {

/// One schedulable unit: block `block` of the `slot`-th owned cell.
struct WorkUnit {
  std::uint32_t slot = 0;
  std::uint64_t block = 0;
};

/// A lock-free Chase–Lev work-stealing deque, one per worker (memory-order
/// formulation after Lê/Pop/Cohen/Nardelli, PPoPP'13). The owner pops from
/// the bottom; thieves CAS the top. Two campaign-specific simplifications
/// keep it simple and TSan-clean without the usual circular-buffer hazard:
/// the buffer is bounded (every unit is seeded before any worker starts, so
/// there is no owner push racing a thief's buffer read — the array is
/// immutable once the pool spawns), and the seed is stored *reversed* so the
/// owner's pop-bottom yields the original front order (cell-then-block,
/// keeping the pending maps small and the scenario contexts warm) while
/// thieves take the original back — exactly the old mutex deque's policy.
/// All units are enqueued before the workers start, so once a deque reads
/// empty it stays empty: an empty sweep over every deque means no unstarted
/// work remains.
class StealDeque {
 public:
  void seed(const std::vector<WorkUnit>& units) {
    buf_.assign(units.rbegin(), units.rend());
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(static_cast<std::int64_t>(buf_.size()), std::memory_order_relaxed);
  }

  /// Owner-only: take the most recently seeded end (original front order).
  bool pop_front(WorkUnit& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      out = buf_[static_cast<std::size_t>(b)];
      if (t == b) {
        // Last element: race the thieves for it.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  /// Thief: take the oldest-seeded end (original back). Retries internally on
  /// a lost CAS, so false means the deque was genuinely empty when observed.
  bool steal_back(WorkUnit& out) {
    for (;;) {
      std::int64_t t = top_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_acquire);
      if (t >= b) return false;
      out = buf_[static_cast<std::size_t>(t)];
      if (top_.compare_exchange_weak(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed)) {
        return true;
      }
    }
  }

 private:
  std::vector<WorkUnit> buf_;  // immutable between seed() and the last pop
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

/// Mutable per-cell reduction state. `mu` guards everything below it; the
/// context is built lazily on the first block that touches the cell and freed
/// on finalization.
struct CellState {
  ScenarioCase cell;
  std::uint64_t num_blocks = 0;

  std::once_flag ctx_once;
  std::unique_ptr<ScenarioContext> ctx;

  std::mutex mu;
  ScenarioResult prefix;                          // merged blocks [0, merged_blocks)
  std::uint64_t merged_blocks = 0;
  std::map<std::uint64_t, ScenarioResult> pending;  // completed out-of-order blocks
  bool finalized = false;
};

/// Fills the cell-level metadata and analytic companions once every block has
/// merged. Requires the context (rebuilt if the cell completed purely from
/// checkpointed blocks).
void finalize_cell(const ScenarioSpec& spec, CellState& st) {
  if (st.ctx == nullptr) st.ctx = std::make_unique<ScenarioContext>(build_context(spec, st.cell));
  finalize_result(*st.ctx, st.cell, st.prefix);
  st.finalized = true;
  st.ctx.reset();  // the graphs are the heavy part; drop them as cells finish
}

}  // namespace

CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options) {
  if (spec.trials == 0) throw std::runtime_error("campaign: trials must be positive");
  const std::vector<ScenarioCase> cells = expand_grid(spec);
  if (cells.empty()) throw std::runtime_error("campaign: empty scenario grid");
  validate_shard(options.shard, cells.size());

  CampaignResult result;
  result.spec = spec;
  result.shard = options.shard;
  result.scenarios.resize(cells.size());

  // Owned cells, in grid order.
  std::vector<std::unique_ptr<CellState>> states;
  for (const ScenarioCase& cell : cells) {
    if (!options.shard.owns(cell.index)) continue;
    auto st = std::make_unique<CellState>();
    st->cell = cell;
    st->num_blocks = num_trial_blocks(spec.trials);
    st->prefix.scenario_index = cell.index;
    states.push_back(std::move(st));
  }

  // --- resume: seed the reduction states from the checkpoint ----------------
  if (options.resume && !options.checkpoint_path.empty()) {
    std::ifstream in(options.checkpoint_path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      const Checkpoint ckpt = parse_checkpoint(buf.str());
      if (ckpt.fingerprint != spec_fingerprint(spec)) {
        throw std::runtime_error(
            "campaign: checkpoint was produced by a different spec (fingerprint mismatch)");
      }
      if (ckpt.shard_stamp != shard_fingerprint(spec, options.shard)) {
        throw std::runtime_error("campaign: checkpoint belongs to shard " + ckpt.shard.label() +
                                 ", not " + options.shard.label());
      }
      for (const CellProgress& cp : ckpt.cells) {
        auto it = std::find_if(states.begin(), states.end(), [&](const auto& st) {
          return st->cell.index == cp.scenario_index;
        });
        if (it == states.end()) {
          throw std::runtime_error("campaign: checkpoint scenario index " +
                                   std::to_string(cp.scenario_index) +
                                   " is not owned by this shard");
        }
        CellState& st = **it;
        if (cp.prefix_blocks > st.num_blocks) {
          throw std::runtime_error("campaign: checkpoint prefix exceeds the block count");
        }
        if (cp.prefix_blocks > 0) {
          if (cp.prefix.trials != trials_in_prefix(spec.trials, cp.prefix_blocks)) {
            throw std::runtime_error("campaign: checkpoint prefix trial count is inconsistent");
          }
          st.prefix = cp.prefix;
          st.merged_blocks = cp.prefix_blocks;
          result.resumed_blocks += cp.prefix_blocks;
        }
        for (const auto& [block, partial] : cp.extra) {
          if (block >= st.num_blocks) {
            throw std::runtime_error("campaign: checkpoint block index out of range");
          }
          if (partial.trials != trials_in_block(spec.trials, block)) {
            throw std::runtime_error("campaign: checkpoint block trial count is inconsistent");
          }
          st.pending.emplace(block, partial);
          ++result.resumed_blocks;
        }
        // Drain any contiguity the snapshot (or a hand-edited file) left.
        while (!st.pending.empty() && st.pending.begin()->first == st.merged_blocks) {
          st.prefix.merge(st.pending.begin()->second);
          ++st.merged_blocks;
          st.pending.erase(st.pending.begin());
        }
        if (st.merged_blocks == st.num_blocks) {
          if (cp.prefix_blocks == st.num_blocks) {
            st.prefix = cp.prefix;  // already finalized by the producing run
            st.finalized = true;
          } else {
            finalize_cell(spec, st);
          }
          ++result.resumed_scenarios;
        }
      }
    }
  }

  // --- enqueue the remaining work, dealt contiguously across workers --------
  std::vector<WorkUnit> units;
  for (std::uint32_t slot = 0; slot < states.size(); ++slot) {
    const CellState& st = *states[slot];
    for (std::uint64_t b = st.merged_blocks; b < st.num_blocks; ++b) {
      if (st.pending.count(b) == 0) units.push_back({slot, b});
    }
  }

  unsigned workers =
      options.threads == 0 ? std::max(1u, std::thread::hardware_concurrency()) : options.threads;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, std::max<std::size_t>(units.size(), 1)));

  std::vector<StealDeque> deques(workers);
  {
    const std::size_t per = (units.size() + workers - 1) / std::max(1u, workers);
    for (unsigned w = 0; w < workers; ++w) {
      const std::size_t lo = std::min(units.size(), w * per);
      const std::size_t hi = std::min(units.size(), lo + per);
      deques[w].seed(std::vector<WorkUnit>(units.begin() + static_cast<std::ptrdiff_t>(lo),
                                           units.begin() + static_cast<std::ptrdiff_t>(hi)));
    }
  }

  // --- shared coordination state --------------------------------------------
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> blocks_completed{0};
  std::atomic<unsigned> workers_alive{workers};
  std::exception_ptr failure;
  std::mutex main_mu;  // guards `events` + `failure`; cv's companion
  std::condition_variable cv;
  std::vector<std::string> events;  // progress lines for finalized cells
  std::size_t cells_done = 0;       // owned cells finalized (main thread only)

  const std::size_t owned = states.size();
  std::size_t owned_done_at_start = 0;
  for (const auto& st : states) {
    if (st->finalized) ++owned_done_at_start;
  }

  auto run_unit = [&](const WorkUnit& u) {
    CellState& st = *states[u.slot];
    std::call_once(st.ctx_once, [&] {
      if (st.ctx == nullptr) st.ctx = std::make_unique<ScenarioContext>(build_context(spec, st.cell));
    });
    ScenarioResult partial = run_one_block(*st.ctx, spec.trials, u.block);

    bool completed_cell = false;
    {
      const std::lock_guard<std::mutex> lock(st.mu);
      if (u.block == st.merged_blocks) {
        st.prefix.merge(partial);
        ++st.merged_blocks;
        while (!st.pending.empty() && st.pending.begin()->first == st.merged_blocks) {
          st.prefix.merge(st.pending.begin()->second);
          ++st.merged_blocks;
          st.pending.erase(st.pending.begin());
        }
      } else {
        st.pending.emplace(u.block, std::move(partial));
      }
      if (st.merged_blocks == st.num_blocks && !st.finalized) {
        finalize_cell(spec, st);
        completed_cell = true;
      }
    }

    const std::uint64_t done = blocks_completed.fetch_add(1) + 1;
    if (options.stop_after_blocks != 0 && done >= options.stop_after_blocks) stop.store(true);
    if (completed_cell) {
      const std::lock_guard<std::mutex> lock(main_mu);
      std::ostringstream line;
      const ScenarioResult& r = st.prefix;
      line << st.cell.label() << ": success " << r.reconfig_success << "/" << r.trials;
      events.push_back(line.str());
    }
    cv.notify_all();
  };

  auto worker_fn = [&](unsigned self) {
    try {
      for (;;) {
        if (stop.load(std::memory_order_relaxed)) break;
        WorkUnit u;
        if (!deques[self].pop_front(u)) {
          bool stole = false;
          for (unsigned d = 1; d < workers && !stole; ++d) {
            stole = deques[(self + d) % workers].steal_back(u);
          }
          if (!stole) break;  // nothing left to start anywhere
        }
        run_unit(u);
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(main_mu);
        if (!failure) failure = std::current_exception();
      }
      stop.store(true);
    }
    workers_alive.fetch_sub(1);
    cv.notify_all();
  };

  // --- snapshotting ----------------------------------------------------------
  auto snapshot_checkpoint = [&]() -> std::string {
    Checkpoint ckpt;
    ckpt.shard = options.shard;  // stamps are derived from the spec by the serializer
    for (const auto& stp : states) {
      CellState& st = *stp;
      const std::lock_guard<std::mutex> lock(st.mu);
      if (st.merged_blocks == 0 && st.pending.empty()) continue;
      CellProgress cp;
      cp.scenario_index = st.cell.index;
      cp.prefix_blocks = st.merged_blocks;
      if (st.merged_blocks > 0) cp.prefix = st.prefix;
      for (const auto& [block, partial] : st.pending) cp.extra.emplace_back(block, partial);
      ckpt.cells.push_back(std::move(cp));
    }
    return checkpoint_to_json(spec, ckpt);
  };

  const bool checkpointing = !options.checkpoint_path.empty();
  auto last_checkpoint = std::chrono::steady_clock::now();
  std::uint64_t checkpointed_blocks = 0;

  // Caller must NOT hold main_mu (the lines were already moved out of
  // `events`); shared by the wait loop and the post-join final drain.
  auto print_progress = [&](const std::vector<std::string>& lines) {
    if (options.progress == nullptr) return;
    for (const std::string& line : lines) {
      cells_done = std::min(owned, cells_done + 1);
      (*options.progress) << "[" << (owned_done_at_start + cells_done) << "/" << owned << "] "
                          << line << "\n";
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_fn, w);

  // The main thread runs progress + periodic checkpoints while workers churn.
  {
    std::unique_lock<std::mutex> lk(main_mu);
    while (workers_alive.load() > 0) {
      cv.wait_for(lk, std::chrono::milliseconds(50));
      std::vector<std::string> drained;
      drained.swap(events);
      lk.unlock();
      print_progress(drained);
      if (checkpointing && !stop.load()) {
        const std::uint64_t done = blocks_completed.load();
        const auto now = std::chrono::steady_clock::now();
        const double elapsed = std::chrono::duration<double>(now - last_checkpoint).count();
        if (done > checkpointed_blocks && elapsed >= options.checkpoint_every_seconds) {
          // A failed write (disk full, path deleted) must not unwind past the
          // joinable pool — that would std::terminate. Record it like a
          // worker failure, drain the workers, and rethrow after the join.
          try {
            write_file_atomically(options.checkpoint_path, snapshot_checkpoint());
            checkpointed_blocks = done;
            last_checkpoint = now;
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(main_mu);
              if (!failure) failure = std::current_exception();
            }
            stop.store(true);
          }
        }
      }
      lk.lock();
    }
  }
  for (std::thread& t : pool) t.join();

  // Final progress drain (workers joined, no contention left).
  print_progress(events);
  events.clear();

  if (failure) std::rethrow_exception(failure);

  const std::uint64_t done = blocks_completed.load();
  if (checkpointing && (done > checkpointed_blocks || (options.stop_after_blocks != 0 && done > 0))) {
    write_file_atomically(options.checkpoint_path, snapshot_checkpoint());
  }
  if (options.stop_after_blocks != 0 && stop.load()) {
    const bool all_done = std::all_of(states.begin(), states.end(),
                                      [](const auto& st) { return st->finalized; });
    if (!all_done) throw CampaignAborted(done);
  }

  for (auto& stp : states) {
    CellState& st = *stp;
    if (!st.finalized) {
      throw std::logic_error("campaign: cell " + std::to_string(st.cell.index) +
                             " did not complete");
    }
    result.scenarios[st.cell.index] = std::move(st.prefix);
  }
  return result;
}

// --- CellRunner -------------------------------------------------------------

struct CellRunner::Impl {
  std::uint64_t trials;
  ScenarioCase cell;
  ScenarioContext ctx;
};

CellRunner::CellRunner(const ScenarioSpec& spec, const ScenarioCase& cell)
    : impl_(new Impl{spec.trials, cell, build_context(spec, cell)}) {}

CellRunner::~CellRunner() = default;
CellRunner::CellRunner(CellRunner&&) noexcept = default;
CellRunner& CellRunner::operator=(CellRunner&&) noexcept = default;

std::uint64_t CellRunner::num_blocks() const { return num_trial_blocks(impl_->trials); }

ScenarioResult CellRunner::run_block(std::uint64_t block) const {
  if (block >= num_blocks()) throw std::out_of_range("CellRunner::run_block: block out of range");
  return run_one_block(impl_->ctx, impl_->trials, block);
}

void CellRunner::finalize(ScenarioResult& r) const {
  finalize_result(impl_->ctx, impl_->cell, r);
}

}  // namespace ftdb::campaign
