// The campaign execution engine.
//
// Every (scenario, 256-trial block) pair of the whole grid is one work unit.
// All units feed one work-stealing scheduler: each worker owns a deque seeded
// with a deterministic contiguous slice of the units, pops its own work from
// the front, and steals from the back of a sibling's deque when it runs dry —
// so one slow cell no longer serializes the grid tail. Every trial's randomness is
// counter-based — TrialRng::for_trial(seed, scenario, trial) — and per-block
// partial statistics are merged *in block order* per cell (an out-of-order
// block parks in a pending map until its predecessors land), so the result is
// byte-identical for any thread count and any steal schedule. Statistics
// stream through Welford accumulators (no per-trial storage), success rates
// carry Wilson score intervals, and fault-count survival curves are recorded
// per scenario.
//
// Long campaigns checkpoint at *block* granularity: the checkpoint stores,
// per cell, the merged prefix of completed blocks plus any completed
// out-of-prefix blocks, so a crash replays at most the blocks in flight (256
// trials each), not a whole cell. --resume loads the checkpoint and, because
// trials are counter-based, finishes with exactly the report an uninterrupted
// run would have produced.
//
// Sharding scales the same campaign across machines: shard i/n runs only the
// cells it owns (round-robin by cell index) and writes a mergeable partial
// checkpoint; merge_checkpoints (report.hpp) fuses the partials into a report
// byte-identical to a single-machine run.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/bench_json.hpp"
#include "campaign/scenario.hpp"

namespace ftdb::campaign {

/// Trials per work unit. Fixed — the block partition is part of the
/// deterministic reduction order, so it must not depend on the thread count,
/// the shard layout, or the steal schedule.
inline constexpr std::uint64_t kTrialBlock = 256;

/// Blocks a cell of `trials` trials decomposes into (the last may be short).
inline constexpr std::uint64_t num_trial_blocks(std::uint64_t trials) {
  return (trials + kTrialBlock - 1) / kTrialBlock;
}

/// Trials covered by blocks [0, blocks) of a `trials`-trial cell.
inline constexpr std::uint64_t trials_in_prefix(std::uint64_t trials, std::uint64_t blocks) {
  const std::uint64_t t = blocks * kTrialBlock;
  return t < trials ? t : trials;
}

/// Trials inside block `block` of a `trials`-trial cell (the last block may
/// be short).
inline constexpr std::uint64_t trials_in_block(std::uint64_t trials, std::uint64_t block) {
  const std::uint64_t lo = block * kTrialBlock;
  const std::uint64_t hi = lo + kTrialBlock < trials ? lo + kTrialBlock : trials;
  return hi - lo;
}

/// Welford/Chan streaming moments with min/max. Deterministic under the
/// runner's fixed block partition + in-order merge.
struct StreamingStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double x);
  void merge(const StreamingStats& other);
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
};

/// Wilson score interval for a binomial proportion (default z: 95%).
struct WilsonInterval {
  double lo = 0.0;
  double hi = 1.0;
};
WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z = 1.959963984540054);

/// One point of a scenario's empirical survival curve: of the trials that
/// drew exactly `faults` faults, how many reconfigured successfully.
struct SurvivalPoint {
  std::uint64_t faults = 0;
  std::uint64_t trials = 0;
  std::uint64_t survived = 0;
};

/// One point of the collective slowdown curve: over the trials that drew
/// exactly `faults` faults, the summed completion-time slowdown of the
/// collective schedule (relative to the healthy baseline) across the trials
/// where it completed, plus how many trials could not complete it at all.
/// The sum (not the mean) is stored so block partials merge exactly.
struct SlowdownPoint {
  std::uint64_t faults = 0;
  std::uint64_t trials = 0;        ///< trials at this fault count that ran the collective
  std::uint64_t unreachable = 0;   ///< of those, runs with undeliverable/timed-out sends
  double slowdown_sum = 0.0;       ///< sum over the (trials - unreachable) completed runs

  double mean_slowdown() const {
    const std::uint64_t done = trials - unreachable;
    return done == 0 ? 0.0 : slowdown_sum / static_cast<double>(done);
  }
};

/// Everything measured for one grid cell.
struct ScenarioResult {
  std::size_t scenario_index = 0;
  std::string label;
  std::uint64_t target_nodes = 0;   ///< N
  std::uint64_t fabric_nodes = 0;   ///< N + k (bus machine: node count of the fabric)
  std::uint32_t target_diameter = 0;

  std::uint64_t trials = 0;
  std::uint64_t reconfig_success = 0;  ///< monotone embedding survived the draw
  std::uint64_t over_budget = 0;       ///< trials that drew more than k faults
  StreamingStats fault_count;          ///< faults per trial

  // diameter metric --------------------------------------------------------
  /// Diameter of the live logical graph on successful trials — the paper
  /// says this must equal target_diameter, and here it is measured, not
  /// assumed.
  StreamingStats reconfigured_diameter;
  /// Diameter of the survivor-induced fabric subgraph on failed trials
  /// (finite values only)...
  StreamingStats degraded_diameter;
  /// ...and how many failed trials left the survivors disconnected.
  std::uint64_t degraded_disconnected = 0;

  // stretch metric (point-to-point families: de Bruijn + shuffle-exchange) --
  StreamingStats route_stretch;

  // mttf metric -------------------------------------------------------------
  /// Time of the (k+1)-st failure per trial (finite draws only).
  StreamingStats mttf;
  std::uint64_t mttf_censored = 0;  ///< trials whose model never exhausts the spares

  // collective metric (point-to-point families only) -----------------------
  /// Rounds of the schedule on the full target (set at cell finalization).
  std::uint64_t collective_rounds = 0;
  /// Completion cycles of the schedule on the healthy machine — the
  /// denominator of every per-trial slowdown (set at cell finalization).
  std::uint64_t collective_baseline_cycles = 0;
  /// Per-trial completion-time slowdown of the collective (trials whose
  /// collective completed). Successful trials re-run the full-N schedule on
  /// the reconfigured machine against the cell baseline — dilation-1 lands at
  /// exactly 1.0. Failed trials run the survivors' schedule on the degraded
  /// target against the same schedule on the *healthy* target, so the ratio
  /// measures pure rerouting/congestion cost, not the smaller job.
  StreamingStats collective_slowdown;
  /// Per-trial total hop-cycles and max per-link congestion of the run.
  StreamingStats collective_hop_cycles;
  StreamingStats collective_congestion;
  /// Trials whose machine could not complete the collective (survivors
  /// disconnected or all participants dead).
  std::uint64_t collective_unreachable = 0;

  // bus-fault models (bus_iid / bus_clustered) ------------------------------
  /// Buses drawn faulty per trial. Only populated for bus-fault-model cells;
  /// on bus-family cells these draws are resolved onto the realized graph
  /// through ft::resolve_bus_faults.
  StreamingStats bus_fault_count;

  // traffic metric (point-to-point families only) ---------------------------
  /// Fraction of injected packets delivered per trial (successful trials run
  /// on the reconfigured machine, failed ones on the degraded bare target).
  StreamingStats traffic_delivered;
  /// Mean in-network latency of the delivered packets, per trial.
  StreamingStats traffic_latency;
  /// Peak queue depth across nodes, per trial — the congestion the skewed
  /// destination distributions exist to create.
  StreamingStats traffic_congestion;
  /// Total packets that timed out in flight across all trials.
  std::uint64_t traffic_timed_out = 0;

  /// Empirical survival curve by drawn fault count (sorted by faults).
  std::vector<SurvivalPoint> survival_curve;
  /// Collective slowdown by drawn fault count (sorted by faults; empty unless
  /// the collective metric ran).
  std::vector<SlowdownPoint> slowdown_curve;

  // analytic companions (iid model only; NaN otherwise) ---------------------
  double analytic_survival = std::numeric_limits<double>::quiet_NaN();
  double analytic_mttf = std::numeric_limits<double>::quiet_NaN();

  double success_rate() const;
  WilsonInterval success_ci(double z = 1.959963984540054) const;

  /// Merges a same-scenario partial (used block-by-block by the runner).
  void merge(const ScenarioResult& other);
};

struct CampaignOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
  unsigned threads = 0;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Minimum seconds between checkpoint writes (0 = after every completed
  /// block — the tightest crash-replay bound).
  double checkpoint_every_seconds = 0.0;
  /// Load checkpoint_path (if it exists) and skip its completed blocks.
  bool resume = false;
  /// Run only the cells this shard owns (see ShardSpec). The checkpoint then
  /// carries the shard stamp and is a merge_checkpoints input.
  ShardSpec shard;
  /// Test/CI hook simulating a mid-campaign crash: once this many blocks have
  /// completed, stop scheduling work, write a final checkpoint, and throw
  /// CampaignAborted. 0 disables.
  std::uint64_t stop_after_blocks = 0;
  /// Optional sink for one progress line per completed scenario.
  std::ostream* progress = nullptr;
};

struct CampaignResult {
  ScenarioSpec spec;
  ShardSpec shard;                        ///< which slice this run executed
  std::vector<ScenarioResult> scenarios;  ///< in grid order; unowned cells stay empty
  std::uint64_t resumed_scenarios = 0;    ///< cells fully loaded from the checkpoint
  std::uint64_t resumed_blocks = 0;       ///< blocks skipped thanks to the checkpoint
};

/// Thrown by run_campaign when options.stop_after_blocks fired. The final
/// checkpoint (when a checkpoint path is set) is written *before* the throw,
/// so the campaign is resumable from exactly this point.
struct CampaignAborted : std::runtime_error {
  explicit CampaignAborted(std::uint64_t blocks)
      : std::runtime_error("campaign: stopped after " + std::to_string(blocks) +
                           " blocks (stop_after_blocks hook)"),
        blocks_completed(blocks) {}
  std::uint64_t blocks_completed = 0;
};

/// Runs the whole campaign (or one shard of it). Throws std::runtime_error on
/// unusable specs or an incompatible checkpoint, CampaignAborted when the
/// stop_after_blocks hook fires.
CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options = {});

/// Executes one grid cell's trial blocks outside the full scheduler — the
/// unit the elastic campaign service (campaign/elastic/) leases and runs.
/// The scenario context (graphs, fault model, collective baseline) is built
/// once in the constructor; run_block only reads it, so one CellRunner can
/// serve many threads concurrently. Blocks produced here are bit-identical
/// to the ones run_campaign's scheduler folds, because every trial's
/// randomness is counter-based.
class CellRunner {
 public:
  CellRunner(const ScenarioSpec& spec, const ScenarioCase& cell);
  ~CellRunner();
  CellRunner(CellRunner&&) noexcept;
  CellRunner& operator=(CellRunner&&) noexcept;

  std::uint64_t num_blocks() const;

  /// Runs block `block` (kTrialBlock trials; the last block may be short) and
  /// returns its partial accumulator — exactly what the scheduler would merge.
  ScenarioResult run_block(std::uint64_t block) const;

  /// Fills the cell-level metadata and analytic companions on a fully-merged
  /// accumulator (the step that finalizes a completed cell for reporting).
  void finalize(ScenarioResult& r) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// --- checkpoint / result serialization (shared with report.cpp) ------------

/// Writes one ScenarioResult as a JSON object (all raw accumulator fields;
/// round-trips exactly through parse_scenario_result — the %.17g doubles the
/// writer emits reparse to the same bits).
void write_scenario_result(analysis::JsonWriter& w, const ScenarioResult& r);
ScenarioResult parse_scenario_result(const analysis::JsonValue& obj);

/// One cell's progress inside a checkpoint: blocks [0, prefix_blocks) merged
/// into `prefix` (finalized — labels and analytic columns filled — exactly
/// when the cell is complete), plus any completed blocks past the prefix that
/// were waiting on a predecessor when the snapshot was taken.
struct CellProgress {
  std::size_t scenario_index = 0;
  std::uint64_t prefix_blocks = 0;
  ScenarioResult prefix;
  std::vector<std::pair<std::uint64_t, ScenarioResult>> extra;  ///< sorted by block
};

/// "ftdb-campaign-checkpoint-v2": block-granular progress of one shard.
struct Checkpoint {
  std::uint64_t fingerprint = 0;        ///< spec_fingerprint of the producing spec
  std::uint64_t shard_stamp = 0;        ///< shard_fingerprint(spec, shard)
  ShardSpec shard;
  std::vector<CellProgress> cells;      ///< sorted by scenario_index
};

std::string checkpoint_to_json(const ScenarioSpec& spec, const Checkpoint& ckpt);

/// Convenience form for whole-cell checkpoints (each result a completed
/// cell), the shape the scenario-granular v1 engine produced.
std::string checkpoint_to_json(const ScenarioSpec& spec,
                               const std::vector<ScenarioResult>& completed);

/// Parses a checkpoint document; throws std::runtime_error when malformed or
/// when the trial-block size it was produced with differs from kTrialBlock.
Checkpoint parse_checkpoint(const std::string& json_text);

}  // namespace ftdb::campaign
