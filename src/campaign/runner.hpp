// The campaign execution engine.
//
// Scenarios (grid cells) run one after another; within a scenario the trials
// are cut into fixed blocks of kTrialBlock and the blocks are sharded across
// a plain std::thread pool (the bench_runner discipline). Every trial's
// randomness is counter-based — TrialRng::for_trial(seed, scenario, trial) —
// and per-block partial statistics are merged in block order, so the result
// is byte-identical for any thread count. Statistics stream through Welford
// accumulators (no per-trial storage), success rates carry Wilson score
// intervals, and fault-count survival curves are recorded per scenario.
//
// Long campaigns checkpoint completed scenarios to JSON; --resume loads the
// checkpoint, skips the finished cells, and (because trials are counter-
// based) finishes the campaign with exactly the report an uninterrupted run
// would have produced.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/bench_json.hpp"
#include "campaign/scenario.hpp"

namespace ftdb::campaign {

/// Welford/Chan streaming moments with min/max. Deterministic under the
/// runner's fixed block partition + in-order merge.
struct StreamingStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double x);
  void merge(const StreamingStats& other);
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
};

/// Wilson score interval for a binomial proportion (default z: 95%).
struct WilsonInterval {
  double lo = 0.0;
  double hi = 1.0;
};
WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z = 1.959963984540054);

/// One point of a scenario's empirical survival curve: of the trials that
/// drew exactly `faults` faults, how many reconfigured successfully.
struct SurvivalPoint {
  std::uint64_t faults = 0;
  std::uint64_t trials = 0;
  std::uint64_t survived = 0;
};

/// Everything measured for one grid cell.
struct ScenarioResult {
  std::size_t scenario_index = 0;
  std::string label;
  std::uint64_t target_nodes = 0;   ///< N
  std::uint64_t fabric_nodes = 0;   ///< N + k (bus machine: node count of the fabric)
  std::uint32_t target_diameter = 0;

  std::uint64_t trials = 0;
  std::uint64_t reconfig_success = 0;  ///< monotone embedding survived the draw
  std::uint64_t over_budget = 0;       ///< trials that drew more than k faults
  StreamingStats fault_count;          ///< faults per trial

  // diameter metric --------------------------------------------------------
  /// Diameter of the live logical graph on successful trials — the paper
  /// says this must equal target_diameter, and here it is measured, not
  /// assumed.
  StreamingStats reconfigured_diameter;
  /// Diameter of the survivor-induced fabric subgraph on failed trials
  /// (finite values only)...
  StreamingStats degraded_diameter;
  /// ...and how many failed trials left the survivors disconnected.
  std::uint64_t degraded_disconnected = 0;

  // stretch metric (de Bruijn family only) ---------------------------------
  StreamingStats route_stretch;

  // mttf metric -------------------------------------------------------------
  /// Time of the (k+1)-st failure per trial (finite draws only).
  StreamingStats mttf;
  std::uint64_t mttf_censored = 0;  ///< trials whose model never exhausts the spares

  /// Empirical survival curve by drawn fault count (sorted by faults).
  std::vector<SurvivalPoint> survival_curve;

  // analytic companions (iid model only; NaN otherwise) ---------------------
  double analytic_survival = std::numeric_limits<double>::quiet_NaN();
  double analytic_mttf = std::numeric_limits<double>::quiet_NaN();

  double success_rate() const;
  WilsonInterval success_ci(double z = 1.959963984540054) const;

  /// Merges a same-scenario partial (used block-by-block by the runner).
  void merge(const ScenarioResult& other);
};

struct CampaignOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
  unsigned threads = 0;
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Minimum seconds between checkpoint writes (0 = after every scenario).
  double checkpoint_every_seconds = 0.0;
  /// Load checkpoint_path (if it exists) and skip its completed scenarios.
  bool resume = false;
  /// Optional sink for one progress line per completed scenario.
  std::ostream* progress = nullptr;
};

struct CampaignResult {
  ScenarioSpec spec;
  std::vector<ScenarioResult> scenarios;  ///< in grid order
  std::uint64_t resumed_scenarios = 0;    ///< cells loaded from the checkpoint
};

/// Runs the whole campaign. Throws std::runtime_error on unusable specs or
/// an incompatible checkpoint.
CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options = {});

// --- checkpoint / result serialization (shared with report.cpp) ------------

/// Writes one ScenarioResult as a JSON object (all raw accumulator fields;
/// round-trips exactly through parse_scenario_result — the %.17g doubles the
/// writer emits reparse to the same bits).
void write_scenario_result(analysis::JsonWriter& w, const ScenarioResult& r);
ScenarioResult parse_scenario_result(const analysis::JsonValue& obj);

/// Serializes completed scenario results ("ftdb-campaign-checkpoint-v1").
std::string checkpoint_to_json(const ScenarioSpec& spec,
                               const std::vector<ScenarioResult>& completed);

struct Checkpoint {
  std::uint64_t fingerprint = 0;
  std::vector<ScenarioResult> completed;
};

/// Parses a checkpoint document; throws std::runtime_error when malformed.
Checkpoint parse_checkpoint(const std::string& json_text);

}  // namespace ftdb::campaign
