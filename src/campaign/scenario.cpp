#include "campaign/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "analysis/bench_json.hpp"
#include "campaign/rng.hpp"
#include "sim/schedule.hpp"
#include "sim/traffic.hpp"

namespace ftdb::campaign {

using analysis::JsonValue;
using analysis::JsonWriter;

namespace {

std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::runtime_error("campaign spec: " + what);
}

double number_field(const JsonValue& obj, const std::string& key, double fallback,
                    bool required = false) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) bad_spec("missing required field \"" + key + "\"");
    return fallback;
  }
  if (v->kind != JsonValue::Kind::Number) bad_spec("field \"" + key + "\" must be a number");
  return v->number;
}

std::uint64_t uint_field(const JsonValue& obj, const std::string& key, std::uint64_t fallback,
                         bool required = false) {
  const double d = number_field(obj, key, static_cast<double>(fallback), required);
  if (d < 0 || d != std::floor(d)) bad_spec("field \"" + key + "\" must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

/// A grid dimension given either as one number or as an array of numbers.
std::vector<std::uint64_t> uint_list_field(const JsonValue& obj, const std::string& key,
                                           std::vector<std::uint64_t> fallback,
                                           bool required = false) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) bad_spec("missing required field \"" + key + "\"");
    return fallback;
  }
  std::vector<std::uint64_t> out;
  const auto take = [&](const JsonValue& item) {
    if (item.kind != JsonValue::Kind::Number || item.number < 0 ||
        item.number != std::floor(item.number)) {
      bad_spec("field \"" + key + "\" must hold non-negative integers");
    }
    out.push_back(static_cast<std::uint64_t>(item.number));
  };
  if (v->kind == JsonValue::Kind::Array) {
    if (v->array.empty()) bad_spec("field \"" + key + "\" must not be empty");
    for (const JsonValue& item : v->array) take(item);
  } else {
    take(*v);
  }
  return out;
}

TopologyFamily parse_family(const std::string& s) {
  if (s == "debruijn") return TopologyFamily::DeBruijn;
  if (s == "shuffle_exchange") return TopologyFamily::ShuffleExchange;
  if (s == "bus") return TopologyFamily::Bus;
  bad_spec("unknown topology family \"" + s + "\" (expected debruijn, shuffle_exchange or bus)");
}

FaultModelKind parse_kind(const std::string& s) {
  if (s == "iid") return FaultModelKind::IidBernoulli;
  if (s == "clustered") return FaultModelKind::Clustered;
  if (s == "weibull") return FaultModelKind::Weibull;
  if (s == "adversarial") return FaultModelKind::Adversarial;
  if (s == "block") return FaultModelKind::Block;
  if (s == "bus_iid") return FaultModelKind::BusIid;
  if (s == "bus_clustered") return FaultModelKind::BusClustered;
  bad_spec("unknown fault model \"" + s +
           "\" (expected iid, clustered, weibull, adversarial, block, bus_iid or "
           "bus_clustered)");
}

void check_probability(double p, const std::string& context) {
  if (!(p > 0.0) || !(p < 1.0)) bad_spec(context + ": p must be in (0, 1)");
}

}  // namespace

const char* topology_family_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::DeBruijn: return "debruijn";
    case TopologyFamily::ShuffleExchange: return "shuffle_exchange";
    case TopologyFamily::Bus: return "bus";
  }
  return "?";
}

const char* fault_model_kind_name(FaultModelKind kind) {
  switch (kind) {
    case FaultModelKind::IidBernoulli: return "iid";
    case FaultModelKind::Clustered: return "clustered";
    case FaultModelKind::Weibull: return "weibull";
    case FaultModelKind::Adversarial: return "adversarial";
    case FaultModelKind::Block: return "block";
    case FaultModelKind::BusIid: return "bus_iid";
    case FaultModelKind::BusClustered: return "bus_clustered";
  }
  return "?";
}

std::uint64_t TopologySpec::target_nodes() const {
  const std::uint64_t m = family == TopologyFamily::DeBruijn ? base : 2;
  std::uint64_t n = 1;
  for (unsigned i = 0; i < digits; ++i) {
    if (n > (std::uint64_t{1} << 62) / m) bad_spec("topology size overflows");
    n *= m;
  }
  return n;
}

std::string TopologySpec::label() const {
  if (family == TopologyFamily::DeBruijn) {
    return "debruijn(m=" + std::to_string(base) + ",h=" + std::to_string(digits) + ")";
  }
  return std::string(topology_family_name(family)) + "(h=" + std::to_string(digits) + ")";
}

std::string FaultModelSpec::label() const {
  switch (kind) {
    case FaultModelKind::IidBernoulli: return "iid(p=" + fmt_g(p) + ")";
    case FaultModelKind::Clustered: return "clustered(p=" + fmt_g(p) + ")";
    case FaultModelKind::Weibull:
      return "weibull(shape=" + fmt_g(shape) + ",scale=" + fmt_g(scale) +
             ",horizon=" + fmt_g(horizon) + ")";
    case FaultModelKind::Adversarial: return "adversarial(p=" + fmt_g(p) + ")";
    case FaultModelKind::Block:
      return "block(p=" + fmt_g(p) + ",w=" + std::to_string(width) + ")";
    case FaultModelKind::BusIid: return "bus_iid(p=" + fmt_g(p) + ")";
    case FaultModelKind::BusClustered: return "bus_clustered(p=" + fmt_g(p) + ")";
  }
  return "?";
}

std::string ScenarioCase::label() const {
  return topology.label() + " k=" + std::to_string(spares) + " " + fault_model.label();
}

std::vector<ScenarioCase> expand_grid(const ScenarioSpec& spec) {
  std::vector<ScenarioCase> cells;
  cells.reserve(spec.topologies.size() * spec.spares.size() * spec.fault_models.size());
  for (const TopologySpec& topo : spec.topologies) {
    for (const unsigned k : spec.spares) {
      for (const FaultModelSpec& model : spec.fault_models) {
        ScenarioCase cell;
        cell.index = cells.size();
        cell.topology = topo;
        cell.spares = k;
        cell.fault_model = model;
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

double predicted_cell_cost(const ScenarioSpec& spec, const ScenarioCase& cell) {
  const double n = static_cast<double>(cell.topology.target_nodes());
  // Fabric construction + fault draw + embedding repair: a handful of passes
  // over the fabric, which is N plus spares wide.
  double per_trial = 4.0 * (n + static_cast<double>(cell.spares));
  if (spec.metrics.diameter) {
    // 64-way multi-source BFS sweeps: ~N^2/64 edge visits on degree-bounded
    // machines, plus a constant number of whole-machine passes.
    per_trial += n * n / 64.0 + 4.0 * n;
  }
  if (spec.metrics.stretch && cell.topology.family != TopologyFamily::Bus) {
    per_trial += spec.metrics.stretch_sample_pairs != 0
                     ? static_cast<double>(spec.metrics.stretch_sample_pairs) * n / 64.0
                     : n * n / 64.0 + n * n;  // full sweep also walks every route
  }
  if (spec.metrics.collective && cell.topology.family != TopologyFamily::Bus) {
    // Packet engine: rounds ~ log N, each moving O(N) packets a few hops.
    per_trial += 8.0 * n * (1.0 + std::log2(n > 1.0 ? n : 2.0));
  }
  if (spec.metrics.traffic && cell.topology.family != TopologyFamily::Bus) {
    // Packet engine again: packets_per_node x N packets, a few hops each.
    per_trial +=
        8.0 * static_cast<double>(spec.metrics.traffic_spec.packets_per_node) * n;
  }
  return per_trial * static_cast<double>(spec.trials);
}

ScenarioSpec parse_scenario_spec(const std::string& json_text) {
  const JsonValue doc = analysis::json_parse(json_text);
  if (doc.kind != JsonValue::Kind::Object) bad_spec("document must be a JSON object");

  ScenarioSpec spec;
  if (const JsonValue* name = doc.find("name")) {
    if (name->kind != JsonValue::Kind::String) bad_spec("\"name\" must be a string");
    spec.name = name->string;
  }
  spec.seed = uint_field(doc, "seed", spec.seed);
  spec.trials = uint_field(doc, "trials", spec.trials);
  if (spec.trials == 0) bad_spec("\"trials\" must be positive");

  const JsonValue* topologies = doc.find("topologies");
  if (topologies == nullptr || topologies->kind != JsonValue::Kind::Array ||
      topologies->array.empty()) {
    bad_spec("\"topologies\" must be a non-empty array");
  }
  for (const JsonValue& t : topologies->array) {
    if (t.kind != JsonValue::Kind::Object) bad_spec("topology entries must be objects");
    const JsonValue* family = t.find("family");
    if (family == nullptr || family->kind != JsonValue::Kind::String) {
      bad_spec("topology entries need a string \"family\"");
    }
    TopologySpec proto;
    proto.family = parse_family(family->string);
    if (proto.family != TopologyFamily::DeBruijn && t.find("base") != nullptr) {
      // Reject rather than silently collapse a base sweep to base 2.
      bad_spec("\"base\" only applies to the debruijn family");
    }
    // `base` and `digits` may each be a scalar or a list; the entry expands
    // over their cartesian product, which is how "grid over m, h" is spelled.
    const auto bases = proto.family == TopologyFamily::DeBruijn
                           ? uint_list_field(t, "base", {2})
                           : std::vector<std::uint64_t>{2};
    const auto digit_values = uint_list_field(t, "digits", {}, /*required=*/true);
    for (const std::uint64_t m : bases) {
      if (m < 2) bad_spec("topology base must be >= 2");
      for (const std::uint64_t h : digit_values) {
        if (h < 1 || h > 30) bad_spec("topology digits must be in [1, 30]");
        TopologySpec topo = proto;
        topo.base = m;
        topo.digits = static_cast<unsigned>(h);
        (void)topo.target_nodes();  // validates the size fits
        spec.topologies.push_back(topo);
      }
    }
  }

  for (const std::uint64_t k : uint_list_field(doc, "spares", {}, /*required=*/true)) {
    if (k > 4096) bad_spec("spare level too large (k <= 4096)");
    spec.spares.push_back(static_cast<unsigned>(k));
  }

  const JsonValue* models = doc.find("fault_models");
  if (models == nullptr || models->kind != JsonValue::Kind::Array || models->array.empty()) {
    bad_spec("\"fault_models\" must be a non-empty array");
  }
  for (const JsonValue& m : models->array) {
    if (m.kind != JsonValue::Kind::Object) bad_spec("fault model entries must be objects");
    const JsonValue* kind = m.find("kind");
    if (kind == nullptr || kind->kind != JsonValue::Kind::String) {
      bad_spec("fault model entries need a string \"kind\"");
    }
    FaultModelSpec model;
    model.kind = parse_kind(kind->string);
    model.p = number_field(m, "p", model.p);
    model.shape = number_field(m, "shape", model.shape);
    model.scale = number_field(m, "scale", model.scale);
    model.horizon = number_field(m, "horizon", model.horizon);
    model.width = uint_field(m, "width", model.width);
    if (model.kind != FaultModelKind::Weibull) check_probability(model.p, kind->string);
    if (model.kind == FaultModelKind::Weibull) {
      if (!(model.shape > 0.0)) bad_spec("weibull: shape must be positive");
      if (!(model.scale > 0.0)) bad_spec("weibull: scale must be positive");
      if (!(model.horizon > 0.0)) bad_spec("weibull: horizon must be positive");
    }
    if (model.kind == FaultModelKind::Block && model.width < 1) {
      bad_spec("block: width must be >= 1");
    }
    spec.fault_models.push_back(model);
  }

  if (const JsonValue* metrics = doc.find("metrics")) {
    if (metrics->kind != JsonValue::Kind::Array) bad_spec("\"metrics\" must be an array");
    spec.metrics.diameter = false;
    spec.metrics.stretch = false;
    spec.metrics.mttf = false;
    for (const JsonValue& m : metrics->array) {
      if (m.kind != JsonValue::Kind::String) bad_spec("metric names must be strings");
      if (m.string == "diameter") {
        spec.metrics.diameter = true;
      } else if (m.string == "stretch") {
        spec.metrics.stretch = true;
      } else if (m.string == "mttf") {
        spec.metrics.mttf = true;
      } else if (m.string == "collective") {
        spec.metrics.collective = true;
      } else if (m.string == "traffic") {
        spec.metrics.traffic = true;
      } else {
        bad_spec("unknown metric \"" + m.string +
                 "\" (expected diameter, stretch, mttf, collective or traffic)");
      }
    }
  }
  spec.metrics.stretch_sample_pairs = uint_field(doc, "stretch_sample_pairs", 0);
  if (const JsonValue* sched = doc.find("collective_schedule")) {
    if (sched->kind != JsonValue::Kind::String) {
      bad_spec("\"collective_schedule\" must be a string");
    }
    try {
      (void)sim::schedule_kind_from_name(sched->string);
    } catch (const std::invalid_argument& e) {
      bad_spec(e.what());
    }
    spec.metrics.collective_schedule = sched->string;
  }
  if (const JsonValue* t = doc.find("traffic")) {
    if (t->kind != JsonValue::Kind::Object) bad_spec("\"traffic\" must be an object");
    TrafficSpec& ts = spec.metrics.traffic_spec;
    if (const JsonValue* pat = t->find("pattern")) {
      if (pat->kind != JsonValue::Kind::String) bad_spec("traffic: \"pattern\" must be a string");
      ts.pattern = pat->string;
    }
    if (ts.pattern != "uniform" && ts.pattern != "zipf" && ts.pattern != "hotspot_burst" &&
        ts.pattern != "trace") {
      bad_spec("traffic: unknown pattern \"" + ts.pattern +
               "\" (expected uniform, zipf, hotspot_burst or trace)");
    }
    ts.theta = number_field(*t, "theta", ts.theta);
    if (!(ts.theta >= 0.0) || !std::isfinite(ts.theta)) {
      bad_spec("traffic: theta must be finite and >= 0");
    }
    ts.hotspots = uint_field(*t, "hotspots", ts.hotspots);
    if (ts.hotspots < 1 || ts.hotspots > 4096) bad_spec("traffic: hotspots must be in [1, 4096]");
    ts.fraction_hot = number_field(*t, "fraction_hot", ts.fraction_hot);
    if (!(ts.fraction_hot >= 0.0 && ts.fraction_hot <= 1.0)) {
      bad_spec("traffic: fraction_hot must be in [0, 1]");
    }
    ts.burst_cycles = uint_field(*t, "burst_cycles", ts.burst_cycles);
    if (ts.burst_cycles < 1) bad_spec("traffic: burst_cycles must be >= 1");
    ts.packets_per_node = uint_field(*t, "packets_per_node", ts.packets_per_node);
    if (ts.packets_per_node < 1 || ts.packets_per_node > 4096) {
      bad_spec("traffic: packets_per_node must be in [1, 4096]");
    }
    if (const JsonValue* trace = t->find("trace")) {
      if (trace->kind != JsonValue::Kind::String) bad_spec("traffic: \"trace\" must be a string");
      ts.trace = trace->string;
    }
    if (ts.pattern == "trace") {
      // Format- and range-check the trace now so a bad spec fails at parse
      // time, not mid-campaign inside a worker thread.
      std::vector<sim::Packet> parsed;
      try {
        parsed = sim::trace_traffic(ts.trace, 0);
      } catch (const std::exception& e) {
        bad_spec(std::string("traffic: ") + e.what());
      }
      if (parsed.empty()) bad_spec("traffic: trace pattern needs a non-empty \"trace\"");
      NodeId max_endpoint = 0;
      for (const sim::Packet& p : parsed) {
        max_endpoint = std::max({max_endpoint, p.src, p.dst});
      }
      for (const TopologySpec& topo : spec.topologies) {
        if (topo.family == TopologyFamily::Bus) continue;
        if (max_endpoint >= topo.target_nodes()) {
          bad_spec("traffic: trace endpoint " + std::to_string(max_endpoint) +
                   " out of range for topology " + topo.label());
        }
      }
    }
  }
  return spec;
}

std::string scenario_spec_to_json(const ScenarioSpec& spec) {
  JsonWriter w;
  write_scenario_spec(w, spec);
  return w.str();
}

void write_scenario_spec(JsonWriter& w, const ScenarioSpec& spec) {
  w.begin_object();
  w.key("name");
  w.value(spec.name);
  w.key("seed");
  w.value(spec.seed);
  w.key("trials");
  w.value(spec.trials);
  w.key("topologies");
  w.begin_array();
  for (const TopologySpec& t : spec.topologies) {
    w.begin_object();
    w.key("family");
    w.value(topology_family_name(t.family));
    if (t.family == TopologyFamily::DeBruijn) {
      w.key("base");
      w.value(t.base);
    }
    w.key("digits");
    w.value(static_cast<std::uint64_t>(t.digits));
    w.end_object();
  }
  w.end_array();
  w.key("spares");
  w.begin_array();
  for (const unsigned k : spec.spares) w.value(static_cast<std::uint64_t>(k));
  w.end_array();
  w.key("fault_models");
  w.begin_array();
  for (const FaultModelSpec& m : spec.fault_models) {
    w.begin_object();
    w.key("kind");
    w.value(fault_model_kind_name(m.kind));
    if (m.kind == FaultModelKind::Weibull) {
      w.key("shape");
      w.value(m.shape);
      w.key("scale");
      w.value(m.scale);
      w.key("horizon");
      w.value(m.horizon);
    } else {
      w.key("p");
      w.value(m.p);
      if (m.kind == FaultModelKind::Block) {
        w.key("width");
        w.value(m.width);
      }
    }
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  w.begin_array();
  if (spec.metrics.diameter) w.value("diameter");
  if (spec.metrics.stretch) w.value("stretch");
  if (spec.metrics.mttf) w.value("mttf");
  if (spec.metrics.collective) w.value("collective");
  if (spec.metrics.traffic) w.value("traffic");
  w.end_array();
  // Only a set knob enters the canonical form, so pre-knob specs keep their
  // fingerprints (and checkpoints) unchanged.
  if (spec.metrics.stretch_sample_pairs != 0) {
    w.key("stretch_sample_pairs");
    w.value(spec.metrics.stretch_sample_pairs);
  }
  if (spec.metrics.collective) {
    w.key("collective_schedule");
    w.value(spec.metrics.collective_schedule);
  }
  if (spec.metrics.traffic) {
    const TrafficSpec& ts = spec.metrics.traffic_spec;
    w.key("traffic");
    w.begin_object();
    w.key("pattern");
    w.value(ts.pattern);
    // Pattern-irrelevant knobs stay out of the canonical form so they cannot
    // silently change a fingerprint.
    if (ts.pattern == "zipf") {
      w.key("theta");
      w.value(ts.theta);
    }
    if (ts.pattern == "hotspot_burst") {
      w.key("hotspots");
      w.value(ts.hotspots);
      w.key("fraction_hot");
      w.value(ts.fraction_hot);
      w.key("burst_cycles");
      w.value(ts.burst_cycles);
    }
    w.key("packets_per_node");
    w.value(ts.packets_per_node);
    if (ts.pattern == "trace") {
      w.key("trace");
      w.value(ts.trace);
    }
    w.end_object();
  }
  w.end_object();
}

std::string ShardSpec::label() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

void validate_shard(const ShardSpec& shard, std::size_t num_cells) {
  if (shard.count < 1) bad_spec("shard count must be >= 1");
  if (shard.index >= shard.count) {
    bad_spec("shard index " + std::to_string(shard.index) + " out of range for " +
             std::to_string(shard.count) + " shards");
  }
  if (num_cells > 0 && shard.count > num_cells) {
    bad_spec("more shards (" + std::to_string(shard.count) + ") than grid cells (" +
             std::to_string(num_cells) + ")");
  }
}

std::uint64_t shard_fingerprint(const ScenarioSpec& spec, const ShardSpec& shard) {
  const std::uint64_t base = spec_fingerprint(spec);
  if (shard.whole_campaign()) return base;
  return splitmix64_mix(base ^ (static_cast<std::uint64_t>(shard.index) << 32 |
                                static_cast<std::uint64_t>(shard.count)));
}

std::uint64_t spec_fingerprint(const ScenarioSpec& spec) {
  const std::string canon = scenario_spec_to_json(spec);
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : canon) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return splitmix64_mix(h);
}

std::string example_spec_json() {
  return R"({
  "name": "example",
  "seed": 2026,
  "trials": 200,
  "topologies": [
    {"family": "debruijn", "base": 2, "digits": 4},
    {"family": "shuffle_exchange", "digits": 4}
  ],
  "spares": [0, 2, 4],
  "fault_models": [
    {"kind": "iid", "p": 0.05},
    {"kind": "clustered", "p": 0.02},
    {"kind": "weibull", "shape": 1.5, "scale": 400.0, "horizon": 60.0},
    {"kind": "adversarial", "p": 0.05},
    {"kind": "block", "p": 0.05, "width": 3}
  ],
  "metrics": ["diameter", "mttf"]
}
)";
}

std::string full_example_spec_json() {
  // Every key the parser understands appears once. The "theta" and "trace"
  // knobs are inert under the hotspot_burst pattern (the canonical form drops
  // them), but they still exercise the parse path — which is the point: this
  // document is the executable companion of docs/SCENARIOS.md.
  return R"({
  "name": "full-example",
  "seed": 2026,
  "trials": 64,
  "topologies": [
    {"family": "debruijn", "base": [2, 3], "digits": 3},
    {"family": "shuffle_exchange", "digits": [3, 4]},
    {"family": "bus", "digits": 3}
  ],
  "spares": [0, 2],
  "fault_models": [
    {"kind": "iid", "p": 0.05},
    {"kind": "clustered", "p": 0.02},
    {"kind": "weibull", "shape": 1.5, "scale": 400.0, "horizon": 60.0},
    {"kind": "adversarial", "p": 0.05},
    {"kind": "block", "p": 0.05, "width": 3},
    {"kind": "bus_iid", "p": 0.04},
    {"kind": "bus_clustered", "p": 0.02}
  ],
  "metrics": ["diameter", "stretch", "mttf", "collective", "traffic"],
  "stretch_sample_pairs": 8,
  "collective_schedule": "all_to_all_bruck",
  "traffic": {
    "pattern": "hotspot_burst",
    "theta": 0.9,
    "hotspots": 2,
    "fraction_hot": 0.5,
    "burst_cycles": 4,
    "packets_per_node": 2,
    "trace": "# replayed only under the trace pattern\n0 0 1\n1 2 3\n"
  }
}
)";
}

}  // namespace ftdb::campaign
