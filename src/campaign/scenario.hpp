// Declarative campaign specifications.
//
// A campaign sweeps a grid of scenarios: topology family instances (de
// Bruijn B_{m,h}, shuffle-exchange SE_h, the Section V bus machine) crossed
// with spare budgets k and fault models, each cell evaluated over a fixed
// number of Monte Carlo trials. The spec is plain JSON (parsed with the
// in-tree bench_json parser) so sweeps are versionable artifacts, and the
// expansion into concrete scenario cells is deterministic: scenario index in
// the expanded list is part of every trial's RNG derivation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bench_json.hpp"

namespace ftdb::campaign {

enum class TopologyFamily { DeBruijn, ShuffleExchange, Bus };

const char* topology_family_name(TopologyFamily family);

/// One concrete topology instance. `base` is only meaningful for the de
/// Bruijn family (the bus machine and SE_h are base-2 constructions).
struct TopologySpec {
  TopologyFamily family = TopologyFamily::DeBruijn;
  std::uint64_t base = 2;  // m
  unsigned digits = 3;     // h

  /// Target size N = m^h (respectively 2^h).
  std::uint64_t target_nodes() const;
  std::string label() const;
};

enum class FaultModelKind {
  IidBernoulli,
  Clustered,
  Weibull,
  Adversarial,
  Block,
  BusIid,
  BusClustered,
};

const char* fault_model_kind_name(FaultModelKind kind);

/// Parameters for one fault process (see fault_models.hpp for semantics).
struct FaultModelSpec {
  FaultModelKind kind = FaultModelKind::IidBernoulli;
  double p = 0.01;        // iid / clustered seed / adversarial budget / block onset probability
  double shape = 1.0;     // Weibull shape (>= ~0.1)
  double scale = 100.0;   // Weibull characteristic life (time steps)
  double horizon = 1.0;   // Weibull observation window: faults = {T_v <= horizon}
  std::uint64_t width = 4;  // block model: maximum block width (>= 1)
  std::string label() const;
};

/// Destination-skewed packet workload for the `traffic` metric. Which fields
/// are meaningful depends on `pattern`:
///   "uniform"       — no extra fields;
///   "zipf"          — `theta` (destination rank r drawn ∝ 1/(r+1)^theta);
///   "hotspot_burst" — `hotspots` hot nodes drawn per trial, taking turns
///                     being hot every `burst_cycles` cycles, each packet
///                     targeting the active one with probability
///                     `fraction_hot`;
///   "trace"         — `trace` holds inline "inject_cycle src dst" lines
///                     (sim::trace_traffic format) replayed verbatim.
/// Packet count per trial is `packets_per_node` x target nodes (traces bring
/// their own). Random draws are counter-based off the trial's own RNG stream,
/// so reports stay byte-identical across threads, shards and resume.
struct TrafficSpec {
  std::string pattern = "uniform";
  double theta = 1.0;
  std::uint64_t hotspots = 1;
  double fraction_hot = 0.5;
  std::uint64_t burst_cycles = 8;
  std::uint64_t packets_per_node = 4;
  std::string trace;
};

/// Which per-trial metrics to evaluate beyond reconfiguration success (which
/// is always measured). The heavier the metric, the more it costs per trial.
struct MetricSet {
  bool diameter = true;  ///< diameter of the post-fault (reconfigured or degraded) machine
  bool stretch = false;  ///< max logical-route stretch (point-to-point families)
  bool mttf = true;      ///< time of the (k+1)-st failure under the model's clock
  /// When nonzero, the stretch metric is evaluated on this many counter-based
  /// random (src, dst) pairs per trial instead of all N^2 — what keeps
  /// stretch affordable on big-N sweeps. Reports stay byte-identical across
  /// thread counts and checkpoint/resume because the pairs come from the
  /// trial's own RNG stream.
  std::uint64_t stretch_sample_pairs = 0;
  /// Execute a collective schedule (sim/schedule.hpp) through the packet
  /// engine every trial: on the reconfigured machine when the embedding
  /// survived, on the degraded bare target otherwise, against a healthy
  /// baseline measured once per cell. Surfaces rounds, hop-cycles, link
  /// congestion and the completion-time slowdown-vs-fault-count curve.
  /// Point-to-point families only (skipped for the bus machine).
  bool collective = false;
  /// Which schedule the collective metric runs (a schedule_kind_name).
  std::string collective_schedule = "all_to_all_bruck";
  /// Run a packet workload (see TrafficSpec) through the engine every trial —
  /// on the reconfigured machine when the embedding survived, on the degraded
  /// bare target otherwise — surfacing delivered fraction, latency and queue
  /// congestion. Point-to-point families only (skipped for the bus machine).
  bool traffic = false;
  /// Workload shape for the traffic metric (only enters the canonical spec
  /// JSON when `traffic` is enabled).
  TrafficSpec traffic_spec;
};

/// The full campaign: the cartesian grid topologies x spares x fault_models,
/// `trials` Monte Carlo trials per cell.
struct ScenarioSpec {
  std::string name = "campaign";
  std::uint64_t seed = 2026;
  std::uint64_t trials = 1000;
  std::vector<TopologySpec> topologies;
  std::vector<unsigned> spares;
  std::vector<FaultModelSpec> fault_models;
  MetricSet metrics;
};

/// One expanded grid cell. `index` is the cell's position in expansion order
/// (topology-major, then spares, then fault model) — the scenario counter in
/// the per-trial RNG derivation, so reordering the spec reshuffles results by
/// design and editing one dimension leaves other cells' trials unchanged.
struct ScenarioCase {
  std::size_t index = 0;
  TopologySpec topology;
  unsigned spares = 0;
  FaultModelSpec fault_model;

  std::string label() const;
};

std::vector<ScenarioCase> expand_grid(const ScenarioSpec& spec);

/// Rough per-trial work estimate for one grid cell, in arbitrary but
/// mutually comparable units. Used only to *order* work (elastic workers
/// lease expensive cells first so the campaign's tail is short), so the
/// model just has to be monotone in the dominant terms: every enabled
/// metric contributes its asymptotic cost at the cell's target size N.
/// Deliberately cheap — no graphs are built.
double predicted_cell_cost(const ScenarioSpec& spec, const ScenarioCase& cell);

/// One machine's slice of a campaign: shard `index` of `count` owns every
/// grid cell whose expansion index is congruent to `index` mod `count`. The
/// round-robin partition is deterministic and spreads the expensive cells
/// (which cluster at neighboring grid positions) across machines. count <= 1
/// means the whole campaign.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  bool whole_campaign() const { return count <= 1; }
  bool owns(std::size_t cell_index) const {
    return count <= 1 || cell_index % count == index;
  }
  std::string label() const;
};

/// Throws std::runtime_error unless index < count and count >= 1.
void validate_shard(const ShardSpec& shard, std::size_t num_cells);

/// Compatibility stamp of one shard of one spec: mixes spec_fingerprint with
/// the shard coordinates, so a partial checkpoint can prove both which
/// campaign and which slice of it produced the data. Equal to
/// spec_fingerprint(spec) for a whole-campaign shard, keeping unsharded
/// checkpoints' stamps stable.
std::uint64_t shard_fingerprint(const ScenarioSpec& spec, const ShardSpec& shard);

/// Parses a campaign spec document; throws std::runtime_error with a
/// field-level message on malformed or out-of-range input.
ScenarioSpec parse_scenario_spec(const std::string& json_text);

/// Canonical JSON form of the spec (stable field order; reparsing yields an
/// equivalent spec). Embedded in reports and checkpoints.
std::string scenario_spec_to_json(const ScenarioSpec& spec);

/// Same, but nested into an in-flight writer (report.cpp embeds the spec in
/// the campaign report document).
void write_scenario_spec(analysis::JsonWriter& w, const ScenarioSpec& spec);

/// FNV-1a hash of the canonical JSON — the compatibility stamp checked when
/// resuming from a checkpoint.
std::uint64_t spec_fingerprint(const ScenarioSpec& spec);

/// A small ready-to-run example spec (also used by the CI smoke job): two
/// topology families x three spare levels x four fault models.
std::string example_spec_json();

/// A kitchen-sink spec exercising every key the parser accepts: all three
/// topology families (with list-valued base/digits), all seven fault models,
/// every metric, and every traffic knob. `ftdb_campaign example-spec --full`
/// emits it and the docs-check CI job round-trips it through `validate-spec`,
/// so a key added to the parser without documentation coverage fails CI.
std::string full_example_spec_json();

}  // namespace ftdb::campaign
