#include "ft/bus_ft.hpp"

#include <algorithm>

#include "ft/modmath.hpp"
#include "topology/labels.hpp"

namespace ftdb {

BusGraph bus_debruijn_base2(unsigned h) {
  const std::uint64_t n = labels::ipow_checked(2, h);
  std::vector<Bus> buses;
  buses.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bus b;
    b.driver = static_cast<NodeId>(i);
    b.members = {static_cast<NodeId>(2 * i % n), static_cast<NodeId>((2 * i + 1) % n)};
    buses.push_back(std::move(b));
  }
  return BusGraph(n, std::move(buses));
}

BusGraph bus_ft_debruijn_base2(unsigned h, unsigned k) {
  const std::uint64_t n = labels::ipow_checked(2, h) + k;
  const auto s = static_cast<std::int64_t>(n);
  std::vector<Bus> buses;
  buses.reserve(n);
  for (std::int64_t i = 0; i < s; ++i) {
    Bus b;
    b.driver = static_cast<NodeId>(i);
    b.members.reserve(2 * k + 2);
    // Block of 2k+2 consecutive nodes starting at (2i - k) mod (2^h + k).
    for (std::int64_t c = -static_cast<std::int64_t>(k); c <= static_cast<std::int64_t>(k) + 1;
         ++c) {
      b.members.push_back(static_cast<NodeId>(ft::affine_mod(i, 2, c, s)));
    }
    buses.push_back(std::move(b));
  }
  return BusGraph(n, std::move(buses));
}

std::uint64_t bus_ft_degree_bound(unsigned k) { return 2ull * k + 3; }

bool bus_monotone_embedding_survives(const Graph& target, const BusGraph& fabric,
                                     const FaultSet& faults) {
  const std::vector<NodeId> phi = monotone_embedding(faults);
  if (phi.size() < target.num_nodes()) return false;
  for (std::size_t x = 0; x < target.num_nodes(); ++x) {
    for (NodeId y : target.neighbors(static_cast<NodeId>(x))) {
      if (static_cast<NodeId>(x) >= y) continue;
      if (!fabric.can_communicate(phi[x], phi[y])) return false;
    }
  }
  return true;
}

std::optional<FaultSet> resolve_bus_faults(const BusGraph& fabric, unsigned k,
                                           const std::vector<NodeId>& node_faults,
                                           const std::vector<std::uint32_t>& bus_faults) {
  std::vector<NodeId> merged = fabric.bus_faults_to_node_faults(bus_faults);
  merged.insert(merged.end(), node_faults.begin(), node_faults.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  if (merged.size() > k) return std::nullopt;
  return FaultSet(fabric.num_nodes(), std::move(merged));
}

}  // namespace ftdb
