// Bus implementations of Section V.
//
// In B_{2,h}, node i's two out-links (to 2i mod 2^h and 2i+1 mod 2^h) are
// replaced by one bus {i} U {2i, 2i+1}. In B^k_{2,h}, node i's block of 2k+2
// out-links is replaced by a single bus from i to the block of 2k+2
// consecutive nodes starting at (2i - k) mod (2^h + k). The resulting bus
// architecture has degree (bus incidences per node) 2k+3, and bus faults are
// tolerated by treating the faulty bus's driver node as faulty.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/bus_graph.hpp"
#include "graph/embedding.hpp"
#include "ft/reconfigure.hpp"

namespace ftdb {

/// Bus implementation of the fault-free B_{2,h} (paper's opening example of
/// Section V): one bus per node, 3 incidences per node.
BusGraph bus_debruijn_base2(unsigned h);

/// Bus implementation of B^k_{2,h} (Fig. 4 shows h = 3, k = 1).
BusGraph bus_ft_debruijn_base2(unsigned h, unsigned k);

/// Section V degree claim: 2k+3 incidences per node.
std::uint64_t bus_ft_degree_bound(unsigned k);

/// Checks that the reconfigured target survives on the bus architecture: for
/// every edge (x, y) of B_{2,h}, phi(x) and phi(y) must share a bus in the
/// restricted driver<->member discipline. This mirrors
/// monotone_embedding_survives for the bus fabric.
bool bus_monotone_embedding_survives(const Graph& target, const BusGraph& fabric,
                                     const FaultSet& faults);

/// Combined node + bus fault handling: converts bus faults to driver-node
/// faults (Section V), merges with the node faults, and returns the resulting
/// fault set, or nullopt when the combined count exceeds k.
std::optional<FaultSet> resolve_bus_faults(const BusGraph& fabric, unsigned k,
                                           const std::vector<NodeId>& node_faults,
                                           const std::vector<std::uint32_t>& bus_faults);

}  // namespace ftdb
