#include "ft/degree_explorer.hpp"

#include <algorithm>
#include <stdexcept>

#include "ft/ft_debruijn.hpp"
#include "ft/modmath.hpp"
#include "ft/reconfigure.hpp"
#include "ft/tolerance.hpp"
#include "topology/debruijn.hpp"
#include "topology/labels.hpp"

namespace ftdb {

namespace {

void validate(const ExplorerParams& params) {
  if (params.spares < params.tolerate) {
    throw std::invalid_argument("degree explorer: spares must be >= tolerate");
  }
  if (params.base < 2) throw std::invalid_argument("degree explorer: base must be >= 2");
}

}  // namespace

Graph ft_debruijn_graph_offset_set(const ExplorerParams& params,
                                   const std::vector<std::int64_t>& offsets) {
  validate(params);
  const std::uint64_t n = labels::ipow_checked(params.base, params.digits) + params.spares;
  const auto s = static_cast<std::int64_t>(n);
  GraphBuilder builder(n);
  builder.reserve_edges(static_cast<std::size_t>(n) * offsets.size());
  for (std::int64_t x = 0; x < s; ++x) {
    for (std::int64_t r : offsets) {
      builder.add_edge(static_cast<NodeId>(x),
                       static_cast<NodeId>(ft::affine_mod(x, static_cast<std::int64_t>(params.base), r, s)));
    }
  }
  return builder.build();
}

bool offset_set_is_tolerant(const ExplorerParams& params,
                            const std::vector<std::int64_t>& offsets) {
  validate(params);
  const Graph target = debruijn_graph({.base = params.base, .digits = params.digits});
  const Graph g = ft_debruijn_graph_offset_set(params, offsets);
  return check_tolerance_exhaustive(target, g, params.tolerate).tolerant;
}

ExplorationResult minimize_offsets_greedy(const ExplorerParams& params) {
  validate(params);
  // Starting offset set. For c = k spares this is the paper's interval
  // [(m-1)(-k), (m-1)(k+1)]. With c > k spares the wrap-around term in the
  // Theorem 1/2 algebra becomes c instead of k (y wraps by m^h, phi(y) by
  // m^h + c), so the no-wrap case needs [(m-1)(-k), (m-1)k + (m-1)] and the
  // wrap case needs it shifted up by (c - k)t for wrap count t in [1, m-1]:
  // the union over t of [(m-1)(-k) + (c-k)t, (m-1)(k+1) + (c-k)t].
  const auto m = static_cast<std::int64_t>(params.base);
  const auto k = static_cast<std::int64_t>(params.tolerate);
  const auto c = static_cast<std::int64_t>(params.spares);
  std::vector<std::int64_t> offsets;
  for (std::int64_t t = 0; t <= m - 1; ++t) {
    const std::int64_t shift = (c - k) * t;
    for (std::int64_t r = (m - 1) * (-k) + shift; r <= (m - 1) * (k + 1) + shift; ++r) {
      if (std::find(offsets.begin(), offsets.end(), r) == offsets.end()) offsets.push_back(r);
    }
  }
  std::sort(offsets.begin(), offsets.end());

  ExplorationResult result;
  result.paper_degree = ft_debruijn_graph_offset_set(params, offsets).max_degree();
  if (!offset_set_is_tolerant(params, offsets)) {
    // The generalized interval must cover every case by the algebra above;
    // reaching this indicates a regression, so surface it loudly.
    throw std::logic_error("minimize_offsets_greedy: generalized interval not tolerant");
  }

  // Drop offsets one at a time, preferring the extremes (they contribute the
  // rarest edges), until no single removal preserves tolerance.
  bool changed = true;
  while (changed) {
    changed = false;
    // Try candidates ordered by |r| descending so we shed extremes first.
    std::vector<std::int64_t> candidates = offsets;
    std::sort(candidates.begin(), candidates.end(), [](std::int64_t a, std::int64_t b) {
      return std::abs(a) > std::abs(b);
    });
    for (std::int64_t r : candidates) {
      std::vector<std::int64_t> trial;
      trial.reserve(offsets.size() - 1);
      for (std::int64_t o : offsets) {
        if (o != r) trial.push_back(o);
      }
      if (offset_set_is_tolerant(params, trial)) {
        offsets = std::move(trial);
        changed = true;
        result.paper_interval_minimal = false;
        break;
      }
    }
  }
  result.max_degree = ft_debruijn_graph_offset_set(params, offsets).max_degree();
  result.offsets = std::move(offsets);
  return result;
}

std::vector<ExplorationResult> degree_vs_spares(std::uint64_t base, unsigned digits,
                                                unsigned tolerate, unsigned max_spares) {
  std::vector<ExplorationResult> out;
  for (unsigned c = tolerate; c <= max_spares; ++c) {
    out.push_back(minimize_offsets_greedy(
        {.base = base, .digits = digits, .tolerate = tolerate, .spares = c}));
  }
  return out;
}

}  // namespace ftdb
