// Empirical exploration of the paper's open problems (Section VI):
//
//  * "it has not been proven that the given constructions have the smallest
//    possible degrees ... it would be interesting to prove lower bounds" —
//    we search, for small instances, the minimal offset sets that keep the
//    monotone-reconfiguration construction (k, B_{m,h})-tolerant, giving an
//    empirical lower bound on the degree achievable within this construction
//    family.
//
//  * "other techniques, such as adding more than k spare nodes, could be used
//    to reduce the degrees still further" — the search is parameterized by
//    the spare count c >= k so the spares-vs-degree tradeoff can be measured.
//
// Offset sets here generalize the paper's contiguous interval to arbitrary
// subsets of offsets; the FT graph has an edge (x, y) iff y = X(x, m, r, s)
// for some chosen r (or symmetrically), s = m^h + c.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb {

struct ExplorerParams {
  std::uint64_t base = 2;   // m
  unsigned digits = 3;      // h
  unsigned tolerate = 1;    // k — fault budget to verify against
  unsigned spares = 1;      // c >= k — actual spare count of the graph
};

/// Builds the generalized FT de Bruijn graph from an arbitrary offset set.
Graph ft_debruijn_graph_offset_set(const ExplorerParams& params,
                                   const std::vector<std::int64_t>& offsets);

/// True when the offset-set graph tolerates every fault set of size
/// `tolerate` under monotone reconfiguration (exhaustive).
bool offset_set_is_tolerant(const ExplorerParams& params,
                            const std::vector<std::int64_t>& offsets);

struct ExplorationResult {
  std::vector<std::int64_t> offsets;  // a minimal tolerant offset set found
  std::size_t max_degree = 0;         // degree of the resulting graph
  /// Measured degree of the *starting* interval (for c = k spares this is the
  /// paper's interval; for c > k it is the generalized interval, which is
  /// provably wider — see minimize_offsets_greedy).
  std::uint64_t paper_degree = 0;
  bool paper_interval_minimal = true;  // no offset of the starting interval droppable
};

/// Greedy minimization: start from the (generalized) tolerant interval and
/// repeatedly drop any offset whose removal preserves tolerance (checking
/// exhaustively). The result is a locally minimal offset set — an upper bound
/// on the best degree achievable in this family, and evidence about whether
/// the paper's interval is tight. For c > k spares the wrap-around term of
/// the Theorem 1/2 algebra grows from k to c, so the starting interval is the
/// union over wrap counts t of the paper interval shifted by (c-k)t — extra
/// spares *widen* the required offsets in this construction family, a
/// negative empirical answer to the Section VI conjecture (within the
/// monotone-reconfiguration family).
ExplorationResult minimize_offsets_greedy(const ExplorerParams& params);

/// The spares-vs-degree tradeoff: for c = k .. max_spares, greedily minimize
/// and report the achieved degree. Answers (empirically, for small instances)
/// the paper's conjecture that extra spares might reduce the degree.
std::vector<ExplorationResult> degree_vs_spares(std::uint64_t base, unsigned digits,
                                                unsigned tolerate, unsigned max_spares);

}  // namespace ftdb
