#include "ft/ft_debruijn.hpp"

#include <stdexcept>

#include "ft/modmath.hpp"
#include "topology/labels.hpp"

namespace ftdb {

std::uint64_t ft_debruijn_num_nodes(const FtDeBruijnParams& params) {
  if (params.base < 2) throw std::invalid_argument("ft_debruijn: base must be >= 2");
  if (params.digits < 1) throw std::invalid_argument("ft_debruijn: digits must be >= 1");
  return labels::ipow_checked(params.base, params.digits) + params.spares;
}

OffsetRange ft_debruijn_offsets(const FtDeBruijnParams& params) {
  const auto m = static_cast<std::int64_t>(params.base);
  const auto k = static_cast<std::int64_t>(params.spares);
  return OffsetRange{(m - 1) * (-k), (m - 1) * (k + 1)};
}

Graph ft_debruijn_graph_custom_offsets(std::uint64_t base, unsigned digits, unsigned spares,
                                       OffsetRange offsets) {
  if (base < 2) throw std::invalid_argument("ft_debruijn: base must be >= 2");
  const std::uint64_t n = labels::ipow_checked(base, digits) + spares;
  const auto s = static_cast<std::int64_t>(n);
  GraphBuilder builder(n);
  builder.reserve_edges(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(offsets.hi - offsets.lo + 1));
  for (std::int64_t x = 0; x < s; ++x) {
    for (std::int64_t r = offsets.lo; r <= offsets.hi; ++r) {
      const std::int64_t y = ft::affine_mod(x, static_cast<std::int64_t>(base), r, s);
      builder.add_edge(static_cast<NodeId>(x), static_cast<NodeId>(y));
    }
  }
  return builder.build();
}

Graph ft_debruijn_graph(const FtDeBruijnParams& params) {
  return ft_debruijn_graph_custom_offsets(params.base, params.digits, params.spares,
                                          ft_debruijn_offsets(params));
}

Graph ft_debruijn_base2(unsigned h, unsigned k) {
  return ft_debruijn_graph({.base = 2, .digits = h, .spares = k});
}

std::uint64_t ft_debruijn_degree_bound(const FtDeBruijnParams& params) {
  // Corollary 3: degree <= (m-1) * 4k + 2m; for m = 2 this is 4k + 4.
  return (params.base - 1) * 4 * params.spares + 2 * params.base;
}

}  // namespace ftdb
