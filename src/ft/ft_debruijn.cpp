#include "ft/ft_debruijn.hpp"

#include <stdexcept>
#include <utility>

#include "ft/modmath.hpp"
#include "graph/csr.hpp"
#include "topology/labels.hpp"

namespace ftdb {

std::uint64_t ft_debruijn_num_nodes(const FtDeBruijnParams& params) {
  if (params.base < 2) throw std::invalid_argument("ft_debruijn: base must be >= 2");
  if (params.digits < 1) throw std::invalid_argument("ft_debruijn: digits must be >= 1");
  return labels::ipow_checked(params.base, params.digits) + params.spares;
}

OffsetRange ft_debruijn_offsets(const FtDeBruijnParams& params) {
  const auto m = static_cast<std::int64_t>(params.base);
  const auto k = static_cast<std::int64_t>(params.spares);
  return OffsetRange{(m - 1) * (-k), (m - 1) * (k + 1)};
}

Graph ft_debruijn_graph_custom_offsets(std::uint64_t base, unsigned digits, unsigned spares,
                                       OffsetRange offsets) {
  if (base < 2) throw std::invalid_argument("ft_debruijn: base must be >= 2");
  const std::uint64_t n = labels::ipow_checked(base, digits) + spares;
  const auto s = static_cast<std::int64_t>(n);
  const auto m = static_cast<std::int64_t>(base);
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) *
                 static_cast<std::size_t>(offsets.hi - offsets.lo + 1) * 2);
  auto emit = [&](std::int64_t x, std::int64_t y) {
    csr::emit_undirected(halves, static_cast<NodeId>(x), static_cast<NodeId>(y));
  };
  if (m >= s) {  // degenerate shapes (m^h + k <= m): keep the plain modulus
    for (std::int64_t x = 0; x < s; ++x) {
      for (std::int64_t r = offsets.lo; r <= offsets.hi; ++r) {
        emit(x, ft::affine_mod(x, m, r, s));
      }
    }
  } else {
    // Fixed r, ascending x: y = X(x, m, r, s) advances by m per step, so the
    // modulus reduces to a conditional subtract — one division per offset
    // family instead of one per arc. Emission order is irrelevant; the
    // counting-sort CSR canonicalizes it.
    for (std::int64_t r = offsets.lo; r <= offsets.hi; ++r) {
      std::int64_t y = ft::affine_mod(0, m, r, s);
      for (std::int64_t x = 0; x < s; ++x) {
        emit(x, y);
        y += m;
        if (y >= s) y -= s;
      }
    }
  }
  return GraphBuilder::from_half_edges(n, halves);
}

Graph ft_debruijn_graph(const FtDeBruijnParams& params) {
  return ft_debruijn_graph_custom_offsets(params.base, params.digits, params.spares,
                                          ft_debruijn_offsets(params));
}

Graph ft_debruijn_base2(unsigned h, unsigned k) {
  return ft_debruijn_graph({.base = 2, .digits = h, .spares = k});
}

std::uint64_t ft_debruijn_degree_bound(const FtDeBruijnParams& params) {
  // Corollary 3: degree <= (m-1) * 4k + 2m; for m = 2 this is 4k + 4.
  return (params.base - 1) * 4 * params.spares + 2 * params.base;
}

}  // namespace ftdb
