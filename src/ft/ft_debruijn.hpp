// The paper's fault-tolerant de Bruijn graphs (Sections III.B and IV.A).
//
// B^k_{m,h} has m^h + k nodes; (x, y) is an edge iff there is an offset
// r in { (m-1)(-k), ..., (m-1)(k+1) } with y = X(x, m, r, m^h + k) or
// x = X(y, m, r, m^h + k). Theorem 1/2: B^k_{m,h} is (k, B_{m,h})-tolerant.
// Corollaries: degree <= 4k+4 (m = 2) and <= 4(m-1)k + 2m in general, with
// exactly m^h + k nodes — the minimum possible for tolerating k faults.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {

struct FtDeBruijnParams {
  std::uint64_t base = 2;   // m >= 2
  unsigned digits = 3;      // h (paper assumes h >= 3)
  unsigned spares = 1;      // k >= 0 — the number of tolerated node faults
};

/// m^h + k.
std::uint64_t ft_debruijn_num_nodes(const FtDeBruijnParams& params);

/// Inclusive offset range of the construction:
/// r in [ (m-1)(-k), (m-1)(k+1) ].
struct OffsetRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};
OffsetRange ft_debruijn_offsets(const FtDeBruijnParams& params);

/// Builds B^k_{m,h}. With k = 0 this degenerates to B_{m,h} exactly
/// (B^0_{m,h} == B_{m,h}, noted in the paper as B^k containing B).
Graph ft_debruijn_graph(const FtDeBruijnParams& params);

/// Convenience for the base-2 construction B^k_{2,h} of Section III.
Graph ft_debruijn_base2(unsigned h, unsigned k);

/// Paper degree bounds (Corollaries 1 and 3).
std::uint64_t ft_debruijn_degree_bound(const FtDeBruijnParams& params);

/// A *generalized* construction with an arbitrary offset interval, used by the
/// offset-ablation experiment (shrinking the interval below the paper's range
/// must break tolerance, demonstrating the edge set is not padded).
Graph ft_debruijn_graph_custom_offsets(std::uint64_t base, unsigned digits, unsigned spares,
                                       OffsetRange offsets);

}  // namespace ftdb
