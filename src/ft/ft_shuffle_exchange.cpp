#include "ft/ft_shuffle_exchange.hpp"

#include <map>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <utility>

#include "ft/ft_debruijn.hpp"
#include "graph/csr.hpp"
#include "ft/modmath.hpp"
#include "topology/debruijn.hpp"
#include "topology/labels.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb {

std::optional<Embedding> find_se_in_debruijn(unsigned h, const EmbeddingSearchOptions& options) {
  // The embedding search is expensive and its result depends only on `h`, so
  // it is memoized process-wide. The cache is hit concurrently by the
  // multi-threaded bench runner: reads take a shared lock (the common case
  // once warm), and only a successful search takes the exclusive lock.
  // Failed searches are not cached — a later caller with a larger step
  // budget must be allowed to retry.
  static std::shared_mutex mutex;
  static std::map<unsigned, Embedding> cache;
  {
    std::shared_lock lock(mutex);
    auto it = cache.find(h);
    if (it != cache.end()) return it->second;
  }
  const Graph se = shuffle_exchange_graph(h);
  const Graph db = debruijn_base2(h);
  auto embedding = find_subgraph_embedding(se, db, options);
  if (embedding.has_value()) {
    std::unique_lock lock(mutex);
    cache.emplace(h, *embedding);
  }
  return embedding;
}

FtShuffleExchange ft_shuffle_exchange_via_debruijn(unsigned h, unsigned k,
                                                   const EmbeddingSearchOptions& options) {
  auto sigma = find_se_in_debruijn(h, options);
  if (!sigma.has_value()) {
    throw std::runtime_error(
        "ft_shuffle_exchange_via_debruijn: SE -> de Bruijn containment embedding not found "
        "within the step budget (try a larger max_steps)");
  }
  return FtShuffleExchange{ft_debruijn_base2(h, k), std::move(*sigma), h, k};
}

SeOffsets ft_se_natural_offsets(unsigned k) {
  const auto kk = static_cast<std::int64_t>(k);
  return SeOffsets{-kk, kk + 1, kk + 1};
}

Graph ft_se_natural_graph_custom(unsigned h, unsigned k, const SeOffsets& offsets) {
  const std::uint64_t n = labels::ipow_checked(2, h) + k;
  const auto s = static_cast<std::int64_t>(n);
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) *
                 (static_cast<std::size_t>(offsets.shuffle_hi - offsets.shuffle_lo + 1) +
                  static_cast<std::size_t>(offsets.exchange_hi)) *
                 2);
  auto emit = [&](std::int64_t x, std::int64_t y) {
    csr::emit_undirected(halves, static_cast<NodeId>(x), static_cast<NodeId>(y));
  };
  // Shuffle family: the SE shuffle edge is y = X(x, 2, msb(x), 2^h); after
  // reconfiguration the offset drifts exactly as in Theorem 1, so the same
  // interval [-k, k+1] suffices. Fixed r, ascending x: the modulus reduces
  // to a conditional subtract (s > 2 always since h >= 1).
  for (std::int64_t r = offsets.shuffle_lo; r <= offsets.shuffle_hi; ++r) {
    std::int64_t y = ft::affine_mod(0, 2, r, s);
    for (std::int64_t x = 0; x < s; ++x) {
      emit(x, y);
      y += 2;
      if (y >= s) y -= s;
    }
  }
  // Exchange family: the SE exchange edge y = x ^ 1 never wraps, and under
  // the monotone embedding the images differ by 1 + (delta_y - delta_x)
  // in [1, k+1] (from the even endpoint). Plain integer edges, no modulus.
  for (std::int64_t e = 1; e <= offsets.exchange_hi; ++e) {
    for (std::int64_t x = 0; x + e < s; ++x) emit(x, x + e);
  }
  return GraphBuilder::from_half_edges(n, halves);
}

FtShuffleExchange ft_shuffle_exchange_natural(unsigned h, unsigned k) {
  return FtShuffleExchange{ft_se_natural_graph_custom(h, k, ft_se_natural_offsets(k)),
                           identity_embedding(labels::ipow_checked(2, h)), h, k};
}

std::uint64_t ft_se_natural_degree_bound_paper(unsigned k) { return 6ull * k + 4; }

std::uint64_t ft_se_natural_degree_bound_ours(unsigned k) { return 6ull * k + 6; }

std::optional<Embedding> reconfigure(const FtShuffleExchange& machine, const FaultSet& faults) {
  if (faults.count() > machine.k) return std::nullopt;
  if (faults.universe() != machine.ft_graph.num_nodes()) {
    throw std::invalid_argument("reconfigure: fault set universe mismatch");
  }
  const std::vector<NodeId> phi = monotone_embedding(faults);
  // With fewer than k faults the survivor count exceeds the logical target
  // size; the monotone embedding still provides images for all logical nodes.
  return compose(machine.se_to_logical, phi);
}

}  // namespace ftdb
