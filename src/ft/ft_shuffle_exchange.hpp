// Fault-tolerant shuffle-exchange networks (end of Section I / Section VI).
//
// The paper gives two routes:
//
//  1. Via containment: SE_h is a subgraph of B_{2,h} of the same size
//     (Feldmann/Unger, reference [7]), so B^k_{2,h} is automatically
//     (k, SE_h)-tolerant with degree 4k+4. The target-to-FT map is the
//     composition of the containment embedding sigma with the monotone rank
//     embedding phi.
//
//  2. Via the natural labeling: applying the Section III technique directly
//     to SE_h (nodes keep their binary labels) yields a dedicated graph; the
//     paper quotes degree 6k+4 for it. Our edge set is derived from the same
//     Lemma 1/2 analysis specialized to SE's two edge families:
//       shuffle   y = X(x, 2, r_x, 2^h)  =>  offsets r in [-k, k+1]  (as in B^k_{2,h})
//       exchange  y = x +- 1 (never wraps) =>  offsets e in [1, k+1]
//     The shuffle family contributes up to 2(2k+2) incidences per node and
//     the exchange family 2(k+1), so the measured degree is <= 6k+6
//     (attained for h >= 5); the paper's 6k+4 figure reflects a slightly
//     trimmed edge set it does not spell out. Tolerance of our edge set is
//     verified exhaustively by the test suite; either way the via-de-Bruijn
//     route's 4k+4 is strictly better, which is the paper's own conclusion.
#pragma once

#include <optional>

#include "graph/embedding.hpp"
#include "graph/graph.hpp"
#include "ft/reconfigure.hpp"

namespace ftdb {

/// Route 1: searches for the Feldmann–Unger containment SE_h -> B_{2,h} with
/// the VF2 engine. Results are memoized per h. Practical for h <= 6.
std::optional<Embedding> find_se_in_debruijn(unsigned h,
                                             const EmbeddingSearchOptions& options = {});

/// A fault-tolerant shuffle-exchange "machine": the FT graph plus the static
/// part of the embedding pipeline.
struct FtShuffleExchange {
  Graph ft_graph;          // the physical interconnect
  Embedding se_to_logical; // SE_h -> logical node space of the FT graph's target
  unsigned h = 0;
  unsigned k = 0;
};

/// Route 1 construction: ft_graph = B^k_{2,h}, se_to_logical = sigma.
/// Throws std::runtime_error if the containment embedding cannot be found
/// within the step budget.
FtShuffleExchange ft_shuffle_exchange_via_debruijn(unsigned h, unsigned k,
                                                   const EmbeddingSearchOptions& options = {});

/// Route 2 construction: dedicated natural-labeling FT-SE graph on 2^h + k
/// nodes; se_to_logical is the identity.
FtShuffleExchange ft_shuffle_exchange_natural(unsigned h, unsigned k);

/// Offsets used by the natural construction (exposed for the ablation bench).
struct SeOffsets {
  std::int64_t shuffle_lo = 0;
  std::int64_t shuffle_hi = 0;
  std::int64_t exchange_hi = 0;  // exchange offsets are {1..exchange_hi} (and mirrored)
};
SeOffsets ft_se_natural_offsets(unsigned k);

/// Natural-labeling FT-SE with custom offsets, for the ablation experiment.
Graph ft_se_natural_graph_custom(unsigned h, unsigned k, const SeOffsets& offsets);

/// The paper's degree figure for the natural labeling (6k+4); our measured
/// degree is at most 5k+5. Both are reported by the degree-bound table bench.
std::uint64_t ft_se_natural_degree_bound_paper(unsigned k);
std::uint64_t ft_se_natural_degree_bound_ours(unsigned k);

/// Full reconfiguration: given faults on the FT machine, produce the map
/// SE_h -> surviving physical nodes (phi o sigma). Returns nullopt when more
/// than k faults were supplied.
std::optional<Embedding> reconfigure(const FtShuffleExchange& machine, const FaultSet& faults);

}  // namespace ftdb
