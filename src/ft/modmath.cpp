#include "ft/modmath.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftdb::ft {

std::int64_t affine_mod(std::int64_t z, std::int64_t m, std::int64_t r, std::int64_t s) {
  if (s <= 0) throw std::invalid_argument("affine_mod: modulus must be positive");
  const std::int64_t raw = (z * m + r) % s;
  return raw < 0 ? raw + s : raw;
}

std::size_t rank_in_sorted(std::int64_t z, const std::vector<std::int64_t>& sorted_set) {
  return static_cast<std::size_t>(
      std::lower_bound(sorted_set.begin(), sorted_set.end(), z) - sorted_set.begin());
}

std::int64_t wrap_count(std::int64_t x, std::int64_t m, std::int64_t r, std::int64_t s) {
  const std::int64_t y = affine_mod(x, m, r, s);
  // y = m*x + r - t*s exactly.
  return (m * x + r - y) / s;
}

}  // namespace ftdb::ft
