// The algebraic primitives of Section II:
//   X(z, m, r, s) = (z*m + r) mod s        (with possibly negative r)
//   Rank(z, S)    = |{ y in S : y < z }|
// plus the exact wrap-count decomposition used by Lemmas 2 and 3.
#pragma once

#include <cstdint>
#include <vector>

namespace ftdb::ft {

/// X(z, m, r, s) with a signed offset r. All arithmetic in 64 bits; the
/// result is the canonical representative in [0, s).
std::int64_t affine_mod(std::int64_t z, std::int64_t m, std::int64_t r, std::int64_t s);

/// Rank of z in a *sorted* vector S (number of elements strictly smaller).
std::size_t rank_in_sorted(std::int64_t z, const std::vector<std::int64_t>& sorted_set);

/// Wrap count t such that y = m*x + r - t*s for y = affine_mod(x, m, r, s)
/// with r in [0, m). Lemma 2 (base 2) / Lemma 3 (base m) constrain t:
///   x < y  =>  t in {0, .., m-2}
///   x > y  =>  t in {1, .., m-1}
std::int64_t wrap_count(std::int64_t x, std::int64_t m, std::int64_t r, std::int64_t s);

}  // namespace ftdb::ft
