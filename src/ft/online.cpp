#include "ft/online.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "ft/tolerance.hpp"

namespace ftdb {

OnlineReconfigurator::OnlineReconfigurator(Graph ft_graph, Graph target)
    : ft_graph_(std::move(ft_graph)), target_(std::move(target)) {
  if (ft_graph_.num_nodes() < target_.num_nodes()) {
    throw std::invalid_argument("OnlineReconfigurator: FT graph smaller than target");
  }
  budget_ = ft_graph_.num_nodes() - target_.num_nodes();
  recompute();
}

void OnlineReconfigurator::recompute() {
  const FaultSet faults(ft_graph_.num_nodes(), retired_);
  const auto survivors = monotone_embedding(faults);
  phi_.assign(survivors.begin(),
              survivors.begin() + static_cast<std::ptrdiff_t>(target_.num_nodes()));
}

EventStatus OnlineReconfigurator::apply(const FaultEvent& event) {
  // Validate every referenced node before any state is consulted, so a
  // malformed event can never be half-processed (the serving layer journals
  // events only after this validation passes).
  if (event.node >= ft_graph_.num_nodes()) {
    throw std::out_of_range("OnlineReconfigurator::apply: node out of range");
  }
  NodeId victim = kInvalidNode;
  switch (event.kind) {
    case FaultKind::kNode:
    case FaultKind::kBus:
      // A bus fault retires its driver (Section V).
      victim = event.node;
      break;
    case FaultKind::kLink: {
      if (event.other >= ft_graph_.num_nodes()) {
        throw std::out_of_range("OnlineReconfigurator::apply: link endpoint out of range");
      }
      if (event.node == event.other) {
        throw std::invalid_argument("OnlineReconfigurator::apply: self-link fault");
      }
      // Retire one incident endpoint; if either endpoint — or both — is
      // already retired the link is already out of service, so the event is
      // absorbed without retiring a further node or touching the budget.
      const bool node_retired =
          std::binary_search(retired_.begin(), retired_.end(), event.node);
      const bool other_retired =
          std::binary_search(retired_.begin(), retired_.end(), event.other);
      if (node_retired || other_retired) return EventStatus::kRedundant;
      victim = event.node;
      break;
    }
  }
  if (std::binary_search(retired_.begin(), retired_.end(), victim)) {
    return EventStatus::kRedundant;
  }
  if (retired_.size() >= budget_) return EventStatus::kBudgetExhausted;
  retired_.insert(std::upper_bound(retired_.begin(), retired_.end(), victim), victim);
  recompute();
  return EventStatus::kAccepted;
}

bool OnlineReconfigurator::repair(NodeId node) {
  const auto it = std::lower_bound(retired_.begin(), retired_.end(), node);
  if (it == retired_.end() || *it != node) return false;
  retired_.erase(it);
  recompute();
  return true;
}

std::vector<NodeId> OnlineReconfigurator::inverse_mapping() const {
  return inverse_embedding(phi_, ft_graph_.num_nodes());
}

bool OnlineReconfigurator::invariant_holds() const {
  const FaultSet faults(ft_graph_.num_nodes(), retired_);
  return monotone_embedding_survives(target_, ft_graph_, faults);
}

std::string OnlineReconfigurator::status_line() const {
  std::ostringstream out;
  out << "machine: " << target_.num_nodes() << " logical on " << ft_graph_.num_nodes()
      << " physical, " << retired_.size() << "/" << budget_ << " spares consumed, invariant "
      << (invariant_holds() ? "OK" : "VIOLATED");
  return out.str();
}

}  // namespace ftdb
