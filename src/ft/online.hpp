// Online reconfiguration manager — the operational wrapper a real machine
// would run. Faults arrive one at a time (nodes, links, buses); the manager
// normalizes each to node faults (links and buses by the paper's
// incident-node / driver-node rules), maintains the current monotone
// embedding incrementally, and refuses events that would exhaust the spare
// budget. Repair events return a node to service and re-tighten the mapping.
//
// The invariant maintained after every accepted event is exactly Theorem 1/2:
// every target edge is carried by a healthy physical link.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "ft/reconfigure.hpp"

namespace ftdb {

enum class FaultKind : std::uint8_t {
  kNode,  // processor failure
  kLink,  // point-to-point link failure (u, v) — one incident node retired
  kBus,   // bus failure — the driver node is retired (Section V rule)
};

struct FaultEvent {
  FaultKind kind = FaultKind::kNode;
  NodeId node = 0;    // kNode: the node; kBus: the bus driver
  NodeId other = 0;   // kLink: the second endpoint
};

enum class EventStatus : std::uint8_t {
  kAccepted,        // applied; machine reconfigured
  kRedundant,       // the normalized node was already retired
  kBudgetExhausted, // would exceed k retired nodes — machine must halt
};

/// Tracks the fault state of one fault-tolerant machine instance.
class OnlineReconfigurator {
 public:
  /// `ft_graph` is the physical interconnect (N + k nodes), `target` the
  /// logical topology (N nodes); k = ft_graph.nodes - target.nodes.
  OnlineReconfigurator(Graph ft_graph, Graph target);

  std::size_t spare_budget() const { return budget_; }
  std::size_t faults_outstanding() const { return retired_.size(); }
  std::size_t spares_remaining() const { return budget_ - retired_.size(); }

  /// Applies one fault event. kLink events retire the incident endpoint that
  /// is not yet retired (preferring the one covering more previously seen
  /// faulty links is unnecessary — one endpoint suffices per the paper).
  EventStatus apply(const FaultEvent& event);

  /// Returns a retired node to service (hot repair). Returns false when the
  /// node was not retired.
  bool repair(NodeId node);

  /// Current logical -> physical embedding (size = target nodes).
  const std::vector<NodeId>& mapping() const { return phi_; }

  /// Physical -> logical (kInvalidNode for retired nodes and idle spares).
  std::vector<NodeId> inverse_mapping() const;

  /// The currently retired physical nodes, sorted.
  const std::vector<NodeId>& retired() const { return retired_; }

  /// Verifies the Theorem 1/2 invariant right now (every target edge on a
  /// healthy physical link). Cheap enough to assert after every event.
  bool invariant_holds() const;

  /// Human-readable one-line status for logs.
  std::string status_line() const;

 private:
  void recompute();

  Graph ft_graph_;
  Graph target_;
  std::size_t budget_ = 0;
  std::vector<NodeId> retired_;  // sorted
  std::vector<NodeId> phi_;
};

}  // namespace ftdb
