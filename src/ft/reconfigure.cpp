#include "ft/reconfigure.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ftdb {

FaultSet::FaultSet(std::size_t universe, std::vector<NodeId> faulty)
    : universe_(universe), faulty_(std::move(faulty)) {
  std::sort(faulty_.begin(), faulty_.end());
  faulty_.erase(std::unique(faulty_.begin(), faulty_.end()), faulty_.end());
  if (!faulty_.empty() && faulty_.back() >= universe_) {
    throw std::out_of_range("FaultSet: fault id out of range");
  }
}

FaultSet FaultSet::random(std::size_t universe, std::size_t count, std::mt19937_64& rng) {
  if (count > universe) throw std::invalid_argument("FaultSet::random: count > universe");
  // Floyd's algorithm: uniform sample of `count` distinct values.
  std::vector<NodeId> chosen;
  chosen.reserve(count);
  for (std::size_t j = universe - count; j < universe; ++j) {
    std::uniform_int_distribution<std::size_t> dist(0, j);
    const NodeId t = static_cast<NodeId>(dist(rng));
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(static_cast<NodeId>(j));
    }
  }
  return FaultSet(universe, std::move(chosen));
}

bool FaultSet::is_faulty(NodeId v) const {
  return std::binary_search(faulty_.begin(), faulty_.end(), v);
}

std::vector<NodeId> FaultSet::survivors() const {
  // The survivors are the consecutive runs between faults, so fill with
  // std::iota per run (vectorized) instead of branching on every node — this
  // is the whole reconfiguration algorithm, so it is worth keeping at memory
  // speed.
  std::vector<NodeId> out(universe_ - faulty_.size());
  auto it = out.begin();
  NodeId run_start = 0;
  for (const NodeId f : faulty_) {
    auto run_end = it + (f - run_start);
    std::iota(it, run_end, run_start);
    it = run_end;
    run_start = f + 1;
  }
  std::iota(it, out.end(), run_start);
  return out;
}

std::vector<NodeId> monotone_embedding(const FaultSet& faults) {
  return faults.survivors();  // the (x+1)-st survivor, by construction
}

std::vector<std::uint32_t> embedding_offsets(const std::vector<NodeId>& phi) {
  std::vector<std::uint32_t> delta(phi.size());
  for (std::size_t x = 0; x < phi.size(); ++x) {
    delta[x] = static_cast<std::uint32_t>(phi[x] - x);
  }
  return delta;
}

std::vector<NodeId> inverse_embedding(const std::vector<NodeId>& phi, std::size_t universe) {
  std::vector<NodeId> inv(universe, kInvalidNode);
  for (std::size_t x = 0; x < phi.size(); ++x) inv[phi[x]] = static_cast<NodeId>(x);
  return inv;
}

}  // namespace ftdb
