// The reconfiguration algorithm of Section III.A.
//
// Given the fault-tolerant graph on N + k nodes and a set of at most k faulty
// nodes, the algorithm maps node x of the target graph to the (x+1)-st
// non-faulty node — the unique monotonically increasing bijection from
// {0..N-1} onto the survivors. The per-node offset delta(x) = phi(x) - x lies
// in [0, k] and is non-decreasing (Lemma 1), which is exactly what the extra
// offsets of B^k_{m,h} absorb.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb {

/// A set of faulty node ids within a graph of `universe` nodes. Normalized:
/// sorted, unique, all < universe.
class FaultSet {
 public:
  FaultSet() = default;
  FaultSet(std::size_t universe, std::vector<NodeId> faulty);

  /// k faults drawn uniformly without replacement (deterministic given rng).
  static FaultSet random(std::size_t universe, std::size_t count, std::mt19937_64& rng);

  std::size_t universe() const { return universe_; }
  std::size_t count() const { return faulty_.size(); }
  const std::vector<NodeId>& nodes() const { return faulty_; }
  bool is_faulty(NodeId v) const;

  /// The survivors, in increasing order.
  std::vector<NodeId> survivors() const;

 private:
  std::size_t universe_ = 0;
  std::vector<NodeId> faulty_;
};

/// The monotone rank embedding phi : {0..N-1} -> survivors, where
/// N = universe - |faults|. phi[x] is the (x+1)-st surviving node. The result
/// is an `Embedding` in the sense of graph/embedding.hpp.
std::vector<NodeId> monotone_embedding(const FaultSet& faults);

/// delta(x) = phi(x) - x for the monotone embedding; each entry is in
/// [0, |faults|] and the sequence is non-decreasing (Lemma 1).
std::vector<std::uint32_t> embedding_offsets(const std::vector<NodeId>& phi);

/// Inverse map: survivor physical id -> logical target id (kInvalidNode for
/// faulty nodes). `universe` is the fault-tolerant graph's node count.
std::vector<NodeId> inverse_embedding(const std::vector<NodeId>& phi, std::size_t universe);

}  // namespace ftdb
