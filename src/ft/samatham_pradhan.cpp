#include "ft/samatham_pradhan.hpp"

#include <stdexcept>

#include "topology/debruijn.hpp"
#include "topology/labels.hpp"

namespace ftdb {

std::uint64_t sp_num_nodes(std::uint64_t m, unsigned h, unsigned k) {
  return labels::ipow_checked(m * k + 1, h);
}

std::uint64_t sp_degree(std::uint64_t m, unsigned k) { return 2 * m * k + 2; }

std::uint64_t digit_copies_num_nodes(std::uint64_t m, unsigned h, unsigned k) {
  return labels::ipow_checked(m * (k + 1), h);
}

Graph digit_copies_graph(std::uint64_t m, unsigned h, unsigned k) {
  return debruijn_graph({.base = m * (k + 1), .digits = h});
}

std::uint64_t digit_copies_degree_bound(std::uint64_t m, unsigned k) {
  return 2 * m * (k + 1);
}

Embedding digit_copies_embedding(std::uint64_t m, unsigned h, unsigned k, unsigned copy) {
  if (copy > k) throw std::out_of_range("digit_copies_embedding: copy index exceeds k");
  const std::uint64_t small = labels::ipow_checked(m, h);
  const std::uint64_t big_base = m * (k + 1);
  Embedding phi(small);
  for (std::uint64_t x = 0; x < small; ++x) {
    auto digits = labels::digits_of(x, m, h);
    for (auto& d : digits) d += static_cast<std::uint32_t>(copy * m);
    phi[x] = static_cast<NodeId>(labels::from_digits(digits, big_base));
  }
  return phi;
}

std::optional<Embedding> digit_copies_reconfigure(std::uint64_t m, unsigned h, unsigned k,
                                                  const FaultSet& faults) {
  // A fault at node z hits copy c iff every digit of z lies in
  // [cm, cm+m-1]. Distinct copies have disjoint node sets, so with at most k
  // faults at least one of the k+1 copies survives.
  const std::uint64_t big_base = m * (k + 1);
  std::vector<bool> copy_hit(k + 1, false);
  for (NodeId z : faults.nodes()) {
    auto digits = labels::digits_of(z, big_base, h);
    const std::uint32_t c = digits[0] / static_cast<std::uint32_t>(m);
    bool inside = true;
    for (std::uint32_t d : digits) {
      if (d / m != c) {
        inside = false;
        break;
      }
    }
    if (inside && c <= k) copy_hit[c] = true;
  }
  for (unsigned c = 0; c <= k; ++c) {
    if (!copy_hit[c]) return digit_copies_embedding(m, h, k, c);
  }
  return std::nullopt;
}

}  // namespace ftdb
