// The Samatham–Pradhan baseline [12] that Section I compares against, in two
// forms:
//
//  (a) the published size/degree figures quoted by the paper —
//      base-2 target:  N^{log2(2k+1)} nodes, degree 4k+2
//      base-m target:  N^{log_m(mk+1)} nodes, degree 2mk+2
//      (both correspond to using a larger de Bruijn graph as the FT graph);
//
//  (b) a fully verifiable construction in the same spirit — the *digit-copies*
//      graph B_{m(k+1),h}, which contains k+1 node-disjoint copies of B_{m,h}
//      (copy c uses digits {cm, ..., cm+m-1}), so any k node faults leave at
//      least one copy intact. This is the redundancy-by-enlargement idea the
//      paper contrasts with its N+k-node constructions, and unlike (a) it is
//      checked end-to-end by our test suite.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/embedding.hpp"
#include "graph/graph.hpp"
#include "ft/reconfigure.hpp"

namespace ftdb {

// ---- (a) Published figures used in the paper's comparison ----------------

/// N^{log_m(mk+1)} = (mk+1)^h for N = m^h, as quoted in Section I.
std::uint64_t sp_num_nodes(std::uint64_t m, unsigned h, unsigned k);

/// Degree of the Samatham–Pradhan fault-tolerant graph (2mk+2; 4k+2 for m=2).
std::uint64_t sp_degree(std::uint64_t m, unsigned k);

// ---- (b) Verifiable digit-copies construction ----------------------------

/// (m(k+1))^h.
std::uint64_t digit_copies_num_nodes(std::uint64_t m, unsigned h, unsigned k);

/// The graph B_{m(k+1), h}.
Graph digit_copies_graph(std::uint64_t m, unsigned h, unsigned k);

/// Degree bound 2m(k+1) (the de Bruijn degree of the enlarged base).
std::uint64_t digit_copies_degree_bound(std::uint64_t m, unsigned k);

/// Embedding of B_{m,h} as copy c (0 <= c <= k): digit d maps to cm + d.
Embedding digit_copies_embedding(std::uint64_t m, unsigned h, unsigned k, unsigned copy);

/// Reconfiguration: choose any copy untouched by the faults. Returns nullopt
/// when every copy is hit (possible only with more than k faults).
std::optional<Embedding> digit_copies_reconfigure(std::uint64_t m, unsigned h, unsigned k,
                                                  const FaultSet& faults);

}  // namespace ftdb
