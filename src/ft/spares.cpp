#include "ft/spares.hpp"

#include <cmath>

namespace ftdb {

long double binomial_cdf(std::uint64_t n, std::uint64_t k, long double p) {
  if (p <= 0.0L) return 1.0L;
  if (p >= 1.0L) return k >= n ? 1.0L : 0.0L;
  // Work in log space for the first term, then use the ratio recurrence
  // P(i+1)/P(i) = (n-i)/(i+1) * p/(1-p).
  const long double q = 1.0L - p;
  long double log_term = static_cast<long double>(n) * std::log(q);
  long double term = std::exp(log_term);
  long double cdf = term;
  const long double ratio_base = p / q;
  for (std::uint64_t i = 0; i < k && i < n; ++i) {
    term *= static_cast<long double>(n - i) / static_cast<long double>(i + 1) * ratio_base;
    cdf += term;
  }
  return cdf > 1.0L ? 1.0L : cdf;
}

long double survival_probability(std::uint64_t target_nodes, unsigned spares, long double p) {
  return binomial_cdf(target_nodes + spares, spares, p);
}

unsigned min_spares_for_reliability(std::uint64_t target_nodes, long double p,
                                    long double target, unsigned max_spares) {
  for (unsigned k = 0; k <= max_spares; ++k) {
    if (survival_probability(target_nodes, k, p) >= target) return k;
  }
  return max_spares + 1;
}

std::uint64_t ours_port_cost(std::uint64_t m, std::uint64_t target_nodes, unsigned spares) {
  return (target_nodes + spares) * ((m - 1) * 4 * spares + 2 * m);
}

std::uint64_t bus_port_cost(std::uint64_t target_nodes, unsigned spares) {
  return (target_nodes + spares) * (2ull * spares + 3);
}

}  // namespace ftdb
