#include "ft/spares.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ftdb {

long double binomial_cdf(std::uint64_t n, std::uint64_t k, long double p) {
  if (p <= 0.0L) return 1.0L;
  if (p >= 1.0L) return k >= n ? 1.0L : 0.0L;
  // Work in log space for the first term, then use the ratio recurrence
  // P(i+1)/P(i) = (n-i)/(i+1) * p/(1-p).
  const long double q = 1.0L - p;
  long double log_term = static_cast<long double>(n) * std::log(q);
  long double term = std::exp(log_term);
  long double cdf = term;
  const long double ratio_base = p / q;
  for (std::uint64_t i = 0; i < k && i < n; ++i) {
    term *= static_cast<long double>(n - i) / static_cast<long double>(i + 1) * ratio_base;
    cdf += term;
  }
  return cdf > 1.0L ? 1.0L : cdf;
}

long double survival_probability(std::uint64_t target_nodes, unsigned spares, long double p) {
  return binomial_cdf(target_nodes + spares, spares, p);
}

unsigned min_spares_for_reliability(std::uint64_t target_nodes, long double p,
                                    long double target, unsigned max_spares) {
  for (unsigned k = 0; k <= max_spares; ++k) {
    if (survival_probability(target_nodes, k, p) >= target) return k;
  }
  return max_spares + 1;
}

std::uint64_t ours_port_cost(std::uint64_t m, std::uint64_t target_nodes, unsigned spares) {
  return (target_nodes + spares) * ((m - 1) * 4 * spares + 2 * m);
}

std::uint64_t bus_port_cost(std::uint64_t target_nodes, unsigned spares) {
  return (target_nodes + spares) * (2ull * spares + 3);
}

namespace {

/// The beta-function closed form, safe while the alternating sum keeps
/// enough long-double digits (caller checks).
long double weibull_mttf_closed_form(std::uint64_t n, unsigned k, long double shape,
                                     long double scale) {
  const std::uint64_t r = static_cast<std::uint64_t>(k) + 1;
  const long double s = 1.0L + 1.0L / shape;
  // log of r * C(n, r); the summands carry log C(k, j) - s*log(n-k+j).
  const long double log_pref = std::log(static_cast<long double>(r)) +
                               std::lgammal(static_cast<long double>(n) + 1.0L) -
                               std::lgammal(static_cast<long double>(r) + 1.0L) -
                               std::lgammal(static_cast<long double>(n - r) + 1.0L);
  // Factor the largest summand magnitude out so exp() stays in range.
  long double max_log = -std::numeric_limits<long double>::infinity();
  for (unsigned j = 0; j <= k; ++j) {
    const long double log_t = std::lgammal(static_cast<long double>(k) + 1.0L) -
                              std::lgammal(static_cast<long double>(j) + 1.0L) -
                              std::lgammal(static_cast<long double>(k - j) + 1.0L) -
                              s * std::log(static_cast<long double>(n - k + j));
    max_log = std::max(max_log, log_t);
  }
  long double sum = 0.0L;
  for (unsigned j = 0; j <= k; ++j) {
    const long double log_t = std::lgammal(static_cast<long double>(k) + 1.0L) -
                              std::lgammal(static_cast<long double>(j) + 1.0L) -
                              std::lgammal(static_cast<long double>(k - j) + 1.0L) -
                              s * std::log(static_cast<long double>(n - k + j));
    const long double term = std::exp(log_t - max_log);
    sum += (j % 2 == 0) ? term : -term;
  }
  return scale * std::tgammal(s) * std::exp(log_pref + max_log) * sum;
}

/// P[T_(k+1:n) > t] for Weibull(shape, scale) lifetimes.
long double weibull_survival(std::uint64_t n, unsigned k, long double shape, long double scale,
                             long double t) {
  const long double u = std::pow(t / scale, shape);
  const long double q = -std::expm1(-u);  // per-node failure probability by t
  return binomial_cdf(n, k, q);
}

long double simpson(std::uint64_t n, unsigned k, long double shape, long double scale,
                    long double a, long double fa, long double b, long double fb,
                    long double fm, long double whole, int depth) {
  const long double m = 0.5L * (a + b);
  const long double lm = 0.5L * (a + m);
  const long double rm = 0.5L * (m + b);
  const long double flm = weibull_survival(n, k, shape, scale, lm);
  const long double frm = weibull_survival(n, k, shape, scale, rm);
  const long double left = (m - a) / 6.0L * (fa + 4.0L * flm + fm);
  const long double right = (b - m) / 6.0L * (fm + 4.0L * frm + fb);
  if (depth <= 0 || std::fabs(left + right - whole) < 1e-12L * (std::fabs(whole) + 1e-30L)) {
    return left + right;
  }
  return simpson(n, k, shape, scale, a, fa, m, fm, flm, left, depth - 1) +
         simpson(n, k, shape, scale, m, fm, b, fb, frm, right, depth - 1);
}

long double weibull_mttf_quadrature(std::uint64_t n, unsigned k, long double shape,
                                    long double scale) {
  // Upper limit: double past the (k+1)/n failure quantile until the survival
  // function is numerically dead.
  const long double q_star =
      std::min(0.999L, static_cast<long double>(k + 1) / static_cast<long double>(n));
  long double hi = scale * std::pow(-std::log1p(-q_star), 1.0L / shape);
  hi = std::max(hi, scale * 1e-3L);
  while (weibull_survival(n, k, shape, scale, hi) > 1e-18L && hi < scale * 1e9L) hi *= 2.0L;
  const long double fa = weibull_survival(n, k, shape, scale, 0.0L);
  const long double fb = weibull_survival(n, k, shape, scale, hi);
  const long double fm = weibull_survival(n, k, shape, scale, 0.5L * hi);
  const long double whole = hi / 6.0L * (fa + 4.0L * fm + fb);
  return simpson(n, k, shape, scale, 0.0L, fa, hi, fb, fm, whole, 40);
}

}  // namespace

double weibull_mttf(std::uint64_t n, unsigned k, double shape, double scale) {
  if (n == 0 || k >= n || !(shape > 0.0) || !(scale > 0.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Cancellation estimate for the alternating sum: ~ n^k / k! of precision.
  const long double loss =
      static_cast<long double>(k) * std::log(static_cast<long double>(n)) -
      std::lgammal(static_cast<long double>(k) + 1.0L);
  const long double value =
      loss < 20.0L ? weibull_mttf_closed_form(n, k, shape, scale)
                   : weibull_mttf_quadrature(n, k, shape, scale);
  return static_cast<double>(value);
}

}  // namespace ftdb
