// Spare-provisioning analytics: how many spares k are needed for a target
// machine reliability, and what the constructions cost in links/ports. The
// paper guarantees survival iff at most k of the N+k nodes fail; with iid
// node-failure probability p this makes the machine-survival probability a
// binomial tail, which drives the ablation bench ABL2.
#pragma once

#include <cstdint>

namespace ftdb {

/// P[Binomial(n, p) <= k] computed with long-double recurrence (stable for the
/// n <= ~10^6 used here).
long double binomial_cdf(std::uint64_t n, std::uint64_t k, long double p);

/// Probability that an N-node target survives on the N+k construction when
/// every node fails independently with probability p:
/// P[at most k of N+k nodes fail].
long double survival_probability(std::uint64_t target_nodes, unsigned spares, long double p);

/// Smallest k with survival_probability(N, k, p) >= target (capped at
/// max_spares; returns max_spares+1 when unreachable).
unsigned min_spares_for_reliability(std::uint64_t target_nodes, long double p,
                                    long double target, unsigned max_spares);

/// Port cost of the point-to-point construction: (N+k) * (4(m-1)k + 2m).
std::uint64_t ours_port_cost(std::uint64_t m, std::uint64_t target_nodes, unsigned spares);

/// Port cost of the bus construction of Section V: (N+k) * (2k+3).
std::uint64_t bus_port_cost(std::uint64_t target_nodes, unsigned spares);

/// Analytic MTTF under Weibull wear-out: E[time of the (k+1)-st failure]
/// when the n fabric nodes have iid Weibull(shape, scale) lifetimes — the
/// closed-form order-statistic mean via the beta function,
///
///   E[T_(r:n)] = scale * Gamma(1 + 1/shape) * r * C(n, r) *
///                sum_{j=0}^{r-1} (-1)^j C(r-1, j) (n - r + 1 + j)^{-(1+1/shape)}
///
/// with r = k+1 (each summand is a beta-integral moment of the j-th
/// exceedance). The alternating sum cancels roughly n^k / k! of precision, so
/// it is evaluated in long double only while that loss is far inside range;
/// beyond it the same quantity is integrated without cancellation as
/// E = integral of P[T_(k+1) > t] dt = integral of
/// binomial_cdf(n, k, 1 - e^{-(t/scale)^shape}) dt by adaptive Simpson.
/// Returns NaN when k >= n (spares can never be exhausted). This fills the
/// analytic-MTTF column of the campaign report for the weibull fault model,
/// companion to the iid model's exact expectation.
double weibull_mttf(std::uint64_t n, unsigned k, double shape, double scale);

}  // namespace ftdb
