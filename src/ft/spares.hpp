// Spare-provisioning analytics: how many spares k are needed for a target
// machine reliability, and what the constructions cost in links/ports. The
// paper guarantees survival iff at most k of the N+k nodes fail; with iid
// node-failure probability p this makes the machine-survival probability a
// binomial tail, which drives the ablation bench ABL2.
#pragma once

#include <cstdint>

namespace ftdb {

/// P[Binomial(n, p) <= k] computed with long-double recurrence (stable for the
/// n <= ~10^6 used here).
long double binomial_cdf(std::uint64_t n, std::uint64_t k, long double p);

/// Probability that an N-node target survives on the N+k construction when
/// every node fails independently with probability p:
/// P[at most k of N+k nodes fail].
long double survival_probability(std::uint64_t target_nodes, unsigned spares, long double p);

/// Smallest k with survival_probability(N, k, p) >= target (capped at
/// max_spares; returns max_spares+1 when unreachable).
unsigned min_spares_for_reliability(std::uint64_t target_nodes, long double p,
                                    long double target, unsigned max_spares);

/// Port cost of the point-to-point construction: (N+k) * (4(m-1)k + 2m).
std::uint64_t ours_port_cost(std::uint64_t m, std::uint64_t target_nodes, unsigned spares);

/// Port cost of the bus construction of Section V: (N+k) * (2k+3).
std::uint64_t bus_port_cost(std::uint64_t target_nodes, unsigned spares);

}  // namespace ftdb
