#include "ft/tolerance.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/subgraph.hpp"

namespace ftdb {

bool monotone_embedding_survives(const Graph& target, const Graph& ft_graph,
                                 const FaultSet& faults, Edge* violation) {
  const std::vector<NodeId> phi = monotone_embedding(faults);
  if (phi.size() < target.num_nodes()) {
    if (violation != nullptr) *violation = Edge{kInvalidNode, kInvalidNode};
    return false;  // not enough survivors to host the target
  }
  for (std::size_t x = 0; x < target.num_nodes(); ++x) {
    const auto nb = target.neighbors(static_cast<NodeId>(x));
    // Adjacency lists are sorted, so jump straight to the neighbors above x
    // instead of filtering every entry.
    auto it = std::upper_bound(nb.begin(), nb.end(), static_cast<NodeId>(x));
    if (it == nb.end()) continue;
    // phi is strictly monotone, so the images phi[y] of the ascending
    // neighbors y are ascending too: verify them all with one merge scan
    // over the (sorted) ft adjacency of phi[x] instead of a binary search
    // per edge.
    const auto ft_nb = ft_graph.neighbors(phi[x]);
    auto ft_it = std::lower_bound(ft_nb.begin(), ft_nb.end(), phi[*it]);
    for (; it != nb.end(); ++it) {
      const NodeId want = phi[*it];
      while (ft_it != ft_nb.end() && *ft_it < want) ++ft_it;
      if (ft_it == ft_nb.end() || *ft_it != want) {
        if (violation != nullptr) *violation = Edge{static_cast<NodeId>(x), *it};
        return false;
      }
    }
  }
  return true;
}

void for_each_fault_set(std::size_t n, unsigned k,
                        const std::function<bool(const std::vector<NodeId>&)>& visit) {
  if (k > n) return;
  std::vector<NodeId> subset(k);
  for (unsigned i = 0; i < k; ++i) subset[i] = static_cast<NodeId>(i);
  while (true) {
    if (!visit(subset)) return;
    // Advance to the next k-combination in lexicographic order.
    int i = static_cast<int>(k) - 1;
    while (i >= 0 && subset[static_cast<unsigned>(i)] ==
                         static_cast<NodeId>(n - k + static_cast<unsigned>(i))) {
      --i;
    }
    if (i < 0) return;
    ++subset[static_cast<unsigned>(i)];
    for (unsigned j = static_cast<unsigned>(i) + 1; j < k; ++j) {
      subset[j] = subset[j - 1] + 1;
    }
  }
}

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t num = n - k + i;
    if (result > std::numeric_limits<std::uint64_t>::max() / num) {
      throw std::overflow_error("binomial: overflow");
    }
    result = result * num / i;
  }
  return result;
}

namespace {

ToleranceReport run_exhaustive(const Graph& target, const Graph& ft_graph, unsigned k,
                               const std::function<bool(const FaultSet&, Edge*)>& survives) {
  ToleranceReport report;
  const std::size_t n = ft_graph.num_nodes();
  for_each_fault_set(n, k, [&](const std::vector<NodeId>& subset) {
    ++report.fault_sets_checked;
    FaultSet faults(n, subset);
    Edge violation{};
    if (!survives(faults, &violation)) {
      report.tolerant = false;
      report.counterexample_faults = subset;
      report.violated_edge = violation;
      return false;
    }
    return true;
  });
  (void)target;
  return report;
}

}  // namespace

ToleranceReport check_tolerance_exhaustive(const Graph& target, const Graph& ft_graph,
                                           unsigned k, bool check_all_sizes) {
  ToleranceReport total;
  const unsigned lo = check_all_sizes ? 0 : k;
  for (unsigned kk = lo; kk <= k; ++kk) {
    ToleranceReport r = run_exhaustive(
        target, ft_graph, kk, [&](const FaultSet& faults, Edge* violation) {
          return monotone_embedding_survives(target, ft_graph, faults, violation);
        });
    total.fault_sets_checked += r.fault_sets_checked;
    if (!r.tolerant) {
      total.tolerant = false;
      total.counterexample_faults = std::move(r.counterexample_faults);
      total.violated_edge = r.violated_edge;
      return total;
    }
  }
  return total;
}

ToleranceReport check_tolerance_monte_carlo(const Graph& target, const Graph& ft_graph,
                                            unsigned k, std::uint64_t trials,
                                            std::uint64_t seed) {
  ToleranceReport report;
  std::mt19937_64 rng(seed);
  const std::size_t n = ft_graph.num_nodes();
  for (std::uint64_t t = 0; t < trials; ++t) {
    FaultSet faults = FaultSet::random(n, k, rng);
    ++report.fault_sets_checked;
    Edge violation{};
    if (!monotone_embedding_survives(target, ft_graph, faults, &violation)) {
      report.tolerant = false;
      report.counterexample_faults = faults.nodes();
      report.violated_edge = violation;
      return report;
    }
  }
  return report;
}

ToleranceReport check_tolerance_exhaustive_vf2(const Graph& target, const Graph& ft_graph,
                                               unsigned k,
                                               const EmbeddingSearchOptions& options) {
  return run_exhaustive(target, ft_graph, k, [&](const FaultSet& faults, Edge* violation) {
    auto survivors = faults.survivors();
    InducedSubgraph healthy = induced_subgraph(ft_graph, survivors);
    auto embedding = find_subgraph_embedding(target, healthy.graph, options);
    if (!embedding.has_value()) {
      if (violation != nullptr) *violation = Edge{kInvalidNode, kInvalidNode};
      return false;
    }
    return true;
  });
}

}  // namespace ftdb
