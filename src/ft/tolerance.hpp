// (k, G)-tolerance checking — the executable form of Theorems 1 and 2.
//
// A graph G' is (k, G)-tolerant when for *every* set W of |V(G')| - k
// surviving nodes, the induced subgraph contains G. For the paper's
// constructions the witness embedding is always the monotone rank embedding,
// so the check is: for every fault set F (|F| <= k) and every edge (x, y) of
// G, (phi(x), phi(y)) must be an edge of G'. We provide an exhaustive checker
// (all C(N+k, k) fault sets) for small instances and a seeded Monte Carlo
// checker for large ones, plus a general checker that uses VF2 search instead
// of the monotone witness (for baselines with different reconfiguration).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "graph/embedding.hpp"
#include "graph/graph.hpp"
#include "ft/reconfigure.hpp"

namespace ftdb {

/// Verifies the monotone witness for one fault set. Returns true when every
/// target edge survives; on failure optionally reports the first violated
/// target edge through `violation`.
bool monotone_embedding_survives(const Graph& target, const Graph& ft_graph,
                                 const FaultSet& faults, Edge* violation = nullptr);

struct ToleranceReport {
  bool tolerant = true;
  std::uint64_t fault_sets_checked = 0;
  /// First failing fault set, if any.
  std::vector<NodeId> counterexample_faults;
  Edge violated_edge{};
};

/// Exhaustively enumerates every fault set of size exactly `k` (fault sets of
/// smaller size are dominated: the paper's definition removes exactly k nodes,
/// and tolerating k faults implies tolerating fewer because the monotone
/// embedding of a sub-fault-set uses a subset of the offsets — we still expose
/// `check_all_sizes` to test that claim directly).
ToleranceReport check_tolerance_exhaustive(const Graph& target, const Graph& ft_graph,
                                           unsigned k, bool check_all_sizes = false);

/// Monte Carlo: `trials` random fault sets of size k (seeded, reproducible).
ToleranceReport check_tolerance_monte_carlo(const Graph& target, const Graph& ft_graph,
                                            unsigned k, std::uint64_t trials,
                                            std::uint64_t seed);

/// Generic tolerance check via subgraph-monomorphism search (no assumption on
/// the reconfiguration strategy). Exponential in the worst case; used for the
/// digit-copies baseline and for cross-validating the monotone witness on
/// small instances.
ToleranceReport check_tolerance_exhaustive_vf2(const Graph& target, const Graph& ft_graph,
                                               unsigned k,
                                               const EmbeddingSearchOptions& options = {});

/// Enumerates k-subsets of {0..n-1} in lexicographic order, invoking
/// `visit(subset)`; stops early when visit returns false. Exposed for tests
/// and experiment harnesses.
void for_each_fault_set(std::size_t n, unsigned k,
                        const std::function<bool(const std::vector<NodeId>&)>& visit);

/// C(n, k) in 64 bits (throws on overflow) — used to size exhaustive runs.
std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

}  // namespace ftdb
