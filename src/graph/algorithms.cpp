#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace ftdb {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> bfs_parents(const Graph& g, NodeId source) {
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  std::queue<NodeId> frontier;
  parent[source] = source;
  frontier.push(source);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (parent[v] == kInvalidNode) {
        parent[v] = u;
        frontier.push(v);
      }
    }
  }
  return parent;
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId source, NodeId target) {
  auto parent = bfs_parents(g, source);
  if (parent[target] == kInvalidNode) return {};
  std::vector<NodeId> path;
  for (NodeId v = target;; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> label(g.num_nodes(), kUnreachable);
  std::uint32_t next = 0;
  std::queue<NodeId> frontier;
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    if (label[s] != kUnreachable) continue;
    label[s] = next;
    frontier.push(static_cast<NodeId>(s));
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (label[v] == kUnreachable) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t num_connected_components(const Graph& g) {
  auto label = connected_components(g);
  std::uint32_t best = 0;
  for (std::uint32_t l : label) best = std::max(best, l + 1);
  return g.num_nodes() == 0 ? 0 : best;
}

bool is_connected(const Graph& g) {
  return g.num_nodes() <= 1 || num_connected_components(g) == 1;
}

std::uint32_t eccentricity(const Graph& g, NodeId source) {
  auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  if (!is_connected(g)) return kUnreachable;
  std::uint32_t diam = 0;
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    diam = std::max(diam, eccentricity(g, static_cast<NodeId>(s)));
  }
  return diam;
}

bool is_bipartite(const Graph& g) {
  std::vector<std::int8_t> color(g.num_nodes(), -1);
  std::queue<NodeId> frontier;
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    if (color[s] != -1) continue;
    color[s] = 0;
    frontier.push(static_cast<NodeId>(s));
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (color[v] == -1) {
          color[v] = static_cast<std::int8_t>(1 - color[u]);
          frontier.push(v);
        } else if (color[v] == color[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(static_cast<NodeId>(v))];
  return hist;
}

}  // namespace ftdb
