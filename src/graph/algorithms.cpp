#include "graph/algorithms.hpp"

#include <algorithm>

#include "graph/multi_source_bfs.hpp"

namespace ftdb {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  BfsWorkspace ws;
  return bfs_distances(g, source, ws);
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source, BfsWorkspace& ws) {
  std::vector<std::uint32_t> dist;
  ws.distances(g, source, dist);
  return dist;
}

std::vector<NodeId> bfs_parents(const Graph& g, NodeId source) {
  BfsWorkspace ws;
  return bfs_parents(g, source, ws);
}

std::vector<NodeId> bfs_parents(const Graph& g, NodeId source, BfsWorkspace& ws) {
  std::vector<NodeId> parent;
  ws.parents(g, source, parent);
  return parent;
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId source, NodeId target) {
  auto parent = bfs_parents(g, source);
  if (parent[target] == kInvalidNode) return {};
  std::vector<NodeId> path;
  for (NodeId v = target;; v = parent[v]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  // The label array doubles as the visited marker; the flat frontier pair is
  // shared across all component floods.
  std::vector<std::uint32_t> label(g.num_nodes(), kUnreachable);
  std::vector<NodeId> cur, next;
  std::uint32_t next_label = 0;
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    if (label[s] != kUnreachable) continue;
    label[s] = next_label;
    cur.assign(1, static_cast<NodeId>(s));
    while (!cur.empty()) {
      next.clear();
      for (const NodeId u : cur) {
        for (const NodeId v : g.neighbors(u)) {
          if (label[v] == kUnreachable) {
            label[v] = next_label;
            next.push_back(v);
          }
        }
      }
      cur.swap(next);
    }
    ++next_label;
  }
  return label;
}

std::size_t num_connected_components(const Graph& g) {
  auto label = connected_components(g);
  std::uint32_t best = 0;
  for (std::uint32_t l : label) best = std::max(best, l + 1);
  return g.num_nodes() == 0 ? 0 : best;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  BfsWorkspace ws;
  return ws.sweep(g, 0).reached == g.num_nodes();
}

std::uint32_t eccentricity(const Graph& g, NodeId source) {
  BfsWorkspace ws;
  return eccentricity(g, source, ws);
}

std::uint32_t eccentricity(const Graph& g, NodeId source, BfsWorkspace& ws) {
  return ws.sweep(g, source).eccentricity;
}

std::uint32_t diameter(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0;
  MultiSourceBfs scan(n);
  std::uint32_t diam = 0;
  for (std::size_t base = 0; base < n; base += MultiSourceBfs::kBatchWidth) {
    const auto stats = scan.run(g, static_cast<NodeId>(base));
    // The graph is undirected: any source that fails to reach every node
    // proves disconnection, so bail out without scanning the rest.
    if (!stats.all_reach_all) return kUnreachable;
    diam = std::max(diam, stats.max_finite_distance);
  }
  return diam;
}

bool is_bipartite(const Graph& g) {
  std::vector<std::int8_t> color(g.num_nodes(), -1);
  std::vector<NodeId> cur, next;
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    if (color[s] != -1) continue;
    color[s] = 0;
    cur.assign(1, static_cast<NodeId>(s));
    while (!cur.empty()) {
      next.clear();
      for (const NodeId u : cur) {
        for (const NodeId v : g.neighbors(u)) {
          if (color[v] == -1) {
            color[v] = static_cast<std::int8_t>(1 - color[u]);
            next.push_back(v);
          } else if (color[v] == color[u]) {
            return false;
          }
        }
      }
      cur.swap(next);
    }
  }
  return true;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist(g.max_degree() + 1, 0);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(static_cast<NodeId>(v))];
  return hist;
}

}  // namespace ftdb
