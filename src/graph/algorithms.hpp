// Classical graph algorithms used throughout the library: BFS, connectivity,
// diameter/eccentricity, and bipartiteness. All run on the immutable CSR
// `Graph` and are deterministic. Every traversal goes through `BfsWorkspace`
// (flat frontier, epoch-stamped visited array); the overloads taking a
// workspace let callers that issue many BFS runs amortize the scratch state.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bfs_workspace.hpp"
#include "graph/graph.hpp"

namespace ftdb {

/// Single-source shortest-path distances (hop counts) via BFS.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source, BfsWorkspace& ws);

/// BFS parent tree: parent[source] == source, parent[unreached] == kInvalidNode.
std::vector<NodeId> bfs_parents(const Graph& g, NodeId source);
std::vector<NodeId> bfs_parents(const Graph& g, NodeId source, BfsWorkspace& ws);

/// Reconstructs a shortest path from `source` to `target`; empty if unreachable,
/// [source] if source == target.
std::vector<NodeId> shortest_path(const Graph& g, NodeId source, NodeId target);

/// Component label per node (labels are 0-based, assigned in node order).
std::vector<std::uint32_t> connected_components(const Graph& g);

std::size_t num_connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// Largest finite eccentricity from `source` (max BFS distance to a reachable node).
std::uint32_t eccentricity(const Graph& g, NodeId source);
std::uint32_t eccentricity(const Graph& g, NodeId source, BfsWorkspace& ws);

/// Exact diameter via all-sources BFS sweeps over one shared workspace.
/// Returns kUnreachable when disconnected. Serial; `analysis::parallel_all_pairs`
/// is the engine for the large production-scale instances.
std::uint32_t diameter(const Graph& g);

/// True when the graph admits a proper 2-coloring.
bool is_bipartite(const Graph& g);

/// Degree histogram: hist[d] = number of nodes of degree d.
std::vector<std::size_t> degree_histogram(const Graph& g);

/// The library's canonical shortest-path step: the lowest-id neighbor of
/// `cur` that is strictly closer per `dist_of` (i.e. dist_of(w) + 1 ==
/// dist_of(cur)); kInvalidNode when no neighbor qualifies. CSR adjacency is
/// sorted, so "first match" is the minimum id. Every routing backend (BFS
/// next-hop tables, the run-length compressed tables, the algebraic implicit
/// router) and the embedding metrics' path descent share this one rule —
/// that is what makes their shortest paths hop-for-hop identical. `dist_of`
/// must return an unsigned type whose "unreachable" sentinel is the maximum
/// value, so unreachable neighbors wrap to 0 and never match a positive
/// dist_of(cur).
template <class DistOf>
NodeId canonical_descent_step(const Graph& g, NodeId cur, DistOf&& dist_of) {
  const auto here = dist_of(cur);  // hoisted: dist_of may be an O(h^2) formula
  for (const NodeId w : g.neighbors(cur)) {
    if (dist_of(w) + 1 == here) return w;
  }
  return kInvalidNode;
}

}  // namespace ftdb
