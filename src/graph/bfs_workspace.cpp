#include "graph/bfs_workspace.hpp"

#include <algorithm>

namespace ftdb {

void BfsWorkspace::ensure(std::size_t n) {
  if (stamp_.size() < n) stamp_.resize(n, 0);
  ++epoch_;
  if (epoch_ == 0) {  // stamp wrap-around after 2^32 sweeps: hard reset
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

void BfsWorkspace::distances(const Graph& g, NodeId source,
                             std::vector<std::uint32_t>& dist) {
  dist.assign(g.num_nodes(), kUnreachable);
  dist[source] = 0;
  cur_.clear();
  cur_.push_back(source);
  std::uint32_t level = 0;
  while (!cur_.empty()) {
    ++level;
    next_.clear();
    for (const NodeId u : cur_) {
      for (const NodeId v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next_.push_back(v);
        }
      }
    }
    cur_.swap(next_);
  }
}

void BfsWorkspace::parents(const Graph& g, NodeId source, std::vector<NodeId>& parent) {
  parent.assign(g.num_nodes(), kInvalidNode);
  parent[source] = source;
  cur_.clear();
  cur_.push_back(source);
  while (!cur_.empty()) {
    next_.clear();
    for (const NodeId u : cur_) {
      for (const NodeId v : g.neighbors(u)) {
        if (parent[v] == kInvalidNode) {
          parent[v] = u;
          next_.push_back(v);
        }
      }
    }
    cur_.swap(next_);
  }
}

BfsWorkspace::SourceSweep BfsWorkspace::sweep(const Graph& g, NodeId source) {
  ensure(g.num_nodes());
  const std::uint32_t e = epoch_;
  stamp_[source] = e;
  cur_.clear();
  cur_.push_back(source);
  SourceSweep s;
  s.reached = 1;
  std::uint32_t level = 0;
  while (!cur_.empty()) {
    ++level;
    next_.clear();
    for (const NodeId u : cur_) {
      for (const NodeId v : g.neighbors(u)) {
        if (stamp_[v] != e) {
          stamp_[v] = e;
          next_.push_back(v);
        }
      }
    }
    if (next_.empty()) break;
    s.reached += next_.size();
    s.total_distance += static_cast<std::uint64_t>(level) * next_.size();
    s.eccentricity = level;
    cur_.swap(next_);
  }
  return s;
}

}  // namespace ftdb
