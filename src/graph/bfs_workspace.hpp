// Allocation-free breadth-first traversal.
//
// `BfsWorkspace` owns the scratch state a BFS needs — a flat two-vector
// frontier (no std::queue, no deque churn) and an epoch-stamped visited
// array, so a workspace that is reused across many sources (diameter,
// routing tables, all-pairs scans) performs zero allocations and skips the
// O(V) visited clear after the first call. Results are identical to the
// classical queue-based BFS: the flat frontier preserves level order, and
// sorted adjacency preserves the within-level visit order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb {

/// Distance value for unreachable nodes.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

class BfsWorkspace {
 public:
  /// Aggregates of one single-source sweep (no per-node output written).
  struct SourceSweep {
    std::uint64_t reached = 0;         ///< nodes reached, including the source
    std::uint64_t total_distance = 0;  ///< sum of hop counts to reached nodes
    std::uint32_t eccentricity = 0;    ///< max hop count to a reached node
  };

  /// Fills `dist` (resized to g.num_nodes()) with hop counts from `source`;
  /// unreached nodes get kUnreachable. The output array doubles as the
  /// visited marker, so the epoch stamps are untouched.
  void distances(const Graph& g, NodeId source, std::vector<std::uint32_t>& dist);

  /// Fills `parent` (resized to g.num_nodes()) with the BFS tree:
  /// parent[source] == source, parent[unreached] == kInvalidNode.
  void parents(const Graph& g, NodeId source, std::vector<NodeId>& parent);

  /// Level-synchronous sweep that writes no per-node output at all — visited
  /// bookkeeping lives in the epoch-stamped array, distance sums are
  /// accumulated per level. This is the fast path for eccentricity/diameter
  /// style queries where only aggregates matter.
  SourceSweep sweep(const Graph& g, NodeId source);

 private:
  void ensure(std::size_t n);

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;
  std::vector<NodeId> cur_;
  std::vector<NodeId> next_;
};

}  // namespace ftdb
