#include "graph/bus_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftdb {

BusGraph::BusGraph(std::size_t num_nodes, std::vector<Bus> buses)
    : num_nodes_(num_nodes), buses_(std::move(buses)), incidence_(num_nodes) {
  for (std::size_t i = 0; i < buses_.size(); ++i) {
    Bus& b = buses_[i];
    if (b.driver >= num_nodes_) throw std::out_of_range("BusGraph: driver out of range");
    std::sort(b.members.begin(), b.members.end());
    b.members.erase(std::unique(b.members.begin(), b.members.end()), b.members.end());
    // The driver is not a member of its own block.
    b.members.erase(std::remove(b.members.begin(), b.members.end(), b.driver), b.members.end());
    for (NodeId m : b.members) {
      if (m >= num_nodes_) throw std::out_of_range("BusGraph: member out of range");
      incidence_[m].push_back(static_cast<std::uint32_t>(i));
    }
    incidence_[b.driver].push_back(static_cast<std::uint32_t>(i));
  }
}

std::size_t BusGraph::max_bus_degree() const {
  std::size_t best = 0;
  for (const auto& inc : incidence_) best = std::max(best, inc.size());
  return best;
}

bool BusGraph::can_communicate(NodeId u, NodeId v) const {
  if (u == v) return false;
  for (std::uint32_t bi : incidence_[u]) {
    const Bus& b = buses_[bi];
    const bool u_is_driver = b.driver == u;
    const bool v_is_driver = b.driver == v;
    const bool v_is_member = std::binary_search(b.members.begin(), b.members.end(), v);
    const bool u_is_member = std::binary_search(b.members.begin(), b.members.end(), u);
    if ((u_is_driver && v_is_member) || (v_is_driver && u_is_member)) return true;
  }
  return false;
}

Graph BusGraph::realized_graph() const {
  GraphBuilder builder(num_nodes_);
  for (const Bus& b : buses_) {
    for (NodeId m : b.members) builder.add_edge(b.driver, m);
  }
  return builder.build();
}

std::vector<NodeId> BusGraph::bus_faults_to_node_faults(
    const std::vector<std::uint32_t>& faulty_buses) const {
  std::vector<NodeId> faults;
  faults.reserve(faulty_buses.size());
  for (std::uint32_t bi : faulty_buses) {
    if (bi >= buses_.size()) throw std::out_of_range("bus_faults_to_node_faults: bad bus index");
    faults.push_back(buses_[bi].driver);
  }
  std::sort(faults.begin(), faults.end());
  faults.erase(std::unique(faults.begin(), faults.end()), faults.end());
  return faults;
}

}  // namespace ftdb
