// Bus architectures (Section V of the paper) modelled as hypergraphs.
//
// Each bus has a distinguished *driver* node i plus a set of member nodes (the
// block of consecutive nodes the paper connects i to). The paper uses buses in
// a restricted way: every communication on bus i involves node i itself, which
// is what makes bus faults tolerable by declaring the driver faulty.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb {

struct Bus {
  NodeId driver = 0;
  std::vector<NodeId> members;  // excludes the driver; sorted, deduped
};

class BusGraph {
 public:
  BusGraph(std::size_t num_nodes, std::vector<Bus> buses);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_buses() const { return buses_.size(); }
  const Bus& bus(std::size_t i) const { return buses_[i]; }
  const std::vector<Bus>& buses() const { return buses_; }

  /// Bus indices node v participates in (as driver or member).
  const std::vector<std::uint32_t>& buses_of(NodeId v) const { return incidence_[v]; }

  /// Number of buses incident with v — the "degree" Section V bounds by 2k+3.
  std::size_t bus_degree(NodeId v) const { return incidence_[v].size(); }

  std::size_t max_bus_degree() const;

  /// True when u and v can communicate in the paper's restricted discipline:
  /// some bus has one of them as driver and the other as member.
  bool can_communicate(NodeId u, NodeId v) const;

  /// The point-to-point connectivity realized by the restricted bus
  /// discipline: edge (driver, member) for every bus membership. Useful for
  /// checking that a bus architecture still carries a target graph.
  Graph realized_graph() const;

  /// Bus-fault handling from Section V: a faulty bus is tolerated by treating
  /// its driver as a faulty node. Translates bus faults into node faults.
  std::vector<NodeId> bus_faults_to_node_faults(const std::vector<std::uint32_t>& faulty_buses) const;

 private:
  std::size_t num_nodes_;
  std::vector<Bus> buses_;
  std::vector<std::vector<std::uint32_t>> incidence_;
};

}  // namespace ftdb
