#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ftdb::csr {

namespace {

/// Per-thread radix scratch: retained across builds so steady-state
/// construction (benchmark loops, fault-sweep experiments) performs no
/// large allocations and no fresh-page faults.
struct Scratch {
  std::vector<HalfEdge> buf;
  std::vector<std::size_t> cursor;
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

[[noreturn]] void throw_out_of_range() {
  throw std::out_of_range("csr::build: half-edge endpoint out of range");
}

/// Sorts each adjacency list in place, optionally dedups, and compacts the
/// lists so they are contiguous again. `list_end[v]` is the current end of
/// v's list (= offsets[v + 1] when nothing was skipped during scatter).
/// Rewrites `offsets` to the final (post-dedup) positions.
void sort_dedup_compact(std::size_t num_nodes, bool sort_lists, bool dedup,
                        std::vector<std::size_t>& offsets,
                        const std::vector<std::size_t>& list_end,
                        std::vector<NodeId>& adjacency) {
  std::size_t w = 0;
  for (std::size_t v = 0; v < num_nodes; ++v) {
    const std::size_t begin = offsets[v];
    const std::size_t end = list_end[v];
    offsets[v] = w;
    if (sort_lists) {
      if (end - begin <= 16) {
        // Hand-rolled insertion sort: the constant-degree topologies have
        // 2-8 entries per list, where the std::sort dispatch alone costs
        // more than the sort.
        for (std::size_t i = begin + 1; i < end; ++i) {
          const NodeId key = adjacency[i];
          std::size_t j = i;
          for (; j > begin && adjacency[j - 1] > key; --j) adjacency[j] = adjacency[j - 1];
          adjacency[j] = key;
        }
      } else {
        std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(begin),
                  adjacency.begin() + static_cast<std::ptrdiff_t>(end));
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      if (dedup && i > begin && adjacency[i] == adjacency[i - 1]) continue;
      adjacency[w++] = adjacency[i];  // w <= i, so this never clobbers unread input
    }
  }
  offsets[num_nodes] = w;
  adjacency.resize(w);
}

}  // namespace

std::vector<HalfEdge>& emission_buffer() {
  thread_local std::vector<HalfEdge> buf;
  buf.clear();
  return buf;
}

void build(std::size_t num_nodes, std::vector<HalfEdge>& halves, bool dedup,
           std::vector<std::size_t>& offsets, std::vector<NodeId>& adjacency) {
  offsets.assign(num_nodes + 1, 0);
  adjacency.clear();
  if (halves.empty()) return;

  Scratch& s = scratch();
  const std::size_t n64 = static_cast<std::size_t>(num_nodes);

  // Low average fanout (the constant-degree paper topologies): skip the
  // neighbor-ordering radix pass entirely — scatter per owner, then sort each
  // short list in place. Cache-local and one full pass cheaper.
  const bool small_fanout = halves.size() <= num_nodes * 8;

  if (small_fanout) {
    for (const HalfEdge h : halves) {
      const std::uint64_t owner = h >> 32;
      if (owner >= n64 || static_cast<std::uint32_t>(h) >= n64) throw_out_of_range();
      ++offsets[owner + 1];
    }
    for (std::size_t i = 1; i <= num_nodes; ++i) offsets[i] += offsets[i - 1];
    adjacency.resize(halves.size());
    s.cursor.assign(offsets.begin(), offsets.end() - 1);
    for (const HalfEdge h : halves) {
      adjacency[s.cursor[owner_of(h)]++] = neighbor_of(h);
    }
    // s.cursor[v] is now offsets[v + 1]; reuse it as the list-end array.
    sort_dedup_compact(num_nodes, /*sort_lists=*/true, dedup, offsets, s.cursor, adjacency);
    return;
  }

  // General path: LSD counting sort. Pass 1 stable-sorts by the neighbor
  // word into the scratch buffer; pass 2 scatters by owner straight into the
  // adjacency array (4-byte writes), skipping duplicates inline — stability
  // makes a duplicate (owner, neighbor) land right next to its twin.
  s.cursor.assign(num_nodes + 1, 0);
  for (const HalfEdge h : halves) {
    const std::uint64_t owner = h >> 32;
    if (owner >= n64 || static_cast<std::uint32_t>(h) >= n64) throw_out_of_range();
    ++s.cursor[neighbor_of(h) + 1];
  }
  for (std::size_t i = 1; i <= num_nodes; ++i) s.cursor[i] += s.cursor[i - 1];
  s.buf.resize(halves.size());
  for (const HalfEdge h : halves) s.buf[s.cursor[neighbor_of(h)]++] = h;

  for (const HalfEdge h : s.buf) ++offsets[owner_of(h) + 1];
  for (std::size_t i = 1; i <= num_nodes; ++i) offsets[i] += offsets[i - 1];
  adjacency.resize(halves.size());
  s.cursor.assign(offsets.begin(), offsets.end() - 1);
  std::size_t skipped = 0;
  for (const HalfEdge h : s.buf) {
    const NodeId owner = owner_of(h);
    const NodeId nb = neighbor_of(h);
    const std::size_t pos = s.cursor[owner];
    if (dedup && pos > offsets[owner] && adjacency[pos - 1] == nb) {
      ++skipped;
      continue;
    }
    adjacency[pos] = nb;
    s.cursor[owner] = pos + 1;
  }
  if (skipped == 0) return;  // offsets are already final and lists contiguous
  sort_dedup_compact(num_nodes, /*sort_lists=*/false, /*dedup=*/false, offsets, s.cursor,
                     adjacency);
}

}  // namespace ftdb::csr
