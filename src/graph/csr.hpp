// Linear-time CSR assembly shared by GraphBuilder and DigraphBuilder.
//
// Half-edges are packed into 64-bit keys (owner in the high word, neighbor in
// the low word) and ordered with a two-pass LSD counting sort over node-id
// digits: a stable pass on the neighbor word followed by a stable pass on the
// owner word leaves the keys sorted by (owner, neighbor) in O(E + V) time —
// no comparison sort, no per-adjacency-list post-sort. The sorted keys are
// then unpacked straight into the offsets/adjacency arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb::csr {

/// A directed half-edge: owner in bits [32, 64), neighbor in bits [0, 32).
using HalfEdge = std::uint64_t;

inline HalfEdge pack(NodeId owner, NodeId neighbor) {
  return (static_cast<std::uint64_t>(owner) << 32) | neighbor;
}

inline NodeId owner_of(HalfEdge h) { return static_cast<NodeId>(h >> 32); }
inline NodeId neighbor_of(HalfEdge h) { return static_cast<NodeId>(h); }

/// Emits the undirected edge {u, v} as its two half-edges, dropping
/// self-loops (the paper's convention). The single place that encodes what
/// `build(..., dedup=true)` expects from generators.
inline void emit_undirected(std::vector<HalfEdge>& halves, NodeId u, NodeId v) {
  if (u == v) return;
  halves.push_back(pack(u, v));
  halves.push_back(pack(v, u));
}

/// A cleared, thread-local HalfEdge buffer for generators to emit into. The
/// capacity is retained across calls, so steady-state graph construction
/// performs no emission-side allocations. The reference is only valid until
/// the next emission_buffer() call on the same thread.
std::vector<HalfEdge>& emission_buffer();

/// Sorts `halves` by (owner, neighbor) via the two-pass counting sort and
/// unpacks them into CSR `offsets` (num_nodes + 1 entries) and `adjacency`.
/// When `dedup` is set, identical (owner, neighbor) pairs collapse to one
/// adjacency entry (the undirected simple-graph convention); otherwise
/// parallel arcs are preserved (the multigraph convention).
///
/// Throws std::out_of_range when a half-edge names a node >= num_nodes.
/// `halves` is consumed as scratch space and left in an unspecified state.
void build(std::size_t num_nodes, std::vector<HalfEdge>& halves, bool dedup,
           std::vector<std::size_t>& offsets, std::vector<NodeId>& adjacency);

}  // namespace ftdb::csr
