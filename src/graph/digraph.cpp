#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace ftdb {

Digraph::Digraph(std::size_t num_nodes, std::vector<std::pair<NodeId, NodeId>> arcs) {
  for (const auto& [u, v] : arcs) {
    if (u >= num_nodes || v >= num_nodes) throw std::out_of_range("Digraph: arc out of range");
  }
  std::sort(arcs.begin(), arcs.end());
  out_offsets_.assign(num_nodes + 1, 0);
  in_offsets_.assign(num_nodes + 1, 0);
  for (const auto& [u, v] : arcs) {
    ++out_offsets_[u + 1];
    ++in_offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= num_nodes; ++i) {
    out_offsets_[i] += out_offsets_[i - 1];
    in_offsets_[i] += in_offsets_[i - 1];
  }
  out_adj_.resize(arcs.size());
  in_adj_.resize(arcs.size());
  std::vector<std::size_t> out_cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<std::size_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const auto& [u, v] : arcs) {
    out_adj_[out_cursor[u]++] = v;
    in_adj_[in_cursor[v]++] = u;
  }
}

Graph Digraph::undirected_shadow() const {
  GraphBuilder b(num_nodes());
  for (std::size_t u = 0; u < num_nodes(); ++u) {
    for (NodeId v : out_neighbors(static_cast<NodeId>(u))) {
      b.add_edge(static_cast<NodeId>(u), v);
    }
  }
  return b.build();
}

bool Digraph::is_eulerian() const {
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (in_degree(static_cast<NodeId>(v)) != out_degree(static_cast<NodeId>(v))) return false;
  }
  // Weak connectivity over non-isolated nodes via the undirected shadow.
  const Graph shadow = undirected_shadow();
  NodeId start = kInvalidNode;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (out_degree(static_cast<NodeId>(v)) > 0) {
      start = static_cast<NodeId>(v);
      break;
    }
  }
  if (start == kInvalidNode) return num_arcs() == 0;
  // BFS from start over the shadow; every node with arcs must be reached.
  std::vector<bool> seen(num_nodes(), false);
  std::vector<NodeId> stack{start};
  seen[start] = true;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : shadow.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (out_degree(static_cast<NodeId>(v)) > 0 && !seen[v]) return false;
  }
  // Self-loop-only nodes are reachable via their own loop arc in the walk
  // sense but the shadow drops self-loops; treat a node whose arcs are all
  // self-loops as connected iff it is the only active node.
  return true;
}

std::vector<NodeId> Digraph::euler_circuit() const {
  if (num_arcs() == 0) return {};
  if (!is_eulerian()) return {};
  // Hierholzer with per-node arc cursors.
  std::vector<std::size_t> cursor(num_nodes(), 0);
  NodeId start = 0;
  while (out_degree(start) == 0) ++start;
  std::vector<NodeId> stack{start};
  std::vector<NodeId> circuit;
  circuit.reserve(num_arcs() + 1);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    if (cursor[v] < out_degree(v)) {
      const NodeId next = out_neighbors(v)[cursor[v]++];
      stack.push_back(next);
    } else {
      circuit.push_back(v);
      stack.pop_back();
    }
  }
  std::reverse(circuit.begin(), circuit.end());
  if (circuit.size() != num_arcs() + 1) return {};  // disconnected arc set
  return circuit;
}

}  // namespace ftdb
