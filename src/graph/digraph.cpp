#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/csr.hpp"

namespace ftdb {

DigraphBuilder::DigraphBuilder(std::size_t num_nodes) : num_nodes_(num_nodes) {}

void DigraphBuilder::add_arc(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::out_of_range("DigraphBuilder::add_arc: endpoint out of range");
  }
  out_halves_.push_back(csr::pack(u, v));
  in_halves_.push_back(csr::pack(v, u));
}

Digraph DigraphBuilder::build() && {
  Digraph d;
  csr::build(num_nodes_, out_halves_, /*dedup=*/false, d.out_offsets_, d.out_adj_);
  csr::build(num_nodes_, in_halves_, /*dedup=*/false, d.in_offsets_, d.in_adj_);
  return d;
}

Digraph::Digraph(std::size_t num_nodes, std::vector<std::pair<NodeId, NodeId>> arcs) {
  DigraphBuilder b(num_nodes);
  b.reserve_arcs(arcs.size());
  for (const auto& [u, v] : arcs) b.add_arc(u, v);
  *this = std::move(b).build();
}

Graph Digraph::undirected_shadow() const {
  GraphBuilder b(num_nodes());
  for (std::size_t u = 0; u < num_nodes(); ++u) {
    for (NodeId v : out_neighbors(static_cast<NodeId>(u))) {
      b.add_edge(static_cast<NodeId>(u), v);
    }
  }
  return b.build();
}

bool Digraph::is_eulerian() const {
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (in_degree(static_cast<NodeId>(v)) != out_degree(static_cast<NodeId>(v))) return false;
  }
  // Weak connectivity over non-isolated nodes via the undirected shadow.
  const Graph shadow = undirected_shadow();
  NodeId start = kInvalidNode;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (out_degree(static_cast<NodeId>(v)) > 0) {
      start = static_cast<NodeId>(v);
      break;
    }
  }
  if (start == kInvalidNode) return num_arcs() == 0;
  // BFS from start over the shadow; every node with arcs must be reached.
  std::vector<bool> seen(num_nodes(), false);
  std::vector<NodeId> stack{start};
  seen[start] = true;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : shadow.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (out_degree(static_cast<NodeId>(v)) > 0 && !seen[v]) return false;
  }
  // Self-loop-only nodes are reachable via their own loop arc in the walk
  // sense but the shadow drops self-loops; treat a node whose arcs are all
  // self-loops as connected iff it is the only active node.
  return true;
}

std::vector<NodeId> Digraph::euler_circuit() const {
  if (num_arcs() == 0) return {};
  if (!is_eulerian()) return {};
  // Hierholzer with per-node arc cursors.
  std::vector<std::size_t> cursor(num_nodes(), 0);
  NodeId start = 0;
  while (out_degree(start) == 0) ++start;
  std::vector<NodeId> stack{start};
  std::vector<NodeId> circuit;
  circuit.reserve(num_arcs() + 1);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    if (cursor[v] < out_degree(v)) {
      const NodeId next = out_neighbors(v)[cursor[v]++];
      stack.push_back(next);
    } else {
      circuit.push_back(v);
      stack.pop_back();
    }
  }
  std::reverse(circuit.begin(), circuit.end());
  if (circuit.size() != num_arcs() + 1) return {};  // disconnected arc set
  return circuit;
}

}  // namespace ftdb
