// Directed graph substrate. The de Bruijn networks of the paper are the
// undirected shadows of the classical de Bruijn digraph (x -> mx + r); the
// digraph view is needed for Euler-tour arguments (de Bruijn sequences), for
// the directed shift-register routing, and for in/out degree analyses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb {

class Digraph;

/// Accumulates arcs and produces an immutable `Digraph` in O(V + A) via the
/// same two-pass counting sort the undirected `GraphBuilder` uses — the
/// out-CSR is keyed by (src, dst), the in-CSR by (dst, src), and parallel
/// arcs are preserved (multigraph convention).
class DigraphBuilder {
 public:
  explicit DigraphBuilder(std::size_t num_nodes);

  std::size_t num_nodes() const { return num_nodes_; }

  /// Records the arc u -> v. Endpoints must be < num_nodes(); self-loop arcs
  /// are legal in the digraph view.
  void add_arc(NodeId u, NodeId v);

  void reserve_arcs(std::size_t n) { out_halves_.reserve(n); in_halves_.reserve(n); }

  /// Finalizes into an immutable Digraph; the builder is consumed.
  Digraph build() &&;

 private:
  std::size_t num_nodes_;
  std::vector<std::uint64_t> out_halves_;
  std::vector<std::uint64_t> in_halves_;
};

/// Immutable directed multigraph in CSR layout (parallel arcs permitted —
/// the de Bruijn digraph of order h=1 has them).
class Digraph {
 public:
  Digraph() = default;
  Digraph(std::size_t num_nodes, std::vector<std::pair<NodeId, NodeId>> arcs);

  std::size_t num_nodes() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }
  std::size_t num_arcs() const { return out_adj_.size(); }

  std::span<const NodeId> out_neighbors(NodeId v) const {
    return {out_adj_.data() + out_offsets_[v], out_adj_.data() + out_offsets_[v + 1]};
  }
  std::span<const NodeId> in_neighbors(NodeId v) const {
    return {in_adj_.data() + in_offsets_[v], in_adj_.data() + in_offsets_[v + 1]};
  }
  std::size_t out_degree(NodeId v) const { return out_offsets_[v + 1] - out_offsets_[v]; }
  std::size_t in_degree(NodeId v) const { return in_offsets_[v + 1] - in_offsets_[v]; }

  /// The undirected shadow: arcs become edges, self-loops dropped, dedup.
  Graph undirected_shadow() const;

  /// True when in-degree equals out-degree at every node and the arcs form a
  /// single (weakly) connected component among non-isolated nodes — the
  /// Eulerian-circuit condition for connected digraphs.
  bool is_eulerian() const;

  /// An Euler circuit as a sequence of nodes (first == last), or empty when
  /// none exists. Hierholzer's algorithm, deterministic arc order.
  std::vector<NodeId> euler_circuit() const;

 private:
  friend class DigraphBuilder;

  std::vector<std::size_t> out_offsets_;
  std::vector<NodeId> out_adj_;
  std::vector<std::size_t> in_offsets_;
  std::vector<NodeId> in_adj_;
};

}  // namespace ftdb
