#include "graph/embedding.hpp"

#include <algorithm>
#include <cassert>

namespace ftdb {

bool is_valid_embedding(const Graph& pattern, const Graph& host, const Embedding& phi) {
  if (phi.size() != pattern.num_nodes()) return false;
  std::vector<bool> used(host.num_nodes(), false);
  for (NodeId image : phi) {
    if (image >= host.num_nodes() || used[image]) return false;
    used[image] = true;
  }
  for (std::size_t u = 0; u < pattern.num_nodes(); ++u) {
    for (NodeId v : pattern.neighbors(static_cast<NodeId>(u))) {
      if (static_cast<NodeId>(u) < v && !host.has_edge(phi[u], phi[v])) return false;
    }
  }
  return true;
}

namespace {

// Pattern-node visit order: start from the max-degree node, then repeatedly
// pick the unvisited node with the most already-visited neighbors (ties by
// degree, then label). This keeps the partial match connected so edge
// constraints prune early.
std::vector<NodeId> matching_order(const Graph& pattern) {
  const std::size_t n = pattern.num_nodes();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);
  std::vector<std::size_t> visited_neighbors(n, 0);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (best == n) {
        best = v;
        continue;
      }
      auto key = [&](std::size_t x) {
        return std::make_pair(visited_neighbors[x], pattern.degree(static_cast<NodeId>(x)));
      };
      if (key(v) > key(best)) best = v;
    }
    placed[best] = true;
    order.push_back(static_cast<NodeId>(best));
    for (NodeId w : pattern.neighbors(static_cast<NodeId>(best))) ++visited_neighbors[w];
  }
  return order;
}

struct Vf2State {
  const Graph& pattern;
  const Graph& host;
  const std::vector<NodeId>& order;
  const EmbeddingSearchOptions& options;
  EmbeddingSearchStats& stats;
  Embedding phi;                 // pattern -> host (kInvalidNode = unmapped)
  std::vector<bool> host_used;   // host node already an image

  bool feasible(NodeId p, NodeId h) const {
    if (host.degree(h) < pattern.degree(p)) return false;
    // Every already-mapped pattern neighbor must be a host neighbor of h.
    for (NodeId q : pattern.neighbors(p)) {
      if (phi[q] != kInvalidNode && !host.has_edge(h, phi[q])) return false;
    }
    return true;
  }

  bool search(std::size_t depth) {
    if (depth == order.size()) return true;
    const NodeId p = order[depth];

    // Candidates: if p has a mapped neighbor, only host-neighbors of its image
    // are possible; otherwise all unused host nodes.
    NodeId anchor = kInvalidNode;
    for (NodeId q : pattern.neighbors(p)) {
      if (phi[q] != kInvalidNode) {
        anchor = phi[q];
        break;
      }
    }
    auto try_candidate = [&](NodeId h) -> int {
      if (host_used[h]) return 0;
      ++stats.steps;
      if (options.max_steps != 0 && stats.steps > options.max_steps) {
        stats.aborted = true;
        return -1;
      }
      if (!feasible(p, h)) return 0;
      phi[p] = h;
      host_used[h] = true;
      if (search(depth + 1)) return 1;
      phi[p] = kInvalidNode;
      host_used[h] = false;
      return 0;
    };

    if (anchor != kInvalidNode) {
      for (NodeId h : host.neighbors(anchor)) {
        int r = try_candidate(h);
        if (r != 0) return r == 1;
      }
    } else {
      for (std::size_t h = 0; h < host.num_nodes(); ++h) {
        int r = try_candidate(static_cast<NodeId>(h));
        if (r != 0) return r == 1;
      }
    }
    return false;
  }
};

}  // namespace

std::optional<Embedding> find_subgraph_embedding(const Graph& pattern, const Graph& host,
                                                 const EmbeddingSearchOptions& options,
                                                 EmbeddingSearchStats* stats) {
  EmbeddingSearchStats local_stats;
  EmbeddingSearchStats& st = stats != nullptr ? *stats : local_stats;
  st = EmbeddingSearchStats{};
  if (pattern.num_nodes() > host.num_nodes()) return std::nullopt;
  if (pattern.num_nodes() == 0) return Embedding{};

  auto order = matching_order(pattern);
  Vf2State state{pattern, host,
                 order,   options,
                 st,      Embedding(pattern.num_nodes(), kInvalidNode),
                 std::vector<bool>(host.num_nodes(), false)};
  if (state.search(0)) return state.phi;
  return std::nullopt;
}

Embedding compose(const Embedding& f, const Embedding& g) {
  Embedding out(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    assert(f[i] < g.size());
    out[i] = g[f[i]];
  }
  return out;
}

Embedding identity_embedding(std::size_t n) {
  Embedding phi(n);
  for (std::size_t i = 0; i < n; ++i) phi[i] = static_cast<NodeId>(i);
  return phi;
}

}  // namespace ftdb
