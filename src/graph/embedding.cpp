#include "graph/embedding.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>

namespace ftdb {

bool is_valid_embedding(const Graph& pattern, const Graph& host, const Embedding& phi) {
  if (phi.size() != pattern.num_nodes()) return false;
  std::vector<bool> used(host.num_nodes(), false);
  for (NodeId image : phi) {
    if (image >= host.num_nodes() || used[image]) return false;
    used[image] = true;
  }
  for (std::size_t u = 0; u < pattern.num_nodes(); ++u) {
    for (NodeId v : pattern.neighbors(static_cast<NodeId>(u))) {
      if (static_cast<NodeId>(u) < v && !host.has_edge(phi[u], phi[v])) return false;
    }
  }
  return true;
}

namespace {

// Pattern-node visit order: start from the max-degree node, then repeatedly
// pick the unvisited node with the most already-visited neighbors (ties by
// degree, then label). This keeps the partial match connected so edge
// constraints prune early. Shared by the reference and the pruned search so
// both explore assignments in the same sequence and return the same first
// solution.
std::vector<NodeId> matching_order(const Graph& pattern) {
  const std::size_t n = pattern.num_nodes();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);
  std::vector<std::size_t> visited_neighbors(n, 0);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (best == n) {
        best = v;
        continue;
      }
      auto key = [&](std::size_t x) {
        return std::make_pair(visited_neighbors[x], pattern.degree(static_cast<NodeId>(x)));
      };
      if (key(v) > key(best)) best = v;
    }
    placed[best] = true;
    order.push_back(static_cast<NodeId>(best));
    for (NodeId w : pattern.neighbors(static_cast<NodeId>(best))) ++visited_neighbors[w];
  }
  return order;
}

struct Vf2State {
  const Graph& pattern;
  const Graph& host;
  const std::vector<NodeId>& order;
  const EmbeddingSearchOptions& options;
  EmbeddingSearchStats& stats;
  Embedding phi;                 // pattern -> host (kInvalidNode = unmapped)
  std::vector<bool> host_used;   // host node already an image

  bool feasible(NodeId p, NodeId h) const {
    if (host.degree(h) < pattern.degree(p)) return false;
    // Every already-mapped pattern neighbor must be a host neighbor of h.
    for (NodeId q : pattern.neighbors(p)) {
      if (phi[q] != kInvalidNode && !host.has_edge(h, phi[q])) return false;
    }
    return true;
  }

  bool search(std::size_t depth) {
    if (depth == order.size()) return true;
    const NodeId p = order[depth];

    // Candidates: if p has a mapped neighbor, only host-neighbors of its image
    // are possible; otherwise all unused host nodes.
    NodeId anchor = kInvalidNode;
    for (NodeId q : pattern.neighbors(p)) {
      if (phi[q] != kInvalidNode) {
        anchor = phi[q];
        break;
      }
    }
    auto try_candidate = [&](NodeId h) -> int {
      if (host_used[h]) return 0;
      ++stats.steps;
      if (options.max_steps != 0 && stats.steps > options.max_steps) {
        stats.aborted = true;
        return -1;
      }
      if (!feasible(p, h)) return 0;
      phi[p] = h;
      host_used[h] = true;
      if (search(depth + 1)) return 1;
      phi[p] = kInvalidNode;
      host_used[h] = false;
      return 0;
    };

    if (anchor != kInvalidNode) {
      for (NodeId h : host.neighbors(anchor)) {
        int r = try_candidate(h);
        if (r != 0) return r == 1;
      }
    } else {
      for (std::size_t h = 0; h < host.num_nodes(); ++h) {
        int r = try_candidate(static_cast<NodeId>(h));
        if (r != 0) return r == 1;
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Pruned search.
//
// Same search tree as Vf2State, but each (pattern node, host node) pair is
// first checked against a statically precomputed candidate set, and every
// tentative assignment runs a one-step lookahead over the not-yet-mapped
// pattern neighbors. All filters are *necessary* conditions for a
// monomorphism extending the current partial map, so the pruned search visits
// a subtree of the reference search tree and — because assignments are tried
// in the same ascending host order at every depth — returns the exact same
// first embedding whenever one exists.
// ---------------------------------------------------------------------------

// Per-node structural signature used to build the static candidate sets.
// pattern node p can only map to host node h if h's signature dominates p's:
//   * degree(h) >= degree(p)
//   * |ball_r(h)| >= |ball_r(p)| for r = 2, 3 (radius-1 is the degree check)
//   * the sorted-descending neighbor degree sequence of h dominates p's
//     pointwise (greedy matching of the injection promised by the embedding)
struct NodeSignature {
  std::size_t degree = 0;
  std::array<std::uint32_t, 2> ball = {0, 0};  // |ball_2|, |ball_3|
  std::vector<std::uint32_t> neighbor_degrees;  // sorted descending
};

std::vector<NodeSignature> compute_signatures(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<NodeSignature> sig(n);
  std::vector<std::uint32_t> stamp(n, 0);
  std::vector<NodeId> frontier;
  std::vector<NodeId> next;
  std::uint32_t epoch = 0;
  for (std::size_t v = 0; v < n; ++v) {
    NodeSignature& s = sig[v];
    s.degree = g.degree(static_cast<NodeId>(v));
    s.neighbor_degrees.reserve(s.degree);
    for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
      s.neighbor_degrees.push_back(static_cast<std::uint32_t>(g.degree(w)));
    }
    std::sort(s.neighbor_degrees.begin(), s.neighbor_degrees.end(),
              std::greater<std::uint32_t>());

    // Truncated BFS to radius 3; balls in bounded-degree graphs are tiny.
    ++epoch;
    std::uint32_t count = 1;
    stamp[v] = epoch;
    frontier.assign(1, static_cast<NodeId>(v));
    for (int radius = 1; radius <= 3; ++radius) {
      next.clear();
      for (NodeId u : frontier) {
        for (NodeId w : g.neighbors(u)) {
          if (stamp[w] == epoch) continue;
          stamp[w] = epoch;
          ++count;
          next.push_back(w);
        }
      }
      frontier.swap(next);
      if (radius >= 2) s.ball[static_cast<std::size_t>(radius - 2)] = count;
    }
  }
  return sig;
}

bool signature_dominates(const NodeSignature& pat, const NodeSignature& host) {
  if (host.degree < pat.degree) return false;
  if (host.ball[0] < pat.ball[0] || host.ball[1] < pat.ball[1]) return false;
  // Both sequences sorted descending and |host| >= |pat|: an injection mapping
  // each pattern-neighbor degree to a >= host-neighbor degree exists iff the
  // greedy largest-to-largest pairing works.
  for (std::size_t i = 0; i < pat.neighbor_degrees.size(); ++i) {
    if (host.neighbor_degrees[i] < pat.neighbor_degrees[i]) return false;
  }
  return true;
}

// Arc-consistency refinement of the candidate sets: h stays in C(p) only if
// p's neighbors can be *injectively* matched into h's neighbors respecting
// the current candidate sets — a necessary condition for phi(p) = h in any
// monomorphism, so refinement never discards a value that appears in a
// solution. Degrees are tiny in the graphs this library builds, so a plain
// Kuhn augmenting-path matching per (p, h) pair is cheap. Iterates to a
// fixpoint; returns false when some pattern node loses its last candidate.
bool refine_candidates(const Graph& pattern, const Graph& host,
                       std::vector<std::vector<bool>>& candidate) {
  const std::size_t np = pattern.num_nodes();
  std::vector<NodeId> match;       // host-neighbor slot -> pattern-neighbor index
  std::vector<bool> on_path;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t p = 0; p < np; ++p) {
      const auto pn = pattern.neighbors(static_cast<NodeId>(p));
      if (pn.empty()) continue;
      for (std::size_t h = 0; h < host.num_nodes(); ++h) {
        if (!candidate[p][h]) continue;
        const auto hn = host.neighbors(static_cast<NodeId>(h));
        match.assign(hn.size(), kInvalidNode);
        bool ok = true;
        for (std::size_t qi = 0; qi < pn.size() && ok; ++qi) {
          on_path.assign(hn.size(), false);
          // Kuhn: find an augmenting path for pattern neighbor qi.
          auto augment = [&](auto&& self, std::size_t q) -> bool {
            for (std::size_t ci = 0; ci < hn.size(); ++ci) {
              if (on_path[ci] || !candidate[pn[q]][hn[ci]]) continue;
              on_path[ci] = true;
              if (match[ci] == kInvalidNode || self(self, match[ci])) {
                match[ci] = static_cast<NodeId>(q);
                return true;
              }
            }
            return false;
          };
          ok = augment(augment, qi);
        }
        if (!ok) {
          candidate[p][h] = false;
          changed = true;
        }
      }
      if (std::find(candidate[p].begin(), candidate[p].end(), true) == candidate[p].end()) {
        return false;
      }
    }
  }
  return true;
}

struct PrunedState {
  const Graph& pattern;
  const Graph& host;
  const std::vector<NodeId>& order;
  const EmbeddingSearchOptions& options;
  EmbeddingSearchStats& stats;
  const std::vector<std::vector<bool>>& candidate;  // candidate[p][h]
  const std::vector<std::vector<NodeId>>& holders;  // holders[h]: {p : h in C(p)}
  Embedding phi;
  std::vector<bool> host_used;
  // avail[q] = number of currently unused host nodes in C(q), maintained
  // incrementally for unmapped q. Mapping a host node that is the last free
  // candidate of some unmapped pattern node is an immediate dead end.
  std::vector<std::uint32_t> avail;

  bool feasible(NodeId p, NodeId h) const {
    for (NodeId q : pattern.neighbors(p)) {
      if (phi[q] != kInvalidNode && !host.has_edge(h, phi[q])) return false;
    }
    return true;
  }

  // After tentatively mapping p -> h: every unmapped pattern neighbor q of p
  // must still have at least one unused host candidate adjacent to h (its
  // image has to land in N(h)). Necessary for any completion, so pruning on
  // it cannot change which embedding is found first.
  bool lookahead(NodeId p, NodeId h) const {
    for (NodeId q : pattern.neighbors(p)) {
      if (phi[q] != kInvalidNode) continue;
      bool open = false;
      for (NodeId c : host.neighbors(h)) {
        if (!host_used[c] && candidate[q][c]) {
          open = true;
          break;
        }
      }
      if (!open) return false;
    }
    return true;
  }

  bool search(std::size_t depth) {
    if (depth == order.size()) return true;
    const NodeId p = order[depth];

    // Anchor on the mapped neighbor whose image has the fewest host
    // neighbors. Feasible candidates are exactly the ascending intersection
    // of all mapped-neighbor adjacency lists, so any anchor yields the same
    // candidate sequence — the smallest list is just cheapest to scan.
    NodeId anchor = kInvalidNode;
    std::size_t anchor_degree = static_cast<std::size_t>(-1);
    for (NodeId q : pattern.neighbors(p)) {
      if (phi[q] == kInvalidNode) continue;
      const std::size_t d = host.degree(phi[q]);
      if (d < anchor_degree) {
        anchor_degree = d;
        anchor = phi[q];
      }
    }

    auto try_candidate = [&](NodeId h) -> int {
      if (host_used[h]) return 0;
      ++stats.steps;
      if (options.max_steps != 0 && stats.steps > options.max_steps) {
        stats.aborted = true;
        return -1;
      }
      if (!candidate[p][h]) return 0;
      if (!feasible(p, h)) return 0;
      phi[p] = h;
      host_used[h] = true;
      bool wiped = false;
      for (NodeId q : holders[h]) {
        if (phi[q] == kInvalidNode && --avail[q] == 0) wiped = true;
      }
      if (!wiped && lookahead(p, h) && search(depth + 1)) return 1;
      for (NodeId q : holders[h]) {
        if (phi[q] == kInvalidNode) ++avail[q];
      }
      phi[p] = kInvalidNode;
      host_used[h] = false;
      return 0;
    };

    if (anchor != kInvalidNode) {
      for (NodeId h : host.neighbors(anchor)) {
        int r = try_candidate(h);
        if (r != 0) return r == 1;
      }
    } else {
      for (std::size_t h = 0; h < host.num_nodes(); ++h) {
        int r = try_candidate(static_cast<NodeId>(h));
        if (r != 0) return r == 1;
      }
    }
    return false;
  }
};

}  // namespace

std::optional<Embedding> find_subgraph_embedding_reference(
    const Graph& pattern, const Graph& host, const EmbeddingSearchOptions& options,
    EmbeddingSearchStats* stats) {
  EmbeddingSearchStats local_stats;
  EmbeddingSearchStats& st = stats != nullptr ? *stats : local_stats;
  st = EmbeddingSearchStats{};
  if (pattern.num_nodes() > host.num_nodes()) return std::nullopt;
  if (pattern.num_nodes() == 0) return Embedding{};

  auto order = matching_order(pattern);
  Vf2State state{pattern, host,
                 order,   options,
                 st,      Embedding(pattern.num_nodes(), kInvalidNode),
                 std::vector<bool>(host.num_nodes(), false)};
  if (state.search(0)) return state.phi;
  return std::nullopt;
}

std::optional<Embedding> find_subgraph_embedding(const Graph& pattern, const Graph& host,
                                                 const EmbeddingSearchOptions& options,
                                                 EmbeddingSearchStats* stats) {
  EmbeddingSearchStats local_stats;
  EmbeddingSearchStats& st = stats != nullptr ? *stats : local_stats;
  st = EmbeddingSearchStats{};
  if (pattern.num_nodes() > host.num_nodes()) return std::nullopt;
  if (pattern.num_nodes() == 0) return Embedding{};

  const std::size_t np = pattern.num_nodes();
  const std::size_t nh = host.num_nodes();
  const auto pat_sig = compute_signatures(pattern);
  const auto host_sig = compute_signatures(host);

  std::vector<std::vector<bool>> candidate(np, std::vector<bool>(nh, false));
  for (std::size_t p = 0; p < np; ++p) {
    bool any = false;
    for (std::size_t h = 0; h < nh; ++h) {
      if (signature_dominates(pat_sig[p], host_sig[h])) {
        candidate[p][h] = true;
        any = true;
      }
    }
    if (!any) return std::nullopt;  // some pattern node has no possible image
  }
  if (!refine_candidates(pattern, host, candidate)) return std::nullopt;

  std::vector<std::vector<NodeId>> holders(nh);
  std::vector<std::uint32_t> avail(np, 0);
  for (std::size_t p = 0; p < np; ++p) {
    for (std::size_t h = 0; h < nh; ++h) {
      if (candidate[p][h]) {
        holders[h].push_back(static_cast<NodeId>(p));
        ++avail[p];
      }
    }
  }

  auto order = matching_order(pattern);
  PrunedState state{pattern, host,
                    order,   options,
                    st,      candidate,
                    holders, Embedding(np, kInvalidNode),
                    std::vector<bool>(nh, false),
                    std::move(avail)};
  if (state.search(0)) return state.phi;
  return std::nullopt;
}

Embedding compose(const Embedding& f, const Embedding& g) {
  Embedding out(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    assert(f[i] < g.size());
    out[i] = g[f[i]];
  }
  return out;
}

Embedding identity_embedding(std::size_t n) {
  Embedding phi(n);
  for (std::size_t i = 0; i < n; ++i) phi[i] = static_cast<NodeId>(i);
  return phi;
}

}  // namespace ftdb
