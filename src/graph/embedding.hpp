// Graph embeddings (Section II of the paper): a 1-to-1 map φ : V(G) → V(G')
// such that every edge of G maps to an edge of G'. Includes a validator and a
// VF2-style backtracking search for subgraph monomorphisms, used to realize
// the Feldmann–Unger containment SE_h ⊆ B_{2,h} that the fault-tolerant
// shuffle-exchange construction relies on.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb {

/// φ as a dense vector: phi[x] is the image of pattern node x in the host.
using Embedding = std::vector<NodeId>;

/// Checks that `phi` is injective, in-range, and maps every pattern edge onto
/// a host edge. This is the paper's definition of an embedding.
bool is_valid_embedding(const Graph& pattern, const Graph& host, const Embedding& phi);

/// Options for the backtracking search.
struct EmbeddingSearchOptions {
  /// Abort after this many backtracking steps (0 = unlimited). A "step" is one
  /// candidate pair considered.
  std::size_t max_steps = 50'000'000;
};

/// Statistics from a search, for the experiment harness.
struct EmbeddingSearchStats {
  std::size_t steps = 0;
  bool aborted = false;
};

/// Finds an embedding (subgraph monomorphism) of `pattern` into `host`, or
/// nullopt if none exists / the step budget is exhausted. Deterministic:
/// pattern nodes are matched in a connectivity-first order, host candidates in
/// increasing label order.
///
/// The search prunes with statically precomputed candidate sets (degree,
/// sorted neighbor-degree-sequence dominance, radius-2/3 ball sizes) plus a
/// one-step lookahead over unmapped pattern neighbors. Every filter is a
/// necessary condition for a monomorphism, and assignments are tried in the
/// same order as the unpruned reference below, so whenever an embedding
/// exists both searches return the identical one.
std::optional<Embedding> find_subgraph_embedding(const Graph& pattern, const Graph& host,
                                                 const EmbeddingSearchOptions& options = {},
                                                 EmbeddingSearchStats* stats = nullptr);

/// The original unpruned VF2-style search, retained as the correctness oracle
/// for `find_subgraph_embedding`: on any input where it terminates within the
/// step budget, the pruned search must return the same result.
std::optional<Embedding> find_subgraph_embedding_reference(
    const Graph& pattern, const Graph& host, const EmbeddingSearchOptions& options = {},
    EmbeddingSearchStats* stats = nullptr);

/// Composes two embeddings: (g ∘ f)(x) = g[f[x]]. Requires f's image to lie in
/// g's domain.
Embedding compose(const Embedding& f, const Embedding& g);

/// The identity embedding on n nodes.
Embedding identity_embedding(std::size_t n);

}  // namespace ftdb
