#include "graph/embedding_metrics.hpp"

#include <map>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace ftdb {

EmbeddingMetrics measure_embedding(const Graph& pattern, const Graph& host,
                                   const Embedding& phi) {
  if (phi.size() != pattern.num_nodes()) {
    throw std::invalid_argument("measure_embedding: phi size mismatch");
  }
  std::vector<bool> used(host.num_nodes(), false);
  for (NodeId v : phi) {
    if (v >= host.num_nodes() || used[v]) {
      throw std::invalid_argument("measure_embedding: phi not injective/in-range");
    }
    used[v] = true;
  }

  EmbeddingMetrics metrics;
  metrics.expansion = pattern.num_nodes() == 0
                          ? 0.0
                          : static_cast<double>(host.num_nodes()) /
                                static_cast<double>(pattern.num_nodes());

  std::map<std::pair<NodeId, NodeId>, std::uint32_t> host_edge_load;
  std::uint64_t total_dilation = 0;
  std::uint64_t routed = 0;
  // Group pattern edges by source image to reuse BFS trees.
  for (std::size_t u = 0; u < pattern.num_nodes(); ++u) {
    bool any = false;
    for (NodeId v : pattern.neighbors(static_cast<NodeId>(u))) {
      if (static_cast<NodeId>(u) < v) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    const auto parents = bfs_parents(host, phi[u]);
    for (NodeId v : pattern.neighbors(static_cast<NodeId>(u))) {
      if (static_cast<NodeId>(u) >= v) continue;
      if (parents[phi[v]] == kInvalidNode) {
        ++metrics.broken_edges;
        continue;
      }
      // Walk the BFS tree back from phi[v] to phi[u].
      std::uint32_t length = 0;
      for (NodeId cur = phi[v]; cur != phi[u]; cur = parents[cur]) {
        const NodeId next = parents[cur];
        const auto key = cur < next ? std::make_pair(cur, next) : std::make_pair(next, cur);
        ++host_edge_load[key];
        ++length;
      }
      metrics.dilation = std::max(metrics.dilation, length);
      total_dilation += length;
      ++routed;
    }
  }
  metrics.average_dilation =
      routed == 0 ? 0.0 : static_cast<double>(total_dilation) / static_cast<double>(routed);
  for (const auto& [edge, load] : host_edge_load) {
    metrics.congestion = std::max(metrics.congestion, load);
  }
  return metrics;
}

}  // namespace ftdb
