#include "graph/embedding_metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace ftdb {

EmbeddingMetrics measure_embedding(const Graph& pattern, const Graph& host,
                                   const Embedding& phi) {
  if (phi.size() != pattern.num_nodes()) {
    throw std::invalid_argument("measure_embedding: phi size mismatch");
  }
  std::vector<bool> used(host.num_nodes(), false);
  for (NodeId v : phi) {
    if (v >= host.num_nodes() || used[v]) {
      throw std::invalid_argument("measure_embedding: phi not injective/in-range");
    }
    used[v] = true;
  }

  EmbeddingMetrics metrics;
  metrics.expansion = pattern.num_nodes() == 0
                          ? 0.0
                          : static_cast<double>(host.num_nodes()) /
                                static_cast<double>(pattern.num_nodes());

  // Per-host-edge load, indexed by the CSR position of the edge's half from
  // its lower endpoint — a flat array instead of a tree map keyed on node
  // pairs. Rank lookup is a binary search in the (sorted) adjacency list.
  std::vector<std::size_t> edge_base(host.num_nodes() + 1, 0);
  for (std::size_t v = 0; v < host.num_nodes(); ++v) {
    edge_base[v + 1] = edge_base[v] + host.degree(static_cast<NodeId>(v));
  }
  std::vector<std::uint32_t> host_edge_load(edge_base[host.num_nodes()], 0);
  auto bump_load = [&](NodeId a, NodeId b) {
    const NodeId lo = std::min(a, b);
    const NodeId hi = std::max(a, b);
    const auto nb = host.neighbors(lo);
    const auto it = std::lower_bound(nb.begin(), nb.end(), hi);
    ++host_edge_load[edge_base[lo] + static_cast<std::size_t>(it - nb.begin())];
  };

  std::uint64_t total_dilation = 0;
  std::uint64_t routed = 0;
  BfsWorkspace ws;
  std::vector<NodeId> parents;
  // Group pattern edges by source image to reuse BFS trees.
  for (std::size_t u = 0; u < pattern.num_nodes(); ++u) {
    bool any = false;
    for (NodeId v : pattern.neighbors(static_cast<NodeId>(u))) {
      if (static_cast<NodeId>(u) < v) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    ws.parents(host, phi[u], parents);
    for (NodeId v : pattern.neighbors(static_cast<NodeId>(u))) {
      if (static_cast<NodeId>(u) >= v) continue;
      if (parents[phi[v]] == kInvalidNode) {
        ++metrics.broken_edges;
        continue;
      }
      // Walk the BFS tree back from phi[v] to phi[u].
      std::uint32_t length = 0;
      for (NodeId cur = phi[v]; cur != phi[u]; cur = parents[cur]) {
        bump_load(cur, parents[cur]);
        ++length;
      }
      metrics.dilation = std::max(metrics.dilation, length);
      total_dilation += length;
      ++routed;
    }
  }
  metrics.average_dilation =
      routed == 0 ? 0.0 : static_cast<double>(total_dilation) / static_cast<double>(routed);
  for (const std::uint32_t load : host_edge_load) {
    metrics.congestion = std::max(metrics.congestion, load);
  }
  return metrics;
}

}  // namespace ftdb
