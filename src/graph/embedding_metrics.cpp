#include "graph/embedding_metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/multi_source_bfs.hpp"

namespace ftdb {

EmbeddingMetrics measure_embedding(const Graph& pattern, const Graph& host,
                                   const Embedding& phi) {
  if (phi.size() != pattern.num_nodes()) {
    throw std::invalid_argument("measure_embedding: phi size mismatch");
  }
  std::vector<bool> used(host.num_nodes(), false);
  for (NodeId v : phi) {
    if (v >= host.num_nodes() || used[v]) {
      throw std::invalid_argument("measure_embedding: phi not injective/in-range");
    }
    used[v] = true;
  }

  EmbeddingMetrics metrics;
  metrics.expansion = pattern.num_nodes() == 0
                          ? 0.0
                          : static_cast<double>(host.num_nodes()) /
                                static_cast<double>(pattern.num_nodes());

  // Per-host-edge load, indexed by the CSR position of the edge's half from
  // its lower endpoint — a flat array instead of a tree map keyed on node
  // pairs. Rank lookup is a binary search in the (sorted) adjacency list.
  std::vector<std::size_t> edge_base(host.num_nodes() + 1, 0);
  for (std::size_t v = 0; v < host.num_nodes(); ++v) {
    edge_base[v + 1] = edge_base[v] + host.degree(static_cast<NodeId>(v));
  }
  std::vector<std::uint32_t> host_edge_load(edge_base[host.num_nodes()], 0);
  auto bump_load = [&](NodeId a, NodeId b) {
    const NodeId lo = std::min(a, b);
    const NodeId hi = std::max(a, b);
    const auto nb = host.neighbors(lo);
    const auto it = std::lower_bound(nb.begin(), nb.end(), hi);
    ++host_edge_load[edge_base[lo] + static_cast<std::size_t>(it - nb.begin())];
  };

  std::uint64_t total_dilation = 0;
  std::uint64_t routed = 0;
  // Pattern nodes with at least one forward edge are the BFS sources; the
  // bit-parallel batch kernel produces 64 of their full host distance
  // vectors per CSR sweep (phi is injective, so batch sources are distinct).
  std::vector<NodeId> source_nodes;
  for (std::size_t u = 0; u < pattern.num_nodes(); ++u) {
    for (NodeId v : pattern.neighbors(static_cast<NodeId>(u))) {
      if (static_cast<NodeId>(u) < v) {
        source_nodes.push_back(static_cast<NodeId>(u));
        break;
      }
    }
  }
  const std::size_t hn = host.num_nodes();
  MultiSourceBfs scan(hn);
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> batch;
  for (std::size_t base = 0; base < source_nodes.size();
       base += MultiSourceBfs::kBatchWidth) {
    const std::size_t end =
        std::min(source_nodes.size(), base + MultiSourceBfs::kBatchWidth);
    batch.clear();
    for (std::size_t i = base; i < end; ++i) batch.push_back(phi[source_nodes[i]]);
    scan.run_batch(host, batch, &dist);
    for (std::size_t i = base; i < end; ++i) {
      const NodeId u = source_nodes[i];
      const std::uint32_t* row = dist.data() + (i - base) * hn;
      for (NodeId v : pattern.neighbors(u)) {
        if (u >= v) continue;
        const std::uint32_t length = row[phi[v]];
        if (length == kUnreachable) {
          ++metrics.broken_edges;
          continue;
        }
        // Walk one shortest path by steepest descent on the distance row —
        // the library-wide canonical min-id rule, so the witness path here is
        // hop-for-hop the one every sim::Router backend would route.
        for (NodeId cur = phi[v]; cur != phi[u];) {
          const NodeId step =
              canonical_descent_step(host, cur, [&](NodeId w) { return row[w]; });
          if (step == kInvalidNode) {
            throw std::logic_error("measure_embedding: broken distance descent");
          }
          bump_load(cur, step);
          cur = step;
        }
        metrics.dilation = std::max(metrics.dilation, length);
        total_dilation += length;
        ++routed;
      }
    }
  }
  metrics.average_dilation =
      routed == 0 ? 0.0 : static_cast<double>(total_dilation) / static_cast<double>(routed);
  for (const std::uint32_t load : host_edge_load) {
    metrics.congestion = std::max(metrics.congestion, load);
  }
  return metrics;
}

}  // namespace ftdb
