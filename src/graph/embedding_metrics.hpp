// Embedding quality metrics — the standard vocabulary for comparing network
// embeddings (dilation, congestion, expansion). The paper's reconfiguration
// embedding is dilation-1 by construction; these metrics make that claim
// measurable and let us quantify how much worse a *non*-spare strategy is
// (routing the target's edges through a degraded machine stretches them).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/embedding.hpp"
#include "graph/graph.hpp"

namespace ftdb {

struct EmbeddingMetrics {
  /// Max over pattern edges of the host-path length carrying it.
  std::uint32_t dilation = 0;
  double average_dilation = 0.0;
  /// Max over host edges of the number of pattern-edge paths crossing it.
  std::uint32_t congestion = 0;
  /// |V(host)| / |V(pattern)|.
  double expansion = 0.0;
  /// Number of pattern edges with no host path (infinite dilation).
  std::uint64_t broken_edges = 0;
};

/// Routes every pattern edge over a shortest host path between the images
/// and aggregates the metrics. phi must be injective and in-range.
/// Dilation-1 embeddings report dilation == 1 and congestion == 1.
EmbeddingMetrics measure_embedding(const Graph& pattern, const Graph& host,
                                   const Embedding& phi);

}  // namespace ftdb
