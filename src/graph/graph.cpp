#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "graph/csr.hpp"

namespace ftdb {

GraphBuilder::GraphBuilder(std::size_t num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    throw std::out_of_range("GraphBuilder::add_edge: endpoint out of range");
  }
  raw_edges_.push_back(Edge{u, v});
}

Graph GraphBuilder::build() const {
  // Emit both directions of every non-loop edge and let the counting-sort CSR
  // assembly order and dedup them in O(V + E).
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(raw_edges_.size() * 2);
  for (const Edge& e : raw_edges_) {
    csr::emit_undirected(halves, e.u, e.v);  // self-loops dropped per the paper
  }
  Graph g;
  csr::build(num_nodes_, halves, /*dedup=*/true, g.offsets_, g.adjacency_);
  return g;
}

Graph GraphBuilder::from_half_edges(std::size_t num_nodes,
                                    std::vector<std::uint64_t>& half_edges) {
  Graph g;
  csr::build(num_nodes, half_edges, /*dedup=*/true, g.offsets_, g.adjacency_);
  return g;
}

Graph GraphBuilder::build_reference() const {
  // Canonicalize: order endpoints, drop self-loops, dedup.
  std::vector<Edge> edges;
  edges.reserve(raw_edges_.size());
  for (const Edge& e : raw_edges_) {
    if (e.u == e.v) continue;  // self-loops are ignored per the paper
    edges.push_back(e.u < e.v ? e : Edge{e.v, e.u});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= num_nodes_; ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(edges.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  // Adjacency lists are sorted by construction: edges are sorted by (u, v),
  // so entries appended under a fixed u are increasing; entries appended
  // under a fixed v (as the larger endpoint) are increasing in u as well,
  // but the two interleave, so sort each list to be safe.
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) best = std::max(best, degree(static_cast<NodeId>(v)));
  return best;
}

std::size_t Graph::min_degree() const {
  if (num_nodes() == 0) return 0;
  std::size_t best = degree(0);
  for (std::size_t v = 1; v < num_nodes(); ++v) best = std::min(best, degree(static_cast<NodeId>(v)));
  return best;
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (std::size_t u = 0; u < num_nodes(); ++u) {
    for (NodeId v : neighbors(static_cast<NodeId>(u))) {
      if (static_cast<NodeId>(u) < v) out.push_back(Edge{static_cast<NodeId>(u), v});
    }
  }
  return out;
}

bool Graph::same_structure(const Graph& other) const {
  return offsets_ == other.offsets_ && adjacency_ == other.adjacency_;
}

Graph make_graph(std::size_t num_nodes, const std::vector<Edge>& edges) {
  GraphBuilder b(num_nodes);
  b.reserve_edges(edges.size());
  for (const Edge& e : edges) b.add_edge(e.u, e.v);
  return b.build();
}

}  // namespace ftdb
