// Core immutable graph type (CSR layout) and its builder.
//
// All graphs in this library follow the conventions of Section II of
// Bruck/Cypher/Ho: undirected simple graphs, no self-loops (constructions
// that would naturally produce self-loops simply drop them), nodes labelled
// 0 .. num_nodes()-1.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace ftdb {

/// Node identifier. Every graph uses a dense range [0, num_nodes).
using NodeId = std::uint32_t;

/// Sentinel for "no node" (used by search algorithms and routing tables).
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge, stored with endpoints in construction order.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph;

/// Accumulates edges and produces an immutable CSR `Graph`.
///
/// The builder tolerates duplicate edges, self-loops and edges given in either
/// endpoint order; `build()` canonicalizes (dedup, drop self-loops, sort
/// adjacency lists). This mirrors the paper's convention that self-loops
/// arising from the algebraic edge definitions "should be ignored".
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes);

  std::size_t num_nodes() const { return num_nodes_; }

  /// Records an undirected edge {u, v}. Self-loops are silently dropped at
  /// build time. Endpoints must be < num_nodes().
  void add_edge(NodeId u, NodeId v);

  /// Hint for the expected number of add_edge calls.
  void reserve_edges(std::size_t n) { raw_edges_.reserve(n); }

  /// Finalizes into an immutable Graph in O(V + E) via a two-pass counting
  /// sort of packed half-edges (no comparison sort, no per-list re-sort).
  /// The builder may be reused afterwards (it retains its edges); call
  /// `clear()` to start over.
  Graph build() const;

  /// The original comparison-sort construction, retained as the oracle for
  /// the property tests: `build()` must produce a byte-identical CSR.
  Graph build_reference() const;

  /// Expert path for topology generators that already emit every undirected
  /// edge as a pair of directed half-edges (csr::pack(u, v) and
  /// csr::pack(v, u)) with no self-loops — typically into
  /// csr::emission_buffer(). Skips the per-edge canonicalization pass
  /// entirely; duplicates are still collapsed. `half_edges` is consumed as
  /// scratch and left in an unspecified state.
  static Graph from_half_edges(std::size_t num_nodes,
                               std::vector<std::uint64_t>& half_edges);

  void clear() { raw_edges_.clear(); }

 private:
  std::size_t num_nodes_;
  std::vector<Edge> raw_edges_;
};

/// Immutable undirected simple graph in compressed sparse row layout.
///
/// Adjacency lists are sorted, enabling O(log d) `has_edge` and deterministic
/// iteration order everywhere (important for reproducible experiments).
class Graph {
 public:
  Graph() = default;

  std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of undirected edges (each counted once).
  std::size_t num_edges() const { return adjacency_.size() / 2; }

  /// Sorted neighbors of `v`.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Maximum node degree; 0 for an empty graph. This is the quantity the
  /// paper's corollaries bound (e.g. deg(B^k_{2,h}) <= 4k+4).
  std::size_t max_degree() const;
  std::size_t min_degree() const;
  double average_degree() const;

  /// Binary search in the sorted adjacency list. Inline: this is the inner
  /// loop of the fault-tolerance verifiers, which call it once per edge.
  bool has_edge(NodeId u, NodeId v) const {
    if (u >= num_nodes() || v >= num_nodes()) return false;
    const auto nb = neighbors(u);
    return std::binary_search(nb.begin(), nb.end(), v);
  }

  /// All edges with u < v, in lexicographic order.
  std::vector<Edge> edges() const;

  /// Structural equality (same node count and identical edge sets).
  bool same_structure(const Graph& other) const;

  friend class GraphBuilder;

 private:
  // offsets_ has num_nodes()+1 entries; adjacency_ stores each undirected
  // edge twice (once per endpoint).
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> adjacency_;
};

/// Convenience: builds a graph directly from an edge list.
Graph make_graph(std::size_t num_nodes, const std::vector<Edge>& edges);

}  // namespace ftdb
