#include "graph/io.hpp"

#include <algorithm>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace ftdb {

std::string to_dot(const Graph& g, const DotOptions& options) {
  std::ostringstream out;
  out << "graph " << options.graph_name << " {\n";
  out << "  layout=circo;\n  node [shape=circle];\n";
  std::vector<bool> highlighted(g.num_nodes(), false);
  for (NodeId v : options.highlighted_nodes) {
    if (v < g.num_nodes()) highlighted[v] = true;
  }
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    out << "  n" << v;
    out << " [label=\"";
    if (v < options.node_labels.size() && !options.node_labels[v].empty()) {
      out << options.node_labels[v];
    } else {
      out << v;
    }
    out << "\"";
    if (highlighted[v]) out << ", style=filled, fillcolor=gray";
    out << "];\n";
  }
  const bool style_edges = !options.solid_edges.empty();
  auto is_solid = [&](NodeId u, NodeId v) {
    return std::any_of(options.solid_edges.begin(), options.solid_edges.end(), [&](const Edge& e) {
      return (e.u == u && e.v == v) || (e.u == v && e.v == u);
    });
  };
  for (const Edge& e : g.edges()) {
    out << "  n" << e.u << " -- n" << e.v;
    if (style_edges) {
      out << (is_solid(e.u, e.v) ? " [style=solid]" : " [style=dashed]");
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream out;
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << '\n';
  return out.str();
}

Graph from_edge_list(std::istream& in) {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  if (!(in >> nodes >> edges)) throw std::runtime_error("from_edge_list: bad header");
  GraphBuilder b(nodes);
  b.reserve_edges(edges);
  for (std::size_t i = 0; i < edges; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    if (!(in >> u >> v)) throw std::runtime_error("from_edge_list: truncated edge list");
    b.add_edge(u, v);
  }
  return b.build();
}

std::string format_adjacency(const Graph& g) {
  std::ostringstream out;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    out << v << ":";
    for (NodeId w : g.neighbors(static_cast<NodeId>(v))) out << ' ' << w;
    out << '\n';
  }
  return out.str();
}

}  // namespace ftdb
