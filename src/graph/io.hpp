// Serialization of graphs for the figure-reproduction benches: DOT output
// (matching the style of the paper's Figures 1-5), adjacency listings, and a
// plain edge-list format for interchange.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ftdb {

struct DotOptions {
  std::string graph_name = "G";
  /// Optional per-node label override; empty = numeric labels.
  std::vector<std::string> node_labels;
  /// Nodes rendered with a distinct style (e.g. faulty nodes in Fig. 3/5).
  std::vector<NodeId> highlighted_nodes;
  /// Edges rendered solid (the "used after reconfiguration" edges of Fig. 3);
  /// all others are rendered dashed when this list is non-empty.
  std::vector<Edge> solid_edges;
};

/// Graphviz DOT rendering of an undirected graph.
std::string to_dot(const Graph& g, const DotOptions& options = {});

/// "u v" per line, lexicographic, preceded by a "nodes edges" header line.
std::string to_edge_list(const Graph& g);

/// Parses the format produced by to_edge_list.
Graph from_edge_list(std::istream& in);

/// Human-readable adjacency table: one line per node, sorted neighbors.
std::string format_adjacency(const Graph& g);

}  // namespace ftdb
