#include "graph/multi_source_bfs.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "graph/bfs_workspace.hpp"  // kUnreachable, the distance sentinel

namespace ftdb {

MultiSourceBfs::BatchStats MultiSourceBfs::run(const Graph& g, NodeId base) {
  const std::size_t n = g.num_nodes();
  const unsigned width = static_cast<unsigned>(std::min<std::size_t>(kBatchWidth, n - base));
  NodeId sources[kBatchWidth];
  for (unsigned i = 0; i < width; ++i) sources[i] = base + i;
  return run_batch(g, {sources, width});
}

MultiSourceBfs::BatchStats MultiSourceBfs::run_batch(const Graph& g,
                                                     std::span<const NodeId> sources,
                                                     std::vector<std::uint32_t>* distances) {
  const std::size_t n = g.num_nodes();
  const unsigned width = static_cast<unsigned>(sources.size());
  if (width == 0 || width > kBatchWidth) {
    throw std::invalid_argument("MultiSourceBfs: batch must hold 1..64 sources");
  }

  // `next_bits_` is zero outside the level loop by invariant (every touched
  // slot is reset before the next level), so only `visited_` needs clearing.
  std::fill(visited_.begin(), visited_.end(), 0);
  if (distances != nullptr) distances->assign(width * n, kUnreachable);
  frontier_.clear();
  for (unsigned i = 0; i < width; ++i) {
    const NodeId s = sources[i];
    if (s >= n || visited_[s] != 0) {
      throw std::invalid_argument("MultiSourceBfs: sources must be distinct and in range");
    }
    visited_[s] = std::uint64_t{1} << i;
    frontier_bits_[s] = std::uint64_t{1} << i;
    frontier_.push_back(s);
    if (distances != nullptr) (*distances)[i * n + s] = 0;
  }

  std::uint64_t sum[kBatchWidth] = {};
  std::uint32_t ecc[kBatchWidth] = {};
  std::uint64_t reached[kBatchWidth] = {};
  for (unsigned i = 0; i < width; ++i) reached[i] = 1;

  std::uint32_t level = 0;
  while (!frontier_.empty()) {
    ++level;
    touched_.clear();
    for (const NodeId v : frontier_) {
      const std::uint64_t m = frontier_bits_[v];
      for (const NodeId u : g.neighbors(v)) {
        if (next_bits_[u] == 0) touched_.push_back(u);
        next_bits_[u] |= m;
      }
    }
    next_frontier_.clear();
    for (const NodeId u : touched_) {
      std::uint64_t fresh = next_bits_[u] & ~visited_[u];
      next_bits_[u] = 0;
      if (fresh == 0) continue;
      visited_[u] |= fresh;
      frontier_bits_[u] = fresh;
      next_frontier_.push_back(u);
      while (fresh != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(fresh));
        fresh &= fresh - 1;
        sum[b] += level;
        ecc[b] = level;
        ++reached[b];
        if (distances != nullptr) (*distances)[b * n + u] = level;
      }
    }
    frontier_.swap(next_frontier_);
  }

  BatchStats stats;
  for (unsigned i = 0; i < width; ++i) {
    stats.reachable_pairs += reached[i] - 1;
    stats.total_distance += sum[i];
    stats.max_finite_distance = std::max(stats.max_finite_distance, ecc[i]);
    stats.all_reach_all = stats.all_reach_all && reached[i] == n;
  }
  return stats;
}

}  // namespace ftdb
