// Bit-parallel multi-source BFS kernel.
//
// Processes up to 64 BFS sources simultaneously, one bit per source: a
// level-synchronous traversal propagates all frontiers at once with
// word-wide ORs over the CSR, so each adjacency list is walked once per
// batch per level instead of once per source. On the small-diameter
// expander-like graphs of the paper this turns V scalar traversals into
// ~V/64 word traversals — the core of both the serial `diameter()` and the
// threaded `analysis::all_pairs_summary` engine (batches are independent,
// so callers may shard them across threads; one kernel instance per thread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb {

class MultiSourceBfs {
 public:
  static constexpr std::size_t kBatchWidth = 64;

  /// Aggregates over one batch of sources.
  struct BatchStats {
    std::uint64_t reachable_pairs = 0;      ///< ordered (source, other) pairs reached
    std::uint64_t total_distance = 0;       ///< sum of finite distances from the sources
    std::uint32_t max_finite_distance = 0;  ///< max eccentricity over the batch
    bool all_reach_all = true;              ///< every source reached every node
  };

  explicit MultiSourceBfs(std::size_t num_nodes)
      : visited_(num_nodes, 0), frontier_bits_(num_nodes, 0), next_bits_(num_nodes, 0) {}

  /// Runs the batch of sources [base, min(base + kBatchWidth, num_nodes)).
  BatchStats run(const Graph& g, NodeId base);

  /// Runs an explicit batch of up to kBatchWidth *distinct* sources
  /// (sources[i] rides bit i) and, when `distances` is non-null, writes the
  /// full distance vector of every source in the one pass:
  /// (*distances)[i * num_nodes + v] = d(sources[i], v), kUnreachable when
  /// unreached. This is the batch counterpart of BfsWorkspace::distances —
  /// callers that need whole rows of the distance matrix (route-stretch
  /// audits, embedding metrics) get 64 rows per CSR sweep instead of one.
  BatchStats run_batch(const Graph& g, std::span<const NodeId> sources,
                       std::vector<std::uint32_t>* distances = nullptr);

 private:
  std::vector<std::uint64_t> visited_;        // mask of sources that reached v
  std::vector<std::uint64_t> frontier_bits_;  // masks for the current frontier
  std::vector<std::uint64_t> next_bits_;      // masks accumulated for the next level
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_frontier_;
  std::vector<NodeId> touched_;
};

}  // namespace ftdb
