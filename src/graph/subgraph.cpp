#include "graph/subgraph.hpp"

#include <algorithm>

namespace ftdb {

InducedSubgraph induced_subgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  std::vector<NodeId> keep = nodes;
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());

  std::vector<NodeId> new_label(g.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < keep.size(); ++i) new_label[keep[i]] = static_cast<NodeId>(i);

  GraphBuilder b(keep.size());
  for (NodeId u : keep) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v && new_label[v] != kInvalidNode) {
        b.add_edge(new_label[u], new_label[v]);
      }
    }
  }
  return InducedSubgraph{b.build(), std::move(keep)};
}

InducedSubgraph induced_subgraph_excluding(const Graph& g, const std::vector<NodeId>& removed) {
  std::vector<bool> dead(g.num_nodes(), false);
  for (NodeId v : removed) dead[v] = true;
  std::vector<NodeId> keep;
  keep.reserve(g.num_nodes() - removed.size());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (!dead[v]) keep.push_back(static_cast<NodeId>(v));
  }
  return induced_subgraph(g, keep);
}

bool is_identity_subgraph(const Graph& h, const Graph& g) {
  if (h.num_nodes() > g.num_nodes()) return false;
  for (std::size_t u = 0; u < h.num_nodes(); ++u) {
    for (NodeId v : h.neighbors(static_cast<NodeId>(u))) {
      if (static_cast<NodeId>(u) < v && !g.has_edge(static_cast<NodeId>(u), v)) return false;
    }
  }
  return true;
}

}  // namespace ftdb
