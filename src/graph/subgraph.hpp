// Induced subgraphs and subgraph relations — the vocabulary of Hayes's fault
// model: a fault set F kills |F| nodes of the fault-tolerant graph G', and the
// question is whether the subgraph induced by the survivors contains the
// target graph.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace ftdb {

/// Result of inducing a subgraph: the new graph plus the mapping from new
/// (dense) labels back to the labels in the original graph.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;  // new label -> original label (sorted)
};

/// Subgraph of `g` induced by `nodes` (duplicates ignored; order irrelevant).
/// New labels are assigned in increasing order of original label, matching the
/// paper's rank-based relabeling.
InducedSubgraph induced_subgraph(const Graph& g, const std::vector<NodeId>& nodes);

/// Subgraph of `g` induced by all nodes *except* `removed` — the "survivor"
/// graph after a fault set.
InducedSubgraph induced_subgraph_excluding(const Graph& g, const std::vector<NodeId>& removed);

/// True when H is a subgraph of G under the *identity* mapping:
/// V(H) ⊆ V(G) (by count) and E(H) ⊆ E(G).
bool is_identity_subgraph(const Graph& h, const Graph& g);

}  // namespace ftdb
