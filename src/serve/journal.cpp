#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ftdb::serve {
namespace {

constexpr char kMagic[8] = {'F', 'T', 'D', 'B', 'J', 'R', 'N', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kRecordBytes = 13;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

void put_u32(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

std::uint32_t get_u32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) | (static_cast<std::uint32_t>(in[3]) << 24);
}

void encode_header(unsigned char* out, std::uint64_t fingerprint) {
  std::memcpy(out, kMagic, 8);
  put_u32(out + 8, kVersion);
  put_u32(out + 12, static_cast<std::uint32_t>(fingerprint));
  put_u32(out + 16, static_cast<std::uint32_t>(fingerprint >> 32));
  put_u32(out + 20, crc32(out, 20));
}

void encode_record(unsigned char* out, const JournalRecord& r) {
  out[0] = static_cast<unsigned char>(r.op);
  put_u32(out + 1, r.a);
  put_u32(out + 5, r.b);
  put_u32(out + 9, crc32(out, 9));
}

void write_all(int fd, const unsigned char* data, std::size_t len, const std::string& path) {
  while (len > 0) {
    const ssize_t w = ::write(fd, data, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("Journal: write failed for " + path + ": " +
                               std::strerror(errno));
    }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
}

std::vector<unsigned char> read_all(int fd, const std::string& path) {
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("Journal: read failed for " + path + ": " + std::strerror(errno));
    }
    if (r == 0) return bytes;
    bytes.insert(bytes.end(), buf, buf + r);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    throw std::runtime_error("Journal: fsync failed for " + path + ": " + std::strerror(errno));
  }
}

// Best-effort durability for the rename itself.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Journal::Journal(std::string path, std::uint64_t fingerprint, bool fsync_writes)
    : path_(std::move(path)), fingerprint_(fingerprint), fsync_(fsync_writes) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("Journal: cannot open " + path_ + ": " + std::strerror(errno));
  }
  const std::vector<unsigned char> bytes = read_all(fd_, path_);

  if (bytes.empty()) {
    unsigned char header[kHeaderBytes];
    encode_header(header, fingerprint_);
    write_all(fd_, header, sizeof header, path_);
    if (fsync_) fsync_or_throw(fd_, path_);
    return;
  }

  if (bytes.size() < kHeaderBytes || std::memcmp(bytes.data(), kMagic, 8) != 0 ||
      get_u32(bytes.data() + 20) != crc32(bytes.data(), 20)) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Journal: corrupt header in " + path_);
  }
  if (get_u32(bytes.data() + 8) != kVersion) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Journal: unsupported version in " + path_);
  }
  const std::uint64_t file_fp = static_cast<std::uint64_t>(get_u32(bytes.data() + 12)) |
                                (static_cast<std::uint64_t>(get_u32(bytes.data() + 16)) << 32);
  if (file_fp != fingerprint_) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Journal: config fingerprint mismatch in " + path_ +
                             " (journal belongs to a different machine shape)");
  }

  // Replay complete, CRC-clean frames; anything after the first bad one is a
  // torn tail from an interrupted append.
  std::size_t off = kHeaderBytes;
  while (bytes.size() - off >= kRecordBytes) {
    const unsigned char* f = bytes.data() + off;
    if (get_u32(f + 9) != crc32(f, 9)) break;
    const std::uint8_t op = f[0];
    if (op < static_cast<std::uint8_t>(JournalOp::kFaultNode) ||
        op > static_cast<std::uint8_t>(JournalOp::kRepair)) {
      break;
    }
    recovered_.push_back(
        {static_cast<JournalOp>(op), get_u32(f + 1), get_u32(f + 5)});
    off += kRecordBytes;
  }
  truncated_ = bytes.size() - off;
  num_records_ = recovered_.size();
  if (truncated_ > 0 && ::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Journal: cannot truncate torn tail of " + path_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Journal: seek failed for " + path_);
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append(const JournalRecord& record) {
  if (fd_ < 0) {
    throw std::runtime_error("Journal: " + path_ +
                             " is poisoned by an earlier failed append; restart and recover");
  }
  unsigned char frame[kRecordBytes];
  encode_record(frame, record);
  // The file length always equals size_bytes() here: construction truncates
  // any torn tail, and a failed append rolls back (or poisons fd_).
  const off_t before = static_cast<off_t>(size_bytes());
  try {
    write_all(fd_, frame, sizeof frame, path_);
    if (fsync_) fsync_or_throw(fd_, path_);
  } catch (...) {
    // Bytes may have reached the file before the failure; the caller observes
    // a failed mutation, so a post-crash replay must not see this record.
    // Roll the file back to its pre-append length. If the rollback itself
    // fails, poison the journal — every later append throws, forcing a
    // restart-and-recover instead of silently diverging from the log.
    if (::ftruncate(fd_, before) != 0 || ::lseek(fd_, before, SEEK_SET) < 0) {
      ::close(fd_);
      fd_ = -1;
    }
    throw;
  }
  ++num_records_;
}

void Journal::rewrite(const std::vector<JournalRecord>& records) {
  const std::string tmp = path_ + ".tmp";
  const int tmp_fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    throw std::runtime_error("Journal: cannot open " + tmp + ": " + std::strerror(errno));
  }
  try {
    std::vector<unsigned char> body(kHeaderBytes + records.size() * kRecordBytes);
    encode_header(body.data(), fingerprint_);
    for (std::size_t i = 0; i < records.size(); ++i) {
      encode_record(body.data() + kHeaderBytes + i * kRecordBytes, records[i]);
    }
    write_all(tmp_fd, body.data(), body.size(), tmp);
    fsync_or_throw(tmp_fd, tmp);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      throw std::runtime_error("Journal: rename " + tmp + " -> " + path_ + " failed: " +
                               std::strerror(errno));
    }
  } catch (...) {
    ::close(tmp_fd);
    throw;
  }
  fsync_parent_dir(path_);
  // After the rename, tmp_fd refers to the inode now linked at path_.
  ::close(fd_);
  fd_ = tmp_fd;
  num_records_ = records.size();
}

std::size_t Journal::size_bytes() const {
  return kHeaderBytes + num_records_ * kRecordBytes;
}

}  // namespace ftdb::serve
