// Crash-recoverable fault journal for the always-on reconfiguration service.
//
// The journal is the service's only durable state: an append-only binary log
// of validated fault/repair events, written *before* each event is applied
// (write-ahead), so replaying the log through the same deterministic
// reconfiguration pipeline reconstructs the exact pre-crash machine state —
// embedding, retired set, and incrementally-patched router alike.
//
// On-disk format (all integers little-endian):
//
//   header (24 bytes):
//     magic     8 bytes  "FTDBJRN1"
//     version   u32      1
//     config    u64      fingerprint of the ServeConfig that owns this log —
//                        a journal replayed against a different machine shape
//                        would silently diverge, so mismatches are refused
//     crc       u32      CRC-32 of the preceding 20 bytes
//
//   record (13 bytes each):
//     op        u8       JournalOp
//     a         u32      primary node (fault victim / bus driver / repair)
//     b         u32      secondary node (link's second endpoint; else 0)
//     crc       u32      CRC-32 of the preceding 9 bytes
//
// A crash can only tear the final record (appends are sequential); open()
// truncates any tail whose frame is short or whose CRC fails and reports the
// dropped byte count. Each append is optionally fsync'd, which bounds loss to
// events the caller was never told were durable.
//
// `rewrite()` implements checkpoint compaction: the full log is replaced by
// an equivalent minimal one (temp file + fsync + atomic rename), so the log's
// length tracks the number of *outstanding* faults, not service lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ftdb::serve {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `len` bytes.
std::uint32_t crc32(const void* data, std::size_t len);

enum class JournalOp : std::uint8_t {
  kFaultNode = 1,
  kFaultLink = 2,
  kFaultBus = 3,
  kRepair = 4,
};

struct JournalRecord {
  JournalOp op = JournalOp::kFaultNode;
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  bool operator==(const JournalRecord&) const = default;
};

class Journal {
 public:
  /// Opens (creating if absent) the journal at `path`. An existing file must
  /// carry a valid header with this `fingerprint`; records after a torn or
  /// corrupt frame are truncated away. Throws std::runtime_error on I/O
  /// failure, header corruption, or fingerprint mismatch.
  Journal(std::string path, std::uint64_t fingerprint, bool fsync_writes);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Records recovered from the existing file at open time.
  const std::vector<JournalRecord>& recovered() const { return recovered_; }

  /// Bytes dropped from a torn tail at open time (0 for a clean log).
  std::size_t truncated_bytes() const { return truncated_; }

  /// Appends one record (and fsyncs, when enabled). The record is durable
  /// when this returns.
  void append(const JournalRecord& record);

  /// Atomically replaces the log body with `records` (checkpoint
  /// compaction): writes header + records to a temp file, fsyncs it, and
  /// renames it over the journal.
  void rewrite(const std::vector<JournalRecord>& records);

  /// Records currently in the file (recovered + appended - compacted away).
  std::size_t num_records() const { return num_records_; }

  /// Current file size in bytes.
  std::size_t size_bytes() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t fingerprint_ = 0;
  bool fsync_ = true;
  int fd_ = -1;
  std::vector<JournalRecord> recovered_;
  std::size_t truncated_ = 0;
  std::size_t num_records_ = 0;
};

}  // namespace ftdb::serve
