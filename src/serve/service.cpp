#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::serve {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
}

Graph build_target(const ServeConfig& config) {
  if (config.digits < 2) {
    // The shape-delta router's reference detection needs h >= 2.
    throw std::invalid_argument("ReconfigurationService: digits must be >= 2");
  }
  if (config.family == Family::kDeBruijn) {
    return debruijn_graph({.base = config.base, .digits = config.digits});
  }
  return shuffle_exchange_graph(config.digits);
}

Graph build_ft_graph(const ServeConfig& config) {
  if (config.family == Family::kDeBruijn) {
    return ft_debruijn_graph(
        {.base = config.base, .digits = config.digits, .spares = config.spares});
  }
  return ft_shuffle_exchange_natural(config.digits, config.spares).ft_graph;
}

FaultEvent event_from_record(const JournalRecord& record) {
  switch (record.op) {
    case JournalOp::kFaultNode:
      return {FaultKind::kNode, record.a, 0};
    case JournalOp::kFaultLink:
      return {FaultKind::kLink, record.a, record.b};
    case JournalOp::kFaultBus:
      return {FaultKind::kBus, record.a, 0};
    case JournalOp::kRepair:
      break;
  }
  throw std::logic_error("event_from_record: not a fault record");
}

JournalOp op_from_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNode: return JournalOp::kFaultNode;
    case FaultKind::kLink: return JournalOp::kFaultLink;
    case FaultKind::kBus: return JournalOp::kFaultBus;
  }
  throw std::logic_error("op_from_kind: bad kind");
}

}  // namespace

std::uint64_t config_fingerprint(const ServeConfig& config) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(config.family));
  fnv_mix(h, config.family == Family::kDeBruijn ? config.base : 2);
  fnv_mix(h, config.digits);
  fnv_mix(h, config.spares);
  return h;
}

const char* mutation_status_name(MutationStatus status) {
  switch (status) {
    case MutationStatus::kAccepted: return "accepted";
    case MutationStatus::kRedundant: return "redundant";
    case MutationStatus::kBudgetExhausted: return "budget-exhausted";
    case MutationStatus::kRepaired: return "repaired";
    case MutationStatus::kNotRetired: return "not-retired";
  }
  return "?";
}

ReconfigurationService::ReconfigurationService(const ServeConfig& config)
    : config_(config),
      target_(build_target(config)),
      recon_(build_ft_graph(config), target_) {
  num_physical_ = target_.num_nodes() + config.spares;
  healthy_ = sim::make_router(target_);

  auto bare = std::make_shared<const sim::CompressedRouter>(target_);
  if (!bare->uses_reference_shape()) {
    throw std::logic_error("ReconfigurationService: healthy target not shape-detected");
  }
  head_owner_ = build_epoch(std::move(bare));
  head_.store(head_owner_.get());

  if (!config_.journal_path.empty()) {
    journal_.emplace(config_.journal_path, config_fingerprint(config_), config_.fsync_journal);
    for (const JournalRecord& record : journal_->recovered()) {
      if (record.op == JournalOp::kRepair) {
        apply_repair(record.a, /*journal=*/false);
      } else {
        apply_event(event_from_record(record), /*journal=*/false);
      }
    }
    replayed_ = journal_->recovered().size();
  }
}

ReconfigurationService::~ReconfigurationService() = default;

MutationStatus ReconfigurationService::fault(const FaultEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  return apply_event(event, /*journal=*/true);
}

MutationStatus ReconfigurationService::repair(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  return apply_repair(node, /*journal=*/true);
}

MutationStatus ReconfigurationService::apply_event(const FaultEvent& event, bool journal) {
  // Validate before journaling: only events the reconfigurator is guaranteed
  // to accept without throwing may reach the log, so replay never throws.
  if (event.node >= num_physical_) {
    throw std::out_of_range("ReconfigurationService::fault: node out of range");
  }
  if (event.kind == FaultKind::kLink) {
    if (event.other >= num_physical_) {
      throw std::out_of_range("ReconfigurationService::fault: link endpoint out of range");
    }
    if (event.node == event.other) {
      throw std::invalid_argument("ReconfigurationService::fault: self-link fault");
    }
  }
  if (journal && journal_) {
    journal_->append({op_from_kind(event.kind), event.node, event.other});
  }
  const EventStatus status = recon_.apply(event);
  switch (status) {
    case EventStatus::kRedundant:
      return MutationStatus::kRedundant;
    case EventStatus::kBudgetExhausted:
      return MutationStatus::kBudgetExhausted;
    case EventStatus::kAccepted:
      break;
  }
  // Accepted events of every kind retire exactly event.node. Only faults in
  // the logical region [0, N) change the bare (degraded-shape) view; a spare
  // region fault shifts the embedding but leaves the bare router untouched.
  std::shared_ptr<const sim::CompressedRouter> bare = head_owner_->bare;
  if (event.node < target_.num_nodes()) {
    auto patched = std::make_shared<sim::CompressedRouter>(*bare);
    patched->apply_fault(event.node);
    bare = std::move(patched);
  }
  publish(build_epoch(std::move(bare)));
  return MutationStatus::kAccepted;
}

MutationStatus ReconfigurationService::apply_repair(NodeId node, bool journal) {
  if (node >= num_physical_) {
    throw std::out_of_range("ReconfigurationService::repair: node out of range");
  }
  if (journal && journal_) {
    journal_->append({JournalOp::kRepair, node, 0});
  }
  if (!recon_.repair(node)) return MutationStatus::kNotRetired;
  std::shared_ptr<const sim::CompressedRouter> bare = head_owner_->bare;
  if (node < target_.num_nodes()) {
    auto patched = std::make_shared<sim::CompressedRouter>(*bare);
    patched->retract_fault(node);
    bare = std::move(patched);
  }
  publish(build_epoch(std::move(bare)));
  return MutationStatus::kRepaired;
}

void ReconfigurationService::checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!journal_) return;
  // The retired set fully determines the state (the embedding is recomputed
  // from it, the bare router is canonical), so one node-fault record per
  // outstanding fault is an equivalent, minimal log.
  std::vector<JournalRecord> compact;
  compact.reserve(recon_.retired().size());
  for (const NodeId node : recon_.retired()) {
    compact.push_back({JournalOp::kFaultNode, node, 0});
  }
  journal_->rewrite(compact);
}

std::shared_ptr<const Epoch> ReconfigurationService::build_epoch(
    std::shared_ptr<const sim::CompressedRouter> bare) {
  auto epoch = std::make_shared<Epoch>();
  epoch->id = epoch_counter_++;
  epoch->phi = recon_.mapping();
  epoch->retired = recon_.retired();
  epoch->degraded = recon_.spares_remaining() == 0;
  epoch->bare = std::move(bare);
  return epoch;
}

void ReconfigurationService::publish(std::shared_ptr<const Epoch> next) {
  retired_epochs_.push_back(std::move(head_owner_));
  head_owner_ = std::move(next);
  head_.store(head_owner_.get());
  sweep_retired_epochs();
}

void ReconfigurationService::sweep_retired_epochs() const {
  std::erase_if(retired_epochs_, [this](const std::shared_ptr<const Epoch>& epoch) {
    const Epoch* raw = epoch.get();
    if (raw == head_.load()) return false;
    for (const auto& slot : pinned_) {
      if (slot.load() == raw) return false;  // still pinned by a reader
    }
    return true;
  });
}

ReconfigurationService::Reader ReconfigurationService::reader() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < kMaxReaders; ++i) {
    if (!slot_used_[i].load()) {
      slot_used_[i].store(true);
      pinned_[i].store(nullptr);
      return Reader(this, i);
    }
  }
  throw std::runtime_error("ReconfigurationService::reader: all reader slots in use");
}

std::shared_ptr<const Epoch> ReconfigurationService::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  sweep_retired_epochs();
  return head_owner_;
}

ReconfigurationService::ServiceStats ReconfigurationService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  sweep_retired_epochs();
  ServiceStats s;
  s.epoch = head_owner_->id;
  s.epochs_live = 1 + retired_epochs_.size();
  s.faults_outstanding = recon_.faults_outstanding();
  s.spares_remaining = recon_.spares_remaining();
  s.spare_budget = recon_.spare_budget();
  s.degraded = head_owner_->degraded;
  s.journal_records = journal_ ? journal_->num_records() : 0;
  s.journal_bytes = journal_ ? journal_->size_bytes() : 0;
  s.replayed_events = replayed_;
  s.bare = head_owner_->bare->stats();
  return s;
}

std::uint64_t ReconfigurationService::state_hash() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, head_owner_->retired.size());
  for (const NodeId node : head_owner_->retired) fnv_mix(h, node);
  for (const NodeId p : head_owner_->phi) fnv_mix(h, p);
  fnv_mix(h, head_owner_->degraded ? 1 : 0);
  fnv_mix(h, head_owner_->bare->stats().state_hash);
  return h;
}

// ---- Reader ----

ReconfigurationService::Reader::Reader(Reader&& other) noexcept
    : service_(other.service_), slot_(other.slot_) {
  other.service_ = nullptr;
}

ReconfigurationService::Reader::~Reader() {
  if (service_ == nullptr) return;
  service_->pinned_[slot_].store(nullptr);
  service_->slot_used_[slot_].store(false);
}

const Epoch* ReconfigurationService::Reader::pin() const {
  auto& slot = service_->pinned_[slot_];
  const Epoch* epoch = service_->head_.load();
  for (;;) {
    // Publish the claim, then re-validate: if the head moved between the load
    // and the claim, the writer's sweep may not have seen the pin, so retry
    // with the new head. A validated pin is protected — every sweep checks
    // the slot before reclaiming. (The pointer is not dereferenced until
    // validated, so a stale claim is harmless.)
    slot.store(epoch);
    const Epoch* head_now = service_->head_.load();
    if (head_now == epoch) return epoch;
    epoch = head_now;
  }
}

void ReconfigurationService::Reader::unpin() const {
  service_->pinned_[slot_].store(nullptr);
}

std::uint64_t ReconfigurationService::Reader::epoch_id() const {
  const Epoch* e = pin();
  const std::uint64_t id = e->id;
  unpin();
  return id;
}

bool ReconfigurationService::Reader::degraded() const {
  const Epoch* e = pin();
  const bool d = e->degraded;
  unpin();
  return d;
}

NodeId ReconfigurationService::Reader::next_hop(NodeId dest, NodeId node) const {
  const std::size_t n = service_->target_.num_nodes();
  if (dest >= n || node >= n) {
    throw std::out_of_range("Reader::next_hop: logical id out of range");
  }
  const NodeId hop = service_->healthy_->next_hop(dest, node);
  const Epoch* e = pin();
  const NodeId physical = e->phi[hop];
  unpin();
  return physical;
}

void ReconfigurationService::Reader::next_hops(std::span<const NodeId> dests,
                                               std::span<const NodeId> nodes,
                                               std::span<NodeId> out) const {
  if (dests.size() != nodes.size() || dests.size() != out.size()) {
    throw std::invalid_argument("Reader::next_hops: span sizes differ");
  }
  const std::size_t n = service_->target_.num_nodes();
  for (std::size_t i = 0; i < dests.size(); ++i) {
    if (dests[i] >= n || nodes[i] >= n) {
      throw std::out_of_range("Reader::next_hops: logical id out of range");
    }
  }
  service_->healthy_->route_many(dests, nodes, out);
  const Epoch* e = pin();
  for (NodeId& hop : out) hop = e->phi[hop];
  unpin();
}

std::vector<NodeId> ReconfigurationService::Reader::route(NodeId from, NodeId dest) const {
  const std::size_t n = service_->target_.num_nodes();
  if (dest >= n || from >= n) {
    throw std::out_of_range("Reader::route: logical id out of range");
  }
  std::vector<NodeId> path = service_->healthy_->path(from, dest);
  const Epoch* e = pin();
  for (NodeId& node : path) node = e->phi[node];
  unpin();
  return path;
}

NodeId ReconfigurationService::Reader::bare_next_hop(NodeId dest, NodeId node) const {
  const std::size_t n = service_->target_.num_nodes();
  if (dest >= n || node >= n) {
    throw std::out_of_range("Reader::bare_next_hop: logical id out of range");
  }
  const Epoch* e = pin();
  const NodeId hop = e->bare->next_hop(dest, node);
  unpin();
  return hop;
}

std::vector<NodeId> ReconfigurationService::Reader::bare_route(NodeId from, NodeId dest) const {
  const std::size_t n = service_->target_.num_nodes();
  if (dest >= n || from >= n) {
    throw std::out_of_range("Reader::bare_route: logical id out of range");
  }
  const Epoch* e = pin();
  std::vector<NodeId> path = e->bare->path(from, dest);
  unpin();
  return path;
}

}  // namespace ftdb::serve
