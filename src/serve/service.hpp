// Always-on reconfiguration service (ROADMAP item 1).
//
// A long-lived process wrapper around one fault-tolerant machine: it owns an
// OnlineReconfigurator (the Theorem 1/2 embedding state), consumes a stream
// of fault/repair events, and answers routing queries *concurrently* with
// reconfiguration. Three mechanisms make "always-on" real:
//
//  * Incremental router repair. The degraded-machine view (the target shape
//    minus failed logical nodes — the paper's bare-machine baseline) is
//    served by a shape-delta CompressedRouter that is *patched* per event
//    (CompressedRouter::apply_fault / retract_fault, ~f*h new exception
//    entries per fault) instead of rebuilt with a BFS per destination. The
//    patched state is canonical, so tests compare it hash-for-hash against a
//    from-scratch build.
//
//  * Epoch-based publication. Every accepted mutation builds a fresh
//    immutable Epoch (embedding phi, retired set, degraded flag, bare
//    router) off to the side and publishes it with one atomic pointer store.
//    Readers pin the head pointer into a per-reader slot (store, then
//    re-validate the head — a pointer-pinning RCU variant), so queries never
//    take the writer lock and never block behind a reconfiguration in
//    progress. Retired epochs are reclaimed only when no slot pins them.
//
//  * Crash recovery. Every validated event is appended to a write-ahead
//    Journal (serve/journal.hpp) before it is applied. Because the
//    reconfiguration pipeline is deterministic and the incremental router
//    patches are canonical, replaying the journal reproduces the pre-crash
//    state exactly (state_hash-identical). `checkpoint()` compacts the log
//    to one record per outstanding fault.
//
// Degraded mode: when the spare budget is exhausted (spares_remaining == 0),
// further faults are refused with MutationStatus::kBudgetExhausted — the
// machine cannot reconfigure past its design tolerance — but queries keep
// flowing on the last good epoch and repairs still apply (and exit degraded
// mode). The refusal is journaled, so a replayed log converges to the same
// refusals and the same state.
//
// Query surfaces (both per-epoch-consistent):
//  * FT surface — logical-space routes on the *healthy* target shape,
//    translated to physical node ids through the current embedding phi.
//    Under the Theorem 1/2 invariant the translation is dilation-1: every
//    logical hop is a healthy physical link.
//  * Bare surface — routes on the degraded target shape itself (failed
//    logical nodes removed, no spares), the paper's no-reconfiguration
//    baseline, served by the incrementally-patched CompressedRouter.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ft/online.hpp"
#include "graph/graph.hpp"
#include "serve/journal.hpp"
#include "sim/router.hpp"

namespace ftdb::serve {

enum class Family : std::uint8_t { kDeBruijn = 0, kShuffleExchange = 1 };

struct ServeConfig {
  Family family = Family::kDeBruijn;
  std::uint64_t base = 2;     // de Bruijn base m (ignored for shuffle-exchange)
  unsigned digits = 4;        // h: N = base^digits (2^digits for SE)
  unsigned spares = 2;        // k: the spare budget
  std::string journal_path;   // empty = volatile service (no crash recovery)
  bool fsync_journal = true;  // fsync per append (tests may disable for speed)
};

/// Stable 64-bit digest of the machine shape; stored in the journal header so
/// a log can never be replayed against a differently-shaped service.
std::uint64_t config_fingerprint(const ServeConfig& config);

enum class MutationStatus : std::uint8_t {
  kAccepted,         // fault applied; machine reconfigured, new epoch live
  kRedundant,        // fault already covered by a retired node; no-op
  kBudgetExhausted,  // degraded mode: refused, state unchanged
  kRepaired,         // repair applied; new epoch live
  kNotRetired,       // repair of a healthy node; no-op
};

const char* mutation_status_name(MutationStatus status);

/// One immutable published state of the machine. Readers obtain it via
/// Reader pinning (wait-free queries) or ReconfigurationService::snapshot()
/// (shared ownership, writer lock).
struct Epoch {
  std::uint64_t id = 0;            // session-local sequence number
  std::vector<NodeId> phi;         // logical -> physical embedding
  std::vector<NodeId> retired;     // retired physical nodes, sorted
  bool degraded = false;           // spare budget exhausted
  std::shared_ptr<const sim::CompressedRouter> bare;  // degraded-shape router
};

class ReconfigurationService {
 public:
  static constexpr std::size_t kMaxReaders = 64;

  /// Builds the machine and, when `config.journal_path` is set, replays any
  /// existing journal to the pre-crash state. Throws std::invalid_argument
  /// on a bad config and std::runtime_error on journal corruption/mismatch.
  explicit ReconfigurationService(const ServeConfig& config);
  ~ReconfigurationService();

  ReconfigurationService(const ReconfigurationService&) = delete;
  ReconfigurationService& operator=(const ReconfigurationService&) = delete;

  // ---- mutation surface (serialized; concurrent with readers) ----

  /// Journals and applies one fault event. Throws std::out_of_range /
  /// std::invalid_argument for malformed events (never journaled).
  MutationStatus fault(const FaultEvent& event);

  /// Journals and applies a repair of `node`.
  MutationStatus repair(NodeId node);

  /// Compacts the journal to one fault record per outstanding fault.
  /// State (and state_hash) are unchanged. No-op for a volatile service.
  void checkpoint();

  // ---- query surface ----

  /// A registered wait-free query handle. Queries pin the current epoch for
  /// their duration, so each answer is consistent with exactly one published
  /// state even while the writer is mid-mutation. Create one per thread.
  class Reader {
   public:
    Reader(Reader&& other) noexcept;
    Reader& operator=(Reader&&) = delete;
    Reader(const Reader&) = delete;
    ~Reader();

    std::uint64_t epoch_id() const;
    bool degraded() const;

    /// FT surface: physical id of the next hop towards logical `dest` from
    /// logical `node` (phi of the canonical healthy-shape hop).
    NodeId next_hop(NodeId dest, NodeId node) const;

    /// Batched FT surface: out[i] = next_hop(dests[i], nodes[i]) resolved
    /// under ONE epoch pin and one Router::route_many call, so a whole
    /// forwarding wave shares the implicit backend's incremental state and
    /// sees a single consistent embedding.
    void next_hops(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                   std::span<NodeId> out) const;

    /// FT surface: full physical path for logical from -> dest (inclusive).
    std::vector<NodeId> route(NodeId from, NodeId dest) const;

    /// Bare surface: canonical next hop on the degraded target shape, or
    /// kInvalidNode when dest is unreachable around the faults.
    NodeId bare_next_hop(NodeId dest, NodeId node) const;

    /// Bare surface: full path on the degraded shape; empty if unreachable.
    std::vector<NodeId> bare_route(NodeId from, NodeId dest) const;

   private:
    friend class ReconfigurationService;
    Reader(ReconfigurationService* service, std::size_t slot)
        : service_(service), slot_(slot) {}

    const Epoch* pin() const;
    void unpin() const;

    ReconfigurationService* service_;
    std::size_t slot_;
  };

  /// Registers a reader slot (throws std::runtime_error when kMaxReaders are
  /// live). The Reader unregisters on destruction.
  Reader reader();

  /// Shared ownership of the current epoch (takes the writer lock; for
  /// tests/tools, not the hot query path).
  std::shared_ptr<const Epoch> snapshot() const;

  // ---- introspection ----

  struct ServiceStats {
    std::uint64_t epoch = 0;
    std::size_t epochs_live = 0;  // head + not-yet-reclaimed retired epochs
    std::size_t faults_outstanding = 0;
    std::size_t spares_remaining = 0;
    std::size_t spare_budget = 0;
    bool degraded = false;
    std::size_t journal_records = 0;
    std::size_t journal_bytes = 0;
    std::size_t replayed_events = 0;  // recovered from the journal at startup
    sim::CompressedRouter::Stats bare;
  };
  ServiceStats stats() const;

  /// Deterministic digest of the replay-relevant state: retired set, phi,
  /// degraded flag, and the bare router's canonical state. Session-local
  /// epoch ids are deliberately excluded, so a restarted+replayed (or
  /// checkpoint-compacted) service hashes identically.
  std::uint64_t state_hash() const;

  std::size_t num_logical_nodes() const { return target_.num_nodes(); }
  std::size_t num_physical_nodes() const { return num_physical_; }
  std::size_t replayed_events() const { return replayed_; }
  const Graph& target() const { return target_; }
  const ServeConfig& config() const { return config_; }

 private:
  MutationStatus apply_event(const FaultEvent& event, bool journal);
  MutationStatus apply_repair(NodeId node, bool journal);
  void publish(std::shared_ptr<const Epoch> next);  // writer lock held
  void sweep_retired_epochs() const;                // writer lock held
  std::shared_ptr<const Epoch> build_epoch(
      std::shared_ptr<const sim::CompressedRouter> bare);  // writer lock held

  ServeConfig config_;
  Graph target_;
  std::size_t num_physical_ = 0;
  std::unique_ptr<const sim::Router> healthy_;  // immutable logical-space router
  std::optional<Journal> journal_;
  std::size_t replayed_ = 0;

  mutable std::mutex mu_;  // serializes mutations + snapshot/stats
  OnlineReconfigurator recon_;
  std::uint64_t epoch_counter_ = 0;
  std::shared_ptr<const Epoch> head_owner_;
  // Swept from publish() and from the lock-taking read paths (snapshot/stats),
  // so an epoch unpinned after the last mutation is still reclaimed; mutable
  // lets the const read paths run the sweep.
  mutable std::vector<std::shared_ptr<const Epoch>> retired_epochs_;

  std::atomic<const Epoch*> head_{nullptr};
  std::array<std::atomic<const Epoch*>, kMaxReaders> pinned_{};
  std::array<std::atomic<bool>, kMaxReaders> slot_used_{};
};

}  // namespace ftdb::serve
