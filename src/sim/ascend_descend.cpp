#include "sim/ascend_descend.hpp"

#include <stdexcept>

#include "topology/labels.hpp"

namespace ftdb::sim {

namespace {

void check_size(unsigned h, const std::vector<std::int64_t>& values) {
  if (values.size() != labels::ipow_checked(2, h)) {
    throw std::invalid_argument("ascend/descend: value vector must have 2^h entries");
  }
}

bool verify_link(const Machine* machine, NodeId u, NodeId v) {
  return machine == nullptr || u == v || machine->logical_link_up(u, v);
}

}  // namespace

AscendResult ascend_hypercube(unsigned h, std::vector<std::int64_t> values,
                              const CombineFn& combine) {
  check_size(h, values);
  AscendResult result;
  const std::size_t n = values.size();
  std::vector<std::int64_t> next(n);
  for (unsigned i = 0; i < h; ++i) {
    const std::size_t bit = std::size_t{1} << i;
    for (std::size_t x = 0; x < n; ++x) next[x] = combine(values[x], values[x ^ bit]);
    values.swap(next);
    ++result.communication_steps;
  }
  result.values = std::move(values);
  return result;
}

AscendResult descend_hypercube(unsigned h, std::vector<std::int64_t> values,
                               const CombineFn& combine) {
  check_size(h, values);
  AscendResult result;
  const std::size_t n = values.size();
  std::vector<std::int64_t> next(n);
  for (unsigned i = h; i-- > 0;) {
    const std::size_t bit = std::size_t{1} << i;
    for (std::size_t x = 0; x < n; ++x) next[x] = combine(values[x], values[x ^ bit]);
    values.swap(next);
    ++result.communication_steps;
  }
  result.values = std::move(values);
  return result;
}

AscendResult ascend_shuffle_exchange(unsigned h, std::vector<std::int64_t> values,
                                     const CombineFn& combine, const Machine* machine) {
  check_size(h, values);
  AscendResult result;
  result.links_verified = machine != nullptr;
  const std::size_t n = values.size();
  std::vector<std::int64_t> next(n);
  for (unsigned round = 0; round < h; ++round) {
    // Exchange step: combine across bit 0 of the current position labels.
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t q = p ^ 1u;
      if (!verify_link(machine, static_cast<NodeId>(p), static_cast<NodeId>(q))) {
        throw std::runtime_error("ascend_shuffle_exchange: exchange link down");
      }
      next[p] = combine(values[p], values[q]);
    }
    values.swap(next);
    ++result.communication_steps;
    // Shuffle step: the item at p moves to rotate_left(p).
    for (std::size_t p = 0; p < n; ++p) {
      const auto q = static_cast<std::size_t>(labels::rotate_left(p, 2, h));
      if (!verify_link(machine, static_cast<NodeId>(p), static_cast<NodeId>(q))) {
        throw std::runtime_error("ascend_shuffle_exchange: shuffle link down");
      }
      next[q] = values[p];
    }
    values.swap(next);
    ++result.communication_steps;
  }
  result.values = std::move(values);
  return result;
}

AscendResult ascend_debruijn(unsigned h, std::vector<std::int64_t> values,
                             const CombineFn& combine, unsigned ports, const Machine* machine) {
  check_size(h, values);
  if (ports != 1 && ports != 2) throw std::invalid_argument("ascend_debruijn: ports must be 1 or 2");
  AscendResult result;
  result.links_verified = machine != nullptr;
  const std::size_t n = values.size();
  const std::size_t high_bit = n >> 1;
  std::vector<std::int64_t> next(n);
  for (unsigned round = 0; round < h; ++round) {
    for (std::size_t q = 0; q < n; ++q) {
      const std::size_t pred0 = q >> 1;
      const std::size_t pred1 = pred0 | high_bit;
      if (!verify_link(machine, static_cast<NodeId>(q), static_cast<NodeId>(pred0)) ||
          !verify_link(machine, static_cast<NodeId>(q), static_cast<NodeId>(pred1))) {
        throw std::runtime_error("ascend_debruijn: shift link down");
      }
      next[q] = combine(values[pred0], values[pred1]);
    }
    values.swap(next);
    // One step when a node can receive on both shift links at once, two when
    // it must serialize (the paper's single-send/dual-send distinction).
    result.communication_steps += ports == 2 ? 1 : 2;
  }
  result.values = std::move(values);
  return result;
}

}  // namespace ftdb::sim
