// Ascend/Descend algorithm emulation (Preparata/Vuillemin classes, cited in
// the paper's introduction as the workloads the constant-degree networks
// support with small constant slowdown relative to the hypercube).
//
// The concrete Ascend computation here is an all-reduce: in phase i every
// pair of nodes whose labels differ in bit i combines values; after h phases
// every node holds the reduction of all 2^h inputs. We emulate it natively on
// the hypercube (1 communication step per phase), on the shuffle-exchange
// (exchange + shuffle = 2 steps per phase), and on the de Bruijn graph (one
// shift step per phase combining along the just-rotated-out bit). Each
// emulation reports the number of communication steps, which materializes the
// introduction's "small constant factor slowdown" claim; running them on a
// reconfigured FT machine gives identical step counts because every logical
// edge is a healthy physical link.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"

namespace ftdb::sim {

using CombineFn = std::function<std::int64_t(std::int64_t, std::int64_t)>;

struct AscendResult {
  std::vector<std::int64_t> values;     // final value at each logical node
  std::uint64_t communication_steps = 0;
  /// Set when every logical edge the run used was verified against the
  /// machine's physical links (only when a machine was supplied).
  bool links_verified = false;
};

/// Native hypercube execution: h phases, one step each.
AscendResult ascend_hypercube(unsigned h, std::vector<std::int64_t> values,
                              const CombineFn& combine);

/// Shuffle-exchange emulation: h rounds of (exchange, shuffle) = 2h steps.
/// When `machine` is non-null, every edge used is checked to be a live
/// physical link of the machine (the reconfiguration guarantee).
AscendResult ascend_shuffle_exchange(unsigned h, std::vector<std::int64_t> values,
                                     const CombineFn& combine,
                                     const Machine* machine = nullptr);

/// de Bruijn emulation: h shift rounds; in each round node q combines the
/// values of its two shift-predecessors (which differ in the high bit),
/// costing 1 step with dual receive ports or 2 with a single port.
AscendResult ascend_debruijn(unsigned h, std::vector<std::int64_t> values,
                             const CombineFn& combine, unsigned ports = 2,
                             const Machine* machine = nullptr);

/// Descend = Ascend with the phase order reversed; provided for completeness
/// of the Preparata/Vuillemin pair. Same step counts.
AscendResult descend_hypercube(unsigned h, std::vector<std::int64_t> values,
                               const CombineFn& combine);

}  // namespace ftdb::sim
