#include "sim/bus_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "topology/labels.hpp"

namespace ftdb::sim {

namespace {

/// Per-sender port occupancy, stored as a flat vector indexed by cycle — the
/// schedule horizon is bounded by the transfer count, so this replaces the
/// former std::map<cycle, load> (a red-black tree allocation per probed
/// cycle) with O(1) array reads in the hot scheduling loops.
class SenderLoad {
 public:
  unsigned at(std::uint64_t t) const {
    return t < load_.size() ? load_[t] : 0;
  }

  void add(std::uint64_t t) {
    if (t >= load_.size()) load_.resize(std::max<std::size_t>(t + 1, load_.size() * 2), 0);
    ++load_[t];
  }

 private:
  std::vector<unsigned> load_;
};

/// Earliest cycle >= the resource's next free cycle at which the sender also
/// has port capacity.
std::uint64_t earliest_fit(const std::vector<std::uint64_t>& resource_busy_until,
                           std::size_t resource, const SenderLoad& sender, unsigned ports) {
  std::uint64_t t = resource_busy_until[resource];
  while (sender.at(t) >= ports) ++t;
  return t;
}

}  // namespace

ScheduleResult schedule_point_to_point(const Graph& g, const std::vector<Transfer>& transfers,
                                       unsigned ports) {
  if (ports == 0) throw std::invalid_argument("schedule_point_to_point: ports must be >= 1");
  ScheduleResult result;
  result.transfers = transfers.size();
  // Directed link occupancy: next free cycle per (src, neighbor-index).
  std::vector<std::size_t> link_base(g.num_nodes() + 1, 0);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    link_base[v + 1] = link_base[v] + g.degree(static_cast<NodeId>(v));
  }
  std::vector<std::uint64_t> link_free(link_base[g.num_nodes()], 0);
  std::vector<SenderLoad> sender_load(g.num_nodes());

  for (const Transfer& tr : transfers) {
    if (!g.has_edge(tr.src, tr.dst)) {
      result.feasible = false;
      continue;
    }
    auto nb = g.neighbors(tr.src);
    const auto it = std::lower_bound(nb.begin(), nb.end(), tr.dst);
    const std::size_t link = link_base[tr.src] + static_cast<std::size_t>(it - nb.begin());
    const std::uint64_t t = earliest_fit(link_free, link, sender_load[tr.src], ports);
    link_free[link] = t + 1;
    sender_load[tr.src].add(t);
    result.makespan = std::max(result.makespan, t + 1);
  }
  return result;
}

ScheduleResult schedule_bus(const BusGraph& fabric, const std::vector<Transfer>& transfers,
                            unsigned ports) {
  if (ports == 0) throw std::invalid_argument("schedule_bus: ports must be >= 1");
  ScheduleResult result;
  result.transfers = transfers.size();
  std::vector<std::uint64_t> bus_free(fabric.num_buses(), 0);
  std::vector<SenderLoad> sender_load(fabric.num_nodes());

  for (const Transfer& tr : transfers) {
    // Candidate buses: any bus where {src, dst} is a driver-member pair.
    std::size_t best_bus = fabric.num_buses();
    std::uint64_t best_t = 0;
    for (std::uint32_t bi : fabric.buses_of(tr.src)) {
      const Bus& b = fabric.bus(bi);
      const bool src_drives = b.driver == tr.src &&
                              std::binary_search(b.members.begin(), b.members.end(), tr.dst);
      const bool dst_drives = b.driver == tr.dst &&
                              std::binary_search(b.members.begin(), b.members.end(), tr.src);
      if (!src_drives && !dst_drives) continue;
      const std::uint64_t t = earliest_fit(bus_free, bi, sender_load[tr.src], ports);
      if (best_bus == fabric.num_buses() || t < best_t) {
        best_bus = bi;
        best_t = t;
      }
    }
    if (best_bus == fabric.num_buses()) {
      result.feasible = false;
      continue;
    }
    bus_free[best_bus] = best_t + 1;
    sender_load[tr.src].add(best_t);
    result.makespan = std::max(result.makespan, best_t + 1);
  }
  return result;
}

std::vector<Transfer> debruijn_round_transfers(unsigned h) {
  const std::uint64_t n = labels::ipow_checked(2, h);
  std::vector<Transfer> transfers;
  transfers.reserve(2 * n);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t r = 0; r < 2; ++r) {
      const std::uint64_t y = (2 * x + r) % n;
      if (y != x) {
        transfers.push_back(Transfer{static_cast<NodeId>(x), static_cast<NodeId>(y)});
      }
    }
  }
  return transfers;
}

}  // namespace ftdb::sim
