// Bus arbitration model for Section V.
//
// A transfer set (who sends what to whom in one "round") is scheduled onto
// shared resources: in a point-to-point machine every directed link carries
// one value per cycle and every processor can drive `ports` links per cycle;
// in a bus machine every bus carries one value per cycle (and a processor can
// drive `ports` buses per cycle). The resulting makespans reproduce the
// paper's claims: buses cost ~2x when processors could send two values at
// once, and ~1x when processors are single-ported anyway.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bus_graph.hpp"
#include "graph/graph.hpp"

namespace ftdb::sim {

struct Transfer {
  NodeId src = 0;
  NodeId dst = 0;
};

struct ScheduleResult {
  std::uint64_t makespan = 0;        // cycles to complete all transfers
  std::uint64_t transfers = 0;
  bool feasible = true;              // false if some transfer has no resource
};

/// Greedy earliest-fit scheduling of transfers on a point-to-point machine:
/// each directed link (src -> dst) is busy one cycle per transfer; each
/// processor issues at most `ports` sends per cycle.
ScheduleResult schedule_point_to_point(const Graph& g, const std::vector<Transfer>& transfers,
                                       unsigned ports);

/// Greedy earliest-fit scheduling on a bus machine with the paper's
/// restricted discipline: a transfer src -> dst rides a bus where one endpoint
/// is the driver and the other a member (preferring the src-driven bus); each
/// bus carries one value per cycle; each processor issues at most `ports`
/// sends per cycle.
ScheduleResult schedule_bus(const BusGraph& fabric, const std::vector<Transfer>& transfers,
                            unsigned ports);

/// The canonical "de Bruijn round": every node sends one value to each of its
/// two shift successors (the communication pattern of one Ascend step).
std::vector<Transfer> debruijn_round_transfers(unsigned h);

}  // namespace ftdb::sim
