#include "sim/collectives.hpp"

#include <stdexcept>

#include "topology/labels.hpp"

namespace ftdb::sim {

namespace {

void check_size(unsigned h, const std::vector<std::int64_t>& values) {
  if (values.size() != labels::ipow_checked(2, h)) {
    throw std::invalid_argument("collective: value vector must have 2^h entries");
  }
}

void verify_or_throw(const Machine* machine, std::size_t u, std::size_t v, const char* what) {
  if (machine != nullptr && u != v &&
      !machine->logical_link_up(static_cast<NodeId>(u), static_cast<NodeId>(v))) {
    throw std::runtime_error(std::string("collective: required link down during ") + what);
  }
}

}  // namespace

CollectiveResult broadcast_hypercube(unsigned h, std::vector<std::int64_t> values, NodeId root) {
  check_size(h, values);
  if (root >= values.size()) throw std::out_of_range("broadcast: root out of range");
  CollectiveResult result;
  const std::size_t n = values.size();
  std::vector<bool> has(n, false);
  has[root] = true;
  // Recursive doubling: after step i, the set of holders is root XOR any
  // subset of dimensions 0..i.
  for (unsigned i = 0; i < h; ++i) {
    const std::size_t bit = std::size_t{1} << i;
    for (std::size_t x = 0; x < n; ++x) {
      if (has[x] && !has[x ^ bit]) {
        values[x ^ bit] = values[x];
        has[x ^ bit] = true;
      }
    }
    ++result.communication_steps;
  }
  result.values = std::move(values);
  return result;
}

CollectiveResult prefix_sum_hypercube(unsigned h, std::vector<std::int64_t> values) {
  check_size(h, values);
  CollectiveResult result;
  const std::size_t n = values.size();
  std::vector<std::int64_t> prefix = values;  // running inclusive prefix
  std::vector<std::int64_t> total = values;   // block total
  std::vector<std::int64_t> next_total(n);
  for (unsigned i = 0; i < h; ++i) {
    const std::size_t bit = std::size_t{1} << i;
    for (std::size_t x = 0; x < n; ++x) {
      const std::size_t partner = x ^ bit;
      next_total[x] = total[x] + total[partner];
      if (x & bit) prefix[x] += total[partner];  // partner holds the lower block
    }
    total.swap(next_total);
    ++result.communication_steps;
  }
  result.values = std::move(prefix);
  return result;
}

CollectiveResult bitonic_sort_hypercube(unsigned h, std::vector<std::int64_t> values) {
  check_size(h, values);
  CollectiveResult result;
  const std::size_t n = values.size();
  for (std::size_t block = 2; block <= n; block <<= 1) {
    for (std::size_t stride = block >> 1; stride >= 1; stride >>= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t l = i ^ stride;
        if (l <= i) continue;
        const bool ascending = (i & block) == 0;
        if ((values[i] > values[l]) == ascending) std::swap(values[i], values[l]);
      }
      ++result.communication_steps;  // one compare-exchange across a dimension
    }
  }
  result.values = std::move(values);
  return result;
}

CollectiveResult bitonic_sort_shuffle_exchange(unsigned h, std::vector<std::int64_t> values,
                                               const Machine* machine) {
  check_size(h, values);
  CollectiveResult result;
  const std::size_t n = values.size();
  // Items live at rotated positions: position p holds the item of original
  // index rotr^rho(p). The exchange edge operates on bit (h - rho) mod h of
  // the original index; shuffles adjust rho one step per cycle.
  unsigned rho = 0;
  auto original_index = [&](std::size_t p) {
    std::uint64_t x = p;
    for (unsigned r = 0; r < rho; ++r) x = labels::rotate_right(x, 2, h);
    return static_cast<std::size_t>(x);
  };
  auto rotate_items = [&](std::vector<std::int64_t>& v) {
    std::vector<std::int64_t> next(n);
    for (std::size_t p = 0; p < n; ++p) {
      const auto q = static_cast<std::size_t>(labels::rotate_left(p, 2, h));
      verify_or_throw(machine, p, q, "shuffle");
      next[q] = v[p];
    }
    v.swap(next);
    rho = (rho + 1) % h;
    ++result.communication_steps;
  };

  for (std::size_t block = 2; block <= n; block <<= 1) {
    for (std::size_t stride = block >> 1; stride >= 1; stride >>= 1) {
      // The phase compares across original-index dimension d = log2(stride);
      // rotate until the exchange edge (position bit 0) exposes dimension d:
      // bit d of x sits at position bit (d + rho) mod h, so we need
      // (d + rho) mod h == 0.
      unsigned d = 0;
      while ((std::size_t{1} << d) != stride) ++d;
      while ((d + rho) % h != 0) rotate_items(values);
      // Compare-exchange along the exchange edges.
      for (std::size_t p = 0; p < n; ++p) {
        const std::size_t q = p ^ 1u;
        if (q < p) continue;
        verify_or_throw(machine, p, q, "exchange");
        const std::size_t i = original_index(p);
        const std::size_t l = original_index(q);
        // p has bit0 = 0 => original bit d of i is 0 => i < l in dimension d.
        const bool ascending = (i & block) == 0;
        const std::size_t lo = std::min(i, l) == i ? p : q;
        const std::size_t hi = lo == p ? q : p;
        if ((values[lo] > values[hi]) == ascending) std::swap(values[lo], values[hi]);
      }
      ++result.communication_steps;
    }
  }
  // Realign items to their home positions.
  while (rho != 0) rotate_items(values);
  result.values = std::move(values);
  return result;
}

}  // namespace ftdb::sim
