// Collective operations in the Ascend/Descend style (Preparata/Vuillemin):
// one-to-all broadcast, parallel prefix (scan), and bitonic sort — the
// workloads the introduction cites as running on hypercubes and their
// constant-degree emulators with constant slowdown. Each collective runs on
// the hypercube dimension pattern and, via the emulation layers of
// ascend_descend.hpp, on the de Bruijn / shuffle-exchange machines; the
// reconfiguration guarantee makes them fault-oblivious.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"

namespace ftdb::sim {

struct CollectiveResult {
  std::vector<std::int64_t> values;
  std::uint64_t communication_steps = 0;
};

/// One-to-all broadcast of values[root] over the hypercube dimensions
/// (recursive doubling): h steps.
CollectiveResult broadcast_hypercube(unsigned h, std::vector<std::int64_t> values, NodeId root);

/// Inclusive parallel prefix sum over node labels 0..2^h-1 (the classic
/// Ascend-class scan): h steps, each combining across one dimension.
CollectiveResult prefix_sum_hypercube(unsigned h, std::vector<std::int64_t> values);

/// Bitonic sort (Batcher) expressed as compare-exchange phases over hypercube
/// dimensions: h(h+1)/2 compare steps. The canonical Ascend/Descend workload.
CollectiveResult bitonic_sort_hypercube(unsigned h, std::vector<std::int64_t> values);

/// Bitonic sort run through the shuffle-exchange emulation: every
/// compare-exchange phase costs one exchange step plus the shuffles that
/// realign dimensions, 2h steps per phase block — the constant-factor
/// slowdown the paper's introduction quotes. When `machine` is supplied the
/// exchange/shuffle links are verified live (reconfigured-machine execution).
CollectiveResult bitonic_sort_shuffle_exchange(unsigned h, std::vector<std::int64_t> values,
                                               const Machine* machine = nullptr);

}  // namespace ftdb::sim
