#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace ftdb::sim {

PacketSimulator::PacketSimulator(const Machine& machine, const Graph& target,
                                 const RouterOptions& options)
    : machine_(&machine),
      live_(machine.live_logical_graph(target)),
      router_(make_router(live_, options)) {
  // Directed link ids: per node, one queue per (sorted) neighbor.
  const std::size_t n = live_.num_nodes();
  link_base_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    link_base_[v + 1] = link_base_[v] + live_.degree(static_cast<NodeId>(v));
  }
  queues_.resize(link_base_[n]);
}

std::size_t PacketSimulator::link_id(NodeId from, NodeId to) const {
  const auto nb = live_.neighbors(from);
  const auto it = std::lower_bound(nb.begin(), nb.end(), to);
  if (it == nb.end() || *it != to) {
    // A hop outside the live adjacency means the router and the live graph
    // disagree; indexing by the lower_bound position would push the packet
    // onto an arbitrary neighbor's queue (or one past the slab).
    assert(false && "engine: next hop is not a live neighbor");
    throw std::logic_error("engine: next hop " + std::to_string(to) +
                           " is not a live neighbor of " + std::to_string(from));
  }
  return link_base_[from] + static_cast<std::size_t>(it - nb.begin());
}

bool PacketSimulator::node_live(NodeId logical) const {
  return logical < machine_->num_logical() && !machine_->dead[machine_->to_physical[logical]];
}

SimStats PacketSimulator::run(const std::vector<Packet>& packets, std::uint64_t max_cycles) {
  SimStats stats;
  const std::size_t n = live_.num_nodes();
  for (auto& q : queues_) q.clear();  // a truncated previous run may have left stragglers
  route_batch_.clear();               // likewise a run abandoned mid-flush

  std::vector<Packet> sorted = packets;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Packet& a, const Packet& b) {
    return a.inject_cycle < b.inject_cycle;
  });

  std::size_t next_packet = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t cycle = 0;
  std::vector<std::pair<NodeId, InFlight>> arrivals;

  // Batched forwarding: each wave gathers its queries, resolves them with a
  // single route_many call, and enqueues in gathering order — identical
  // queue contents to a scalar next_hop loop.
  auto enqueue_towards = [&](NodeId at, const InFlight& pkt) {
    route_batch_.emplace_back(at, pkt);
  };
  auto flush_enqueues = [&] {
    if (route_batch_.empty()) return;
    const std::size_t k = route_batch_.size();
    route_dests_.resize(k);
    route_nodes_.resize(k);
    route_hops_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      route_dests_[i] = route_batch_[i].second.dst;
      route_nodes_[i] = route_batch_[i].first;
    }
    router_->route_many(route_dests_, route_nodes_, route_hops_);
    for (std::size_t i = 0; i < k; ++i) {
      queues_[link_id(route_batch_[i].first, route_hops_[i])].push_back(route_batch_[i].second);
    }
    route_batch_.clear();
  };

  while (true) {
    const bool pending = next_packet < sorted.size();
    if (!pending && in_flight == 0) break;
    if (max_cycles != 0 && cycle >= max_cycles) break;

    // Inject this cycle's packets.
    while (next_packet < sorted.size() && sorted[next_packet].inject_cycle <= cycle) {
      const Packet& p = sorted[next_packet++];
      ++stats.injected;
      if (!node_live(p.src) || !node_live(p.dst) || !router_->reachable(p.dst, p.src)) {
        ++stats.undeliverable;
        continue;
      }
      if (p.src == p.dst) {
        ++stats.delivered;
        continue;  // zero-latency self-delivery
      }
      enqueue_towards(p.src, InFlight{p.id, p.dst, p.inject_cycle, 0});
      ++in_flight;
    }
    flush_enqueues();

    // Phase 1: every directed link forwards its head packet.
    arrivals.clear();
    for (std::size_t u = 0; u < n; ++u) {
      auto nb = live_.neighbors(static_cast<NodeId>(u));
      for (std::size_t j = 0; j < nb.size(); ++j) {
        auto& q = queues_[link_base_[u] + j];
        if (q.empty()) continue;
        InFlight pkt = q.front();
        q.pop_front();
        ++pkt.hops;
        arrivals.emplace_back(nb[j], pkt);
      }
    }

    // Phase 2: arrivals either complete or queue for their next hop.
    for (auto& [at, pkt] : arrivals) {
      if (at == pkt.dst) {
        --in_flight;
        ++stats.delivered;
        const std::uint64_t latency = cycle + 1 - pkt.inject_cycle;
        stats.total_latency += latency;
        stats.max_latency = std::max(stats.max_latency, latency);
        stats.total_hops += pkt.hops;
      } else {
        enqueue_towards(at, pkt);
      }
    }
    flush_enqueues();

    for (const auto& q : queues_) stats.max_queue_depth = std::max(stats.max_queue_depth, q.size());
    ++cycle;
  }
  // Every injected packet is on exactly one queue when max_cycles cut the
  // loop short (arrivals are fully drained each cycle), so the in-flight
  // count is precisely the timed-out population.
  stats.timed_out = in_flight;
  stats.cycles = cycle;
  assert(stats.injected == stats.delivered + stats.undeliverable + stats.timed_out);
  return stats;
}

SimStats run_packets(const Machine& machine, const Graph& target,
                     const std::vector<Packet>& packets, const EngineOptions& options) {
  PacketSimulator sim(machine, target, options.router);
  return sim.run(packets, options.max_cycles);
}

}  // namespace ftdb::sim
