#include "sim/engine.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace ftdb::sim {

namespace {

struct InFlight {
  std::uint64_t id = 0;
  NodeId dst = 0;
  std::uint64_t inject_cycle = 0;
  std::uint32_t hops = 0;
};

}  // namespace

SimStats run_packets(const Machine& machine, const Graph& target,
                     const std::vector<Packet>& packets, const EngineOptions& options) {
  SimStats stats;
  const Graph live = machine.live_logical_graph(target);
  const std::unique_ptr<Router> router = make_router(live, options.router);

  // Directed link ids: per node, one queue per (sorted) neighbor.
  const std::size_t n = live.num_nodes();
  std::vector<std::size_t> link_base(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) link_base[v + 1] = link_base[v] + live.degree(static_cast<NodeId>(v));
  auto link_id = [&](NodeId from, NodeId to) {
    auto nb = live.neighbors(from);
    const auto it = std::lower_bound(nb.begin(), nb.end(), to);
    return link_base[from] + static_cast<std::size_t>(it - nb.begin());
  };
  std::vector<std::deque<InFlight>> queues(link_base[n]);

  std::vector<Packet> sorted = packets;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Packet& a, const Packet& b) {
    return a.inject_cycle < b.inject_cycle;
  });

  auto node_live = [&](NodeId logical) {
    return logical < machine.num_logical() && !machine.dead[machine.to_physical[logical]];
  };

  std::size_t next_packet = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t cycle = 0;
  std::vector<std::pair<NodeId, InFlight>> arrivals;

  auto enqueue_towards = [&](NodeId at, InFlight pkt) {
    const NodeId hop = router->next_hop(pkt.dst, at);
    queues[link_id(at, hop)].push_back(pkt);
  };

  while (true) {
    const bool pending = next_packet < sorted.size();
    if (!pending && in_flight == 0) break;
    if (options.max_cycles != 0 && cycle >= options.max_cycles) break;

    // Inject this cycle's packets.
    while (next_packet < sorted.size() && sorted[next_packet].inject_cycle <= cycle) {
      const Packet& p = sorted[next_packet++];
      ++stats.injected;
      if (!node_live(p.src) || !node_live(p.dst) || !router->reachable(p.dst, p.src)) {
        ++stats.undeliverable;
        continue;
      }
      if (p.src == p.dst) {
        ++stats.delivered;
        continue;  // zero-latency self-delivery
      }
      enqueue_towards(p.src, InFlight{p.id, p.dst, p.inject_cycle, 0});
      ++in_flight;
    }

    // Phase 1: every directed link forwards its head packet.
    arrivals.clear();
    for (std::size_t u = 0; u < n; ++u) {
      auto nb = live.neighbors(static_cast<NodeId>(u));
      for (std::size_t j = 0; j < nb.size(); ++j) {
        auto& q = queues[link_base[u] + j];
        if (q.empty()) continue;
        InFlight pkt = q.front();
        q.pop_front();
        ++pkt.hops;
        arrivals.emplace_back(nb[j], pkt);
      }
    }

    // Phase 2: arrivals either complete or queue for their next hop.
    for (auto& [at, pkt] : arrivals) {
      if (at == pkt.dst) {
        --in_flight;
        ++stats.delivered;
        const std::uint64_t latency = cycle + 1 - pkt.inject_cycle;
        stats.total_latency += latency;
        stats.max_latency = std::max(stats.max_latency, latency);
        stats.total_hops += pkt.hops;
      } else {
        enqueue_towards(at, pkt);
      }
    }

    for (const auto& q : queues) stats.max_queue_depth = std::max(stats.max_queue_depth, q.size());
    ++cycle;
  }
  stats.cycles = cycle;
  return stats;
}

}  // namespace ftdb::sim
