// Synchronous store-and-forward network engine.
//
// Time advances in cycles; each directed link moves at most one packet per
// cycle; packets queue FIFO at their next output link. This is the standard
// abstract machine for constant-degree network papers of the era, and it is
// what the PERF2/PERF3 experiments run on: a degraded bare target vs a
// reconfigured fault-tolerant machine under identical traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"
#include "sim/routing.hpp"

namespace ftdb::sim {

struct Packet {
  std::uint64_t id = 0;
  NodeId src = 0;   // logical
  NodeId dst = 0;   // logical
  std::uint64_t inject_cycle = 0;
};

struct SimStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t undeliverable = 0;  // no live route existed at injection time
  std::uint64_t cycles = 0;
  std::uint64_t total_latency = 0;   // sum over delivered packets
  std::uint64_t max_latency = 0;
  std::uint64_t total_hops = 0;
  std::size_t max_queue_depth = 0;

  double average_latency() const {
    return delivered == 0 ? 0.0 : static_cast<double>(total_latency) / static_cast<double>(delivered);
  }
  double average_hops() const {
    return delivered == 0 ? 0.0 : static_cast<double>(total_hops) / static_cast<double>(delivered);
  }
  double delivered_fraction() const {
    return injected == 0 ? 1.0 : static_cast<double>(delivered) / static_cast<double>(injected);
  }
  double throughput() const {
    return cycles == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(cycles);
  }
};

struct EngineOptions {
  /// Stop after this many cycles even if packets remain (0 = run to drain).
  std::uint64_t max_cycles = 0;
  /// Routing backend selection for the live logical graph. The default Auto
  /// routes healthy (and dilation-1 reconfigured) de Bruijn / shuffle-exchange
  /// machines through the O(1)-memory implicit router, so simulations scale
  /// to N where a table slab would be gigabytes.
  RouterOptions router;
};

/// Runs a batch of logical packets over the machine's *live* logical topology
/// (physical links between live nodes, viewed logically). Routes are canonical
/// shortest paths on that live graph (sim/router.hpp), stepped per-hop at
/// forwarding time. Packets whose endpoints are dead or disconnected count as
/// undeliverable — this is how the fragility of the bare target materializes,
/// while a reconfigured FT machine always presents the full target graph.
SimStats run_packets(const Machine& machine, const Graph& target,
                     const std::vector<Packet>& packets, const EngineOptions& options = {});

}  // namespace ftdb::sim
