// Synchronous store-and-forward network engine.
//
// Time advances in cycles; each directed link moves at most one packet per
// cycle; packets queue FIFO at their next output link. This is the standard
// abstract machine for constant-degree network papers of the era, and it is
// what the PERF2/PERF3 experiments run on: a degraded bare target vs a
// reconfigured fault-tolerant machine under identical traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"
#include "sim/routing.hpp"

namespace ftdb::sim {

struct Packet {
  std::uint64_t id = 0;
  NodeId src = 0;   // logical
  NodeId dst = 0;   // logical
  std::uint64_t inject_cycle = 0;
};

struct SimStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t undeliverable = 0;  // no live route existed at injection time
  std::uint64_t timed_out = 0;      // still in flight when max_cycles stopped the run
  std::uint64_t cycles = 0;
  std::uint64_t total_latency = 0;   // sum over delivered packets
  std::uint64_t max_latency = 0;
  std::uint64_t total_hops = 0;
  std::size_t max_queue_depth = 0;

  double average_latency() const {
    return delivered == 0 ? 0.0 : static_cast<double>(total_latency) / static_cast<double>(delivered);
  }
  double average_hops() const {
    return delivered == 0 ? 0.0 : static_cast<double>(total_hops) / static_cast<double>(delivered);
  }
  double delivered_fraction() const {
    return injected == 0 ? 1.0 : static_cast<double>(delivered) / static_cast<double>(injected);
  }
  double throughput() const {
    return cycles == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(cycles);
  }
};

struct EngineOptions {
  /// Stop after this many cycles even if packets remain (0 = run to drain).
  /// Packets still in flight at the cut count as SimStats::timed_out, so
  /// injected == delivered + undeliverable + timed_out holds unconditionally.
  std::uint64_t max_cycles = 0;
  /// Routing backend selection for the live logical graph. The default Auto
  /// routes healthy (and dilation-1 reconfigured) de Bruijn / shuffle-exchange
  /// machines through the O(1)-memory implicit router, so simulations scale
  /// to N where a table slab would be gigabytes.
  RouterOptions router;
};

/// Reusable simulation context for one machine: the live logical graph, its
/// router, and the per-link queue slab are built once and reused across
/// run() calls. This is what collective-schedule execution leans on — a
/// log-round schedule steps the same machine many times, and rebuilding the
/// router per round would dominate the measurement.
class PacketSimulator {
 public:
  PacketSimulator(const Machine& machine, const Graph& target,
                  const RouterOptions& options = {});

  /// Runs one batch of logical packets to completion (or to max_cycles).
  /// Queues are drained/reset between runs, so successive batches are
  /// independent synchronous phases.
  SimStats run(const std::vector<Packet>& packets, std::uint64_t max_cycles = 0);

  const Graph& live_graph() const { return live_; }
  const Router& router() const { return *router_; }
  std::size_t num_logical() const { return machine_->num_logical(); }

 private:
  struct InFlight {
    std::uint64_t id = 0;
    NodeId dst = 0;
    std::uint64_t inject_cycle = 0;
    std::uint32_t hops = 0;
  };

  /// Directed link id of the (from -> to) live edge. Fails loudly (assert in
  /// debug, std::logic_error in release) when `to` is not a live neighbor of
  /// `from` — a misrouted hop must never silently corrupt a sibling queue.
  std::size_t link_id(NodeId from, NodeId to) const;

  bool node_live(NodeId logical) const;

  const Machine* machine_ = nullptr;
  Graph live_;
  std::unique_ptr<Router> router_;
  std::vector<std::size_t> link_base_;
  std::vector<std::deque<InFlight>> queues_;
  // Per-cycle batched-routing scratch: the injection wave and the phase-2
  // arrival wave each gather their (dst, at) queries and resolve them with
  // one route_many call, preserving enqueue order exactly — hop-for-hop the
  // stats match the scalar loop, but the implicit backend amortizes its
  // incremental state across the whole wave.
  std::vector<std::pair<NodeId, InFlight>> route_batch_;
  std::vector<NodeId> route_dests_;
  std::vector<NodeId> route_nodes_;
  std::vector<NodeId> route_hops_;
};

/// Runs a batch of logical packets over the machine's *live* logical topology
/// (physical links between live nodes, viewed logically). Routes are canonical
/// shortest paths on that live graph (sim/router.hpp), stepped per-hop at
/// forwarding time. Packets whose endpoints are dead or disconnected count as
/// undeliverable — this is how the fragility of the bare target materializes,
/// while a reconfigured FT machine always presents the full target graph.
/// The accounting invariant injected == delivered + undeliverable + timed_out
/// holds on every return path, including max_cycles truncation.
SimStats run_packets(const Machine& machine, const Graph& target,
                     const std::vector<Packet>& packets, const EngineOptions& options = {});

}  // namespace ftdb::sim
