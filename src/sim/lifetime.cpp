#include "sim/lifetime.hpp"

#include <cmath>
#include <stdexcept>

namespace ftdb::sim {

double analytic_mttf(const LifetimeParams& params) {
  if (params.failure_prob <= 0.0 || params.failure_prob >= 1.0) {
    throw std::invalid_argument("analytic_mttf: failure_prob must be in (0, 1)");
  }
  double total = 0.0;
  const std::uint64_t all = params.target_nodes + params.spares;
  // Deaths 1 .. k+1; with i prior deaths, all - i nodes race.
  for (unsigned i = 0; i <= params.spares; ++i) {
    const double healthy = static_cast<double>(all - i);
    const double step_failure = 1.0 - std::pow(1.0 - params.failure_prob, healthy);
    total += 1.0 / step_failure;
  }
  return total;
}

LifetimeResult simulate_lifetime(const LifetimeParams& params, std::uint64_t trials,
                                 std::uint64_t seed) {
  if (trials == 0) throw std::invalid_argument("simulate_lifetime: need at least one trial");
  LifetimeResult result;
  result.trials = trials;
  result.analytic_mttf = analytic_mttf(params);
  std::mt19937_64 rng(seed);
  double total = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  const std::uint64_t all = params.target_nodes + params.spares;
  for (std::uint64_t t = 0; t < trials; ++t) {
    // Geometric clocks: instead of stepping time, sample each remaining
    // node-count phase directly (equivalent and fast).
    std::uint64_t steps = 0;
    for (unsigned deaths = 0; deaths <= params.spares; ++deaths) {
      const double healthy = static_cast<double>(all - deaths);
      const double p_phase = 1.0 - std::pow(1.0 - params.failure_prob, healthy);
      std::geometric_distribution<std::uint64_t> wait(p_phase);
      steps += wait(rng) + 1;  // geometric counts failures before success
    }
    const double life = static_cast<double>(steps);
    total += life;
    lo = t == 0 ? life : std::min(lo, life);
    hi = std::max(hi, life);
  }
  result.empirical_mttf = total / static_cast<double>(trials);
  result.min_lifetime = lo;
  result.max_lifetime = hi;
  return result;
}

double lifetime_multiplier(std::uint64_t target_nodes, unsigned spares, double failure_prob) {
  const double with = analytic_mttf({target_nodes, spares, failure_prob});
  const double without = analytic_mttf({target_nodes, 0, failure_prob});
  return with / without;
}

}  // namespace ftdb::sim
