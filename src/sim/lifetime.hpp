// Machine-lifetime simulation: nodes fail over time; the fault-tolerant
// machine keeps reconfiguring until the (k+1)-st failure exhausts the spares.
// The simulation produces empirical mean-time-to-failure (MTTF) numbers that
// the analytic model predicts in closed form, quantifying what the paper's
// k spares buy in machine lifetime.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ftdb::sim {

struct LifetimeParams {
  std::uint64_t target_nodes = 64;  // N
  unsigned spares = 2;              // k
  double failure_prob = 0.001;      // per node per time step
};

struct LifetimeResult {
  double empirical_mttf = 0.0;      // mean steps until spares exhausted
  double analytic_mttf = 0.0;       // closed-form expectation
  std::uint64_t trials = 0;
  double min_lifetime = 0.0;
  double max_lifetime = 0.0;
};

/// Analytic MTTF: failures arrive as a race of geometric clocks; with i
/// failures so far, N+k-i healthy nodes each fail with probability p per
/// step, so the expected wait for the next failure is 1 / (1 - (1-p)^{N+k-i}).
/// The machine dies at the (k+1)-st failure.
double analytic_mttf(const LifetimeParams& params);

/// Seeded Monte Carlo of the same process.
LifetimeResult simulate_lifetime(const LifetimeParams& params, std::uint64_t trials,
                                 std::uint64_t seed);

/// Lifetime multiplier of k spares vs none: MTTF(k) / MTTF(0) (analytic).
double lifetime_multiplier(std::uint64_t target_nodes, unsigned spares, double failure_prob);

}  // namespace ftdb::sim
