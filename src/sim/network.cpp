#include "sim/network.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace ftdb::sim {

Machine Machine::direct(Graph topology) {
  Machine m;
  const std::size_t n = topology.num_nodes();
  m.physical = std::move(topology);
  m.dead.assign(n, false);
  m.to_physical.resize(n);
  m.to_logical.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    m.to_physical[v] = static_cast<NodeId>(v);
    m.to_logical[v] = static_cast<NodeId>(v);
  }
  return m;
}

Machine Machine::direct_with_faults(Graph topology, const FaultSet& faults) {
  Machine m = direct(std::move(topology));
  if (faults.universe() != m.physical.num_nodes()) {
    throw std::invalid_argument("direct_with_faults: universe mismatch");
  }
  for (NodeId f : faults.nodes()) m.dead[f] = true;
  return m;
}

Machine Machine::reconfigured(Graph ft_graph, const FaultSet& faults,
                              std::size_t logical_nodes) {
  if (faults.universe() != ft_graph.num_nodes()) {
    throw std::invalid_argument("reconfigured: universe mismatch");
  }
  const std::vector<NodeId> phi = monotone_embedding(faults);
  if (phi.size() < logical_nodes) {
    throw std::invalid_argument("reconfigured: too many faults for logical size");
  }
  Machine m;
  const std::size_t p = ft_graph.num_nodes();
  m.physical = std::move(ft_graph);
  m.dead.assign(p, false);
  for (NodeId f : faults.nodes()) m.dead[f] = true;
  m.to_physical.assign(phi.begin(), phi.begin() + static_cast<std::ptrdiff_t>(logical_nodes));
  m.to_logical.assign(p, kInvalidNode);
  for (std::size_t x = 0; x < logical_nodes; ++x) m.to_logical[m.to_physical[x]] = static_cast<NodeId>(x);
  return m;
}

bool Machine::logical_link_up(NodeId u, NodeId v) const {
  const NodeId pu = to_physical[u];
  const NodeId pv = to_physical[v];
  return !dead[pu] && !dead[pv] && physical.has_edge(pu, pv);
}

Graph Machine::live_logical_graph(const Graph& target) const {
  GraphBuilder builder(target.num_nodes());
  for (const Edge& e : target.edges()) {
    if (e.u < num_logical() && e.v < num_logical() && logical_link_up(e.u, e.v)) {
      builder.add_edge(e.u, e.v);
    }
  }
  return builder.build();
}

std::vector<NodeId> edge_faults_to_node_faults(const Graph& g,
                                               const std::vector<Edge>& bad_edges) {
  (void)g;
  std::vector<Edge> remaining = bad_edges;
  std::vector<NodeId> chosen;
  while (!remaining.empty()) {
    std::map<NodeId, std::size_t> cover;
    for (const Edge& e : remaining) {
      ++cover[e.u];
      ++cover[e.v];
    }
    NodeId best = remaining.front().u;
    std::size_t best_count = 0;
    for (const auto& [node, count] : cover) {
      if (count > best_count) {
        best = node;
        best_count = count;
      }
    }
    chosen.push_back(best);
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [&](const Edge& e) { return e.u == best || e.v == best; }),
                    remaining.end());
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace ftdb::sim
