// The simulated parallel machine: a physical interconnect (any Graph), an
// optional set of dead nodes, and an optional logical->physical embedding
// produced by the reconfiguration algorithm. This is the substrate on which
// the paper's structural claims are demonstrated operationally: after k
// faults, an FT machine reconfigures and keeps presenting the intact target
// topology, while a bare target machine degrades.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "ft/reconfigure.hpp"

namespace ftdb::sim {

/// A machine whose nodes may be faulty. Logical node x lives at physical node
/// to_physical[x]; with no reconfiguration the mapping is the identity.
struct Machine {
  Graph physical;                     // interconnect as built
  std::vector<bool> dead;             // physical fault map
  std::vector<NodeId> to_physical;    // logical -> physical (injective)
  std::vector<NodeId> to_logical;     // physical -> logical (kInvalidNode = none/spare)

  std::size_t num_logical() const { return to_physical.size(); }

  /// Healthy machine presenting `topology` directly (identity mapping).
  static Machine direct(Graph topology);

  /// Bare target machine with faults — the degraded baseline of experiment
  /// PERF2. Dead nodes keep their ids; traffic must route around them.
  static Machine direct_with_faults(Graph topology, const FaultSet& faults);

  /// Reconfigured FT machine: logical node x of the target lives at
  /// phi[x] in the fault-tolerant graph.
  static Machine reconfigured(Graph ft_graph, const FaultSet& faults,
                              std::size_t logical_nodes);

  /// True when logical nodes u, v are joined by a healthy physical link.
  bool logical_link_up(NodeId u, NodeId v) const;

  /// The logical connectivity actually available: edges between live logical
  /// nodes whose physical images are adjacent. For a reconfigured FT machine
  /// carrying target G this equals G restricted to nothing — i.e. all of G.
  Graph live_logical_graph(const Graph& target) const;
};

/// Edge faults are handled in the paper by declaring one incident node faulty
/// ("a node that is incident to the faulty edge [is viewed] as being
/// faulty"). Greedy minimum-cover choice: repeatedly take the endpoint
/// covering the most remaining faulty edges.
std::vector<NodeId> edge_faults_to_node_faults(const Graph& g, const std::vector<Edge>& bad_edges);

}  // namespace ftdb::sim
