#include "sim/reconfigured_routing.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/multi_source_bfs.hpp"
#include "graph/subgraph.hpp"

namespace ftdb::sim {

std::vector<NodeId> physical_route(const Machine& machine, const std::vector<NodeId>& logical) {
  std::vector<NodeId> out;
  out.reserve(logical.size());
  for (NodeId v : logical) {
    if (v >= machine.num_logical()) {
      throw std::out_of_range("physical_route: logical node out of range");
    }
    out.push_back(machine.to_physical[v]);
  }
  return out;
}

bool physical_route_is_live(const Machine& machine, const std::vector<NodeId>& physical) {
  if (physical.empty()) return false;
  for (NodeId v : physical) {
    if (v >= machine.physical.num_nodes() || machine.dead[v]) return false;
  }
  for (std::size_t i = 0; i + 1 < physical.size(); ++i) {
    if (physical[i] != physical[i + 1] &&
        !machine.physical.has_edge(physical[i], physical[i + 1])) {
      return false;
    }
  }
  return true;
}

std::vector<NodeId> debruijn_route_on_machine(const Machine& machine, std::uint64_t m,
                                              unsigned h, NodeId logical_src,
                                              NodeId logical_dst) {
  return physical_route(machine, debruijn_shift_route(m, h, logical_src, logical_dst));
}

std::vector<NodeId> se_route_on_machine(const Machine& machine, unsigned h,
                                        NodeId logical_src, NodeId logical_dst) {
  return physical_route(machine, shuffle_exchange_route(h, logical_src, logical_dst));
}

double max_route_stretch(const Machine& machine, std::uint64_t m, unsigned h) {
  // Shortest paths in the survivor-induced physical graph.
  std::vector<NodeId> live_nodes;
  for (std::size_t v = 0; v < machine.physical.num_nodes(); ++v) {
    if (!machine.dead[v]) live_nodes.push_back(static_cast<NodeId>(v));
  }
  const InducedSubgraph survivors = induced_subgraph(machine.physical, live_nodes);
  std::vector<NodeId> physical_to_survivor(machine.physical.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < survivors.to_original.size(); ++i) {
    physical_to_survivor[survivors.to_original[i]] = static_cast<NodeId>(i);
  }

  double worst = 1.0;
  const std::size_t n = machine.num_logical();
  const std::size_t sn = survivors.graph.num_nodes();
  // Shortest paths come from the bit-parallel batch kernel: 64 logical
  // sources share one sweep of the survivor CSR instead of one BFS each.
  MultiSourceBfs scan(sn);
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> batch;
  for (NodeId base = 0; base < n; base += MultiSourceBfs::kBatchWidth) {
    const NodeId end =
        static_cast<NodeId>(std::min<std::size_t>(n, base + MultiSourceBfs::kBatchWidth));
    batch.clear();
    for (NodeId src = base; src < end; ++src) {
      batch.push_back(physical_to_survivor[machine.to_physical[src]]);
    }
    scan.run_batch(survivors.graph, batch, &dist);
    for (NodeId src = base; src < end; ++src) {
      const std::uint32_t* row = dist.data() + static_cast<std::size_t>(src - base) * sn;
      for (NodeId dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        const auto route = debruijn_route_on_machine(machine, m, h, src, dst);
        const NodeId p_dst = physical_to_survivor[machine.to_physical[dst]];
        const std::uint32_t shortest = row[p_dst];
        if (shortest == 0 || shortest == kUnreachable) continue;
        const double stretch =
            static_cast<double>(route.size() - 1) / static_cast<double>(shortest);
        worst = std::max(worst, stretch);
      }
    }
  }
  return worst;
}

}  // namespace ftdb::sim
