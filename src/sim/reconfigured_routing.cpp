#include "sim/reconfigured_routing.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/multi_source_bfs.hpp"
#include "graph/subgraph.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::sim {

std::vector<NodeId> physical_route(const Machine& machine, const std::vector<NodeId>& logical) {
  std::vector<NodeId> out;
  out.reserve(logical.size());
  for (NodeId v : logical) {
    if (v >= machine.num_logical()) {
      throw std::out_of_range("physical_route: logical node out of range");
    }
    out.push_back(machine.to_physical[v]);
  }
  return out;
}

bool physical_route_is_live(const Machine& machine, const std::vector<NodeId>& physical) {
  if (physical.empty()) return false;
  for (NodeId v : physical) {
    if (v >= machine.physical.num_nodes() || machine.dead[v]) return false;
  }
  for (std::size_t i = 0; i + 1 < physical.size(); ++i) {
    if (physical[i] != physical[i + 1] &&
        !machine.physical.has_edge(physical[i], physical[i + 1])) {
      return false;
    }
  }
  return true;
}

std::vector<NodeId> debruijn_route_on_machine(const Machine& machine, std::uint64_t m,
                                              unsigned h, NodeId logical_src,
                                              NodeId logical_dst) {
  return physical_route(machine, debruijn_shift_route(m, h, logical_src, logical_dst));
}

std::vector<NodeId> se_route_on_machine(const Machine& machine, unsigned h,
                                        NodeId logical_src, NodeId logical_dst) {
  return physical_route(machine, shuffle_exchange_route(h, logical_src, logical_dst));
}

std::unique_ptr<Router> machine_logical_router(const Machine& machine, const Graph& target,
                                               const RouterOptions& options) {
  return make_router(machine.live_logical_graph(target), options);
}

namespace {

/// Survivor-induced physical graph plus the physical -> survivor relabeling —
/// the denominator side of every stretch metric.
struct SurvivorView {
  InducedSubgraph survivors;
  std::vector<NodeId> physical_to_survivor;
};

SurvivorView make_survivor_view(const Machine& machine) {
  SurvivorView view;
  std::vector<NodeId> live_nodes;
  for (std::size_t v = 0; v < machine.physical.num_nodes(); ++v) {
    if (!machine.dead[v]) live_nodes.push_back(static_cast<NodeId>(v));
  }
  view.survivors = induced_subgraph(machine.physical, live_nodes);
  view.physical_to_survivor.assign(machine.physical.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < view.survivors.to_original.size(); ++i) {
    view.physical_to_survivor[view.survivors.to_original[i]] = static_cast<NodeId>(i);
  }
  return view;
}

/// The family-agnostic core of the full audit: the target graph is already
/// built, everything else (the survivor BFS sweeps, the ratio) is shared
/// between the de Bruijn and shuffle-exchange entry points.
double max_route_stretch_on_target(const Machine& machine, const Graph& target) {
  const std::unique_ptr<Router> router = machine_logical_router(machine, target);
  const SurvivorView view = make_survivor_view(machine);

  double worst = 1.0;
  const std::size_t n = machine.num_logical();
  const std::size_t sn = view.survivors.graph.num_nodes();
  // Shortest paths come from the bit-parallel batch kernel: 64 logical
  // sources share one sweep of the survivor CSR instead of one BFS each.
  MultiSourceBfs scan(sn);
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> batch;
  // Logical distances come batched too: one distance_many row per source lets
  // the implicit backend reuse its incremental stepper across the whole row.
  std::vector<NodeId> all_dsts(n);
  for (NodeId v = 0; v < n; ++v) all_dsts[v] = v;
  std::vector<NodeId> src_rep(n);
  std::vector<std::uint32_t> logical_row(n);
  for (NodeId base = 0; base < n; base += MultiSourceBfs::kBatchWidth) {
    const NodeId end =
        static_cast<NodeId>(std::min<std::size_t>(n, base + MultiSourceBfs::kBatchWidth));
    batch.clear();
    for (NodeId src = base; src < end; ++src) {
      batch.push_back(view.physical_to_survivor[machine.to_physical[src]]);
    }
    scan.run_batch(view.survivors.graph, batch, &dist);
    for (NodeId src = base; src < end; ++src) {
      const std::uint32_t* row = dist.data() + static_cast<std::size_t>(src - base) * sn;
      std::fill(src_rep.begin(), src_rep.end(), src);
      router->distance_many(all_dsts, src_rep, logical_row);
      for (NodeId dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        const std::uint32_t logical = logical_row[dst];
        if (logical == static_cast<std::uint32_t>(-1)) continue;
        const NodeId p_dst = view.physical_to_survivor[machine.to_physical[dst]];
        const std::uint32_t shortest = row[p_dst];
        if (shortest == 0 || shortest == kUnreachable) continue;
        const double stretch = static_cast<double>(logical) / static_cast<double>(shortest);
        worst = std::max(worst, stretch);
      }
    }
  }
  return worst;
}

/// Sampled core over a prebuilt target, shared by both topology families.
double max_route_stretch_sampled_on_target(const Machine& machine, const Graph& target,
                                           const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  const std::unique_ptr<Router> router = machine_logical_router(machine, target);
  const SurvivorView view = make_survivor_view(machine);

  // Group the sample by source so that up to 64 distinct sources share one
  // survivor-CSR sweep, exactly like the full audit.
  std::vector<std::pair<NodeId, NodeId>> sorted = pairs;
  std::sort(sorted.begin(), sorted.end());

  double worst = 1.0;
  const std::size_t n = machine.num_logical();
  const std::size_t sn = view.survivors.graph.num_nodes();
  MultiSourceBfs scan(sn);
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> batch;
  struct Group {
    NodeId src;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Group> groups;
  std::vector<NodeId> ld_dsts;
  std::vector<NodeId> ld_srcs;
  std::vector<std::uint32_t> logical_row;
  std::size_t i = 0;
  while (i < sorted.size()) {
    batch.clear();
    groups.clear();
    while (i < sorted.size() && batch.size() < MultiSourceBfs::kBatchWidth) {
      const NodeId src = sorted[i].first;
      if (src >= n) throw std::out_of_range("max_route_stretch_sampled: source out of range");
      std::size_t j = i;
      while (j < sorted.size() && sorted[j].first == src) ++j;
      groups.push_back({src, i, j});
      batch.push_back(view.physical_to_survivor[machine.to_physical[src]]);
      i = j;
    }
    scan.run_batch(view.survivors.graph, batch, &dist);
    // One distance_many call covers every pair of this 64-source wave.
    const std::size_t wave_begin = groups.empty() ? 0 : groups.front().begin;
    const std::size_t wave_end = groups.empty() ? 0 : groups.back().end;
    ld_dsts.clear();
    ld_srcs.clear();
    for (std::size_t p = wave_begin; p < wave_end; ++p) {
      if (sorted[p].second >= n) {
        throw std::out_of_range("max_route_stretch_sampled: destination out of range");
      }
      ld_dsts.push_back(sorted[p].second);
      ld_srcs.push_back(sorted[p].first);
    }
    logical_row.resize(ld_dsts.size());
    router->distance_many(ld_dsts, ld_srcs, logical_row);
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const std::uint32_t* row = dist.data() + gi * sn;
      for (std::size_t p = groups[gi].begin; p < groups[gi].end; ++p) {
        const NodeId src = sorted[p].first;
        const NodeId dst = sorted[p].second;
        if (src == dst) continue;
        const std::uint32_t logical = logical_row[p - wave_begin];
        if (logical == static_cast<std::uint32_t>(-1)) continue;
        const std::uint32_t shortest = row[view.physical_to_survivor[machine.to_physical[dst]]];
        if (shortest == 0 || shortest == kUnreachable) continue;
        worst = std::max(worst, static_cast<double>(logical) / static_cast<double>(shortest));
      }
    }
  }
  return worst;
}

}  // namespace

double max_route_stretch(const Machine& machine, std::uint64_t m, unsigned h) {
  return max_route_stretch_on_target(machine, debruijn_graph({.base = m, .digits = h}));
}

double max_route_stretch_sampled(const Machine& machine, std::uint64_t m, unsigned h,
                                 const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  return max_route_stretch_sampled_on_target(machine, debruijn_graph({.base = m, .digits = h}),
                                             pairs);
}

double max_route_stretch_se(const Machine& machine, unsigned h) {
  return max_route_stretch_on_target(machine, shuffle_exchange_graph(h));
}

double max_route_stretch_se_sampled(const Machine& machine, unsigned h,
                                    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  return max_route_stretch_sampled_on_target(machine, shuffle_exchange_graph(h), pairs);
}

}  // namespace ftdb::sim
