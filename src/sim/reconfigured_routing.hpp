// Routing on a reconfigured machine: the paper's embeddings are dilation-1
// (every logical edge maps to one physical link), so any logical routing
// algorithm — BFS tables, de Bruijn shift routing, SE routing — runs on the
// reconfigured machine by translating its hops through the embedding, with
// zero stretch. These helpers perform that translation and validate it
// against the physical fabric.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"
#include "sim/routing.hpp"

namespace ftdb::sim {

/// Maps a logical route to the physical nodes hosting it. Throws
/// std::out_of_range if the route mentions nodes outside the machine.
std::vector<NodeId> physical_route(const Machine& machine, const std::vector<NodeId>& logical);

/// True when every consecutive pair of the *physical* route is a healthy
/// physical link (both endpoints alive, edge present).
bool physical_route_is_live(const Machine& machine, const std::vector<NodeId>& physical);

/// de Bruijn shift routing executed on a reconfigured machine: computes the
/// logical route in B_{m,h} label space and returns the physical node
/// sequence. The returned route is guaranteed live on a correctly
/// reconfigured FT machine (Theorem 1/2).
std::vector<NodeId> debruijn_route_on_machine(const Machine& machine, std::uint64_t m,
                                              unsigned h, NodeId logical_src,
                                              NodeId logical_dst);

/// Shuffle-exchange routing executed on a reconfigured machine.
std::vector<NodeId> se_route_on_machine(const Machine& machine, unsigned h,
                                        NodeId logical_src, NodeId logical_dst);

/// The routing engine a machine carrying `target` actually runs: a Router
/// over the live logical graph. With the default Auto options this composes
/// the implicit digit-shift algebra with the monotone logical->physical
/// relabeling — the implicit backend is selected exactly when the realized
/// machine still presents an intact de Bruijn / shuffle-exchange shape (the
/// dilation-1 case of Theorems 1/2), and falls back to compressed/table
/// routing otherwise.
std::unique_ptr<Router> machine_logical_router(const Machine& machine, const Graph& target,
                                               const RouterOptions& options = {});

/// Route-stretch audit: for every (src, dst) pair, compares the deployed
/// routing engine's logical route length (machine_logical_router — implicit
/// shift algebra on dilation-1 machines) against the shortest path in the
/// *physical* survivor graph, which may cut through spare nodes the logical
/// machine does not use. The logical route is never shorter than the physical
/// shortest path; the maximum ratio quantifies the price of routing in
/// logical space. Returns the maximum over all pairs (1.0 = the logical
/// engine is physically optimal everywhere). Pairs with no live logical route
/// are skipped.
double max_route_stretch(const Machine& machine, std::uint64_t m, unsigned h);

/// Sampled variant for big-N sweeps: the same ratio maximized over the given
/// (logical src, logical dst) pairs only. Deterministic for a fixed pair
/// list, so campaign reports stay byte-identical across thread counts and
/// checkpoint/resume as long as the pairs are drawn from the trial's
/// counter-based RNG. Self-pairs are ignored; returns 1.0 for an empty list.
double max_route_stretch_sampled(const Machine& machine, std::uint64_t m, unsigned h,
                                 const std::vector<std::pair<NodeId, NodeId>>& pairs);

/// Shuffle-exchange variants of the stretch audit: the machine carries SE_h
/// as its logical target (everything past the target construction — the
/// survivor-graph BFS sweeps and the ratio — is family-agnostic and shared
/// with the de Bruijn versions above).
double max_route_stretch_se(const Machine& machine, unsigned h);
double max_route_stretch_se_sampled(const Machine& machine, unsigned h,
                                    const std::vector<std::pair<NodeId, NodeId>>& pairs);

}  // namespace ftdb::sim
