// Routing on a reconfigured machine: the paper's embeddings are dilation-1
// (every logical edge maps to one physical link), so any logical routing
// algorithm — BFS tables, de Bruijn shift routing, SE routing — runs on the
// reconfigured machine by translating its hops through the embedding, with
// zero stretch. These helpers perform that translation and validate it
// against the physical fabric.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sim/network.hpp"
#include "sim/routing.hpp"

namespace ftdb::sim {

/// Maps a logical route to the physical nodes hosting it. Throws
/// std::out_of_range if the route mentions nodes outside the machine.
std::vector<NodeId> physical_route(const Machine& machine, const std::vector<NodeId>& logical);

/// True when every consecutive pair of the *physical* route is a healthy
/// physical link (both endpoints alive, edge present).
bool physical_route_is_live(const Machine& machine, const std::vector<NodeId>& physical);

/// de Bruijn shift routing executed on a reconfigured machine: computes the
/// logical route in B_{m,h} label space and returns the physical node
/// sequence. The returned route is guaranteed live on a correctly
/// reconfigured FT machine (Theorem 1/2).
std::vector<NodeId> debruijn_route_on_machine(const Machine& machine, std::uint64_t m,
                                              unsigned h, NodeId logical_src,
                                              NodeId logical_dst);

/// Shuffle-exchange routing executed on a reconfigured machine.
std::vector<NodeId> se_route_on_machine(const Machine& machine, unsigned h,
                                        NodeId logical_src, NodeId logical_dst);

/// Route-stretch audit: for every (src, dst) pair, compares the algorithmic
/// logical route length against the shortest path in the *physical* survivor
/// graph. On a dilation-1 embedding the algorithmic route is never shorter
/// than the physical shortest path; the maximum ratio quantifies the price of
/// running the unmodified logical algorithm. Returns the maximum over all
/// pairs (1.0 means the logical algorithm is physically optimal everywhere it
/// was logically optimal).
double max_route_stretch(const Machine& machine, std::uint64_t m, unsigned h);

}  // namespace ftdb::sim
