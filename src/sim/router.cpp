#include "sim/router.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <exception>
#include <optional>
#include <queue>
#include <stdexcept>
#include <thread>
#include <utility>

#include "graph/algorithms.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::sim {

const char* router_backend_name(RouterBackend backend) {
  switch (backend) {
    case RouterBackend::Table: return "table";
    case RouterBackend::Compressed: return "compressed";
    case RouterBackend::Implicit: return "implicit";
  }
  return "?";
}

std::vector<NodeId> Router::path(NodeId from, NodeId dest) const {
  if (!reachable(dest, from)) return {};
  std::vector<NodeId> route{from};
  NodeId cur = from;
  while (cur != dest) {
    cur = next_hop(dest, cur);
    route.push_back(cur);
  }
  return route;
}

namespace {

void check_batch_spans(std::size_t dests, std::size_t nodes, std::size_t out) {
  if (dests != nodes || dests != out) {
    throw std::invalid_argument("Router batch query: span sizes differ");
  }
}

}  // namespace

void Router::route_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                        std::span<NodeId> out) const {
  check_batch_spans(dests.size(), nodes.size(), out.size());
  for (std::size_t i = 0; i < dests.size(); ++i) out[i] = next_hop(dests[i], nodes[i]);
}

void Router::route_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                        std::span<NodeId> out, std::span<RouteHint> hints) const {
  check_batch_spans(dests.size(), nodes.size(), out.size());
  if (hints.size() != dests.size()) {
    throw std::invalid_argument("Router batch query: hint span size differs");
  }
  route_many(dests, nodes, out);  // backends without incremental state: no-op hints
}

void Router::distance_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                           std::span<std::uint32_t> out) const {
  check_batch_spans(dests.size(), nodes.size(), out.size());
  for (std::size_t i = 0; i < dests.size(); ++i) out[i] = distance(dests[i], nodes[i]);
}

// --- CompressedRouter --------------------------------------------------------

namespace {

/// Reusable dest-rooted BFS into `row` (kUnreachable sentinel). The neighbor
/// source is a functor so the same sweep serves the graph's CSR and the
/// algebraic reference shapes.
template <class ForEachNeighbor>
void bfs_row(NodeId dest, std::vector<std::uint32_t>& row, std::vector<NodeId>& cur,
             std::vector<NodeId>& next, ForEachNeighbor&& for_each_neighbor) {
  std::fill(row.begin(), row.end(), kUnreachable);
  row[dest] = 0;
  cur.assign(1, dest);
  std::uint32_t level = 0;
  while (!cur.empty()) {
    ++level;
    next.clear();
    for (const NodeId u : cur) {
      for_each_neighbor(u, [&](NodeId v) {
        if (row[v] == kUnreachable) {
          row[v] = level;
          next.push_back(v);
        }
      });
    }
    cur.swap(next);
  }
}

/// bfs_row over the graph's own adjacency.
void bfs_row_graph(const Graph& g, NodeId dest, std::vector<std::uint32_t>& row,
                   std::vector<NodeId>& cur, std::vector<NodeId>& next) {
  bfs_row(dest, row, cur, next, [&](NodeId u, auto&& visit) {
    for (const NodeId v : g.neighbors(u)) visit(v);
  });
}

/// True when every adjacency list of g is a subset of the shape's algebraic
/// one — the condition under which the shape's distances are a sharable
/// reference (deviations can only be sparse detours around the holes).
template <class NeighborsOf>
bool subgraph_of_shape(const Graph& g, NeighborsOf&& neighbors_of) {
  std::vector<NodeId> expected;
  for (std::size_t x = 0; x < g.num_nodes(); ++x) {
    neighbors_of(static_cast<NodeId>(x), expected);
    const auto actual = g.neighbors(static_cast<NodeId>(x));
    if (!std::includes(expected.begin(), expected.end(), actual.begin(), actual.end())) {
      return false;
    }
  }
  return true;
}

/// Runs fn(chunk_index, dest_lo, dest_hi) over `chunks` contiguous
/// destination ranges, on `chunks` threads when more than one. Exceptions
/// propagate (first one wins).
template <class Fn>
void for_each_dest_chunk(std::size_t n, unsigned chunks, Fn&& fn) {
  if (chunks <= 1) {
    fn(0u, std::size_t{0}, n);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::exception_ptr> errors(chunks);
  std::vector<std::thread> pool;
  pool.reserve(chunks);
  for (unsigned c = 0; c < chunks; ++c) {
    pool.emplace_back([&, c] {
      try {
        fn(c, std::min(n, c * per), std::min(n, (c + 1) * per));
      } catch (...) {
        errors[c] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace

CompressedRouter::CompressedRouter(const Graph& g, unsigned build_threads) : n_(g.num_nodes()) {
  // Reference-shape search: any (m, h >= 2) factorization of N whose B_{m,h}
  // contains g, else SE_h. h = 1 (the complete graph) is excluded — every
  // graph embeds in K_N, but K_N's algebra shares nothing useful.
  for (unsigned h = 63; h >= 2 && reference_ == Reference::None; --h) {
    const std::uint64_t m = debruijn_exact_root(n_, h);
    if (m == 0) continue;
    const DeBruijnParams params{.base = m, .digits = h};
    if (subgraph_of_shape(
            g, [&](NodeId x, std::vector<NodeId>& out) { debruijn_neighbors(params, x, out); })) {
      reference_ = Reference::DeBruijn;
      db_ = params;
    }
  }
  if (reference_ == Reference::None && n_ >= 4 && (n_ & (n_ - 1)) == 0) {
    const auto h = static_cast<unsigned>(std::countr_zero(static_cast<std::uint64_t>(n_)));
    if (subgraph_of_shape(g, [&](NodeId x, std::vector<NodeId>& out) {
          shuffle_exchange_neighbors(h, x, out);
        })) {
      reference_ = Reference::ShuffleExchange;
      se_h_ = h;
    }
  }

  const unsigned threads = sharded_build_threads(build_threads, n_);

  if (reference_ != Reference::None) {
    // Shape-delta: per destination, diff the exact BFS row against a BFS of
    // the reference shape (cheaper than N evaluations of the O(h^2) formula,
    // and provably equal to it); only the deviations are kept. The graph
    // itself is retained for the canonical descent at query time. Each
    // destination's scan is independent, so contiguous destination chunks run
    // on separate threads and their raw vectors concatenate in chunk order —
    // the same dest-major sequence a serial scan produces.
    graph_ = g;
    const auto reference_neighbors = [&](NodeId x, std::vector<NodeId>& out) {
      if (reference_ == Reference::DeBruijn) {
        debruijn_neighbors(db_, x, out);
      } else {
        shuffle_exchange_neighbors(se_h_, x, out);
      }
    };
    struct RawException {
      NodeId node;
      NodeId dest;
      std::uint32_t dist;
    };
    std::vector<std::vector<RawException>> chunk_raw(threads);
    for_each_dest_chunk(n_, threads, [&](unsigned chunk, std::size_t lo, std::size_t hi) {
      std::vector<std::uint32_t> row(n_), ref_row(n_);
      std::vector<NodeId> cur, next, scratch;
      for (std::size_t dest = lo; dest < hi; ++dest) {
        bfs_row_graph(g, static_cast<NodeId>(dest), row, cur, next);
        // Same BFS over the algebraic adjacency (the shapes are symmetric, so
        // rooting at dest gives distance-to-dest).
        bfs_row(static_cast<NodeId>(dest), ref_row, cur, next, [&](NodeId u, auto&& visit) {
          reference_neighbors(u, scratch);
          for (const NodeId v : scratch) visit(v);
        });
        for (std::size_t v = 0; v < n_; ++v) {
          if (row[v] != ref_row[v]) {
            chunk_raw[chunk].push_back(
                {static_cast<NodeId>(v), static_cast<NodeId>(dest), row[v]});
          }
        }
      }
    });
    std::vector<RawException> raw;
    {
      std::size_t total = 0;
      for (const auto& c : chunk_raw) total += c.size();
      raw.reserve(total);
      for (auto& c : chunk_raw) raw.insert(raw.end(), c.begin(), c.end());
    }
    exception_offsets_.assign(n_ + 1, 0);
    for (const RawException& e : raw) ++exception_offsets_[e.node + 1];
    for (std::size_t v = 0; v < n_; ++v) exception_offsets_[v + 1] += exception_offsets_[v];
    exception_dest_.resize(raw.size());
    exception_dist_.resize(raw.size());
    std::vector<std::size_t> cursor(exception_offsets_.begin(), exception_offsets_.end() - 1);
    for (const RawException& e : raw) {  // dest-major input keeps per-node dests sorted
      const std::size_t i = cursor[e.node]++;
      exception_dest_[i] = e.dest;
      exception_dist_[i] = e.dist;
    }
    // Nodes already isolated in the input graph are adopted as retired faults,
    // so a router built from a degraded machine supports retract_fault too.
    for (std::size_t u = 0; u < n_; ++u) {
      if (graph_.degree(static_cast<NodeId>(u)) == 0) {
        faulty_.push_back(static_cast<NodeId>(u));
      }
    }
    return;
  }

  // Run-length fallback: a destination-major sweep; a new run whenever a
  // node's canonical hop differs from its previous destination's. The full
  // N^2 matrix is never materialized. The cross-destination `last` dependency
  // is the only thing coupling the sweep, so each chunk scans independently
  // (emitting a run for every node at its first destination) and the stitch
  // drops each chunk's boundary runs that merely continue the previous
  // chunk's final hop — reproducing the serial run sequence exactly.
  struct RawRun {
    NodeId node;
    NodeId dest_lo;
    NodeId hop;
  };
  struct RunChunk {
    std::size_t dest_lo = 0;
    std::vector<RawRun> raw;
    std::vector<NodeId> final_hop;  // each node's hop at the chunk's last dest
  };
  std::vector<RunChunk> chunks(threads);
  for_each_dest_chunk(n_, threads, [&](unsigned chunk, std::size_t lo, std::size_t hi) {
    RunChunk& out = chunks[chunk];
    out.dest_lo = lo;
    std::vector<std::uint32_t> row(n_);
    std::vector<NodeId> cur, next;
    std::vector<NodeId> last(n_, kInvalidNode);
    const auto dist_of = [&](NodeId w) { return row[w]; };
    for (std::size_t dest = lo; dest < hi; ++dest) {
      bfs_row_graph(g, static_cast<NodeId>(dest), row, cur, next);
      for (std::size_t v = 0; v < n_; ++v) {
        NodeId hop;
        if (v == dest) {
          hop = static_cast<NodeId>(dest);
        } else if (row[v] == kUnreachable) {
          hop = kInvalidNode;
        } else {
          hop = canonical_descent_step(g, static_cast<NodeId>(v), dist_of);
        }
        if (dest == lo || hop != last[v]) {
          out.raw.push_back({static_cast<NodeId>(v), static_cast<NodeId>(dest), hop});
        }
        last[v] = hop;
      }
    }
    out.final_hop = std::move(last);
  });
  std::vector<RawRun> raw;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (const RawRun& r : chunks[c].raw) {
      if (c > 0 && r.dest_lo == chunks[c].dest_lo &&
          r.hop == chunks[c - 1].final_hop[r.node]) {
        continue;  // continuation of the previous chunk's open run
      }
      raw.push_back(r);
    }
  }
  // Counting-sort the destination-major runs into per-node CSR order (stable,
  // so each node's runs stay ascending in dest_lo).
  run_offsets_.assign(n_ + 1, 0);
  for (const RawRun& r : raw) ++run_offsets_[r.node + 1];
  for (std::size_t v = 0; v < n_; ++v) run_offsets_[v + 1] += run_offsets_[v];
  run_dest_lo_.resize(raw.size());
  run_hop_.resize(raw.size());
  std::vector<std::size_t> cursor(run_offsets_.begin(), run_offsets_.end() - 1);
  for (const RawRun& r : raw) {
    const std::size_t i = cursor[r.node]++;
    run_dest_lo_[i] = r.dest_lo;
    run_hop_[i] = r.hop;
  }
}

std::uint32_t CompressedRouter::reference_distance(NodeId dest, NodeId node) const {
  return reference_ == Reference::DeBruijn ? debruijn_distance(db_, node, dest)
                                           : shuffle_exchange_distance(se_h_, node, dest);
}

std::uint32_t CompressedRouter::distance(NodeId dest, NodeId node) const {
  if (reference_ != Reference::None) {
    const auto lo =
        exception_dest_.begin() + static_cast<std::ptrdiff_t>(exception_offsets_[node]);
    const auto hi =
        exception_dest_.begin() + static_cast<std::ptrdiff_t>(exception_offsets_[node + 1]);
    const auto it = std::lower_bound(lo, hi, dest);
    if (it != hi && *it == dest) {
      return exception_dist_[static_cast<std::size_t>(it - exception_dest_.begin())];
    }
    return reference_distance(dest, node);
  }
  std::uint32_t hops = 0;
  NodeId cur = node;
  while (cur != dest) {
    cur = next_hop(dest, cur);
    if (cur == kInvalidNode) return static_cast<std::uint32_t>(-1);
    ++hops;
  }
  return hops;
}

NodeId CompressedRouter::next_hop(NodeId dest, NodeId node) const {
  if (reference_ != Reference::None) {
    if (node == dest) return dest;
    const std::uint32_t here = distance(dest, node);
    if (here == static_cast<std::uint32_t>(-1)) return kInvalidNode;
    return canonical_descent_step(graph_, node,
                                  [&](NodeId w) { return distance(dest, w); });
  }
  const auto lo = run_dest_lo_.begin() + static_cast<std::ptrdiff_t>(run_offsets_[node]);
  const auto hi = run_dest_lo_.begin() + static_cast<std::ptrdiff_t>(run_offsets_[node + 1]);
  const auto it = std::upper_bound(lo, hi, dest) - 1;  // last run starting <= dest
  return run_hop_[static_cast<std::size_t>(it - run_dest_lo_.begin())];
}

std::size_t CompressedRouter::memory_bytes() const {
  std::size_t bytes = 0;
  if (reference_ != Reference::None) {
    bytes += exception_offsets_.size() * sizeof(std::size_t) +
             exception_dest_.size() * sizeof(NodeId) +
             exception_dist_.size() * sizeof(std::uint32_t);
    // The retained CSR: offsets + both half-edge arrays.
    bytes += (graph_.num_nodes() + 1) * sizeof(std::size_t) +
             graph_.num_edges() * 2 * sizeof(NodeId);
  }
  bytes += run_offsets_.size() * sizeof(std::size_t) +
           run_dest_lo_.size() * sizeof(NodeId) + run_hop_.size() * sizeof(NodeId);
  return bytes;
}

// --- CompressedRouter incremental maintenance --------------------------------

void CompressedRouter::reference_neighbors(NodeId x, std::vector<NodeId>& out) const {
  if (reference_ == Reference::DeBruijn) {
    debruijn_neighbors(db_, x, out);
  } else {
    shuffle_exchange_neighbors(se_h_, x, out);
  }
}

CompressedRouter::Stats CompressedRouter::stats() const {
  Stats s;
  s.exception_entries = exception_dest_.size();
  s.run_entries = run_dest_lo_.size();
  s.bytes = memory_bytes();
  switch (reference_) {
    case Reference::DeBruijn:
      s.reference = "debruijn";
      s.reference_base = db_.base;
      s.reference_digits = db_.digits;
      break;
    case Reference::ShuffleExchange:
      s.reference = "shuffle_exchange";
      s.reference_digits = se_h_;
      break;
    case Reference::None:
      s.reference = "none";
      break;
  }
  s.tracked_faults = faulty_.size();
  // FNV-1a over the logical routing state, so two routers answering
  // identically hash identically regardless of how they were produced
  // (from-scratch build vs a chain of incremental patches vs journal replay).
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(n_));
  for (const std::size_t o : exception_offsets_) mix(o);
  for (const NodeId d : exception_dest_) mix(d);
  for (const std::uint32_t d : exception_dist_) mix(d);
  for (const std::size_t o : run_offsets_) mix(o);
  for (const NodeId d : run_dest_lo_) mix(d);
  for (const NodeId hop : run_hop_) mix(hop);
  s.state_hash = h;
  return s;
}

void CompressedRouter::rebuild_graph(NodeId v, const std::vector<NodeId>& add_neighbors,
                                     bool removing) {
  GraphBuilder b(n_);
  b.reserve_edges(graph_.num_edges() + add_neighbors.size());
  for (NodeId u = 0; u < n_; ++u) {
    for (const NodeId w : graph_.neighbors(u)) {
      if (u >= w) continue;  // each undirected edge once
      if (removing && (u == v || w == v)) continue;
      b.add_edge(u, w);
    }
  }
  if (!removing) {
    for (const NodeId w : add_neighbors) b.add_edge(v, w);
  }
  graph_ = b.build();
}

void CompressedRouter::merge_deltas(std::vector<DistDelta>& deltas) {
  if (deltas.empty()) return;
  std::sort(deltas.begin(), deltas.end(), [](const DistDelta& a, const DistDelta& b) {
    return a.node != b.node ? a.node < b.node : a.dest < b.dest;
  });
  std::vector<std::size_t> new_offsets(n_ + 1, 0);
  std::vector<NodeId> new_dest;
  std::vector<std::uint32_t> new_dist;
  new_dest.reserve(exception_dest_.size() + deltas.size());
  new_dist.reserve(exception_dist_.size() + deltas.size());
  std::size_t di = 0;
  for (NodeId u = 0; u < n_; ++u) {
    std::size_t oi = exception_offsets_[u];
    const std::size_t oe = exception_offsets_[u + 1];
    while (oi < oe || (di < deltas.size() && deltas[di].node == u)) {
      bool take_delta;
      if (di >= deltas.size() || deltas[di].node != u) {
        take_delta = false;
      } else if (oi >= oe) {
        take_delta = true;
      } else if (deltas[di].dest < exception_dest_[oi]) {
        take_delta = true;
      } else if (deltas[di].dest > exception_dest_[oi]) {
        take_delta = false;
      } else {
        take_delta = true;  // the delta overrides the stale entry
        ++oi;
      }
      if (take_delta) {
        const DistDelta& dl = deltas[di++];
        // Canonical form: an exception exists exactly where the true distance
        // deviates from the reference algebra. A delta that lands back on the
        // reference value erases the entry.
        if (dl.dist != reference_distance(dl.dest, dl.node)) {
          new_dest.push_back(dl.dest);
          new_dist.push_back(dl.dist);
        }
      } else {
        new_dest.push_back(exception_dest_[oi]);
        new_dist.push_back(exception_dist_[oi]);
        ++oi;
      }
    }
    new_offsets[u + 1] = new_dest.size();
  }
  exception_offsets_ = std::move(new_offsets);
  exception_dest_ = std::move(new_dest);
  exception_dist_ = std::move(new_dist);
}

void CompressedRouter::apply_fault(NodeId v) {
  if (reference_ == Reference::None) {
    throw std::logic_error(
        "CompressedRouter::apply_fault: run-length mode has no reference shape to patch");
  }
  if (v >= n_) throw std::invalid_argument("CompressedRouter::apply_fault: node out of range");
  if (std::binary_search(faulty_.begin(), faulty_.end(), v)) {
    throw std::invalid_argument("CompressedRouter::apply_fault: node already retired");
  }

  const auto nb = graph_.neighbors(v);
  const std::vector<NodeId> old_neighbors(nb.begin(), nb.end());

  std::vector<DistDelta> deltas;

  // Old distances v <-> d for every d in one BFS (the graph is undirected),
  // instead of N single-pair lookups that each pay the O(h^2) reference
  // algebra. Also serves as the dest-v row below.
  std::vector<std::uint32_t> row_v(n_);
  {
    std::vector<NodeId> bfs_cur, bfs_next;
    bfs_row_graph(graph_, v, row_v, bfs_cur, bfs_next);
  }

  // Scratch shared across destinations: era-stamped membership in the
  // affected set, era-stamped settled/tentative state for the repair
  // Dijkstra, and an era-stamped memo of this destination's old distances —
  // the cascade probes the same near-v nodes from several parents, and each
  // raw distance() costs an O(h^2) algebra evaluation on non-exception
  // pairs. No per-destination O(N) clearing anywhere.
  std::vector<std::uint32_t> in_affected(n_, 0), settled(n_, 0);
  std::vector<std::uint32_t> tentative(n_);
  std::vector<std::uint32_t> memo_stamp(n_, 0), memo_dist(n_);
  std::uint32_t era = 0;
  using QItem = std::pair<std::uint32_t, NodeId>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>> cascade, repair;
  std::vector<NodeId> affected;

  for (NodeId d = 0; d < n_; ++d) {
    if (d == v) continue;
    const std::uint32_t old_v = row_v[d];
    if (old_v == kUnreachable) continue;  // v lies on no live path to d
    deltas.push_back({v, d, kUnreachable});
    ++era;
    in_affected[v] = era;
    affected.clear();
    const auto dist = [&](NodeId x) {
      if (memo_stamp[x] == era) return memo_dist[x];
      memo_stamp[x] = era;
      return memo_dist[x] = distance(d, x);
    };

    // A node whose every shortest-path parent is v or already affected loses
    // all of its shortest paths to d (Ramalingam–Reps deletion). Processing
    // candidates in increasing old-distance order makes the test exact: all
    // affected nodes of the parent level are classified before any child.
    const auto has_live_parent = [&](NodeId u, std::uint32_t du) {
      for (const NodeId w : graph_.neighbors(u)) {
        if (w == v || in_affected[w] == era) continue;
        if (dist(w) + 1 == du) return true;
      }
      return false;
    };
    for (const NodeId u : old_neighbors) {
      const std::uint32_t du = dist(u);
      if (du != old_v + 1 || in_affected[u] == era) continue;
      if (has_live_parent(u, du)) continue;
      in_affected[u] = era;
      affected.push_back(u);
      cascade.push({du, u});
    }
    while (!cascade.empty()) {
      const auto [du, u] = cascade.top();
      cascade.pop();
      for (const NodeId x : graph_.neighbors(u)) {
        if (x == v || in_affected[x] == era) continue;
        const std::uint32_t dx = dist(x);
        if (dx != du + 1) continue;  // not a child of u
        if (has_live_parent(x, dx)) continue;
        in_affected[x] = era;
        affected.push_back(x);
        cascade.push({dx, x});
      }
    }

    // Exact new distances for the affected set: Dijkstra seeded from the
    // unaffected boundary (whose distances are unchanged by the deletion).
    for (const NodeId u : affected) {
      std::uint32_t best = kUnreachable;
      for (const NodeId w : graph_.neighbors(u)) {
        if (w == v || in_affected[w] == era) continue;
        const std::uint32_t dw = dist(w);
        if (dw != kUnreachable && dw + 1 < best) best = dw + 1;
      }
      tentative[u] = best;
      if (best != kUnreachable) repair.push({best, u});
    }
    while (!repair.empty()) {
      const auto [t, u] = repair.top();
      repair.pop();
      if (settled[u] == era || t != tentative[u]) continue;
      settled[u] = era;
      for (const NodeId x : graph_.neighbors(u)) {
        if (x == v || in_affected[x] != era || settled[x] == era) continue;
        if (t + 1 < tentative[x]) {
          tentative[x] = t + 1;
          repair.push({t + 1, x});
        }
      }
    }
    for (const NodeId u : affected) {
      deltas.push_back({u, d, settled[u] == era ? tentative[u] : kUnreachable});
    }
  }

  // The row of destination v: an isolated node is unreachable from everyone.
  for (NodeId u = 0; u < n_; ++u) {
    if (u != v && row_v[u] != kUnreachable) deltas.push_back({u, v, kUnreachable});
  }

  rebuild_graph(v, {}, /*removing=*/true);
  merge_deltas(deltas);
  faulty_.insert(std::upper_bound(faulty_.begin(), faulty_.end(), v), v);
}

void CompressedRouter::retract_fault(NodeId v) {
  if (reference_ == Reference::None) {
    throw std::logic_error(
        "CompressedRouter::retract_fault: run-length mode has no reference shape to patch");
  }
  const auto it = std::lower_bound(faulty_.begin(), faulty_.end(), v);
  if (it == faulty_.end() || *it != v) {
    throw std::invalid_argument("CompressedRouter::retract_fault: node is not retired");
  }
  faulty_.erase(it);

  // v returns with its full reference adjacency towards every live peer.
  std::vector<NodeId> restored;
  reference_neighbors(v, restored);
  std::erase_if(restored, [&](NodeId w) {
    return std::binary_search(faulty_.begin(), faulty_.end(), w);
  });
  // Rebuild the graph first: the relaxation below walks the restored
  // adjacency while distance() still answers from the pre-repair exceptions.
  rebuild_graph(v, restored, /*removing=*/false);

  std::vector<DistDelta> deltas;

  // Row of destination v: one BFS over the restored graph.
  {
    std::vector<std::uint32_t> row(n_);
    std::vector<NodeId> cur, next;
    bfs_row_graph(graph_, v, row, cur, next);
    for (NodeId u = 0; u < n_; ++u) {
      if (u != v && row[u] != distance(v, u)) deltas.push_back({u, v, row[u]});
    }
  }

  // Every other destination: an edge insertion only ever shortens distances,
  // and every shortened path runs through v, so relaxing outward from v with
  // old distances as the cap touches exactly the improved nodes.
  std::vector<std::uint32_t> stamp(n_, 0);
  std::vector<std::uint32_t> best(n_);
  std::vector<std::uint32_t> memo_stamp(n_, 0), memo_dist(n_);
  std::uint32_t era = 0;
  using QItem = std::pair<std::uint32_t, NodeId>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>> relax;
  for (NodeId d = 0; d < n_; ++d) {
    if (d == v) continue;
    ++era;
    // Era-stamped memo of this destination's pre-repair distances: the
    // relaxation frontier probes shared neighbors repeatedly, and each raw
    // distance() pays the O(h^2) reference algebra on non-exception pairs.
    const auto dist = [&](NodeId x) {
      if (memo_stamp[x] == era) return memo_dist[x];
      memo_stamp[x] = era;
      return memo_dist[x] = distance(d, x);
    };
    std::uint32_t nv = kUnreachable;
    for (const NodeId w : graph_.neighbors(v)) {
      const std::uint32_t dw = dist(w);
      if (dw != kUnreachable && dw + 1 < nv) nv = dw + 1;
    }
    if (nv >= dist(v)) continue;  // no improvement for this destination
    stamp[v] = era;
    best[v] = nv;
    relax.push({nv, v});
    while (!relax.empty()) {
      const auto [t, u] = relax.top();
      relax.pop();
      if (t != best[u] || stamp[u] != era) continue;  // stale entry
      deltas.push_back({u, d, t});
      for (const NodeId x : graph_.neighbors(u)) {
        const std::uint32_t cur_x = stamp[x] == era ? best[x] : dist(x);
        if (t + 1 < cur_x) {
          stamp[x] = era;
          best[x] = t + 1;
          relax.push({t + 1, x});
        }
      }
    }
  }

  merge_deltas(deltas);
}

// --- ImplicitRouter ----------------------------------------------------------

namespace {

// Thread-local direct-mapped memo cache behind the batched implicit queries.
// Keyed by (router id, dest, node); a full entry also knows the canonical
// hop, a partial one (hop == kInvalidNode) only the distance + witness — the
// forward-seeded state a route_many batch leaves for the next engine cycle,
// when the same packet asks again from one hop closer. The slab is process
// scratch shared by every ImplicitRouter: router ids come from a never-reused
// counter, so a destroyed router's entries can never alias a new one, and
// memory_bytes() legitimately stays 0.
struct RouteCacheEntry {
  std::uint32_t id = 0;  // 0 = empty (router ids start at 1)
  NodeId dest = 0;
  NodeId node = 0;
  NodeId hop = 0;
  std::uint32_t dist = 0;
  std::int32_t wit = 0;
  std::uint64_t opt = 0;  // optimal-offset mask at `node` (0 = unknown)
};

// 4-way set-associative: a route_many cohort keeps two live keys per packet
// (the pending query and its forward-seed), and a direct-mapped table at
// realistic cohort sizes evicts enough of them to pay a full rescan per
// collision. Four ways push the overflow probability per set to ~1%.
constexpr std::size_t kRouteCacheWays = 4;
constexpr std::size_t kRouteCacheSets = 4096;  // x 4 ways x 32 B = 512 KiB
using RouteCache = std::array<RouteCacheEntry, kRouteCacheSets * kRouteCacheWays>;

RouteCache& route_cache() {
  thread_local RouteCache cache{};
  return cache;
}

inline std::uint64_t route_cache_hash(std::uint32_t id, NodeId dest, NodeId node) {
  std::uint64_t k = (static_cast<std::uint64_t>(dest) << 32) | node;
  k ^= static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ull;
  k *= 0xBF58476D1CE4E5B9ull;
  k ^= k >> 29;
  k *= 0x94D049BB133111EBull;
  k ^= k >> 32;
  return k;
}

inline RouteCacheEntry* route_cache_find(RouteCache& cache, std::uint32_t id, NodeId dest,
                                         NodeId node) {
  const std::uint64_t k = route_cache_hash(id, dest, node);
  RouteCacheEntry* set = &cache[(static_cast<std::size_t>(k) & (kRouteCacheSets - 1)) *
                                kRouteCacheWays];
  for (std::size_t w = 0; w < kRouteCacheWays; ++w) {
    if (set[w].id == id && set[w].dest == dest && set[w].node == node) return &set[w];
  }
  return nullptr;
}

// The slot to (over)write for this key: its existing entry if present, else
// an empty/foreign-id way, else a key-hashed victim (stateless pseudo-LRU —
// two keys sharing a set pick different victims with high probability).
inline RouteCacheEntry& route_cache_store(RouteCache& cache, std::uint32_t id, NodeId dest,
                                          NodeId node) {
  const std::uint64_t k = route_cache_hash(id, dest, node);
  RouteCacheEntry* set = &cache[(static_cast<std::size_t>(k) & (kRouteCacheSets - 1)) *
                                kRouteCacheWays];
  for (std::size_t w = 0; w < kRouteCacheWays; ++w) {
    if (set[w].id == id && set[w].dest == dest && set[w].node == node) return set[w];
  }
  for (std::size_t w = 0; w < kRouteCacheWays; ++w) {
    if (set[w].id != id) return set[w];
  }
  return set[(k >> 32) & (kRouteCacheWays - 1)];
}

std::uint32_t next_route_cache_id() {
  static std::atomic<std::uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// The implicit backend's per-shape plumbing, shared by the scalar and batched
// paths via templates over the topology steppers. Neighbor enumeration goes
// into a fixed stack array — the algebraic degree is <= 2m <= 32 on every
// packed shape (wider bases take the next_hop_wide fallback), and SE is <= 3.
constexpr int kMaxFixedDegree = 32;

struct DebruijnShapeOps {
  using Stepper = DebruijnDistanceStepper;
  DeBruijnParams params;
  Stepper make(NodeId dest) const { return Stepper(params, dest); }
};

struct ShuffleExchangeShapeOps {
  using Stepper = ShuffleExchangeDistanceStepper;
  unsigned h;
  Stepper make(NodeId dest) const { return Stepper(h, dest); }
};

// Canonical hop from the stepper's current node: the algebraic enumeration
// produces exactly the graph's sorted adjacency, so the first neighbor whose
// capped probe proves dist-1 is the canonical (lowest-id) hop — and at
// dist == 1 the only closer node is dest itself, no probes needed. The
// winner's witness comes back so the caller can advance/memoize it without
// another scan. Neighbors come pre-packaged from the stepper
// (probe_neighbors/probe_pre): the shift classification and its modular
// divisions happen once per hop, not once per probe.
template <class Stepper>
NodeId canonical_hop(const Stepper& st, DistanceWitness* hop_wit, std::uint64_t* hop_opt) {
  const std::uint32_t here = st.distance();
  if (here == 1) {
    hop_wit->offset = 0;
    *hop_opt = 0;
    return st.dest();
  }
  typename Stepper::ProbeNeighbor nbrs[kMaxFixedDegree];
  const int count = st.probe_neighbors(nbrs);
  for (int i = 0; i < count; ++i) {
    if (st.probe_pre(nbrs[i], here - 1, hop_wit, hop_opt) == here - 1) return nbrs[i].id;
  }
  return kInvalidNode;  // unreachable on a connected shape: cannot happen
}

template <class Ops>
NodeId scalar_next_hop(const Ops& ops, NodeId dest, NodeId node) {
  typename Ops::Stepper st = ops.make(dest);
  st.reset(node);
  DistanceWitness w;
  std::uint64_t opt = 0;
  return canonical_hop(st, &w, &opt);
}

template <class Ops>
void route_many_impl(const Ops& ops, std::uint32_t cache_id, std::uint64_t n,
                     std::span<const NodeId> dests, std::span<const NodeId> nodes,
                     std::span<NodeId> out) {
  RouteCache& cache = route_cache();
  std::optional<typename Ops::Stepper> st;
  NodeId st_dest = kInvalidNode;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const NodeId dest = dests[i];
    const NodeId node = nodes[i];
    if (node >= n || dest >= n) throw std::out_of_range("ImplicitRouter: node out of range");
    if (node == dest) {
      out[i] = dest;
      continue;
    }
    RouteCacheEntry* e = route_cache_find(cache, cache_id, dest, node);
    if (e != nullptr && e->hop != kInvalidNode) {
      out[i] = e->hop;
      continue;
    }
    if (!st) {
      st.emplace(ops.make(dest));
      st_dest = dest;
    } else if (st_dest != dest) {
      st->retarget(dest);
      st_dest = dest;
    }
    if (e != nullptr) {
      // Partial hit: skip the full scan and restore the optimal-offset mask
      // the previous hop's probe computed for free.
      st->seed_opt(node, e->dist, DistanceWitness{e->wit}, e->opt);
    } else {
      st->reset(node);
    }
    DistanceWitness hop_wit{};
    std::uint64_t hop_opt = 0;
    const NodeId hop = canonical_hop(*st, &hop_wit, &hop_opt);
    out[i] = hop;
    if (hop == kInvalidNode) continue;
    const std::uint32_t here = st->distance();
    // A partial hit upgrades in place — no second hashed lookup.
    RouteCacheEntry& full = e != nullptr ? *e : route_cache_store(cache, cache_id, dest, node);
    full = {cache_id, dest, node, hop, here, st->witness().offset, st->opt_mask()};
    if (hop != dest) {
      // Forward-seed the hop's slot: next cycle this packet asks from `hop`
      // at distance here-1, and the winner's witness + mask make that query
      // O(popcount(mask)). Never downgrade a full entry that already knows
      // its hop.
      RouteCacheEntry& f = route_cache_store(cache, cache_id, dest, hop);
      const bool keep =
          f.id == cache_id && f.dest == dest && f.node == hop && f.hop != kInvalidNode;
      if (!keep) f = {cache_id, dest, hop, kInvalidNode, here - 1, hop_wit.offset, hop_opt};
    }
  }
}

// The hinted batch: per-packet state rides in the caller's RouteHint array
// instead of the hashed memo cache, so a warm packet costs one seed + the
// adjacent-offset probes and touches no shared scratch at all. A hint is
// trusted only when its (dest, node) matches the query — fresh or stale
// entries fall back to a full positioning scan and are then overwritten.
template <class Ops>
void route_many_hinted_impl(const Ops& ops, std::uint64_t n, std::span<const NodeId> dests,
                            std::span<const NodeId> nodes, std::span<NodeId> out,
                            std::span<RouteHint> hints) {
  std::optional<typename Ops::Stepper> st;
  NodeId st_dest = kInvalidNode;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const NodeId dest = dests[i];
    const NodeId node = nodes[i];
    if (node >= n || dest >= n) throw std::out_of_range("ImplicitRouter: node out of range");
    if (node == dest) {
      out[i] = dest;
      continue;
    }
    if (!st) {
      st.emplace(ops.make(dest));
      st_dest = dest;
    } else if (st_dest != dest) {
      st->retarget(dest);
      st_dest = dest;
    }
    RouteHint& hint = hints[i];
    if (hint.dest == dest && hint.node == node) {
      st->seed_opt(node, hint.dist, DistanceWitness{hint.wit}, hint.opt);
    } else {
      st->reset(node);
    }
    DistanceWitness hop_wit{};
    std::uint64_t hop_opt = 0;
    const NodeId hop = canonical_hop(*st, &hop_wit, &hop_opt);
    out[i] = hop;
    if (hop == kInvalidNode) continue;
    hint = {dest, hop, st->distance() - 1, hop_wit.offset, hop_opt};
  }
}

template <class Ops>
void distance_many_impl(const Ops& ops, std::uint32_t cache_id, std::uint64_t n,
                        std::span<const NodeId> dests, std::span<const NodeId> nodes,
                        std::span<std::uint32_t> out) {
  RouteCache& cache = route_cache();
  std::optional<typename Ops::Stepper> st;
  NodeId st_dest = kInvalidNode;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const NodeId dest = dests[i];
    const NodeId node = nodes[i];
    if (node >= n || dest >= n) throw std::out_of_range("ImplicitRouter: node out of range");
    if (node == dest) {
      out[i] = 0;
      continue;
    }
    const RouteCacheEntry* e = route_cache_find(cache, cache_id, dest, node);
    if (e != nullptr) {
      out[i] = e->dist;  // full and partial entries both know the distance
      continue;
    }
    if (!st) {
      st.emplace(ops.make(dest));
      st_dest = dest;
    } else if (st_dest != dest) {
      st->retarget(dest);
      st_dest = dest;
    }
    out[i] = st->reset(node);
    route_cache_store(cache, cache_id, dest, node) = {
        cache_id, dest, node, kInvalidNode, st->distance(), st->witness().offset,
        st->opt_mask()};
  }
}

template <class Ops>
std::vector<NodeId> path_impl(const Ops& ops, NodeId from, NodeId dest) {
  typename Ops::Stepper st = ops.make(dest);
  st.reset(from);
  std::vector<NodeId> route{from};
  route.reserve(st.distance() + 1);
  while (st.node() != dest) {
    DistanceWitness hop_wit{};
    std::uint64_t hop_opt = 0;
    const NodeId hop = canonical_hop(st, &hop_wit, &hop_opt);
    // seed_opt rather than advance: it repositions just as cheaply and keeps
    // the winner's optimal-offset mask for the next hop's probes.
    st.seed_opt(hop, st.distance() - 1, hop_wit, hop_opt);
    route.push_back(hop);
  }
  return route;
}

}  // namespace

ImplicitRouter::ImplicitRouter(Shape shape, DeBruijnParams db, unsigned se_h, std::uint64_t n)
    : shape_(shape), db_(db), se_h_(se_h), n_(n), cache_id_(next_route_cache_id()) {}

ImplicitRouter ImplicitRouter::for_debruijn(const DeBruijnParams& params) {
  return ImplicitRouter(Shape::DeBruijn, params, 0, debruijn_num_nodes(params));
}

ImplicitRouter ImplicitRouter::for_shuffle_exchange(unsigned h) {
  return ImplicitRouter(Shape::ShuffleExchange, {}, h, shuffle_exchange_num_nodes(h));
}

std::size_t ImplicitRouter::route_cache_bytes() { return sizeof(RouteCache); }

std::uint32_t ImplicitRouter::distance(NodeId dest, NodeId node) const {
  return shape_ == Shape::DeBruijn ? debruijn_distance(db_, node, dest)
                                   : shuffle_exchange_distance(se_h_, node, dest);
}

NodeId ImplicitRouter::next_hop(NodeId dest, NodeId node) const {
  if (node >= n_ || dest >= n_) throw std::out_of_range("ImplicitRouter: node out of range");
  if (node == dest) return dest;
  if (shape_ == Shape::DeBruijn) {
    if (2 * db_.base > kMaxFixedDegree) return next_hop_wide(dest, node);
    return scalar_next_hop(DebruijnShapeOps{db_}, dest, node);
  }
  return scalar_next_hop(ShuffleExchangeShapeOps{se_h_}, dest, node);
}

// Wide-base shapes (algebraic degree > kMaxFixedDegree): the original
// vector-based enumeration with full distance evaluations. Cold by
// construction — every packed B_{m,h} has degree <= 2m <= 32.
NodeId ImplicitRouter::next_hop_wide(NodeId dest, NodeId node) const {
  const std::uint32_t here = distance(dest, node);
  if (here == 1) return dest;
  std::vector<NodeId> neighbors;
  debruijn_neighbors(db_, node, neighbors);
  for (const NodeId w : neighbors) {
    if (distance(dest, w) + 1 == here) return w;
  }
  return kInvalidNode;  // unreachable on a connected shape: cannot happen
}

void ImplicitRouter::route_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                                std::span<NodeId> out) const {
  check_batch_spans(dests.size(), nodes.size(), out.size());
  if (shape_ == Shape::DeBruijn) {
    if (2 * db_.base > kMaxFixedDegree) {
      for (std::size_t i = 0; i < dests.size(); ++i) out[i] = next_hop(dests[i], nodes[i]);
      return;
    }
    route_many_impl(DebruijnShapeOps{db_}, cache_id_, n_, dests, nodes, out);
    return;
  }
  route_many_impl(ShuffleExchangeShapeOps{se_h_}, cache_id_, n_, dests, nodes, out);
}

void ImplicitRouter::route_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                                std::span<NodeId> out, std::span<RouteHint> hints) const {
  check_batch_spans(dests.size(), nodes.size(), out.size());
  if (hints.size() != dests.size()) {
    throw std::invalid_argument("Router batch query: hint span size differs");
  }
  if (shape_ == Shape::DeBruijn) {
    if (2 * db_.base > kMaxFixedDegree) {
      for (std::size_t i = 0; i < dests.size(); ++i) out[i] = next_hop(dests[i], nodes[i]);
      return;
    }
    route_many_hinted_impl(DebruijnShapeOps{db_}, n_, dests, nodes, out, hints);
    return;
  }
  route_many_hinted_impl(ShuffleExchangeShapeOps{se_h_}, n_, dests, nodes, out, hints);
}

void ImplicitRouter::distance_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                                   std::span<std::uint32_t> out) const {
  check_batch_spans(dests.size(), nodes.size(), out.size());
  if (shape_ == Shape::DeBruijn) {
    if (2 * db_.base > kMaxFixedDegree) {
      for (std::size_t i = 0; i < dests.size(); ++i) out[i] = distance(dests[i], nodes[i]);
      return;
    }
    distance_many_impl(DebruijnShapeOps{db_}, cache_id_, n_, dests, nodes, out);
    return;
  }
  distance_many_impl(ShuffleExchangeShapeOps{se_h_}, cache_id_, n_, dests, nodes, out);
}

std::vector<NodeId> ImplicitRouter::path(NodeId from, NodeId dest) const {
  if (from >= n_ || dest >= n_) return {};
  if (shape_ == Shape::DeBruijn) {
    if (2 * db_.base > kMaxFixedDegree) return Router::path(from, dest);
    return path_impl(DebruijnShapeOps{db_}, from, dest);
  }
  return path_impl(ShuffleExchangeShapeOps{se_h_}, from, dest);
}

// --- construction ------------------------------------------------------------

std::unique_ptr<Router> make_router(const Graph& g, const RouterOptions& options) {
  using Backend = RouterOptions::Backend;
  if (options.backend == Backend::Auto || options.backend == Backend::Implicit) {
    // Size-aware policy (Auto only): below the threshold the N^2 slab is
    // cheap and its O(1) lookup beats the O(h^2) label algebra, so small
    // shaped machines get the table — the canonical hops are identical
    // either way. A forced Backend::Implicit skips the size check.
    const bool implicit_fits =
        options.backend == Backend::Implicit || options.implicit_min_nodes == 0 ||
        g.num_nodes() >= options.implicit_min_nodes;
    if (const auto db = debruijn_shape_of(g)) {
      if (implicit_fits) {
        return std::make_unique<ImplicitRouter>(ImplicitRouter::for_debruijn(*db));
      }
      return std::make_unique<TableRouter>(g, options.build_threads);
    }
    if (const auto se_h = shuffle_exchange_shape_of(g)) {
      if (implicit_fits) {
        return std::make_unique<ImplicitRouter>(ImplicitRouter::for_shuffle_exchange(*se_h));
      }
      return std::make_unique<TableRouter>(g, options.build_threads);
    }
    if (options.backend == Backend::Implicit) {
      throw std::invalid_argument(
          "make_router: graph is neither de Bruijn- nor shuffle-exchange-shaped");
    }
  }
  if (options.backend == Backend::Compressed ||
      (options.backend == Backend::Auto && g.max_degree() <= options.compressed_max_degree)) {
    return std::make_unique<CompressedRouter>(g, options.build_threads);
  }
  return std::make_unique<TableRouter>(g, options.build_threads);
}

}  // namespace ftdb::sim
