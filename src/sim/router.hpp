// Unified routing engine for the simulated machines.
//
// Every consumer of next-hop routing (the packet engine, reconfigured-machine
// routing, the campaign stretch metric, the routing benches) talks to one
// `Router` interface, behind which three interchangeable backends implement
// the *same* canonical policy — shortest paths stepped through the lowest-id
// closer neighbor (graph/algorithms.hpp:canonical_descent_step). Because the
// policy is shared, the backends are hop-for-hop identical wherever they are
// all applicable, and differ only in cost:
//
//  * ImplicitRouter   — O(1) memory, O(h^2) next-hop. Pure label algebra for
//                       de Bruijn B_{m,h} and shuffle-exchange SE_h shapes
//                       (exact undirected distances from topology/debruijn
//                       and topology/shuffle_exchange). Valid on the healthy
//                       machines and, composed with the monotone relabeling
//                       of ft/reconfigure, on any reconfigured machine whose
//                       live logical graph came out dilation-1 — routing in
//                       logical space is exactly what survives
//                       reconfiguration unchanged. This is what lets traffic
//                       simulation and campaign sweeps run at N = 2^18..2^20,
//                       where a table slab would be gigabytes.
//  * CompressedRouter — destination-class sharing via shape-delta encoding.
//                       When the graph sits inside a de Bruijn /
//                       shuffle-exchange reference shape (every adjacency a
//                       subset of the algebraic one — the degraded-machine
//                       case), all destinations share the reference algebra
//                       and only the (dest, node) pairs whose exact BFS
//                       distance deviates from it are stored: O(N + E +
//                       exceptions) memory, with exceptions measured at a few
//                       * f * h per node for f faults (0 on a healthy shape).
//                       With no reference shape the full canonical next-hop
//                       matrix is kept, run-length encoded per node over
//                       destination id. Exact on any graph either way.
//  * TableRouter      — O(N^2) memory, O(1) next-hop. The uint16-slab BFS
//                       table of sim/routing.hpp, kept as the general
//                       fallback and the oracle the others are tested
//                       against.
//
// make_router() picks automatically: implicit when the graph *is* a de
// Bruijn / shuffle-exchange shape (shape detection is O(N * m)), compressed
// when the degree stays constant-ish, table otherwise.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/routing.hpp"
#include "topology/debruijn.hpp"

namespace ftdb::sim {

enum class RouterBackend { Table, Compressed, Implicit };

const char* router_backend_name(RouterBackend backend);

/// Caller-carried memo for one in-flight packet's routing state, filled by
/// the hinted route_many overload. Self-validating: a hint is consulted only
/// when its (dest, node) matches the query, so zero-initialized or stale
/// hints are always safe — they just cost a fresh scan. Callers that keep
/// one RouteHint per packet across cycles turn the implicit backend's
/// per-hop work into a single adjacent-offset check (the witness, distance
/// and optimal-offset mask ride along instead of round-tripping through the
/// thread-local memo cache).
struct RouteHint {
  NodeId dest = kInvalidNode;
  NodeId node = kInvalidNode;
  std::uint32_t dist = 0;
  std::int32_t wit = 0;
  std::uint64_t opt = 0;
};

/// The routing interface. All queries are in the logical node space of the
/// graph the router was built for; `Machine::to_physical` composes the
/// physical relabeling on top (see sim/reconfigured_routing.hpp).
class Router {
 public:
  virtual ~Router() = default;

  virtual RouterBackend backend() const = 0;
  virtual std::size_t num_nodes() const = 0;

  /// Canonical next hop from `node` towards `dest`: the lowest-id neighbor
  /// strictly closer to dest. Returns `dest` when node == dest and
  /// kInvalidNode when dest is unreachable from node.
  virtual NodeId next_hop(NodeId dest, NodeId node) const = 0;

  /// Hop count, or uint32(-1) when unreachable (the BFS convention).
  virtual std::uint32_t distance(NodeId dest, NodeId node) const = 0;

  /// Batched next hops: out[i] = next_hop(dests[i], nodes[i]), hop-for-hop
  /// identical to the scalar loop on every backend (that loop *is* the
  /// default). ImplicitRouter overrides it with witness-reusing incremental
  /// scans plus a thread-local memo cache, amortizing per-lookup setup over
  /// thousands of in-flight packets. Spans must have equal length (throws
  /// std::invalid_argument otherwise).
  virtual void route_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                          std::span<NodeId> out) const;

  /// route_many with caller-carried per-packet state: hints[i] is consulted
  /// when it matches (dests[i], nodes[i]) and rewritten with the state of
  /// the answered hop, so re-presenting the same packet one hop later skips
  /// the fresh scan entirely. Results are hop-for-hop identical to the
  /// hint-less overload; backends without incremental state ignore the
  /// hints. `hints` must match the query length.
  virtual void route_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                          std::span<NodeId> out, std::span<RouteHint> hints) const;

  /// Batched distances: out[i] = distance(dests[i], nodes[i]); same contract
  /// and override story as route_many.
  virtual void distance_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                             std::span<std::uint32_t> out) const;

  virtual bool reachable(NodeId dest, NodeId node) const {
    return distance(dest, node) != static_cast<std::uint32_t>(-1);
  }

  /// Heap bytes owned by the backend — the memory story the backends trade
  /// against lookup latency (0 for the implicit backend).
  virtual std::size_t memory_bytes() const = 0;

  /// Full canonical path node -> dest (inclusive); empty when unreachable.
  /// Identical across backends by the shared policy (ImplicitRouter walks it
  /// with the witness-chained stepper instead of per-hop full scans).
  virtual std::vector<NodeId> path(NodeId from, NodeId dest) const;
};

/// The uint16-slab BFS table (general fallback and test oracle).
class TableRouter final : public Router {
 public:
  /// `build_threads` shards the per-destination BFS table build (see
  /// RoutingTable); the resulting table is bit-identical to a serial build.
  explicit TableRouter(const Graph& g, unsigned build_threads = 1)
      : table_(g, build_threads) {}

  RouterBackend backend() const override { return RouterBackend::Table; }
  std::size_t num_nodes() const override { return table_.num_nodes(); }
  NodeId next_hop(NodeId dest, NodeId node) const override { return table_.next_hop(dest, node); }
  std::uint32_t distance(NodeId dest, NodeId node) const override {
    return table_.distance(dest, node);
  }
  bool reachable(NodeId dest, NodeId node) const override { return table_.reachable(dest, node); }
  std::size_t memory_bytes() const override {
    return table_.num_nodes() * table_.num_nodes() * (sizeof(NodeId) + sizeof(std::uint16_t));
  }

  const RoutingTable& table() const { return table_; }

 private:
  RoutingTable table_;
};

/// Exact canonical routing with destination-class sharing. Two internal
/// strategies, chosen at build time:
///
///  * shape-delta — the graph's adjacencies are all subsets of a reference
///    B_{m,h} / SE_h (h >= 2) on the same node count. Every destination
///    shares the reference's algebraic distance; only the pairs whose exact
///    BFS distance deviates (fault detours, unreachable rows) are stored in a
///    per-node exception table. Correctness never depends on the reference —
///    exceptions record the exact value wherever the algebra is wrong.
///  * run-length — no reference shape: the canonical next-hop matrix is kept,
///    run-length encoded per node over destination id.
///
/// Shape-delta routers additionally support *incremental* maintenance for the
/// degraded-machine lifecycle (reference shape minus a set of failed nodes):
/// `apply_fault` / `retract_fault` patch the exception table in place by
/// recomputing only the (dest, node) pairs whose exact distance actually
/// changed (a Ramalingam–Reps style affected-set sweep per destination),
/// instead of re-running the per-destination BFS rebuild. The patched state is
/// canonical — bit-identical to a from-scratch build over the same degraded
/// graph — which is what the serving layer's equivalence oracle asserts.
class CompressedRouter final : public Router {
 public:
  /// `build_threads` destination-shards the per-destination BFS scans of the
  /// build (0 = hardware concurrency). Both modes produce storage
  /// bit-identical to a serial build: shape-delta chunks concatenate in
  /// destination order, and run-length chunks stitch by dropping each chunk's
  /// boundary runs that merely continue the previous chunk's final hop.
  explicit CompressedRouter(const Graph& g, unsigned build_threads = 1);

  RouterBackend backend() const override { return RouterBackend::Compressed; }
  std::size_t num_nodes() const override { return n_; }
  NodeId next_hop(NodeId dest, NodeId node) const override;
  /// Shape-delta: O(log exceptions) lookup. Run-length: walks the canonical
  /// path (exact because every canonical hop strictly decreases the true
  /// distance).
  std::uint32_t distance(NodeId dest, NodeId node) const override;
  bool reachable(NodeId dest, NodeId node) const override {
    return distance(dest, node) != static_cast<std::uint32_t>(-1);
  }
  std::size_t memory_bytes() const override;

  bool uses_reference_shape() const { return reference_ != Reference::None; }
  std::size_t num_exceptions() const { return exception_dest_.size(); }
  std::size_t num_runs() const { return run_dest_lo_.size(); }

  /// Observable size/shape facts, so the serving layer and the benches can
  /// assert the ~f*h per-node exception-growth bound instead of guessing.
  struct Stats {
    std::size_t exception_entries = 0;  // shape-delta (node, dest) pairs stored
    std::size_t run_entries = 0;        // run-length mode runs
    std::size_t bytes = 0;              // == memory_bytes()
    const char* reference = "none";     // "debruijn" | "shuffle_exchange" | "none"
    std::uint64_t reference_base = 0;   // m of the reference B_{m,h} (0 for SE/none)
    unsigned reference_digits = 0;      // h of the reference shape
    std::size_t tracked_faults = 0;     // faults applied through apply_fault
    std::uint64_t state_hash = 0;       // FNV-1a over the exception/run arrays
  };
  Stats stats() const;

  /// Incrementally retires node `v`: removes its edges from the routed graph
  /// and patches the exception table so the router is exactly the router of
  /// the degraded graph. Shape-delta mode only (throws std::logic_error in
  /// run-length mode); throws std::invalid_argument when `v` is out of range
  /// or already retired. Cost is O(changed pairs + N * deg^2), versus the
  /// O(N * (N + E)) from-scratch rebuild.
  void apply_fault(NodeId v);

  /// Reverses `apply_fault(v)`: restores v's reference-shape edges towards
  /// every non-retired neighbor and retracts the now-stale exceptions.
  /// Throws std::invalid_argument when `v` is not currently retired.
  void retract_fault(NodeId v);

  /// Faults applied through apply_fault and not yet retracted, sorted.
  /// (Nodes that were already isolated in the constructor's graph are adopted
  /// as retired, so a router built from a degraded graph is repairable too.)
  const std::vector<NodeId>& tracked_faults() const { return faulty_; }

 private:
  enum class Reference { None, DeBruijn, ShuffleExchange };

  struct DistDelta {
    NodeId node;
    NodeId dest;
    std::uint32_t dist;  // new exact distance (may be unreachable)
  };

  std::uint32_t reference_distance(NodeId dest, NodeId node) const;
  void reference_neighbors(NodeId x, std::vector<NodeId>& out) const;
  void merge_deltas(std::vector<DistDelta>& deltas);
  void rebuild_graph(NodeId v, const std::vector<NodeId>& add_neighbors, bool removing);

  std::size_t n_ = 0;
  Reference reference_ = Reference::None;
  DeBruijnParams db_{};
  unsigned se_h_ = 0;

  // shape-delta storage: the graph (for the canonical descent) plus the
  // per-node exception CSR, sorted by destination.
  Graph graph_;
  std::vector<NodeId> faulty_;  // nodes retired via apply_fault, sorted
  std::vector<std::size_t> exception_offsets_;
  std::vector<NodeId> exception_dest_;
  std::vector<std::uint32_t> exception_dist_;

  // run-length storage.
  std::vector<std::size_t> run_offsets_;  // per node, into the run arrays
  std::vector<NodeId> run_dest_lo_;       // first destination id of the run
  std::vector<NodeId> run_hop_;           // canonical next hop for the run
};

/// O(1)-memory algebraic routing for de Bruijn / shuffle-exchange shapes:
/// distances come from the exact label formulas, next hops from probing the
/// (sorted) algebraic neighbors through the same canonical rule. The probes
/// run on the incremental distance steppers (topology/*): a success-exit
/// capped scan per neighbor, hinted by the current node's alignment witness,
/// instead of a fresh O(h^2) scan each — and the batched route_many /
/// distance_many / path overrides additionally carry the witness across hops
/// through a small thread-local memo cache. The cache is process-wide
/// per-thread scratch shared by every ImplicitRouter (epoch-stamped with a
/// never-reused per-router id), not router state: memory_bytes() stays 0,
/// and route_cache_bytes() reports the fixed per-thread slab.
class ImplicitRouter final : public Router {
 public:
  static ImplicitRouter for_debruijn(const DeBruijnParams& params);
  static ImplicitRouter for_shuffle_exchange(unsigned h);

  RouterBackend backend() const override { return RouterBackend::Implicit; }
  std::size_t num_nodes() const override { return static_cast<std::size_t>(n_); }
  NodeId next_hop(NodeId dest, NodeId node) const override;
  std::uint32_t distance(NodeId dest, NodeId node) const override;
  void route_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                  std::span<NodeId> out) const override;
  void route_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                  std::span<NodeId> out, std::span<RouteHint> hints) const override;
  void distance_many(std::span<const NodeId> dests, std::span<const NodeId> nodes,
                     std::span<std::uint32_t> out) const override;
  std::vector<NodeId> path(NodeId from, NodeId dest) const override;
  bool reachable(NodeId dest, NodeId node) const override {
    return node < n_ && dest < n_;  // both shapes are connected
  }
  std::size_t memory_bytes() const override { return 0; }

  /// Fixed size of the per-thread memo cache slab backing the batched
  /// overrides (reported separately from memory_bytes(): the slab is shared
  /// process scratch, not owned by any router instance).
  static std::size_t route_cache_bytes();

 private:
  enum class Shape { DeBruijn, ShuffleExchange };

  ImplicitRouter(Shape shape, DeBruijnParams db, unsigned se_h, std::uint64_t n);

  NodeId next_hop_wide(NodeId dest, NodeId node) const;

  Shape shape_;
  DeBruijnParams db_{};
  unsigned se_h_ = 0;
  std::uint64_t n_ = 0;
  std::uint32_t cache_id_ = 0;  // memo-cache epoch stamp, unique per router
};

struct RouterOptions {
  enum class Backend { Auto, Table, Compressed, Implicit };
  Backend backend = Backend::Auto;
  /// Auto prefers the compressed backend over the table when the graph's max
  /// degree stays within this bound (the constant-degree regime where the
  /// run-length encoding provably has something to share).
  std::size_t compressed_max_degree = 16;
  /// Size-aware auto policy: the implicit backend's O(h^2) label algebra only
  /// pays off where the table slab would hurt, so Auto picks the table (60 ns
  /// lookups, identical canonical hops) for *shaped* graphs below this node
  /// count and the O(1)-memory algebra at or above it. 0 restores
  /// shape-implies-implicit. Forcing a backend bypasses the policy entirely.
  std::size_t implicit_min_nodes = std::size_t{1} << 12;
  /// Threads for the compressed/table build's destination-sharded BFS scans
  /// (0 = hardware concurrency). The built router is bit-identical for any
  /// value; 1 keeps construction inline (no thread spawn) — the right default
  /// inside already-parallel campaign workers.
  unsigned build_threads = 1;
};

/// Builds the right router for `g`. Auto order: for a recognized B_{m,h} /
/// SE_h shape, implicit at or above options.implicit_min_nodes and the table
/// below it (same canonical hops, O(1) lookups, affordable slab); otherwise
/// compressed (constant-ish degree), else table. Forcing Backend::Implicit on
/// a graph of neither shape throws std::invalid_argument.
std::unique_ptr<Router> make_router(const Graph& g, const RouterOptions& options = {});

}  // namespace ftdb::sim
