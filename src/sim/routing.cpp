#include "sim/routing.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

#include "graph/algorithms.hpp"
#include "topology/labels.hpp"

namespace ftdb::sim {

RoutingTable::RoutingTable(const Graph& g, unsigned build_threads)
    : n_(g.num_nodes()), table_(n_ * n_, kInvalidNode), dist_(n_ * n_, kNoPath) {
  // BFS from each destination, writing straight into this destination's slab
  // row, then one canonical-descent pass assigning every node its lowest-id
  // closer neighbor. Each destination touches only its own slab row, so the
  // build shards over contiguous destination ranges with per-thread frontier
  // scratch and stays bit-identical for any thread count.
  auto build_range = [&](std::size_t dest_lo, std::size_t dest_hi) {
    std::vector<NodeId> cur, next;
    for (std::size_t dest = dest_lo; dest < dest_hi; ++dest) {
      const std::size_t base = dest * n_;
      dist_[base + dest] = 0;
      table_[base + dest] = static_cast<NodeId>(dest);
      cur.assign(1, static_cast<NodeId>(dest));
      std::uint16_t level = 0;
      while (!cur.empty()) {
        if (level == kNoPath - 1) {
          throw std::length_error("RoutingTable: distance exceeds the uint16 slab");
        }
        ++level;
        next.clear();
        for (const NodeId u : cur) {
          for (const NodeId v : g.neighbors(u)) {
            if (dist_[base + v] == kNoPath) {
              dist_[base + v] = level;
              next.push_back(v);
            }
          }
        }
        cur.swap(next);
      }
      const auto dist_of = [&](NodeId w) { return static_cast<std::uint32_t>(dist_[base + w]); };
      for (std::size_t v = 0; v < n_; ++v) {
        if (v == dest || dist_[base + v] == kNoPath) continue;
        table_[base + v] = canonical_descent_step(g, static_cast<NodeId>(v), dist_of);
      }
    }
  };

  const unsigned threads = sharded_build_threads(build_threads, n_);
  if (threads <= 1) {
    build_range(0, n_);
    return;
  }
  const std::size_t per = (n_ + threads - 1) / threads;
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      try {
        build_range(std::min(n_, t * per), std::min(n_, (t + 1) * per));
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<NodeId> RoutingTable::path(NodeId from, NodeId dest) const {
  if (!reachable(dest, from)) return {};
  std::vector<NodeId> route{from};
  NodeId cur = from;
  while (cur != dest) {
    cur = next_hop(dest, cur);
    route.push_back(cur);
  }
  return route;
}

std::vector<NodeId> debruijn_shift_route(std::uint64_t m, unsigned h, NodeId src, NodeId dst) {
  const std::uint64_t n = labels::ipow_checked(m, h);
  if (src >= n || dst >= n) throw std::out_of_range("debruijn_shift_route: node out of range");
  // Longest L such that the low L digits of src equal the high L digits of
  // dst; then append the remaining t = h - L low digits of dst, high first.
  unsigned best_l = 0;
  for (unsigned l = h; l > 0; --l) {
    const std::uint64_t mod = labels::ipow_checked(m, l);
    const std::uint64_t shift = labels::ipow_checked(m, h - l);
    if (src % mod == dst / shift) {
      best_l = l;
      break;
    }
  }
  const unsigned t = h - best_l;
  std::vector<NodeId> route{src};
  std::uint64_t cur = src;
  auto dst_digits = labels::digits_of(dst, m, h);
  for (unsigned j = 0; j < t; ++j) {
    const std::uint32_t digit = dst_digits[t - 1 - j];
    cur = (cur * m + digit) % n;
    if (cur != route.back()) route.push_back(static_cast<NodeId>(cur));
  }
  return route;
}

std::vector<NodeId> shuffle_exchange_route(unsigned h, NodeId src, NodeId dst) {
  const std::uint64_t n = labels::ipow_checked(2, h);
  if (src >= n || dst >= n) throw std::out_of_range("shuffle_exchange_route: node out of range");
  std::vector<NodeId> route{src};
  std::uint64_t cur = src;
  auto push = [&](std::uint64_t v) {
    if (v != route.back()) route.push_back(static_cast<NodeId>(v));
  };
  for (unsigned j = 1; j <= h; ++j) {
    // The bit at position 0 in round j ends at final position (h - j + 1) mod h.
    const unsigned final_pos = (h - j + 1) % h;
    const std::uint64_t want = (dst >> final_pos) & 1u;
    if ((cur & 1u) != want) {
      cur ^= 1u;  // exchange
      push(cur);
    }
    cur = labels::rotate_left(cur, 2, h);  // shuffle
    push(cur);
  }
  if (cur != dst) throw std::logic_error("shuffle_exchange_route: routing invariant violated");
  return route;
}

bool route_is_walk(const Graph& g, const std::vector<NodeId>& route, NodeId src, NodeId dst) {
  if (route.empty() || route.front() != src || route.back() != dst) return false;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    if (!g.has_edge(route[i], route[i + 1])) return false;
  }
  return true;
}

}  // namespace ftdb::sim
