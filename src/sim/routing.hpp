// Routing on the simulated machine.
//
//  * Table routing: per-destination BFS next-hop tables over any graph — the
//    general mechanism, used on degraded (faulty, non-reconfigured) machines.
//  * de Bruijn shift routing: the classic shift-register route that appends
//    the destination's digits; shortened by the longest overlap between the
//    source's suffix and the destination's prefix. Works on B_{m,h} without
//    tables and survives reconfiguration unchanged (it runs in logical space).
//  * Shuffle-exchange routing: alternate exchange (fix bit) / shuffle
//    (rotate) steps, at most 2h hops.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb::sim {

/// Auto-sized (build_threads == 0) destination-sharded builds claim a thread
/// only per this many destinations: below it, thread spawn + join overhead
/// makes the "parallel" build *lose* to serial (BENCH_pr8's
/// build_compressed_b2_h10_threads0 regression).
inline constexpr std::size_t kMinDestsPerBuildThread = 256;

/// Thread count for a destination-sharded build over n destinations:
/// `requested` (0 = hardware concurrency), floored by the min-work rule when
/// auto-sized, and never more than n. Both sharded builders (RoutingTable,
/// CompressedRouter) route through this so the policy stays in one place;
/// the result is bit-identical for any value.
inline unsigned sharded_build_threads(unsigned requested, std::size_t n) {
  std::size_t threads =
      requested == 0 ? std::max(1u, std::thread::hardware_concurrency()) : requested;
  if (requested == 0) {
    threads = std::min(threads, std::max<std::size_t>(n / kMinDestsPerBuildThread, 1));
  }
  return static_cast<unsigned>(std::min(threads, std::max<std::size_t>(n, 1)));
}

/// Dense next-hop tables: next_hop(dest, node) = the *lowest-id* neighbor of
/// `node` one step closer to `dest` (the library's canonical shortest-path
/// policy — see graph/algorithms.hpp:canonical_descent_step), or kInvalidNode
/// when unreachable. The canonical tie-break is what makes these tables
/// hop-for-hop interchangeable with the other sim::Router backends. Memory is
/// N^2; intended for the simulator's N <= a few thousand. Distances live in a
/// uint16 slab (half the N^2 footprint of the next-hop table): hop counts on
/// these machines are tiny, and the constructor throws if a graph ever
/// exceeds 65534 hops rather than wrapping.
class RoutingTable {
 public:
  /// `build_threads` shards the per-destination BFS across that many threads
  /// (0 = hardware concurrency): destinations write into disjoint slab rows,
  /// so the table is bit-identical to a serial build. 1 (the default) builds
  /// inline with no thread spawn.
  explicit RoutingTable(const Graph& g, unsigned build_threads = 1);

  NodeId next_hop(NodeId dest, NodeId node) const { return table_[index(dest, node)]; }

  /// Hop count, or uint32(-1) when unreachable (the BFS convention callers
  /// compare against; the sentinel is widened from the internal uint16).
  std::uint32_t distance(NodeId dest, NodeId node) const {
    const std::uint16_t d = dist_[index(dest, node)];
    return d == kNoPath ? static_cast<std::uint32_t>(-1) : d;
  }

  bool reachable(NodeId dest, NodeId node) const { return dist_[index(dest, node)] != kNoPath; }

  std::size_t num_nodes() const { return n_; }

  /// Full path node -> dest (inclusive); empty when unreachable.
  std::vector<NodeId> path(NodeId from, NodeId dest) const;

 private:
  static constexpr std::uint16_t kNoPath = 0xffff;

  std::size_t index(NodeId dest, NodeId node) const {
    return static_cast<std::size_t>(dest) * n_ + node;
  }
  std::size_t n_;
  std::vector<NodeId> table_;
  std::vector<std::uint16_t> dist_;
};

/// Shift-register route in B_{m,h} from src to dst, as a node sequence
/// (src ... dst). Uses the longest-overlap shortening, so its length is
/// h - (longest suffix of src that is a prefix of dst); never exceeds h hops.
std::vector<NodeId> debruijn_shift_route(std::uint64_t m, unsigned h, NodeId src, NodeId dst);

/// Shuffle-exchange route: at most 2h hops (exchange to fix the current low
/// bit, shuffle to expose the next one). Returns the node sequence.
std::vector<NodeId> shuffle_exchange_route(unsigned h, NodeId src, NodeId dst);

/// Validates that consecutive nodes of `route` are adjacent in `g` and that
/// the route starts/ends as claimed.
bool route_is_walk(const Graph& g, const std::vector<NodeId>& route, NodeId src, NodeId dst);

}  // namespace ftdb::sim
