#include "sim/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ftdb::sim {

namespace {

std::uint32_t floor_pow2(std::uint32_t n) {
  std::uint32_t p = 1;
  while (p <= n / 2) p *= 2;
  return p;
}

unsigned ceil_log2(std::uint32_t n) {
  unsigned k = 0;
  while ((std::uint64_t{1} << k) < n) ++k;
  return k;
}

void require_ranks(std::uint32_t num_ranks) {
  if (num_ranks == 0) throw std::invalid_argument("build_schedule: num_ranks must be >= 1");
}

// ---- all-to-all -------------------------------------------------------------
//
// Item keys are i * n + j (origin i, final destination j). The Bruck variant
// moves item (i, j) through the binary expansion of its displacement
// d = (j - i) mod n: after bits 0..k-1 are processed the item sits at rank
// (i + (d mod 2^k)) mod n, and bit k (when set) ships it 2^k ranks forward.

Schedule all_to_all_bruck(std::uint32_t n) {
  Schedule sched{ScheduleKind::AllToAllBruck, n, {}};
  const unsigned log_rounds = ceil_log2(n);
  for (unsigned k = 0; k < log_rounds; ++k) {
    ScheduleStep step;
    const std::uint32_t stride = std::uint32_t{1} << k;
    const std::uint32_t below = stride - 1;  // mask of already-processed bits
    std::vector<std::vector<std::uint64_t>> outgoing(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        const std::uint32_t d = (j + n - i) % n;
        if ((d & stride) == 0) continue;
        const std::uint32_t at = (i + (d & below)) % n;
        outgoing[at].push_back(std::uint64_t{i} * n + j);
      }
    }
    for (std::uint32_t r = 0; r < n; ++r) {
      if (outgoing[r].empty()) continue;
      std::sort(outgoing[r].begin(), outgoing[r].end());
      step.transfers.push_back(
          Transfer{r, (r + stride) % n, TransferOp::Move, std::move(outgoing[r])});
    }
    sched.steps.push_back(std::move(step));
  }
  return sched;
}

Schedule all_to_all_pairwise(std::uint32_t n) {
  Schedule sched{ScheduleKind::AllToAllPairwise, n, {}};
  const bool pow2 = (n & (n - 1)) == 0;
  for (std::uint32_t s = 1; s < n; ++s) {
    ScheduleStep step;
    for (std::uint32_t r = 0; r < n; ++r) {
      // XOR partners give a perfect pairing when n is a power of two; a ring
      // offset keeps every rank busy every round otherwise.
      const std::uint32_t peer = pow2 ? (r ^ s) : (r + s) % n;
      step.transfers.push_back(
          Transfer{r, peer, TransferOp::Move, {std::uint64_t{r} * n + peer}});
    }
    sched.steps.push_back(std::move(step));
  }
  return sched;
}

// ---- allgather --------------------------------------------------------------
//
// Block keys are the origin ranks 0..n-1; rank r starts holding block r.

Schedule allgather_recursive_doubling(std::uint32_t n) {
  Schedule sched{ScheduleKind::AllgatherRecursiveDoubling, n, {}};
  const std::uint32_t p = floor_pow2(n);
  const std::uint32_t rest = n - p;  // ranks 0..rest-1 fold into rest..2*rest-1
  if (rest > 0) {
    ScheduleStep pre;
    for (std::uint32_t i = 0; i < rest; ++i) {
      pre.transfers.push_back(Transfer{i, i + rest, TransferOp::Copy, {i}});
    }
    sched.steps.push_back(std::move(pre));
  }
  // Core recursive doubling over virtual ranks v = real - rest. held[v] is
  // maintained explicitly: the pre-fold makes the initial sets non-uniform.
  std::vector<std::vector<std::uint64_t>> held(p);
  for (std::uint32_t v = 0; v < p; ++v) {
    if (v < rest) held[v].push_back(v);  // the folded neighbor's block
    held[v].push_back(v + rest);
  }
  for (std::uint32_t stride = 1; stride < p; stride *= 2) {
    ScheduleStep step;
    for (std::uint32_t v = 0; v < p; ++v) {
      std::vector<std::uint64_t> keys = held[v];
      std::sort(keys.begin(), keys.end());
      step.transfers.push_back(
          Transfer{v + rest, (v ^ stride) + rest, TransferOp::Copy, std::move(keys)});
    }
    sched.steps.push_back(std::move(step));
    std::vector<std::vector<std::uint64_t>> next = held;
    for (std::uint32_t v = 0; v < p; ++v) {
      const auto& in = held[v ^ stride];
      next[v].insert(next[v].end(), in.begin(), in.end());
    }
    held = std::move(next);
  }
  if (rest > 0) {
    ScheduleStep post;
    for (std::uint32_t i = 0; i < rest; ++i) {
      std::vector<std::uint64_t> keys(n);
      for (std::uint32_t b = 0; b < n; ++b) keys[b] = b;
      post.transfers.push_back(Transfer{i + rest, i, TransferOp::Copy, std::move(keys)});
    }
    sched.steps.push_back(std::move(post));
  }
  return sched;
}

Schedule allgather_bruck_steps(ScheduleKind kind, std::uint32_t n) {
  // Dissemination: after step k rank r holds blocks {(r + o) mod n :
  // o < min(2^(k+1), n)}; step k ships the top min(2^k, n - 2^k) of them
  // 2^k ranks backwards.
  Schedule sched{kind, n, {}};
  for (std::uint32_t stride = 1; stride < n; stride *= 2) {
    ScheduleStep step;
    const std::uint32_t count = std::min(stride, n - stride);
    for (std::uint32_t r = 0; r < n; ++r) {
      std::vector<std::uint64_t> keys(count);
      for (std::uint32_t o = 0; o < count; ++o) keys[o] = (r + o) % n;
      std::sort(keys.begin(), keys.end());
      step.transfers.push_back(Transfer{r, (r + n - stride) % n, TransferOp::Copy,
                                        std::move(keys)});
    }
    sched.steps.push_back(std::move(step));
  }
  return sched;
}

// ---- allreduce --------------------------------------------------------------
//
// The vector is n blocks (keys 0..n-1); every rank starts holding all of
// them. Rabenseifner: reduce-scatter by recursive halving over contiguous
// block ranges, then allgather by recursive doubling; ranks beyond the
// power-of-two core fold into a neighbor before and unfold after.

Schedule allreduce_recursive_halving_doubling(std::uint32_t n) {
  Schedule sched{ScheduleKind::AllreduceRecursiveHalvingDoubling, n, {}};
  if (n == 1) return sched;
  const std::uint32_t p = floor_pow2(n);
  const std::uint32_t rest = n - p;
  // boundary(v) splits the n blocks into p near-equal contiguous ranges.
  auto boundary = [&](std::uint32_t v) -> std::uint32_t {
    return v * (n / p) + std::min(v, n % p);
  };
  auto range_keys = [&](std::uint32_t lo_v, std::uint32_t hi_v) {
    std::vector<std::uint64_t> keys;
    for (std::uint32_t b = boundary(lo_v); b < boundary(hi_v); ++b) keys.push_back(b);
    return keys;
  };
  auto full_vector = [&]() {
    std::vector<std::uint64_t> keys(n);
    for (std::uint32_t b = 0; b < n; ++b) keys[b] = b;
    return keys;
  };
  if (rest > 0) {
    ScheduleStep pre;
    for (std::uint32_t i = 0; i < rest; ++i) {
      pre.transfers.push_back(Transfer{i, i + rest, TransferOp::Reduce, full_vector()});
    }
    sched.steps.push_back(std::move(pre));
  }
  // Recursive halving over virtual ranks v = real - rest. Groups of size g
  // stay aligned (v's group starts at v & ~(g - 1)), so the partner is
  // v ^ (g / 2) and each half sends the other half's block range.
  const unsigned L = ceil_log2(p);
  for (unsigned s = 0; s < L; ++s) {
    const std::uint32_t g = p >> s;
    ScheduleStep step;
    for (std::uint32_t v = 0; v < p; ++v) {
      const std::uint32_t lo = v & ~(g - 1);
      const std::uint32_t mid = lo + g / 2;
      std::vector<std::uint64_t> keys =
          v < mid ? range_keys(mid, lo + g) : range_keys(lo, mid);
      if (keys.empty()) continue;
      step.transfers.push_back(
          Transfer{v + rest, (v ^ (g / 2)) + rest, TransferOp::Reduce, std::move(keys)});
    }
    sched.steps.push_back(std::move(step));
  }
  // Recursive doubling mirrors the halving steps in reverse: before the step
  // with group size g, v holds exactly its size-g/2 subgroup's range.
  for (unsigned s = L; s-- > 0;) {
    const std::uint32_t g = p >> s;
    ScheduleStep step;
    for (std::uint32_t v = 0; v < p; ++v) {
      const std::uint32_t sub = v & ~(g / 2 - 1);
      std::vector<std::uint64_t> keys = range_keys(sub, sub + g / 2);
      if (keys.empty()) continue;
      step.transfers.push_back(
          Transfer{v + rest, (v ^ (g / 2)) + rest, TransferOp::Copy, std::move(keys)});
    }
    sched.steps.push_back(std::move(step));
  }
  if (rest > 0) {
    ScheduleStep post;
    for (std::uint32_t i = 0; i < rest; ++i) {
      post.transfers.push_back(Transfer{i + rest, i, TransferOp::Copy, full_vector()});
    }
    sched.steps.push_back(std::move(post));
  }
  return sched;
}

Schedule allreduce_reduce_scatter_allgather(std::uint32_t n) {
  Schedule sched{ScheduleKind::AllreduceReduceScatterAllgather, n, {}};
  if (n == 1) return sched;
  // Ring reduce-scatter: at step s rank r ships block (r - s - 1) mod n one
  // rank forward with Reduce semantics — exactly the block it received last
  // step — so block b arrives fully reduced at rank b after n - 1 steps.
  for (std::uint32_t s = 0; s + 1 < n; ++s) {
    ScheduleStep step;
    for (std::uint32_t r = 0; r < n; ++r) {
      const std::uint64_t block = (r + 2u * n - s - 1) % n;
      step.transfers.push_back(Transfer{r, (r + 1) % n, TransferOp::Reduce, {block}});
    }
    sched.steps.push_back(std::move(step));
  }
  // Bruck allgather of the reduced blocks (rank b now holds exactly block b).
  Schedule gather = allgather_bruck_steps(sched.kind, n);
  for (auto& step : gather.steps) sched.steps.push_back(std::move(step));
  return sched;
}

}  // namespace

const char* schedule_kind_name(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::AllToAllBruck: return "all_to_all_bruck";
    case ScheduleKind::AllToAllPairwise: return "all_to_all_pairwise";
    case ScheduleKind::AllgatherRecursiveDoubling: return "allgather_recursive_doubling";
    case ScheduleKind::AllgatherBruck: return "allgather_bruck";
    case ScheduleKind::AllreduceRecursiveHalvingDoubling:
      return "allreduce_recursive_halving_doubling";
    case ScheduleKind::AllreduceReduceScatterAllgather:
      return "allreduce_reduce_scatter_allgather";
  }
  return "?";
}

ScheduleKind schedule_kind_from_name(const std::string& name) {
  for (ScheduleKind kind :
       {ScheduleKind::AllToAllBruck, ScheduleKind::AllToAllPairwise,
        ScheduleKind::AllgatherRecursiveDoubling, ScheduleKind::AllgatherBruck,
        ScheduleKind::AllreduceRecursiveHalvingDoubling,
        ScheduleKind::AllreduceReduceScatterAllgather}) {
    if (name == schedule_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown schedule kind \"" + name + "\"");
}

const char* transfer_op_name(TransferOp op) {
  switch (op) {
    case TransferOp::Copy: return "copy";
    case TransferOp::Move: return "move";
    case TransferOp::Reduce: return "reduce";
  }
  return "?";
}

std::uint64_t Schedule::total_sends() const {
  std::uint64_t sends = 0;
  for (const ScheduleStep& step : steps) {
    for (const Transfer& t : step.transfers) sends += t.keys.size();
  }
  return sends;
}

Schedule build_schedule(ScheduleKind kind, std::uint32_t num_ranks) {
  require_ranks(num_ranks);
  switch (kind) {
    case ScheduleKind::AllToAllBruck: return all_to_all_bruck(num_ranks);
    case ScheduleKind::AllToAllPairwise: return all_to_all_pairwise(num_ranks);
    case ScheduleKind::AllgatherRecursiveDoubling:
      return allgather_recursive_doubling(num_ranks);
    case ScheduleKind::AllgatherBruck:
      return allgather_bruck_steps(ScheduleKind::AllgatherBruck, num_ranks);
    case ScheduleKind::AllreduceRecursiveHalvingDoubling:
      return allreduce_recursive_halving_doubling(num_ranks);
    case ScheduleKind::AllreduceReduceScatterAllgather:
      return allreduce_reduce_scatter_allgather(num_ranks);
  }
  throw std::invalid_argument("build_schedule: unknown kind");
}

// ---- functional execution ---------------------------------------------------

std::vector<RankState> run_schedule_functional(const Schedule& schedule,
                                               std::vector<RankState> states) {
  if (states.size() != schedule.num_ranks) {
    throw std::invalid_argument("run_schedule_functional: state count != num_ranks");
  }
  // Scratch for one step's reads; hoisted so its capacity is reused.
  struct PendingSend {
    std::uint32_t src, dst;
    TransferOp op;
    std::uint64_t key;
    std::int64_t value;
  };
  std::vector<PendingSend> pending;
  for (std::size_t step_idx = 0; step_idx < schedule.steps.size(); ++step_idx) {
    const ScheduleStep& step = schedule.steps[step_idx];
    // Synchronous rounds: every transfer reads the sender state as of the
    // step start, so paired exchanges (recursive doubling/halving) are
    // well-defined. Reading only the sent keys up front — instead of
    // snapshotting every rank's full state — keeps the pass linear in the
    // step's send volume.
    pending.clear();
    for (const Transfer& t : step.transfers) {
      if (t.src >= states.size() || t.dst >= states.size()) {
        throw std::logic_error("schedule step " + std::to_string(step_idx) +
                               ": transfer rank out of range");
      }
      const RankState& from = states[t.src];
      for (const std::uint64_t key : t.keys) {
        const auto it = from.find(key);
        if (it == from.end()) {
          throw std::logic_error("schedule step " + std::to_string(step_idx) + ": rank " +
                                 std::to_string(t.src) + " does not hold key " +
                                 std::to_string(key) + " it is scheduled to send");
        }
        pending.push_back({t.src, t.dst, t.op, key, it->second});
      }
    }
    for (const PendingSend& p : pending) {
      switch (p.op) {
        case TransferOp::Copy:
          states[p.dst][p.key] = p.value;
          break;
        case TransferOp::Move:
          states[p.dst][p.key] = p.value;
          states[p.src].erase(p.key);
          break;
        case TransferOp::Reduce:
          states[p.dst][p.key] += p.value;
          states[p.src].erase(p.key);
          break;
      }
    }
  }
  return states;
}

namespace {

enum class CollectiveClass { AllToAll, Allgather, Allreduce };

CollectiveClass class_of(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::AllToAllBruck:
    case ScheduleKind::AllToAllPairwise:
      return CollectiveClass::AllToAll;
    case ScheduleKind::AllgatherRecursiveDoubling:
    case ScheduleKind::AllgatherBruck:
      return CollectiveClass::Allgather;
    case ScheduleKind::AllreduceRecursiveHalvingDoubling:
    case ScheduleKind::AllreduceReduceScatterAllgather:
      return CollectiveClass::Allreduce;
  }
  throw std::invalid_argument("class_of: unknown kind");
}

// Distinct deterministic payloads so a misrouted item cannot masquerade as
// the right one.
std::int64_t a2a_value(std::uint64_t i, std::uint64_t j) {
  return static_cast<std::int64_t>((i + 1) * 1000003 + j);
}
std::int64_t gather_value(std::uint64_t origin) {
  return static_cast<std::int64_t>((origin + 1) * 7919);
}
std::int64_t reduce_value(std::uint64_t rank, std::uint64_t block) {
  return static_cast<std::int64_t>((rank + 1) * (block + 17) + 3);
}

void check(bool ok, const Schedule& schedule, const std::string& what) {
  if (!ok) {
    throw std::logic_error(std::string(schedule_kind_name(schedule.kind)) + " n=" +
                           std::to_string(schedule.num_ranks) + ": " + what);
  }
}

}  // namespace

void verify_schedule_functional(const Schedule& schedule) {
  const std::uint64_t n = schedule.num_ranks;
  std::vector<RankState> states(n);
  const CollectiveClass cls = class_of(schedule.kind);
  for (std::uint64_t r = 0; r < n; ++r) {
    switch (cls) {
      case CollectiveClass::AllToAll:
        for (std::uint64_t j = 0; j < n; ++j) states[r][r * n + j] = a2a_value(r, j);
        break;
      case CollectiveClass::Allgather:
        states[r][r] = gather_value(r);
        break;
      case CollectiveClass::Allreduce:
        for (std::uint64_t b = 0; b < n; ++b) states[r][b] = reduce_value(r, b);
        break;
    }
  }
  states = run_schedule_functional(schedule, std::move(states));
  for (std::uint64_t r = 0; r < n; ++r) {
    const RankState& got = states[r];
    check(got.size() == n, schedule,
          "rank " + std::to_string(r) + " ends with " + std::to_string(got.size()) +
              " items, want " + std::to_string(n));
    for (std::uint64_t o = 0; o < n; ++o) {
      std::uint64_t key = 0;
      std::int64_t want = 0;
      switch (cls) {
        case CollectiveClass::AllToAll:
          key = o * n + r;  // item origin o destined for this rank
          want = a2a_value(o, r);
          break;
        case CollectiveClass::Allgather:
          key = o;
          want = gather_value(o);
          break;
        case CollectiveClass::Allreduce: {
          key = o;  // block o, fully reduced
          std::int64_t sum = 0;
          for (std::uint64_t src = 0; src < n; ++src) sum += reduce_value(src, o);
          want = sum;
          break;
        }
      }
      const auto it = got.find(key);
      check(it != got.end(), schedule,
            "rank " + std::to_string(r) + " is missing key " + std::to_string(key));
      check(it->second == want, schedule,
            "rank " + std::to_string(r) + " key " + std::to_string(key) + " = " +
                std::to_string(it->second) + ", want " + std::to_string(want));
    }
  }
}

// ---- operational execution --------------------------------------------------

ScheduleRunResult execute_schedule(const Machine& machine, const Graph& target,
                                   const Schedule& schedule,
                                   const std::vector<NodeId>& rank_to_logical,
                                   const ScheduleRunOptions& options) {
  if (rank_to_logical.size() != schedule.num_ranks) {
    throw std::invalid_argument("execute_schedule: rank map size != num_ranks");
  }
  PacketSimulator sim(machine, target, options.router);
  ScheduleRunResult result;
  result.rounds = schedule.rounds();
  std::vector<Packet> packets;
  for (const ScheduleStep& step : schedule.steps) {
    packets.clear();
    std::uint64_t id = 0;
    for (const Transfer& t : step.transfers) {
      const NodeId src = rank_to_logical[t.src];
      const NodeId dst = rank_to_logical[t.dst];
      for (std::size_t k = 0; k < t.keys.size(); ++k) {
        packets.push_back(Packet{id++, src, dst, 0});
      }
    }
    if (packets.empty()) continue;
    const SimStats stats = sim.run(packets, options.max_cycles_per_step);
    result.total_cycles += stats.cycles;
    result.total_hop_cycles += stats.total_hops;
    result.max_link_congestion = std::max(result.max_link_congestion, stats.max_queue_depth);
    result.logical_sends += stats.injected;
    result.delivered += stats.delivered;
    result.undeliverable += stats.undeliverable;
    result.timed_out += stats.timed_out;
  }
  return result;
}

CollectiveRunResult execute_collective(const Machine& machine, const Graph& target,
                                       ScheduleKind kind, const ScheduleRunOptions& options) {
  CollectiveRunResult result;
  for (NodeId l = 0; l < machine.num_logical(); ++l) {
    if (!machine.dead[machine.to_physical[l]]) result.participants.push_back(l);
  }
  if (result.participants.empty()) {
    throw std::invalid_argument("execute_collective: no live logical node");
  }
  const Schedule schedule =
      build_schedule(kind, static_cast<std::uint32_t>(result.participants.size()));
  result.run = execute_schedule(machine, target, schedule, result.participants, options);
  return result;
}

}  // namespace ftdb::sim
