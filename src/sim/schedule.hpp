// Collective-communication schedules compiled to explicit per-step
// send/recv maps, and their execution on the packet engine.
//
// This is the layer the paper's machines exist to serve: a collective
// (all-to-all, allgather, allreduce) is compiled once into a `Schedule` —
// a sequence of synchronous steps, each a list of (src rank, dst rank,
// keys, op) transfers — and then executed either *functionally* (per-rank
// key/value maps, for correctness against a serial oracle) or *operationally*
// (every logical send becomes a routed multi-hop packet batch through
// PacketSimulator on a machine's live logical graph). Running the same
// schedule on a healthy machine, a dilation-1 reconfigured machine, and a
// degraded bare-target machine turns the structural fault-tolerance story
// into an end-to-end one: "how much does an allreduce slow down at f faults".
//
// Algorithms (all correct for any rank count n, not just powers of two):
//  * Bruck all-to-all        — ceil(log2 n) rounds; item (i -> j) rides the
//                              binary expansion of its displacement
//                              d = (j - i) mod n.
//  * pairwise all-to-all     — n - 1 rounds; XOR partners when n is a power
//                              of two, ring offsets otherwise.
//  * recursive-doubling      — log2 p rounds on the p = 2^floor(log2 n)
//    allgather                 participants, plus a pre/post round pairing
//                              the n - p extra ranks (Multiverso-style
//                              neighbor folding).
//  * Bruck allgather         — ceil(log2 n) dissemination rounds, final
//                              round capped at n - 2^k blocks.
//  * recursive halving/      — Rabenseifner allreduce: reduce-scatter by
//    doubling allreduce        recursive halving over contiguous block
//                              ranges, allgather by recursive doubling,
//                              pre/post neighbor rounds when n is not a
//                              power of two.
//  * reduce-scatter +        — ring reduce-scatter (n - 1 rounds, block b
//    allgather allreduce       ends reduced at rank b) followed by a Bruck
//                              allgather of the reduced blocks.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "sim/engine.hpp"

namespace ftdb::sim {

enum class ScheduleKind {
  AllToAllBruck,
  AllToAllPairwise,
  AllgatherRecursiveDoubling,
  AllgatherBruck,
  AllreduceRecursiveHalvingDoubling,
  AllreduceReduceScatterAllgather,
};

/// What a transfer does to the sender's and receiver's key sets.
enum class TransferOp {
  Copy,    // receiver gets the value, sender keeps it (allgather)
  Move,    // receiver gets the value, sender drops it (all-to-all)
  Reduce,  // receiver adds the value to its own, sender drops it (allreduce)
};

const char* schedule_kind_name(ScheduleKind kind);
ScheduleKind schedule_kind_from_name(const std::string& name);
const char* transfer_op_name(TransferOp op);

/// One logical send: every key travels src -> dst in the same round.
struct Transfer {
  std::uint32_t src = 0;  // rank
  std::uint32_t dst = 0;  // rank
  TransferOp op = TransferOp::Copy;
  std::vector<std::uint64_t> keys;
};

struct ScheduleStep {
  std::vector<Transfer> transfers;
};

struct Schedule {
  ScheduleKind kind = ScheduleKind::AllToAllBruck;
  std::uint32_t num_ranks = 0;
  std::vector<ScheduleStep> steps;

  std::size_t rounds() const { return steps.size(); }
  /// Total number of (key, hop-0) logical sends across all steps.
  std::uint64_t total_sends() const;
};

/// Compiles the schedule for `kind` over `num_ranks` ranks. Throws
/// std::invalid_argument when num_ranks == 0.
Schedule build_schedule(ScheduleKind kind, std::uint32_t num_ranks);

// --- Functional execution (correctness layer) -------------------------------

/// Per-rank state: key -> value. Keys identify items (all-to-all item (i, j)
/// has key i * n + j; allgather/allreduce block b has key b).
using RankState = std::unordered_map<std::uint64_t, std::int64_t>;

/// Applies the schedule to per-rank key/value maps with synchronous-round
/// semantics: every transfer in a step reads the sender state as of the step
/// start. Throws std::logic_error if a sender does not hold a key it is
/// scheduled to send — a malformed schedule must fail loudly, not drop data.
std::vector<RankState> run_schedule_functional(const Schedule& schedule,
                                               std::vector<RankState> states);

/// Builds the canonical initial state for the schedule's collective class,
/// runs it functionally, and checks the result against the serial oracle
/// (all-to-all: rank j ends with exactly {(i, j) : i}; allgather: every rank
/// ends with every block; allreduce: every rank ends with every block reduced
/// to the full sum). Throws std::logic_error with a description on the first
/// mismatch.
void verify_schedule_functional(const Schedule& schedule);

// --- Operational execution (packet engine layer) ----------------------------

struct ScheduleRunOptions {
  RouterOptions router;
  /// Per-step cycle budget handed to PacketSimulator::run (0 = run to drain;
  /// this still terminates unconditionally because reachability is checked at
  /// injection, so a disconnected degraded machine reports undeliverable
  /// instead of hanging).
  std::uint64_t max_cycles_per_step = 0;
};

/// The campaign metric family for one schedule execution.
struct ScheduleRunResult {
  std::size_t rounds = 0;                 // steps executed
  std::uint64_t total_cycles = 0;         // sum of per-step completion times
  std::uint64_t total_hop_cycles = 0;     // sum of per-packet hop counts
  std::size_t max_link_congestion = 0;    // max per-link queue depth seen
  std::uint64_t logical_sends = 0;        // packets injected
  std::uint64_t delivered = 0;
  std::uint64_t undeliverable = 0;
  std::uint64_t timed_out = 0;

  /// True when every logical send of every round arrived.
  bool completed() const { return undeliverable == 0 && timed_out == 0; }
};

/// Executes the schedule on the machine's live logical graph: rank r lives at
/// logical node rank_to_logical[r], each step's transfers become one packet
/// per key injected at cycle 0, and the step runs to drain (or to the per-step
/// budget). Throws std::invalid_argument when rank_to_logical does not match
/// schedule.num_ranks.
ScheduleRunResult execute_schedule(const Machine& machine, const Graph& target,
                                   const Schedule& schedule,
                                   const std::vector<NodeId>& rank_to_logical,
                                   const ScheduleRunOptions& options = {});

/// Result of running a collective over a machine's live nodes.
struct CollectiveRunResult {
  std::vector<NodeId> participants;  // live logical nodes, ascending
  ScheduleRunResult run;
};

/// Builds the schedule over the machine's *live* logical nodes (rank r = the
/// r-th live logical id, ascending) and executes it. On a healthy or
/// dilation-1 reconfigured machine this is the full target node set; on a
/// degraded machine the survivors. Throws std::invalid_argument when no
/// logical node is alive.
CollectiveRunResult execute_collective(const Machine& machine, const Graph& target,
                                       ScheduleKind kind,
                                       const ScheduleRunOptions& options = {});

}  // namespace ftdb::sim
