#include "sim/traffic.hpp"

#include <stdexcept>

#include "topology/labels.hpp"

namespace ftdb::sim {

std::vector<Packet> uniform_traffic(std::size_t logical_nodes, std::size_t count,
                                    std::uint64_t packets_per_cycle, std::uint64_t seed) {
  if (logical_nodes == 0) throw std::invalid_argument("uniform_traffic: empty machine");
  if (packets_per_cycle == 0) packets_per_cycle = 1;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(logical_nodes - 1));
  std::vector<Packet> packets(count);
  for (std::size_t i = 0; i < count; ++i) {
    packets[i].id = i;
    packets[i].src = pick(rng);
    packets[i].dst = pick(rng);
    packets[i].inject_cycle = i / packets_per_cycle;
  }
  return packets;
}

std::vector<Packet> permutation_traffic(const std::vector<NodeId>& perm) {
  std::vector<Packet> packets(perm.size());
  for (std::size_t x = 0; x < perm.size(); ++x) {
    packets[x] = Packet{x, static_cast<NodeId>(x), perm[x], 0};
  }
  return packets;
}

std::vector<NodeId> bit_reversal_permutation(unsigned h) {
  const std::uint64_t n = labels::ipow_checked(2, h);
  std::vector<NodeId> perm(n);
  for (std::uint64_t x = 0; x < n; ++x) {
    std::uint64_t rev = 0;
    for (unsigned i = 0; i < h; ++i) {
      rev |= ((x >> i) & 1u) << (h - 1 - i);
    }
    perm[x] = static_cast<NodeId>(rev);
  }
  return perm;
}

std::vector<NodeId> transpose_permutation(unsigned h) {
  if (h % 2 != 0) throw std::invalid_argument("transpose_permutation: h must be even");
  const std::uint64_t n = labels::ipow_checked(2, h);
  const unsigned half = h / 2;
  const std::uint64_t mask = (std::uint64_t{1} << half) - 1;
  std::vector<NodeId> perm(n);
  for (std::uint64_t x = 0; x < n; ++x) {
    const std::uint64_t lo = x & mask;
    const std::uint64_t hi = x >> half;
    perm[x] = static_cast<NodeId>((lo << half) | hi);
  }
  return perm;
}

std::vector<NodeId> shuffle_permutation(unsigned h) {
  const std::uint64_t n = labels::ipow_checked(2, h);
  std::vector<NodeId> perm(n);
  for (std::uint64_t x = 0; x < n; ++x) {
    perm[x] = static_cast<NodeId>(labels::rotate_left(x, 2, h));
  }
  return perm;
}

std::vector<Packet> hotspot_traffic(std::size_t logical_nodes, std::size_t count,
                                    NodeId hot_node, double fraction_hot, std::uint64_t seed,
                                    std::uint64_t packets_per_cycle) {
  if (logical_nodes == 0) throw std::invalid_argument("hotspot_traffic: empty machine");
  if (hot_node >= logical_nodes) throw std::out_of_range("hotspot_traffic: hot node out of range");
  // Negated comparison so NaN is rejected too.
  if (!(fraction_hot >= 0.0 && fraction_hot <= 1.0)) {
    throw std::invalid_argument("hotspot_traffic: fraction_hot must be in [0, 1]");
  }
  if (packets_per_cycle == 0) {
    packets_per_cycle = std::max<std::uint64_t>(logical_nodes / 4, 1);
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(logical_nodes - 1));
  std::bernoulli_distribution hot(fraction_hot);
  std::vector<Packet> packets(count);
  for (std::size_t i = 0; i < count; ++i) {
    packets[i].id = i;
    packets[i].src = pick(rng);
    packets[i].dst = hot(rng) ? hot_node : pick(rng);
    packets[i].inject_cycle = i / packets_per_cycle;
  }
  return packets;
}

}  // namespace ftdb::sim
