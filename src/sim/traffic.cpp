#include "sim/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "topology/labels.hpp"

namespace ftdb::sim {

std::vector<Packet> uniform_traffic(std::size_t logical_nodes, std::size_t count,
                                    std::uint64_t packets_per_cycle, std::uint64_t seed) {
  if (logical_nodes == 0) throw std::invalid_argument("uniform_traffic: empty machine");
  if (packets_per_cycle == 0) packets_per_cycle = 1;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(logical_nodes - 1));
  std::vector<Packet> packets(count);
  for (std::size_t i = 0; i < count; ++i) {
    packets[i].id = i;
    packets[i].src = pick(rng);
    packets[i].dst = pick(rng);
    packets[i].inject_cycle = i / packets_per_cycle;
  }
  return packets;
}

std::vector<Packet> permutation_traffic(const std::vector<NodeId>& perm) {
  std::vector<Packet> packets(perm.size());
  for (std::size_t x = 0; x < perm.size(); ++x) {
    packets[x] = Packet{x, static_cast<NodeId>(x), perm[x], 0};
  }
  return packets;
}

std::vector<NodeId> bit_reversal_permutation(unsigned h) {
  const std::uint64_t n = labels::ipow_checked(2, h);
  std::vector<NodeId> perm(n);
  for (std::uint64_t x = 0; x < n; ++x) {
    std::uint64_t rev = 0;
    for (unsigned i = 0; i < h; ++i) {
      rev |= ((x >> i) & 1u) << (h - 1 - i);
    }
    perm[x] = static_cast<NodeId>(rev);
  }
  return perm;
}

std::vector<NodeId> transpose_permutation(unsigned h) {
  if (h % 2 != 0) throw std::invalid_argument("transpose_permutation: h must be even");
  const std::uint64_t n = labels::ipow_checked(2, h);
  const unsigned half = h / 2;
  const std::uint64_t mask = (std::uint64_t{1} << half) - 1;
  std::vector<NodeId> perm(n);
  for (std::uint64_t x = 0; x < n; ++x) {
    const std::uint64_t lo = x & mask;
    const std::uint64_t hi = x >> half;
    perm[x] = static_cast<NodeId>((lo << half) | hi);
  }
  return perm;
}

std::vector<NodeId> shuffle_permutation(unsigned h) {
  const std::uint64_t n = labels::ipow_checked(2, h);
  std::vector<NodeId> perm(n);
  for (std::uint64_t x = 0; x < n; ++x) {
    perm[x] = static_cast<NodeId>(labels::rotate_left(x, 2, h));
  }
  return perm;
}

std::vector<Packet> hotspot_traffic(std::size_t logical_nodes, std::size_t count,
                                    const std::vector<NodeId>& hot_nodes, double fraction_hot,
                                    std::uint64_t seed, std::uint64_t packets_per_cycle) {
  if (logical_nodes == 0) throw std::invalid_argument("hotspot_traffic: empty machine");
  if (hot_nodes.empty()) throw std::invalid_argument("hotspot_traffic: no hot nodes");
  for (NodeId hot : hot_nodes) {
    if (hot >= logical_nodes) throw std::out_of_range("hotspot_traffic: hot node out of range");
  }
  // Negated comparison so NaN is rejected too.
  if (!(fraction_hot >= 0.0 && fraction_hot <= 1.0)) {
    throw std::invalid_argument("hotspot_traffic: fraction_hot must be in [0, 1]");
  }
  if (packets_per_cycle == 0) {
    packets_per_cycle = std::max<std::uint64_t>(logical_nodes / 4, 1);
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(logical_nodes - 1));
  std::bernoulli_distribution hot(fraction_hot);
  // The hot-index draw happens only for >1 hot node, so the single-node path
  // consumes the exact historical RNG stream.
  std::uniform_int_distribution<std::size_t> hot_pick(0, hot_nodes.size() - 1);
  std::vector<Packet> packets(count);
  for (std::size_t i = 0; i < count; ++i) {
    packets[i].id = i;
    packets[i].src = pick(rng);
    if (hot(rng)) {
      packets[i].dst = hot_nodes.size() == 1 ? hot_nodes[0] : hot_nodes[hot_pick(rng)];
    } else {
      packets[i].dst = pick(rng);
    }
    packets[i].inject_cycle = i / packets_per_cycle;
  }
  return packets;
}

std::vector<Packet> hotspot_traffic(std::size_t logical_nodes, std::size_t count,
                                    NodeId hot_node, double fraction_hot, std::uint64_t seed,
                                    std::uint64_t packets_per_cycle) {
  return hotspot_traffic(logical_nodes, count, std::vector<NodeId>{hot_node}, fraction_hot,
                         seed, packets_per_cycle);
}

namespace {

// Local splitmix64 so the skewed generators are bit-identical across
// platforms (std::uniform_int_distribution's draw algorithm is
// implementation-defined). Matches the campaign's counter-based discipline
// without introducing a sim -> campaign dependency.
struct SplitMix {
  std::uint64_t state;

  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1), 53 bits of precision.
  double next_unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound) via 128-bit multiply (no modulo bias worth
  /// caring about at these bounds, and exactly one draw per call).
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }
};

}  // namespace

std::vector<Packet> zipf_traffic(std::size_t logical_nodes, std::size_t count, double theta,
                                 std::uint64_t seed, std::uint64_t packets_per_cycle) {
  if (logical_nodes == 0) throw std::invalid_argument("zipf_traffic: empty machine");
  if (!(theta >= 0.0) || !std::isfinite(theta)) {
    throw std::invalid_argument("zipf_traffic: theta must be finite and >= 0");
  }
  if (packets_per_cycle == 0) packets_per_cycle = 1;

  // Cumulative weights of the truncated Zipf law; destinations are found by
  // binary search on a unit draw.
  std::vector<double> cumulative(logical_nodes);
  double total = 0.0;
  for (std::size_t r = 0; r < logical_nodes; ++r) {
    total += std::pow(static_cast<double>(r + 1), -theta);
    cumulative[r] = total;
  }

  SplitMix rng{seed};
  std::vector<Packet> packets(count);
  for (std::size_t i = 0; i < count; ++i) {
    packets[i].id = i;
    packets[i].src = static_cast<NodeId>(rng.next_below(logical_nodes));
    const double u = rng.next_unit() * total;
    const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
    const std::size_t rank =
        std::min<std::size_t>(static_cast<std::size_t>(it - cumulative.begin()),
                              logical_nodes - 1);
    packets[i].dst = static_cast<NodeId>(rank);
    packets[i].inject_cycle = i / packets_per_cycle;
  }
  return packets;
}

std::vector<Packet> hotspot_burst_traffic(std::size_t logical_nodes, std::size_t count,
                                          const std::vector<NodeId>& hot_nodes,
                                          double fraction_hot, std::uint64_t burst_cycles,
                                          std::uint64_t seed,
                                          std::uint64_t packets_per_cycle) {
  if (logical_nodes == 0) throw std::invalid_argument("hotspot_burst_traffic: empty machine");
  if (hot_nodes.empty()) throw std::invalid_argument("hotspot_burst_traffic: no hot nodes");
  for (NodeId hot : hot_nodes) {
    if (hot >= logical_nodes) {
      throw std::out_of_range("hotspot_burst_traffic: hot node out of range");
    }
  }
  if (!(fraction_hot >= 0.0 && fraction_hot <= 1.0)) {
    throw std::invalid_argument("hotspot_burst_traffic: fraction_hot must be in [0, 1]");
  }
  if (burst_cycles == 0) {
    throw std::invalid_argument("hotspot_burst_traffic: burst_cycles must be >= 1");
  }
  if (packets_per_cycle == 0) {
    packets_per_cycle = std::max<std::uint64_t>(logical_nodes / 4, 1);
  }

  SplitMix rng{seed};
  std::vector<Packet> packets(count);
  for (std::size_t i = 0; i < count; ++i) {
    packets[i].id = i;
    packets[i].src = static_cast<NodeId>(rng.next_below(logical_nodes));
    packets[i].inject_cycle = i / packets_per_cycle;
    const std::uint64_t window = packets[i].inject_cycle / burst_cycles;
    const NodeId active = hot_nodes[window % hot_nodes.size()];
    if (rng.next_unit() < fraction_hot) {
      packets[i].dst = active;
    } else {
      packets[i].dst = static_cast<NodeId>(rng.next_below(logical_nodes));
    }
  }
  return packets;
}

std::vector<Packet> trace_traffic(const std::string& text, std::size_t logical_nodes) {
  std::vector<Packet> packets;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::uint64_t cycle = 0;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!(fields >> cycle)) continue;  // blank / comment-only line
    if (!(fields >> src >> dst)) {
      throw std::invalid_argument("trace_traffic: malformed line " + std::to_string(line_no) +
                                  " (want: inject_cycle src dst)");
    }
    std::string extra;
    if (fields >> extra) {
      throw std::invalid_argument("trace_traffic: trailing tokens on line " +
                                  std::to_string(line_no));
    }
    if (logical_nodes != 0 && (src >= logical_nodes || dst >= logical_nodes)) {
      throw std::out_of_range("trace_traffic: endpoint out of range on line " +
                              std::to_string(line_no));
    }
    Packet p;
    p.id = packets.size();
    p.src = static_cast<NodeId>(src);
    p.dst = static_cast<NodeId>(dst);
    p.inject_cycle = cycle;
    packets.push_back(p);
  }
  return packets;
}

std::string format_trace(const std::vector<Packet>& packets) {
  std::ostringstream out;
  for (const Packet& p : packets) {
    out << p.inject_cycle << ' ' << p.src << ' ' << p.dst << '\n';
  }
  return out.str();
}

}  // namespace ftdb::sim
