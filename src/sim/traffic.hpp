// Traffic workloads for the routing experiments: uniform random traffic,
// the classic adversarial permutations (bit reversal, transpose, perfect
// shuffle), and hotspot traffic. All generators are seeded and deterministic.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace ftdb::sim {

/// `count` packets, uniformly random (src, dst) pairs among live logical
/// nodes, injected `rate` packets per cycle (rate = packets injected each
/// cycle, round-robin over the batch).
std::vector<Packet> uniform_traffic(std::size_t logical_nodes, std::size_t count,
                                    std::uint64_t packets_per_cycle, std::uint64_t seed);

/// One packet per node x -> perm(x), all injected at cycle 0.
std::vector<Packet> permutation_traffic(const std::vector<NodeId>& perm);

/// Bit-reversal permutation on h-bit labels.
std::vector<NodeId> bit_reversal_permutation(unsigned h);

/// Transpose permutation (swap label halves); h must be even.
std::vector<NodeId> transpose_permutation(unsigned h);

/// Perfect-shuffle permutation (rotate left one bit).
std::vector<NodeId> shuffle_permutation(unsigned h);

/// Uniform traffic where `fraction_hot` of packets target a hot node drawn
/// uniformly from `hot_nodes`. `fraction_hot` must lie in [0, 1] (it seeds a
/// bernoulli_distribution, which is UB outside that range).
/// `packets_per_cycle` controls the injection rate; 0 keeps the historical
/// default of max(logical_nodes / 4, 1). With a single hot node the generated
/// stream is byte-identical to the historical single-node overload below.
std::vector<Packet> hotspot_traffic(std::size_t logical_nodes, std::size_t count,
                                    const std::vector<NodeId>& hot_nodes, double fraction_hot,
                                    std::uint64_t seed, std::uint64_t packets_per_cycle = 0);

/// Single-hot-node compatibility overload; forwards to the vector form.
std::vector<Packet> hotspot_traffic(std::size_t logical_nodes, std::size_t count,
                                    NodeId hot_node, double fraction_hot, std::uint64_t seed,
                                    std::uint64_t packets_per_cycle = 0);

/// Zipf-skewed traffic: sources are uniform, destination ranks follow a
/// Zipf(theta) law with node id r drawn with probability proportional to
/// 1 / (r + 1)^theta (node 0 hottest; theta = 0 degenerates to uniform).
/// Unlike the std::mt19937_64-based generators above, draws come from an
/// explicit splitmix64 stream, so the packet vector is bit-identical across
/// platforms and standard libraries. `packets_per_cycle` = 0 means 1.
std::vector<Packet> zipf_traffic(std::size_t logical_nodes, std::size_t count, double theta,
                                 std::uint64_t seed, std::uint64_t packets_per_cycle = 0);

/// Multi-hotspot burst trains: hotspots take turns being hot. A packet
/// injected in burst window w (cycles [w*burst_cycles, (w+1)*burst_cycles))
/// targets hot_nodes[w % hot_nodes.size()] with probability `fraction_hot`,
/// otherwise a uniform destination. Sources are uniform. splitmix64-based and
/// platform-stable, like zipf_traffic. `packets_per_cycle` = 0 keeps the
/// hotspot default of max(logical_nodes / 4, 1).
std::vector<Packet> hotspot_burst_traffic(std::size_t logical_nodes, std::size_t count,
                                          const std::vector<NodeId>& hot_nodes,
                                          double fraction_hot, std::uint64_t burst_cycles,
                                          std::uint64_t seed,
                                          std::uint64_t packets_per_cycle = 0);

/// Parses a packet trace: one packet per line, "inject_cycle src dst"
/// (whitespace separated); '#' starts a comment; blank lines are ignored.
/// Packet ids are assigned in line order. Throws std::invalid_argument on
/// malformed lines, and std::out_of_range when an endpoint is >=
/// `logical_nodes` (pass 0 to skip the range check).
std::vector<Packet> trace_traffic(const std::string& text, std::size_t logical_nodes);

/// Formats packets into the trace format accepted by trace_traffic.
std::string format_trace(const std::vector<Packet>& packets);

}  // namespace ftdb::sim
