// Traffic workloads for the routing experiments: uniform random traffic,
// the classic adversarial permutations (bit reversal, transpose, perfect
// shuffle), and hotspot traffic. All generators are seeded and deterministic.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sim/engine.hpp"

namespace ftdb::sim {

/// `count` packets, uniformly random (src, dst) pairs among live logical
/// nodes, injected `rate` packets per cycle (rate = packets injected each
/// cycle, round-robin over the batch).
std::vector<Packet> uniform_traffic(std::size_t logical_nodes, std::size_t count,
                                    std::uint64_t packets_per_cycle, std::uint64_t seed);

/// One packet per node x -> perm(x), all injected at cycle 0.
std::vector<Packet> permutation_traffic(const std::vector<NodeId>& perm);

/// Bit-reversal permutation on h-bit labels.
std::vector<NodeId> bit_reversal_permutation(unsigned h);

/// Transpose permutation (swap label halves); h must be even.
std::vector<NodeId> transpose_permutation(unsigned h);

/// Perfect-shuffle permutation (rotate left one bit).
std::vector<NodeId> shuffle_permutation(unsigned h);

/// Uniform traffic where `fraction_hot` of packets target a single hot node.
/// `fraction_hot` must lie in [0, 1] (it seeds a bernoulli_distribution, which
/// is UB outside that range). `packets_per_cycle` controls the injection rate;
/// 0 keeps the historical default of max(logical_nodes / 4, 1).
std::vector<Packet> hotspot_traffic(std::size_t logical_nodes, std::size_t count,
                                    NodeId hot_node, double fraction_hot, std::uint64_t seed,
                                    std::uint64_t packets_per_cycle = 0);

}  // namespace ftdb::sim
