#include "topology/debruijn.hpp"

#include <stdexcept>
#include <utility>

#include "graph/csr.hpp"
#include "topology/labels.hpp"

namespace ftdb {

namespace {
void validate(const DeBruijnParams& params) {
  if (params.base < 2) throw std::invalid_argument("de Bruijn base must be >= 2");
  if (params.digits < 1) throw std::invalid_argument("de Bruijn digit count must be >= 1");
}
}  // namespace

std::uint64_t debruijn_num_nodes(const DeBruijnParams& params) {
  validate(params);
  return labels::ipow_checked(params.base, params.digits);
}

Graph debruijn_graph_digit_definition(const DeBruijnParams& params) {
  const std::uint64_t n = debruijn_num_nodes(params);
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) * params.base * 2);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint32_t r = 0; r < params.base; ++r) {
      // Forward shift [x_{h-2},...,x_0,r]; the reverse shifts are the same
      // edge set viewed from the other endpoint, so emitting forward edges
      // from every node covers both directions.
      const std::uint64_t y = labels::shift_in_low(x, params.base, params.digits, r);
      csr::emit_undirected(halves, static_cast<NodeId>(x), static_cast<NodeId>(y));
    }
  }
  return GraphBuilder::from_half_edges(n, halves);
}

Graph debruijn_graph(const DeBruijnParams& params) {
  const std::uint64_t n = debruijn_num_nodes(params);
  const std::uint64_t m = params.base;
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) * m * 2);
  auto emit = [&](std::uint64_t x, std::uint64_t y) {
    csr::emit_undirected(halves, static_cast<NodeId>(x), static_cast<NodeId>(y));
  };
  if (m >= n) {  // degenerate h = 1 shapes: fall back to the plain modulus
    for (std::uint64_t x = 0; x < n; ++x) {
      for (std::uint64_t r = 0; r < m; ++r) emit(x, (x * m + r) % n);
    }
  } else {
    // Fixed r, ascending x: y = X(x, m, r, n) advances by m per step, so the
    // modulus reduces to a conditional subtract — no division in the loop.
    // Emission order is irrelevant; the counting-sort CSR canonicalizes it.
    for (std::uint64_t r = 0; r < m; ++r) {
      std::uint64_t y = r;
      for (std::uint64_t x = 0; x < n; ++x) {
        emit(x, y);
        y += m;
        if (y >= n) y -= n;
      }
    }
  }
  return GraphBuilder::from_half_edges(n, halves);
}

Graph debruijn_base2(unsigned h) { return debruijn_graph({.base = 2, .digits = h}); }

Digraph debruijn_digraph(std::uint64_t m, unsigned h) {
  if (m < 2 || h < 1) throw std::invalid_argument("debruijn_digraph: need m >= 2, h >= 1");
  const std::uint64_t n = labels::ipow_checked(m, h);
  DigraphBuilder builder(n);
  builder.reserve_arcs(static_cast<std::size_t>(n) * m);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t r = 0; r < m; ++r) {
      builder.add_arc(static_cast<NodeId>(x), static_cast<NodeId>((x * m + r) % n));
    }
  }
  return std::move(builder).build();
}

std::vector<NodeId> debruijn_out_neighbors(const DeBruijnParams& params, NodeId x) {
  const std::uint64_t n = debruijn_num_nodes(params);
  std::vector<NodeId> out;
  out.reserve(params.base);
  for (std::uint64_t r = 0; r < params.base; ++r) {
    out.push_back(static_cast<NodeId>((static_cast<std::uint64_t>(x) * params.base + r) % n));
  }
  return out;
}

}  // namespace ftdb
