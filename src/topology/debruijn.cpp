#include "topology/debruijn.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <utility>

#include "graph/csr.hpp"
#include "topology/labels.hpp"

namespace ftdb {

namespace {
void validate(const DeBruijnParams& params) {
  if (params.base < 2) throw std::invalid_argument("de Bruijn base must be >= 2");
  if (params.digits < 1) throw std::invalid_argument("de Bruijn digit count must be >= 1");
}
}  // namespace

std::uint64_t debruijn_num_nodes(const DeBruijnParams& params) {
  validate(params);
  return labels::ipow_checked(params.base, params.digits);
}

Graph debruijn_graph_digit_definition(const DeBruijnParams& params) {
  const std::uint64_t n = debruijn_num_nodes(params);
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) * params.base * 2);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint32_t r = 0; r < params.base; ++r) {
      // Forward shift [x_{h-2},...,x_0,r]; the reverse shifts are the same
      // edge set viewed from the other endpoint, so emitting forward edges
      // from every node covers both directions.
      const std::uint64_t y = labels::shift_in_low(x, params.base, params.digits, r);
      csr::emit_undirected(halves, static_cast<NodeId>(x), static_cast<NodeId>(y));
    }
  }
  return GraphBuilder::from_half_edges(n, halves);
}

Graph debruijn_graph(const DeBruijnParams& params) {
  const std::uint64_t n = debruijn_num_nodes(params);
  const std::uint64_t m = params.base;
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) * m * 2);
  auto emit = [&](std::uint64_t x, std::uint64_t y) {
    csr::emit_undirected(halves, static_cast<NodeId>(x), static_cast<NodeId>(y));
  };
  if (m >= n) {  // degenerate h = 1 shapes: fall back to the plain modulus
    for (std::uint64_t x = 0; x < n; ++x) {
      for (std::uint64_t r = 0; r < m; ++r) emit(x, (x * m + r) % n);
    }
  } else {
    // Fixed r, ascending x: y = X(x, m, r, n) advances by m per step, so the
    // modulus reduces to a conditional subtract — no division in the loop.
    // Emission order is irrelevant; the counting-sort CSR canonicalizes it.
    for (std::uint64_t r = 0; r < m; ++r) {
      std::uint64_t y = r;
      for (std::uint64_t x = 0; x < n; ++x) {
        emit(x, y);
        y += m;
        if (y >= n) y -= n;
      }
    }
  }
  return GraphBuilder::from_half_edges(n, halves);
}

Graph debruijn_base2(unsigned h) { return debruijn_graph({.base = 2, .digits = h}); }

Digraph debruijn_digraph(std::uint64_t m, unsigned h) {
  if (m < 2 || h < 1) throw std::invalid_argument("debruijn_digraph: need m >= 2, h >= 1");
  const std::uint64_t n = labels::ipow_checked(m, h);
  DigraphBuilder builder(n);
  builder.reserve_arcs(static_cast<std::size_t>(n) * m);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t r = 0; r < m; ++r) {
      builder.add_arc(static_cast<NodeId>(x), static_cast<NodeId>((x * m + r) % n));
    }
  }
  return std::move(builder).build();
}

std::vector<NodeId> debruijn_out_neighbors(const DeBruijnParams& params, NodeId x) {
  const std::uint64_t n = debruijn_num_nodes(params);
  std::vector<NodeId> out;
  out.reserve(params.base);
  for (std::uint64_t r = 0; r < params.base; ++r) {
    out.push_back(static_cast<NodeId>((static_cast<std::uint64_t>(x) * params.base + r) % n));
  }
  return out;
}

void debruijn_neighbors(const DeBruijnParams& params, NodeId x, std::vector<NodeId>& out) {
  const std::uint64_t n = debruijn_num_nodes(params);
  const std::uint64_t m = params.base;
  if (x >= n) throw std::out_of_range("debruijn_neighbors: node out of range");
  const std::uint64_t high = n / m;  // m^{h-1}
  out.clear();
  for (std::uint64_t r = 0; r < m; ++r) {
    out.push_back(static_cast<NodeId>((static_cast<std::uint64_t>(x) * m + r) % n));
    out.push_back(static_cast<NodeId>(r * high + x / m));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), x), out.end());
}

namespace {

// A cap of kUncapped (or above) means "full scan"; every scan seeds its best
// with cap + 1, so real distances (<= 2h <= 128) never collide with it.
constexpr std::uint32_t kUncapped = 0xFFFFFFFEu;
constexpr int kNoHint = std::numeric_limits<int>::min();

// Packed digit labels: index i (bit for base 2, nibble for 2 < m <= 16)
// holds the digit at MSB-first tape position q = h-1-i, i.e. the label's
// own bit order. Base-2 labels are already their packing; nibble packing
// costs one division chain and is then maintained incrementally by the
// stepper with a single shift per hop.
inline std::uint64_t pack_digits(std::uint64_t v, std::uint64_t m, int h) {
  std::uint64_t p = 0;
  for (int i = 0; i < h; ++i) {
    p |= (v % m) << (4 * i);
    v /= m;
  }
  return p;
}

// Collapse a nibble-granular mismatch mask to one bit per digit (bit 4*i).
inline std::uint64_t collapse_nibbles(std::uint64_t mm) {
  mm |= mm >> 2;
  mm |= mm >> 1;
  return mm & 0x1111111111111111ull;
}

struct ScanState {
  std::uint32_t best;
  int witness;
};

// Exact minimal walk cost over every split of one window offset f. O(1) for
// the common shapes: the mismatch set under f is one XOR + lane mask; the
// two extreme splits and the two edge-adjacent middle splits need only the
// two lowest/two highest mismatch positions (clz/ctz), and an interval lower
// bound over the remaining interior splits triggers the O(mismatch-count)
// extraction only when one of them could actually win — rare.
// Digits-per-index DB is 1 (bits) or 4 (nibbles).
template <int DB>
int packed_cost_at(std::uint64_t px, std::uint64_t py, int h, int f) {
  const int af = f < 0 ? -f : f;
  const int ilo = std::max(0, -f);
  const int ihi = std::min(h - 1, h - 1 - f);
  // f == ±h leaves no overlapping digits (ihi < ilo): the lane shift would be
  // 64 (UB), and the correct mismatch set is empty.
  std::uint64_t t = 0;
  if (ilo <= ihi) {
    const std::uint64_t lane = (~std::uint64_t{0} >> (63 - (ihi * DB + (DB - 1)))) &
                               (~std::uint64_t{0} << (ilo * DB));
    t = ((f >= 0) ? (px ^ (py >> (f * DB))) : (px ^ (py << (-f * DB)))) & lane;
    if (DB == 4) t = collapse_nibbles(t);
  }
  // Straight slide to offset f when every overlapping digit already agrees.
  if (t == 0) return af;
  const int base_max = f > 0 ? f : 0;
  const int base_min = f < 0 ? f : 0;
  // Highest bit index = lowest tape position and vice versa.
  const int top_i = 63 - __builtin_clzll(t);
  const int lo_q = h - 1 - top_i / DB;
  const int hi_q = h - 1 - __builtin_ctzll(t) / DB;
  const int c0 = 2 * (base_max - std::min(base_min, lo_q - h)) - af;
  const int cc = 2 * (std::max(base_max, hi_q + 1) - base_min) - af;
  int cand = std::min(c0, cc);
  const std::uint64_t t_no_top = t ^ (std::uint64_t{1} << top_i);
  if (t_no_top != 0) {  // >= 2 mismatches: the edge middle splits, O(1) each
    const std::uint64_t t_no_bot = t & (t - 1);
    const int q1 = h - 1 - (63 - __builtin_clzll(t_no_top)) / DB;   // 2nd-lowest tape
    const int qn2 = h - 1 - __builtin_ctzll(t_no_bot) / DB;         // 2nd-highest tape
    cand = std::min(cand, 2 * (std::max(base_max, lo_q + 1) - std::min(base_min, q1 - h)) - af);
    cand = std::min(cand, 2 * (std::max(base_max, qn2 + 1) - std::min(base_min, hi_q - h)) - af);
    if ((t_no_top & (t_no_top - 1)) != 0 && t_no_bot != t_no_top) {
      // >= 4 mismatches: interior splits exist. Every one has
      // walk_max >= q1+1 and walk_min <= qn2-h; extract positions only when
      // that bound beats the four exact splits above.
      const int lb_rest = 2 * (std::max(base_max, q1 + 1) - std::min(base_min, qn2 - h)) - af;
      if (lb_rest < cand) {
        std::array<int, 64> q;  // mismatch tape positions, ascending
        int c = 0;
        std::uint64_t mm = t;
        while (mm != 0) {
          const int i = 63 - __builtin_clzll(mm);
          q[static_cast<std::size_t>(c++)] = h - 1 - i / DB;
          mm &= ~(std::uint64_t{1} << i);
        }
        for (int j = 2; j < c - 1; ++j) {
          const int wm = std::max(base_max, q[static_cast<std::size_t>(j - 1)] + 1);
          const int wn = std::min(base_min, q[static_cast<std::size_t>(j)] - h);
          cand = std::min(cand, 2 * (wm - wn) - af);
        }
      }
    }
  }
  return cand;
}

int packed_cost_at(std::uint64_t px, std::uint64_t py, int h, int db, int f) {
  return db == 1 ? packed_cost_at<1>(px, py, h, f) : packed_cost_at<4>(px, py, h, f);
}

// Offsets in |f|-ascending order (0, 1, -1, 2, -2, ...): an offset costs at
// least |f| hops, so once |f| reaches the best known distance the remaining
// offsets cannot win. The hint offset is tried first; `floor_stop` is a
// caller-guaranteed lower bound on the true distance, so matching it proves
// optimality and exits (the triangle-inequality fast path: a neighbor probe
// hits dist-1 on the hinted offset and stops after one evaluation). Results
// <= cap are exact; anything above cap means "farther than cap".
//
// Parity skip: every candidate at offset f costs 2k - |f|, so its parity is
// |f|'s. When floor_stop == cap the caller has guaranteed d >= cap, so an
// offset whose parity differs from cap's can only yield candidates
// >= cap + 1 — it can neither succeed nor lower the running best. This
// halves the router's refutation probes ("is this neighbor NOT one hop
// closer").
//
// The best seeds at min(cap, h) + 1: the pure shift route bounds every
// de Bruijn distance by h, so even an uncapped scan can refuse offsets past
// |f| = h and still return the exact distance.
template <int DB>
std::uint32_t packed_distance_scan(std::uint64_t px, std::uint64_t py, int h,
                                   std::uint32_t cap, std::uint32_t floor_stop, int hint,
                                   int* witness) {
  ScanState e{std::min(cap, static_cast<std::uint32_t>(h)) + 1, 0};
  const bool parity_skip = floor_stop == cap;
  const std::uint32_t parity = cap & 1u;
  if (hint != kNoHint && hint >= -h && hint <= h &&
      !(parity_skip && static_cast<std::uint32_t>(std::abs(hint)) % 2u != parity)) {
    const int c = packed_cost_at<DB>(px, py, h, hint);
    if (static_cast<std::uint32_t>(c) < e.best) {
      e.best = static_cast<std::uint32_t>(c);
      e.witness = hint;
    }
    if (e.best <= floor_stop) {
      if (witness != nullptr) *witness = e.witness;
      return e.best;
    }
  } else {
    hint = kNoHint;
  }
  for (int step = 0; step <= 2 * h; ++step) {
    const int f = (step % 2 == 1) ? (step + 1) / 2 : -(step / 2);
    const std::uint32_t af = static_cast<std::uint32_t>(std::abs(f));
    if (af >= e.best) break;
    if (f == hint || (parity_skip && (af & 1u) != parity)) continue;
    const int c = packed_cost_at<DB>(px, py, h, f);
    if (static_cast<std::uint32_t>(c) < e.best) {
      e.best = static_cast<std::uint32_t>(c);
      e.witness = f;
    }
    if (e.best <= floor_stop) break;
  }
  if (witness != nullptr) *witness = e.witness;
  return e.best;
}

std::uint32_t packed_distance_scan(std::uint64_t px, std::uint64_t py, int h, int db,
                                   std::uint32_t cap, std::uint32_t floor_stop, int hint,
                                   int* witness) {
  return db == 1 ? packed_distance_scan<1>(px, py, h, cap, floor_stop, hint, witness)
                 : packed_distance_scan<4>(px, py, h, cap, floor_stop, hint, witness);
}

// Exact O(h^2) fallback for shapes outside the packed range (m > 16, or the
// nibble packing overflowing 64 bits). Same alignment/split math as the
// packed scan, digit arrays instead of masks.
std::uint32_t generic_distance_scan(std::uint64_t m, int h, std::uint64_t x, std::uint64_t y,
                                    std::uint32_t cap, int* witness) {
  // MSB-first digit strings: sx[q] is digit x_{h-1-q}. Uninitialized on
  // purpose — only the first h entries are ever written and read, and this
  // sits on the implicit router's per-hop path.
  std::array<std::uint32_t, 64> sx;
  std::array<std::uint32_t, 64> sy;
  {
    std::uint64_t a = x;
    std::uint64_t b = y;
    for (int q = h - 1; q >= 0; --q) {
      sx[static_cast<std::size_t>(q)] = static_cast<std::uint32_t>(a % m);
      a /= m;
      sy[static_cast<std::size_t>(q)] = static_cast<std::uint32_t>(b % m);
      b /= m;
    }
  }
  std::uint32_t best = std::min(cap, kUncapped) + 1;
  int wit = 0;
  std::array<int, 64> mismatches;
  for (int step = 0; step <= 2 * h; ++step) {
    const int f = (step % 2 == 1) ? (step + 1) / 2 : -(step / 2);
    if (static_cast<std::uint32_t>(std::abs(f)) >= best) break;
    // Tape positions both strings define under offset f, and the mismatches
    // among them (ascending).
    int count = 0;
    const int qlo = std::max(0, f);
    const int qhi = std::min(h - 1, h - 1 + f);
    for (int q = qlo; q <= qhi; ++q) {
      if (sx[static_cast<std::size_t>(q)] != sy[static_cast<std::size_t>(q - f)]) {
        mismatches[static_cast<std::size_t>(count++)] = q;
      }
    }
    // Every mismatch must leave the preserved interval [M, mu+h-1]: the first
    // j of them below it (M > q), the rest above it (mu <= q - h).
    const int base_max = std::max(0, f);
    const int base_min = std::min(0, f);
    for (int j = 0; j <= count; ++j) {
      int walk_max = base_max;
      int walk_min = base_min;
      if (j > 0) walk_max = std::max(walk_max, mismatches[static_cast<std::size_t>(j - 1)] + 1);
      if (j < count) walk_min = std::min(walk_min, mismatches[static_cast<std::size_t>(j)] - h);
      const int hops = 2 * (walk_max - walk_min) - std::abs(f);
      if (hops >= 0 && static_cast<std::uint32_t>(hops) < best) {
        best = static_cast<std::uint32_t>(hops);
        wit = f;
      }
    }
  }
  if (witness != nullptr) *witness = wit;
  return best;
}

// Bits per packed digit for the (m, h) shape: 1 (base-2 labels are their own
// packing), 4 (nibble packing), or 0 when only the generic scan applies.
inline int packed_digit_bits(std::uint64_t m, int h) {
  if (m == 2 && h <= 63) return 1;
  if (m <= 16 && h <= 16) return 4;
  return 0;
}

}  // namespace

std::uint32_t debruijn_distance(const DeBruijnParams& params, NodeId x, NodeId y) {
  return debruijn_distance_witness(params, x, y, nullptr);
}

std::uint32_t debruijn_distance_witness(const DeBruijnParams& params, NodeId x, NodeId y,
                                        DistanceWitness* witness) {
  const std::uint64_t n = debruijn_num_nodes(params);
  const std::uint64_t m = params.base;
  const int h = static_cast<int>(params.digits);
  if (x >= n || y >= n) throw std::out_of_range("debruijn_distance: node out of range");
  if (witness != nullptr) witness->offset = 0;
  if (x == y) return 0;
  const int db = packed_digit_bits(m, h);
  int* wit = witness != nullptr ? &witness->offset : nullptr;
  if (db == 1) return packed_distance_scan(x, y, h, 1, kUncapped, 0, kNoHint, wit);
  if (db == 4) {
    return packed_distance_scan(pack_digits(x, m, h), pack_digits(y, m, h), h, 4, kUncapped, 0,
                                kNoHint, wit);
  }
  return generic_distance_scan(m, h, x, y, kUncapped, wit);
}

std::uint32_t debruijn_distance_step(const DeBruijnParams& params, NodeId x, NodeId x_next,
                                     NodeId y, std::uint32_t dist, DistanceWitness* witness) {
  DebruijnDistanceStepper stepper(params, y);
  stepper.seed(x, dist, witness != nullptr ? *witness : DistanceWitness{});
  const std::uint32_t d = stepper.step(x_next);
  if (witness != nullptr) *witness = stepper.witness();
  return d;
}

int debruijn_neighbors_fixed(const DeBruijnParams& params, NodeId x, NodeId* out, int capacity) {
  const std::uint64_t n = debruijn_num_nodes(params);
  const std::uint64_t m = params.base;
  if (x >= n) throw std::out_of_range("debruijn_neighbors_fixed: node out of range");
  if (capacity < 0 || static_cast<std::uint64_t>(capacity) < 2 * m) {
    throw std::invalid_argument("debruijn_neighbors_fixed: capacity < 2*m");
  }
  const std::uint64_t high = n / m;  // m^{h-1}
  int count = 0;
  // Insertion sort with dedup: degree <= 2m <= 8 on the packed shapes, so
  // this beats sort+unique+remove on a heap vector by a wide margin.
  auto push = [&](std::uint64_t w) {
    if (w == x) return;
    const NodeId id = static_cast<NodeId>(w);
    int i = count;
    while (i > 0 && out[i - 1] > id) --i;
    if (i > 0 && out[i - 1] == id) return;
    for (int j = count; j > i; --j) out[j] = out[j - 1];
    out[i] = id;
    ++count;
  };
  for (std::uint64_t r = 0; r < m; ++r) {
    push((static_cast<std::uint64_t>(x) * m + r) % n);
    push(r * high + x / m);
  }
  return count;
}

DebruijnDistanceStepper::DebruijnDistanceStepper(const DeBruijnParams& params, NodeId dest)
    : params_(params), dest_(dest) {
  n_ = debruijn_num_nodes(params);
  if (dest >= n_) throw std::out_of_range("DebruijnDistanceStepper: dest out of range");
  h_ = static_cast<int>(params.digits);
  high_ = n_ / params.base;
  db_ = packed_digit_bits(params.base, h_);
  if (db_ == 1) {
    mode_ = Mode::kBits;
    py_ = dest;
  } else if (db_ == 4) {
    mode_ = Mode::kNibbles;
    py_ = pack_digits(dest, params.base, h_);
  } else {
    mode_ = Mode::kGeneric;
    db_ = 1;
  }
  lane_ = (h_ * db_ >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << (h_ * db_)) - 1);
  use_opt_ = mode_ != Mode::kGeneric && h_ <= 31;
}

// Collect {f : cost(f) == dist_} exactly: every member has |f| <= min(dist_,
// h) and |f|'s parity equal to dist_'s (each candidate costs 2k - |f|), so
// the sweep touches about dist_/2 offsets, each O(1).
void DebruijnDistanceStepper::collect_opt() const {
  opt_ = 0;
  const int d = static_cast<int>(dist_);
  const int fmax = std::min(d, h_);
  for (int f = -fmax + ((fmax ^ d) & 1); f <= fmax; f += 2) {
    if (packed_cost_at(px_, py_, h_, db_, f) == d) opt_ |= std::uint64_t{1} << (f + h_);
  }
  opt_valid_ = true;
}

void DebruijnDistanceStepper::retarget(NodeId dest) {
  if (dest >= n_) throw std::out_of_range("DebruijnDistanceStepper: dest out of range");
  dest_ = dest;
  if (mode_ != Mode::kGeneric) {
    py_ = (mode_ == Mode::kBits) ? dest : pack_digits(dest, params_.base, h_);
  }
  node_ = kInvalidNode;
  opt_valid_ = false;
}

std::uint32_t DebruijnDistanceStepper::reset(NodeId node) {
  if (node >= n_) throw std::out_of_range("DebruijnDistanceStepper: node out of range");
  node_ = node;
  wit_.offset = 0;
  opt_valid_ = false;
  if (mode_ == Mode::kGeneric) {
    dist_ = (node == dest_) ? 0 : generic_distance_scan(params_.base, h_, node, dest_, kUncapped,
                                                        &wit_.offset);
    return dist_;
  }
  px_ = (mode_ == Mode::kBits) ? node : pack_digits(node, params_.base, h_);
  dist_ = packed_distance_scan(px_, py_, h_, db_, kUncapped, 0, kNoHint, &wit_.offset);
  return dist_;
}

void DebruijnDistanceStepper::seed(NodeId node, std::uint32_t dist, const DistanceWitness& witness) {
  if (node >= n_) throw std::out_of_range("DebruijnDistanceStepper: node out of range");
  node_ = node;
  dist_ = dist;
  wit_ = witness;
  opt_valid_ = false;
  if (mode_ != Mode::kGeneric) {
    px_ = (mode_ == Mode::kBits) ? node : pack_digits(node, params_.base, h_);
  }
}

void DebruijnDistanceStepper::seed_opt(NodeId node, std::uint32_t dist,
                                       const DistanceWitness& witness, std::uint64_t opt) {
  seed(node, dist, witness);
  opt_ = opt;
  opt_valid_ = use_opt_ && opt != 0;
}

DebruijnDistanceStepper::Neighbor DebruijnDistanceStepper::derive(NodeId neighbor) const {
  const std::uint64_t w = neighbor;
  const std::uint64_t m = params_.base;
  // Left shift: w == (node*m + r) mod n slides the digit window up, so the
  // winning offset for w is the current one minus 1; right shift the
  // opposite. Either derivation yields w's own packed label, so ties (a
  // neighbor reachable both ways) can take the first match.
  const std::uint64_t lm = (static_cast<std::uint64_t>(node_) * m) % n_;
  const std::uint64_t r_left = (w + n_ - lm) % n_;
  if (r_left < m) {
    return {((px_ << db_) & lane_) | r_left, wit_.offset - 1};
  }
  const std::uint64_t r_right = w / high_;
  if (r_right < m && w - r_right * high_ == static_cast<std::uint64_t>(node_) / m) {
    return {(px_ >> db_) | (r_right << (db_ * (h_ - 1))), wit_.offset + 1};
  }
  throw std::invalid_argument("DebruijnDistanceStepper: not an algebraic neighbor");
}

std::uint32_t DebruijnDistanceStepper::step(NodeId neighbor) {
  opt_valid_ = false;
  if (mode_ == Mode::kGeneric) {
    node_ = neighbor;
    dist_ = (neighbor == dest_) ? 0 : generic_distance_scan(params_.base, h_, neighbor, dest_,
                                                            kUncapped, &wit_.offset);
    return dist_;
  }
  const Neighbor nb = derive(neighbor);
  const std::uint32_t floor_stop = dist_ > 0 ? dist_ - 1 : 0;
  // The cap dist_+1 never truncates: a neighbor is at most one hop farther.
  dist_ = packed_distance_scan(nb.packed, py_, h_, db_, dist_ + 1, floor_stop, nb.hint,
                               &wit_.offset);
  node_ = neighbor;
  px_ = nb.packed;
  return dist_;
}

std::uint32_t DebruijnDistanceStepper::probe(NodeId neighbor, std::uint32_t cap) const {
  return probe_witness(neighbor, cap, nullptr);
}

std::uint32_t DebruijnDistanceStepper::probe_witness(NodeId neighbor, std::uint32_t cap,
                                                     DistanceWitness* witness) const {
  if (mode_ == Mode::kGeneric) {
    if (witness != nullptr) witness->offset = 0;
    return (neighbor == dest_) ? 0 : generic_distance_scan(params_.base, h_, neighbor, dest_, cap,
                                                           witness != nullptr ? &witness->offset
                                                                              : nullptr);
  }
  const Neighbor nb = derive(neighbor);
  const std::uint32_t floor_stop = dist_ > 0 ? dist_ - 1 : 0;
  return packed_distance_scan(nb.packed, py_, h_, db_, cap, floor_stop, nb.hint,
                              witness != nullptr ? &witness->offset : nullptr);
}

void DebruijnDistanceStepper::advance(NodeId neighbor, std::uint32_t dist,
                                      const DistanceWitness& witness) {
  if (mode_ != Mode::kGeneric) px_ = derive(neighbor).packed;
  node_ = neighbor;
  dist_ = dist;
  wit_ = witness;
  opt_valid_ = false;
}

int DebruijnDistanceStepper::probe_neighbors(ProbeNeighbor* out) const {
  const std::uint64_t m = params_.base;
  int count = 0;
  // Insertion sort with dedup, like debruijn_neighbors_fixed. A node
  // reachable as both a left and a right shift has one packed label (the
  // packing is a function of the id), so the first derivation wins and its
  // hint stays valid.
  auto push = [&](std::uint64_t w, std::uint64_t packed, int hint, int dir) {
    if (w == node_) return;
    const NodeId id = static_cast<NodeId>(w);
    int i = count;
    while (i > 0 && out[i - 1].id > id) --i;
    if (i > 0 && out[i - 1].id == id) return;
    for (int j = count; j > i; --j) out[j] = out[j - 1];
    out[i] = {id, packed, hint, dir};
    ++count;
  };
  const std::uint64_t slid = (static_cast<std::uint64_t>(node_) * m) % n_;
  const std::uint64_t down = static_cast<std::uint64_t>(node_) / m;
  const std::uint64_t pxl = (px_ << db_) & lane_;
  const std::uint64_t pxr = px_ >> db_;
  const int top = db_ * (h_ - 1);
  for (std::uint64_t r = 0; r < m; ++r) {
    std::uint64_t wl = slid + r;  // < n + m <= 2n: one conditional subtract
    if (wl >= n_) wl -= n_;
    push(wl, pxl | r, wit_.offset - 1, -1);
    push(r * high_ + down, pxr | (r << top), wit_.offset + 1, +1);
  }
  return count;
}

std::uint32_t DebruijnDistanceStepper::probe_pre(const ProbeNeighbor& nb, std::uint32_t cap,
                                                 DistanceWitness* witness,
                                                 std::uint64_t* opt_out) const {
  if (opt_out != nullptr) *opt_out = 0;
  if (mode_ == Mode::kGeneric) {
    if (witness != nullptr) witness->offset = 0;
    return (nb.id == dest_) ? 0 : generic_distance_scan(params_.base, h_, nb.id, dest_, cap,
                                                        witness != nullptr ? &witness->offset
                                                                           : nullptr);
  }
  if (use_opt_ && dist_ > 0 && cap == dist_ - 1) {
    // Refutation probe: is this neighbor exactly one hop closer? A shortest
    // walk for the neighbor at offset f, extended by the edge back to the
    // current node, is a walk for the current node at offset f + dir with
    // one more hop — so cost_nb(f) >= cost_node(f + dir) - 1, and the
    // neighbor can hit dist-1 only at offsets adjacent (against dir) to the
    // current optimal set. Evaluate exactly those (empirically ~1); the
    // evaluations double as the neighbor's own optimal set at dist-1, which
    // is complete because the true set is contained in the candidates.
    if (!opt_valid_) collect_opt();
    std::uint64_t cands = nb.dir < 0 ? (opt_ >> 1) : (opt_ << 1);
    const int target = static_cast<int>(dist_) - 1;
    std::uint64_t hits = 0;
    int first_f = 0;
    while (cands != 0) {
      const int idx = __builtin_ctzll(cands);
      cands &= cands - 1;
      const int f = idx - h_;
      if (f < -target || f > target) continue;
      if (packed_cost_at(nb.packed, py_, h_, db_, f) == target) {
        if (hits == 0) first_f = f;
        hits |= std::uint64_t{1} << idx;
      }
    }
    if (hits != 0) {
      if (witness != nullptr) witness->offset = first_f;
      if (opt_out != nullptr) *opt_out = hits;
      return static_cast<std::uint32_t>(target);
    }
    return cap + 1;
  }
  const std::uint32_t floor_stop = dist_ > 0 ? dist_ - 1 : 0;
  return packed_distance_scan(nb.packed, py_, h_, db_, cap, floor_stop, nb.hint,
                              witness != nullptr ? &witness->offset : nullptr);
}

void DebruijnDistanceStepper::advance_pre(const ProbeNeighbor& nb, std::uint32_t dist,
                                          const DistanceWitness& witness, std::uint64_t opt) {
  if (mode_ != Mode::kGeneric) px_ = nb.packed;
  node_ = nb.id;
  dist_ = dist;
  wit_ = witness;
  opt_ = opt;
  opt_valid_ = use_opt_ && opt != 0;
}

std::uint64_t debruijn_exact_root(std::uint64_t n, unsigned h) {
  if (n < 2 || h == 0) return 0;
  const std::uint64_t guess = static_cast<std::uint64_t>(
      std::llround(std::pow(static_cast<double>(n), 1.0 / static_cast<double>(h))));
  for (std::uint64_t cand = (guess > 3 ? guess - 1 : 2); cand <= guess + 1; ++cand) {
    std::uint64_t p = 1;
    bool overflow = false;
    for (unsigned i = 0; i < h; ++i) {
      if (p > n / cand) {
        overflow = true;
        break;
      }
      p *= cand;
    }
    if (!overflow && p == n) return cand;
  }
  return 0;
}

std::optional<DeBruijnParams> debruijn_shape_of(const Graph& g) {
  const std::uint64_t n = g.num_nodes();
  if (n < 2) return std::nullopt;
  std::vector<NodeId> expected;
  for (unsigned h = 1; h < 64; ++h) {
    const std::uint64_t m = debruijn_exact_root(n, h);
    if (m == 0) {
      if (n >> h == 0) break;  // even m = 2 no longer fits
      continue;
    }
    const DeBruijnParams params{.base = m, .digits = h};
    bool match = true;
    for (std::uint64_t x = 0; x < n && match; ++x) {
      debruijn_neighbors(params, static_cast<NodeId>(x), expected);
      const auto actual = g.neighbors(static_cast<NodeId>(x));
      match = actual.size() == expected.size() &&
              std::equal(actual.begin(), actual.end(), expected.begin());
    }
    if (match) return params;
  }
  return std::nullopt;
}

}  // namespace ftdb
