#include "topology/debruijn.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "graph/csr.hpp"
#include "topology/labels.hpp"

namespace ftdb {

namespace {
void validate(const DeBruijnParams& params) {
  if (params.base < 2) throw std::invalid_argument("de Bruijn base must be >= 2");
  if (params.digits < 1) throw std::invalid_argument("de Bruijn digit count must be >= 1");
}
}  // namespace

std::uint64_t debruijn_num_nodes(const DeBruijnParams& params) {
  validate(params);
  return labels::ipow_checked(params.base, params.digits);
}

Graph debruijn_graph_digit_definition(const DeBruijnParams& params) {
  const std::uint64_t n = debruijn_num_nodes(params);
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) * params.base * 2);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint32_t r = 0; r < params.base; ++r) {
      // Forward shift [x_{h-2},...,x_0,r]; the reverse shifts are the same
      // edge set viewed from the other endpoint, so emitting forward edges
      // from every node covers both directions.
      const std::uint64_t y = labels::shift_in_low(x, params.base, params.digits, r);
      csr::emit_undirected(halves, static_cast<NodeId>(x), static_cast<NodeId>(y));
    }
  }
  return GraphBuilder::from_half_edges(n, halves);
}

Graph debruijn_graph(const DeBruijnParams& params) {
  const std::uint64_t n = debruijn_num_nodes(params);
  const std::uint64_t m = params.base;
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) * m * 2);
  auto emit = [&](std::uint64_t x, std::uint64_t y) {
    csr::emit_undirected(halves, static_cast<NodeId>(x), static_cast<NodeId>(y));
  };
  if (m >= n) {  // degenerate h = 1 shapes: fall back to the plain modulus
    for (std::uint64_t x = 0; x < n; ++x) {
      for (std::uint64_t r = 0; r < m; ++r) emit(x, (x * m + r) % n);
    }
  } else {
    // Fixed r, ascending x: y = X(x, m, r, n) advances by m per step, so the
    // modulus reduces to a conditional subtract — no division in the loop.
    // Emission order is irrelevant; the counting-sort CSR canonicalizes it.
    for (std::uint64_t r = 0; r < m; ++r) {
      std::uint64_t y = r;
      for (std::uint64_t x = 0; x < n; ++x) {
        emit(x, y);
        y += m;
        if (y >= n) y -= n;
      }
    }
  }
  return GraphBuilder::from_half_edges(n, halves);
}

Graph debruijn_base2(unsigned h) { return debruijn_graph({.base = 2, .digits = h}); }

Digraph debruijn_digraph(std::uint64_t m, unsigned h) {
  if (m < 2 || h < 1) throw std::invalid_argument("debruijn_digraph: need m >= 2, h >= 1");
  const std::uint64_t n = labels::ipow_checked(m, h);
  DigraphBuilder builder(n);
  builder.reserve_arcs(static_cast<std::size_t>(n) * m);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t r = 0; r < m; ++r) {
      builder.add_arc(static_cast<NodeId>(x), static_cast<NodeId>((x * m + r) % n));
    }
  }
  return std::move(builder).build();
}

std::vector<NodeId> debruijn_out_neighbors(const DeBruijnParams& params, NodeId x) {
  const std::uint64_t n = debruijn_num_nodes(params);
  std::vector<NodeId> out;
  out.reserve(params.base);
  for (std::uint64_t r = 0; r < params.base; ++r) {
    out.push_back(static_cast<NodeId>((static_cast<std::uint64_t>(x) * params.base + r) % n));
  }
  return out;
}

void debruijn_neighbors(const DeBruijnParams& params, NodeId x, std::vector<NodeId>& out) {
  const std::uint64_t n = debruijn_num_nodes(params);
  const std::uint64_t m = params.base;
  if (x >= n) throw std::out_of_range("debruijn_neighbors: node out of range");
  const std::uint64_t high = n / m;  // m^{h-1}
  out.clear();
  for (std::uint64_t r = 0; r < m; ++r) {
    out.push_back(static_cast<NodeId>((static_cast<std::uint64_t>(x) * m + r) % n));
    out.push_back(static_cast<NodeId>(r * high + x / m));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), x), out.end());
}

namespace {

// Base-2 fast path for debruijn_distance. Digits are bits, so the mismatch
// set under shift offset f collapses to the set bits of x ^ (y >> f) (resp.
// x ^ (y << -f)): bit i of x is MSB-first digit q = h-1-i, and offset f
// compares digit q of x against digit q-f of y, i.e. bit i of x against bit
// i+f of y. This sits on the incremental-repair hot path (reference-distance
// probes per affected node), where the generic digit-extraction loop's 2h
// integer divisions dominate.
std::uint32_t debruijn_distance_base2(int h, std::uint64_t x, std::uint64_t y) {
  std::uint32_t best = static_cast<std::uint32_t>(-1);
  std::array<int, 64> mismatches;
  for (int step = 0; step <= 2 * h; ++step) {
    const int f = (step % 2 == 1) ? (step + 1) / 2 : -(step / 2);
    if (static_cast<std::uint32_t>(std::abs(f)) >= best) break;
    const int ilo = std::max(0, -f);
    const int ihi = std::min(h - 1, h - 1 - f);
    // f == ±h leaves no overlapping digits (ihi < ilo): the mask shift would
    // be 64 (UB), and the correct mismatch set is empty — every digit of x is
    // shifted out, giving the unconditional hops = h candidate below.
    const std::uint64_t lane =
        (ilo > ihi) ? 0
                    : (~std::uint64_t{0} >> (63 - ihi)) & (~std::uint64_t{0} << ilo);
    std::uint64_t mm = ((f >= 0) ? (x ^ (y >> f)) : (x ^ (y << -f))) & lane;
    // Mismatch positions ascending in q = h-1-i, i.e. descending bit index.
    int count = 0;
    while (mm != 0) {
      const int i = 63 - __builtin_clzll(mm);
      mismatches[static_cast<std::size_t>(count++)] = h - 1 - i;
      mm &= ~(std::uint64_t{1} << i);
    }
    const int base_max = std::max(0, f);
    const int base_min = std::min(0, f);
    for (int j = 0; j <= count; ++j) {
      int walk_max = base_max;
      int walk_min = base_min;
      if (j > 0) walk_max = std::max(walk_max, mismatches[static_cast<std::size_t>(j - 1)] + 1);
      if (j < count) walk_min = std::min(walk_min, mismatches[static_cast<std::size_t>(j)] - h);
      const int hops = 2 * (walk_max - walk_min) - std::abs(f);
      if (hops >= 0 && static_cast<std::uint32_t>(hops) < best) {
        best = static_cast<std::uint32_t>(hops);
      }
    }
  }
  return best;
}

}  // namespace

std::uint32_t debruijn_distance(const DeBruijnParams& params, NodeId x, NodeId y) {
  const std::uint64_t n = debruijn_num_nodes(params);
  const std::uint64_t m = params.base;
  const int h = static_cast<int>(params.digits);
  if (x >= n || y >= n) throw std::out_of_range("debruijn_distance: node out of range");
  if (x == y) return 0;
  if (m == 2) return debruijn_distance_base2(h, x, y);
  // MSB-first digit strings: sx[q] is digit x_{h-1-q}. Uninitialized on
  // purpose — only the first h entries are ever written and read, and this
  // sits on the implicit router's per-hop path.
  std::array<std::uint32_t, 64> sx;
  std::array<std::uint32_t, 64> sy;
  {
    std::uint64_t a = x;
    std::uint64_t b = y;
    for (int q = h - 1; q >= 0; --q) {
      sx[static_cast<std::size_t>(q)] = static_cast<std::uint32_t>(a % m);
      a /= m;
      sy[static_cast<std::size_t>(q)] = static_cast<std::uint32_t>(b % m);
      b /= m;
    }
  }
  std::uint32_t best = static_cast<std::uint32_t>(-1);
  std::array<int, 64> mismatches;
  // Offsets in |f|-ascending order (0, 1, -1, 2, -2, ...): an offset costs at
  // least |f| hops, so once |f| reaches the best known distance the remaining
  // offsets cannot win.
  for (int step = 0; step <= 2 * h; ++step) {
    const int f = (step % 2 == 1) ? (step + 1) / 2 : -(step / 2);
    if (static_cast<std::uint32_t>(std::abs(f)) >= best) break;
    // Tape positions both strings define under offset f, and the mismatches
    // among them (ascending).
    int count = 0;
    const int qlo = std::max(0, f);
    const int qhi = std::min(h - 1, h - 1 + f);
    for (int q = qlo; q <= qhi; ++q) {
      if (sx[static_cast<std::size_t>(q)] != sy[static_cast<std::size_t>(q - f)]) {
        mismatches[static_cast<std::size_t>(count++)] = q;
      }
    }
    // Every mismatch must leave the preserved interval [M, mu+h-1]: the first
    // j of them below it (M > q), the rest above it (mu <= q - h).
    const int base_max = std::max(0, f);
    const int base_min = std::min(0, f);
    for (int j = 0; j <= count; ++j) {
      int walk_max = base_max;
      int walk_min = base_min;
      if (j > 0) walk_max = std::max(walk_max, mismatches[static_cast<std::size_t>(j - 1)] + 1);
      if (j < count) walk_min = std::min(walk_min, mismatches[static_cast<std::size_t>(j)] - h);
      const int hops = 2 * (walk_max - walk_min) - std::abs(f);
      if (hops >= 0 && static_cast<std::uint32_t>(hops) < best) {
        best = static_cast<std::uint32_t>(hops);
      }
    }
  }
  return best;
}

std::uint64_t debruijn_exact_root(std::uint64_t n, unsigned h) {
  if (n < 2 || h == 0) return 0;
  const std::uint64_t guess = static_cast<std::uint64_t>(
      std::llround(std::pow(static_cast<double>(n), 1.0 / static_cast<double>(h))));
  for (std::uint64_t cand = (guess > 3 ? guess - 1 : 2); cand <= guess + 1; ++cand) {
    std::uint64_t p = 1;
    bool overflow = false;
    for (unsigned i = 0; i < h; ++i) {
      if (p > n / cand) {
        overflow = true;
        break;
      }
      p *= cand;
    }
    if (!overflow && p == n) return cand;
  }
  return 0;
}

std::optional<DeBruijnParams> debruijn_shape_of(const Graph& g) {
  const std::uint64_t n = g.num_nodes();
  if (n < 2) return std::nullopt;
  std::vector<NodeId> expected;
  for (unsigned h = 1; h < 64; ++h) {
    const std::uint64_t m = debruijn_exact_root(n, h);
    if (m == 0) {
      if (n >> h == 0) break;  // even m = 2 no longer fits
      continue;
    }
    const DeBruijnParams params{.base = m, .digits = h};
    bool match = true;
    for (std::uint64_t x = 0; x < n && match; ++x) {
      debruijn_neighbors(params, static_cast<NodeId>(x), expected);
      const auto actual = g.neighbors(static_cast<NodeId>(x));
      match = actual.size() == expected.size() &&
              std::equal(actual.begin(), actual.end(), expected.begin());
    }
    if (match) return params;
  }
  return std::nullopt;
}

}  // namespace ftdb
