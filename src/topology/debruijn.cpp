#include "topology/debruijn.hpp"

#include <stdexcept>

#include "topology/labels.hpp"

namespace ftdb {

namespace {
void validate(const DeBruijnParams& params) {
  if (params.base < 2) throw std::invalid_argument("de Bruijn base must be >= 2");
  if (params.digits < 1) throw std::invalid_argument("de Bruijn digit count must be >= 1");
}
}  // namespace

std::uint64_t debruijn_num_nodes(const DeBruijnParams& params) {
  validate(params);
  return labels::ipow_checked(params.base, params.digits);
}

Graph debruijn_graph_digit_definition(const DeBruijnParams& params) {
  const std::uint64_t n = debruijn_num_nodes(params);
  GraphBuilder builder(n);
  builder.reserve_edges(static_cast<std::size_t>(n) * params.base);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint32_t r = 0; r < params.base; ++r) {
      // Forward shift [x_{h-2},...,x_0,r]; the reverse shifts are the same
      // edge set viewed from the other endpoint, so adding forward edges from
      // every node covers both directions.
      const std::uint64_t y = labels::shift_in_low(x, params.base, params.digits, r);
      builder.add_edge(static_cast<NodeId>(x), static_cast<NodeId>(y));
    }
  }
  return builder.build();
}

Graph debruijn_graph(const DeBruijnParams& params) {
  const std::uint64_t n = debruijn_num_nodes(params);
  GraphBuilder builder(n);
  builder.reserve_edges(static_cast<std::size_t>(n) * params.base);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t r = 0; r < params.base; ++r) {
      const std::uint64_t y = (x * params.base + r) % n;  // X(x, m, r, m^h)
      builder.add_edge(static_cast<NodeId>(x), static_cast<NodeId>(y));
    }
  }
  return builder.build();
}

Graph debruijn_base2(unsigned h) { return debruijn_graph({.base = 2, .digits = h}); }

Digraph debruijn_digraph(std::uint64_t m, unsigned h) {
  if (m < 2 || h < 1) throw std::invalid_argument("debruijn_digraph: need m >= 2, h >= 1");
  const std::uint64_t n = labels::ipow_checked(m, h);
  std::vector<std::pair<NodeId, NodeId>> arcs;
  arcs.reserve(static_cast<std::size_t>(n) * m);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t r = 0; r < m; ++r) {
      arcs.emplace_back(static_cast<NodeId>(x), static_cast<NodeId>((x * m + r) % n));
    }
  }
  return Digraph(n, std::move(arcs));
}

std::vector<NodeId> debruijn_out_neighbors(const DeBruijnParams& params, NodeId x) {
  const std::uint64_t n = debruijn_num_nodes(params);
  std::vector<NodeId> out;
  out.reserve(params.base);
  for (std::uint64_t r = 0; r < params.base; ++r) {
    out.push_back(static_cast<NodeId>((static_cast<std::uint64_t>(x) * params.base + r) % n));
  }
  return out;
}

}  // namespace ftdb
