// The de Bruijn target graphs of Sections III and IV.
//
// B_{m,h} has m^h nodes labelled with h-digit base-m strings; (x, y) is an
// edge iff the digit strings overlap in h-1 positions (digit-shift
// definition), equivalently iff y = X(x, m, r, m^h) or x = X(y, m, r, m^h)
// for some r in {0..m-1} (algebraic definition, the one the fault-tolerant
// construction generalizes). Both generators are provided; tests assert they
// produce identical graphs.
#pragma once

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace ftdb {

struct DeBruijnParams {
  std::uint64_t base = 2;  // m >= 2
  unsigned digits = 3;     // h >= 1 (the paper assumes h >= 3; smaller h is
                           // permitted here and exercised in tests)
};

/// Number of nodes m^h (throws on overflow / invalid parameters).
std::uint64_t debruijn_num_nodes(const DeBruijnParams& params);

/// Digit-shift definition: x ~ [x_{h-2},...,x_0,r] and x ~ [r,x_{h-1},...,x_1].
Graph debruijn_graph_digit_definition(const DeBruijnParams& params);

/// Algebraic definition via X(z,m,r,s) = (z*m + r) mod s with s = m^h.
Graph debruijn_graph(const DeBruijnParams& params);

/// The base-2 shorthand B_{2,h} used throughout Section III.
Graph debruijn_base2(unsigned h);

/// Out-neighbors under the *directed* interpretation (x -> (x*m + r) mod m^h),
/// used by the shift-register routing algorithm in the simulator.
std::vector<NodeId> debruijn_out_neighbors(const DeBruijnParams& params, NodeId x);

/// The classical de Bruijn digraph: m^h nodes, arc x -> (x*m + r) mod m^h for
/// every digit r (self-loops included — they are real shift transitions, and
/// they make the digraph Eulerian, which is what de Bruijn sequences need).
Digraph debruijn_digraph(std::uint64_t m, unsigned h);

}  // namespace ftdb
