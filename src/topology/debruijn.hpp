// The de Bruijn target graphs of Sections III and IV.
//
// B_{m,h} has m^h nodes labelled with h-digit base-m strings; (x, y) is an
// edge iff the digit strings overlap in h-1 positions (digit-shift
// definition), equivalently iff y = X(x, m, r, m^h) or x = X(y, m, r, m^h)
// for some r in {0..m-1} (algebraic definition, the one the fault-tolerant
// construction generalizes). Both generators are provided; tests assert they
// produce identical graphs.
#pragma once

#include <optional>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "topology/distance_witness.hpp"

namespace ftdb {

struct DeBruijnParams {
  std::uint64_t base = 2;  // m >= 2
  unsigned digits = 3;     // h >= 1 (the paper assumes h >= 3; smaller h is
                           // permitted here and exercised in tests)
};

/// Number of nodes m^h (throws on overflow / invalid parameters).
std::uint64_t debruijn_num_nodes(const DeBruijnParams& params);

/// Digit-shift definition: x ~ [x_{h-2},...,x_0,r] and x ~ [r,x_{h-1},...,x_1].
Graph debruijn_graph_digit_definition(const DeBruijnParams& params);

/// Algebraic definition via X(z,m,r,s) = (z*m + r) mod s with s = m^h.
Graph debruijn_graph(const DeBruijnParams& params);

/// The base-2 shorthand B_{2,h} used throughout Section III.
Graph debruijn_base2(unsigned h);

/// Out-neighbors under the *directed* interpretation (x -> (x*m + r) mod m^h),
/// used by the shift-register routing algorithm in the simulator.
std::vector<NodeId> debruijn_out_neighbors(const DeBruijnParams& params, NodeId x);

/// The classical de Bruijn digraph: m^h nodes, arc x -> (x*m + r) mod m^h for
/// every digit r (self-loops included — they are real shift transitions, and
/// they make the digraph Eulerian, which is what de Bruijn sequences need).
Digraph debruijn_digraph(std::uint64_t m, unsigned h);

/// Sorted unique undirected neighbors of x in B_{m,h} (left and right digit
/// shifts, x itself excluded), written into `out`. Reusing `out` across calls
/// makes the enumeration allocation-free after warm-up — this is the
/// implicit router's inner loop.
void debruijn_neighbors(const DeBruijnParams& params, NodeId x, std::vector<NodeId>& out);

/// Exact hop distance between x and y in the *undirected* B_{m,h}, computed
/// from the labels alone in O(h^2) — no graph, no BFS. Undirected shortest
/// paths may mix left and right shifts, so this is genuinely shorter than the
/// paper's left-shift route for many pairs. The digit strings are windows on
/// a tape: a left shift slides the window right, a right shift slides it
/// left, and every freshly exposed digit is free. A walk with running maximum
/// M, minimum mu and endpoint f preserves exactly the tape interval
/// [M, mu+h-1], so d(x,y) is the minimum of 2(M - mu) - |f| over all window
/// offsets f and all ways of pushing the mismatched positions out of the
/// preserved interval. Verified hop-exact against BFS for every pair of every
/// B_{m,h} with m in {2,3,4} in the test suite.
std::uint32_t debruijn_distance(const DeBruijnParams& params, NodeId x, NodeId y);

/// debruijn_distance plus the witness: the window offset f of the winning
/// alignment. Feeding the witness back as a hint (see the stepper) makes the
/// next scan along a route O(h).
std::uint32_t debruijn_distance_witness(const DeBruijnParams& params, NodeId x, NodeId y,
                                        DistanceWitness* witness);

/// O(h) incremental update: given d(x, y) == dist with `witness` from a
/// previous *_witness/_step call, returns d(x_next, y) for x_next an
/// algebraic neighbor of x, updating the witness. The neighbor's winning
/// offset is almost always the current one shifted by the move direction, so
/// the hinted scan confirms dist-1/dist/dist+1 without the full O(h^2)
/// alignment sweep.
std::uint32_t debruijn_distance_step(const DeBruijnParams& params, NodeId x, NodeId x_next,
                                     NodeId y, std::uint32_t dist, DistanceWitness* witness);

/// Sorted unique undirected neighbors of x written into the caller's fixed
/// array (no allocation, no TLS — the router's hottest enumeration). Returns
/// the count; requires capacity >= 2*m (throws otherwise).
int debruijn_neighbors_fixed(const DeBruijnParams& params, NodeId x, NodeId* out, int capacity);

/// Incremental distance oracle to a fixed destination — the route-following
/// hot path behind ImplicitRouter. Maintains the current node's packed digit
/// label (base-2 labels are their own packing; 2 < m <= 16 packs one digit
/// per nibble) and the witness of the winning window alignment, so moving to
/// a neighbor (step/advance) or testing one (probe) costs O(h): each hop
/// shifts one digit, the packed label updates with one shift-and-or, and the
/// hinted offset usually proves the bound immediately. Capped scans stop as
/// soon as the triangle-inequality floor (dist-1) is met or every remaining
/// offset is provably worse. Shapes outside the packed range (m > 16, or
/// m > 2 with 4h > 64) fall back to the exact O(h^2) formula — identical
/// results, no witness acceleration.
class DebruijnDistanceStepper {
 public:
  DebruijnDistanceStepper(const DeBruijnParams& params, NodeId dest);

  /// Position at `node` with a full scan; returns d(node, dest).
  std::uint32_t reset(NodeId node);
  /// Re-aim at a new destination keeping the shape plumbing (one label pack
  /// instead of a full reconstruction — the batched router's per-item path).
  /// Positional state is invalid until the next reset()/seed().
  void retarget(NodeId dest);
  /// Restore a previously computed state without scanning. `dist` and
  /// `witness` must come from an earlier scan of the same (node, dest) pair
  /// (e.g. a memo-cache hit); garbage in, garbage out.
  void seed(NodeId node, std::uint32_t dist, const DistanceWitness& witness);
  /// Move to an algebraic neighbor of node(); returns the new distance.
  std::uint32_t step(NodeId neighbor);
  /// d(neighbor, dest) if it is <= cap, else some value > cap. Does not move
  /// the stepper.
  std::uint32_t probe(NodeId neighbor, std::uint32_t cap) const;
  /// probe() that also reports the winning witness (meaningful only when the
  /// result is <= cap).
  std::uint32_t probe_witness(NodeId neighbor, std::uint32_t cap, DistanceWitness* witness) const;
  /// Commit a previously probed neighbor: move there reusing the (dist,
  /// witness) pair probe_witness returned — no scan at all.
  void advance(NodeId neighbor, std::uint32_t dist, const DistanceWitness& witness);

  /// One algebraic neighbor of the current node, pre-packaged for probing:
  /// id, packed label, and hinted window offset. probe_neighbors() builds
  /// these once per hop from the current packed label; probe_pre() then
  /// scans with no per-probe shift classification — the router's hot path
  /// pays the modular divisions once per hop instead of once per probe.
  struct ProbeNeighbor {
    NodeId id;
    std::uint64_t packed;
    int hint;
    int dir;  // -1: left shift (node*m+r mod n), +1: right shift
  };

  /// Sorted, deduplicated algebraic neighbors of the current node (self
  /// excluded) with packed labels and hints. `out` must hold at least
  /// 2*base entries. Returns the count.
  int probe_neighbors(ProbeNeighbor* out) const;

  /// probe_witness() for an entry of probe_neighbors(): identical result,
  /// division-free. When cap == distance() - 1 (the router's refutation
  /// probe) and the optimal-offset mask is available, only the offsets that
  /// could possibly achieve distance() - 1 are evaluated (usually one); on
  /// success the neighbor's own mask is written to *opt_out (0 = unknown).
  std::uint32_t probe_pre(const ProbeNeighbor& nb, std::uint32_t cap, DistanceWitness* witness,
                          std::uint64_t* opt_out = nullptr) const;

  /// advance() for an entry of probe_neighbors(): commit the probed (dist,
  /// witness) and reuse its packed label. `opt` is the neighbor's
  /// optimal-offset mask from probe_pre (0 = unknown; recollected lazily).
  void advance_pre(const ProbeNeighbor& nb, std::uint32_t dist, const DistanceWitness& witness,
                   std::uint64_t opt = 0);

  /// seed() that also restores the optimal-offset mask (0 = unknown).
  void seed_opt(NodeId node, std::uint32_t dist, const DistanceWitness& witness,
                std::uint64_t opt);

  /// The set {f : cost of the winning walk constrained to window offset f
  /// == distance()} as a bitmask (bit index f + h), or 0 when not currently
  /// known. A neighbor one hop closer must win at an offset adjacent to one
  /// of these, so refutation probes evaluate ~popcount(mask) offsets
  /// (empirically ~1) instead of sweeping the parity half-window.
  std::uint64_t opt_mask() const { return opt_valid_ ? opt_ : 0; }

  NodeId node() const { return node_; }
  NodeId dest() const { return dest_; }
  std::uint32_t distance() const { return dist_; }
  const DistanceWitness& witness() const { return wit_; }

 private:
  enum class Mode : std::uint8_t { kBits, kNibbles, kGeneric };
  struct Neighbor {
    std::uint64_t packed;
    int hint;
  };
  Neighbor derive(NodeId neighbor) const;
  void collect_opt() const;

  DeBruijnParams params_;
  std::uint64_t n_ = 0;
  std::uint64_t high_ = 0;  // m^{h-1}
  std::uint64_t py_ = 0;    // packed dest label
  std::uint64_t px_ = 0;    // packed current label
  std::uint64_t lane_ = 0;  // low h*digit_bits bits
  NodeId dest_ = 0;
  NodeId node_ = kInvalidNode;
  std::uint32_t dist_ = 0;
  DistanceWitness wit_{};
  // Optimal-offset mask for the current node (bit f + h_), maintained lazily:
  // reset() computes it, advance_pre() carries the probe's mask forward, and
  // anything that invalidates it (seed/step without a mask) just clears
  // opt_valid_ — the next probe_pre recollects in O(dist) evaluations.
  mutable std::uint64_t opt_ = 0;
  mutable bool opt_valid_ = false;
  bool use_opt_ = false;  // packed mode and h <= 31 (mask fits 2h+1 bits)
  int h_ = 0;
  int db_ = 1;  // bits per packed digit: 1 (base 2) or 4 (m <= 16)
  Mode mode_ = Mode::kGeneric;
};

/// The exact integer h-th root: the m >= 2 with m^h == n, or 0 when none
/// exists. Shared by every shape search that enumerates (m, h) candidates.
std::uint64_t debruijn_exact_root(std::uint64_t n, unsigned h);

/// Recognizes a de Bruijn shape: the (m, h) with g exactly equal to B_{m,h}
/// (node count m^h and every adjacency list algebraic), or nullopt. O(N * m)
/// per candidate factorization of N — cheap enough to run per simulation.
/// This is what lets the router layer pick the O(1)-memory implicit backend
/// automatically, including on reconfigured machines whose live logical graph
/// came out dilation-1.
std::optional<DeBruijnParams> debruijn_shape_of(const Graph& g);

}  // namespace ftdb
