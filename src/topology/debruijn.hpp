// The de Bruijn target graphs of Sections III and IV.
//
// B_{m,h} has m^h nodes labelled with h-digit base-m strings; (x, y) is an
// edge iff the digit strings overlap in h-1 positions (digit-shift
// definition), equivalently iff y = X(x, m, r, m^h) or x = X(y, m, r, m^h)
// for some r in {0..m-1} (algebraic definition, the one the fault-tolerant
// construction generalizes). Both generators are provided; tests assert they
// produce identical graphs.
#pragma once

#include <optional>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace ftdb {

struct DeBruijnParams {
  std::uint64_t base = 2;  // m >= 2
  unsigned digits = 3;     // h >= 1 (the paper assumes h >= 3; smaller h is
                           // permitted here and exercised in tests)
};

/// Number of nodes m^h (throws on overflow / invalid parameters).
std::uint64_t debruijn_num_nodes(const DeBruijnParams& params);

/// Digit-shift definition: x ~ [x_{h-2},...,x_0,r] and x ~ [r,x_{h-1},...,x_1].
Graph debruijn_graph_digit_definition(const DeBruijnParams& params);

/// Algebraic definition via X(z,m,r,s) = (z*m + r) mod s with s = m^h.
Graph debruijn_graph(const DeBruijnParams& params);

/// The base-2 shorthand B_{2,h} used throughout Section III.
Graph debruijn_base2(unsigned h);

/// Out-neighbors under the *directed* interpretation (x -> (x*m + r) mod m^h),
/// used by the shift-register routing algorithm in the simulator.
std::vector<NodeId> debruijn_out_neighbors(const DeBruijnParams& params, NodeId x);

/// The classical de Bruijn digraph: m^h nodes, arc x -> (x*m + r) mod m^h for
/// every digit r (self-loops included — they are real shift transitions, and
/// they make the digraph Eulerian, which is what de Bruijn sequences need).
Digraph debruijn_digraph(std::uint64_t m, unsigned h);

/// Sorted unique undirected neighbors of x in B_{m,h} (left and right digit
/// shifts, x itself excluded), written into `out`. Reusing `out` across calls
/// makes the enumeration allocation-free after warm-up — this is the
/// implicit router's inner loop.
void debruijn_neighbors(const DeBruijnParams& params, NodeId x, std::vector<NodeId>& out);

/// Exact hop distance between x and y in the *undirected* B_{m,h}, computed
/// from the labels alone in O(h^2) — no graph, no BFS. Undirected shortest
/// paths may mix left and right shifts, so this is genuinely shorter than the
/// paper's left-shift route for many pairs. The digit strings are windows on
/// a tape: a left shift slides the window right, a right shift slides it
/// left, and every freshly exposed digit is free. A walk with running maximum
/// M, minimum mu and endpoint f preserves exactly the tape interval
/// [M, mu+h-1], so d(x,y) is the minimum of 2(M - mu) - |f| over all window
/// offsets f and all ways of pushing the mismatched positions out of the
/// preserved interval. Verified hop-exact against BFS for every pair of every
/// B_{m,h} with m in {2,3,4} in the test suite.
std::uint32_t debruijn_distance(const DeBruijnParams& params, NodeId x, NodeId y);

/// The exact integer h-th root: the m >= 2 with m^h == n, or 0 when none
/// exists. Shared by every shape search that enumerates (m, h) candidates.
std::uint64_t debruijn_exact_root(std::uint64_t n, unsigned h);

/// Recognizes a de Bruijn shape: the (m, h) with g exactly equal to B_{m,h}
/// (node count m^h and every adjacency list algebraic), or nullopt. O(N * m)
/// per candidate factorization of N — cheap enough to run per simulation.
/// This is what lets the router layer pick the O(1)-memory implicit backend
/// automatically, including on reconfigured machines whose live logical graph
/// came out dilation-1.
std::optional<DeBruijnParams> debruijn_shape_of(const Graph& g);

}  // namespace ftdb
