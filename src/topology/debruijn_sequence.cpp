#include "topology/debruijn_sequence.hpp"

#include <stdexcept>
#include <vector>

#include "graph/digraph.hpp"
#include "topology/debruijn.hpp"
#include "topology/labels.hpp"

namespace ftdb {

std::vector<std::uint32_t> debruijn_sequence(std::uint64_t m, unsigned n) {
  if (m < 2 || n < 1) throw std::invalid_argument("debruijn_sequence: need m >= 2, n >= 1");
  if (n == 1) {
    std::vector<std::uint32_t> seq(m);
    for (std::uint64_t r = 0; r < m; ++r) seq[r] = static_cast<std::uint32_t>(r);
    return seq;
  }
  // Euler circuit of the order-(n-1) digraph; each step x -> (x*m + r) emits
  // the appended symbol r.
  const Digraph dg = debruijn_digraph(m, n - 1);
  const auto circuit = dg.euler_circuit();
  if (circuit.empty()) throw std::logic_error("debruijn_sequence: digraph not Eulerian");
  const std::uint64_t nodes = labels::ipow_checked(m, n - 1);
  std::vector<std::uint32_t> seq;
  seq.reserve(circuit.size() - 1);
  for (std::size_t i = 0; i + 1 < circuit.size(); ++i) {
    // Arc from -> to with to = (from*m + r) mod m^{n-1}; since m divides
    // m^{n-1} for n >= 2, the appended symbol is r = to mod m.
    seq.push_back(static_cast<std::uint32_t>(circuit[i + 1] % m));
  }
  (void)nodes;
  return seq;
}

bool is_debruijn_sequence(const std::vector<std::uint32_t>& seq, std::uint64_t m, unsigned n) {
  const std::uint64_t expected = labels::ipow_checked(m, n);
  if (seq.size() != expected) return false;
  for (std::uint32_t s : seq) {
    if (s >= m) return false;
  }
  std::vector<bool> seen(expected, false);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::uint64_t word = 0;
    for (unsigned j = 0; j < n; ++j) {
      word = word * m + seq[(i + j) % seq.size()];
    }
    if (seen[word]) return false;
    seen[word] = true;
  }
  return true;
}

}  // namespace ftdb
