// de Bruijn sequences — the combinatorial object the networks are named
// after. A de Bruijn sequence B(m, n) is a cyclic string over an m-ary
// alphabet of length m^n containing every length-n word exactly once; it is
// precisely an Euler circuit of the de Bruijn digraph of order n-1 (each arc
// appends one symbol). Generating and verifying sequences end-to-end
// validates the digraph substrate the networks are built on.
#pragma once

#include <cstdint>
#include <vector>

namespace ftdb {

/// B(m, n) via an Euler circuit of the order-(n-1) de Bruijn digraph.
/// Returns the m^n symbols of the cyclic sequence. n >= 1, m >= 2.
std::vector<std::uint32_t> debruijn_sequence(std::uint64_t m, unsigned n);

/// Checks the defining property: every length-n window of the cyclic
/// sequence is distinct (and therefore all m^n words appear).
bool is_debruijn_sequence(const std::vector<std::uint32_t>& seq, std::uint64_t m, unsigned n);

}  // namespace ftdb
