// Witness of a winning alignment from a label-distance scan.
//
// Both label-distance formulas (de Bruijn window offsets, shuffle-exchange
// rotations) minimize over a 1-D family of alignments. The winner is worth
// keeping: along a route each hop shifts exactly one digit, so the winning
// alignment for the next node is almost always the current one shifted by
// one. Seeding the next scan with that hint turns the O(h^2) re-scan into an
// O(h) confirmation — the core of the incremental distance-step kernels.
#pragma once

namespace ftdb {

struct DistanceWitness {
  // de Bruijn: the winning window offset f in [-h, h] (y's digit window sits
  // at offset f on x's tape). Shuffle-exchange: the winning rotation rho in
  // [0, h). Only meaningful when the scan that produced it returned an exact
  // distance (result <= its cap).
  int offset = 0;
};

}  // namespace ftdb
