#include "topology/hypercube.hpp"

#include <stdexcept>

#include "topology/labels.hpp"

namespace ftdb {

std::uint64_t hypercube_num_nodes(unsigned h) { return labels::ipow_checked(2, h); }

Graph hypercube_graph(unsigned h) {
  const std::uint64_t n = hypercube_num_nodes(h);
  GraphBuilder builder(n);
  builder.reserve_edges(static_cast<std::size_t>(n) * h / 2);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (unsigned i = 0; i < h; ++i) {
      const std::uint64_t y = x ^ (std::uint64_t{1} << i);
      if (x < y) builder.add_edge(static_cast<NodeId>(x), static_cast<NodeId>(y));
    }
  }
  return builder.build();
}

std::uint64_t ccc_num_nodes(unsigned h) {
  if (h < 3) throw std::invalid_argument("CCC requires h >= 3");
  return h * labels::ipow_checked(2, h);
}

Graph cube_connected_cycles_graph(unsigned h) {
  const std::uint64_t cube = labels::ipow_checked(2, h);
  const std::uint64_t n = ccc_num_nodes(h);
  auto id = [&](unsigned pos, std::uint64_t label) {
    return static_cast<NodeId>(label * h + pos);
  };
  GraphBuilder builder(n);
  builder.reserve_edges(static_cast<std::size_t>(n) * 3 / 2);
  for (std::uint64_t x = 0; x < cube; ++x) {
    for (unsigned p = 0; p < h; ++p) {
      builder.add_edge(id(p, x), id((p + 1) % h, x));       // cycle edge
      builder.add_edge(id(p, x), id(p, x ^ (std::uint64_t{1} << p)));  // cube edge
    }
  }
  return builder.build();
}

std::uint64_t kautz_num_nodes(std::uint64_t m, unsigned h) {
  if (m < 2 || h < 1) throw std::invalid_argument("Kautz requires m >= 2, h >= 1");
  return labels::ipow_checked(m, h) + labels::ipow_checked(m, h - 1);
}

Graph kautz_graph(std::uint64_t m, unsigned h) {
  // Nodes are h-digit base-(m+1) strings with no two consecutive equal digits;
  // there are (m+1) * m^{h-1} = m^h + m^{h-1} of them. Edges shift in a digit
  // different from the (new) last digit's neighbor.
  const std::uint64_t base = m + 1;
  const std::uint64_t space = labels::ipow_checked(base, h);
  std::vector<NodeId> dense(space, kInvalidNode);
  std::vector<std::uint64_t> labels_list;
  for (std::uint64_t x = 0; x < space; ++x) {
    auto digits = labels::digits_of(x, base, h);
    bool ok = true;
    for (unsigned i = 0; i + 1 < h; ++i) {
      if (digits[i] == digits[i + 1]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      dense[x] = static_cast<NodeId>(labels_list.size());
      labels_list.push_back(x);
    }
  }
  GraphBuilder builder(labels_list.size());
  for (std::uint64_t x : labels_list) {
    const std::uint64_t low = x % base;
    for (std::uint64_t r = 0; r < base; ++r) {
      if (r == low) continue;  // consecutive digits must differ
      const std::uint64_t y = (x * base + r) % space;
      if (dense[y] == kInvalidNode) continue;  // shifted string re-checked below
      // The shift keeps digits x_{h-2}..x_0 adjacent, so y is valid iff the
      // new pair (x_0, r) differs, which the loop guard ensures; the dense
      // lookup guards the remaining pairs (always valid for valid x).
      builder.add_edge(dense[x], dense[y]);
    }
  }
  return builder.build();
}

std::uint64_t butterfly_num_nodes(unsigned h) {
  if (h < 2) throw std::invalid_argument("butterfly requires h >= 2");
  return h * labels::ipow_checked(2, h);
}

Graph butterfly_graph(unsigned h) {
  const std::uint64_t cube = labels::ipow_checked(2, h);
  auto id = [&](unsigned level, std::uint64_t label) {
    return static_cast<NodeId>(label * h + level);
  };
  GraphBuilder builder(butterfly_num_nodes(h));
  for (std::uint64_t x = 0; x < cube; ++x) {
    for (unsigned l = 0; l < h; ++l) {
      const unsigned next = (l + 1) % h;
      builder.add_edge(id(l, x), id(next, x));                              // straight
      builder.add_edge(id(l, x), id(next, x ^ (std::uint64_t{1} << l)));    // cross
    }
  }
  return builder.build();
}

}  // namespace ftdb
