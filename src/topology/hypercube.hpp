// The hypercube Q_h and other comparison topologies motivating the paper's
// introduction: constant-degree alternatives (cube-connected cycles,
// butterfly) and the degree-matched Kautz graph. These serve the comparison
// and Ascend/Descend experiments; the paper's contribution targets de Bruijn
// and shuffle-exchange.
#pragma once

#include "graph/graph.hpp"

namespace ftdb {

/// Q_h: 2^h nodes, x ~ x XOR 2^i. Degree h (grows with size — the scalability
/// problem the constant-degree networks solve).
Graph hypercube_graph(unsigned h);

/// Cube-connected cycles CCC_h (Preparata/Vuillemin [11]): h * 2^h nodes
/// (cycle position p, cube label x); cycle edges plus one cube edge per node.
/// Degree 3.
Graph cube_connected_cycles_graph(unsigned h);

/// Kautz graph K(m, h): m^h + m^{h-1} nodes; the densest degree-2m relative of
/// the de Bruijn graph. Included because it shares the shift-register edge
/// structure exploited by the paper's constructions.
Graph kautz_graph(std::uint64_t m, unsigned h);

/// Wrapped butterfly BF_h: h * 2^h nodes, degree 4; the fixed-degree relative
/// of the hypercube used by Feldmann/Unger-style containment results.
Graph butterfly_graph(unsigned h);

std::uint64_t hypercube_num_nodes(unsigned h);
std::uint64_t ccc_num_nodes(unsigned h);
std::uint64_t kautz_num_nodes(std::uint64_t m, unsigned h);
std::uint64_t butterfly_num_nodes(unsigned h);

}  // namespace ftdb
