#include "topology/labels.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace ftdb::labels {

std::uint64_t ipow_checked(std::uint64_t m, unsigned h) {
  std::uint64_t result = 1;
  for (unsigned i = 0; i < h; ++i) {
    if (m != 0 && result > std::numeric_limits<std::uint64_t>::max() / 2 / m) {
      throw std::overflow_error("ipow_checked: m^h overflows");
    }
    result *= m;
  }
  return result;
}

std::vector<std::uint32_t> digits_of(std::uint64_t x, std::uint64_t m, unsigned h) {
  std::vector<std::uint32_t> digits(h);
  for (unsigned i = 0; i < h; ++i) {
    digits[i] = static_cast<std::uint32_t>(x % m);
    x /= m;
  }
  if (x != 0) throw std::invalid_argument("digits_of: x does not fit in h base-m digits");
  return digits;
}

std::uint64_t from_digits(const std::vector<std::uint32_t>& digits, std::uint64_t m) {
  std::uint64_t x = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (*it >= m) throw std::invalid_argument("from_digits: digit out of range");
    x = x * m + *it;
  }
  return x;
}

std::uint64_t shift_in_low(std::uint64_t x, std::uint64_t m, unsigned h, std::uint32_t r) {
  if (r >= m) throw std::invalid_argument("shift_in_low: digit out of range");
  return (x * m + r) % ipow_checked(m, h);
}

std::uint64_t shift_in_high(std::uint64_t x, std::uint64_t m, unsigned h, std::uint32_t r) {
  if (r >= m) throw std::invalid_argument("shift_in_high: digit out of range");
  return x / m + static_cast<std::uint64_t>(r) * ipow_checked(m, h - 1);
}

std::uint64_t rotate_left(std::uint64_t x, std::uint64_t m, unsigned h) {
  return shift_in_low(x, m, h, high_digit(x, m, h));
}

std::uint64_t rotate_right(std::uint64_t x, std::uint64_t m, unsigned h) {
  return shift_in_high(x, m, h, static_cast<std::uint32_t>(x % m));
}

std::uint32_t high_digit(std::uint64_t x, std::uint64_t m, unsigned h) {
  return static_cast<std::uint32_t>(x / ipow_checked(m, h - 1) % m);
}

std::string to_digit_string(std::uint64_t x, std::uint64_t m, unsigned h) {
  auto digits = digits_of(x, m, h);
  std::ostringstream out;
  out << '[';
  for (unsigned i = h; i-- > 0;) {
    out << digits[i];
    if (i != 0) out << ',';
  }
  out << ']';
  return out.str();
}

std::uint64_t exchange_bit0(std::uint64_t x) { return x ^ 1u; }

}  // namespace ftdb::labels
