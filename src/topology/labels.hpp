// Base-m digit-string utilities (Section II notation): the h-digit base-m
// representation [x_{h-1}, ..., x_0]_m of a node label, digit shifts and
// rotations. These implement the paper's first (digit-based) definitions of
// the de Bruijn and shuffle-exchange graphs, which the tests prove equivalent
// to the algebraic X-based definitions used for the fault-tolerant versions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftdb::labels {

/// m^h with overflow checking (throws std::overflow_error past 2^63).
std::uint64_t ipow_checked(std::uint64_t m, unsigned h);

/// Digits of x in base m, least-significant first: result[i] = x_i.
std::vector<std::uint32_t> digits_of(std::uint64_t x, std::uint64_t m, unsigned h);

/// Inverse of digits_of.
std::uint64_t from_digits(const std::vector<std::uint32_t>& digits, std::uint64_t m);

/// Left shift-in: [x_{h-2},...,x_0,r]_m, i.e. (x*m + r) mod m^h.
std::uint64_t shift_in_low(std::uint64_t x, std::uint64_t m, unsigned h, std::uint32_t r);

/// Right shift-in: [r,x_{h-1},...,x_1]_m.
std::uint64_t shift_in_high(std::uint64_t x, std::uint64_t m, unsigned h, std::uint32_t r);

/// Cyclic left rotation of the digit string (the "shuffle" permutation):
/// [x_{h-2},...,x_0,x_{h-1}]_m.
std::uint64_t rotate_left(std::uint64_t x, std::uint64_t m, unsigned h);

/// Cyclic right rotation (the "unshuffle" permutation).
std::uint64_t rotate_right(std::uint64_t x, std::uint64_t m, unsigned h);

/// Most significant digit x_{h-1}.
std::uint32_t high_digit(std::uint64_t x, std::uint64_t m, unsigned h);

/// "[x_{h-1},...,x_0]_m" rendering used by the figure benches.
std::string to_digit_string(std::uint64_t x, std::uint64_t m, unsigned h);

/// Binary-specific helpers (base 2).
std::uint64_t exchange_bit0(std::uint64_t x);  // flip the least significant bit

}  // namespace ftdb::labels
