#include "topology/shuffle_exchange.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>
#include <utility>

#include "graph/csr.hpp"
#include "topology/labels.hpp"

namespace ftdb {

std::uint64_t shuffle_exchange_num_nodes(unsigned h) {
  if (h < 1) throw std::invalid_argument("shuffle-exchange requires h >= 1");
  return labels::ipow_checked(2, h);
}

Graph shuffle_exchange_graph(unsigned h) {
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) * 4);
  for (std::uint64_t x = 0; x < n; ++x) {
    csr::emit_undirected(halves, static_cast<NodeId>(x),
                         static_cast<NodeId>(labels::rotate_left(x, 2, h)));
    csr::emit_undirected(halves, static_cast<NodeId>(x),
                         static_cast<NodeId>(labels::exchange_bit0(x)));
  }
  return GraphBuilder::from_half_edges(n, halves);
}

NodeId se_shuffle(NodeId x, unsigned h) {
  return static_cast<NodeId>(labels::rotate_left(x, 2, h));
}

NodeId se_unshuffle(NodeId x, unsigned h) {
  return static_cast<NodeId>(labels::rotate_right(x, 2, h));
}

NodeId se_exchange(NodeId x) { return static_cast<NodeId>(labels::exchange_bit0(x)); }

void shuffle_exchange_neighbors(unsigned h, NodeId x, std::vector<NodeId>& out) {
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  if (x >= n) throw std::out_of_range("shuffle_exchange_neighbors: node out of range");
  out.clear();
  out.push_back(se_exchange(x));
  out.push_back(se_shuffle(x, h));
  out.push_back(se_unshuffle(x, h));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), x), out.end());
}

std::uint32_t shuffle_exchange_distance(unsigned h, NodeId x, NodeId y) {
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  if (x >= n || y >= n) throw std::out_of_range("shuffle_exchange_distance: node out of range");
  if (x == y) return 0;
  const int hh = static_cast<int>(h);
  std::uint32_t best = static_cast<std::uint32_t>(-1);
  std::array<int, 64> required;  // residues the rotation walk must visit
  std::uint64_t aligned = y;       // rotr^rho(y): the flip targets in x's frame
  for (unsigned rho = 0; rho < h; ++rho) {
    if (rho > 0) aligned = labels::rotate_right(aligned, 2, h);
    const std::uint64_t diff = static_cast<std::uint64_t>(x) ^ aligned;
    const int flips = std::popcount(diff);
    // Bit i is exchangeable when the net rotation r satisfies r ≡ -i (mod h).
    int count = 0;
    for (unsigned i = 0; i < h; ++i) {
      if ((diff >> i) & 1u) required[static_cast<std::size_t>(count++)] = static_cast<int>((h - i) % h);
    }
    std::sort(required.begin(), required.begin() + count);
    const int endpoints[3] = {static_cast<int>(rho) - hh, static_cast<int>(rho),
                              static_cast<int>(rho) + hh};
    // Split the sorted residues: the first j are reached sweeping up (at
    // their value), the rest sweeping down (at value - h).
    for (int j = 0; j <= count; ++j) {
      const int cover_max = (j > 0) ? required[static_cast<std::size_t>(j - 1)] : 0;
      const int cover_min = (j < count) ? required[static_cast<std::size_t>(j)] - hh : 0;
      for (const int f : endpoints) {
        const int walk_max = std::max(cover_max, std::max(0, f));
        const int walk_min = std::min(cover_min, std::min(0, f));
        const int up_first = walk_max + (walk_max - walk_min) + (f - walk_min);
        const int down_first = (-walk_min) + (walk_max - walk_min) + (walk_max - f);
        const int hops = flips + std::min(up_first, down_first);
        if (hops >= 0 && static_cast<std::uint32_t>(hops) < best) {
          best = static_cast<std::uint32_t>(hops);
        }
      }
    }
  }
  return best;
}

std::optional<unsigned> shuffle_exchange_shape_of(const Graph& g) {
  const std::uint64_t n = g.num_nodes();
  if (n < 2 || (n & (n - 1)) != 0) return std::nullopt;
  const unsigned h = static_cast<unsigned>(std::countr_zero(n));
  std::vector<NodeId> expected;
  for (std::uint64_t x = 0; x < n; ++x) {
    shuffle_exchange_neighbors(h, static_cast<NodeId>(x), expected);
    const auto actual = g.neighbors(static_cast<NodeId>(x));
    if (actual.size() != expected.size() ||
        !std::equal(actual.begin(), actual.end(), expected.begin())) {
      return std::nullopt;
    }
  }
  return h;
}

}  // namespace ftdb
