#include "topology/shuffle_exchange.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>
#include <utility>

#include "graph/csr.hpp"
#include "topology/labels.hpp"

namespace ftdb {

std::uint64_t shuffle_exchange_num_nodes(unsigned h) {
  if (h < 1) throw std::invalid_argument("shuffle-exchange requires h >= 1");
  return labels::ipow_checked(2, h);
}

Graph shuffle_exchange_graph(unsigned h) {
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) * 4);
  for (std::uint64_t x = 0; x < n; ++x) {
    csr::emit_undirected(halves, static_cast<NodeId>(x),
                         static_cast<NodeId>(labels::rotate_left(x, 2, h)));
    csr::emit_undirected(halves, static_cast<NodeId>(x),
                         static_cast<NodeId>(labels::exchange_bit0(x)));
  }
  return GraphBuilder::from_half_edges(n, halves);
}

NodeId se_shuffle(NodeId x, unsigned h) {
  return static_cast<NodeId>(labels::rotate_left(x, 2, h));
}

NodeId se_unshuffle(NodeId x, unsigned h) {
  return static_cast<NodeId>(labels::rotate_right(x, 2, h));
}

NodeId se_exchange(NodeId x) { return static_cast<NodeId>(labels::exchange_bit0(x)); }

void shuffle_exchange_neighbors(unsigned h, NodeId x, std::vector<NodeId>& out) {
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  if (x >= n) throw std::out_of_range("shuffle_exchange_neighbors: node out of range");
  out.clear();
  out.push_back(se_exchange(x));
  out.push_back(se_shuffle(x, h));
  out.push_back(se_unshuffle(x, h));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), x), out.end());
}

namespace {

constexpr std::uint32_t kUncapped = 0xFFFFFFFEu;
constexpr int kNoHint = std::numeric_limits<int>::min();

struct SeScanState {
  std::uint32_t best;
  int witness;
};

// Evaluate one final alignment rho exactly against the current best, given
// aligned == rotr^rho(y). Any rotation walk ending on rho's residue class
// has length >= min(rho, h-rho), so flips + that floor rejects most
// alignments before the per-residue split scan. The residues come out
// sorted for free: ascending bit index i gives residue (h-i) % h, which is
// 0 for i == 0 and then descends — so bit 0 first, then bits h-1 down to 1.
void se_eval_rho(std::uint64_t x, std::uint64_t aligned, int h, int rho, SeScanState& e) {
  const std::uint64_t diff = x ^ aligned;
  const int flips = std::popcount(diff);
  const int rot_floor = std::min(rho, h - rho);
  if (static_cast<std::uint32_t>(flips + rot_floor) >= e.best) return;
  if (diff == 0) {
    e.best = static_cast<std::uint32_t>(rot_floor);
    e.witness = rho;
    return;
  }
  // Bit i is exchangeable when the net rotation r satisfies r ≡ -i (mod h).
  std::array<int, 64> required;  // residues the rotation walk must visit, ascending
  int count = 0;
  if (diff & 1u) required[static_cast<std::size_t>(count++)] = 0;
  std::uint64_t rest = diff & ~std::uint64_t{1};
  while (rest != 0) {
    const int i = 63 - __builtin_clzll(rest);
    required[static_cast<std::size_t>(count++)] = h - i;
    rest &= ~(std::uint64_t{1} << i);
  }
  const int endpoints[3] = {rho - h, rho, rho + h};
  // Split the sorted residues: the first j are reached sweeping up (at
  // their value), the rest sweeping down (at value - h).
  for (int j = 0; j <= count; ++j) {
    const int cover_max = (j > 0) ? required[static_cast<std::size_t>(j - 1)] : 0;
    const int cover_min = (j < count) ? required[static_cast<std::size_t>(j)] - h : 0;
    for (const int f : endpoints) {
      const int walk_max = std::max(cover_max, std::max(0, f));
      const int walk_min = std::min(cover_min, std::min(0, f));
      const int up_first = walk_max + (walk_max - walk_min) + (f - walk_min);
      const int down_first = (-walk_min) + (walk_max - walk_min) + (walk_max - f);
      const int hops = flips + std::min(up_first, down_first);
      if (hops >= 0 && static_cast<std::uint32_t>(hops) < e.best) {
        e.best = static_cast<std::uint32_t>(hops);
        e.witness = rho;
      }
    }
  }
}

// Exact cost of the best tour constrained to final alignment rho — a fresh
// single-rho evaluation with no running best to reject against.
int se_cost_at(std::uint64_t x, std::uint64_t y, int h, int rho) {
  const std::uint64_t aligned =
      rho == 0 ? y : (((y >> rho) | (y << (h - rho))) & ((std::uint64_t{1} << h) - 1));
  SeScanState e{kUncapped + 1, 0};
  se_eval_rho(x, aligned, h, rho, e);
  return static_cast<int>(e.best);
}

// Full-alignment scan with the hinted rotation tried first and the
// floor-stop exit of the de Bruijn kernel: `floor_stop` is a caller
// guaranteed lower bound on the true distance, so matching it is proof.
// Results <= cap are exact; anything above cap means "farther than cap".
std::uint32_t se_distance_scan(std::uint64_t x, std::uint64_t y, int h, std::uint32_t cap,
                               std::uint32_t floor_stop, int hint, int* witness) {
  SeScanState e{std::min(cap, kUncapped) + 1, 0};
  if (hint != kNoHint && hint >= 0 && hint < h) {
    const std::uint64_t aligned =
        hint == 0 ? y : (((y >> hint) | (y << (h - hint))) & ((std::uint64_t{1} << h) - 1));
    se_eval_rho(x, aligned, h, hint, e);
    if (e.best <= floor_stop) {
      if (witness != nullptr) *witness = e.witness;
      return e.best;
    }
  } else {
    hint = kNoHint;
  }
  std::uint64_t aligned = y;  // rotr^rho(y): the flip targets in x's frame
  for (int rho = 0; rho < h; ++rho) {
    if (rho > 0) aligned = labels::rotate_right(aligned, 2, static_cast<unsigned>(h));
    if (rho == hint) continue;
    se_eval_rho(x, aligned, h, rho, e);
    if (e.best <= floor_stop) break;
  }
  if (witness != nullptr) *witness = e.witness;
  return e.best;
}

}  // namespace

std::uint32_t shuffle_exchange_distance(unsigned h, NodeId x, NodeId y) {
  return shuffle_exchange_distance_witness(h, x, y, nullptr);
}

std::uint32_t shuffle_exchange_distance_witness(unsigned h, NodeId x, NodeId y,
                                                DistanceWitness* witness) {
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  if (x >= n || y >= n) throw std::out_of_range("shuffle_exchange_distance: node out of range");
  if (witness != nullptr) witness->offset = 0;
  if (x == y) return 0;
  return se_distance_scan(x, y, static_cast<int>(h), kUncapped, 0, kNoHint,
                          witness != nullptr ? &witness->offset : nullptr);
}

std::uint32_t shuffle_exchange_distance_step(unsigned h, NodeId x, NodeId x_next, NodeId y,
                                             std::uint32_t dist, DistanceWitness* witness) {
  ShuffleExchangeDistanceStepper stepper(h, y);
  stepper.seed(x, dist, witness != nullptr ? *witness : DistanceWitness{});
  const std::uint32_t d = stepper.step(x_next);
  if (witness != nullptr) *witness = stepper.witness();
  return d;
}

int shuffle_exchange_neighbors_fixed(unsigned h, NodeId x, NodeId* out) {
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  if (x >= n) throw std::out_of_range("shuffle_exchange_neighbors_fixed: node out of range");
  NodeId cand[3] = {se_exchange(x), se_shuffle(x, h), se_unshuffle(x, h)};
  int count = 0;
  for (const NodeId w : cand) {
    if (w == x) continue;
    int i = count;
    while (i > 0 && out[i - 1] > w) --i;
    if (i > 0 && out[i - 1] == w) continue;
    for (int j = count; j > i; --j) out[j] = out[j - 1];
    out[i] = w;
    ++count;
  }
  return count;
}

ShuffleExchangeDistanceStepper::ShuffleExchangeDistanceStepper(unsigned h, NodeId dest)
    : dest_(dest), h_(static_cast<int>(h)) {
  n_ = shuffle_exchange_num_nodes(h);
  if (dest >= n_) throw std::out_of_range("ShuffleExchangeDistanceStepper: dest out of range");
}

void ShuffleExchangeDistanceStepper::retarget(NodeId dest) {
  if (dest >= n_) throw std::out_of_range("ShuffleExchangeDistanceStepper: dest out of range");
  dest_ = dest;
  node_ = kInvalidNode;
  opt_valid_ = false;
}

std::uint32_t ShuffleExchangeDistanceStepper::reset(NodeId node) {
  if (node >= n_) throw std::out_of_range("ShuffleExchangeDistanceStepper: node out of range");
  node_ = node;
  wit_.offset = 0;
  opt_valid_ = false;
  dist_ = (node == dest_) ? 0 : se_distance_scan(node, dest_, h_, kUncapped, 0, kNoHint,
                                                 &wit_.offset);
  return dist_;
}

void ShuffleExchangeDistanceStepper::seed(NodeId node, std::uint32_t dist,
                                          const DistanceWitness& witness) {
  if (node >= n_) throw std::out_of_range("ShuffleExchangeDistanceStepper: node out of range");
  node_ = node;
  dist_ = dist;
  wit_ = witness;
  opt_valid_ = false;
}

void ShuffleExchangeDistanceStepper::seed_opt(NodeId node, std::uint32_t dist,
                                              const DistanceWitness& witness, std::uint64_t opt) {
  seed(node, dist, witness);
  opt_ = opt;
  opt_valid_ = opt != 0;
}

// Collect {rho : cost(rho) == dist_} exactly: h single-rho evaluations, each
// cheap because se_eval_rho's own flips + rotation floor usually rejects.
void ShuffleExchangeDistanceStepper::collect_opt() const {
  opt_ = 0;
  const int d = static_cast<int>(dist_);
  for (int rho = 0; rho < h_; ++rho) {
    if (se_cost_at(node_, dest_, h_, rho) == d) opt_ |= std::uint64_t{1} << rho;
  }
  opt_valid_ = true;
}

int ShuffleExchangeDistanceStepper::hint_for(NodeId neighbor) const {
  // Moving x by a shuffle (rotate-left) relabels alignment rho+1 of x as rho
  // of x'; unshuffle the opposite; the exchange keeps the frame. The hint is
  // only a guess (the winner can genuinely change), so ties between
  // coinciding moves are harmless.
  const unsigned h = static_cast<unsigned>(h_);
  if (neighbor == se_exchange(node_)) return wit_.offset;
  if (neighbor == se_shuffle(node_, h)) return (wit_.offset + h_ - 1) % h_;
  if (neighbor == se_unshuffle(node_, h)) return (wit_.offset + 1) % h_;
  throw std::invalid_argument("ShuffleExchangeDistanceStepper: not a neighbor");
}

std::uint32_t ShuffleExchangeDistanceStepper::step(NodeId neighbor) {
  opt_valid_ = false;
  const int hint = hint_for(neighbor);
  const std::uint32_t floor_stop = dist_ > 0 ? dist_ - 1 : 0;
  dist_ = (neighbor == dest_) ? 0 : se_distance_scan(neighbor, dest_, h_, dist_ + 1, floor_stop,
                                                     hint, &wit_.offset);
  node_ = neighbor;
  return dist_;
}

std::uint32_t ShuffleExchangeDistanceStepper::probe(NodeId neighbor, std::uint32_t cap) const {
  return probe_witness(neighbor, cap, nullptr);
}

std::uint32_t ShuffleExchangeDistanceStepper::probe_witness(NodeId neighbor, std::uint32_t cap,
                                                            DistanceWitness* witness) const {
  if (neighbor == dest_) {
    if (witness != nullptr) witness->offset = 0;
    return 0;
  }
  const int hint = hint_for(neighbor);
  const std::uint32_t floor_stop = dist_ > 0 ? dist_ - 1 : 0;
  return se_distance_scan(neighbor, dest_, h_, cap, floor_stop, hint,
                          witness != nullptr ? &witness->offset : nullptr);
}

void ShuffleExchangeDistanceStepper::advance(NodeId neighbor, std::uint32_t dist,
                                             const DistanceWitness& witness) {
  node_ = neighbor;
  dist_ = dist;
  wit_ = witness;
  opt_valid_ = false;
}

int ShuffleExchangeDistanceStepper::probe_neighbors(ProbeNeighbor* out) const {
  const unsigned h = static_cast<unsigned>(h_);
  int count = 0;
  auto push = [&](NodeId id, int hint, int dir) {
    if (id == node_) return;
    int i = count;
    while (i > 0 && out[i - 1].id > id) --i;
    if (i > 0 && out[i - 1].id == id) return;
    for (int j = count; j > i; --j) out[j] = out[j - 1];
    out[i] = {id, hint, dir};
    ++count;
  };
  push(se_exchange(node_), wit_.offset, 0);
  push(se_shuffle(node_, h), (wit_.offset + h_ - 1) % h_, -1);
  push(se_unshuffle(node_, h), (wit_.offset + 1) % h_, +1);
  return count;
}

std::uint32_t ShuffleExchangeDistanceStepper::probe_pre(const ProbeNeighbor& nb, std::uint32_t cap,
                                                        DistanceWitness* witness,
                                                        std::uint64_t* opt_out) const {
  if (opt_out != nullptr) *opt_out = 0;
  if (nb.id == dest_) {
    if (witness != nullptr) witness->offset = 0;
    // The destination's own optimal set: diff == 0, so cost(rho) is the pure
    // rotation floor min(rho, h - rho), zero only at rho == 0.
    if (opt_out != nullptr) *opt_out = 1;
    return 0;
  }
  if (dist_ > 0 && cap == dist_ - 1) {
    // Refutation probe: is this neighbor exactly one hop closer? A tour for
    // the neighbor at alignment rho, extended by the reverse edge, is a tour
    // for the current node at the move-remapped alignment with one more hop
    // — so the neighbor can hit dist-1 only at alignments whose image under
    // the move lies in the current optimal set. Evaluate exactly those; the
    // evaluations double as the neighbor's complete optimal set at dist-1.
    if (!opt_valid_) collect_opt();
    std::uint64_t cands = opt_;
    if (nb.dir != 0 && h_ > 1) {
      const std::uint64_t lane = (std::uint64_t{1} << h_) - 1;
      cands = nb.dir < 0 ? (((opt_ >> 1) | (opt_ << (h_ - 1))) & lane)
                         : (((opt_ << 1) | (opt_ >> (h_ - 1))) & lane);
    }
    const int target = static_cast<int>(dist_) - 1;
    std::uint64_t hits = 0;
    int first_rho = 0;
    while (cands != 0) {
      const int rho = __builtin_ctzll(cands);
      cands &= cands - 1;
      if (se_cost_at(nb.id, dest_, h_, rho) == target) {
        if (hits == 0) first_rho = rho;
        hits |= std::uint64_t{1} << rho;
      }
    }
    if (hits != 0) {
      if (witness != nullptr) witness->offset = first_rho;
      if (opt_out != nullptr) *opt_out = hits;
      return static_cast<std::uint32_t>(target);
    }
    return cap + 1;
  }
  const std::uint32_t floor_stop = dist_ > 0 ? dist_ - 1 : 0;
  return se_distance_scan(nb.id, dest_, h_, cap, floor_stop, nb.hint,
                          witness != nullptr ? &witness->offset : nullptr);
}

void ShuffleExchangeDistanceStepper::advance_pre(const ProbeNeighbor& nb, std::uint32_t dist,
                                                 const DistanceWitness& witness,
                                                 std::uint64_t opt) {
  node_ = nb.id;
  dist_ = dist;
  wit_ = witness;
  opt_ = opt;
  opt_valid_ = opt != 0;
}

std::optional<unsigned> shuffle_exchange_shape_of(const Graph& g) {
  const std::uint64_t n = g.num_nodes();
  if (n < 2 || (n & (n - 1)) != 0) return std::nullopt;
  const unsigned h = static_cast<unsigned>(std::countr_zero(n));
  std::vector<NodeId> expected;
  for (std::uint64_t x = 0; x < n; ++x) {
    shuffle_exchange_neighbors(h, static_cast<NodeId>(x), expected);
    const auto actual = g.neighbors(static_cast<NodeId>(x));
    if (actual.size() != expected.size() ||
        !std::equal(actual.begin(), actual.end(), expected.begin())) {
      return std::nullopt;
    }
  }
  return h;
}

}  // namespace ftdb
