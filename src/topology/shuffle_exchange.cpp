#include "topology/shuffle_exchange.hpp"

#include <stdexcept>
#include <utility>

#include "graph/csr.hpp"
#include "topology/labels.hpp"

namespace ftdb {

std::uint64_t shuffle_exchange_num_nodes(unsigned h) {
  if (h < 1) throw std::invalid_argument("shuffle-exchange requires h >= 1");
  return labels::ipow_checked(2, h);
}

Graph shuffle_exchange_graph(unsigned h) {
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  std::vector<csr::HalfEdge>& halves = csr::emission_buffer();
  halves.reserve(static_cast<std::size_t>(n) * 4);
  for (std::uint64_t x = 0; x < n; ++x) {
    csr::emit_undirected(halves, static_cast<NodeId>(x),
                         static_cast<NodeId>(labels::rotate_left(x, 2, h)));
    csr::emit_undirected(halves, static_cast<NodeId>(x),
                         static_cast<NodeId>(labels::exchange_bit0(x)));
  }
  return GraphBuilder::from_half_edges(n, halves);
}

NodeId se_shuffle(NodeId x, unsigned h) {
  return static_cast<NodeId>(labels::rotate_left(x, 2, h));
}

NodeId se_unshuffle(NodeId x, unsigned h) {
  return static_cast<NodeId>(labels::rotate_right(x, 2, h));
}

NodeId se_exchange(NodeId x) { return static_cast<NodeId>(labels::exchange_bit0(x)); }

}  // namespace ftdb
