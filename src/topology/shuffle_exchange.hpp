// The point-to-point shuffle-exchange network SE_h (Stone [13]).
//
// 2^h nodes labelled with h-bit strings. Edges:
//   shuffle   — x ~ rotate_left(x)   (cyclic rotation of the bit string)
//   exchange  — x ~ x XOR 1          (flip the least significant bit)
// The undirected shuffle edge also provides the unshuffle (rotate-right)
// connection, so SE_h has degree <= 3.
#pragma once

#include "graph/graph.hpp"

namespace ftdb {

std::uint64_t shuffle_exchange_num_nodes(unsigned h);

Graph shuffle_exchange_graph(unsigned h);

/// Neighbor along the shuffle edge.
NodeId se_shuffle(NodeId x, unsigned h);
/// Neighbor along the unshuffle direction (inverse rotation).
NodeId se_unshuffle(NodeId x, unsigned h);
/// Neighbor along the exchange edge.
NodeId se_exchange(NodeId x);

}  // namespace ftdb
