// The point-to-point shuffle-exchange network SE_h (Stone [13]).
//
// 2^h nodes labelled with h-bit strings. Edges:
//   shuffle   — x ~ rotate_left(x)   (cyclic rotation of the bit string)
//   exchange  — x ~ x XOR 1          (flip the least significant bit)
// The undirected shuffle edge also provides the unshuffle (rotate-right)
// connection, so SE_h has degree <= 3.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace ftdb {

std::uint64_t shuffle_exchange_num_nodes(unsigned h);

Graph shuffle_exchange_graph(unsigned h);

/// Neighbor along the shuffle edge.
NodeId se_shuffle(NodeId x, unsigned h);
/// Neighbor along the unshuffle direction (inverse rotation).
NodeId se_unshuffle(NodeId x, unsigned h);
/// Neighbor along the exchange edge.
NodeId se_exchange(NodeId x);

/// Sorted unique undirected neighbors of x in SE_h (exchange, shuffle,
/// unshuffle; x itself excluded), written into `out`.
void shuffle_exchange_neighbors(unsigned h, NodeId x, std::vector<NodeId>& out);

/// Exact hop distance between x and y in SE_h from the labels alone, O(h^2):
/// a shortest SE walk is a tour of the rotation cycle Z_h that flips every
/// bit where x disagrees with the (rotation-aligned) destination while the
/// exchange port passes over it. For each final alignment rho, the required
/// flip positions become residues the rotation walk must visit on the
/// integer line; the cheapest one-reversal sweep covering them and ending on
/// rho's residue class gives the rotation cost, plus one hop per flip.
/// Verified hop-exact against BFS for every pair of SE_2..SE_10 in the test
/// suite.
std::uint32_t shuffle_exchange_distance(unsigned h, NodeId x, NodeId y);

/// Recognizes a shuffle-exchange shape: the h with g exactly equal to SE_h,
/// or nullopt. The router layer's counterpart to debruijn_shape_of.
std::optional<unsigned> shuffle_exchange_shape_of(const Graph& g);

}  // namespace ftdb
