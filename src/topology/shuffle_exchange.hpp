// The point-to-point shuffle-exchange network SE_h (Stone [13]).
//
// 2^h nodes labelled with h-bit strings. Edges:
//   shuffle   — x ~ rotate_left(x)   (cyclic rotation of the bit string)
//   exchange  — x ~ x XOR 1          (flip the least significant bit)
// The undirected shuffle edge also provides the unshuffle (rotate-right)
// connection, so SE_h has degree <= 3.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "topology/distance_witness.hpp"

namespace ftdb {

std::uint64_t shuffle_exchange_num_nodes(unsigned h);

Graph shuffle_exchange_graph(unsigned h);

/// Neighbor along the shuffle edge.
NodeId se_shuffle(NodeId x, unsigned h);
/// Neighbor along the unshuffle direction (inverse rotation).
NodeId se_unshuffle(NodeId x, unsigned h);
/// Neighbor along the exchange edge.
NodeId se_exchange(NodeId x);

/// Sorted unique undirected neighbors of x in SE_h (exchange, shuffle,
/// unshuffle; x itself excluded), written into `out`.
void shuffle_exchange_neighbors(unsigned h, NodeId x, std::vector<NodeId>& out);

/// Exact hop distance between x and y in SE_h from the labels alone, O(h^2):
/// a shortest SE walk is a tour of the rotation cycle Z_h that flips every
/// bit where x disagrees with the (rotation-aligned) destination while the
/// exchange port passes over it. For each final alignment rho, the required
/// flip positions become residues the rotation walk must visit on the
/// integer line; the cheapest one-reversal sweep covering them and ending on
/// rho's residue class gives the rotation cost, plus one hop per flip.
/// Verified hop-exact against BFS for every pair of SE_2..SE_10 in the test
/// suite.
std::uint32_t shuffle_exchange_distance(unsigned h, NodeId x, NodeId y);

/// shuffle_exchange_distance plus the witness: the winning rotation rho.
std::uint32_t shuffle_exchange_distance_witness(unsigned h, NodeId x, NodeId y,
                                                DistanceWitness* witness);

/// O(h) incremental update: given d(x, y) == dist with `witness` from a
/// previous *_witness/_step call, returns d(x_next, y) for x_next a neighbor
/// of x (exchange/shuffle/unshuffle), updating the witness. The winning
/// rotation for the neighbor is the current one shifted by the move, so the
/// hinted scan plus the flips + min(rho, h-rho) rejection confirms the new
/// distance without re-deriving every alignment.
std::uint32_t shuffle_exchange_distance_step(unsigned h, NodeId x, NodeId x_next, NodeId y,
                                             std::uint32_t dist, DistanceWitness* witness);

/// Sorted unique undirected neighbors of x written into the caller's array
/// (needs 3 slots; no allocation, no TLS). Returns the count.
int shuffle_exchange_neighbors_fixed(unsigned h, NodeId x, NodeId* out);

/// Incremental distance oracle to a fixed destination in SE_h — the SE
/// counterpart of DebruijnDistanceStepper: each hop rotates or flips one
/// bit, so the winning rotation alignment shifts by at most one and a hinted
/// capped scan replaces the O(h^2) per-rotation sweep.
class ShuffleExchangeDistanceStepper {
 public:
  ShuffleExchangeDistanceStepper(unsigned h, NodeId dest);

  /// Position at `node` with a full scan; returns d(node, dest).
  std::uint32_t reset(NodeId node);
  /// Re-aim at a new destination keeping the shape plumbing; positional
  /// state is invalid until the next reset()/seed().
  void retarget(NodeId dest);
  /// Restore a previously computed state without scanning (see the de Bruijn
  /// stepper's contract).
  void seed(NodeId node, std::uint32_t dist, const DistanceWitness& witness);
  /// Move to a neighbor of node(); returns the new distance.
  std::uint32_t step(NodeId neighbor);
  /// d(neighbor, dest) if it is <= cap, else some value > cap.
  std::uint32_t probe(NodeId neighbor, std::uint32_t cap) const;
  std::uint32_t probe_witness(NodeId neighbor, std::uint32_t cap, DistanceWitness* witness) const;
  /// Commit a previously probed neighbor reusing its (dist, witness).
  void advance(NodeId neighbor, std::uint32_t dist, const DistanceWitness& witness);

  /// One neighbor of the current node pre-packaged for probing — same
  /// batching contract as DebruijnDistanceStepper::ProbeNeighbor so the
  /// router's canonical-hop template works on either stepper. SE moves need
  /// no packed label; the hint is the move's rotation remap.
  struct ProbeNeighbor {
    NodeId id;
    int hint;
    int dir;  // 0: exchange, -1: shuffle (rho remaps o -> o-1), +1: unshuffle
  };

  /// Sorted, deduplicated neighbors of the current node (self excluded) with
  /// hints; `out` must hold at least 3 entries. Returns the count.
  int probe_neighbors(ProbeNeighbor* out) const;

  /// probe_witness() for an entry of probe_neighbors(). When cap ==
  /// distance() - 1 (the router's refutation probe) and the optimal-rotation
  /// mask is available, only the rotations that could possibly achieve
  /// distance() - 1 are evaluated; on success the neighbor's own mask is
  /// written to *opt_out (0 = unknown).
  std::uint32_t probe_pre(const ProbeNeighbor& nb, std::uint32_t cap, DistanceWitness* witness,
                          std::uint64_t* opt_out = nullptr) const;

  /// advance() for an entry of probe_neighbors(). `opt` is the neighbor's
  /// optimal-rotation mask from probe_pre (0 = unknown; recollected lazily).
  void advance_pre(const ProbeNeighbor& nb, std::uint32_t dist, const DistanceWitness& witness,
                   std::uint64_t opt = 0);

  /// seed() that also restores the optimal-rotation mask (0 = unknown).
  void seed_opt(NodeId node, std::uint32_t dist, const DistanceWitness& witness,
                std::uint64_t opt);

  /// The set {rho : cost of the winning tour constrained to final alignment
  /// rho == distance()} as a bitmask (bit index rho), or 0 when not
  /// currently known. Each move remaps alignments by at most one rotation,
  /// so a neighbor one hop closer must win inside this mask's move-shifted
  /// image — refutation probes evaluate ~popcount(mask) rotations.
  std::uint64_t opt_mask() const { return opt_valid_ ? opt_ : 0; }

  NodeId node() const { return node_; }
  NodeId dest() const { return dest_; }
  std::uint32_t distance() const { return dist_; }
  const DistanceWitness& witness() const { return wit_; }

 private:
  int hint_for(NodeId neighbor) const;
  void collect_opt() const;

  std::uint64_t n_ = 0;
  NodeId dest_ = 0;
  NodeId node_ = kInvalidNode;
  std::uint32_t dist_ = 0;
  DistanceWitness wit_{};
  // Optimal-rotation mask for the current node (bit rho), maintained lazily:
  // cleared by anything that moves without one, recollected on the next
  // refutation probe.
  mutable std::uint64_t opt_ = 0;
  mutable bool opt_valid_ = false;
  int h_ = 0;
};

/// Recognizes a shuffle-exchange shape: the h with g exactly equal to SE_h,
/// or nullopt. The router layer's counterpart to debruijn_shape_of.
std::optional<unsigned> shuffle_exchange_shape_of(const Graph& g);

}  // namespace ftdb
