// Tests for the table renderer and the experiment generators (the artifacts
// behind the figure/table benches).
#include <gtest/gtest.h>

#include "analysis/experiments.hpp"
#include "analysis/table.hpp"

namespace ftdb::analysis {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a   | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4           |"), std::string::npos);
  EXPECT_NE(out.find("|-----|"), std::string::npos);
}

TEST(Table, WrongCellCountThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Formatters, Basics) {
  EXPECT_EQ(fmt_u64(1234), "1234");
  EXPECT_EQ(fmt_double(1.5, 2), "1.50");
  EXPECT_EQ(fmt_ratio(2.0, 1), "2.0x");
  EXPECT_EQ(fmt_probability(0.5L, 3), "0.500");
}

TEST(Figure1, DescribesB24) {
  const std::string fig = figure1_debruijn_b24();
  EXPECT_NE(fig.find("nodes=16"), std::string::npos);
  EXPECT_NE(fig.find("max_degree=4"), std::string::npos);
  EXPECT_NE(fig.find("graph B_2_4"), std::string::npos);
}

TEST(Figure2, DescribesB124) {
  const std::string fig = figure2_ft_debruijn_b124();
  EXPECT_NE(fig.find("nodes=17"), std::string::npos);
  EXPECT_NE(fig.find("max_degree=8"), std::string::npos);
}

TEST(Figure3, MarksFaultAndRelabels) {
  const std::string fig = figure3_reconfiguration(8);
  EXPECT_NE(fig.find("node 8: FAULTY"), std::string::npos);
  // Node 9 hosts logical 8 = [1,0,0,0]_2 after the fault at 8.
  EXPECT_NE(fig.find("node 9: logical 8"), std::string::npos);
  EXPECT_NE(fig.find("style=solid"), std::string::npos);
}

TEST(Figure4, ListsAllNineBuses) {
  const std::string fig = figure4_bus_implementation();
  EXPECT_NE(fig.find("buses=9"), std::string::npos);
  EXPECT_NE(fig.find("bus 0: driver 0"), std::string::npos);
  EXPECT_NE(fig.find("bus 8: driver 8"), std::string::npos);
}

TEST(Figure5, ReconfigurationSurvives) {
  for (std::uint32_t fault = 0; fault < 9; ++fault) {
    const std::string fig = figure5_bus_reconfiguration(fault);
    EXPECT_NE(fig.find("survives = yes"), std::string::npos) << "fault " << fault;
    EXPECT_EQ(fig.find("MISSING"), std::string::npos) << "fault " << fault;
  }
}

TEST(Table1, SPNodeCountsDwarfOurs) {
  const Table t = table1_comparison_base2(3, 6, 3);
  ASSERT_GT(t.num_rows(), 0u);
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    const auto& row = t.row(i);
    const std::uint64_t ours = std::stoull(row[3]);
    const std::uint64_t sp = std::stoull(row[5]);
    EXPECT_GT(sp, ours);
  }
}

TEST(Table2, CoversBases2Through5) {
  const Table t = table2_comparison_basem(3, 2);
  EXPECT_EQ(t.num_rows(), 4u * 2u);
  EXPECT_EQ(t.row(0)[0], "2");
  EXPECT_EQ(t.row(t.num_rows() - 1)[0], "5");
}

TEST(Table3, EveryRowWithinBound) {
  const Table t = table3_degree_bounds(4, 3);
  ASSERT_GT(t.num_rows(), 0u);
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(t.row(i).back(), "yes") << "row " << i;
  }
}

TEST(Table4, EveryInstanceTolerant) {
  const Table t = table4_tolerance_verification(200, 1);
  ASSERT_GT(t.num_rows(), 0u);
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(t.row(i).back(), "yes") << "row " << i;
  }
}

}  // namespace
}  // namespace ftdb::analysis
