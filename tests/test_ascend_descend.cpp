// Tests for the Ascend/Descend emulations: correctness of the all-reduce on
// every topology, the constant-factor slowdown, and invariance under
// reconfiguration (links verified against the physical machine).
#include <gtest/gtest.h>

#include <numeric>

#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "sim/ascend_descend.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::sim {
namespace {

std::vector<std::int64_t> iota_values(unsigned h) {
  std::vector<std::int64_t> v(std::size_t{1} << h);
  std::iota(v.begin(), v.end(), 1);
  return v;
}

std::int64_t sum(const std::vector<std::int64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::int64_t{0});
}

const CombineFn kAdd = [](std::int64_t a, std::int64_t b) { return a + b; };
const CombineFn kMax = [](std::int64_t a, std::int64_t b) { return std::max(a, b); };

class AscendAllTopologies : public ::testing::TestWithParam<unsigned> {};

TEST_P(AscendAllTopologies, HypercubeAllReduceSum) {
  const unsigned h = GetParam();
  const auto in = iota_values(h);
  const auto total = sum(in);
  const auto result = ascend_hypercube(h, in, kAdd);
  EXPECT_EQ(result.communication_steps, h);
  for (auto v : result.values) EXPECT_EQ(v, total);
}

TEST_P(AscendAllTopologies, ShuffleExchangeAllReduceSum) {
  const unsigned h = GetParam();
  const auto in = iota_values(h);
  const auto total = sum(in);
  const auto result = ascend_shuffle_exchange(h, in, kAdd);
  EXPECT_EQ(result.communication_steps, 2u * h);  // factor-2 slowdown
  for (auto v : result.values) EXPECT_EQ(v, total);
}

TEST_P(AscendAllTopologies, DeBruijnAllReduceSum) {
  const unsigned h = GetParam();
  const auto in = iota_values(h);
  const auto total = sum(in);
  const auto dual = ascend_debruijn(h, in, kAdd, 2);
  EXPECT_EQ(dual.communication_steps, h);  // no slowdown with dual ports
  for (auto v : dual.values) EXPECT_EQ(v, total);
  const auto single = ascend_debruijn(h, in, kAdd, 1);
  EXPECT_EQ(single.communication_steps, 2u * h);  // serialized receive
  for (auto v : single.values) EXPECT_EQ(v, total);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AscendAllTopologies, ::testing::Values(2, 3, 4, 6, 8));

TEST(Ascend, MaxReduction) {
  const unsigned h = 4;
  std::vector<std::int64_t> in(16, 0);
  in[11] = 42;
  for (auto v : ascend_hypercube(h, in, kMax).values) EXPECT_EQ(v, 42);
  for (auto v : ascend_shuffle_exchange(h, in, kMax).values) EXPECT_EQ(v, 42);
  for (auto v : ascend_debruijn(h, in, kMax).values) EXPECT_EQ(v, 42);
}

TEST(Descend, SameResultForCommutativeCombine) {
  const unsigned h = 4;
  const auto in = iota_values(h);
  const auto a = ascend_hypercube(h, in, kAdd);
  const auto d = descend_hypercube(h, in, kAdd);
  EXPECT_EQ(a.values, d.values);
  EXPECT_EQ(d.communication_steps, h);
}

TEST(Ascend, WrongSizeThrows) {
  EXPECT_THROW(ascend_hypercube(3, std::vector<std::int64_t>(7), kAdd), std::invalid_argument);
  EXPECT_THROW(ascend_debruijn(3, iota_values(3), kAdd, 3), std::invalid_argument);
}

TEST(Ascend, SlowdownConstantsMatchIntroductionClaim) {
  // The introduction: constant-degree networks run Ascend/Descend with "only
  // a small constant factor slowdown relative to the hypercube".
  const unsigned h = 6;
  const auto in = iota_values(h);
  const auto cube = ascend_hypercube(h, in, kAdd).communication_steps;
  const auto se = ascend_shuffle_exchange(h, in, kAdd).communication_steps;
  const auto db = ascend_debruijn(h, in, kAdd, 2).communication_steps;
  EXPECT_EQ(se, 2 * cube);
  EXPECT_EQ(db, cube);
}

TEST(Ascend, RunsUnchangedOnReconfiguredDeBruijnMachine) {
  // PERF4 content: after k faults + reconfiguration, the de Bruijn Ascend uses
  // only live physical links and the step count is identical.
  const unsigned h = 5;
  const unsigned k = 2;
  const Graph ft = ft_debruijn_base2(h, k);
  const FaultSet faults(ft.num_nodes(), {4, 20});
  const Machine machine = Machine::reconfigured(ft, faults, std::size_t{1} << h);
  const auto in = iota_values(h);
  const auto result = ascend_debruijn(h, in, kAdd, 2, &machine);
  EXPECT_TRUE(result.links_verified);
  EXPECT_EQ(result.communication_steps, h);
  for (auto v : result.values) EXPECT_EQ(v, sum(in));
}

TEST(Ascend, RunsUnchangedOnReconfiguredNaturalSeMachine) {
  const unsigned h = 4;
  const unsigned k = 2;
  const auto se_machine = ft_shuffle_exchange_natural(h, k);
  const FaultSet faults(se_machine.ft_graph.num_nodes(), {1, 9});
  const Machine machine =
      Machine::reconfigured(se_machine.ft_graph, faults, std::size_t{1} << h);
  const auto in = iota_values(h);
  const auto result = ascend_shuffle_exchange(h, in, kAdd, &machine);
  EXPECT_TRUE(result.links_verified);
  EXPECT_EQ(result.communication_steps, 2u * h);
  for (auto v : result.values) EXPECT_EQ(v, sum(in));
}

TEST(Ascend, BareFaultyMachineBreaksTheAlgorithm) {
  // Without spares the algorithm cannot run: some required link is down.
  const unsigned h = 4;
  const Graph target = debruijn_base2(h);
  const FaultSet faults(16, {5});
  const Machine machine = Machine::direct_with_faults(target, faults);
  EXPECT_THROW(ascend_debruijn(h, iota_values(h), kAdd, 2, &machine), std::runtime_error);
}

}  // namespace
}  // namespace ftdb::sim
