// The json_parse half of bench_json: round-trips documents produced by
// JsonWriter (the bench_runner output format consumed by tools/bench_compare)
// and rejects malformed input.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/bench_json.hpp"

namespace {

using ftdb::analysis::JsonValue;
using ftdb::analysis::JsonWriter;
using ftdb::analysis::json_parse;

TEST(JsonParse, RoundTripsWriterDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("ftdb-bench-v1");
  w.key("seed");
  w.value(std::uint64_t{2026});
  w.key("ok");
  w.value(true);
  w.key("benchmarks");
  w.begin_array();
  w.begin_object();
  w.key("name");
  w.value("perf_construction/build \"quoted\"\n");
  w.key("wall");
  w.value(0.00123);
  w.key("failed");
  w.value(false);
  w.end_object();
  w.end_array();
  w.end_object();

  const JsonValue doc = json_parse(w.str());
  ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
  EXPECT_EQ(doc.at("schema").string, "ftdb-bench-v1");
  EXPECT_DOUBLE_EQ(doc.at("seed").number, 2026.0);
  EXPECT_TRUE(doc.at("ok").boolean);
  const auto& benchmarks = doc.at("benchmarks").array;
  ASSERT_EQ(benchmarks.size(), 1u);
  EXPECT_EQ(benchmarks[0].at("name").string, "perf_construction/build \"quoted\"\n");
  EXPECT_DOUBLE_EQ(benchmarks[0].at("wall").number, 0.00123);
  EXPECT_FALSE(benchmarks[0].at("failed").boolean);
}

TEST(JsonParse, ParsesScalarsAndNesting) {
  const JsonValue v = json_parse(R"({"a": [1, -2.5e3, null, {"b": []}], "c": "A"})");
  const auto& a = v.at("a").array;
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a[1].number, -2500.0);
  EXPECT_TRUE(a[2].is_null());
  EXPECT_EQ(a[3].at("b").array.size(), 0u);
  EXPECT_EQ(v.at("c").string, "A");
}

TEST(JsonParse, FindReturnsNullptrForMissingKeys) {
  const JsonValue v = json_parse(R"({"x": 1})");
  EXPECT_EQ(v.find("y"), nullptr);
  EXPECT_THROW(v.at("y"), std::runtime_error);
  EXPECT_EQ(v.at("x").find("anything"), nullptr);  // not an object
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), std::runtime_error);
  EXPECT_THROW(json_parse("{"), std::runtime_error);
  EXPECT_THROW(json_parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json_parse("tru"), std::runtime_error);
  EXPECT_THROW(json_parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json_parse("1 2"), std::runtime_error);
  EXPECT_THROW(json_parse("1..2"), std::runtime_error);
}

}  // namespace
