// Tests for the bus arbitration model and the Section V slowdown claims.
#include <gtest/gtest.h>

#include "ft/bus_ft.hpp"
#include "sim/bus_engine.hpp"
#include "topology/debruijn.hpp"

namespace ftdb::sim {
namespace {

TEST(DebruijnRoundTransfers, TwoPerNodeMinusSelfLoops) {
  const auto transfers = debruijn_round_transfers(3);
  // 8 nodes * 2 sends, minus the self-sends of nodes 0 and 7.
  EXPECT_EQ(transfers.size(), 14u);
}

TEST(SchedulePointToPoint, DualPortOneCycle) {
  // Every node sends its (at most) two values on distinct links: 1 cycle.
  const Graph g = debruijn_base2(4);
  const auto transfers = debruijn_round_transfers(4);
  const auto result = schedule_point_to_point(g, transfers, 2);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.makespan, 1u);
}

TEST(SchedulePointToPoint, SinglePortTwoCycles) {
  const Graph g = debruijn_base2(4);
  const auto transfers = debruijn_round_transfers(4);
  const auto result = schedule_point_to_point(g, transfers, 1);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.makespan, 2u);
}

TEST(ScheduleBus, SerializesOnTheSharedBus) {
  // On the bus fabric a node's two sends share its single driven bus: 2 cycles.
  const BusGraph fabric = bus_debruijn_base2(4);
  const auto transfers = debruijn_round_transfers(4);
  const auto result = schedule_bus(fabric, transfers, 2);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.makespan, 2u);
}

TEST(SectionV, SlowdownClaims) {
  // "approximately a factor of 2 slower ... if two different values [can] be
  // sent in unit time" and "little or no slowdown if only one value".
  const unsigned h = 5;
  const Graph g = debruijn_base2(h);
  const BusGraph fabric = bus_debruijn_base2(h);
  const auto transfers = debruijn_round_transfers(h);

  const auto p2p_dual = schedule_point_to_point(g, transfers, 2);
  const auto p2p_single = schedule_point_to_point(g, transfers, 1);
  const auto bus_dual = schedule_bus(fabric, transfers, 2);
  const auto bus_single = schedule_bus(fabric, transfers, 1);

  // Dual-send processors: bus is ~2x slower.
  EXPECT_EQ(bus_dual.makespan, 2 * p2p_dual.makespan);
  // Single-send processors: no slowdown at all.
  EXPECT_EQ(bus_single.makespan, p2p_single.makespan);
}

TEST(ScheduleBus, FtFabricCarriesReconfiguredRound) {
  // Transfers between reconfigured images ride the FT buses.
  const unsigned h = 3;
  const unsigned k = 1;
  const BusGraph fabric = bus_ft_debruijn_base2(h, k);
  const FaultSet faults(fabric.num_nodes(), {2});
  const auto phi = monotone_embedding(faults);
  std::vector<Transfer> transfers;
  for (const Transfer& t : debruijn_round_transfers(h)) {
    transfers.push_back(Transfer{phi[t.src], phi[t.dst]});
  }
  const auto result = schedule_bus(fabric, transfers, 1);
  EXPECT_TRUE(result.feasible);
  EXPECT_GE(result.makespan, 2u);
}

TEST(SchedulePointToPoint, InfeasibleTransferFlagged) {
  const Graph g = debruijn_base2(3);
  const auto result = schedule_point_to_point(g, {{0, 5}}, 1);  // 0-5 not an edge
  EXPECT_FALSE(result.feasible);
}

TEST(ScheduleBus, MemberToMemberForbidden) {
  // The restricted discipline: members of the same bus cannot talk directly.
  const BusGraph fabric(3, {Bus{0, {1, 2}}});
  const auto result = schedule_bus(fabric, {{1, 2}}, 1);
  EXPECT_FALSE(result.feasible);
}

TEST(ScheduleBus, MemberCanAnswerDriver) {
  const BusGraph fabric(3, {Bus{0, {1, 2}}});
  const auto result = schedule_bus(fabric, {{1, 0}, {0, 1}, {2, 0}}, 1);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.makespan, 3u);  // all three share the one bus
}

TEST(Schedulers, ZeroPortsThrows) {
  const Graph g = debruijn_base2(3);
  const BusGraph fabric = bus_debruijn_base2(3);
  EXPECT_THROW(schedule_point_to_point(g, {}, 0), std::invalid_argument);
  EXPECT_THROW(schedule_bus(fabric, {}, 0), std::invalid_argument);
}

TEST(Schedulers, EmptyTransfersZeroMakespan) {
  const Graph g = debruijn_base2(3);
  EXPECT_EQ(schedule_point_to_point(g, {}, 1).makespan, 0u);
  EXPECT_EQ(schedule_bus(bus_debruijn_base2(3), {}, 1).makespan, 0u);
}

}  // namespace
}  // namespace ftdb::sim
