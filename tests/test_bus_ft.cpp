// Tests for the Section V bus implementations: structure, degree 2k+3,
// tolerance under the restricted bus discipline, and bus-fault conversion.
#include <gtest/gtest.h>

#include "ft/bus_ft.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/tolerance.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

TEST(BusDeBruijn, OneBusPerNodeWithShiftBlock) {
  const BusGraph fabric = bus_debruijn_base2(3);
  EXPECT_EQ(fabric.num_nodes(), 8u);
  EXPECT_EQ(fabric.num_buses(), 8u);
  // Node i drives a bus to {2i, 2i+1} mod 8.
  const Bus& b3 = fabric.bus(3);
  EXPECT_EQ(b3.driver, 3u);
  EXPECT_EQ(b3.members, (std::vector<NodeId>{6, 7}));
}

TEST(BusDeBruijn, RealizesTheDeBruijnGraph) {
  for (unsigned h = 3; h <= 6; ++h) {
    EXPECT_TRUE(bus_debruijn_base2(h).realized_graph().same_structure(debruijn_base2(h)))
        << "h=" << h;
  }
}

TEST(BusDeBruijn, DegreeAtMostThree) {
  // Each node drives 1 bus and is a member of at most 2 others.
  for (unsigned h = 3; h <= 6; ++h) {
    EXPECT_LE(bus_debruijn_base2(h).max_bus_degree(), 3u) << "h=" << h;
  }
}

TEST(BusFtDeBruijn, Fig4Structure) {
  // Paper Fig. 4: B^1_{2,3} with buses — 9 nodes, 9 buses, each bus a block
  // of 2k+2 = 4 consecutive nodes starting at (2i - 1) mod 9.
  const BusGraph fabric = bus_ft_debruijn_base2(3, 1);
  EXPECT_EQ(fabric.num_nodes(), 9u);
  EXPECT_EQ(fabric.num_buses(), 9u);
  const Bus& b0 = fabric.bus(0);
  EXPECT_EQ(b0.driver, 0u);
  // Block {8, 0, 1, 2} with the driver itself excluded from the member list.
  EXPECT_EQ(b0.members, (std::vector<NodeId>{1, 2, 8}));
}

TEST(BusFtDeBruijn, BusBlockMatchesPointToPointNeighborhood) {
  // The bus of node i must cover exactly the forward block the point-to-point
  // construction connects i to, so communicability == FT-graph adjacency.
  const unsigned h = 4;
  const unsigned k = 2;
  const BusGraph fabric = bus_ft_debruijn_base2(h, k);
  const Graph ft = ft_debruijn_base2(h, k);
  for (std::size_t u = 0; u < fabric.num_nodes(); ++u) {
    for (std::size_t v = 0; v < fabric.num_nodes(); ++v) {
      if (u == v) continue;
      EXPECT_EQ(fabric.can_communicate(static_cast<NodeId>(u), static_cast<NodeId>(v)),
                ft.has_edge(static_cast<NodeId>(u), static_cast<NodeId>(v)))
          << "u=" << u << " v=" << v;
    }
  }
}

class BusDegree : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(BusDegree, SectionV_DegreeAtMost2kPlus3) {
  const auto [h, k] = GetParam();
  const BusGraph fabric = bus_ft_debruijn_base2(h, k);
  EXPECT_LE(fabric.max_bus_degree(), bus_ft_degree_bound(k)) << "h=" << h << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BusDegree,
                         ::testing::Values(std::pair<unsigned, unsigned>{3, 0},
                                           std::pair<unsigned, unsigned>{3, 1},
                                           std::pair<unsigned, unsigned>{4, 1},
                                           std::pair<unsigned, unsigned>{4, 2},
                                           std::pair<unsigned, unsigned>{5, 3},
                                           std::pair<unsigned, unsigned>{6, 2},
                                           std::pair<unsigned, unsigned>{7, 4}));

TEST(BusDegree, HalvesThePointToPointDegree) {
  // The Section V motivation: 2k+3 vs 4k+4 — "almost a factor of 2".
  for (unsigned k = 1; k <= 5; ++k) {
    EXPECT_LT(2 * bus_ft_degree_bound(k), (4u * k + 4) + 3);
    EXPECT_LE(bus_ft_degree_bound(k), (4u * k + 4) / 2 + 1);
  }
}

class BusTolerance : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(BusTolerance, ExhaustiveNodeFaultTolerance) {
  const auto [h, k] = GetParam();
  const Graph target = debruijn_base2(h);
  const BusGraph fabric = bus_ft_debruijn_base2(h, k);
  bool all_ok = true;
  for_each_fault_set(fabric.num_nodes(), k, [&](const std::vector<NodeId>& subset) {
    if (!bus_monotone_embedding_survives(target, fabric, FaultSet(fabric.num_nodes(), subset))) {
      all_ok = false;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(all_ok) << "h=" << h << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BusTolerance,
                         ::testing::Values(std::pair<unsigned, unsigned>{3, 1},
                                           std::pair<unsigned, unsigned>{3, 2},
                                           std::pair<unsigned, unsigned>{4, 1},
                                           std::pair<unsigned, unsigned>{4, 2},
                                           std::pair<unsigned, unsigned>{5, 1}));

TEST(BusFaults, DriverConversionToleratesBusFailure) {
  // Fig. 5 scenario + the bus-fault rule: a faulty bus is handled by treating
  // its driver as faulty, then reconfiguring as usual.
  const unsigned h = 3;
  const unsigned k = 1;
  const Graph target = debruijn_base2(h);
  const BusGraph fabric = bus_ft_debruijn_base2(h, k);
  for (std::uint32_t bad_bus = 0; bad_bus < fabric.num_buses(); ++bad_bus) {
    const auto faults = resolve_bus_faults(fabric, k, {}, {bad_bus});
    ASSERT_TRUE(faults.has_value());
    EXPECT_TRUE(bus_monotone_embedding_survives(target, fabric, *faults)) << "bus " << bad_bus;
  }
}

TEST(BusFaults, CombinedNodeAndBusFaultsWithinBudget) {
  const BusGraph fabric = bus_ft_debruijn_base2(4, 2);
  // One node fault + one bus fault = 2 converted node faults <= k = 2.
  const auto faults = resolve_bus_faults(fabric, 2, {5}, {11});
  ASSERT_TRUE(faults.has_value());
  EXPECT_EQ(faults->count(), 2u);
  EXPECT_TRUE(faults->is_faulty(5));
  EXPECT_TRUE(faults->is_faulty(11));  // bus 11's driver is node 11
}

TEST(BusFaults, OverBudgetRejected) {
  const BusGraph fabric = bus_ft_debruijn_base2(3, 1);
  EXPECT_FALSE(resolve_bus_faults(fabric, 1, {0}, {5}).has_value());
}

TEST(BusFaults, DuplicateDriverAndNodeFaultCollapses) {
  const BusGraph fabric = bus_ft_debruijn_base2(3, 1);
  // Node 4 faulty and bus 4 (driver 4) faulty: only one distinct fault.
  const auto faults = resolve_bus_faults(fabric, 1, {4}, {4});
  ASSERT_TRUE(faults.has_value());
  EXPECT_EQ(faults->count(), 1u);
}

}  // namespace
}  // namespace ftdb
