// Unit tests for the bus hypergraph substrate (Section V machinery).
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/bus_graph.hpp"

namespace ftdb {
namespace {

TEST(BusGraph, BasicIncidence) {
  BusGraph bg(4, {Bus{0, {1, 2}}, Bus{3, {0}}});
  EXPECT_EQ(bg.num_nodes(), 4u);
  EXPECT_EQ(bg.num_buses(), 2u);
  EXPECT_EQ(bg.bus_degree(0), 2u);  // drives bus 0, member of bus 1
  EXPECT_EQ(bg.bus_degree(1), 1u);
  EXPECT_EQ(bg.bus_degree(3), 1u);
  EXPECT_EQ(bg.max_bus_degree(), 2u);
}

TEST(BusGraph, DriverRemovedFromMembers) {
  BusGraph bg(3, {Bus{1, {1, 0, 2, 2}}});
  const Bus& b = bg.bus(0);
  EXPECT_EQ(b.members, (std::vector<NodeId>{0, 2}));
}

TEST(BusGraph, OutOfRangeThrows) {
  EXPECT_THROW(BusGraph(2, {Bus{2, {0}}}), std::out_of_range);
  EXPECT_THROW(BusGraph(2, {Bus{0, {5}}}), std::out_of_range);
}

TEST(BusGraph, RestrictedCommunication) {
  // Driver 0 with members {1, 2}: 0<->1 and 0<->2 allowed; 1<->2 is NOT,
  // because the paper restricts buses to driver<->member use.
  BusGraph bg(3, {Bus{0, {1, 2}}});
  EXPECT_TRUE(bg.can_communicate(0, 1));
  EXPECT_TRUE(bg.can_communicate(1, 0));
  EXPECT_TRUE(bg.can_communicate(0, 2));
  EXPECT_FALSE(bg.can_communicate(1, 2));
  EXPECT_FALSE(bg.can_communicate(0, 0));
}

TEST(BusGraph, RealizedGraphIsDriverMemberStar) {
  BusGraph bg(4, {Bus{0, {1, 2}}, Bus{3, {2}}});
  Graph g = bg.realized_graph();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(BusGraph, BusFaultsBecomeDriverFaults) {
  BusGraph bg(4, {Bus{0, {1}}, Bus{2, {3}}, Bus{3, {0}}});
  auto faults = bg.bus_faults_to_node_faults({1, 2});
  EXPECT_EQ(faults, (std::vector<NodeId>{2, 3}));
}

TEST(BusGraph, BusFaultsDedupDrivers) {
  BusGraph bg(2, {Bus{0, {1}}, Bus{0, {1}}});
  auto faults = bg.bus_faults_to_node_faults({0, 1});
  EXPECT_EQ(faults, (std::vector<NodeId>{0}));
}

TEST(BusGraph, BadBusIndexThrows) {
  BusGraph bg(2, {Bus{0, {1}}});
  EXPECT_THROW(bg.bus_faults_to_node_faults({7}), std::out_of_range);
}

}  // namespace
}  // namespace ftdb
