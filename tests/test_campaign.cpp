// Campaign engine tests: spec parsing, fault-model properties, streaming
// statistics, scheduling-independent determinism, checkpoint/resume
// identity, and the statistical-sanity check tying the iid model's empirical
// survival back to the paper's binomial tail (ft/spares.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <random>

#include "campaign/fault_models.hpp"
#include "campaign/report.hpp"
#include "campaign/rng.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "ft/bus_ft.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/spares.hpp"
#include "topology/debruijn.hpp"

namespace ftdb::campaign {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "test";
  spec.seed = 7;
  spec.trials = 200;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}, {TopologyFamily::ShuffleExchange, 2, 3}};
  spec.spares = {0, 2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.05, 1.0, 100.0, 1.0},
                       {FaultModelKind::Adversarial, 0.05, 1.0, 100.0, 1.0}};
  spec.metrics = {true, false, true};
  return spec;
}

TEST(TrialRng, CounterBasedStreamsAreStable) {
  TrialRng a = TrialRng::for_trial(42, 3, 17);
  TrialRng b = TrialRng::for_trial(42, 3, 17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // Different counters diverge immediately.
  TrialRng c = TrialRng::for_trial(42, 3, 18);
  TrialRng d = TrialRng::for_trial(42, 4, 17);
  TrialRng e = TrialRng::for_trial(43, 3, 17);
  TrialRng base = TrialRng::for_trial(42, 3, 17);
  const std::uint64_t first = base.next_u64();
  EXPECT_NE(first, c.next_u64());
  EXPECT_NE(first, d.next_u64());
  EXPECT_NE(first, e.next_u64());
}

TEST(TrialRng, UnitDrawsAreInRange) {
  TrialRng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(StreamingStats, MatchesDirectMomentsAndMergeIsExactOnSplit) {
  std::mt19937_64 rng(5);
  std::vector<double> xs(257);
  double sum = 0.0;
  for (double& x : xs) {
    x = std::uniform_real_distribution<double>(-3.0, 7.0)(rng);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  const double variance = ss / static_cast<double>(xs.size() - 1);

  StreamingStats whole;
  for (const double x : xs) whole.add(x);
  EXPECT_NEAR(whole.mean, mean, 1e-12);
  EXPECT_NEAR(whole.variance(), variance, 1e-10);

  StreamingStats left, right;
  for (std::size_t i = 0; i < xs.size(); ++i) (i < 100 ? left : right).add(xs[i]);
  left.merge(right);
  EXPECT_EQ(left.count, whole.count);
  EXPECT_NEAR(left.mean, whole.mean, 1e-12);
  EXPECT_NEAR(left.m2, whole.m2, 1e-9);
  EXPECT_EQ(left.min, whole.min);
  EXPECT_EQ(left.max, whole.max);
}

TEST(WilsonInterval, BracketsTheRateAndTightensWithN) {
  const WilsonInterval small = wilson_interval(8, 10);
  const WilsonInterval large = wilson_interval(800, 1000);
  EXPECT_LT(small.lo, 0.8);
  EXPECT_GT(small.hi, 0.8);
  EXPECT_LT(large.lo, 0.8);
  EXPECT_GT(large.hi, 0.8);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
  // Degenerate corners stay inside [0, 1].
  EXPECT_EQ(wilson_interval(0, 0).lo, 0.0);
  EXPECT_EQ(wilson_interval(0, 0).hi, 1.0);
  EXPECT_GE(wilson_interval(0, 50).lo, 0.0);
  EXPECT_LE(wilson_interval(50, 50).hi, 1.0);
}

TEST(ScenarioSpec, ParseExampleAndRoundTrip) {
  const ScenarioSpec spec = parse_scenario_spec(example_spec_json());
  EXPECT_EQ(spec.name, "example");
  EXPECT_EQ(spec.trials, 200u);
  EXPECT_EQ(spec.topologies.size(), 2u);
  EXPECT_EQ(spec.spares.size(), 3u);
  EXPECT_EQ(spec.fault_models.size(), 5u);
  EXPECT_EQ(spec.fault_models.back().kind, FaultModelKind::Block);
  EXPECT_EQ(spec.fault_models.back().width, 3u);
  EXPECT_TRUE(spec.metrics.diameter);
  EXPECT_FALSE(spec.metrics.stretch);
  EXPECT_TRUE(spec.metrics.mttf);
  // Canonical JSON reparses to the same canonical JSON (fixed point).
  const std::string canon = scenario_spec_to_json(spec);
  EXPECT_EQ(canon, scenario_spec_to_json(parse_scenario_spec(canon)));
  EXPECT_EQ(spec_fingerprint(spec), spec_fingerprint(parse_scenario_spec(canon)));
}

TEST(ScenarioSpec, GridDimensionsExpand) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "topologies": [{"family": "debruijn", "base": [2, 3], "digits": [3, 4]}],
    "spares": [0, 1, 2],
    "fault_models": [{"kind": "iid", "p": 0.1}]
  })");
  EXPECT_EQ(spec.topologies.size(), 4u);  // 2 bases x 2 digit values
  const auto cells = expand_grid(spec);
  ASSERT_EQ(cells.size(), 12u);
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);
}

TEST(ScenarioSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_scenario_spec("not json"), std::runtime_error);
  EXPECT_THROW(parse_scenario_spec(R"({"spares": [1]})"), std::runtime_error);
  EXPECT_THROW(parse_scenario_spec(R"({
    "topologies": [{"family": "torus", "digits": 3}],
    "spares": [1], "fault_models": [{"kind": "iid", "p": 0.1}]
  })"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_spec(R"({
    "topologies": [{"family": "debruijn", "digits": 3}],
    "spares": [1], "fault_models": [{"kind": "iid", "p": 1.5}]
  })"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_spec(R"({
    "topologies": [{"family": "debruijn", "digits": 3}],
    "spares": [1], "fault_models": [{"kind": "iid", "p": 0.1}],
    "metrics": ["latency"]
  })"),
               std::runtime_error);
  // "base" on a base-2-only family must be rejected, not silently dropped.
  EXPECT_THROW(parse_scenario_spec(R"({
    "topologies": [{"family": "shuffle_exchange", "base": [3, 4], "digits": 4}],
    "spares": [1], "fault_models": [{"kind": "iid", "p": 0.1}]
  })"),
               std::runtime_error);
}

TEST(FaultModels, DrawsAreDeterministicPerTrialKey) {
  const Graph fabric = ft_debruijn_base2(4, 2);
  for (const FaultModelKind kind :
       {FaultModelKind::IidBernoulli, FaultModelKind::Clustered, FaultModelKind::Weibull,
        FaultModelKind::Adversarial, FaultModelKind::Block}) {
    FaultModelSpec spec;
    spec.kind = kind;
    spec.p = 0.08;
    spec.shape = 1.3;
    spec.scale = 50.0;
    spec.horizon = 10.0;
    const auto model = make_fault_model(spec);
    model->prepare(fabric, 2);
    TrialRng r1 = TrialRng::for_trial(9, 0, 5);
    TrialRng r2 = TrialRng::for_trial(9, 0, 5);
    const FaultDraw a = model->draw(fabric, 2, r1);
    const FaultDraw b = model->draw(fabric, 2, r2);
    EXPECT_EQ(a.faults.nodes(), b.faults.nodes()) << fault_model_kind_name(kind);
    EXPECT_EQ(a.spare_exhaustion_time, b.spare_exhaustion_time);
  }
}

TEST(FaultModels, IidFaultCountTracksExpectation) {
  const Graph fabric = ft_debruijn_base2(5, 3);  // 35 nodes
  const auto model = make_fault_model({FaultModelKind::IidBernoulli, 0.1, 1.0, 1.0, 1.0});
  model->prepare(fabric, 3);
  double total = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    TrialRng rng = TrialRng::for_trial(11, 0, static_cast<std::uint64_t>(t));
    total += static_cast<double>(model->draw(fabric, 3, rng).faults.count());
  }
  const double expected = 0.1 * static_cast<double>(fabric.num_nodes());
  EXPECT_NEAR(total / trials, expected, 0.3);  // sd of the mean ~ 0.03
}

TEST(FaultModels, ClusteredFaultsAreSeedNeighborhoodUnions) {
  const Graph fabric = ft_debruijn_base2(4, 2);
  const auto model = make_fault_model({FaultModelKind::Clustered, 0.05, 1.0, 1.0, 1.0});
  model->prepare(fabric, 2);
  for (int t = 0; t < 50; ++t) {
    TrialRng rng = TrialRng::for_trial(3, 0, static_cast<std::uint64_t>(t));
    const FaultDraw draw = model->draw(fabric, 2, rng);
    // The fault set is S u N(S) for some seed set S, so whenever it is
    // non-empty at least one faulty node (a seed) has its entire closed
    // neighborhood faulty.
    if (draw.faults.count() > 0) {
      bool some_full_neighborhood = false;
      for (const NodeId f : draw.faults.nodes()) {
        bool full = true;
        for (const NodeId u : fabric.neighbors(f)) full = full && draw.faults.is_faulty(u);
        some_full_neighborhood = some_full_neighborhood || full;
      }
      EXPECT_TRUE(some_full_neighborhood) << "no plausible seed in fault set, trial " << t;
    }
  }
}

TEST(FaultModels, AdversarialTargetsHighestDegreesFirst) {
  const Graph fabric = ft_debruijn_base2(4, 2);
  const auto model = make_fault_model({FaultModelKind::Adversarial, 0.15, 1.0, 1.0, 1.0});
  model->prepare(fabric, 2);
  // Expected attack order: degrees descending, ties by id.
  std::vector<NodeId> order(fabric.num_nodes());
  for (std::size_t v = 0; v < order.size(); ++v) order[v] = static_cast<NodeId>(v);
  std::stable_sort(order.begin(), order.end(),
                   [&](NodeId a, NodeId b) { return fabric.degree(a) > fabric.degree(b); });
  for (int t = 0; t < 20; ++t) {
    TrialRng rng = TrialRng::for_trial(4, 0, static_cast<std::uint64_t>(t));
    const FaultDraw draw = model->draw(fabric, 2, rng);
    std::vector<NodeId> expected(order.begin(),
                                 order.begin() + static_cast<std::ptrdiff_t>(draw.faults.count()));
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(draw.faults.nodes(), expected);
  }
}

TEST(FaultModels, WeibullHorizonMonotone) {
  const Graph fabric = ft_debruijn_base2(4, 1);
  const auto narrow = make_fault_model({FaultModelKind::Weibull, 0.0, 1.5, 100.0, 10.0});
  const auto wide = make_fault_model({FaultModelKind::Weibull, 0.0, 1.5, 100.0, 60.0});
  for (int t = 0; t < 50; ++t) {
    TrialRng r1 = TrialRng::for_trial(6, 0, static_cast<std::uint64_t>(t));
    TrialRng r2 = TrialRng::for_trial(6, 0, static_cast<std::uint64_t>(t));
    const FaultDraw a = narrow->draw(fabric, 1, r1);
    const FaultDraw b = wide->draw(fabric, 1, r2);
    // Same lifetimes, wider window: the narrow fault set is contained in the
    // wide one, and the exhaustion clock is identical.
    for (const NodeId f : a.faults.nodes()) EXPECT_TRUE(b.faults.is_faulty(f));
    EXPECT_EQ(a.spare_exhaustion_time, b.spare_exhaustion_time);
  }
}

TEST(FaultModels, BlockFaultsAreOneCyclicRunWithinWidth) {
  const Graph fabric = ft_debruijn_base2(4, 2);  // 18 nodes
  const std::uint64_t max_width = 5;
  FaultModelSpec spec;
  spec.kind = FaultModelKind::Block;
  spec.p = 0.1;
  spec.width = max_width;
  const auto model = make_fault_model(spec);
  model->prepare(fabric, 2);
  const std::size_t n = fabric.num_nodes();
  for (int t = 0; t < 200; ++t) {
    TrialRng rng = TrialRng::for_trial(21, 0, static_cast<std::uint64_t>(t));
    const FaultDraw draw = model->draw(fabric, 2, rng);
    const std::uint64_t width = draw.faults.count();
    ASSERT_GE(width, 1u);
    ASSERT_LE(width, max_width);
    // Contiguity on the label cycle: the complement of the fault set contains
    // exactly one maximal run (equivalently, the fault set has exactly one
    // cyclic boundary where faulty -> healthy).
    std::size_t boundaries = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const bool here = draw.faults.is_faulty(static_cast<NodeId>(v));
      const bool next = draw.faults.is_faulty(static_cast<NodeId>((v + 1) % n));
      if (here && !next) ++boundaries;
    }
    EXPECT_EQ(boundaries, width == n ? 0u : 1u) << "trial " << t;
    // The clock: a block outweighing the spares exhausts them at its onset,
    // smaller blocks never do.
    if (width >= 3) {
      EXPECT_TRUE(std::isfinite(draw.spare_exhaustion_time)) << "trial " << t;
      EXPECT_GE(draw.spare_exhaustion_time, 1.0);
    } else {
      EXPECT_TRUE(std::isinf(draw.spare_exhaustion_time)) << "trial " << t;
    }
  }
}

TEST(FaultModels, BlockSpecRoundTripsThroughCanonicalJson) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "topologies": [{"family": "debruijn", "digits": 4}],
    "spares": [2],
    "fault_models": [{"kind": "block", "p": 0.07, "width": 6}]
  })");
  ASSERT_EQ(spec.fault_models.size(), 1u);
  EXPECT_EQ(spec.fault_models[0].kind, FaultModelKind::Block);
  EXPECT_EQ(spec.fault_models[0].width, 6u);
  EXPECT_EQ(spec.fault_models[0].label(), "block(p=0.07,w=6)");
  const std::string canon = scenario_spec_to_json(spec);
  EXPECT_EQ(canon, scenario_spec_to_json(parse_scenario_spec(canon)));
  EXPECT_THROW(parse_scenario_spec(R"({
    "topologies": [{"family": "debruijn", "digits": 4}],
    "spares": [2],
    "fault_models": [{"kind": "block", "p": 0.07, "width": 0}]
  })"),
               std::runtime_error);
}

TEST(Campaign, BlockModelSurvivesIffBlockFitsTheSpares) {
  // Point-to-point B^k tolerates *any* <= k faults, so under the block model
  // the survival curve collapses to "width <= k": every under-budget block is
  // absorbed regardless of offset.
  ScenarioSpec spec;
  spec.seed = 31;
  spec.trials = 400;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}};
  spec.spares = {2};
  spec.fault_models = {
      {FaultModelKind::Block, 0.1, 1.0, 100.0, 1.0, 4}};
  spec.metrics = {false, false, true};
  const CampaignResult result = run_campaign(spec, {.threads = 2});
  const ScenarioResult& r = result.scenarios.front();
  EXPECT_EQ(r.trials, 400u);
  for (const SurvivalPoint& p : r.survival_curve) {
    if (p.faults <= 2) {
      EXPECT_EQ(p.survived, p.trials) << "width=" << p.faults;
    } else {
      EXPECT_EQ(p.survived, 0u) << "width=" << p.faults;
    }
  }
}

TEST(Campaign, WeibullAnalyticMttfMatchesEmpiricalMean) {
  ScenarioSpec spec;
  spec.seed = 404;
  spec.trials = 3000;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}};
  spec.spares = {2};
  spec.fault_models = {{FaultModelKind::Weibull, 0.0, 1.5, 300.0, 40.0}};
  spec.metrics = {false, false, true};
  const CampaignResult result = run_campaign(spec, {.threads = 2});
  const ScenarioResult& r = result.scenarios.front();
  ASSERT_TRUE(std::isfinite(r.analytic_mttf));
  EXPECT_NEAR(r.analytic_mttf, weibull_mttf(r.fabric_nodes, 2, 1.5, 300.0), 1e-12);
  // The model draws full lifetimes, so the empirical column estimates exactly
  // this expectation: check within 5 standard errors.
  ASSERT_EQ(r.mttf.count, spec.trials);
  const double stderr_mean = r.mttf.stddev() / std::sqrt(static_cast<double>(r.mttf.count));
  EXPECT_NEAR(r.mttf.mean, r.analytic_mttf, 5.0 * stderr_mean);
}

TEST(Campaign, SampledStretchIsDeterministicAndBounded) {
  ScenarioSpec spec;
  spec.seed = 77;
  spec.trials = 60;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}};
  spec.spares = {2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.05, 1.0, 1.0, 1.0}};
  spec.metrics = {false, true, false};
  spec.metrics.stretch_sample_pairs = 24;

  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions pooled;
  pooled.threads = 3;
  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, pooled);
  EXPECT_EQ(campaign_report_json(a), campaign_report_json(b));

  const ScenarioResult& r = a.scenarios.front();
  ASSERT_GT(r.route_stretch.count, 0u);
  EXPECT_GE(r.route_stretch.min, 1.0);
  EXPECT_LE(r.route_stretch.max, 4.0);  // logical routes never exceed h hops

  // The knob is part of the canonical spec (and so of the fingerprint).
  ScenarioSpec full = spec;
  full.metrics.stretch_sample_pairs = 0;
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(full));

  // Sampling can only lower the maximum: the full audit dominates it.
  ScenarioSpec audit = spec;
  audit.metrics.stretch_sample_pairs = 0;
  const CampaignResult c = run_campaign(audit, serial);
  EXPECT_LE(r.route_stretch.max, c.scenarios.front().route_stretch.max + 1e-12);
}

TEST(Campaign, ShuffleExchangeStretchIsPopulatedAndBounded) {
  // The stretch metric now covers the whole point-to-point family: an SE cell
  // with stretch on must actually populate route_stretch (it used to be a
  // de Bruijn-only metric), with the SE route-length bound 2h as the ceiling.
  ScenarioSpec spec;
  spec.seed = 19;
  spec.trials = 60;
  spec.topologies = {{TopologyFamily::ShuffleExchange, 2, 3}};
  spec.spares = {2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.08, 1.0, 1.0, 1.0}};
  spec.metrics = {false, true, false};

  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions pooled;
  pooled.threads = 3;
  const CampaignResult a = run_campaign(spec, serial);
  EXPECT_EQ(campaign_report_json(a), campaign_report_json(run_campaign(spec, pooled)));

  const ScenarioResult& r = a.scenarios.front();
  ASSERT_GT(r.route_stretch.count, 0u);
  EXPECT_GE(r.route_stretch.min, 1.0);
  EXPECT_LE(r.route_stretch.max, 6.0);  // SE logical routes never exceed 2h hops

  // Sampled SE stretch stays under the full audit, like the de Bruijn case.
  ScenarioSpec sampled = spec;
  sampled.metrics.stretch_sample_pairs = 24;
  const CampaignResult s = run_campaign(sampled, serial);
  ASSERT_GT(s.scenarios.front().route_stretch.count, 0u);
  EXPECT_LE(s.scenarios.front().route_stretch.max, r.route_stretch.max + 1e-12);
}

TEST(Campaign, ReportIsIndependentOfThreadCount) {
  const ScenarioSpec spec = small_spec();
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions pooled;
  pooled.threads = 3;
  const std::string a = campaign_report_json(run_campaign(spec, serial));
  const std::string b = campaign_report_json(run_campaign(spec, pooled));
  EXPECT_EQ(a, b);  // byte-identical, not merely statistically equal
}

TEST(Campaign, ResumeFromCheckpointReproducesTheFullReport) {
  const ScenarioSpec spec = small_spec();
  const CampaignResult full = run_campaign(spec, {.threads = 2});
  ASSERT_EQ(full.scenarios.size(), 8u);

  // Craft a mid-campaign checkpoint: only the first three scenarios done.
  const std::vector<ScenarioResult> partial(full.scenarios.begin(), full.scenarios.begin() + 3);
  const std::string ckpt_path = ::testing::TempDir() + "/ftdb_campaign_ckpt.json";
  {
    std::ofstream out(ckpt_path, std::ios::binary | std::ios::trunc);
    out << checkpoint_to_json(spec, partial);
  }
  CampaignOptions resume_opts;
  resume_opts.threads = 2;
  resume_opts.checkpoint_path = ckpt_path;
  resume_opts.resume = true;
  const CampaignResult resumed = run_campaign(spec, resume_opts);
  EXPECT_EQ(resumed.resumed_scenarios, 3u);
  EXPECT_EQ(campaign_report_json(resumed), campaign_report_json(full));
  EXPECT_EQ(campaign_report_markdown(resumed), campaign_report_markdown(full));
  EXPECT_EQ(campaign_report_csv(resumed), campaign_report_csv(full));
}

TEST(Campaign, CheckpointFingerprintMismatchIsRejected) {
  const ScenarioSpec spec = small_spec();
  ScenarioSpec other = spec;
  other.seed += 1;
  const std::string ckpt_path = ::testing::TempDir() + "/ftdb_campaign_ckpt2.json";
  {
    std::ofstream out(ckpt_path, std::ios::binary | std::ios::trunc);
    out << checkpoint_to_json(other, std::vector<ScenarioResult>{});
  }
  CampaignOptions opts;
  opts.threads = 1;
  opts.checkpoint_path = ckpt_path;
  opts.resume = true;
  EXPECT_THROW(run_campaign(spec, opts), std::runtime_error);
}

TEST(Campaign, EmpiricalSurvivalMatchesBinomialTail) {
  // Statistical sanity: under the iid model the paper's guarantee makes
  // machine survival exactly P[Binomial(N+k, p) <= k]; the empirical rate's
  // 99.9% Wilson interval must cover the analytic value.
  ScenarioSpec spec;
  spec.name = "stat";
  spec.seed = 1234;
  spec.trials = 4000;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}};
  spec.spares = {2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.06, 1.0, 1.0, 1.0}};
  spec.metrics = {false, false, false};
  const CampaignResult result = run_campaign(spec, {.threads = 2});
  ASSERT_EQ(result.scenarios.size(), 1u);
  const ScenarioResult& r = result.scenarios.front();
  const double analytic = static_cast<double>(survival_probability(16, 2, 0.06L));
  EXPECT_NEAR(r.analytic_survival, analytic, 1e-12);
  const WilsonInterval ci = r.success_ci(3.29);  // z for 99.9%
  EXPECT_GE(analytic, ci.lo) << "rate " << r.success_rate();
  EXPECT_LE(analytic, ci.hi) << "rate " << r.success_rate();
  // Survival curve partitions the trials and is consistent with the
  // theorem: every under-budget draw survives, every over-budget one dies.
  std::uint64_t total = 0;
  for (const SurvivalPoint& p : r.survival_curve) {
    total += p.trials;
    if (p.faults <= 2) {
      EXPECT_EQ(p.survived, p.trials) << "faults=" << p.faults;
    } else {
      EXPECT_EQ(p.survived, 0u) << "faults=" << p.faults;
    }
  }
  EXPECT_EQ(total, spec.trials);
}

TEST(Campaign, ReconfiguredDiameterMatchesTargetOnEverySuccess) {
  ScenarioSpec spec;
  spec.seed = 99;
  spec.trials = 300;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}};
  spec.spares = {2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.05, 1.0, 1.0, 1.0}};
  spec.metrics = {true, false, false};
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  const ScenarioResult& r = result.scenarios.front();
  ASSERT_GT(r.reconfig_success, 0u);
  EXPECT_EQ(r.reconfigured_diameter.count, r.reconfig_success);
  // The paper's reconfiguration is dilation-1: measured diameter is exactly
  // the target diameter on every successful trial (zero variance).
  EXPECT_EQ(r.reconfigured_diameter.min, static_cast<double>(r.target_diameter));
  EXPECT_EQ(r.reconfigured_diameter.max, static_cast<double>(r.target_diameter));
}

TEST(Campaign, BusFamilyRunsAndBoundsDegree) {
  ScenarioSpec spec;
  spec.seed = 5;
  spec.trials = 100;
  spec.topologies = {{TopologyFamily::Bus, 2, 3}};
  spec.spares = {1};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.05, 1.0, 1.0, 1.0}};
  spec.metrics = {true, false, true};
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  const ScenarioResult& r = result.scenarios.front();
  EXPECT_EQ(r.trials, 100u);
  EXPECT_EQ(r.target_nodes, 8u);
  EXPECT_EQ(r.fabric_nodes, 9u);  // 2^3 + 1
  EXPECT_GT(r.reconfig_success, 0u);
}

// --- work-stealing scheduler, block checkpoints, shard/merge -----------------

/// 4 cells x 600 trials = 3 blocks per cell: enough blocks that stealing,
/// out-of-order merges and mid-cell checkpoints all actually happen.
ScenarioSpec multiblock_spec() {
  ScenarioSpec spec;
  spec.name = "blocks";
  spec.seed = 99;
  spec.trials = 600;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}, {TopologyFamily::ShuffleExchange, 2, 3}};
  spec.spares = {0, 2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.05, 1.0, 100.0, 1.0}};
  spec.metrics = {true, false, true};
  return spec;
}

/// Runs one shard to completion and returns its parsed partial checkpoint.
Checkpoint run_shard(const ScenarioSpec& spec, const ShardSpec& shard, unsigned threads,
                     const std::string& tag) {
  CampaignOptions options;
  options.threads = threads;
  options.shard = shard;
  options.checkpoint_path = ::testing::TempDir() + "/ftdb_shard_" + tag + ".ckpt";
  run_campaign(spec, options);
  std::ifstream in(options.checkpoint_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_checkpoint(buf.str());
}

TEST(Scheduler, WorkStealingIsByteIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = multiblock_spec();
  ASSERT_EQ(num_trial_blocks(spec.trials), 3u);
  const std::string serial = campaign_report_json(run_campaign(spec, {.threads = 1}));
  for (const unsigned threads : {2u, 5u}) {
    EXPECT_EQ(serial, campaign_report_json(run_campaign(spec, {.threads = threads})))
        << threads << " threads";
  }
}

TEST(Scheduler, StopAfterBlocksWritesAResumableBlockGranularCheckpoint) {
  const ScenarioSpec spec = multiblock_spec();
  const std::string full = campaign_report_json(run_campaign(spec, {.threads = 2}));

  CampaignOptions crash;
  crash.threads = 1;
  crash.checkpoint_path = ::testing::TempDir() + "/ftdb_midcell.ckpt";
  crash.stop_after_blocks = 2;  // dies inside the first cell (3 blocks each)
  EXPECT_THROW(run_campaign(spec, crash), CampaignAborted);

  std::ifstream in(crash.checkpoint_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const Checkpoint ckpt = parse_checkpoint(buf.str());
  std::uint64_t blocks = 0;
  for (const CellProgress& c : ckpt.cells) blocks += c.prefix_blocks + c.extra.size();
  EXPECT_GE(blocks, 2u);
  // Mid-cell granularity: some cell stopped strictly between 0 and all blocks.
  bool mid_cell = false;
  for (const CellProgress& c : ckpt.cells) {
    mid_cell = mid_cell || (c.prefix_blocks > 0 && c.prefix_blocks < 3);
  }
  EXPECT_TRUE(mid_cell);

  CampaignOptions resume = crash;
  resume.threads = 3;
  resume.stop_after_blocks = 0;
  resume.resume = true;
  const CampaignResult resumed = run_campaign(spec, resume);
  EXPECT_GE(resumed.resumed_blocks, 2u);
  EXPECT_EQ(campaign_report_json(resumed), full);
}

TEST(Scheduler, PartialFinalBlockResumesCorrectly) {
  // 300 trials = one full block + a 44-trial tail block; crash between them.
  ScenarioSpec spec = multiblock_spec();
  spec.trials = 300;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}};
  spec.spares = {2};
  ASSERT_EQ(num_trial_blocks(spec.trials), 2u);
  const std::string full = campaign_report_json(run_campaign(spec, {.threads = 1}));

  CampaignOptions crash;
  crash.threads = 1;
  crash.checkpoint_path = ::testing::TempDir() + "/ftdb_tail.ckpt";
  crash.stop_after_blocks = 1;
  EXPECT_THROW(run_campaign(spec, crash), CampaignAborted);

  CampaignOptions resume = crash;
  resume.stop_after_blocks = 0;
  resume.resume = true;
  const CampaignResult resumed = run_campaign(spec, resume);
  EXPECT_EQ(resumed.resumed_blocks, 1u);
  EXPECT_EQ(resumed.scenarios.front().trials, 300u);
  EXPECT_EQ(campaign_report_json(resumed), full);
}

TEST(Shard, TwoShardsMergeByteIdenticalToSingleMachineRun) {
  const ScenarioSpec spec = multiblock_spec();
  const std::string reference = campaign_report_json(run_campaign(spec, {.threads = 1}));

  const Checkpoint s0 = run_shard(spec, {0, 2}, 3, "m0");
  const Checkpoint s1 = run_shard(spec, {1, 2}, 2, "m1");
  EXPECT_EQ(s0.shard.index, 0u);
  EXPECT_EQ(s1.shard.count, 2u);
  // Round-robin partition: each shard owns every second cell.
  for (const CellProgress& c : s0.cells) EXPECT_EQ(c.scenario_index % 2, 0u);
  for (const CellProgress& c : s1.cells) EXPECT_EQ(c.scenario_index % 2, 1u);

  const CampaignResult merged = merge_checkpoints(spec, {s0, s1});
  EXPECT_EQ(campaign_report_json(merged), reference);
  EXPECT_EQ(campaign_report_csv(merged), campaign_report_csv(run_campaign(spec, {.threads = 2})));
}

TEST(Shard, MergeOfOnePartialIsIdentity) {
  const ScenarioSpec spec = small_spec();
  const CampaignResult direct = run_campaign(spec, {.threads = 2});
  const Checkpoint whole = run_shard(spec, {0, 1}, 2, "whole");
  const CampaignResult merged = merge_checkpoints(spec, {whole});
  EXPECT_EQ(campaign_report_json(merged), campaign_report_json(direct));
}

TEST(Shard, MergeRejectsOverlapFingerprintMismatchAndGaps) {
  const ScenarioSpec spec = multiblock_spec();
  const Checkpoint s0 = run_shard(spec, {0, 2}, 2, "r0");
  const Checkpoint s1 = run_shard(spec, {1, 2}, 2, "r1");

  // Overlap: the same cells arriving twice must be rejected, not averaged.
  EXPECT_THROW(merge_checkpoints(spec, {s0, s1, s0}), std::runtime_error);
  // Coverage gap: a missing shard leaves cells uncovered.
  EXPECT_THROW(merge_checkpoints(spec, {s0}), std::runtime_error);
  // Fingerprint mismatch: partials of a different spec are rejected.
  ScenarioSpec other = spec;
  other.seed += 1;
  const Checkpoint o0 = run_shard(other, {0, 2}, 2, "o0");
  EXPECT_THROW(merge_checkpoints(spec, {o0, s1}), std::runtime_error);
  // Incomplete cell: a crash-cut partial cannot be merged.
  Checkpoint cut = s0;
  ASSERT_FALSE(cut.cells.empty());
  cut.cells.front().prefix_blocks -= 1;
  EXPECT_THROW(merge_checkpoints(spec, {cut, s1}), std::runtime_error);
  // Torn accumulator: all blocks claimed but the prefix carries fewer trials
  // (a corrupted file must not merge into a silently wrong report).
  Checkpoint torn = s0;
  torn.cells.front().prefix.trials -= 1;
  EXPECT_THROW(merge_checkpoints(spec, {torn, s1}), std::runtime_error);
  // The intact pair still merges (the guards above rejected for real reasons).
  EXPECT_EQ(merge_checkpoints(spec, {s0, s1}).scenarios.size(), 4u);
}

TEST(Shard, ResumingUnderTheWrongShardCoordinatesIsRejected) {
  const ScenarioSpec spec = multiblock_spec();
  CampaignOptions options;
  options.threads = 1;
  options.shard = {0, 2};
  options.checkpoint_path = ::testing::TempDir() + "/ftdb_wrongshard.ckpt";
  run_campaign(spec, options);

  CampaignOptions wrong = options;
  wrong.resume = true;
  wrong.shard = {1, 2};
  EXPECT_THROW(run_campaign(spec, wrong), std::runtime_error);
  wrong.shard = {0, 1};  // a whole-campaign run can't adopt a shard checkpoint either
  EXPECT_THROW(run_campaign(spec, wrong), std::runtime_error);
}

TEST(Checkpoint, BlockGranularProgressRoundTripsThroughJson) {
  const ScenarioSpec spec = multiblock_spec();
  // One block's genuine partial accumulators, replicated into a progress
  // shape with both a prefix and an out-of-prefix block.
  ScenarioSpec one_block = spec;
  one_block.trials = 256;
  const ScenarioResult partial = run_campaign(one_block, {.threads = 1}).scenarios.front();

  Checkpoint ckpt;
  ckpt.shard = {1, 3};
  CellProgress cp;
  cp.scenario_index = 1;
  cp.prefix_blocks = 1;
  cp.prefix = partial;
  cp.extra.emplace_back(2, partial);
  ckpt.cells.push_back(cp);

  const Checkpoint reparsed = parse_checkpoint(checkpoint_to_json(spec, ckpt));
  EXPECT_EQ(reparsed.fingerprint, spec_fingerprint(spec));
  EXPECT_EQ(reparsed.shard_stamp, shard_fingerprint(spec, {1, 3}));
  EXPECT_EQ(reparsed.shard.index, 1u);
  EXPECT_EQ(reparsed.shard.count, 3u);
  ASSERT_EQ(reparsed.cells.size(), 1u);
  const CellProgress& rp = reparsed.cells.front();
  EXPECT_EQ(rp.scenario_index, 1u);
  EXPECT_EQ(rp.prefix_blocks, 1u);
  ASSERT_EQ(rp.extra.size(), 1u);
  EXPECT_EQ(rp.extra.front().first, 2u);
  // Accumulators survive bit-exactly (the %.17g round-trip the byte-identity
  // guarantees rest on).
  EXPECT_EQ(rp.prefix.fault_count.mean, partial.fault_count.mean);
  EXPECT_EQ(rp.prefix.fault_count.m2, partial.fault_count.m2);
  EXPECT_EQ(rp.extra.front().second.mttf.m2, partial.mttf.m2);
  EXPECT_EQ(rp.prefix.survival_curve.size(), partial.survival_curve.size());

  // The shard stamp binds index *and* count.
  EXPECT_NE(shard_fingerprint(spec, {1, 3}), shard_fingerprint(spec, {1, 4}));
  EXPECT_NE(shard_fingerprint(spec, {1, 3}), shard_fingerprint(spec, {2, 3}));
  EXPECT_EQ(shard_fingerprint(spec, {0, 1}), spec_fingerprint(spec));
}

TEST(Shard, ValidationRejectsBadCoordinates) {
  const ScenarioSpec spec = small_spec();
  CampaignOptions options;
  options.threads = 1;
  options.shard = {3, 2};  // index out of range
  EXPECT_THROW(run_campaign(spec, options), std::runtime_error);
  options.shard = {0, 200};  // more shards than cells
  EXPECT_THROW(run_campaign(spec, options), std::runtime_error);
}

TEST(CampaignReport, ValidateAcceptsOwnOutputAndRejectsGarbage) {
  const CampaignResult result = run_campaign(small_spec(), {.threads = 2});
  const std::string json = campaign_report_json(result);
  EXPECT_EQ(validate_campaign_report(json), result.scenarios.size());
  EXPECT_THROW(validate_campaign_report("{}"), std::runtime_error);
  EXPECT_THROW(validate_campaign_report(R"({"schema": "ftdb-bench-v1"})"), std::runtime_error);
}

// --- collective metric -------------------------------------------------------

/// De Bruijn + SE cells with the collective metric on: small enough that the
/// per-trial schedule execution stays cheap, multi-block so determinism is
/// exercised across steals, checkpoints and shards.
ScenarioSpec collective_spec() {
  ScenarioSpec spec;
  spec.name = "collective";
  spec.seed = 17;
  spec.trials = 600;  // 3 blocks
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}, {TopologyFamily::ShuffleExchange, 2, 3}};
  spec.spares = {0, 2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.05, 1.0, 100.0, 1.0}};
  spec.metrics.diameter = false;
  spec.metrics.mttf = false;
  spec.metrics.collective = true;
  spec.metrics.collective_schedule = "all_to_all_bruck";
  return spec;
}

TEST(Collective, SpecParsesRoundTripsAndFingerprints) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "topologies": [{"family": "debruijn", "digits": 4}],
    "spares": [2],
    "fault_models": [{"kind": "iid", "p": 0.05}],
    "metrics": ["collective"],
    "collective_schedule": "allreduce_recursive_halving_doubling"
  })");
  EXPECT_TRUE(spec.metrics.collective);
  EXPECT_FALSE(spec.metrics.diameter);
  EXPECT_EQ(spec.metrics.collective_schedule, "allreduce_recursive_halving_doubling");
  const std::string canon = scenario_spec_to_json(spec);
  EXPECT_EQ(canon, scenario_spec_to_json(parse_scenario_spec(canon)));

  // The schedule choice is part of the spec identity.
  ScenarioSpec other = spec;
  other.metrics.collective_schedule = "allgather_bruck";
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(other));

  // An unknown schedule name is rejected up front, not at trial time.
  EXPECT_THROW(parse_scenario_spec(R"({
    "topologies": [{"family": "debruijn", "digits": 4}],
    "spares": [2],
    "fault_models": [{"kind": "iid", "p": 0.05}],
    "metrics": ["collective"],
    "collective_schedule": "all_to_all_quantum"
  })"),
               std::runtime_error);

  // Specs without the metric keep their pre-collective canonical form (and so
  // their fingerprints): the key only appears when the metric is on.
  const std::string plain = scenario_spec_to_json(small_spec());
  EXPECT_EQ(plain.find("collective"), std::string::npos);
}

TEST(Collective, SlowdownIsExactlyOneOnEverySuccessfulTrial) {
  // The end-to-end form of the dilation-1 claim: a successful reconfiguration
  // presents the identical logical graph, so the collective completes in
  // exactly the healthy baseline cycles — slowdown 1.0 with zero variance.
  ScenarioSpec spec = collective_spec();
  spec.trials = 300;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}};
  spec.spares = {2};
  const CampaignResult result = run_campaign(spec, {.threads = 2});
  const ScenarioResult& r = result.scenarios.front();
  ASSERT_GT(r.reconfig_success, 0u);
  EXPECT_EQ(r.collective_rounds, 4u);  // ceil(log2 16) on B_{2,4}
  EXPECT_GT(r.collective_baseline_cycles, 0u);
  ASSERT_GT(r.collective_slowdown.count, 0u);
  EXPECT_GE(r.collective_slowdown.count, r.reconfig_success);
  // Degraded trials are priced against the survivors' own healthy schedule;
  // rerouting usually costs cycles, but a reshaped route set can also shed a
  // little queueing, so the per-trial ratio hovers around 1 rather than being
  // bounded below by it.
  EXPECT_GT(r.collective_slowdown.min, 0.9);
  EXPECT_GE(r.collective_slowdown.max, 1.0);
  EXPECT_GT(r.collective_hop_cycles.count, 0u);
  EXPECT_GE(r.collective_congestion.min, 1.0);

  // The slowdown curve partitions the trials that ran the collective.
  std::uint64_t curve_trials = 0;
  std::uint64_t curve_unreachable = 0;
  ASSERT_FALSE(r.slowdown_curve.empty());
  for (const SlowdownPoint& p : r.slowdown_curve) {
    curve_trials += p.trials;
    curve_unreachable += p.unreachable;
    if (p.faults <= 2) {
      // Under-budget draws reconfigure, so their mean slowdown is exactly 1.
      EXPECT_EQ(p.unreachable, 0u) << "faults=" << p.faults;
      EXPECT_EQ(p.mean_slowdown(), 1.0) << "faults=" << p.faults;
    }
  }
  EXPECT_EQ(curve_trials, spec.trials);
  EXPECT_EQ(curve_unreachable, r.collective_unreachable);
}

TEST(Collective, ReportIsByteIdenticalAcrossThreadsResumeAndShards) {
  const ScenarioSpec spec = collective_spec();
  const std::string serial = campaign_report_json(run_campaign(spec, {.threads = 1}));
  EXPECT_EQ(serial, campaign_report_json(run_campaign(spec, {.threads = 3})));

  // Crash after two blocks, resume: same bytes.
  CampaignOptions crash;
  crash.threads = 1;
  crash.checkpoint_path = ::testing::TempDir() + "/ftdb_coll.ckpt";
  crash.stop_after_blocks = 2;
  EXPECT_THROW(run_campaign(spec, crash), CampaignAborted);
  CampaignOptions resume = crash;
  resume.threads = 2;
  resume.stop_after_blocks = 0;
  resume.resume = true;
  const CampaignResult resumed = run_campaign(spec, resume);
  EXPECT_GE(resumed.resumed_blocks, 2u);
  EXPECT_EQ(campaign_report_json(resumed), serial);

  // Two shards merged: same bytes again.
  const Checkpoint s0 = run_shard(spec, {0, 2}, 2, "coll0");
  const Checkpoint s1 = run_shard(spec, {1, 2}, 3, "coll1");
  EXPECT_EQ(campaign_report_json(merge_checkpoints(spec, {s0, s1})), serial);

  // And the validator accepts the document, slowdown-curve invariants included.
  EXPECT_EQ(validate_campaign_report(serial), 4u);
}

TEST(Collective, CsvAndMarkdownCarryTheSlowdownColumns) {
  ScenarioSpec spec = collective_spec();
  spec.trials = 200;
  const CampaignResult result = run_campaign(spec, {.threads = 2});
  const std::string csv = campaign_report_csv(result);
  EXPECT_NE(csv.find("collective_slowdown_mean"), std::string::npos);
  EXPECT_NE(csv.find("slowdown_by_faults"), std::string::npos);
  const std::string md = campaign_report_markdown(result);
  EXPECT_NE(md.find("Collective slowdown by drawn fault count"), std::string::npos);
  // Old-schema documents (no collective fields) still parse and validate.
  const std::string plain = campaign_report_json(run_campaign(small_spec(), {.threads = 2}));
  EXPECT_EQ(validate_campaign_report(plain), 8u);
}

TEST(Collective, BusFamilySkipsTheMetricGracefully) {
  ScenarioSpec spec = collective_spec();
  spec.trials = 100;
  spec.topologies = {{TopologyFamily::Bus, 2, 3}};
  spec.spares = {1};
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  const ScenarioResult& r = result.scenarios.front();
  EXPECT_EQ(r.trials, 100u);
  EXPECT_EQ(r.collective_slowdown.count, 0u);
  EXPECT_EQ(r.collective_rounds, 0u);
  EXPECT_TRUE(r.slowdown_curve.empty());
  EXPECT_EQ(validate_campaign_report(campaign_report_json(result)), 1u);
}

TEST(CampaignReport, CsvQuotesLabelsAndHasHeader) {
  const CampaignResult result = run_campaign(small_spec(), {.threads = 2});
  const std::string csv = campaign_report_csv(result);
  EXPECT_EQ(csv.rfind("scenario_index,label,", 0), 0u);
  // Labels contain commas, so every data row must carry quoted labels.
  EXPECT_NE(csv.find("\"debruijn(m=2,h=4) k=0 iid(p=0.05)\""), std::string::npos);
}

// --- bus-fault models --------------------------------------------------------

/// Bus-machine cells under both bus-fault processes; multi-block (600 trials
/// = 3 blocks) so the identity drills exercise steals, checkpoints and shard
/// merges on the bus code path.
ScenarioSpec bus_fault_spec() {
  ScenarioSpec spec;
  spec.name = "bus-faults";
  spec.seed = 31;
  spec.trials = 600;
  spec.topologies = {{TopologyFamily::Bus, 2, 3}};
  spec.spares = {0, 2};
  spec.fault_models = {{FaultModelKind::BusIid, 0.04, 1.0, 100.0, 1.0},
                       {FaultModelKind::BusClustered, 0.02, 1.0, 100.0, 1.0}};
  spec.metrics = {true, false, true};
  return spec;
}

TEST(BusFaults, SpecParsesRoundTripsAndFingerprints) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "topologies": [{"family": "bus", "digits": 3}],
    "spares": [1],
    "fault_models": [{"kind": "bus_iid", "p": 0.04}, {"kind": "bus_clustered", "p": 0.02}]
  })");
  ASSERT_EQ(spec.fault_models.size(), 2u);
  EXPECT_EQ(spec.fault_models[0].kind, FaultModelKind::BusIid);
  EXPECT_EQ(spec.fault_models[1].kind, FaultModelKind::BusClustered);
  EXPECT_NE(spec.fault_models[0].label().find("bus_iid"), std::string::npos);
  const std::string canon = scenario_spec_to_json(spec);
  EXPECT_EQ(canon, scenario_spec_to_json(parse_scenario_spec(canon)));
  // The failure probability is part of the spec identity.
  ScenarioSpec other = spec;
  other.fault_models[0].p = 0.05;
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(other));
}

TEST(FaultModels, BusModelsDrawSortedBusesWhoseDriversAreFaulty) {
  const BusGraph bus = bus_ft_debruijn_base2(3, 2);
  const Graph fabric = bus.realized_graph();
  for (const FaultModelKind kind : {FaultModelKind::BusIid, FaultModelKind::BusClustered}) {
    const auto model = make_fault_model({kind, 0.15, 1.0, 100.0, 1.0});
    model->prepare(fabric, 2);
    model->prepare_bus(bus, 2);
    bool saw_bus_fault = false;
    for (std::uint64_t trial = 0; trial < 50; ++trial) {
      TrialRng rng = TrialRng::for_trial(9, 0, trial);
      TrialRng replay = TrialRng::for_trial(9, 0, trial);
      const FaultDraw a = model->draw(fabric, 2, rng);
      const FaultDraw b = model->draw(fabric, 2, replay);
      EXPECT_EQ(a.faults.nodes(), b.faults.nodes());
      EXPECT_EQ(a.bus_faults, b.bus_faults);
      EXPECT_TRUE(std::is_sorted(a.bus_faults.begin(), a.bus_faults.end()));
      EXPECT_TRUE(std::adjacent_find(a.bus_faults.begin(), a.bus_faults.end()) ==
                  a.bus_faults.end());
      saw_bus_fault = saw_bus_fault || !a.bus_faults.empty();
      for (const std::uint32_t b_id : a.bus_faults) {
        ASSERT_LT(b_id, bus.num_buses());
        // Section V discipline: a failed bus silences its driver.
        EXPECT_TRUE(a.faults.is_faulty(bus.bus(b_id).driver)) << "bus " << b_id;
      }
    }
    EXPECT_TRUE(saw_bus_fault) << "p=0.15 over 50 trials drew no bus faults";
  }
}

TEST(BusFaults, BusIidAnalyticColumnsMatchTheIidClosedForms) {
  // bus_iid fails each bus independently and each bus silences one driver, so
  // its analytic companions are the node-iid closed forms at the same p.
  ScenarioSpec spec = bus_fault_spec();
  spec.trials = 200;
  spec.spares = {2};
  spec.fault_models = {{FaultModelKind::BusIid, 0.04, 1.0, 100.0, 1.0}};
  ScenarioSpec iid = spec;
  iid.fault_models = {{FaultModelKind::IidBernoulli, 0.04, 1.0, 100.0, 1.0}};
  const ScenarioResult rb = run_campaign(spec, {.threads = 1}).scenarios.front();
  const ScenarioResult ri = run_campaign(iid, {.threads = 1}).scenarios.front();
  ASSERT_FALSE(std::isnan(rb.analytic_survival));
  ASSERT_FALSE(std::isnan(rb.analytic_mttf));
  EXPECT_EQ(rb.analytic_survival, ri.analytic_survival);
  EXPECT_EQ(rb.analytic_mttf, ri.analytic_mttf);
  EXPECT_NEAR(rb.analytic_survival,
              static_cast<double>(survival_probability(rb.target_nodes, 2, 0.04L)), 1e-12);
  // Every trial reports how many buses it lost.
  EXPECT_EQ(rb.bus_fault_count.count, rb.trials);
  EXPECT_GT(rb.bus_fault_count.mean, 0.0);
  // The clustered bus model has no closed form.
  ScenarioSpec clustered = spec;
  clustered.fault_models = {{FaultModelKind::BusClustered, 0.04, 1.0, 100.0, 1.0}};
  const ScenarioResult rc = run_campaign(clustered, {.threads = 1}).scenarios.front();
  EXPECT_TRUE(std::isnan(rc.analytic_survival));
  EXPECT_EQ(rc.bus_fault_count.count, rc.trials);
}

TEST(BusFaults, BusModelsDegenerateGracefullyOnPointToPointFamilies) {
  // On a point-to-point fabric the "bus of node v" is v's adjacency, so the
  // models still draw and the runner scores the plain monotone embedding.
  ScenarioSpec spec = bus_fault_spec();
  spec.trials = 200;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}, {TopologyFamily::ShuffleExchange, 2, 3}};
  const CampaignResult result = run_campaign(spec, {.threads = 2});
  ASSERT_EQ(result.scenarios.size(), 8u);
  for (const ScenarioResult& r : result.scenarios) {
    EXPECT_EQ(r.trials, 200u);
    EXPECT_EQ(r.bus_fault_count.count, 200u);
    EXPECT_GT(r.reconfig_success, 0u);
  }
  EXPECT_EQ(validate_campaign_report(campaign_report_json(result)), 8u);
}

TEST(BusFaults, ReportIsByteIdenticalAcrossThreadsResumeAndShards) {
  const ScenarioSpec spec = bus_fault_spec();
  const std::string serial = campaign_report_json(run_campaign(spec, {.threads = 1}));
  EXPECT_EQ(serial, campaign_report_json(run_campaign(spec, {.threads = 3})));

  // Crash after two blocks, resume: same bytes.
  CampaignOptions crash;
  crash.threads = 1;
  crash.checkpoint_path = ::testing::TempDir() + "/ftdb_bus.ckpt";
  crash.stop_after_blocks = 2;
  EXPECT_THROW(run_campaign(spec, crash), CampaignAborted);
  CampaignOptions resume = crash;
  resume.threads = 2;
  resume.stop_after_blocks = 0;
  resume.resume = true;
  const CampaignResult resumed = run_campaign(spec, resume);
  EXPECT_GE(resumed.resumed_blocks, 2u);
  EXPECT_EQ(campaign_report_json(resumed), serial);

  // Two shards merged: same bytes again, and the validator accepts them.
  const Checkpoint s0 = run_shard(spec, {0, 2}, 2, "bus0");
  const Checkpoint s1 = run_shard(spec, {1, 2}, 3, "bus1");
  EXPECT_EQ(campaign_report_json(merge_checkpoints(spec, {s0, s1})), serial);
  EXPECT_EQ(validate_campaign_report(serial), 4u);
}

// --- traffic metric ----------------------------------------------------------

/// Point-to-point cells with the traffic metric on, multi-block like
/// collective_spec() so skewed-workload determinism is exercised across
/// steals, checkpoints and shards.
ScenarioSpec traffic_campaign(const std::string& pattern) {
  ScenarioSpec spec;
  spec.name = "traffic";
  spec.seed = 23;
  spec.trials = 600;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 4}, {TopologyFamily::ShuffleExchange, 2, 3}};
  spec.spares = {0, 2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.05, 1.0, 100.0, 1.0}};
  spec.metrics.diameter = false;
  spec.metrics.mttf = false;
  spec.metrics.traffic = true;
  spec.metrics.traffic_spec.pattern = pattern;
  spec.metrics.traffic_spec.packets_per_node = 2;
  return spec;
}

TEST(Traffic, SpecParsesRoundTripsAndFingerprints) {
  const ScenarioSpec spec = parse_scenario_spec(R"({
    "topologies": [{"family": "debruijn", "digits": 4}],
    "spares": [2],
    "fault_models": [{"kind": "iid", "p": 0.05}],
    "metrics": ["traffic"],
    "traffic": {"pattern": "zipf", "theta": 1.2, "packets_per_node": 2}
  })");
  EXPECT_TRUE(spec.metrics.traffic);
  EXPECT_EQ(spec.metrics.traffic_spec.pattern, "zipf");
  EXPECT_EQ(spec.metrics.traffic_spec.theta, 1.2);
  EXPECT_EQ(spec.metrics.traffic_spec.packets_per_node, 2u);
  const std::string canon = scenario_spec_to_json(spec);
  EXPECT_EQ(canon, scenario_spec_to_json(parse_scenario_spec(canon)));

  // The workload shape is part of the spec identity.
  ScenarioSpec other = spec;
  other.metrics.traffic_spec.theta = 0.8;
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(other));

  // An unknown pattern is rejected up front, not at trial time.
  EXPECT_THROW(parse_scenario_spec(R"({
    "topologies": [{"family": "debruijn", "digits": 4}],
    "spares": [2],
    "fault_models": [{"kind": "iid", "p": 0.05}],
    "metrics": ["traffic"],
    "traffic": {"pattern": "fractal"}
  })"),
               std::runtime_error);

  // Specs without the metric keep their pre-traffic canonical form (and so
  // their fingerprints): the key only appears when the metric is on.
  EXPECT_EQ(scenario_spec_to_json(small_spec()).find("\"traffic\""), std::string::npos);
}

TEST(Traffic, StatsArePopulatedAndBounded) {
  ScenarioSpec spec = traffic_campaign("zipf");
  spec.trials = 200;
  spec.metrics.traffic_spec.theta = 1.1;
  const CampaignResult result = run_campaign(spec, {.threads = 2});
  ASSERT_EQ(result.scenarios.size(), 4u);
  for (const ScenarioResult& r : result.scenarios) {
    // Every trial runs the workload — on the reconfigured machine after a
    // successful trial, on the degraded bare target otherwise.
    EXPECT_EQ(r.traffic_delivered.count, r.trials);
    EXPECT_GE(r.traffic_delivered.min, 0.0);
    EXPECT_LE(r.traffic_delivered.max, 1.0);
    EXPECT_GT(r.traffic_delivered.mean, 0.5) << r.label;
    // Latency is only defined on trials that delivered something.
    EXPECT_LE(r.traffic_latency.count, r.traffic_delivered.count);
    EXPECT_GT(r.traffic_latency.count, 0u);
    EXPECT_GE(r.traffic_latency.min, 0.0);
    EXPECT_GT(r.traffic_congestion.count, 0u);
    EXPECT_GE(r.traffic_congestion.min, 0.0);
    EXPECT_GT(r.traffic_congestion.max, 0.0) << r.label;
    EXPECT_LE(r.traffic_timed_out, r.trials);
  }
  EXPECT_EQ(validate_campaign_report(campaign_report_json(result)), 4u);
}

TEST(Traffic, ReportIsByteIdenticalAcrossThreadsResumeAndShards) {
  // hotspot_burst is the pattern that draws per-trial randomness (the hot
  // nodes) from the trial's own stream — the riskiest path for scheduling
  // determinism, so it gets the full drill.
  ScenarioSpec spec = traffic_campaign("hotspot_burst");
  spec.metrics.traffic_spec.hotspots = 2;
  spec.metrics.traffic_spec.fraction_hot = 0.5;
  spec.metrics.traffic_spec.burst_cycles = 4;
  const std::string serial = campaign_report_json(run_campaign(spec, {.threads = 1}));
  EXPECT_EQ(serial, campaign_report_json(run_campaign(spec, {.threads = 3})));

  CampaignOptions crash;
  crash.threads = 1;
  crash.checkpoint_path = ::testing::TempDir() + "/ftdb_traffic.ckpt";
  crash.stop_after_blocks = 2;
  EXPECT_THROW(run_campaign(spec, crash), CampaignAborted);
  CampaignOptions resume = crash;
  resume.threads = 2;
  resume.stop_after_blocks = 0;
  resume.resume = true;
  const CampaignResult resumed = run_campaign(spec, resume);
  EXPECT_GE(resumed.resumed_blocks, 2u);
  EXPECT_EQ(campaign_report_json(resumed), serial);

  const Checkpoint s0 = run_shard(spec, {0, 2}, 2, "traf0");
  const Checkpoint s1 = run_shard(spec, {1, 2}, 3, "traf1");
  EXPECT_EQ(campaign_report_json(merge_checkpoints(spec, {s0, s1})), serial);
  EXPECT_EQ(validate_campaign_report(serial), 4u);
}

TEST(Traffic, ZipfAndTraceAreThreadCountInvariant) {
  ScenarioSpec zipf = traffic_campaign("zipf");
  zipf.trials = 200;
  EXPECT_EQ(campaign_report_json(run_campaign(zipf, {.threads = 1})),
            campaign_report_json(run_campaign(zipf, {.threads = 3})));

  // A trace brings its own packets; endpoints must be valid on the smallest
  // target in the grid (SE_3 has 8 nodes).
  ScenarioSpec trace = traffic_campaign("trace");
  trace.trials = 200;
  trace.metrics.traffic_spec.trace = "# three-packet replay\n0 0 7\n0 5 2\n1 3 0\n";
  const CampaignResult a = run_campaign(trace, {.threads = 1});
  EXPECT_EQ(campaign_report_json(a), campaign_report_json(run_campaign(trace, {.threads = 3})));
  for (const ScenarioResult& r : a.scenarios) {
    EXPECT_EQ(r.traffic_delivered.count, r.trials);
  }

  // A trace endpoint out of range for some cell's target fails fast at
  // campaign start, not mid-trial.
  ScenarioSpec bad = trace;
  bad.metrics.traffic_spec.trace = "0 0 12\n";  // valid on B_{2,4}, not on SE_3
  EXPECT_THROW(run_campaign(bad, {.threads = 1}), std::out_of_range);
}

TEST(Traffic, BusFamilySkipsTheMetricGracefully) {
  ScenarioSpec spec = traffic_campaign("zipf");
  spec.trials = 100;
  spec.topologies = {{TopologyFamily::Bus, 2, 3}};
  spec.spares = {1};
  const CampaignResult result = run_campaign(spec, {.threads = 1});
  ASSERT_EQ(result.scenarios.size(), 1u);
  const ScenarioResult& r = result.scenarios.front();
  EXPECT_EQ(r.trials, 100u);
  EXPECT_EQ(r.traffic_delivered.count, 0u);
  EXPECT_EQ(r.traffic_latency.count, 0u);
  EXPECT_EQ(validate_campaign_report(campaign_report_json(result)), 1u);
}

TEST(Traffic, CsvAndMarkdownCarryTheTrafficColumns) {
  ScenarioSpec spec = traffic_campaign("zipf");
  spec.trials = 200;
  const CampaignResult result = run_campaign(spec, {.threads = 2});
  const std::string csv = campaign_report_csv(result);
  EXPECT_NE(csv.find("bus_fault_mean"), std::string::npos);
  EXPECT_NE(csv.find("traffic_delivered_mean"), std::string::npos);
  EXPECT_NE(csv.find("traffic_congestion_max"), std::string::npos);
  const std::string md = campaign_report_markdown(result);
  EXPECT_NE(md.find("delivered"), std::string::npos);
}

TEST(ScenarioSpec, FullExampleCoversEveryFamilyModelAndMetric) {
  const ScenarioSpec spec = parse_scenario_spec(full_example_spec_json());
  EXPECT_EQ(spec.name, "full-example");
  EXPECT_EQ(spec.topologies.size(), 5u);  // 2 de Bruijn + 2 SE + 1 bus
  EXPECT_EQ(spec.fault_models.size(), 7u);
  EXPECT_EQ(expand_grid(spec).size(), 70u);
  EXPECT_TRUE(spec.metrics.collective);
  EXPECT_TRUE(spec.metrics.traffic);
  EXPECT_EQ(spec.metrics.traffic_spec.pattern, "hotspot_burst");
  // Canonical form is a fixed point — what `ftdb_campaign validate-spec`
  // asserts for the CI round-trip of `example-spec --full`.
  const std::string canon = scenario_spec_to_json(spec);
  EXPECT_EQ(canon, scenario_spec_to_json(parse_scenario_spec(canon)));
  EXPECT_EQ(spec_fingerprint(spec), spec_fingerprint(parse_scenario_spec(canon)));
}

}  // namespace
}  // namespace ftdb::campaign
