// Elastic campaign service tests: lease claim/reclaim protocol, block-log
// durability (torn tails, dedup), crash-and-reclaim byte-identity against a
// serial run, and live partial reports.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/elastic/blocklog.hpp"
#include "campaign/elastic/elastic.hpp"
#include "campaign/elastic/lease.hpp"
#include "campaign/elastic/partial.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace ftdb::campaign::elastic {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::path(::testing::TempDir()) / ("ftdb-elastic-" + name)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
  std::string sub(const std::string& leaf) const { return (path / leaf).string(); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Two cells, 3 blocks each (256 + 256 + 8 trials) — big enough to exercise
/// partial prefixes, small enough to run in milliseconds.
ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "elastic-test";
  spec.seed = 11;
  spec.trials = 520;
  spec.topologies = {{TopologyFamily::DeBruijn, 2, 3}};
  spec.spares = {1, 2};
  spec.fault_models = {{FaultModelKind::IidBernoulli, 0.05, 1.0, 100.0, 1.0}};
  spec.metrics.diameter = true;
  spec.metrics.stretch = false;
  spec.metrics.mttf = true;
  return spec;
}

ElasticOptions quick_options(const std::string& dir, const std::string& worker) {
  ElasticOptions opt;
  opt.dir = dir;
  opt.worker_id = worker;
  opt.threads = 2;
  opt.lease_ttl_seconds = 60;  // long: tests reclaim by backdating, not sleeping
  opt.poll_seconds = 0.01;
  opt.fsync = false;
  return opt;
}

// --- leases -----------------------------------------------------------------

TEST(Lease, ClaimIsExclusiveUntilReleased) {
  const ScratchDir dir("lease-claim");
  const std::string path = dir.sub("cell-0.lease");

  Lease first = Lease::try_acquire(path, "alpha", 60);
  ASSERT_TRUE(first.held());

  bool reclaimed = true;
  Lease second = Lease::try_acquire(path, "beta", 60, &reclaimed);
  EXPECT_FALSE(second.held());       // double-lease rejected
  EXPECT_FALSE(reclaimed);           // and nothing was swept to get there

  first.release();
  EXPECT_FALSE(fs::exists(path));
  Lease third = Lease::try_acquire(path, "beta", 60);
  EXPECT_TRUE(third.held());
}

TEST(Lease, StampRoundTripsAndNamesTheHolder) {
  const ScratchDir dir("lease-stamp");
  const std::string path = dir.sub("cell-0.lease");
  Lease lease = Lease::try_acquire(path, "alpha", 42);
  ASSERT_TRUE(lease.held());

  const auto stamp = read_lease(path);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->worker, "alpha");
  EXPECT_EQ(stamp->ttl_secs, 42u);
  EXPECT_GT(stamp->heartbeat_secs, 0u);
  EXPECT_LE(stamp->heartbeat_secs, lease_now_secs());
}

TEST(Lease, StaleHeartbeatIsReclaimed) {
  const ScratchDir dir("lease-stale");
  const std::string path = dir.sub("cell-0.lease");
  {
    // The crash shape: the lease file stays behind, nobody heartbeats it.
    Lease doomed = Lease::try_acquire(path, "dead-worker", 60);
    ASSERT_TRUE(doomed.held());
    doomed.abandon();
  }
  ASSERT_TRUE(fs::exists(path));
  // Backdate the heartbeat far past the TTL (what wall-clock aging produces,
  // without the test sleeping).
  LeaseStamp stale;
  stale.worker = "dead-worker";
  stale.pid = 1;
  stale.host = "gone";
  stale.heartbeat_secs = 1;
  stale.ttl_secs = 1;
  std::ofstream(path, std::ios::trunc) << lease_stamp_json(stale);

  bool reclaimed = false;
  Lease taken = Lease::try_acquire(path, "rescuer", 60, &reclaimed);
  EXPECT_TRUE(taken.held());
  EXPECT_TRUE(reclaimed);
  const auto stamp = read_lease(path);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->worker, "rescuer");
}

TEST(Lease, GarbledStampCountsAsStale) {
  const ScratchDir dir("lease-garbled");
  const std::string path = dir.sub("cell-0.lease");
  std::ofstream(path, std::ios::trunc) << "not json at all";
  bool reclaimed = false;
  Lease taken = Lease::try_acquire(path, "rescuer", 60, &reclaimed);
  EXPECT_TRUE(taken.held());
  EXPECT_TRUE(reclaimed);
}

TEST(Lease, HeartbeatRefreshesAndDetectsLoss) {
  const ScratchDir dir("lease-heartbeat");
  const std::string path = dir.sub("cell-0.lease");
  Lease lease = Lease::try_acquire(path, "alpha", 60);
  ASSERT_TRUE(lease.held());
  EXPECT_NO_THROW(lease.heartbeat());

  // Simulate a reclaim: replace the lease file (new inode) behind our back.
  fs::remove(path);
  Lease thief = Lease::try_acquire(path, "beta", 60);
  ASSERT_TRUE(thief.held());
  EXPECT_THROW(lease.heartbeat(), LeaseLost);
  EXPECT_FALSE(lease.held());
  // A lost lease's release must not unlink the thief's file.
  lease.release();
  EXPECT_TRUE(fs::exists(path));
}

// --- block log --------------------------------------------------------------

BlockRecord sample_record(std::uint64_t cell, std::uint64_t block) {
  const ScenarioSpec spec = tiny_spec();
  const CellRunner runner(spec, expand_grid(spec)[cell]);
  return {cell, block, runner.run_block(block)};
}

TEST(BlockLog, AppendRecoverRoundTrip) {
  const ScratchDir dir("blocklog-roundtrip");
  const std::string path = dir.sub("w.blk");
  const BlockRecord a = sample_record(0, 0);
  const BlockRecord b = sample_record(1, 2);
  {
    BlockLog log(path, 99, false);
    EXPECT_EQ(log.recovered().size(), 0u);
    log.append(a);
    log.append(b);
    EXPECT_EQ(log.num_records(), 2u);
  }
  BlockLog reopened(path, 99, false);
  EXPECT_EQ(reopened.truncated_bytes(), 0u);
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.recovered()[0].cell, 0u);
  EXPECT_EQ(reopened.recovered()[0].block, 0u);
  EXPECT_EQ(reopened.recovered()[1].cell, 1u);
  EXPECT_EQ(reopened.recovered()[1].block, 2u);
  // The partial round-trips bit-exactly (doubles via %.17g).
  EXPECT_EQ(reopened.recovered()[0].partial.trials, a.partial.trials);
  EXPECT_EQ(reopened.recovered()[0].partial.reconfig_success, a.partial.reconfig_success);
  EXPECT_EQ(reopened.recovered()[0].partial.fault_count.mean, a.partial.fault_count.mean);
}

TEST(BlockLog, TornTailIsTruncatedOnOwningOpenOnly) {
  const ScratchDir dir("blocklog-torn");
  const std::string path = dir.sub("w.blk");
  {
    BlockLog log(path, 7, false);
    log.append(sample_record(0, 0));
    log.append(sample_record(0, 1));
  }
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size - 3);  // tear the second record's frame

  // Read-only scan: sees one intact record, leaves the file alone.
  EXPECT_EQ(BlockLog::read(path, 7).size(), 1u);
  EXPECT_EQ(fs::file_size(path), full_size - 3);

  // Owning open: recovers one record and truncates the torn bytes away.
  BlockLog reopened(path, 7, false);
  EXPECT_EQ(reopened.recovered().size(), 1u);
  EXPECT_GT(reopened.truncated_bytes(), 0u);
  EXPECT_EQ(fs::file_size(path), reopened.size_bytes());

  // The repaired log appends cleanly again.
  reopened.append(sample_record(0, 1));
  EXPECT_EQ(reopened.num_records(), 2u);
}

TEST(BlockLog, FingerprintMismatchIsRefused) {
  const ScratchDir dir("blocklog-fp");
  const std::string path = dir.sub("w.blk");
  { BlockLog log(path, 1, false); }
  EXPECT_THROW(BlockLog(path, 2, false), std::runtime_error);
  EXPECT_THROW(BlockLog::read(path, 2), std::runtime_error);
}

TEST(BlockLog, TruncateAllKeepsTheHeader) {
  const ScratchDir dir("blocklog-truncate");
  const std::string path = dir.sub("w.blk");
  BlockLog log(path, 5, false);
  log.append(sample_record(0, 0));
  log.truncate_all();
  EXPECT_EQ(log.num_records(), 0u);
  EXPECT_EQ(BlockLog::read(path, 5).size(), 0u);  // header still valid
  log.append(sample_record(0, 1));                // and appendable
  EXPECT_EQ(BlockLog::read(path, 5).size(), 1u);
}

// --- elastic worker ---------------------------------------------------------

TEST(ElasticWorker, SingleWorkerMatchesSerialByteForByte) {
  const ScratchDir dir("elastic-single");
  const ScenarioSpec spec = tiny_spec();
  const ElasticResult r = run_elastic_worker(spec, quick_options(dir.str(), "solo"));
  EXPECT_TRUE(r.campaign_complete);
  EXPECT_EQ(r.blocks_run, 6u);  // 2 cells x 3 blocks
  EXPECT_EQ(r.cells_leased, 2u);

  const CampaignResult elastic = merge_elastic(spec, dir.str());
  const CampaignResult serial = run_campaign(spec, {});
  EXPECT_EQ(campaign_report_json(elastic), campaign_report_json(serial));
}

TEST(ElasticWorker, CrashedWorkerLeavesLeaseAndRescuerMatchesSerial) {
  const ScratchDir dir("elastic-crash");
  const ScenarioSpec spec = tiny_spec();

  ElasticOptions crashy = quick_options(dir.str(), "crashy");
  crashy.stop_after_blocks = 2;
  EXPECT_THROW(run_elastic_worker(spec, crashy), ElasticAborted);

  // The hard-killed worker's cell lease is still on disk.
  std::size_t leases = 0;
  std::string lease_path;
  for (const auto& entry : fs::directory_iterator(dir.sub("leases"))) {
    if (entry.path().filename().string().rfind("cell-", 0) == 0) {
      ++leases;
      lease_path = entry.path().string();
    }
  }
  ASSERT_EQ(leases, 1u);

  // Age the corpse's heartbeat past its TTL (instead of sleeping it out).
  auto stamp = read_lease(lease_path);
  ASSERT_TRUE(stamp.has_value());
  stamp->heartbeat_secs = 1;
  stamp->ttl_secs = 1;
  std::ofstream(lease_path, std::ios::trunc) << lease_stamp_json(*stamp);

  const ElasticResult rescue = run_elastic_worker(spec, quick_options(dir.str(), "rescuer"));
  EXPECT_TRUE(rescue.campaign_complete);
  EXPECT_EQ(rescue.leases_reclaimed, 1u);
  EXPECT_EQ(rescue.blocks_skipped, 2u);  // the crashed worker's durable blocks
  EXPECT_EQ(rescue.blocks_run, 4u);

  const CampaignResult elastic = merge_elastic(spec, dir.str());
  const CampaignResult serial = run_campaign(spec, {});
  EXPECT_EQ(campaign_report_json(elastic), campaign_report_json(serial));
}

TEST(ElasticWorker, DirectoryRefusesADifferentSpec) {
  const ScratchDir dir("elastic-respec");
  const ScenarioSpec spec = tiny_spec();
  ensure_elastic_dir(spec, dir.str());
  ScenarioSpec other = spec;
  other.seed = 999;
  EXPECT_THROW(ensure_elastic_dir(other, dir.str()), std::runtime_error);
  EXPECT_THROW(run_elastic_worker(other, quick_options(dir.str(), "w")), std::runtime_error);
}

TEST(ElasticWorker, RestartedWorkerIdReusesItsLogSafely) {
  const ScratchDir dir("elastic-restart");
  const ScenarioSpec spec = tiny_spec();
  ElasticOptions crashy = quick_options(dir.str(), "same-id");
  crashy.stop_after_blocks = 1;
  EXPECT_THROW(run_elastic_worker(spec, crashy), ElasticAborted);

  // Same worker id, full run: its own pre-crash records must fold forward,
  // not be lost or double-counted. The stale self-lease ages out first.
  for (const auto& entry : fs::directory_iterator(dir.sub("leases"))) {
    auto stamp = read_lease(entry.path().string());
    if (!stamp.has_value()) continue;
    stamp->heartbeat_secs = 1;
    stamp->ttl_secs = 1;
    std::ofstream(entry.path(), std::ios::trunc) << lease_stamp_json(*stamp);
  }
  const ElasticResult again = run_elastic_worker(spec, quick_options(dir.str(), "same-id"));
  EXPECT_TRUE(again.campaign_complete);
  EXPECT_EQ(again.blocks_run + again.blocks_skipped, 6u);
  EXPECT_EQ(again.blocks_skipped, 1u);

  const CampaignResult elastic = merge_elastic(spec, dir.str());
  const CampaignResult serial = run_campaign(spec, {});
  EXPECT_EQ(campaign_report_json(elastic), campaign_report_json(serial));
}

// --- partial reports --------------------------------------------------------

TEST(PartialReport, CoverageStampsMatchDurableBlocks) {
  const ScratchDir dir("partial-coverage");
  const ScenarioSpec spec = tiny_spec();
  ElasticOptions crashy = quick_options(dir.str(), "crashy");
  crashy.stop_after_blocks = 2;
  // Single-threaded so the two durable blocks are deterministically blocks
  // 0 and 1 of the first-leased cell (with a pool, the short final block can
  // beat the middle one and the coverage count would depend on timing).
  crashy.threads = 1;
  EXPECT_THROW(run_elastic_worker(spec, crashy), ElasticAborted);

  const std::string report = partial_elastic_report_json(spec, dir.str());
  // A partial document is a *valid* ftdb-campaign-v1 report.
  EXPECT_EQ(validate_campaign_report(report), 2u);

  const analysis::JsonValue doc = analysis::json_parse(report);
  EXPECT_TRUE(doc.at("partial").boolean);
  const analysis::JsonValue& cov = doc.at("coverage");
  EXPECT_EQ(static_cast<std::uint64_t>(cov.at("completed_trials").number), 512u);
  EXPECT_EQ(static_cast<std::uint64_t>(cov.at("total_trials").number), 1040u);
  EXPECT_EQ(static_cast<std::uint64_t>(cov.at("cells_complete").number), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(cov.at("cells_total").number), 2u);
  ASSERT_EQ(cov.at("cells").array.size(), 2u);
  std::uint64_t blocks = 0;
  for (const analysis::JsonValue& c : cov.at("cells").array) {
    blocks += static_cast<std::uint64_t>(c.at("completed_blocks").number);
    EXPECT_EQ(static_cast<std::uint64_t>(c.at("total_blocks").number), 3u);
  }
  EXPECT_EQ(blocks, 2u);

  // The scenarios array covers every grid cell, incomplete ones included.
  EXPECT_EQ(doc.at("scenarios").array.size(), 2u);

  // While the full merge refuses the incomplete directory.
  EXPECT_THROW(merge_elastic(spec, dir.str()), std::runtime_error);
}

TEST(PartialReport, CompletedCellsAreByteIdenticalToTheFinalReport) {
  const ScratchDir dir("partial-identity");
  const ScenarioSpec spec = tiny_spec();
  ElasticOptions opt = quick_options(dir.str(), "w1");
  opt.stop_after_blocks = 3;  // exactly one cell completed, one untouched
  EXPECT_THROW(run_elastic_worker(spec, opt), ElasticAborted);

  const std::string partial = partial_elastic_report_json(spec, dir.str());
  EXPECT_EQ(validate_campaign_report(partial), 2u);

  // Finish the campaign (the crashed lease must age out first).
  for (const auto& entry : fs::directory_iterator(dir.sub("leases"))) {
    auto stamp = read_lease(entry.path().string());
    if (!stamp.has_value()) continue;
    stamp->heartbeat_secs = 1;
    stamp->ttl_secs = 1;
    std::ofstream(entry.path(), std::ios::trunc) << lease_stamp_json(*stamp);
  }
  run_elastic_worker(spec, quick_options(dir.str(), "w2"));
  const std::string full = campaign_report_json(merge_elastic(spec, dir.str()));

  // Every scenario the partial report showed as complete appears verbatim in
  // the final report: the serialized object is a byte-identical substring.
  const analysis::JsonValue pdoc = analysis::json_parse(partial);
  std::size_t complete_cells = 0;
  for (std::size_t i = 0; i < pdoc.at("scenarios").array.size(); ++i) {
    const ScenarioResult r = parse_scenario_result(pdoc.at("scenarios").array[i]);
    if (r.trials != spec.trials) continue;
    ++complete_cells;
    analysis::JsonWriter w;
    write_scenario_result(w, r);
    EXPECT_NE(full.find(w.str()), std::string::npos)
        << "completed cell " << i << " not found verbatim in the final report";
  }
  EXPECT_EQ(complete_cells, 1u);
}

TEST(PartialReport, EmptyDirectoryIsAllZeroCoverage) {
  const ScratchDir dir("partial-empty");
  const ScenarioSpec spec = tiny_spec();
  ensure_elastic_dir(spec, dir.str());
  const std::string report = partial_elastic_report_json(spec, dir.str());
  EXPECT_EQ(validate_campaign_report(report), 2u);
  const analysis::JsonValue doc = analysis::json_parse(report);
  EXPECT_EQ(static_cast<std::uint64_t>(doc.at("coverage").at("completed_trials").number), 0u);
}

// --- cost model -------------------------------------------------------------

TEST(PredictedCellCost, MonotoneInSizeAndMetrics) {
  ScenarioSpec spec = tiny_spec();
  const std::vector<ScenarioCase> cells = expand_grid(spec);
  ScenarioCase small = cells[0];
  ScenarioCase big = cells[0];
  big.topology.digits = 6;
  EXPECT_GT(predicted_cell_cost(spec, big), predicted_cell_cost(spec, small));

  ScenarioSpec with_stretch = spec;
  with_stretch.metrics.stretch = true;
  EXPECT_GT(predicted_cell_cost(with_stretch, small), predicted_cell_cost(spec, small));

  ScenarioSpec more_trials = spec;
  more_trials.trials *= 2;
  EXPECT_GT(predicted_cell_cost(more_trials, small), predicted_cell_cost(spec, small));
}

}  // namespace
}  // namespace ftdb::campaign::elastic
