// Tests for the collective operations (broadcast, prefix sum, bitonic sort)
// on the hypercube pattern and the shuffle-exchange emulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "ft/ft_shuffle_exchange.hpp"
#include "sim/collectives.hpp"

namespace ftdb::sim {
namespace {

TEST(Broadcast, AllNodesReceiveRootValue) {
  for (unsigned h : {2u, 4u, 6u}) {
    std::vector<std::int64_t> v(std::size_t{1} << h, -1);
    const NodeId root = static_cast<NodeId>((1u << h) / 3);
    v[root] = 42;
    const auto result = broadcast_hypercube(h, v, root);
    EXPECT_EQ(result.communication_steps, h);
    for (auto x : result.values) EXPECT_EQ(x, 42);
  }
}

TEST(Broadcast, RootOutOfRangeThrows) {
  EXPECT_THROW(broadcast_hypercube(3, std::vector<std::int64_t>(8), 8), std::out_of_range);
}

TEST(PrefixSum, MatchesPartialSum) {
  for (unsigned h : {2u, 3u, 5u, 7u}) {
    const std::size_t n = std::size_t{1} << h;
    std::mt19937_64 rng(h);
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = static_cast<std::int64_t>(rng() % 1000) - 500;
    std::vector<std::int64_t> expected(n);
    std::partial_sum(v.begin(), v.end(), expected.begin());
    const auto result = prefix_sum_hypercube(h, v);
    EXPECT_EQ(result.communication_steps, h);
    EXPECT_EQ(result.values, expected) << "h=" << h;
  }
}

TEST(BitonicSortHypercube, SortsRandomInputs) {
  for (unsigned h : {2u, 4u, 6u, 8u}) {
    const std::size_t n = std::size_t{1} << h;
    std::mt19937_64 rng(h * 7);
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = static_cast<std::int64_t>(rng() % 10000);
    std::vector<std::int64_t> expected = v;
    std::sort(expected.begin(), expected.end());
    const auto result = bitonic_sort_hypercube(h, v);
    EXPECT_EQ(result.values, expected) << "h=" << h;
    EXPECT_EQ(result.communication_steps, h * (h + 1) / 2);
  }
}

TEST(BitonicSortHypercube, SortsAdversarialInputs) {
  const unsigned h = 5;
  const std::size_t n = 32;
  // Reverse-sorted, all-equal, and single-swap inputs.
  std::vector<std::int64_t> rev(n);
  for (std::size_t i = 0; i < n; ++i) rev[i] = static_cast<std::int64_t>(n - i);
  auto sorted_rev = rev;
  std::sort(sorted_rev.begin(), sorted_rev.end());
  EXPECT_EQ(bitonic_sort_hypercube(h, rev).values, sorted_rev);

  std::vector<std::int64_t> flat(n, 7);
  EXPECT_EQ(bitonic_sort_hypercube(h, flat).values, flat);
}

TEST(BitonicSortShuffleExchange, MatchesHypercubeResult) {
  for (unsigned h : {2u, 3u, 4u, 5u, 6u}) {
    const std::size_t n = std::size_t{1} << h;
    std::mt19937_64 rng(h * 13);
    std::vector<std::int64_t> v(n);
    for (auto& x : v) x = static_cast<std::int64_t>(rng() % 997);
    std::vector<std::int64_t> expected = v;
    std::sort(expected.begin(), expected.end());
    const auto result = bitonic_sort_shuffle_exchange(h, v);
    EXPECT_EQ(result.values, expected) << "h=" << h;
    // The SE schedule pays shuffle steps on top of the compare steps, but
    // stays within a small factor of the hypercube count.
    EXPECT_GE(result.communication_steps, h * (h + 1) / 2);
    EXPECT_LE(result.communication_steps, 3 * h * h + 2 * h) << "h=" << h;
  }
}

TEST(BitonicSortShuffleExchange, RunsOnReconfiguredMachine) {
  // The full claim: sorting runs unchanged on the natural FT-SE machine
  // after k faults (every shuffle/exchange hop verified live).
  const unsigned h = 4;
  const unsigned k = 2;
  const auto se = ftdb::ft_shuffle_exchange_natural(h, k);
  const FaultSet faults(se.ft_graph.num_nodes(), {2, 11});
  const Machine machine = Machine::reconfigured(se.ft_graph, faults, std::size_t{1} << h);

  std::vector<std::int64_t> v{9, 1, 8, 2, 7, 3, 6, 4, 5, 0, 15, 14, 13, 12, 11, 10};
  std::vector<std::int64_t> expected = v;
  std::sort(expected.begin(), expected.end());
  const auto result = bitonic_sort_shuffle_exchange(h, v, &machine);
  EXPECT_EQ(result.values, expected);
}

TEST(Collectives, WrongSizeThrows) {
  EXPECT_THROW(broadcast_hypercube(3, std::vector<std::int64_t>(7), 0), std::invalid_argument);
  EXPECT_THROW(prefix_sum_hypercube(3, std::vector<std::int64_t>(9)), std::invalid_argument);
  EXPECT_THROW(bitonic_sort_hypercube(3, std::vector<std::int64_t>(5)), std::invalid_argument);
}

}  // namespace
}  // namespace ftdb::sim
