// Tests for the comparison topologies from the paper's introduction:
// hypercube, cube-connected cycles, Kautz and butterfly.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "topology/hypercube.hpp"

namespace ftdb {
namespace {

TEST(Hypercube, Structure) {
  Graph g = hypercube_graph(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // h * 2^{h-1}
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.min_degree(), 4u);
}

TEST(Hypercube, DegreeGrowsWithSize) {
  // The paper's motivation: hypercube degree grows with node count.
  for (unsigned h = 2; h <= 8; ++h) {
    EXPECT_EQ(hypercube_graph(h).max_degree(), h);
  }
}

TEST(Hypercube, Connected) {
  for (unsigned h = 1; h <= 6; ++h) EXPECT_TRUE(is_connected(hypercube_graph(h)));
}

TEST(CubeConnectedCycles, Structure) {
  Graph g = cube_connected_cycles_graph(3);
  EXPECT_EQ(g.num_nodes(), 24u);
  EXPECT_EQ(g.max_degree(), 3u);  // constant degree, unlike the hypercube
  EXPECT_TRUE(is_connected(g));
}

TEST(CubeConnectedCycles, ConstantDegreeAcrossSizes) {
  for (unsigned h = 3; h <= 6; ++h) {
    Graph g = cube_connected_cycles_graph(h);
    EXPECT_EQ(g.num_nodes(), h * (1ull << h));
    EXPECT_EQ(g.max_degree(), 3u) << "h=" << h;
  }
}

TEST(CubeConnectedCycles, RequiresH3) {
  EXPECT_THROW(ccc_num_nodes(2), std::invalid_argument);
}

TEST(Kautz, NodeCount) {
  EXPECT_EQ(kautz_num_nodes(2, 3), 12u);  // 2^3 + 2^2
  Graph g = kautz_graph(2, 3);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Kautz, DegreeAtMost2m) {
  for (std::uint64_t m : {2ull, 3ull}) {
    for (unsigned h : {2u, 3u, 4u}) {
      Graph g = kautz_graph(m, h);
      EXPECT_EQ(g.num_nodes(), kautz_num_nodes(m, h));
      EXPECT_LE(g.max_degree(), 2 * m) << "m=" << m << " h=" << h;
    }
  }
}

TEST(Kautz, NoSelfLoopsByConstruction) {
  // Kautz forbids equal consecutive digits, so no shift maps a node to itself;
  // degree is exactly 2m except where forward/backward shifts coincide.
  Graph g = kautz_graph(2, 4);
  EXPECT_GE(g.min_degree(), 2u);
}

TEST(Butterfly, Structure) {
  Graph g = butterfly_graph(3);
  EXPECT_EQ(g.num_nodes(), 24u);
  EXPECT_EQ(g.max_degree(), 4u);  // constant degree 4
  EXPECT_TRUE(is_connected(g));
}

TEST(Butterfly, ConstantDegreeAcrossSizes) {
  for (unsigned h = 3; h <= 6; ++h) {
    EXPECT_LE(butterfly_graph(h).max_degree(), 4u) << "h=" << h;
  }
}

TEST(Butterfly, RequiresH2) { EXPECT_THROW(butterfly_num_nodes(1), std::invalid_argument); }

TEST(ComparisonTopologies, ConstantDegreeFamiliesStayBounded) {
  // The paper's framing: de Bruijn/SE/CCC keep degree O(1) while the
  // hypercube does not. This test pins the cross-family comparison.
  for (unsigned h = 3; h <= 6; ++h) {
    EXPECT_GT(hypercube_graph(h).max_degree(), 2u);
    EXPECT_LE(cube_connected_cycles_graph(h).max_degree(), 3u);
    EXPECT_LE(butterfly_graph(h).max_degree(), 4u);
  }
  EXPECT_EQ(hypercube_graph(8).max_degree(), 8u);
}

}  // namespace
}  // namespace ftdb
