// Tests for the de Bruijn target graphs, including the paper's claim (Sections
// III and IV) that the digit-shift definition and the algebraic X-based
// definition coincide.
#include <gtest/gtest.h>

#include <random>

#include "graph/algorithms.hpp"
#include "topology/debruijn.hpp"
#include "topology/labels.hpp"

namespace ftdb {
namespace {

TEST(DeBruijn, NodeCount) {
  EXPECT_EQ(debruijn_num_nodes({.base = 2, .digits = 4}), 16u);
  EXPECT_EQ(debruijn_num_nodes({.base = 3, .digits = 3}), 27u);
  EXPECT_EQ(debruijn_num_nodes({.base = 5, .digits = 2}), 25u);
}

TEST(DeBruijn, InvalidParamsThrow) {
  EXPECT_THROW(debruijn_num_nodes({.base = 1, .digits = 3}), std::invalid_argument);
  EXPECT_THROW(debruijn_num_nodes({.base = 2, .digits = 0}), std::invalid_argument);
}

TEST(DeBruijn, Fig1_B24Structure) {
  // Paper Fig. 1: B_{2,4} has 16 nodes, degree <= 4.
  Graph g = debruijn_base2(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.max_degree(), 4u);
  // Spot-check the binary definition: node 0110 (=6) connects to 1100 (=12),
  // 1101 (=13), 0011 (=3), 1011 (=11).
  EXPECT_TRUE(g.has_edge(6, 12));
  EXPECT_TRUE(g.has_edge(6, 13));
  EXPECT_TRUE(g.has_edge(6, 3));
  EXPECT_TRUE(g.has_edge(6, 11));
  EXPECT_EQ(g.degree(6), 4u);
}

TEST(DeBruijn, SelfLoopNodesHaveSmallerDegree) {
  // Nodes 0...0 and 1...1 lose their self-loops; 0 connects to 1 and 2^{h-1}.
  Graph g = debruijn_base2(4);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 8));
  EXPECT_EQ(g.degree(15), 2u);
}

class DeBruijnDefinitionEquivalence
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(DeBruijnDefinitionEquivalence, DigitAndAlgebraicDefinitionsMatch) {
  const auto [m, h] = GetParam();
  const DeBruijnParams params{.base = m, .digits = h};
  Graph digit = debruijn_graph_digit_definition(params);
  Graph algebraic = debruijn_graph(params);
  EXPECT_TRUE(digit.same_structure(algebraic)) << "m=" << m << " h=" << h;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeBruijnDefinitionEquivalence,
                         ::testing::Values(std::pair<std::uint64_t, unsigned>{2, 3},
                                           std::pair<std::uint64_t, unsigned>{2, 4},
                                           std::pair<std::uint64_t, unsigned>{2, 6},
                                           std::pair<std::uint64_t, unsigned>{3, 3},
                                           std::pair<std::uint64_t, unsigned>{3, 4},
                                           std::pair<std::uint64_t, unsigned>{4, 3},
                                           std::pair<std::uint64_t, unsigned>{5, 2},
                                           std::pair<std::uint64_t, unsigned>{5, 3}));

class DeBruijnProperties : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(DeBruijnProperties, DegreeAtMost2m) {
  const auto [m, h] = GetParam();
  Graph g = debruijn_graph({.base = m, .digits = h});
  EXPECT_LE(g.max_degree(), 2 * m);
}

TEST_P(DeBruijnProperties, Connected) {
  const auto [m, h] = GetParam();
  EXPECT_TRUE(is_connected(debruijn_graph({.base = m, .digits = h})));
}

TEST_P(DeBruijnProperties, DiameterAtMostH) {
  const auto [m, h] = GetParam();
  EXPECT_LE(diameter(debruijn_graph({.base = m, .digits = h})), h);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeBruijnProperties,
                         ::testing::Values(std::pair<std::uint64_t, unsigned>{2, 3},
                                           std::pair<std::uint64_t, unsigned>{2, 5},
                                           std::pair<std::uint64_t, unsigned>{2, 8},
                                           std::pair<std::uint64_t, unsigned>{3, 3},
                                           std::pair<std::uint64_t, unsigned>{4, 3},
                                           std::pair<std::uint64_t, unsigned>{5, 2}));

TEST(DeBruijn, OutNeighborsAreGraphEdgesOrSelfLoops) {
  const DeBruijnParams params{.base = 3, .digits = 3};
  Graph g = debruijn_graph(params);
  for (std::size_t x = 0; x < g.num_nodes(); ++x) {
    for (NodeId y : debruijn_out_neighbors(params, static_cast<NodeId>(x))) {
      if (y != static_cast<NodeId>(x)) {
        EXPECT_TRUE(g.has_edge(static_cast<NodeId>(x), y)) << "x=" << x << " y=" << y;
      }
    }
  }
}

TEST(DeBruijnDistance, MatchesBfsExhaustively) {
  // The digit-window alignment formula must be hop-exact against BFS on the
  // real graph for every pair — including h = 1 (the complete graph K_m) and
  // the constant-label corners where naive shift reasoning hits self-loops.
  for (std::uint64_t m = 2; m <= 4; ++m) {
    for (unsigned h = 1; h <= (m == 2 ? 6u : 4u); ++h) {
      const DeBruijnParams params{.base = m, .digits = h};
      const Graph g = debruijn_graph(params);
      for (NodeId x = 0; x < g.num_nodes(); ++x) {
        const auto dist = bfs_distances(g, x);
        for (NodeId y = 0; y < g.num_nodes(); ++y) {
          EXPECT_EQ(debruijn_distance(params, x, y), dist[y])
              << "m=" << m << " h=" << h << " " << +x << "->" << +y;
        }
      }
    }
  }
}

TEST(DeBruijnDistance, DiameterPairsReachFullShiftOffsetSafely) {
  // 0...0 -> 1...1 in B_{2,h} needs all h digits replaced, so the search
  // reaches the f == ±h iterations where no digit windows overlap. The lane
  // mask there must be empty (a naive build shifts by 64 — UB) and the
  // surviving candidate is hops = h, the true distance.
  for (unsigned h = 2; h <= 6; ++h) {
    const DeBruijnParams params{.base = 2, .digits = h};
    const auto ones = static_cast<NodeId>((std::uint64_t{1} << h) - 1);
    EXPECT_EQ(debruijn_distance(params, 0, ones), h) << "h=" << h;
    EXPECT_EQ(debruijn_distance(params, ones, 0), h) << "h=" << h;
  }
}

TEST(DeBruijnDistance, MixedShiftsBeatTheLeftOnlyRoute) {
  // 0001 -> 1000 in B_{2,4}: one right shift, but three left shifts — the
  // undirected distance is 1, strictly below the paper's left-shift route.
  EXPECT_EQ(debruijn_distance({.base = 2, .digits = 4}, 0b0001, 0b1000), 1u);
}

TEST(DeBruijnDistance, OutOfRangeThrows) {
  EXPECT_THROW(debruijn_distance({.base = 2, .digits = 3}, 8, 0), std::out_of_range);
}

TEST(DeBruijnNeighbors, MatchesGraphAdjacencyExactly) {
  const DeBruijnParams params{.base = 3, .digits = 3};
  const Graph g = debruijn_graph(params);
  std::vector<NodeId> nbrs;
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    debruijn_neighbors(params, x, nbrs);
    const auto actual = g.neighbors(x);
    ASSERT_EQ(nbrs.size(), actual.size()) << "x=" << +x;
    EXPECT_TRUE(std::equal(actual.begin(), actual.end(), nbrs.begin())) << "x=" << +x;
  }
}

TEST(DeBruijnShape, RecognizesEveryGridInstanceAndRejectsImpostors) {
  for (std::uint64_t m = 2; m <= 4; ++m) {
    for (unsigned h = 2; h <= 4; ++h) {
      const auto shape = debruijn_shape_of(debruijn_graph({.base = m, .digits = h}));
      ASSERT_TRUE(shape.has_value()) << "m=" << m << " h=" << h;
      EXPECT_EQ(shape->base, m);
      EXPECT_EQ(shape->digits, h);
    }
  }
  // Same node count, different edges: B_{2,4} vs B_{4,2} must not be confused.
  const auto b24 = debruijn_shape_of(debruijn_graph({.base = 2, .digits = 4}));
  ASSERT_TRUE(b24.has_value());
  EXPECT_EQ(b24->base, 2u);
  const auto b42 = debruijn_shape_of(debruijn_graph({.base = 4, .digits = 2}));
  ASSERT_TRUE(b42.has_value());
  EXPECT_EQ(b42->base, 4u);
  // A path graph of de Bruijn size is not a de Bruijn graph.
  EXPECT_FALSE(
      debruijn_shape_of(make_graph(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}}))
          .has_value());
}

TEST(DeBruijn, EdgeIffShiftRelation) {
  // Exhaustive cross-check of the edge predicate against first principles.
  const unsigned h = 4;
  const std::uint64_t n = 16;
  Graph g = debruijn_base2(h);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t y = x + 1; y < n; ++y) {
      bool expected = false;
      for (std::uint64_t r = 0; r < 2; ++r) {
        if ((2 * x + r) % n == y || (2 * y + r) % n == x) expected = true;
      }
      EXPECT_EQ(g.has_edge(static_cast<NodeId>(x), static_cast<NodeId>(y)), expected)
          << "x=" << x << " y=" << y;
    }
  }
}


// --- incremental distance kernels (PR 9) ---

TEST(DeBruijn, StepperResetMatchesDistanceAllPairs) {
  // Exhaustive: reset() (packed bit/nibble scans with the O(1) offset
  // filters) must equal the canonical formula for every pair, m in {2,3,4}.
  for (std::uint64_t m = 2; m <= 4; ++m) {
    for (unsigned h = 2; h <= 4; ++h) {
      const DeBruijnParams params{.base = m, .digits = h};
      const std::uint64_t n = debruijn_num_nodes(params);
      for (std::uint64_t y = 0; y < n; ++y) {
        DebruijnDistanceStepper stepper(params, static_cast<NodeId>(y));
        for (std::uint64_t x = 0; x < n; ++x) {
          DistanceWitness w;
          const std::uint32_t want =
              debruijn_distance_witness(params, static_cast<NodeId>(x), static_cast<NodeId>(y), &w);
          EXPECT_EQ(stepper.reset(static_cast<NodeId>(x)), want)
              << "m=" << m << " h=" << h << " x=" << x << " y=" << y;
          EXPECT_EQ(stepper.witness().offset, w.offset);
        }
      }
    }
  }
}

TEST(DeBruijn, StepperProbeRespectsCapAndExactness) {
  const DeBruijnParams params{.base = 2, .digits = 8};
  const std::uint64_t n = debruijn_num_nodes(params);
  std::mt19937_64 rng(42);
  std::vector<NodeId> nbrs;
  for (int trial = 0; trial < 500; ++trial) {
    const auto x = static_cast<NodeId>(rng() % n);
    const auto y = static_cast<NodeId>(rng() % n);
    DebruijnDistanceStepper stepper(params, y);
    const std::uint32_t here = stepper.reset(x);
    if (here == 0) continue;
    debruijn_neighbors(params, x, nbrs);
    for (const NodeId w : nbrs) {
      const std::uint32_t want = debruijn_distance(params, w, y);
      const std::uint32_t got = stepper.probe(w, here - 1);
      if (want <= here - 1) {
        EXPECT_EQ(got, want) << "x=" << x << " y=" << y << " w=" << w;
      } else {
        EXPECT_GT(got, here - 1) << "x=" << x << " y=" << y << " w=" << w;
      }
    }
  }
}

TEST(DeBruijn, StepperRandomWalkAgreesWithFormula) {
  // 10k random-walk steps per shape: step() (hinted O(h) updates) must track
  // the canonical formula exactly, including the nibble-packed bases.
  for (const auto& params :
       {DeBruijnParams{.base = 2, .digits = 10}, DeBruijnParams{.base = 3, .digits = 5},
        DeBruijnParams{.base = 4, .digits = 4}}) {
    const std::uint64_t n = debruijn_num_nodes(params);
    std::mt19937_64 rng(1000 * params.base + params.digits);
    const auto dest = static_cast<NodeId>(rng() % n);
    DebruijnDistanceStepper stepper(params, dest);
    NodeId cur = static_cast<NodeId>(rng() % n);
    stepper.reset(cur);
    std::vector<NodeId> nbrs;
    for (int s = 0; s < 10000; ++s) {
      debruijn_neighbors(params, cur, nbrs);
      cur = nbrs[rng() % nbrs.size()];
      const std::uint32_t got = stepper.step(cur);
      ASSERT_EQ(got, debruijn_distance(params, cur, dest))
          << "m=" << params.base << " h=" << params.digits << " step=" << s << " cur=" << cur;
      ASSERT_EQ(stepper.distance(), got);
      ASSERT_EQ(stepper.node(), cur);
    }
  }
}

TEST(DeBruijn, FreeStepFunctionMatchesFormula) {
  const DeBruijnParams params{.base = 3, .digits = 4};
  const std::uint64_t n = debruijn_num_nodes(params);
  std::mt19937_64 rng(7);
  std::vector<NodeId> nbrs;
  for (int trial = 0; trial < 200; ++trial) {
    const auto y = static_cast<NodeId>(rng() % n);
    auto x = static_cast<NodeId>(rng() % n);
    DistanceWitness w;
    std::uint32_t dist = debruijn_distance_witness(params, x, y, &w);
    for (int s = 0; s < 20; ++s) {
      debruijn_neighbors(params, x, nbrs);
      const NodeId nxt = nbrs[rng() % nbrs.size()];
      dist = debruijn_distance_step(params, x, nxt, y, dist, &w);
      ASSERT_EQ(dist, debruijn_distance(params, nxt, y)) << "trial=" << trial << " s=" << s;
      x = nxt;
    }
  }
}

TEST(DeBruijn, StepperRejectsNonNeighbor) {
  const DeBruijnParams params{.base = 2, .digits = 6};
  DebruijnDistanceStepper stepper(params, 5);
  stepper.reset(0);  // neighbors of 0 are 1 and 32
  EXPECT_THROW(stepper.step(7), std::invalid_argument);
}

TEST(DeBruijn, NeighborsFixedMatchesVector) {
  for (std::uint64_t m = 2; m <= 4; ++m) {
    for (unsigned h = 2; h <= 4; ++h) {
      const DeBruijnParams params{.base = m, .digits = h};
      const std::uint64_t n = debruijn_num_nodes(params);
      std::vector<NodeId> expected;
      NodeId fixed[32];
      for (std::uint64_t x = 0; x < n; ++x) {
        debruijn_neighbors(params, static_cast<NodeId>(x), expected);
        const int count = debruijn_neighbors_fixed(params, static_cast<NodeId>(x), fixed, 32);
        ASSERT_EQ(static_cast<std::size_t>(count), expected.size()) << "m=" << m << " x=" << x;
        for (int i = 0; i < count; ++i) EXPECT_EQ(fixed[i], expected[static_cast<std::size_t>(i)]);
      }
    }
  }
  EXPECT_THROW(debruijn_neighbors_fixed({.base = 2, .digits = 3}, 0, nullptr, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftdb
