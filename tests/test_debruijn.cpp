// Tests for the de Bruijn target graphs, including the paper's claim (Sections
// III and IV) that the digit-shift definition and the algebraic X-based
// definition coincide.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "topology/debruijn.hpp"
#include "topology/labels.hpp"

namespace ftdb {
namespace {

TEST(DeBruijn, NodeCount) {
  EXPECT_EQ(debruijn_num_nodes({.base = 2, .digits = 4}), 16u);
  EXPECT_EQ(debruijn_num_nodes({.base = 3, .digits = 3}), 27u);
  EXPECT_EQ(debruijn_num_nodes({.base = 5, .digits = 2}), 25u);
}

TEST(DeBruijn, InvalidParamsThrow) {
  EXPECT_THROW(debruijn_num_nodes({.base = 1, .digits = 3}), std::invalid_argument);
  EXPECT_THROW(debruijn_num_nodes({.base = 2, .digits = 0}), std::invalid_argument);
}

TEST(DeBruijn, Fig1_B24Structure) {
  // Paper Fig. 1: B_{2,4} has 16 nodes, degree <= 4.
  Graph g = debruijn_base2(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.max_degree(), 4u);
  // Spot-check the binary definition: node 0110 (=6) connects to 1100 (=12),
  // 1101 (=13), 0011 (=3), 1011 (=11).
  EXPECT_TRUE(g.has_edge(6, 12));
  EXPECT_TRUE(g.has_edge(6, 13));
  EXPECT_TRUE(g.has_edge(6, 3));
  EXPECT_TRUE(g.has_edge(6, 11));
  EXPECT_EQ(g.degree(6), 4u);
}

TEST(DeBruijn, SelfLoopNodesHaveSmallerDegree) {
  // Nodes 0...0 and 1...1 lose their self-loops; 0 connects to 1 and 2^{h-1}.
  Graph g = debruijn_base2(4);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 8));
  EXPECT_EQ(g.degree(15), 2u);
}

class DeBruijnDefinitionEquivalence
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(DeBruijnDefinitionEquivalence, DigitAndAlgebraicDefinitionsMatch) {
  const auto [m, h] = GetParam();
  const DeBruijnParams params{.base = m, .digits = h};
  Graph digit = debruijn_graph_digit_definition(params);
  Graph algebraic = debruijn_graph(params);
  EXPECT_TRUE(digit.same_structure(algebraic)) << "m=" << m << " h=" << h;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeBruijnDefinitionEquivalence,
                         ::testing::Values(std::pair<std::uint64_t, unsigned>{2, 3},
                                           std::pair<std::uint64_t, unsigned>{2, 4},
                                           std::pair<std::uint64_t, unsigned>{2, 6},
                                           std::pair<std::uint64_t, unsigned>{3, 3},
                                           std::pair<std::uint64_t, unsigned>{3, 4},
                                           std::pair<std::uint64_t, unsigned>{4, 3},
                                           std::pair<std::uint64_t, unsigned>{5, 2},
                                           std::pair<std::uint64_t, unsigned>{5, 3}));

class DeBruijnProperties : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(DeBruijnProperties, DegreeAtMost2m) {
  const auto [m, h] = GetParam();
  Graph g = debruijn_graph({.base = m, .digits = h});
  EXPECT_LE(g.max_degree(), 2 * m);
}

TEST_P(DeBruijnProperties, Connected) {
  const auto [m, h] = GetParam();
  EXPECT_TRUE(is_connected(debruijn_graph({.base = m, .digits = h})));
}

TEST_P(DeBruijnProperties, DiameterAtMostH) {
  const auto [m, h] = GetParam();
  EXPECT_LE(diameter(debruijn_graph({.base = m, .digits = h})), h);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeBruijnProperties,
                         ::testing::Values(std::pair<std::uint64_t, unsigned>{2, 3},
                                           std::pair<std::uint64_t, unsigned>{2, 5},
                                           std::pair<std::uint64_t, unsigned>{2, 8},
                                           std::pair<std::uint64_t, unsigned>{3, 3},
                                           std::pair<std::uint64_t, unsigned>{4, 3},
                                           std::pair<std::uint64_t, unsigned>{5, 2}));

TEST(DeBruijn, OutNeighborsAreGraphEdgesOrSelfLoops) {
  const DeBruijnParams params{.base = 3, .digits = 3};
  Graph g = debruijn_graph(params);
  for (std::size_t x = 0; x < g.num_nodes(); ++x) {
    for (NodeId y : debruijn_out_neighbors(params, static_cast<NodeId>(x))) {
      if (y != static_cast<NodeId>(x)) {
        EXPECT_TRUE(g.has_edge(static_cast<NodeId>(x), y)) << "x=" << x << " y=" << y;
      }
    }
  }
}

TEST(DeBruijn, EdgeIffShiftRelation) {
  // Exhaustive cross-check of the edge predicate against first principles.
  const unsigned h = 4;
  const std::uint64_t n = 16;
  Graph g = debruijn_base2(h);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t y = x + 1; y < n; ++y) {
      bool expected = false;
      for (std::uint64_t r = 0; r < 2; ++r) {
        if ((2 * x + r) % n == y || (2 * y + r) % n == x) expected = true;
      }
      EXPECT_EQ(g.has_edge(static_cast<NodeId>(x), static_cast<NodeId>(y)), expected)
          << "x=" << x << " y=" << y;
    }
  }
}

}  // namespace
}  // namespace ftdb
