// Tests for de Bruijn sequence generation via Euler circuits.
#include <gtest/gtest.h>

#include <set>

#include "topology/debruijn_sequence.hpp"
#include "topology/labels.hpp"

namespace ftdb {
namespace {

TEST(DeBruijnSequence, Base2Order1) {
  const auto seq = debruijn_sequence(2, 1);
  EXPECT_EQ(seq.size(), 2u);
  EXPECT_TRUE(is_debruijn_sequence(seq, 2, 1));
}

class DeBruijnSequenceSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(DeBruijnSequenceSweep, EveryWindowDistinct) {
  const auto [m, n] = GetParam();
  const auto seq = debruijn_sequence(m, n);
  EXPECT_EQ(seq.size(), labels::ipow_checked(m, n));
  EXPECT_TRUE(is_debruijn_sequence(seq, m, n)) << "m=" << m << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeBruijnSequenceSweep,
                         ::testing::Values(std::pair<std::uint64_t, unsigned>{2, 2},
                                           std::pair<std::uint64_t, unsigned>{2, 3},
                                           std::pair<std::uint64_t, unsigned>{2, 6},
                                           std::pair<std::uint64_t, unsigned>{2, 10},
                                           std::pair<std::uint64_t, unsigned>{3, 3},
                                           std::pair<std::uint64_t, unsigned>{3, 5},
                                           std::pair<std::uint64_t, unsigned>{4, 4},
                                           std::pair<std::uint64_t, unsigned>{5, 3}));

TEST(DeBruijnSequence, InvalidParamsThrow) {
  EXPECT_THROW(debruijn_sequence(1, 3), std::invalid_argument);
  EXPECT_THROW(debruijn_sequence(2, 0), std::invalid_argument);
}

TEST(IsDeBruijnSequence, RejectsWrongLength) {
  EXPECT_FALSE(is_debruijn_sequence({0, 1, 1}, 2, 2));
}

TEST(IsDeBruijnSequence, RejectsRepeatedWindow) {
  // 0,0,1,1 is valid for (2,2); 0,1,0,1 repeats windows 01 and 10.
  EXPECT_TRUE(is_debruijn_sequence({0, 0, 1, 1}, 2, 2));
  EXPECT_FALSE(is_debruijn_sequence({0, 1, 0, 1}, 2, 2));
}

TEST(IsDeBruijnSequence, RejectsOutOfAlphabet) {
  EXPECT_FALSE(is_debruijn_sequence({0, 2, 1, 1}, 2, 2));
}

TEST(DeBruijnSequence, AllWordsCovered) {
  // Explicitly reconstruct the window set for a mid-size case.
  const std::uint64_t m = 3;
  const unsigned n = 4;
  const auto seq = debruijn_sequence(m, n);
  std::set<std::uint64_t> words;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::uint64_t w = 0;
    for (unsigned j = 0; j < n; ++j) w = w * m + seq[(i + j) % seq.size()];
    words.insert(w);
  }
  EXPECT_EQ(words.size(), labels::ipow_checked(m, n));
}

}  // namespace
}  // namespace ftdb
