// Tests for the minimal-offset-set explorer (the Section VI open problems,
// empirically).
#include <gtest/gtest.h>

#include "ft/degree_explorer.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/tolerance.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

TEST(OffsetSetGraph, IntervalReproducesPaperConstruction) {
  const ExplorerParams params{.base = 2, .digits = 4, .tolerate = 2, .spares = 2};
  const auto interval = ft_debruijn_offsets({.base = 2, .digits = 4, .spares = 2});
  std::vector<std::int64_t> offsets;
  for (std::int64_t r = interval.lo; r <= interval.hi; ++r) offsets.push_back(r);
  const Graph a = ft_debruijn_graph_offset_set(params, offsets);
  const Graph b = ft_debruijn_base2(4, 2);
  EXPECT_TRUE(a.same_structure(b));
}

TEST(OffsetSetGraph, SparesBelowToleranceThrows) {
  const ExplorerParams params{.base = 2, .digits = 3, .tolerate = 2, .spares = 1};
  EXPECT_THROW(ft_debruijn_graph_offset_set(params, {0, 1}), std::invalid_argument);
}

TEST(OffsetSetTolerance, PaperIntervalPasses) {
  for (unsigned k = 1; k <= 2; ++k) {
    const ExplorerParams params{.base = 2, .digits = 4, .tolerate = k, .spares = k};
    const auto interval = ft_debruijn_offsets({.base = 2, .digits = 4, .spares = k});
    std::vector<std::int64_t> offsets;
    for (std::int64_t r = interval.lo; r <= interval.hi; ++r) offsets.push_back(r);
    EXPECT_TRUE(offset_set_is_tolerant(params, offsets)) << "k=" << k;
  }
}

TEST(OffsetSetTolerance, EmptySetFails) {
  const ExplorerParams params{.base = 2, .digits = 3, .tolerate = 1, .spares = 1};
  EXPECT_FALSE(offset_set_is_tolerant(params, {}));
}

TEST(MinimizeOffsets, ResultIsTolerantAndNoSmallerThanNecessary) {
  const ExplorerParams params{.base = 2, .digits = 4, .tolerate = 1, .spares = 1};
  const ExplorationResult result = minimize_offsets_greedy(params);
  // Whatever the search found must itself be tolerant.
  EXPECT_TRUE(offset_set_is_tolerant(params, result.offsets));
  // And locally minimal: removing any single offset breaks tolerance.
  for (std::int64_t r : result.offsets) {
    std::vector<std::int64_t> smaller;
    for (std::int64_t o : result.offsets) {
      if (o != r) smaller.push_back(o);
    }
    EXPECT_FALSE(offset_set_is_tolerant(params, smaller)) << "offset " << r << " droppable";
  }
  EXPECT_LE(result.max_degree, result.paper_degree);
}

TEST(MinimizeOffsets, PaperIntervalIsMinimalForBase2SmallCases) {
  // Empirical support for the construction's tightness: for these instances
  // the greedy search cannot drop any offset from the paper's interval.
  for (auto [h, k] : {std::pair<unsigned, unsigned>{4, 1}, {5, 1}, {4, 2}}) {
    const ExplorerParams params{.base = 2, .digits = h, .tolerate = k, .spares = k};
    const ExplorationResult result = minimize_offsets_greedy(params);
    EXPECT_TRUE(result.paper_interval_minimal) << "h=" << h << " k=" << k;
    EXPECT_EQ(result.offsets.size(), 2u * k + 2) << "h=" << h << " k=" << k;
  }
}

TEST(DegreeVsSpares, ExtraSparesDoNotReduceDegree) {
  // The Section VI conjecture probed (negatively, for this family): with
  // c > k spares the wrap-around offsets widen, so the minimized degree is
  // never better than at c = k.
  const auto results = degree_vs_spares(2, 4, 1, 4);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExplorerParams params{
        .base = 2, .digits = 4, .tolerate = 1, .spares = static_cast<unsigned>(1 + i)};
    EXPECT_TRUE(offset_set_is_tolerant(params, results[i].offsets)) << "c=" << 1 + i;
    EXPECT_GE(results[i].max_degree, results[0].max_degree)
        << "extra spares unexpectedly reduced the degree — a new result!";
  }
}

TEST(DegreeVsSpares, GeneralizedIntervalTolerantForExtraSpares) {
  // The c > k generalization must pass tolerance before minimization begins
  // (minimize_offsets_greedy throws otherwise).
  for (unsigned c = 2; c <= 4; ++c) {
    EXPECT_NO_THROW(minimize_offsets_greedy(
        {.base = 2, .digits = 4, .tolerate = 1, .spares = c}))
        << "c=" << c;
  }
}

}  // namespace
}  // namespace ftdb
