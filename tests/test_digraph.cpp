// Tests for the directed-graph substrate and Euler circuits.
#include <gtest/gtest.h>

#include <set>

#include "graph/digraph.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

TEST(Digraph, DegreesAndNeighbors) {
  Digraph d(3, {{0, 1}, {0, 2}, {1, 2}, {2, 0}});
  EXPECT_EQ(d.num_nodes(), 3u);
  EXPECT_EQ(d.num_arcs(), 4u);
  EXPECT_EQ(d.out_degree(0), 2u);
  EXPECT_EQ(d.in_degree(0), 1u);
  EXPECT_EQ(d.in_degree(2), 2u);
  auto out0 = d.out_neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(out0.begin(), out0.end()), (std::vector<NodeId>{1, 2}));
}

TEST(Digraph, ParallelArcsAllowed) {
  Digraph d(2, {{0, 1}, {0, 1}});
  EXPECT_EQ(d.num_arcs(), 2u);
  EXPECT_EQ(d.out_degree(0), 2u);
}

TEST(Digraph, OutOfRangeThrows) {
  EXPECT_THROW(Digraph(2, {{0, 2}}), std::out_of_range);
}

TEST(Digraph, UndirectedShadow) {
  Digraph d(3, {{0, 1}, {1, 0}, {1, 2}, {2, 2}});
  Graph shadow = d.undirected_shadow();
  EXPECT_EQ(shadow.num_edges(), 2u);  // 0-1 deduped, self-loop dropped
}

TEST(Digraph, EulerianDirectedCycle) {
  Digraph cycle(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_TRUE(cycle.is_eulerian());
  auto circuit = cycle.euler_circuit();
  ASSERT_EQ(circuit.size(), 5u);
  EXPECT_EQ(circuit.front(), circuit.back());
}

TEST(Digraph, NotEulerianWhenDegreesUnbalanced) {
  Digraph d(3, {{0, 1}, {0, 2}, {1, 0}});
  EXPECT_FALSE(d.is_eulerian());
  EXPECT_TRUE(d.euler_circuit().empty());
}

TEST(Digraph, NotEulerianWhenDisconnected) {
  Digraph d(4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}});
  EXPECT_FALSE(d.is_eulerian());
}

TEST(Digraph, EulerCircuitUsesEveryArcOnce) {
  // Two directed triangles sharing node 0.
  Digraph d(5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}});
  ASSERT_TRUE(d.is_eulerian());
  auto circuit = d.euler_circuit();
  ASSERT_EQ(circuit.size(), d.num_arcs() + 1);
  std::multiset<std::pair<NodeId, NodeId>> walked;
  for (std::size_t i = 0; i + 1 < circuit.size(); ++i) {
    walked.insert({circuit[i], circuit[i + 1]});
  }
  EXPECT_EQ(walked.count({0, 1}), 1u);
  EXPECT_EQ(walked.count({3, 4}), 1u);
  EXPECT_EQ(walked.size(), d.num_arcs());
}

class DeBruijnDigraphTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(DeBruijnDigraphTest, RegularAndEulerian) {
  const auto [m, h] = GetParam();
  const Digraph d = debruijn_digraph(m, h);
  for (std::size_t v = 0; v < d.num_nodes(); ++v) {
    EXPECT_EQ(d.out_degree(static_cast<NodeId>(v)), m);
    EXPECT_EQ(d.in_degree(static_cast<NodeId>(v)), m);
  }
  EXPECT_TRUE(d.is_eulerian());
  const auto circuit = d.euler_circuit();
  EXPECT_EQ(circuit.size(), d.num_arcs() + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DeBruijnDigraphTest,
                         ::testing::Values(std::pair<std::uint64_t, unsigned>{2, 2},
                                           std::pair<std::uint64_t, unsigned>{2, 4},
                                           std::pair<std::uint64_t, unsigned>{3, 3},
                                           std::pair<std::uint64_t, unsigned>{4, 2}));

TEST(DeBruijnDigraph, ShadowMatchesUndirectedGenerator) {
  for (auto [m, h] : {std::pair<std::uint64_t, unsigned>{2, 4}, {3, 3}}) {
    const Graph shadow = debruijn_digraph(m, h).undirected_shadow();
    const Graph direct = debruijn_graph({.base = m, .digits = h});
    EXPECT_TRUE(shadow.same_structure(direct)) << "m=" << m << " h=" << h;
  }
}

}  // namespace
}  // namespace ftdb
